// DRAM-level tests for the refresh extensions: pausing segments and
// per-bank REFpb locks, plus their energy-accounting hooks.
#include <gtest/gtest.h>

#include "dram/channel.h"
#include "energy/dram_power.h"

namespace rop::dram {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest() : t(make_ddr4_1600_timings()) {
    org.ranks = 1;
    org.banks = 8;
  }
  Command act(BankId b, RowId row) {
    return {CmdType::kActivate, DramCoord{0, 0, b, row, 0}, 0};
  }
  Command refpb(BankId b) {
    return {CmdType::kRefreshBank, DramCoord{0, 0, b, 0, 0}, 0};
  }

  DramTimings t;
  DramOrganization org;
};

TEST_F(SegmentTest, SegmentLocksRankForDurationOnly) {
  Channel ch(t, org);
  ch.begin_refresh_segment(0, 100, 48);
  EXPECT_TRUE(ch.rank(0).refreshing());
  EXPECT_EQ(ch.rank(0).refresh_done(), 148u);
  EXPECT_FALSE(ch.can_issue(act(0, 1), 147));
  ch.tick(148);
  EXPECT_FALSE(ch.rank(0).refreshing());
  EXPECT_TRUE(ch.can_issue(act(0, 1), 148));
  EXPECT_EQ(ch.events().refresh_segments, 1u);
}

TEST_F(SegmentTest, SegmentRequiresPrechargedBanks) {
  Channel ch(t, org);
  ch.issue(act(3, 7), 0);
  // An open row makes the segment illegal (same as a full REF); the rank
  // must be precharged first.
  EXPECT_FALSE(ch.rank(0).can_issue(
      Command{CmdType::kRefresh, DramCoord{0, 0, 0, 0, 0}, 0}, 100));
}

TEST_F(SegmentTest, MultipleSegmentsAccumulateRefreshCycles) {
  Channel ch(t, org);
  ch.begin_refresh_segment(0, 0, 48);
  ch.tick(48);
  ch.begin_refresh_segment(0, 100, 48);
  ch.tick(148);
  ch.settle_accounting(1000);
  EXPECT_EQ(ch.rank(0).activity().refresh_cycles, 96u);
}

TEST_F(SegmentTest, RefpbLocksSingleBank) {
  Channel ch(t, org);
  const Cycle done = ch.issue(refpb(2), 10);
  EXPECT_EQ(done, 10 + t.tRFCpb);
  EXPECT_EQ(ch.rank(0).bank(2).state(), BankState::kRefreshing);
  EXPECT_FALSE(ch.rank(0).refreshing());  // rank-level flag untouched
  // Other banks stay usable.
  EXPECT_TRUE(ch.can_issue(act(3, 1), 11));
  // The locked bank rejects everything until tRFCpb elapses.
  EXPECT_FALSE(ch.can_issue(act(2, 1), 10 + t.tRFCpb - 1));
  ch.tick(10 + t.tRFCpb);
  EXPECT_EQ(ch.rank(0).bank(2).state(), BankState::kPrecharged);
  EXPECT_TRUE(ch.can_issue(act(2, 1), 10 + t.tRFCpb));
  EXPECT_EQ(ch.events().bank_refreshes, 1u);
}

TEST_F(SegmentTest, RefpbAccountsBankRefreshCycles) {
  Channel ch(t, org);
  ch.issue(refpb(0), 0);
  ch.tick(t.tRFCpb);
  ch.issue(refpb(1), 1000);
  ch.tick(1000 + t.tRFCpb);
  ch.settle_accounting(2000);
  EXPECT_EQ(ch.rank(0).activity().bank_refresh_cycles,
            2ull * t.tRFCpb);
}

TEST_F(SegmentTest, RefpbRejectedWhileBankBusy) {
  Channel ch(t, org);
  ch.issue(act(4, 9), 0);
  EXPECT_FALSE(ch.can_issue(refpb(4), 5));  // active bank
  ch.issue(refpb(5), 5);
  EXPECT_FALSE(ch.can_issue(refpb(5), 6));  // already refreshing
}

TEST_F(SegmentTest, EnergyChargesRefpbAtBankFraction) {
  // One full REF's worth of bank-cycles (8 x tRFCpb) must cost less than a
  // full-rank refresh of equal duration x 8, because only 1/8 of the
  // devices draw the refresh surcharge at a time.
  DramTimings timings = make_ddr4_1600_timings();
  DramOrganization o;
  o.ranks = 1;
  Channel pb(timings, o), full(timings, o);
  for (BankId b = 0; b < 8; ++b) {
    pb.issue(Command{CmdType::kRefreshBank, DramCoord{0, 0, b, 0, 0}, 0},
             b * 1000);
    pb.tick(b * 1000 + timings.tRFCpb);
  }
  full.issue(Command{CmdType::kRefresh, DramCoord{0, 0, 0, 0, 0}, 0}, 0);
  full.tick(timings.tRFC);
  const Cycle horizon = 10'000;
  pb.settle_accounting(horizon);
  full.settle_accounting(horizon);
  const energy::DramPowerModel model({}, timings);
  const double e_pb = model.compute(pb).refresh_mj;
  const double e_full = model.compute(full).refresh_mj;
  EXPECT_GT(e_pb, 0.0);
  EXPECT_GT(e_full, 0.0);
  // 8 x tRFCpb = 576 bank-cycles at 1/8 weight = 72 rank-cycle equivalents
  // vs tRFC = 280 rank-cycles for the full REF.
  EXPECT_LT(e_pb, e_full);
}

}  // namespace
}  // namespace rop::dram
