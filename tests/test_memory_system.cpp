// MemorySystem facade tests.
#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace rop::mem {
namespace {

MemoryConfig small_config(bool refresh = true) {
  MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.channels = 1;
  cfg.org.ranks = 2;
  cfg.org.banks = 8;
  cfg.ctrl.refresh_enabled = refresh;
  return cfg;
}

TEST(MemorySystem, EnqueueDecomposesAddress) {
  StatRegistry stats;
  MemorySystem mem(small_config(false), &stats);
  const Address addr = 0x123450;
  const auto id = mem.enqueue(addr, ReqType::kRead, 0, 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_GT(*id, 0u);
  EXPECT_FALSE(mem.idle());
}

TEST(MemorySystem, CompletionRoundTrip) {
  StatRegistry stats;
  MemorySystem mem(small_config(false), &stats);
  ASSERT_TRUE(mem.enqueue(0x40, ReqType::kRead, 3, 0).has_value());
  std::vector<Request> done;
  for (Cycle now = 0; now < 500 && done.empty(); ++now) {
    mem.tick(now);
    auto d = mem.drain_completed();
    done.insert(done.end(), d.begin(), d.end());
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].core, 3u);
  EXPECT_EQ(done[0].line_addr, 0x40u);
  EXPECT_TRUE(mem.idle());
}

TEST(MemorySystem, LineAddressCanonicalized) {
  StatRegistry stats;
  MemorySystem mem(small_config(false), &stats);
  ASSERT_TRUE(mem.enqueue(0x47, ReqType::kRead, 0, 0).has_value());
  std::vector<Request> done;
  for (Cycle now = 0; now < 500 && done.empty(); ++now) {
    mem.tick(now);
    auto d = mem.drain_completed();
    done.insert(done.end(), d.begin(), d.end());
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].line_addr, 0x40u);
}

TEST(MemorySystem, IdsAreUniqueAndMonotonic) {
  StatRegistry stats;
  MemorySystem mem(small_config(false), &stats);
  RequestId prev = 0;
  for (int i = 0; i < 10; ++i) {
    const auto id = mem.enqueue(static_cast<Address>(i) << kLineShift,
                                ReqType::kWrite, 0, 0);
    ASSERT_TRUE(id.has_value());
    EXPECT_GT(*id, prev);
    prev = *id;
  }
}

TEST(MemorySystem, RefreshesBothRanksStaggered) {
  StatRegistry stats;
  MemorySystem mem(small_config(true), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  for (Cycle now = 0; now < 3 * trefi; ++now) mem.tick(now);
  const auto& rm = mem.controller(0).refresh_manager();
  EXPECT_GE(rm.issued(0), 2u);
  EXPECT_GE(rm.issued(1), 2u);
  EXPECT_EQ(stats.counter_value("mem.refreshes"), rm.issued(0) + rm.issued(1));
}

TEST(MemorySystem, FinalizeSettlesActivity) {
  StatRegistry stats;
  MemorySystem mem(small_config(false), &stats);
  for (Cycle now = 0; now < 100; ++now) mem.tick(now);
  mem.finalize(1000);
  const auto& act = mem.controller(0).channel().rank(0).activity();
  EXPECT_EQ(act.active_cycles + act.precharged_cycles + act.refresh_cycles,
            1000u);
}

TEST(MemorySystem, RejectsWhenQueueFull) {
  MemoryConfig cfg = small_config(false);
  cfg.ctrl.sched.read_queue_capacity = 2;
  StatRegistry stats;
  MemorySystem mem(cfg, &stats);
  // Same channel (only one), distinct lines -> no forwarding.
  EXPECT_TRUE(mem.enqueue(0x0, ReqType::kRead, 0, 0).has_value());
  EXPECT_TRUE(mem.enqueue(0x40, ReqType::kRead, 0, 0).has_value());
  EXPECT_FALSE(mem.can_accept(0x80, ReqType::kRead));
  EXPECT_FALSE(mem.enqueue(0x80, ReqType::kRead, 0, 0).has_value());
}

}  // namespace
}  // namespace rop::mem
