// SimChecker tests: the invariant auditor must stay silent on correct
// simulations across every refresh policy (with and without the ROP
// engine), report injected violations, and hold the end-of-run request
// conservation identities.
#include <gtest/gtest.h>

#include <memory>

#include "check/sim_checker.h"
#include "common/rng.h"
#include "sim/experiment.h"

namespace rop::check {
namespace {

class SimCheckerTest : public ::testing::Test {
 protected:
  mem::MemoryConfig config(mem::RefreshPolicy policy,
                           std::uint32_t ranks = 2,
                           std::uint32_t channels = 1) {
    mem::MemoryConfig cfg;
    cfg.timings = dram::make_ddr4_1600_timings();
    cfg.org.ranks = ranks;
    cfg.org.channels = channels;
    cfg.ctrl.policy = policy;
    if (mem::policy_uses_subarrays(policy)) cfg.org.subarrays = 8;
    return cfg;
  }

  /// Drive a randomized read/write mix for `horizon` cycles, then let the
  /// queues drain. Returns the cycle after the drain loop.
  Cycle run_random_load(mem::MemorySystem& mem, std::uint64_t seed,
                        Cycle horizon, Cycle mean_gap) {
    Rng rng(seed);
    Cycle now = 0;
    for (; now < horizon; ++now) {
      if (now % mean_gap == 0) {
        const Address addr = rng.next_below(1u << 22) << kLineShift;
        const auto type = rng.next_bool(0.3) ? mem::ReqType::kWrite
                                             : mem::ReqType::kRead;
        if (mem.can_accept(addr, type)) {
          (void)mem.enqueue(addr, type, 0, now);
        }
      }
      mem.tick(now);
      (void)mem.drain_completed();
    }
    for (; !mem.idle() && now < horizon + 200'000; ++now) {
      mem.tick(now);
      (void)mem.drain_completed();
    }
    return now;
  }
};

TEST_F(SimCheckerTest, CleanRunUnderEveryPolicy) {
  const mem::RefreshPolicy policies[] = {
      mem::RefreshPolicy::kAutoRefresh, mem::RefreshPolicy::kElastic,
      mem::RefreshPolicy::kPausing,     mem::RefreshPolicy::kRopDrain,
      mem::RefreshPolicy::kDarp,        mem::RefreshPolicy::kSarp,
      mem::RefreshPolicy::kHira};
  for (const auto policy : policies) {
    StatRegistry stats;
    mem::MemorySystem mem(config(policy), &stats);
    SimChecker checker;
    checker.attach(mem);
    const Cycle trefi = mem.config().timings.tREFI;
    run_random_load(mem, 7, 30 * trefi, 11);
    mem.finalize(30 * trefi);
    checker.finalize();
    EXPECT_TRUE(checker.ok())
        << "policy " << static_cast<int>(policy) << "\n"
        << checker.summary();
    EXPECT_GT(checker.ticks_checked(), 0u);
    EXPECT_GT(checker.requests_retired(), 0u);
  }
}

TEST_F(SimCheckerTest, CleanRunWithRopEngineAndBufferCoherence) {
  StatRegistry stats;
  mem::MemorySystem mem(config(mem::RefreshPolicy::kRopDrain), &stats);
  engine::RopConfig rc;
  rc.training_refreshes = 5;
  rc.eval_period_refreshes = 10;
  engine::RopEngine eng(rc, mem.controller(0), mem.address_map(), &stats);
  SimChecker checker;
  checker.attach(mem);
  checker.watch(eng);
  const Cycle trefi = mem.config().timings.tREFI;
  // Sequential stream with a write tail chasing the reads: exercises the
  // stale-fill drop and the buffer-vs-write-queue coherence sweep.
  std::uint64_t line = 0;
  Cycle now = 0;
  for (; now < 40 * trefi; ++now) {
    if (now % 12 == 0 && mem.can_accept(line << kLineShift,
                                        mem::ReqType::kRead)) {
      (void)mem.enqueue(line << kLineShift, mem::ReqType::kRead, 0, now);
      ++line;
    }
    if (now % 96 == 0 && line > 4) {
      const Address wb = (line - 4) << kLineShift;
      if (mem.can_accept(wb, mem::ReqType::kWrite)) {
        (void)mem.enqueue(wb, mem::ReqType::kWrite, 0, now);
      }
    }
    mem.tick(now);
    (void)mem.drain_completed();
  }
  checker.finalize();
  EXPECT_TRUE(checker.ok()) << checker.summary();
  EXPECT_GT(stats.counter_value("rop.prefetch_completed"), 0u);
}

// Randomized soak: every refresh policy x ROP on/off x several seeds, with
// multi-rank and multi-channel organizations. Any bookkeeping drift in the
// controller fast paths fails this test.
TEST_F(SimCheckerTest, RandomizedMultiPolicySoak) {
  const mem::RefreshPolicy policies[] = {
      mem::RefreshPolicy::kAutoRefresh, mem::RefreshPolicy::kElastic,
      mem::RefreshPolicy::kPausing,     mem::RefreshPolicy::kRopDrain,
      mem::RefreshPolicy::kDarp,        mem::RefreshPolicy::kSarp,
      mem::RefreshPolicy::kHira};
  for (const auto policy : policies) {
    for (const bool with_rop : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const std::uint32_t channels = seed == 3 ? 2 : 1;
        StatRegistry stats;
        mem::MemorySystem mem(config(policy, 2, channels), &stats);
        std::vector<std::unique_ptr<engine::RopEngine>> engines;
        SimChecker checker;
        checker.attach(mem);
        if (with_rop) {
          engine::RopConfig rc;
          rc.training_refreshes = 4;
          rc.eval_period_refreshes = 8;
          for (ChannelId ch = 0; ch < mem.num_channels(); ++ch) {
            engines.push_back(std::make_unique<engine::RopEngine>(
                rc, mem.controller(ch), mem.address_map(), &stats));
            checker.watch(*engines.back());
          }
        }
        const Cycle trefi = mem.config().timings.tREFI;
        run_random_load(mem, seed * 1337, 20 * trefi,
                        3 + (seed % 3) * 7);
        checker.finalize();
        EXPECT_TRUE(checker.ok())
            << "policy " << static_cast<int>(policy) << " rop " << with_rop
            << " seed " << seed << "\n"
            << checker.summary();
      }
    }
  }
}

TEST_F(SimCheckerTest, ReportsRetiredRequestWithCompletionBeforeArrival) {
  SimChecker checker;
  mem::Request bad;
  bad.id = 42;
  bad.arrival = 100;
  bad.completion = 50;
  checker.on_retired(bad);
  EXPECT_FALSE(checker.ok());
  EXPECT_EQ(checker.violation_count(), 1u);
  ASSERT_EQ(checker.reports().size(), 1u);
  EXPECT_NE(checker.reports()[0].find("completion"), std::string::npos);
  EXPECT_NE(checker.summary().find("FAILED"), std::string::npos);
}

TEST_F(SimCheckerTest, ExperimentWiringRunsCheckedEndToEnd) {
  for (const auto mode : {sim::MemoryMode::kBaseline, sim::MemoryMode::kRop,
                          sim::MemoryMode::kPausing, sim::MemoryMode::kDarp,
                          sim::MemoryMode::kSarp, sim::MemoryMode::kHira}) {
    sim::ExperimentSpec spec = sim::single_core_spec("libquantum", mode);
    spec.instructions_per_core = 150'000;
    spec.check = true;
    const auto result = sim::run_experiment(spec);
    EXPECT_GT(result.checker_ticks, 0u)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(result.checker_violations, 0u);
  }
}

TEST_F(SimCheckerTest, EventCoreSoakStaysCleanUnderEveryPolicy) {
  // The event-driven clock only executes ticks it can prove are not
  // no-ops; every executed tick still passes the full per-tick audit
  // (queue counters, drain bookkeeping, refresh deadlines, buffer
  // coherence), and the aggregate stats match the naive loop exactly.
  // Multi-core contention plus rank partitioning exercises multi-rank
  // refresh scheduling inside skip spans.
  for (const auto mode :
       {sim::MemoryMode::kBaseline, sim::MemoryMode::kRop,
        sim::MemoryMode::kElastic, sim::MemoryMode::kPausing,
        sim::MemoryMode::kPerBank, sim::MemoryMode::kDarp,
        sim::MemoryMode::kSarp, sim::MemoryMode::kHira}) {
    SCOPED_TRACE(testing::Message() << "mode=" << static_cast<int>(mode));
    sim::ExperimentSpec naive =
        sim::multi_core_spec(1, mode, /*rank_partition=*/true);
    naive.instructions_per_core = 100'000;
    naive.check = true;
    naive.loop = cpu::LoopMode::kNaive;
    const auto naive_result = sim::run_experiment(naive);
    EXPECT_EQ(naive_result.checker_violations, 0u);
    for (const cpu::LoopMode loop :
         {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
      SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
      sim::ExperimentSpec fast = naive;
      fast.loop = loop;
      const auto fast_result = sim::run_experiment(fast);
      EXPECT_GT(fast_result.checker_ticks, 0u);
      EXPECT_EQ(fast_result.checker_violations, 0u);
      // The fast loops must audit *fewer* ticks (that is the whole point)
      // while producing identical simulation results.
      EXPECT_LT(fast_result.checker_ticks, naive_result.checker_ticks);
      EXPECT_EQ(fast_result.stats.report(), naive_result.stats.report());
    }
  }
}

}  // namespace
}  // namespace rop::check
