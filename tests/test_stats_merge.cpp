// Aggregation primitives behind channel-shard folds and the campaign
// merge: Counter/Scalar/Histogram::merge, StatRegistry::merge_from, and
// the shared worker-budget policy. The load-bearing property is exactness:
// merging shards must reproduce the pooled single-stream result bit for
// bit, not approximately.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/stats.h"
#include "sim/worker_budget.h"

namespace rop {
namespace {

TEST(CounterMerge, AddsValues) {
  Counter a, b;
  a.inc(41);
  b.inc();
  b.inc(100);
  a.merge(b);
  EXPECT_EQ(a.value(), 142u);
  EXPECT_EQ(b.value(), 101u);  // source untouched
}

TEST(ScalarMerge, BitExactAgainstInterleavedRecording) {
  // Record one interleaved stream serially, and the same stream split
  // round-robin across four shards, then merged. The exact-summation
  // expansion makes the results bit-identical, not just close — doubles
  // chosen to defeat naive summation (large + tiny alternating).
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> small(1e-9, 1e-6);
  std::uniform_real_distribution<double> large(1e9, 1e12);

  Scalar pooled;
  std::vector<Scalar> shards(4);
  for (int i = 0; i < 10'000; ++i) {
    const double v = (i % 2 == 0) ? large(rng) : small(rng);
    pooled.record(v);
    shards[static_cast<std::size_t>(i) % shards.size()].record(v);
  }
  Scalar merged;
  for (const Scalar& s : shards) merged.merge(s);

  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.sum(), pooled.sum());    // bit-exact, == not NEAR
  EXPECT_EQ(merged.mean(), pooled.mean());
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
}

TEST(ScalarMerge, EmptySidesAreNeutral) {
  Scalar empty, filled;
  filled.record(3.0);
  filled.record(-5.0);

  Scalar a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), -5.0);
  EXPECT_EQ(a.max(), 3.0);

  Scalar b = empty;
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.sum(), filled.sum());
  EXPECT_EQ(b.min(), -5.0);
  EXPECT_EQ(b.max(), 3.0);
}

TEST(HistogramMerge, PercentilesMatchPooledRecomputation) {
  // The campaign merge reconstructs per-run histograms from JSON and folds
  // them; every derived statistic of the merged histogram must equal a
  // histogram that saw all samples directly.
  std::mt19937_64 rng(21);
  std::uniform_int_distribution<std::uint64_t> dist(0, 400);

  Histogram pooled(/*bucket_width=*/8, /*num_buckets=*/32);
  std::vector<Histogram> shards(3, Histogram(8, 32));
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t v = dist(rng);
    pooled.record(v);
    shards[static_cast<std::size_t>(i) % shards.size()].record(v);
  }
  Histogram merged(8, 32);
  for (const Histogram& h : shards) merged.merge(h);

  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.sum(), pooled.sum());
  EXPECT_EQ(merged.mean(), pooled.mean());
  for (std::size_t b = 0; b < pooled.num_buckets(); ++b) {
    EXPECT_EQ(merged.bucket(b), pooled.bucket(b));
  }
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.percentile(p), pooled.percentile(p)) << "p" << p;
  }
}

TEST(HistogramMerge, PartsRoundTrip) {
  // Export a histogram's parts (as the JSON writer does) and rebuild via
  // the parts constructor: the reconstruction must be indistinguishable.
  Histogram orig(4, 8);
  for (std::uint64_t v : {0ull, 3ull, 4ull, 17ull, 100ull, 100ull}) {
    orig.record(v);
  }
  std::vector<std::uint64_t> buckets;
  for (std::size_t i = 0; i < orig.num_buckets(); ++i) {
    buckets.push_back(orig.bucket(i));
  }
  const Histogram rebuilt(orig.bucket_width(), buckets, orig.sum());
  EXPECT_EQ(rebuilt.count(), orig.count());
  EXPECT_EQ(rebuilt.sum(), orig.sum());
  EXPECT_EQ(rebuilt.mean(), orig.mean());
  EXPECT_EQ(rebuilt.percentile(95.0), orig.percentile(95.0));

  Histogram acc(4, 8);
  acc.merge(rebuilt);
  acc.merge(orig);
  EXPECT_EQ(acc.count(), 2 * orig.count());
  EXPECT_EQ(acc.sum(), 2 * orig.sum());
}

TEST(RegistryMerge, CreatesMissingAndFoldsExisting) {
  StatRegistry a, b;
  a.counter("mem.reads").inc(10);
  b.counter("mem.reads").inc(5);
  b.counter("mem.writes").inc(3);  // absent in `a` — must be created
  a.scalar("lat").record(2.0);
  b.scalar("lat").record(4.0);
  b.histogram("h", 2, 4).record(5);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("mem.reads"), 15u);
  EXPECT_EQ(a.counter_value("mem.writes"), 3u);
  const Scalar* lat = a.find_scalar("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
  EXPECT_EQ(lat->sum(), 6.0);
  const Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->bucket_width(), 2u);  // adopted source geometry
}

TEST(WorkerBudget, DividesHardwareByShards) {
  // requested_jobs = 0: derive from hardware_concurrency / shards. We can't
  // pin hw here, but the invariants hold on any machine.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(rop::sim::worker_budget(0, 1, 1'000), std::min<std::size_t>(
                                                      hw, 1'000));
  const unsigned halved = rop::sim::worker_budget(0, 2, 1'000);
  EXPECT_GE(halved, 1u);
  EXPECT_LE(halved, std::max(1u, hw / 2));
  // Shards beyond the machine still yield one job, never zero.
  EXPECT_EQ(rop::sim::worker_budget(0, 10 * hw, 1'000), 1u);
}

TEST(WorkerBudget, ExplicitRequestHonoredAndClamped) {
  EXPECT_EQ(rop::sim::worker_budget(6, 4, 100), 6u);  // user's call
  EXPECT_EQ(rop::sim::worker_budget(6, 4, 3), 3u);    // never > tasks
  EXPECT_EQ(rop::sim::worker_budget(1, 32, 100), 1u);  // --jobs 1 = serial
  EXPECT_EQ(rop::sim::worker_budget(0, 1, 0), 1u);     // zero tasks
}

}  // namespace
}  // namespace rop
