// LLC tests: hits/misses, LRU, write-back behaviour, against a reference
// model for randomized sequences.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cache/llc.h"
#include "common/rng.h"

namespace rop::cache {
namespace {

LlcConfig tiny(std::uint32_t assoc = 2, std::uint64_t sets = 4) {
  LlcConfig cfg;
  cfg.associativity = assoc;
  cfg.size_bytes = static_cast<std::uint64_t>(assoc) * sets * kLineBytes;
  return cfg;
}

TEST(Llc, ColdMissThenHit) {
  Llc llc(tiny());
  EXPECT_FALSE(llc.access(0x1000, false).hit);
  EXPECT_TRUE(llc.access(0x1000, false).hit);
  EXPECT_TRUE(llc.access(0x1000 + 63, false).hit);  // same line
  EXPECT_EQ(llc.stats().hits, 2u);
  EXPECT_EQ(llc.stats().misses, 1u);
}

TEST(Llc, LruEvictionOrder) {
  Llc llc(tiny(2, 4));  // 2-way, 4 sets: set stride is 4 lines
  const Address a = 0;                       // set 0
  const Address b = 4 * kLineBytes;          // set 0
  const Address c = 8 * kLineBytes;          // set 0
  llc.access(a, false);
  llc.access(b, false);
  llc.access(a, false);      // a is MRU
  llc.access(c, false);      // evicts b (LRU)
  EXPECT_TRUE(llc.contains(a));
  EXPECT_FALSE(llc.contains(b));
  EXPECT_TRUE(llc.contains(c));
}

TEST(Llc, CleanEvictionProducesNoWriteback) {
  Llc llc(tiny(1, 1));
  llc.access(0x0, false);
  const auto res = llc.access(0x40, false);
  EXPECT_FALSE(res.hit);
  EXPECT_FALSE(res.writeback.has_value());
  EXPECT_EQ(llc.stats().writebacks, 0u);
}

TEST(Llc, DirtyEvictionReturnsVictimAddress) {
  Llc llc(tiny(1, 2));  // direct-mapped, 2 sets
  llc.access(0x0, true);               // set 0, dirty
  const auto res = llc.access(0x80, false);  // set 0 again (stride 2 lines)
  EXPECT_FALSE(res.hit);
  ASSERT_TRUE(res.writeback.has_value());
  EXPECT_EQ(*res.writeback, 0x0u);
  EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(Llc, WriteHitMarksDirtyWithoutWriteback) {
  Llc llc(tiny(1, 2));
  llc.access(0x0, false);
  llc.access(0x0, true);  // hit, now dirty
  const auto res = llc.access(0x80, false);
  ASSERT_TRUE(res.writeback.has_value());
  EXPECT_EQ(*res.writeback, 0x0u);
}

TEST(Llc, ResetClearsContents) {
  Llc llc(tiny());
  llc.access(0x0, true);
  llc.reset();
  EXPECT_FALSE(llc.contains(0x0));
  EXPECT_EQ(llc.stats().accesses, 0u);
}

/// Reference model: per-set list of {tag, dirty}, front = LRU.
class ReferenceCache {
 public:
  ReferenceCache(std::uint32_t assoc, std::uint32_t sets)
      : assoc_(assoc), sets_(sets), data_(sets) {}

  LlcAccessResult access(Address addr, bool is_write) {
    const std::uint64_t line = addr >> kLineShift;
    const std::uint32_t set = static_cast<std::uint32_t>(line % sets_);
    const std::uint64_t tag = line / sets_;
    auto& ways = data_[set];
    for (auto it = ways.begin(); it != ways.end(); ++it) {
      if (it->tag == tag) {
        auto entry = *it;
        entry.dirty |= is_write;
        ways.erase(it);
        ways.push_back(entry);
        return {true, std::nullopt};
      }
    }
    LlcAccessResult res{false, std::nullopt};
    if (ways.size() >= assoc_) {
      if (ways.front().dirty) {
        res.writeback = (ways.front().tag * sets_ + set) << kLineShift;
      }
      ways.pop_front();
    }
    ways.push_back({tag, is_write});
    return res;
  }

 private:
  struct Entry {
    std::uint64_t tag;
    bool dirty;
  };
  std::uint32_t assoc_;
  std::uint32_t sets_;
  std::vector<std::list<Entry>> data_;
};

struct LlcSweepParams {
  std::uint32_t assoc;
  std::uint32_t sets;
  double write_fraction;
};

class LlcPropertyTest : public ::testing::TestWithParam<LlcSweepParams> {};

TEST_P(LlcPropertyTest, MatchesReferenceModelOnRandomTraffic) {
  const auto p = GetParam();
  Llc llc(tiny(p.assoc, p.sets));
  ReferenceCache ref(p.assoc, p.sets);
  Rng rng(p.assoc * 1000 + p.sets);
  const std::uint64_t footprint = p.assoc * p.sets * 4;  // 4x capacity
  for (int i = 0; i < 20000; ++i) {
    const Address addr = rng.next_below(footprint) << kLineShift;
    const bool is_write = rng.next_bool(p.write_fraction);
    const auto got = llc.access(addr, is_write);
    const auto want = ref.access(addr, is_write);
    ASSERT_EQ(got.hit, want.hit) << "iteration " << i;
    ASSERT_EQ(got.writeback.has_value(), want.writeback.has_value());
    if (got.writeback) {
      ASSERT_EQ(*got.writeback, *want.writeback);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LlcPropertyTest,
    ::testing::Values(LlcSweepParams{1, 8, 0.3}, LlcSweepParams{2, 4, 0.3},
                      LlcSweepParams{4, 16, 0.5}, LlcSweepParams{8, 64, 0.2},
                      LlcSweepParams{16, 128, 0.4}));

TEST(Llc, MruFastPathStatsUnchangedOnReplayTrace) {
  // Replay a locality-heavy trace (60% repeat-last-line, the traffic the
  // MRU probe accelerates) against the reference model, which has no MRU
  // fast path: per-access results and the aggregate hit/miss/writeback
  // stats must be unchanged by the fast path.
  Llc llc(tiny(16, 64));
  ReferenceCache ref(16, 64);
  Rng rng(99);
  Address last = 0;
  std::uint64_t hits = 0, misses = 0, writebacks = 0;
  constexpr int kAccesses = 50'000;
  for (int i = 0; i < kAccesses; ++i) {
    const Address addr = (i > 0 && rng.next_bool(0.6))
                             ? last
                             : rng.next_below(16 * 64 * 4) << kLineShift;
    last = addr;
    const bool is_write = rng.next_bool(0.3);
    const auto got = llc.access(addr, is_write);
    const auto want = ref.access(addr, is_write);
    ASSERT_EQ(got.hit, want.hit) << "iteration " << i;
    ASSERT_EQ(got.writeback, want.writeback) << "iteration " << i;
    hits += want.hit ? 1 : 0;
    misses += want.hit ? 0 : 1;
    writebacks += want.writeback.has_value() ? 1 : 0;
  }
  EXPECT_EQ(llc.stats().accesses, static_cast<std::uint64_t>(kAccesses));
  EXPECT_EQ(llc.stats().hits, hits);
  EXPECT_EQ(llc.stats().misses, misses);
  EXPECT_EQ(llc.stats().writebacks, writebacks);
}

TEST(Llc, RealisticConfigSizes) {
  LlcConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cfg.associativity = 16;
  Llc llc(cfg);
  EXPECT_EQ(llc.num_sets(), (2ull << 20) / (16 * kLineBytes));
}

}  // namespace
}  // namespace rop::cache
