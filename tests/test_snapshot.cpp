// Checkpoint/restore bit-identity: a run split at an arbitrary CPU cycle
// (snapshot written by the first half, restored by the second) must produce
// the byte-identical final stats document — every counter, Shewchuk scalar
// sum, histogram, epoch row, and run metric — as the unbroken run, across
// every refresh scheme, both fast loops, and every shard count. Aggregate
// identity here is strict: Controller::tick is not idempotent, so any
// state the snapshot missed (a queue index, an RNG word, a refresh phase,
// the loop cursor itself) diverges the tail of the run and shows up in the
// JSON diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/snapshot_io.h"
#include "sim/experiment.h"
#include "sim/snapshot.h"

namespace rop::sim {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "rop_" + name + ".snap";
}

// ---------------------------------------------------------------------------
// Satellite: Rng state capture. set_state must reproduce the exact stream,
// and the archive round-trip must preserve all four state words.

TEST(SnapshotRng, SetStateReproducesStream) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) a.next_u64();
  Rng b(999);  // different seed, then overwritten
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "draw " << i;
  }
  EXPECT_EQ(a.next_double(), b.next_double());
  EXPECT_EQ(a.next_below(97), b.next_below(97));
}

TEST(SnapshotRng, ArchiveRoundTripPreservesStream) {
  Rng a(777);
  for (int i = 0; i < 33; ++i) a.next_u64();

  snap::Writer w;
  w.field(a);
  const std::string bytes = w.take();

  Rng b(1);
  snap::Reader r(bytes);
  r.field(b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.state(), b.state());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "draw " << i;
  }
}

// ---------------------------------------------------------------------------
// Archive primitives: every container/scalar shape the simulator serializes.

struct Inner {
  std::uint32_t x = 0;
  double y = 0.0;
  template <class Ar>
  void io(Ar& ar) {
    ar(x, y);
  }
};

struct Everything {
  bool flag = false;
  std::uint8_t u8 = 0;
  std::int64_t i64 = 0;
  double d = 0.0;
  std::string s;
  std::optional<std::uint64_t> opt;
  std::vector<std::uint32_t> vec;
  std::vector<bool> bits;
  std::deque<std::uint16_t> dq;
  std::array<std::uint64_t, 3> arr{};
  std::vector<Inner> inners;
  template <class Ar>
  void io(Ar& ar) {
    ar(flag, u8, i64, d, s, opt, vec, bits, dq, arr, inners);
  }
};

TEST(SnapshotArchive, RoundTripsEveryFieldShape) {
  Everything a;
  a.flag = true;
  a.u8 = 200;
  a.i64 = -123456789012345ll;
  a.d = 3.14159265358979;
  a.s = "hello\0world";  // embedded NUL survives (length-prefixed)
  a.opt = 42;
  a.vec = {1, 2, 3, 0xFFFFFFFFu};
  a.bits = {true, false, true, true, false};
  a.dq = {7, 8, 9};
  a.arr = {10, 11, 12};
  a.inners = {{1, 1.5}, {2, -2.5}};

  snap::Writer w;
  w.field(a);
  const std::string bytes = w.take();

  Everything b;
  snap::Reader r(bytes);
  r.field(b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.flag, b.flag);
  EXPECT_EQ(a.u8, b.u8);
  EXPECT_EQ(a.i64, b.i64);
  EXPECT_EQ(a.d, b.d);
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.opt, b.opt);
  EXPECT_EQ(a.vec, b.vec);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.dq, b.dq);
  EXPECT_EQ(a.arr, b.arr);
  ASSERT_EQ(a.inners.size(), b.inners.size());
  for (std::size_t i = 0; i < a.inners.size(); ++i) {
    EXPECT_EQ(a.inners[i].x, b.inners[i].x);
    EXPECT_EQ(a.inners[i].y, b.inners[i].y);
  }
}

TEST(SnapshotArchive, TruncatedBufferPoisonsReader) {
  snap::Writer w;
  std::uint64_t big = 0x1122334455667788ull;
  std::string s = "payload";
  w(big, s);
  const std::string bytes = w.take();

  snap::Reader r(bytes.substr(0, bytes.size() - 3));
  std::uint64_t big2 = 0;
  std::string s2;
  r(big2, s2);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Header validation: bad magic / version / fingerprint are rejected before
// any section is touched (so a null context is safe here).

TEST(SnapshotHeader, RejectsGarbageAndWrongFingerprint) {
  SnapshotContext ctx;  // all null: load must fail before sections
  std::string err;

  EXPECT_FALSE(load_snapshot_buffer("short", ctx, 1, &err));
  EXPECT_EQ(err, "not a ROPSNAP1 snapshot");

  // Correct magic + version, mismatched fingerprint.
  snap::Writer w;
  std::uint64_t magic = 0x3150414E53504F52ULL;
  std::uint32_t version = 2;
  std::uint64_t fp = 1234;
  w(magic, version, fp);
  EXPECT_FALSE(load_snapshot_buffer(w.take(), ctx, 5678, &err));
  EXPECT_EQ(err, "snapshot was taken under a different experiment spec");
}

TEST(SnapshotHeader, FingerprintCoversBehaviorShapingFields) {
  ExperimentSpec a = multi_core_spec(1, MemoryMode::kRop, true);
  ExperimentSpec b = a;
  EXPECT_EQ(config_fingerprint(spec_canonical(a)),
            config_fingerprint(spec_canonical(b)));

  b.seed_salt = 17;
  EXPECT_NE(config_fingerprint(spec_canonical(a)),
            config_fingerprint(spec_canonical(b)));

  // Snapshot paths deliberately do NOT perturb the fingerprint: the save
  // and restore sides differ in them by construction.
  ExperimentSpec c = a;
  c.snapshot.in = "/tmp/x.snap";
  c.snapshot.out = "/tmp/y.snap";
  c.snapshot.stop_at = 123;
  EXPECT_EQ(config_fingerprint(spec_canonical(a)),
            config_fingerprint(spec_canonical(c)));
}

// ---------------------------------------------------------------------------
// The bit-identity matrix.

/// Full stats document with the wall-clock fields (the only
/// non-deterministic outputs) zeroed, so the comparison is byte-exact.
std::string json_of(ExperimentResult r) {
  r.wall_seconds = 0.0;
  return r.to_json();
}

/// An off-ratio cut at `num/den` of the run's natural length: odd, so it
/// never lands on a memory-window boundary (cpu_ratio is 4), and derived
/// from the measured length so it always falls mid-run regardless of how
/// fast the scheme retires the workload.
std::uint64_t cut_at(const ExperimentResult& unbroken, std::uint64_t num,
                     std::uint64_t den) {
  return (unbroken.run.cpu_cycles * num / den) | 1;
}

/// Run `spec` unbroken, then split at ~2/5 of its natural length (first
/// half checkpoints and stops; second half restores and finishes), and
/// require byte-identical final documents.
void expect_split_identical(const ExperimentSpec& spec,
                            const std::string& snap_file) {
  const ExperimentResult ref = run_experiment(spec);
  const std::string unbroken = json_of(ref);
  const std::uint64_t cut = cut_at(ref, 2, 5);
  ASSERT_GT(ref.run.cpu_cycles, cut);

  ExperimentSpec first = spec;
  first.snapshot.out = snap_file;
  first.snapshot.stop_at = cut;
  const ExperimentResult half = run_experiment(first);
  ASSERT_TRUE(half.interrupted) << "cut " << cut
                                << " landed after the natural end";

  ExperimentSpec second = spec;
  second.snapshot.in = snap_file;
  const ExperimentResult full = run_experiment(second);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(unbroken, json_of(full));
}

ExperimentSpec matrix_spec(MemoryMode mode) {
  ExperimentSpec spec = multi_core_spec(1, mode, /*rank_partition=*/true);
  spec.instructions_per_core = 80'000;
  spec.telemetry.sampler.epoch_cycles = 10'000;  // epoch series compared too
  return spec;
}

class SnapshotSplit : public ::testing::TestWithParam<MemoryMode> {};

TEST_P(SnapshotSplit, EventLoopSerial) {
  ExperimentSpec spec = matrix_spec(GetParam());
  spec.loop = cpu::LoopMode::kEventDriven;
  // Off-ratio cut: lands inside a memory window and (for long stalls)
  // inside a bulk-advance span — advance_until must clamp exactly.
  expect_split_identical(
      spec, tmp_path(std::string("event_serial_") +
                     memory_mode_name(GetParam())));
}

TEST_P(SnapshotSplit, FrozenStallLoopSerial) {
  ExperimentSpec spec = matrix_spec(GetParam());
  spec.loop = cpu::LoopMode::kFrozenStall;
  expect_split_identical(
      spec, tmp_path(std::string("frozen_serial_") +
                     memory_mode_name(GetParam())));
}

TEST_P(SnapshotSplit, ShardedTwoAndFour) {
  for (const std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExperimentSpec spec = matrix_spec(GetParam());
    spec.ranks = 2;
    spec.channels = 4;
    spec.shard_channels = shards;
    spec.rank_partition = false;
    expect_split_identical(
        spec, tmp_path(std::string("sharded_") + memory_mode_name(GetParam()) +
                       "_" + std::to_string(shards)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SnapshotSplit,
                         ::testing::ValuesIn(kAllMemoryModes),
                         [](const auto& param_info) {
                           std::string n = memory_mode_name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Splitting twice (restore, run, checkpoint again, restore again) composes:
// the second restore starts from a snapshot written by a restored run.
TEST(SnapshotSplit, DoubleSplitComposes) {
  ExperimentSpec spec = matrix_spec(MemoryMode::kRop);
  const ExperimentResult ref = run_experiment(spec);
  const std::string unbroken = json_of(ref);

  const std::string file_a = tmp_path("double_a");
  const std::string file_b = tmp_path("double_b");
  ExperimentSpec first = spec;
  first.snapshot.out = file_a;
  first.snapshot.stop_at = cut_at(ref, 1, 4);
  ASSERT_TRUE(run_experiment(first).interrupted);

  ExperimentSpec second = spec;
  second.snapshot.in = file_a;
  second.snapshot.out = file_b;
  second.snapshot.stop_at = cut_at(ref, 7, 10);
  ASSERT_TRUE(run_experiment(second).interrupted);

  ExperimentSpec third = spec;
  third.snapshot.in = file_b;
  EXPECT_EQ(unbroken, json_of(run_experiment(third)));
}

// Periodic checkpointing: `every` leaves the last periodic snapshot on
// disk at the natural end; resuming from it replays only the tail and must
// land on the identical document. Also proves periodic writes themselves
// don't perturb the run (the whole point of checkpoint transparency).
TEST(SnapshotSplit, PeriodicCheckpointThenResume) {
  ExperimentSpec spec = matrix_spec(MemoryMode::kElastic);
  const ExperimentResult ref = run_experiment(spec);
  const std::string unbroken = json_of(ref);

  const std::string file = tmp_path("periodic");
  ExperimentSpec periodic = spec;
  periodic.snapshot.out = file;
  // ~3 checkpoints over the run; the file ends holding the last one.
  periodic.snapshot.every = ref.run.cpu_cycles / 3 + 1;
  const ExperimentResult full = run_experiment(periodic);
  EXPECT_FALSE(full.interrupted);
  EXPECT_EQ(unbroken, json_of(full));

  ExperimentSpec resumed = spec;
  resumed.snapshot.in = file;
  EXPECT_EQ(unbroken, json_of(run_experiment(resumed)));
}

// The trace sink rides along (serial loops only): ring contents, head, and
// drop counter survive the split — checked implicitly through the trace
// block of the JSON document plus the event-count fields.
TEST(SnapshotSplit, TraceSinkSurvivesSplit) {
  ExperimentSpec spec = matrix_spec(MemoryMode::kRop);
  spec.telemetry.trace.categories = telemetry::kCatAll;
  spec.telemetry.trace.capacity = 4096;
  const ExperimentResult a = run_experiment(spec);
  ASSERT_NE(a.trace, nullptr);

  const std::string file = tmp_path("trace");
  ExperimentSpec first = spec;
  first.snapshot.out = file;
  first.snapshot.stop_at = cut_at(a, 2, 5);
  ASSERT_TRUE(run_experiment(first).interrupted);
  ExperimentSpec second = spec;
  second.snapshot.in = file;
  const ExperimentResult b = run_experiment(second);
  ASSERT_NE(b.trace, nullptr);

  ASSERT_EQ(a.trace->size(), b.trace->size());
  EXPECT_EQ(a.trace->dropped(), b.trace->dropped());
  EXPECT_EQ(json_of(a), json_of(b));
}

}  // namespace
}  // namespace rop::sim
