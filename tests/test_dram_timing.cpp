// DDR4 timing parameter tests.
#include <gtest/gtest.h>

#include "dram/timing.h"

namespace rop::dram {
namespace {

TEST(Timing, Ddr4DefaultsMatchTableIII) {
  const DramTimings t = make_ddr4_1600_timings();
  // DDR4-1600: 800 MHz command clock.
  EXPECT_EQ(t.tCK_ps, 1250u);
  // Table III: tREFI = 7.8 us -> 6240 cycles; tRFC = 350 ns -> 280 cycles.
  EXPECT_EQ(t.tREFI, 6240u);
  EXPECT_EQ(t.tRFC, 280u);
  EXPECT_TRUE(validate(t));
}

TEST(Timing, FineGrainedRefreshModes) {
  const DramTimings t1 = make_ddr4_1600_timings(RefreshMode::k1x);
  const DramTimings t2 = make_ddr4_1600_timings(RefreshMode::k2x);
  const DramTimings t4 = make_ddr4_1600_timings(RefreshMode::k4x);
  EXPECT_EQ(t2.tREFI, t1.tREFI / 2);
  EXPECT_EQ(t4.tREFI, t1.tREFI / 4);
  // JEDEC: tRFC shrinks with FGR but NOT proportionally (the refresh duty
  // cycle worsens at finer granularity).
  EXPECT_LT(t2.tRFC, t1.tRFC);
  EXPECT_LT(t4.tRFC, t2.tRFC);
  EXPECT_GT(t2.tRFC, t1.tRFC / 2);
  EXPECT_GT(t4.tRFC, t1.tRFC / 4);
  EXPECT_TRUE(validate(t2));
  EXPECT_TRUE(validate(t4));
}

TEST(Timing, ValidateRejectsInconsistentSets) {
  DramTimings t = make_ddr4_1600_timings();
  t.tRC = t.tRAS + t.tRP + 1;
  EXPECT_FALSE(validate(t));

  t = make_ddr4_1600_timings();
  t.tRFC = t.tREFI;  // duty cycle 1: memory never available
  EXPECT_FALSE(validate(t));

  t = make_ddr4_1600_timings();
  t.tCK_ps = 0;
  EXPECT_FALSE(validate(t));

  t = make_ddr4_1600_timings();
  t.tFAW = t.tRRD - 1;
  EXPECT_FALSE(validate(t));
}

TEST(Timing, DataDoneLatencies) {
  const DramTimings t = make_ddr4_1600_timings();
  EXPECT_EQ(t.read_data_done(100), 100 + t.CL + t.tBL);
  EXPECT_EQ(t.write_data_done(100), 100 + t.CWL + t.tBL);
  EXPECT_GT(t.read_data_done(0), t.write_data_done(0) - t.CWL);
}

TEST(Timing, UnitConversionRoundTrip) {
  const DramTimings t = make_ddr4_1600_timings();
  EXPECT_DOUBLE_EQ(t.cycles_to_ns(800), 1000.0);  // 800 cycles @1.25ns = 1us
  EXPECT_EQ(t.ns_to_cycles(350.0), 280u);
  EXPECT_EQ(t.ns_to_cycles(t.cycles_to_ns(123)), 123u);
}

TEST(Timing, NsToCyclesRoundsUpNonDivisibleValues) {
  // Regression: ns_to_cycles used to truncate, so a duration that does not
  // divide the clock period evenly was reported one cycle SHORT — an
  // optimistic timing violation (e.g. 100.3 ns @ 1.25 ns/cycle is 80.24
  // cycles and must cost 81, not 80).
  const DramTimings t = make_ddr4_1600_timings();
  EXPECT_EQ(t.ns_to_cycles(100.3), 81u);
  EXPECT_EQ(t.ns_to_cycles(0.1), 1u);    // any nonzero time costs a cycle
  EXPECT_EQ(t.ns_to_cycles(1.25), 1u);   // exact values stay exact
  EXPECT_EQ(t.ns_to_cycles(350.0), 280u);
  EXPECT_EQ(t.ns_to_cycles(90.0), 72u);
  EXPECT_EQ(t.ns_to_cycles(0.0), 0u);
}

TEST(Timing, PerBankRfcScalesWithFineGrainedRefresh) {
  // Regression: k2x/k4x used to leave tRFCpb at the k1x value (72 cycles =
  // 90 ns), so per-bank refresh under FGR paid the FULL-rate per-bank cost
  // at 2x/4x the cadence. It must shrink with the same JEDEC ratio as tRFC.
  const DramTimings t1 = make_ddr4_1600_timings(RefreshMode::k1x);
  const DramTimings t2 = make_ddr4_1600_timings(RefreshMode::k2x);
  const DramTimings t4 = make_ddr4_1600_timings(RefreshMode::k4x);
  EXPECT_EQ(t1.tRFCpb, 72u);
  EXPECT_LT(t2.tRFCpb, t1.tRFCpb);
  EXPECT_LT(t4.tRFCpb, t2.tRFCpb);
  // Same non-proportional shrink ratio as the whole-rank tRFC table
  // (260/350 at 2x, 160/350 at 4x), rounded up to whole cycles.
  EXPECT_EQ(t2.tRFCpb, t1.ns_to_cycles(90.0 * 260.0 / 350.0));
  EXPECT_EQ(t4.tRFCpb, t1.ns_to_cycles(90.0 * 160.0 / 350.0));
  for (const DramTimings& t : {t1, t2, t4}) {
    EXPECT_TRUE(validate(t));
    EXPECT_LT(t.tRFCpb, t.tRFC);
    EXPECT_GT(t.tRFCpb, 0u);
  }
}

TEST(Timing, OrganizationCapacity) {
  DramOrganization org;  // defaults: 1ch, 1 rank, 8 banks, 64K rows, 128 col
  EXPECT_EQ(org.lines_per_bank(), 64ull * 1024 * 128);
  EXPECT_EQ(org.total_lines(), org.lines_per_bank() * 8);
  EXPECT_EQ(org.capacity_bytes(), org.total_lines() * kLineBytes);  // 4 GiB
  EXPECT_EQ(org.capacity_bytes(), 4ull << 30);
}

TEST(Timing, RefreshDutyCycleBelowFivePercent) {
  const DramTimings t = make_ddr4_1600_timings();
  const double duty = static_cast<double>(t.tRFC) / t.tREFI;
  EXPECT_GT(duty, 0.03);
  EXPECT_LT(duty, 0.05);
}

}  // namespace
}  // namespace rop::dram
