// Trace file I/O tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace rop::workload {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rop_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, WriteReadRoundTrip) {
  std::vector<TraceRecord> recs{{10, false, 0x40},
                                {0, true, 0x1fc0},
                                {4096, false, 0xdeadbee0 & ~63ull}};
  write_trace_file(path("t.trace"), recs);
  const auto back = read_trace_file(path("t.trace"));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].gap, recs[i].gap);
    EXPECT_EQ(back[i].is_write, recs[i].is_write);
    EXPECT_EQ(back[i].addr, recs[i].addr);
  }
}

TEST_F(TraceIoTest, CommentsAndBlankLinesSkipped) {
  std::ofstream out(path("c.trace"));
  out << "# header comment\n\n42 R 0x1000\n# trailing\n7 W 0x2000\n";
  out.close();
  const auto recs = read_trace_file(path("c.trace"));
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].gap, 42u);
  EXPECT_FALSE(recs[0].is_write);
  EXPECT_TRUE(recs[1].is_write);
}

TEST_F(TraceIoTest, MalformedRecordThrowsWithLineNumber) {
  std::ofstream out(path("bad.trace"));
  out << "42 R 0x1000\nnot a record\n";
  out.close();
  try {
    (void)read_trace_file(path("bad.trace"));
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
}

TEST_F(TraceIoTest, BadOpcodeRejected) {
  std::ofstream out(path("op.trace"));
  out << "1 X 0x40\n";
  out.close();
  EXPECT_THROW(read_trace_file(path("op.trace")), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_file(path("nonexistent.trace")),
               std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceRejected) {
  std::ofstream out(path("empty.trace"));
  out << "# only a comment\n";
  out.close();
  EXPECT_THROW(read_trace_file(path("empty.trace")), std::runtime_error);
}

TEST(MemoryTrace, LoopsForever) {
  MemoryTrace t({{1, false, 0x40}, {2, true, 0x80}});
  EXPECT_EQ(t.next().gap, 1u);
  EXPECT_EQ(t.next().gap, 2u);
  EXPECT_EQ(t.next().gap, 1u);  // wrapped
  t.reset();
  EXPECT_EQ(t.next().gap, 1u);
}

TEST_F(TraceIoTest, CaptureSnapshotsGenerator) {
  SyntheticConfig cfg;
  cfg.seed = 77;
  SyntheticTrace gen(cfg);
  const auto recs = capture(gen, 500);
  EXPECT_EQ(recs.size(), 500u);

  // A captured trace replayed via MemoryTrace matches the generator replay.
  gen.reset();
  MemoryTrace replay(recs);
  for (int i = 0; i < 500; ++i) {
    const TraceRecord a = gen.next();
    const TraceRecord b = replay.next();
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.gap, b.gap);
  }
}

TEST_F(TraceIoTest, GeneratorCaptureSurvivesFileRoundTrip) {
  SyntheticTrace gen(SyntheticConfig{});
  const auto recs = capture(gen, 200);
  write_trace_file(path("gen.trace"), recs);
  const auto back = read_trace_file(path("gen.trace"));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].addr, recs[i].addr);
  }
}

}  // namespace
}  // namespace rop::workload
