// FR-FCFS scheduler tests.
#include <gtest/gtest.h>

#include "mem/scheduler.h"

namespace rop::mem {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : t(dram::make_ddr4_1600_timings()) {
    org.channels = 1;
    org.ranks = 2;
    org.banks = 8;
  }

  Request make_req(RequestId id, ReqType type, RankId rank, BankId bank,
                   RowId row, ColumnId col = 0, Cycle arrival = 0) {
    Request r;
    r.id = id;
    r.type = type;
    r.coord = DramCoord{0, rank, bank, row, col};
    r.arrival = arrival;
    return r;
  }

  static bool never_blocked(const Request&, int) { return false; }

  dram::DramTimings t;
  dram::DramOrganization org;
  Scheduler sched{SchedulerConfig{}};
};

TEST_F(SchedulerTest, EmptyQueuesPickNothing) {
  dram::Channel ch(t, org);
  std::deque<Request> reads;
  QueueView views[] = {{&reads, 0}};
  EXPECT_FALSE(sched.pick(views, ch, 0, never_blocked).has_value());
}

TEST_F(SchedulerTest, ClosedBankGetsActivate) {
  dram::Channel ch(t, org);
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 42)};
  QueueView views[] = {{&reads, 0}};
  const auto pick = sched.pick(views, ch, 0, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kActivate);
  EXPECT_EQ(pick->cmd.coord.row, 42u);
  EXPECT_FALSE(pick->services_request());
}

TEST_F(SchedulerTest, RowHitBeatsOlderRowMiss) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // Older request misses (bank 0 row 9); younger hits open row 7 in bank 0.
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 9, 0, 0),
                            make_req(2, ReqType::kRead, 0, 0, 7, 3, 1)};
  QueueView views[] = {{&reads, 0}};
  const auto pick = sched.pick(views, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
  EXPECT_EQ(pick->cmd.request, 2u);
  EXPECT_TRUE(pick->services_request());
  EXPECT_EQ(pick->request_index, 1u);
}

TEST_F(SchedulerTest, RowConflictPrechargesWhenNoTakerRemains) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 9)};
  QueueView views[] = {{&reads, 0}};
  const auto pick = sched.pick(views, ch, t.tRAS, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kPrecharge);
}

TEST_F(SchedulerTest, OpenRowKeptWhileYoungerRequestStillHitsIt) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // Older conflicts with open row 7 but a younger request still wants it
  // and merely isn't timing-ready: the scheduler must not close the row
  // (it will pick the younger row-hit instead once ready; here the hit IS
  // ready so pass 1 takes it).
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 9),
                            make_req(2, ReqType::kRead, 0, 0, 7)};
  QueueView views[] = {{&reads, 0}};
  const auto pick = sched.pick(views, ch, t.tRAS, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
  EXPECT_EQ(pick->cmd.request, 2u);
}

TEST_F(SchedulerTest, QueuePriorityOrderRespected) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 7)};
  std::deque<Request> prefetches{make_req(2, ReqType::kPrefetch, 0, 0, 7)};
  // Both row-hit; the first view wins.
  QueueView views_rp[] = {{&reads, 0}, {&prefetches, 2}};
  auto pick = sched.pick(views_rp, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.request, 1u);

  QueueView views_pr[] = {{&prefetches, 2}, {&reads, 0}};
  pick = sched.pick(views_pr, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.request, 2u);
}

TEST_F(SchedulerTest, BlockedPredicateMasksRequests) {
  dram::Channel ch(t, org);
  std::deque<Request> reads{make_req(1, ReqType::kRead, 0, 0, 42),
                            make_req(2, ReqType::kRead, 1, 0, 42)};
  QueueView views[] = {{&reads, 0}};
  const auto rank0_blocked = [](const Request& r, int) {
    return r.coord.rank == 0;
  };
  const auto pick = sched.pick(views, ch, 0, rank0_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.coord.rank, 1u);
}

TEST_F(SchedulerTest, WriteGetsWriteCommand) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 2, 5, 0}, 0},
           0);
  std::deque<Request> writes{make_req(9, ReqType::kWrite, 0, 2, 5)};
  QueueView views[] = {{&writes, 1}};
  const auto pick = sched.pick(views, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kWrite);
  EXPECT_EQ(pick->queue_id, 1);
}

}  // namespace
}  // namespace rop::mem
