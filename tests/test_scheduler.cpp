// FR-FCFS scheduler tests (arena-backed queues).
#include <gtest/gtest.h>

#include <vector>

#include "mem/scheduler.h"

namespace rop::mem {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : t(dram::make_ddr4_1600_timings()) {
    org.channels = 1;
    org.ranks = 2;
    org.banks = 8;
  }

  /// Allocate a request in the arena and append its index to `q`.
  void add(std::vector<RequestIndex>& q, RequestId id, ReqType type,
           RankId rank, BankId bank, RowId row, ColumnId col = 0,
           Cycle arrival = 0) {
    Request r;
    r.id = id;
    r.type = type;
    r.coord = DramCoord{0, rank, bank, row, col};
    r.arrival = arrival;
    q.push_back(arena.alloc(r));
  }

  [[nodiscard]] QueueView view(const std::vector<RequestIndex>& q,
                               int id) const {
    return QueueView{&arena, &q, id};
  }

  static bool never_blocked(const Request&, int) { return false; }

  dram::DramTimings t;
  dram::DramOrganization org;
  RequestArena arena;
  Scheduler sched{SchedulerConfig{}};
};

TEST_F(SchedulerTest, EmptyQueuesPickNothing) {
  dram::Channel ch(t, org);
  std::vector<RequestIndex> reads;
  QueueView views[] = {view(reads, 0)};
  EXPECT_FALSE(sched.pick(views, ch, 0, never_blocked).has_value());
  EXPECT_EQ(sched.earliest_issue_cycle(views, ch, 0, never_blocked),
            kNeverCycle);
}

TEST_F(SchedulerTest, ClosedBankGetsActivate) {
  dram::Channel ch(t, org);
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 42);
  QueueView views[] = {view(reads, 0)};
  const auto pick = sched.pick(views, ch, 0, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kActivate);
  EXPECT_EQ(pick->cmd.coord.row, 42u);
  EXPECT_FALSE(pick->services_request());
}

TEST_F(SchedulerTest, RowHitBeatsOlderRowMiss) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // Older request misses (bank 0 row 9); younger hits open row 7 in bank 0.
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 9, 0, 0);
  add(reads, 2, ReqType::kRead, 0, 0, 7, 3, 1);
  QueueView views[] = {view(reads, 0)};
  const auto pick = sched.pick(views, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
  EXPECT_EQ(pick->cmd.request, 2u);
  EXPECT_TRUE(pick->services_request());
  EXPECT_EQ(pick->request_index, 1u);
}

TEST_F(SchedulerTest, RowConflictPrechargesWhenNoTakerRemains) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 9);
  QueueView views[] = {view(reads, 0)};
  const auto pick = sched.pick(views, ch, t.tRAS, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kPrecharge);
}

TEST_F(SchedulerTest, OpenRowKeptWhileYoungerRequestStillHitsIt) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // Older conflicts with open row 7 but a younger request still wants it
  // and merely isn't timing-ready: the scheduler must not close the row
  // (it will pick the younger row-hit instead once ready; here the hit IS
  // ready so pass 1 takes it).
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 9);
  add(reads, 2, ReqType::kRead, 0, 0, 7);
  QueueView views[] = {view(reads, 0)};
  const auto pick = sched.pick(views, ch, t.tRAS, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
  EXPECT_EQ(pick->cmd.request, 2u);
}

TEST_F(SchedulerTest, QueuePriorityOrderRespected) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  std::vector<RequestIndex> reads;
  std::vector<RequestIndex> prefetches;
  add(reads, 1, ReqType::kRead, 0, 0, 7);
  add(prefetches, 2, ReqType::kPrefetch, 0, 0, 7);
  // Both row-hit; the first view wins.
  QueueView views_rp[] = {view(reads, 0), view(prefetches, 2)};
  auto pick = sched.pick(views_rp, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.request, 1u);

  QueueView views_pr[] = {view(prefetches, 2), view(reads, 0)};
  pick = sched.pick(views_pr, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.request, 2u);
}

TEST_F(SchedulerTest, BlockedPredicateMasksRequests) {
  dram::Channel ch(t, org);
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 42);
  add(reads, 2, ReqType::kRead, 1, 0, 42);
  QueueView views[] = {view(reads, 0)};
  const auto rank0_blocked = [](const Request& r, int) {
    return r.coord.rank == 0;
  };
  const auto pick = sched.pick(views, ch, 0, rank0_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.coord.rank, 1u);

  // With every request masked nothing can ever issue: the unblock point is
  // a separate controller event, so the scan reports "never".
  const auto all_blocked = [](const Request&, int) { return true; };
  EXPECT_EQ(sched.earliest_issue_cycle(views, ch, 0, all_blocked),
            kNeverCycle);
}

TEST_F(SchedulerTest, WriteGetsWriteCommand) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 2, 5, 0}, 0},
           0);
  std::vector<RequestIndex> writes;
  add(writes, 9, ReqType::kWrite, 0, 2, 5);
  QueueView views[] = {view(writes, 1)};
  const auto pick = sched.pick(views, ch, t.tRCD, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kWrite);
  EXPECT_EQ(pick->queue_id, 1);
}

// ---------------------------------------------------------------------------
// earliest_issue_cycle: the event-driven clock's scan must agree with pick()
// on frozen state — pick() returns nothing strictly before the reported
// cycle and returns a command exactly at it.

TEST_F(SchedulerTest, EarliestIssueClampsReadyCandidateToNextTick) {
  dram::Channel ch(t, org);
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 42);
  QueueView views[] = {view(reads, 0)};
  // The ACT is issuable immediately; on frozen state the next tick that can
  // act is now + 1.
  EXPECT_EQ(sched.earliest_issue_cycle(views, ch, 5, never_blocked), 6u);
}

TEST_F(SchedulerTest, EarliestIssueMatchesFirstPickForRowHit) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 7);
  QueueView views[] = {view(reads, 0)};
  const Cycle when = sched.earliest_issue_cycle(views, ch, 0, never_blocked);
  EXPECT_EQ(when, Cycle{t.tRCD});
  for (Cycle c = 1; c < when; ++c) {
    EXPECT_FALSE(sched.pick(views, ch, c, never_blocked).has_value())
        << "pick() issued before the reported earliest cycle " << when
        << " at " << c;
  }
  const auto pick = sched.pick(views, ch, when, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
}

TEST_F(SchedulerTest, EarliestIssueMatchesFirstPickForPrecharge) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // Row conflict with no taker: the first possible command is the PRE at
  // tRAS expiry.
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 9);
  QueueView views[] = {view(reads, 0)};
  const Cycle when = sched.earliest_issue_cycle(views, ch, 0, never_blocked);
  EXPECT_EQ(when, Cycle{t.tRAS});
  for (Cycle c = 1; c < when; ++c) {
    EXPECT_FALSE(sched.pick(views, ch, c, never_blocked).has_value());
  }
  const auto pick = sched.pick(views, ch, when, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kPrecharge);
}

TEST_F(SchedulerTest, EarliestIssueSuppressesPrechargeWhileTakerRemains) {
  dram::Channel ch(t, org);
  ch.issue(dram::Command{dram::CmdType::kActivate, DramCoord{0, 0, 0, 7, 0}, 0},
           0);
  // A conflicting read would want a PRE at tRAS, but a younger row-hit
  // keeps the row open: the next candidate is the hit's column command at
  // tRCD, exactly what pick() will choose.
  std::vector<RequestIndex> reads;
  add(reads, 1, ReqType::kRead, 0, 0, 9);
  add(reads, 2, ReqType::kRead, 0, 0, 7);
  QueueView views[] = {view(reads, 0)};
  const Cycle when = sched.earliest_issue_cycle(views, ch, 0, never_blocked);
  EXPECT_EQ(when, Cycle{t.tRCD});
  const auto pick = sched.pick(views, ch, when, never_blocked);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->cmd.type, dram::CmdType::kRead);
  EXPECT_EQ(pick->cmd.request, 2u);
}

}  // namespace
}  // namespace rop::mem
