// Write-queue semantics: read-after-write forwarding against the indexed
// write queue, forwarding after coalescing, and the admission-control
// guarantee that a rejected request leaves stats and index state untouched.
#include <gtest/gtest.h>

#include <memory>

#include "mem/controller.h"

namespace rop::mem {
namespace {

class WriteQueueTest : public ::testing::Test {
 protected:
  WriteQueueTest() : t(dram::make_ddr4_1600_timings()) {
    org.channels = 1;
    org.ranks = 2;
    org.banks = 8;
  }

  std::unique_ptr<Controller> make(ControllerConfig cfg = {}) {
    return std::make_unique<Controller>(0, t, org, cfg, &stats);
  }

  Request req(ReqType type, Address line, RankId rank = 0, BankId bank = 0,
              RowId row = 0, ColumnId col = 0) {
    Request r;
    r.id = next_id_++;
    r.type = type;
    r.line_addr = line;
    r.coord = DramCoord{0, rank, bank, row, col};
    return r;
  }

  dram::DramTimings t;
  dram::DramOrganization org;
  StatRegistry stats;
  RequestId next_id_ = 1;
};

TEST_F(WriteQueueTest, ForwardingReturnsCoalescedNewestWrite) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);

  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x1000, 0, 2, 7, 1), 0));
  // A second write to the same line coalesces into the queued entry.
  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x1000, 0, 2, 7, 1), 5));
  EXPECT_EQ(stats.counter_value("mem.write_coalesced"), 1u);
  EXPECT_EQ(c->write_queue_depth(), 1u);

  // A read to the line forwards from the (coalesced) write queue entry.
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x1000, 0, 2, 7, 1), 10));
  EXPECT_EQ(stats.counter_value("mem.read_forwarded"), 1u);
  const auto done = c->drain_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].serviced_by, ServicedBy::kWriteForward);
  EXPECT_EQ(done[0].completion, 11u);  // forwarding costs one cycle
  EXPECT_EQ(c->read_queue_depth(), 0u);
}

TEST_F(WriteQueueTest, ForwardingStopsOnceTheWriteIssues) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  cfg.sched.write_drain_high = 1;  // drain immediately
  auto c = make(cfg);

  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x2000, 1, 3, 4, 2), 0));
  // Tick until the write has gone to DRAM (the queue empties).
  Cycle now = 0;
  for (; now < 200 && c->write_queue_depth() > 0; ++now) c->tick(now);
  ASSERT_EQ(c->write_queue_depth(), 0u);
  EXPECT_EQ(stats.counter_value("mem.writes_issued"), 1u);

  // The index entry must be gone with the write: this read goes to DRAM.
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x2000, 1, 3, 4, 2), now));
  EXPECT_EQ(stats.counter_value("mem.read_forwarded"), 0u);
  EXPECT_EQ(c->read_queue_depth(), 1u);
}

TEST_F(WriteQueueTest, RejectedWriteLeavesStateUntouched) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  cfg.sched.write_queue_capacity = 2;
  // Keep the controller from draining the queue mid-test.
  cfg.sched.write_drain_high = 64;
  auto c = make(cfg);

  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x100, 0, 0, 1, 0), 0));
  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x200, 0, 1, 2, 0), 1));
  ASSERT_EQ(c->write_queue_depth(), 2u);
  const std::uint64_t writes_before = stats.counter_value("mem.writes");

  // Queue full: the write is rejected and must not perturb anything —
  // not the write counter, not pending_demand, not the forwarding index.
  EXPECT_FALSE(c->enqueue(req(ReqType::kWrite, 0x300, 0, 2, 3, 0), 7));
  EXPECT_EQ(stats.counter_value("mem.writes"), writes_before);
  EXPECT_EQ(c->write_queue_depth(), 2u);
  EXPECT_EQ(c->pending_demand(0), 2u);

  // The rejected line never entered the index: a read to it must miss the
  // forwarding path and queue for DRAM.
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x300, 0, 2, 3, 0), 8));
  EXPECT_EQ(stats.counter_value("mem.read_forwarded"), 0u);
  EXPECT_EQ(c->read_queue_depth(), 1u);
}

TEST_F(WriteQueueTest, RejectedReadLeavesStateUntouched) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  cfg.sched.read_queue_capacity = 2;
  auto c = make(cfg);

  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x100, 0, 0, 1, 0), 0));
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x200, 0, 1, 2, 0), 0));
  const std::uint64_t reads_before = stats.counter_value("mem.reads");

  EXPECT_FALSE(c->enqueue(req(ReqType::kRead, 0x300, 0, 2, 3, 0), 1));
  EXPECT_EQ(stats.counter_value("mem.reads"), reads_before);
  EXPECT_EQ(c->read_queue_depth(), 2u);
  EXPECT_EQ(c->pending_demand(0), 2u);
}

TEST_F(WriteQueueTest, PendingDemandTracksPerRankAcrossLifecycle) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);

  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x100, 0, 0, 1, 0), 0));
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x9100, 1, 4, 2, 0), 0));
  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x9200, 1, 5, 3, 0), 0));
  EXPECT_EQ(c->pending_demand(0), 1u);
  EXPECT_EQ(c->pending_demand(1), 2u);

  // Coalesced writes add no occupancy.
  ASSERT_TRUE(c->enqueue(req(ReqType::kWrite, 0x9200, 1, 5, 3, 0), 1));
  EXPECT_EQ(c->pending_demand(1), 2u);

  // Forwarded reads complete immediately and add no occupancy either.
  ASSERT_TRUE(c->enqueue(req(ReqType::kRead, 0x9200, 1, 5, 3, 0), 2));
  EXPECT_EQ(c->pending_demand(1), 2u);

  // Drain everything; the incremental counters must return to zero.
  for (Cycle now = 3; now < 2000 && !c->idle(); ++now) {
    c->tick(now);
    (void)c->drain_completed();
  }
  EXPECT_TRUE(c->idle());
  EXPECT_EQ(c->pending_demand(0), 0u);
  EXPECT_EQ(c->pending_demand(1), 0u);
}

}  // namespace
}  // namespace rop::mem
