// ROP engine tests against a real controller: state machine, gating,
// staging, buffer service, coherence, and the hit-rate metric.
#include <gtest/gtest.h>

#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::engine {
namespace {

class RopEngineTest : public ::testing::Test {
 protected:
  mem::MemoryConfig config() {
    mem::MemoryConfig cfg;
    cfg.timings = dram::make_ddr4_1600_timings();
    cfg.org.ranks = 1;
    cfg.scheme = mem::MapScheme::kRowRankBankColumn;
    cfg.ctrl.refresh_enabled = true;
    cfg.ctrl.policy = mem::RefreshPolicy::kRopDrain;
    return cfg;
  }

  RopConfig rop_config() {
    RopConfig rc;
    rc.training_refreshes = 5;  // fast tests
    rc.eval_period_refreshes = 10;
    return rc;
  }

  /// Drive the memory with a steady unit-stride read stream at the given
  /// inter-arrival time until `until`, then return served/queued stats.
  struct StreamResult {
    std::uint64_t completed = 0;
    std::uint64_t sram_served = 0;
  };
  StreamResult run_stream(mem::MemorySystem& mem, Cycle until,
                          Cycle interarrival, std::uint64_t& line_cursor,
                          Cycle from = 0) {
    StreamResult out;
    for (Cycle now = from; now < until; ++now) {
      if (now % interarrival == 0 && mem.can_accept(0, mem::ReqType::kRead)) {
        mem.enqueue(line_cursor << kLineShift, mem::ReqType::kRead, 0, now);
        ++line_cursor;
      }
      mem.tick(now);
      for (const auto& req : mem.drain_completed()) {
        ++out.completed;
        if (req.serviced_by == mem::ServicedBy::kSramBuffer) ++out.sram_served;
      }
    }
    return out;
  }
};

TEST_F(RopEngineTest, StartsInTrainingAndTransitions) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  EXPECT_EQ(engine.state(), RopState::kTraining);
  std::uint64_t cursor = 0;
  const Cycle trefi = config().timings.tREFI;
  run_stream(mem, 10 * trefi, 20, cursor);
  EXPECT_NE(engine.state(), RopState::kTraining);
  // Steady stream: every window has B>0 and A>0.
  EXPECT_DOUBLE_EQ(engine.lambda(), 1.0);
}

TEST_F(RopEngineTest, SteadyStreamGetsSramServiceDuringRefresh) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  std::uint64_t cursor = 0;
  const Cycle trefi = config().timings.tREFI;
  const auto res = run_stream(mem, 40 * trefi, 16, cursor);
  EXPECT_GT(res.completed, 0u);
  EXPECT_GT(res.sram_served, 0u);
  EXPECT_GT(engine.overall_hit_rate(), 0.3);
  EXPECT_GT(stats.counter_value("rop.decisions_prefetch"), 10u);
  EXPECT_GT(stats.counter_value("rop.buffer_fills"), 0u);
}

TEST_F(RopEngineTest, QuietRankSkipsPrefetching) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = config().timings.tREFI;
  // Brief training traffic, then silence: beta -> 1, decisions skip.
  std::uint64_t cursor = 0;
  run_stream(mem, 2 * trefi, 25, cursor);
  for (Cycle now = 2 * trefi; now < 30 * trefi; ++now) {
    mem.tick(now);
    mem.drain_completed();
  }
  EXPECT_GT(stats.counter_value("rop.decisions_skip"), 5u);
  EXPECT_EQ(stats.counter_value("rop.rounds_empty"), 0u);
}

TEST_F(RopEngineTest, AlwaysPrefetchAblationStagesEveryRefresh) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopConfig rc = rop_config();
  rc.gating = GatingMode::kAlwaysPrefetch;
  rc.saturation_guard_bursts = 0.0;
  RopEngine engine(rc, mem.controller(0), mem.address_map(), &stats);
  std::uint64_t cursor = 0;
  const Cycle trefi = config().timings.tREFI;
  run_stream(mem, 20 * trefi, 30, cursor);
  EXPECT_EQ(stats.counter_value("rop.decisions_skip"), 0u);
  EXPECT_GT(stats.counter_value("rop.decisions_prefetch"), 10u);
}

TEST_F(RopEngineTest, NeverPrefetchAblationNeverStages) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopConfig rc = rop_config();
  rc.gating = GatingMode::kNeverPrefetch;
  RopEngine engine(rc, mem.controller(0), mem.address_map(), &stats);
  std::uint64_t cursor = 0;
  const Cycle trefi = config().timings.tREFI;
  run_stream(mem, 20 * trefi, 30, cursor);
  EXPECT_EQ(stats.counter_value("rop.decisions_prefetch"), 0u);
  EXPECT_EQ(stats.counter_value("rop.buffer_fills"), 0u);
  EXPECT_EQ(engine.buffer().stats().rounds, 0u);
}

TEST_F(RopEngineTest, WriteInvalidatesBufferedLine) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopConfig rc = rop_config();
  RopEngine engine(rc, mem.controller(0), mem.address_map(), &stats);
  std::uint64_t cursor = 0;
  const Cycle trefi = config().timings.tREFI;
  run_stream(mem, 20 * trefi, 16, cursor);
  // Force a write to whatever would be prefetched next: after staging, the
  // coherence path must drop it. Easiest check: the invalidation counter
  // moves when writes overlap prefetched lines in a write-bearing stream.
  // Drive interleaved writes over the stream's future lines.
  const std::uint64_t base = cursor;
  Cycle now = 20 * trefi;
  for (; now < 30 * trefi; ++now) {
    if (now % 16 == 0) {
      mem.enqueue((base + (now % 64)) << kLineShift, mem::ReqType::kWrite, 0,
                  now);
    }
    mem.tick(now);
    mem.drain_completed();
  }
  // The buffer never returns stale data: every SRAM-serviced request was
  // either never written or invalidated first. The invariant is enforced
  // structurally; here we just confirm invalidations occur.
  EXPECT_GE(engine.buffer().stats().invalidations +
                stats.counter_value("rop.prefetch_dropped_stale"),
            0u);
}

TEST_F(RopEngineTest, SramOnCyclesOnlyOutsideTraining) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = config().timings.tREFI;
  std::uint64_t cursor = 0;
  // During training the buffer is off.
  run_stream(mem, 2 * trefi, 20, cursor);
  EXPECT_EQ(engine.state(), RopState::kTraining);
  EXPECT_EQ(engine.sram_on_cycles(), 0u);
  run_stream(mem, 20 * trefi, 20, cursor, 2 * trefi);
  EXPECT_GT(engine.sram_on_cycles(), 0u);
  EXPECT_LT(engine.sram_on_cycles(), 20u * trefi);
}

TEST_F(RopEngineTest, HitRateMetricStaysInUnitInterval) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  std::uint64_t cursor = 0;
  run_stream(mem, 30 * config().timings.tREFI, 13, cursor);
  EXPECT_GE(engine.overall_hit_rate(), 0.0);
  EXPECT_LE(engine.overall_hit_rate(), 1.0);
}

// Regression for the phase-accuracy overflow: phase_hits_ counts every
// buffer service (repeat reads of one staged line, lock-window re-serves)
// while phase_fills_ counts fills, so the old accuracy = hits / fills
// exceeded 1.0 under repeat-heavy demand and masked prediction drift.
// Accuracy now counts each staged line at most once per round; the raw
// hits-per-fill ratio is reported separately and may legitimately top 1.0.
TEST_F(RopEngineTest, PhaseAccuracyBoundedUnderRepeatHits) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = config().timings.tREFI;
  // Stuttered stride: each line read three times back-to-back, fast enough
  // that freeze windows see several services of the same staged line.
  std::uint64_t i = 0;
  for (Cycle now = 0; now < 60 * trefi; ++now) {
    if (now % 8 == 0 && mem.can_accept(0, mem::ReqType::kRead)) {
      mem.enqueue((i++ / 3) << kLineShift, mem::ReqType::kRead, 0, now);
    }
    mem.tick(now);
    mem.drain_completed();
  }
  const auto* acc = stats.find_scalar("rop.phase_accuracy");
  const auto* hpf = stats.find_scalar("rop.phase_hits_per_fill");
  ASSERT_NE(acc, nullptr);
  ASSERT_NE(hpf, nullptr);
  ASSERT_GT(acc->count(), 0u);
  // The repeat regime actually occurred: raw hits outnumber fills, which
  // is exactly the ratio the old code recorded as "accuracy".
  EXPECT_GT(hpf->max(), 1.0);
  EXPECT_LE(acc->max(), 1.0);
  EXPECT_GT(acc->max(), 0.0);
}

// Normal regime: a plain unit-stride stream reads each line at most once,
// so accuracy and hits-per-fill agree and both stay in the unit interval.
TEST_F(RopEngineTest, PhaseAccuracyNormalRegimeStaysInUnitInterval) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  std::uint64_t cursor = 0;
  run_stream(mem, 60 * config().timings.tREFI, 16, cursor);
  const auto* acc = stats.find_scalar("rop.phase_accuracy");
  const auto* hpf = stats.find_scalar("rop.phase_hits_per_fill");
  ASSERT_NE(acc, nullptr);
  ASSERT_NE(hpf, nullptr);
  ASSERT_GT(acc->count(), 0u);
  EXPECT_GT(acc->max(), 0.0);
  EXPECT_LE(acc->max(), 1.0);
  EXPECT_LE(hpf->max(), 1.0);
  // Consumed lines are a subset of served hits.
  EXPECT_GE(hpf->max(), acc->max());
}

TEST_F(RopEngineTest, UniformBudgetAblationRuns) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopConfig rc = rop_config();
  rc.uniform_budget = true;
  RopEngine engine(rc, mem.controller(0), mem.address_map(), &stats);
  std::uint64_t cursor = 0;
  run_stream(mem, 20 * config().timings.tREFI, 20, cursor);
  EXPECT_GT(stats.counter_value("rop.buffer_fills"), 0u);
}

TEST_F(RopEngineTest, SaturationGuardSkipsSaturatedRounds) {
  StatRegistry stats;
  mem::MemorySystem mem(config(), &stats);
  RopConfig rc = rop_config();
  RopEngine engine(rc, mem.controller(0), mem.address_map(), &stats);
  std::uint64_t cursor = 0;
  // Inter-arrival 2 cycles: far below the 2x burst-time guard threshold.
  run_stream(mem, 20 * config().timings.tREFI, 2, cursor);
  EXPECT_GT(stats.counter_value("rop.skipped_saturated"), 0u);
}

}  // namespace
}  // namespace rop::engine
