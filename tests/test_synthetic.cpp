// Synthetic workload generator tests.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/spec_profiles.h"
#include "workload/synthetic.h"

namespace rop::workload {
namespace {

TEST(Synthetic, DeterministicForEqualConfig) {
  SyntheticConfig cfg;
  cfg.seed = 5;
  SyntheticTrace a(cfg), b(cfg);
  for (int i = 0; i < 2000; ++i) {
    const TraceRecord ra = a.next();
    const TraceRecord rb = b.next();
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.gap, rb.gap);
    EXPECT_EQ(ra.is_write, rb.is_write);
  }
}

TEST(Synthetic, ResetReplaysFromStart) {
  SyntheticTrace t(SyntheticConfig{});
  std::vector<TraceRecord> first;
  for (int i = 0; i < 100; ++i) first.push_back(t.next());
  t.reset();
  for (int i = 0; i < 100; ++i) {
    const TraceRecord r = t.next();
    EXPECT_EQ(r.addr, first[i].addr);
    EXPECT_EQ(r.gap, first[i].gap);
  }
}

TEST(Synthetic, RecordRingOnOffProducesIdenticalStream) {
  // The prefilled record ring is a pure amortization: any batch size (off,
  // default, odd) must hand out exactly the same record stream, including
  // across a bursty profile that exercises the idle-gap state machine.
  SyntheticConfig base = spec_profile("omnetpp", 3);
  base.burst_ops = 40;
  base.idle_instructions = 20'000;
  for (const std::uint32_t batch : {32u, 5u, 1u}) {
    SyntheticConfig off = base;
    off.batch_records = 0;
    SyntheticConfig on = base;
    on.batch_records = batch;
    SyntheticTrace a(off), b(on);
    for (int i = 0; i < 10'000; ++i) {
      const TraceRecord ra = a.next();
      const TraceRecord rb = b.next();
      ASSERT_EQ(ra.addr, rb.addr) << "batch=" << batch << " i=" << i;
      ASSERT_EQ(ra.gap, rb.gap) << "batch=" << batch << " i=" << i;
      ASSERT_EQ(ra.is_write, rb.is_write) << "batch=" << batch << " i=" << i;
    }
  }
}

TEST(Synthetic, ResetMidBatchReplaysFromStart) {
  SyntheticConfig cfg;
  cfg.batch_records = 16;
  SyntheticTrace t(cfg);
  std::vector<TraceRecord> first;
  for (int i = 0; i < 100; ++i) first.push_back(t.next());
  t.reset();  // ring_pos_ is mid-batch here; reset must discard the ring
  for (int i = 0; i < 100; ++i) {
    const TraceRecord r = t.next();
    ASSERT_EQ(r.addr, first[i].addr) << i;
    ASSERT_EQ(r.gap, first[i].gap) << i;
    ASSERT_EQ(r.is_write, first[i].is_write) << i;
  }
}

TEST(Synthetic, AddressesStayWithinFootprint) {
  SyntheticConfig cfg;
  cfg.footprint_lines = 1000;
  cfg.random_fraction = 0.5;
  SyntheticTrace t(cfg);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(t.next().addr >> kLineShift, 1000u);
  }
}

TEST(Synthetic, MeanGapApproximatesConfig) {
  SyntheticConfig cfg;
  cfg.mean_gap = 80;
  SyntheticTrace t(cfg);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += t.next().gap;
  EXPECT_NEAR(sum / n, 80.0, 8.0);
}

TEST(Synthetic, WriteFractionApproximatesConfig) {
  SyntheticConfig cfg;
  cfg.write_fraction = 0.4;
  SyntheticTrace t(cfg);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += t.next().is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.03);
}

TEST(Synthetic, PureStreamIsSequential) {
  SyntheticConfig cfg;
  cfg.streams = {{{+1}, 1.0}};
  cfg.random_fraction = 0.0;
  SyntheticTrace t(cfg);
  Address prev = t.next().addr;
  for (int i = 0; i < 1000; ++i) {
    const Address cur = t.next().addr;
    EXPECT_EQ(cur, prev + kLineBytes);
    prev = cur;
  }
}

TEST(Synthetic, MultiDeltaStreamCycles) {
  SyntheticConfig cfg;
  cfg.streams = {{{+1, +1, +130}, 1.0}};
  cfg.random_fraction = 0.0;
  SyntheticTrace t(cfg);
  const std::int64_t deltas[3] = {1, 1, 130};
  std::uint64_t prev = t.next().addr >> kLineShift;
  for (int i = 1; i < 300; ++i) {
    const std::uint64_t cur = t.next().addr >> kLineShift;
    EXPECT_EQ(cur - prev, static_cast<std::uint64_t>(deltas[i % 3]));
    prev = cur;
  }
}

TEST(Synthetic, EqualWeightStreamsInterleaveRoundRobin) {
  SyntheticConfig cfg;
  cfg.streams = {{{+1}, 1.0}, {{+1}, 1.0}};
  cfg.random_fraction = 0.0;
  cfg.footprint_lines = 1 << 20;
  SyntheticTrace t(cfg);
  // Accesses alternate between two regions (stream starts differ).
  const std::uint64_t half = (1 << 20) / 2;
  int region_prev = -1;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t line = t.next().addr >> kLineShift;
    const int region = line >= half ? 1 : 0;
    if (region_prev >= 0) {
      EXPECT_NE(region, region_prev);
    }
    region_prev = region;
  }
}

TEST(Synthetic, WeightedStreamsGetProportionalShare) {
  SyntheticConfig cfg;
  cfg.streams = {{{+1}, 3.0}, {{+1}, 1.0}};
  cfg.random_fraction = 0.0;
  cfg.footprint_lines = 1 << 20;
  SyntheticTrace t(cfg);
  const std::uint64_t half = (1 << 20) / 2;
  int low = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if ((t.next().addr >> kLineShift) < half) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.75, 0.02);
}

TEST(Synthetic, BurstinessCreatesLongIdleGaps) {
  SyntheticConfig cfg;
  cfg.mean_gap = 10;
  cfg.burst_ops = 50;
  cfg.idle_instructions = 100'000;
  SyntheticTrace t(cfg);
  std::uint32_t max_gap = 0;
  for (int i = 0; i < 5000; ++i) max_gap = std::max(max_gap, t.next().gap);
  EXPECT_GT(max_gap, 50'000u);
}

TEST(SpecProfiles, AllTwelveBenchmarksBuild) {
  for (const auto name : kBenchmarkNames) {
    const SyntheticConfig cfg = spec_profile(name);
    EXPECT_EQ(cfg.name, std::string(name));
    EXPECT_FALSE(cfg.streams.empty());
    EXPECT_GT(cfg.footprint_lines, 0u);
    SyntheticTrace t(cfg);
    for (int i = 0; i < 100; ++i) t.next();
  }
}

TEST(SpecProfiles, IntensiveSplitMatchesTableII) {
  int intensive = 0;
  for (const auto name : kBenchmarkNames) {
    if (is_intensive(name)) ++intensive;
  }
  EXPECT_EQ(intensive, 6);
  EXPECT_TRUE(is_intensive("lbm"));
  EXPECT_TRUE(is_intensive("libquantum"));
  EXPECT_FALSE(is_intensive("gobmk"));
  EXPECT_FALSE(is_intensive("perlbench"));
}

TEST(SpecProfiles, IntensiveBenchmarksHaveSmallerGaps) {
  double intensive_mean = 0, quiet_mean = 0;
  for (const auto name : kBenchmarkNames) {
    const SyntheticConfig cfg = spec_profile(name);
    (is_intensive(name) ? intensive_mean : quiet_mean) += cfg.mean_gap / 6.0;
  }
  EXPECT_LT(intensive_mean, quiet_mean);
}

TEST(SpecProfiles, SeedSaltDecorrelates) {
  SyntheticTrace a(spec_profile("bzip2", 0));
  SyntheticTrace b(spec_profile("bzip2", 1));
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.next().addr == b.next().addr) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(SpecProfiles, WorkloadMixesAreFourWide) {
  std::set<std::string> all;
  for (std::uint32_t wl = 1; wl <= kNumWorkloadMixes; ++wl) {
    const auto mix = workload_mix(wl);
    EXPECT_EQ(mix.size(), 4u);
    for (const auto& b : mix) {
      all.insert(b);
      // Every entry is a known benchmark.
      EXPECT_NE(std::find(kBenchmarkNames.begin(), kBenchmarkNames.end(), b),
                kBenchmarkNames.end());
    }
  }
  EXPECT_EQ(all.size(), 12u);  // every benchmark appears somewhere
}

TEST(SpecProfiles, MixIntensityDecreasesFromWl1ToWl6) {
  const auto count_intensive = [](std::uint32_t wl) {
    int n = 0;
    for (const auto& b : workload_mix(wl)) n += is_intensive(b) ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_intensive(1), 4);
  EXPECT_EQ(count_intensive(6), 0);
  EXPECT_GE(count_intensive(2), count_intensive(5));
}

}  // namespace
}  // namespace rop::workload
