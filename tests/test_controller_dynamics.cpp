// Controller dynamics under load: write-drain hysteresis, starvation
// freedom, row-hit locality benefits, and urgent-refresh overrides.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/memory_system.h"

namespace rop::mem {
namespace {

class DynamicsTest : public ::testing::Test {
 protected:
  MemoryConfig config() {
    MemoryConfig cfg;
    cfg.timings = dram::make_ddr4_1600_timings();
    cfg.org.ranks = 1;
    cfg.ctrl.refresh_enabled = false;  // isolate scheduling behaviour
    return cfg;
  }
};

TEST_F(DynamicsTest, WriteDrainEngagesAtHighWatermarkOnly) {
  MemoryConfig cfg = config();
  cfg.ctrl.sched.write_drain_high = 8;
  cfg.ctrl.sched.write_drain_low = 2;
  StatRegistry stats;
  MemorySystem mem(cfg, &stats);
  // Keep a read stream flowing so writes are not issued opportunistically,
  // and feed writes up to the watermark.
  std::uint64_t rline = 0, wline = 1 << 20;
  Cycle now = 0;
  bool seen_drain = false;
  for (; now < 4000; ++now) {
    if (now % 6 == 0) {
      mem.enqueue((rline++) << kLineShift, ReqType::kRead, 0, now);
    }
    if (now % 30 == 0) {
      mem.enqueue((wline++) << kLineShift, ReqType::kWrite, 0, now);
    }
    mem.tick(now);
    mem.drain_completed();
    seen_drain |= stats.counter_value("mem.writes_issued") > 0;
  }
  // Writes eventually retire (drain mode engaged at the watermark).
  EXPECT_TRUE(seen_drain);
  EXPECT_LT(mem.controller(0).write_queue_depth(),
            cfg.ctrl.sched.write_queue_capacity);
}

TEST_F(DynamicsTest, NoReadStarvationUnderRowHitStorm) {
  // One request conflicts with a row that an endless stream keeps hitting;
  // FR-FCFS must still service the conflicting request (the open row is
  // closed once no *queued* request hits it, and queue capacity guarantees
  // that happens).
  StatRegistry stats;
  MemorySystem mem(config(), &stats);
  // Conflicting request: same bank (0), different row.
  const Address conflict = (1ull << 30);  // far row, bank depends on mapping
  const DramCoord cc = mem.address_map().map(conflict);
  ASSERT_TRUE(mem.enqueue(conflict, ReqType::kRead, 0, 0).has_value());
  bool conflict_done = false;
  std::uint64_t issued = 0;
  std::uint64_t hit_line = 0;
  for (Cycle now = 0; now < 50'000 && !conflict_done; ++now) {
    // Storm of row hits to the same bank, row 0.
    if (now % 5 == 0) {
      const DramCoord storm{cc.channel, cc.rank, cc.bank, 0,
                            static_cast<ColumnId>(hit_line % 128)};
      const Address addr = mem.address_map().unmap(storm);
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++hit_line;
        ++issued;
      }
    }
    mem.tick(now);
    for (const auto& req : mem.drain_completed()) {
      if (req.line_addr == ((conflict >> kLineShift) << kLineShift)) {
        conflict_done = true;
      }
    }
  }
  EXPECT_TRUE(conflict_done) << "row conflict starved behind " << issued
                             << " row hits";
}

TEST_F(DynamicsTest, RowLocalityImprovesLatency) {
  // Sequential lines within one row complete much faster than a row-miss
  // pattern spread over rows of one bank.
  auto mean_latency = [&](bool sequential) {
    StatRegistry stats;
    MemorySystem mem(config(), &stats);
    std::uint64_t completed = 0;
    const int n = 200;
    for (Cycle now = 0; completed < n && now < 100'000; ++now) {
      const std::uint64_t i = now / 20;
      if (now % 20 == 0 && i < n) {
        // Sequential: consecutive lines (same row). Spread: jump rows
        // within the same bank (every 1024 lines under page interleave).
        const Address addr = sequential ? (i << kLineShift)
                                        : (i * 1024) << kLineShift;
        mem.enqueue(addr, ReqType::kRead, 0, now);
      }
      mem.tick(now);
      completed += mem.drain_completed().size();
    }
    return stats.find_scalar("mem.read_latency")->mean();
  };
  EXPECT_LT(mean_latency(true), mean_latency(false));
}

TEST_F(DynamicsTest, UrgentRefreshPreemptsRopDrain) {
  MemoryConfig cfg = config();
  cfg.ctrl.refresh_enabled = true;
  cfg.ctrl.policy = RefreshPolicy::kRopDrain;
  cfg.ctrl.drain_bound = 100'000'000;  // effectively unbounded drain
  StatRegistry stats;
  MemorySystem mem(cfg, &stats);
  const Cycle trefi = cfg.timings.tREFI;
  // Saturating stream: the drain never naturally empties, so only the
  // JEDEC postponement budget can force refreshes.
  std::uint64_t line = 0;
  const Cycle horizon = (cfg.timings.max_postponed_refreshes + 4) * trefi;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now % 4 == 0 && mem.can_accept(line << kLineShift, ReqType::kRead)) {
      if (mem.enqueue(line << kLineShift, ReqType::kRead, 0, now)) ++line;
    }
    mem.tick(now);
    mem.drain_completed();
  }
  // The budget forces refreshes: the running average cannot fall behind by
  // more than max_postponed.
  EXPECT_GE(mem.controller(0).refresh_manager().issued(0), 3u);
}

TEST_F(DynamicsTest, ReadLatencyBoundedWithoutRefresh) {
  StatRegistry stats;
  MemorySystem mem(config(), &stats);
  Rng rng(5);
  std::uint64_t accepted = 0, completed = 0;
  for (Cycle now = 0; now < 50'000; ++now) {
    if (now % 25 == 0) {
      const Address addr = rng.next_below(1 << 20) << kLineShift;
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++accepted;
      }
    }
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  // Light random load, no refresh: every read finishes in queue + ACT +
  // RD + data time, far below a refresh period.
  EXPECT_GT(completed, 0u);
  EXPECT_LT(stats.find_scalar("mem.read_latency")->max(), 500.0);
}

TEST_F(DynamicsTest, PerRankQueuesIsolateUnderPartitionedTraffic) {
  MemoryConfig cfg = config();
  cfg.org.ranks = 4;
  cfg.ctrl.refresh_enabled = true;
  StatRegistry stats;
  MemorySystem mem(cfg, &stats);
  // Traffic only to rank 2's address range (via compose_in_rank).
  std::uint64_t local = 0;
  std::uint64_t completed = 0, accepted = 0;
  const Cycle trefi = cfg.timings.tREFI;
  for (Cycle now = 0; now < 3 * trefi; ++now) {
    if (now % 10 == 0) {
      const Address addr = mem.address_map().compose_in_rank(2, local++);
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++accepted;
      }
    }
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  EXPECT_GT(accepted, 0u);
  // All four ranks still refreshed on cadence even though three are idle.
  for (RankId r = 0; r < 4; ++r) {
    EXPECT_GE(mem.controller(0).refresh_manager().issued(r), 2u);
  }
}

}  // namespace
}  // namespace rop::mem
