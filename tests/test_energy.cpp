// Energy model tests: accounting identities and directional behaviour.
#include <gtest/gtest.h>

#include "energy/dram_power.h"

namespace rop::energy {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest() : t(dram::make_ddr4_1600_timings()) {
    org.ranks = 1;
    org.banks = 8;
  }

  dram::Command act(BankId b, RowId row) {
    return {dram::CmdType::kActivate, DramCoord{0, 0, b, row, 0}, 0};
  }
  dram::Command rd(BankId b, RowId row) {
    return {dram::CmdType::kRead, DramCoord{0, 0, b, row, 0}, 0};
  }
  dram::Command pre(BankId b) {
    return {dram::CmdType::kPrecharge, DramCoord{0, 0, b, 0, 0}, 0};
  }

  dram::DramTimings t;
  dram::DramOrganization org;
};

TEST_F(EnergyTest, IdleChannelHasOnlyBackground) {
  dram::Channel ch(t, org);
  ch.settle_accounting(100000);
  const DramPowerModel model({}, t);
  const EnergyBreakdown e = model.compute(ch);
  EXPECT_GT(e.background_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.act_pre_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.read_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.write_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.refresh_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.io_mj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_mj(), e.background_mj);
}

TEST_F(EnergyTest, BackgroundScalesWithTime) {
  dram::Channel a(t, org), b(t, org);
  a.settle_accounting(1000);
  b.settle_accounting(2000);
  const DramPowerModel model({}, t);
  EXPECT_NEAR(model.compute(b).background_mj,
              2.0 * model.compute(a).background_mj, 1e-9);
}

TEST_F(EnergyTest, ActiveStandbyCostsMoreThanPrecharged) {
  dram::Channel busy(t, org), idle(t, org);
  busy.issue(act(0, 1), 0);  // row stays open the whole time
  busy.settle_accounting(10000);
  idle.settle_accounting(10000);
  const DramPowerModel model({}, t);
  EXPECT_GT(model.compute(busy).background_mj,
            model.compute(idle).background_mj);
}

TEST_F(EnergyTest, EventEnergiesAreChargedPerEvent) {
  dram::Channel ch(t, org);
  ch.issue(act(0, 1), 0);
  ch.issue(rd(0, 1), t.tRCD);
  ch.issue(rd(0, 1), t.tRCD + t.tCCD);
  ch.settle_accounting(1000);
  const DramPowerModel model({}, t);
  const EnergyBreakdown e = model.compute(ch);
  EXPECT_GT(e.act_pre_mj, 0.0);
  EXPECT_GT(e.read_mj, 0.0);
  EXPECT_GT(e.io_mj, 0.0);
  // Two reads cost exactly twice one read's burst energy.
  dram::Channel one(t, org);
  one.issue(act(0, 1), 0);
  one.issue(rd(0, 1), t.tRCD);
  one.settle_accounting(1000);
  EXPECT_NEAR(e.read_mj, 2.0 * model.compute(one).read_mj, 1e-12);
}

TEST_F(EnergyTest, RefreshEnergyPerRef) {
  dram::Channel ch(t, org);
  ch.issue({dram::CmdType::kRefresh, DramCoord{0, 0, 0, 0, 0}, 0}, 0);
  ch.tick(t.tRFC);
  ch.issue({dram::CmdType::kRefresh, DramCoord{0, 0, 0, 0, 0}, 0},
           t.tREFI);
  ch.tick(t.tREFI + t.tRFC);
  ch.settle_accounting(2 * t.tREFI);
  const DramPowerModel model({}, t);
  const EnergyBreakdown e = model.compute(ch);
  EXPECT_GT(e.refresh_mj, 0.0);
  // Refreshing memory costs more than idle memory over the same time.
  dram::Channel idle(t, org);
  idle.settle_accounting(2 * t.tREFI);
  EXPECT_GT(e.total_mj(), model.compute(idle).total_mj());
}

TEST_F(EnergyTest, WriteBurstCheaperThanReadBurst) {
  // IDD4W < IDD4R in the default parameter set.
  dram::Channel r(t, org), w(t, org);
  r.issue(act(0, 1), 0);
  r.issue(rd(0, 1), t.tRCD);
  w.issue(act(0, 1), 0);
  w.issue({dram::CmdType::kWrite, DramCoord{0, 0, 0, 1, 0}, 0}, t.tRCD);
  r.settle_accounting(1000);
  w.settle_accounting(1000);
  const DramPowerModel model({}, t);
  EXPECT_GT(model.compute(r).read_mj, model.compute(w).write_mj);
}

TEST(SramEnergy, TableIIIValuesByCapacity) {
  EXPECT_DOUBLE_EQ(SramEnergyParams::for_capacity(16).access_nj, 0.0132);
  EXPECT_DOUBLE_EQ(SramEnergyParams::for_capacity(32).access_nj, 0.0135);
  EXPECT_DOUBLE_EQ(SramEnergyParams::for_capacity(64).access_nj, 0.0137);
  EXPECT_DOUBLE_EQ(SramEnergyParams::for_capacity(128).access_nj, 0.0152);
}

TEST(SramEnergy, EnergyCombinesAccessAndLeakage) {
  const SramEnergyParams p = SramEnergyParams::for_capacity(64);
  const double access_only = p.energy_mj(1000, 0.0);
  const double leak_only = p.energy_mj(0, 0.001);
  EXPECT_NEAR(access_only, 1000 * 0.0137 * 1e-6, 1e-12);
  EXPECT_NEAR(leak_only, p.leakage_mw * 0.001, 1e-12);
  EXPECT_NEAR(p.energy_mj(1000, 0.001), access_only + leak_only, 1e-12);
}

TEST(SramEnergy, LargerBuffersLeakMore) {
  EXPECT_LT(SramEnergyParams::for_capacity(16).leakage_mw,
            SramEnergyParams::for_capacity(128).leakage_mw);
}

}  // namespace
}  // namespace rop::energy
