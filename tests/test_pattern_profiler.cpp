// Window correlator and Pattern Profiler tests (Eqs. 1-2, Fig. 4, Table I).
#include <gtest/gtest.h>

#include "rop/pattern_profiler.h"

namespace rop::engine {
namespace {

constexpr Cycle kW = 1000;

TEST(WindowCorrelator, CategorizesAllFourCases) {
  WindowCorrelator wc(kW, 1);
  // Case 1: B>0 && A>0.
  wc.on_request(0, 900, true);
  wc.on_refresh(0, 1000);
  wc.on_request(0, 1500, true);
  // Case 2: B>0 && A=0 (request before, nothing after).
  wc.on_request(0, 9900, false);
  wc.on_refresh(0, 10000);
  // Case 3: B=0 && A>0.
  wc.on_refresh(0, 20000);
  wc.on_request(0, 20500, true);
  // Case 4: B=0 && A=0.
  wc.on_refresh(0, 30000);
  wc.finalize();
  const CategoryCounts& c = wc.counts();
  EXPECT_EQ(c.counts[0], 1u);
  EXPECT_EQ(c.counts[1], 1u);
  EXPECT_EQ(c.counts[2], 1u);
  EXPECT_EQ(c.counts[3], 1u);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_DOUBLE_EQ(c.lambda(), 0.5);
  EXPECT_DOUBLE_EQ(c.beta(), 0.5);
  EXPECT_DOUBLE_EQ(c.e1_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(c.e2_fraction(), 0.25);
}

TEST(WindowCorrelator, WindowBoundariesAreHalfOpen) {
  WindowCorrelator wc(kW, 1);
  // Arrival exactly W before the refresh is OUTSIDE the B-window
  // ([T-W, T) retains arrivals with t + W > T).
  wc.on_request(0, 0, true);
  wc.on_refresh(0, kW);
  // Arrival exactly at T+W is outside the A-window.
  wc.on_request(0, 2 * kW, true);
  wc.finalize();
  // B=0 for this refresh; the arrival at 2W opened... no window there.
  EXPECT_EQ(wc.counts().counts[3], 1u);  // B=0 && A=0
}

TEST(WindowCorrelator, ArrivalJustInsideWindowsCounts) {
  WindowCorrelator wc(kW, 1);
  wc.on_request(0, 1, true);        // inside [T-W, T) for T = kW
  wc.on_refresh(0, kW);
  wc.on_request(0, 2 * kW - 1, true);  // inside [T, T+W)
  wc.finalize();
  EXPECT_EQ(wc.counts().counts[0], 1u);  // B>0 && A>0
}

TEST(WindowCorrelator, WritesCountTowardBOnly) {
  WindowCorrelator wc(kW, 1);
  wc.on_request(0, 500, false);  // write before
  wc.on_refresh(0, 1000);
  wc.on_request(0, 1500, false);  // write after: must NOT count as A
  wc.finalize();
  EXPECT_EQ(wc.counts().counts[1], 1u);  // B>0 && A=0
}

TEST(WindowCorrelator, RanksAreIndependent) {
  WindowCorrelator wc(kW, 2);
  wc.on_request(1, 900, true);
  wc.on_refresh(0, 1000);  // rank 0 refresh: rank 1 traffic irrelevant
  wc.finalize();
  EXPECT_EQ(wc.counts().counts[3], 1u);
}

TEST(WindowCorrelator, OverlappingAWindowsBothCount) {
  WindowCorrelator wc(kW, 1);
  wc.on_refresh(0, 1000);
  wc.on_refresh(0, 1500);  // windows [1000,2000) and [1500,2500) overlap
  wc.on_request(0, 1700, true);
  wc.finalize();
  // The arrival lands in both A-windows; it is also a B-arrival for the
  // second refresh? No: B is evaluated at refresh time (1500), before the
  // arrival at 1700.
  EXPECT_EQ(wc.counts().counts[2], 2u);  // both refreshes: B=0, A>0
}

TEST(WindowCorrelator, ResetClearsState) {
  WindowCorrelator wc(kW, 1);
  wc.on_request(0, 10, true);
  wc.on_refresh(0, 100);
  wc.reset();
  wc.finalize();
  EXPECT_EQ(wc.counts().total(), 0u);
}

TEST(WindowCorrelator, LambdaBetaFallbacksWhenUndefined) {
  CategoryCounts c;  // empty
  EXPECT_DOUBLE_EQ(c.lambda(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.beta(0.25), 0.25);
  EXPECT_DOUBLE_EQ(c.e1_fraction(), 0.0);
}

TEST(WindowCorrelator, SteadyTrafficGivesLambdaOneBetaZero) {
  // Continuous requests: every refresh sees B>0 and A>0 -> lambda = 1;
  // B=0 never occurs so beta falls back.
  WindowCorrelator wc(kW, 1);
  Cycle now = 0;
  for (int r = 0; r < 50; ++r) {
    const Cycle t_ref = (r + 1) * 2 * kW;
    for (; now < t_ref; now += 50) wc.on_request(0, now, true);
    wc.on_refresh(0, t_ref);
  }
  for (; now < 200 * kW; now += 50) wc.on_request(0, now, true);
  wc.finalize();
  EXPECT_DOUBLE_EQ(wc.counts().lambda(), 1.0);
  EXPECT_EQ(wc.counts().counts[2] + wc.counts().counts[3], 0u);
}

TEST(PatternProfiler, TrainsAfterConfiguredRefreshes) {
  PatternProfiler p(kW, 1, 5);
  Cycle now = 0;
  int refreshes = 0;
  while (!p.trained() && refreshes < 50) {
    p.on_request(0, now + 10, true);
    p.on_refresh(0, now + 500);
    p.on_request(0, now + 600, true);  // inside the A-window
    now += 3 * kW;
    p.advance(now);
    ++refreshes;
  }
  EXPECT_TRUE(p.trained());
  // Training needs > 5 refreshes seen AND >= 5 closed windows.
  EXPECT_GE(refreshes, 6);
  EXPECT_LE(refreshes, 10);
  EXPECT_DOUBLE_EQ(p.lambda(), 1.0);
}

TEST(PatternProfiler, FrozenAfterTraining) {
  PatternProfiler p(kW, 1, 3);
  Cycle now = 0;
  while (!p.trained()) {
    p.on_request(0, now + 10, true);
    p.on_refresh(0, now + 500);
    p.on_request(0, now + 600, true);
    now += 3 * kW;
    p.advance(now);
  }
  const double lambda = p.lambda();
  // Feed contradictory behaviour: nothing changes once frozen.
  for (int i = 0; i < 20; ++i) {
    p.on_refresh(0, now);
    now += 3 * kW;
    p.advance(now);
  }
  EXPECT_DOUBLE_EQ(p.lambda(), lambda);
}

TEST(PatternProfiler, RestartRetrains) {
  PatternProfiler p(kW, 1, 3);
  Cycle now = 0;
  while (!p.trained()) {
    p.on_request(0, now + 10, true);
    p.on_refresh(0, now + 500);
    p.on_request(0, now + 600, true);
    now += 3 * kW;
    p.advance(now);
  }
  p.restart();
  EXPECT_FALSE(p.trained());
  EXPECT_DOUBLE_EQ(p.lambda(), 1.0);
  EXPECT_DOUBLE_EQ(p.beta(), 1.0);
  // Retrains with quiet windows: beta becomes 1 (B=0 && A=0 dominant),
  // lambda falls back (B>0 never seen).
  while (!p.trained()) {
    p.on_refresh(0, now + 500);
    now += 3 * kW;
    p.advance(now);
  }
  EXPECT_DOUBLE_EQ(p.beta(), 1.0);
}

}  // namespace
}  // namespace rop::engine
