// ROP engine behaviour on multi-rank memories: buffer ownership handoff,
// staggered refreshes, rank partitioning interplay, and coherence across
// ranks.
#include <gtest/gtest.h>

#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::engine {
namespace {

class MultiRankTest : public ::testing::Test {
 protected:
  mem::MemoryConfig config(std::uint32_t ranks) {
    mem::MemoryConfig cfg;
    cfg.timings = dram::make_ddr4_1600_timings();
    cfg.org.ranks = ranks;
    cfg.ctrl.policy = mem::RefreshPolicy::kRopDrain;
    return cfg;
  }

  RopConfig rop_config() {
    RopConfig rc;
    rc.training_refreshes = 5;
    rc.eval_period_refreshes = 20;
    return rc;
  }

  /// Streams to every rank via compose_in_rank, round-robin.
  void run_all_ranks(mem::MemorySystem& mem, Cycle horizon,
                     Cycle interarrival) {
    std::vector<std::uint64_t> cursors(
        mem.config().org.ranks, 0);
    RankId next = 0;
    for (Cycle now = 0; now < horizon; ++now) {
      if (now % interarrival == 0) {
        const Address addr =
            mem.address_map().compose_in_rank(next, cursors[next]++);
        if (mem.can_accept(addr, mem::ReqType::kRead)) {
          (void)mem.enqueue(addr, mem::ReqType::kRead, 0, now);
        }
        next = (next + 1) % mem.config().org.ranks;
      }
      mem.tick(now);
      mem.drain_completed();
    }
  }
};

TEST_F(MultiRankTest, BufferOwnershipRotatesAcrossRanks) {
  StatRegistry stats;
  mem::MemorySystem mem(config(4), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  run_all_ranks(mem, 30 * trefi, 8);
  // With staggered refreshes on 4 ranks and traffic to all of them, the
  // buffer must have been owned by more than one rank over the run.
  EXPECT_GT(engine.buffer().stats().rounds, 8u);
  // All ranks were refreshed on cadence.
  for (RankId r = 0; r < 4; ++r) {
    EXPECT_GE(mem.controller(0).refresh_manager().issued(r), 25u);
  }
}

TEST_F(MultiRankTest, StaggeredRefreshesNeverOverlapAtModerateLoad) {
  StatRegistry stats;
  mem::MemorySystem mem(config(4), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  std::vector<std::uint64_t> cursors(4, 0);
  RankId next = 0;
  std::uint64_t overlap_cycles = 0;
  for (Cycle now = 0; now < 20 * trefi; ++now) {
    if (now % 16 == 0) {
      const Address addr =
          mem.address_map().compose_in_rank(next, cursors[next]++);
      if (mem.can_accept(addr, mem::ReqType::kRead)) {
        (void)mem.enqueue(addr, mem::ReqType::kRead, 0, now);
      }
      next = (next + 1) % 4;
    }
    mem.tick(now);
    mem.drain_completed();
    int refreshing = 0;
    for (RankId r = 0; r < 4; ++r) {
      refreshing += mem.controller(0).rank_refreshing(r) ? 1 : 0;
    }
    if (refreshing > 1) ++overlap_cycles;
  }
  // tREFI/4 stagger with tRFC = 280: refreshes of different ranks should
  // essentially never overlap unless drains push them together; allow a
  // tiny tolerance for postponement collisions.
  EXPECT_LT(overlap_cycles, 20 * trefi / 100);
}

TEST_F(MultiRankTest, PerRankTablesStayIsolated) {
  StatRegistry stats;
  mem::MemorySystem mem(config(2), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  // Traffic only to rank 0: rank 1's prediction table must stay empty.
  std::uint64_t cursor = 0;
  for (Cycle now = 0; now < 10 * trefi; ++now) {
    if (now % 12 == 0) {
      const Address addr = mem.address_map().compose_in_rank(0, cursor++);
      if (mem.can_accept(addr, mem::ReqType::kRead)) {
        (void)mem.enqueue(addr, mem::ReqType::kRead, 0, now);
      }
    }
    mem.tick(now);
    mem.drain_completed();
  }
  EXPECT_GT(engine.prefetcher().table(0).total_weight(), 0u);
  EXPECT_EQ(engine.prefetcher().table(1).total_weight(), 0u);
}

TEST_F(MultiRankTest, QuietRanksSkipRoundsWhileBusyRankPrefetches) {
  StatRegistry stats;
  mem::MemorySystem mem(config(2), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  std::uint64_t cursor = 0;
  for (Cycle now = 0; now < 40 * trefi; ++now) {
    if (now % 14 == 0) {
      const Address addr = mem.address_map().compose_in_rank(0, cursor++);
      if (mem.can_accept(addr, mem::ReqType::kRead)) {
        (void)mem.enqueue(addr, mem::ReqType::kRead, 0, now);
      }
    }
    mem.tick(now);
    mem.drain_completed();
  }
  // Rank 0 prefetches; rank 1 is quiet, so beta-gating skips its rounds.
  EXPECT_GT(stats.counter_value("rop.decisions_prefetch"), 10u);
  EXPECT_GT(stats.counter_value("rop.decisions_skip"), 10u);
}

TEST_F(MultiRankTest, FourRankStreamStillGetsBufferHits) {
  StatRegistry stats;
  mem::MemorySystem mem(config(4), &stats);
  RopEngine engine(rop_config(), mem.controller(0), mem.address_map(),
                   &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  // One strong stream confined to rank 2 (the rank-partitioned picture).
  std::uint64_t cursor = 0;
  std::uint64_t sram_served = 0;
  for (Cycle now = 0; now < 40 * trefi; ++now) {
    if (now % 13 == 0) {
      const Address addr = mem.address_map().compose_in_rank(2, cursor++);
      if (mem.can_accept(addr, mem::ReqType::kRead)) {
        (void)mem.enqueue(addr, mem::ReqType::kRead, 0, now);
      }
    }
    mem.tick(now);
    for (const auto& req : mem.drain_completed()) {
      if (req.serviced_by == mem::ServicedBy::kSramBuffer) ++sram_served;
    }
  }
  EXPECT_GT(sram_served, 0u);
  EXPECT_GT(engine.overall_hit_rate(), 0.2);
}

}  // namespace
}  // namespace rop::engine
