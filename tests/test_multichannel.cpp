// Multi-channel memory-system tests: the Table III presets use one
// channel, but the substrate supports several; these tests pin down the
// cross-channel behaviour (mapping, independent controllers, completion
// routing, per-channel ROP engines).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::mem {
namespace {

MemoryConfig two_channel_config(bool refresh = true) {
  MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.channels = 2;
  cfg.org.ranks = 2;
  cfg.ctrl.refresh_enabled = refresh;
  return cfg;
}

TEST(MultiChannel, MapSpreadsLinesAcrossChannels) {
  StatRegistry stats;
  MemorySystem mem(two_channel_config(), &stats);
  const auto& map = mem.address_map();
  // Channel is the lowest digit: consecutive lines alternate channels.
  EXPECT_EQ(map.map(0x00).channel, 0u);
  EXPECT_EQ(map.map(0x40).channel, 1u);
  EXPECT_EQ(map.map(0x80).channel, 0u);
  // And round-trips hold.
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Address a = rng.next_below(map.organization().total_lines())
                      << kLineShift;
    EXPECT_EQ(map.unmap(map.map(a)), a);
  }
}

TEST(MultiChannel, RequestsRouteToTheRightController) {
  StatRegistry stats;
  MemorySystem mem(two_channel_config(false), &stats);
  ASSERT_TRUE(mem.enqueue(0x00, ReqType::kRead, 0, 0).has_value());  // ch 0
  ASSERT_TRUE(mem.enqueue(0x40, ReqType::kRead, 0, 0).has_value());  // ch 1
  EXPECT_EQ(mem.controller(0).read_queue_depth(), 1u);
  EXPECT_EQ(mem.controller(1).read_queue_depth(), 1u);
  std::uint64_t completed = 0;
  for (Cycle now = 0; now < 500 && completed < 2; ++now) {
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  EXPECT_EQ(completed, 2u);
}

TEST(MultiChannel, ChannelsRefreshIndependently) {
  StatRegistry stats;
  MemorySystem mem(two_channel_config(), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  for (Cycle now = 0; now < 3 * trefi; ++now) mem.tick(now);
  for (ChannelId ch = 0; ch < 2; ++ch) {
    for (RankId r = 0; r < 2; ++r) {
      EXPECT_GE(mem.controller(ch).refresh_manager().issued(r), 2u)
          << "channel " << ch << " rank " << r;
    }
  }
}

TEST(MultiChannel, ConservationUnderRandomLoad) {
  StatRegistry stats;
  MemorySystem mem(two_channel_config(), &stats);
  Rng rng(31);
  std::uint64_t accepted = 0, completed = 0;
  const Cycle horizon = 4 * mem.config().timings.tREFI;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now % 7 == 0) {
      const Address addr = rng.next_below(1 << 23) << kLineShift;
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++accepted;
      }
    }
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  for (Cycle now = horizon; completed < accepted && now < horizon + 100'000;
       ++now) {
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  EXPECT_EQ(completed, accepted);
}

TEST(MultiChannel, PerChannelRopEnginesOperateIndependently) {
  MemoryConfig cfg = two_channel_config();
  cfg.ctrl.policy = RefreshPolicy::kRopDrain;
  StatRegistry stats;
  MemorySystem mem(cfg, &stats);
  engine::RopConfig rc;
  rc.training_refreshes = 5;
  engine::RopEngine eng0(rc, mem.controller(0), mem.address_map(), &stats);
  engine::RopEngine eng1(rc, mem.controller(1), mem.address_map(), &stats);

  // Stream only lines that map to channel 0 (even line numbers).
  std::uint64_t line = 0;
  const Cycle horizon = 25 * cfg.timings.tREFI;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now % 14 == 0) {
      const Address addr = (line << 1) << kLineShift;  // even line -> ch 0
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++line;
      }
    }
    mem.tick(now);
    mem.drain_completed();
  }
  // Channel 0's engine trained and prefetched; channel 1 saw no traffic,
  // so its engine stays in training forever (no refresh-window arrivals
  // close training only after enough refreshes — quiet windows do close).
  EXPECT_NE(eng0.state(), engine::RopState::kTraining);
  EXPECT_GT(eng0.buffer().stats().rounds, 0u);
  EXPECT_EQ(eng1.buffer().stats().fills, 0u);
}

}  // namespace
}  // namespace rop::mem
