// Determinism guarantees for the execution-speed features: the parallel
// experiment runner and the fast simulation loops (the PR-3 frozen-stall
// fast-forward and the unified core/memory event loop). All must be
// bit-identical to the serial/naive baseline — not approximately equal.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rop/rop_engine.h"
#include "sim/runner.h"
#include "workload/synthetic.h"

namespace rop::sim {
namespace {

ExperimentSpec quick_multicore_spec(MemoryMode mode) {
  // 4-core mix on 4 ranks: enough contention to exercise refresh sealing,
  // forwarding, and coalescing, small enough to run several times.
  ExperimentSpec spec = multi_core_spec(1, mode, /*rank_partition=*/true);
  spec.instructions_per_core = 120'000;
  return spec;
}

std::vector<ExperimentSpec> sweep_specs() {
  return {
      quick_multicore_spec(MemoryMode::kBaseline),
      quick_multicore_spec(MemoryMode::kRop),
      quick_multicore_spec(MemoryMode::kElastic),
      quick_multicore_spec(MemoryMode::kPausing),
  };
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  // The registry report covers every counter, scalar, and histogram the
  // simulation recorded (including the coreN.* and llc.* mirrors).
  EXPECT_EQ(a.stats.report(), b.stats.report());
  ASSERT_EQ(a.run.cores.size(), b.run.cores.size());
  EXPECT_EQ(a.run.cpu_cycles, b.run.cpu_cycles);
  EXPECT_EQ(a.run.mem_cycles, b.run.mem_cycles);
  EXPECT_EQ(a.run.hit_cycle_limit, b.run.hit_cycle_limit);
  for (std::size_t c = 0; c < a.run.cores.size(); ++c) {
    EXPECT_EQ(a.run.cores[c].instructions, b.run.cores[c].instructions);
    EXPECT_EQ(a.run.cores[c].cpu_cycles, b.run.cores[c].cpu_cycles);
    EXPECT_DOUBLE_EQ(a.run.cores[c].ipc, b.run.cores[c].ipc);
  }
  EXPECT_DOUBLE_EQ(a.total_energy_mj(), b.total_energy_mj());
  EXPECT_DOUBLE_EQ(a.energy.sram_mj, b.energy.sram_mj);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_DOUBLE_EQ(a.sram_hit_rate, b.sram_hit_rate);
}

TEST(ParallelRunner, MatchesSerialAtEveryThreadCount) {
  const std::vector<ExperimentSpec> specs = sweep_specs();

  std::vector<ExperimentResult> serial;
  serial.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    serial.push_back(run_experiment(spec));
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const std::vector<ExperimentResult> parallel =
        run_experiments(specs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "spec=" << i);
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(FastForward, BitIdenticalToNaiveLoop) {
  for (const MemoryMode mode :
       {MemoryMode::kBaseline, MemoryMode::kRop, MemoryMode::kElastic,
        MemoryMode::kPausing, MemoryMode::kPerBank, MemoryMode::kNoRefresh}) {
    SCOPED_TRACE(testing::Message() << "mode=" << static_cast<int>(mode));
    ExperimentSpec naive = quick_multicore_spec(mode);
    naive.loop = cpu::LoopMode::kNaive;
    const ExperimentResult ref = run_experiment(naive);
    for (const cpu::LoopMode loop :
         {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
      SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
      ExperimentSpec fast = naive;
      fast.loop = loop;
      expect_identical(ref, run_experiment(fast));
    }
  }
}

TEST(FastForward, BitIdenticalSingleCore) {
  // Single-core runs spend the most time fully frozen, so they take the
  // longest jumps — the strongest stress on next_event_cycle being exact.
  for (const char* bench : {"libquantum", "lbm", "gobmk"}) {
    SCOPED_TRACE(bench);
    ExperimentSpec naive = single_core_spec(bench, MemoryMode::kRop);
    naive.instructions_per_core = 200'000;
    naive.loop = cpu::LoopMode::kNaive;
    const ExperimentResult ref = run_experiment(naive);
    for (const cpu::LoopMode loop :
         {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
      SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
      ExperimentSpec fast = naive;
      fast.loop = loop;
      expect_identical(ref, run_experiment(fast));
    }
  }
}

// ---------------------------------------------------------------------------
// Mid-span state dump: beyond aggregate stats, the *micro-architectural*
// state — every queue entry, refresh phase register, per-bank timing
// register, and per-core front-end register (instruction/cycle/stall
// counters, residual gap, RNG state, outstanding set) — must match the
// naive loop at arbitrary off-ratio cutoffs. Aggregate identity could in
// principle survive compensating errors; this cannot.

std::string dump_memory_state(
    const mem::MemorySystem& memory,
    const std::vector<std::unique_ptr<engine::RopEngine>>& engines) {
  std::ostringstream os;
  for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
    const mem::Controller& c = memory.controller(ch);
    os << "ch" << ch << "\n";
    const auto dump_queue = [&os](const char* name, mem::RequestView q) {
      os << " " << name << ":";
      for (const mem::Request& r : q) {
        os << " [" << r.id << " t" << static_cast<int>(r.type) << " r"
           << r.coord.rank << " b" << r.coord.bank << " row" << r.coord.row
           << " a" << r.arrival << " c" << r.completion << "]";
      }
      os << "\n";
    };
    dump_queue("reads", c.read_queue());
    dump_queue("writes", c.write_queue());
    dump_queue("prefetch", c.prefetch_queue());
    dump_queue("inflight", c.in_flight());
    const dram::Channel& dch = c.channel();
    for (RankId r = 0; r < dch.num_ranks(); ++r) {
      os << " rank" << r << " phase=" << static_cast<int>(c.refresh_phase(r))
         << " locked_at=" << c.locked_at(r)
         << " drain_pending=" << c.drain_pending(r)
         << " pending=" << c.pending_reads(r) << "/" << c.pending_writes(r)
         << "/" << c.queued_prefetches(r) << "/" << c.inflight_prefetches(r)
         << " refresh_remaining=" << c.refresh_remaining(r) << "\n";
      const dram::Rank& rank = dch.rank(r);
      os << "  rank_timing next_act=" << rank.next_activate()
         << " next_col=" << rank.next_column()
         << " refreshing=" << rank.refreshing()
         << " done=" << rank.refresh_done() << " pb=" << rank.pb_refreshing()
         << "\n";
      for (BankId b = 0; b < rank.num_banks(); ++b) {
        const dram::Bank& bank = rank.bank(b);
        os << "  bank" << b << " s=" << static_cast<int>(bank.state())
           << " row="
           << (bank.open_row() ? std::to_string(*bank.open_row()) : "-")
           << " act=" << bank.next_activate() << " rd=" << bank.next_read()
           << " wr=" << bank.next_write() << " pre=" << bank.next_precharge()
           << "\n";
      }
    }
  }
  for (const auto& eng : engines) {
    os << "rop state=" << static_cast<int>(eng->state())
       << " sram_on=" << eng->sram_on_cycles()
       << " buffer=" << eng->buffer().size() << "\n";
  }
  return os.str();
}

std::string dump_core_state(const cpu::System& sys) {
  std::ostringstream os;
  for (std::uint32_t c = 0; c < sys.num_cores(); ++c) {
    const cpu::Core& core = sys.core(c);
    const cpu::CoreStats& s = core.stats();
    os << "core" << c << " i=" << s.instructions << " cyc=" << s.cycles
       << " stall=" << s.stall_cycles << " mr=" << s.mem_reads
       << " mf=" << s.mem_fills << " wb=" << s.mem_writebacks
       << " out=" << core.outstanding() << " gap=" << core.remaining_gap()
       << " rec=" << core.have_record() << " pend=" << core.mem_op_pending()
       << " wbq="
       << (core.pending_writeback() ? std::to_string(*core.pending_writeback())
                                    : "-")
       << " crit="
       << (core.critical_pending() ? std::to_string(*core.critical_pending())
                                   : "-")
       << " rng=";
    for (const std::uint64_t w : core.rng().state()) os << w << ",";
    os << "\n";
  }
  return os.str();
}

std::string run_truncated_and_dump(MemoryMode mode, cpu::LoopMode loop,
                                   std::uint64_t max_cpu_cycles) {
  StatRegistry stats;
  mem::MemorySystem memory(make_memory_config(4, mode), &stats);

  std::vector<std::unique_ptr<engine::RopEngine>> engines;
  if (mode == MemoryMode::kRop) {
    for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
      engine::RopConfig rop_cfg;
      rop_cfg.seed ^= ch;
      engines.push_back(std::make_unique<engine::RopEngine>(
          rop_cfg, memory.controller(ch), memory.address_map(), &stats));
    }
  }

  std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
  std::vector<workload::TraceSource*> trace_ptrs;
  const std::vector<std::string> mix = workload::workload_mix(1);
  for (std::size_t c = 0; c < mix.size(); ++c) {
    traces.push_back(std::make_unique<workload::SyntheticTrace>(
        workload::spec_profile(mix[c], c)));
    trace_ptrs.push_back(traces.back().get());
  }

  cpu::SystemConfig sys_cfg =
      make_system_config(4ull << 20, /*rank_partition=*/true);
  sys_cfg.loop = loop;
  cpu::System system(sys_cfg, memory, trace_ptrs);
  system.run(/*target_instructions=*/50'000'000, max_cpu_cycles);
  return dump_memory_state(memory, engines) + dump_core_state(system);
}

TEST(FastForward, MidSpanStateDumpMatchesNaiveLoop) {
  // Off-ratio cutoffs land inside boundary windows (and, for the fast runs,
  // inside skip spans), so the comparison catches any state — controller or
  // core front end — that a fast loop failed to bring current before
  // stopping.
  for (const MemoryMode mode : {MemoryMode::kRop, MemoryMode::kPausing}) {
    for (const std::uint64_t cutoff : {199'999ull, 400'001ull, 800'003ull}) {
      SCOPED_TRACE(testing::Message() << "mode=" << static_cast<int>(mode)
                                      << " cutoff=" << cutoff);
      const std::string naive =
          run_truncated_and_dump(mode, cpu::LoopMode::kNaive, cutoff);
      const std::string frozen =
          run_truncated_and_dump(mode, cpu::LoopMode::kFrozenStall, cutoff);
      const std::string event =
          run_truncated_and_dump(mode, cpu::LoopMode::kEventDriven, cutoff);
      EXPECT_EQ(naive, frozen);
      EXPECT_EQ(naive, event);
      if (mode == MemoryMode::kPausing) continue;
      // A healthy cutoff run must actually have state in motion — guard
      // against the dump trivially matching because everything drained.
      EXPECT_NE(event.find("rop state="), std::string::npos);
      EXPECT_NE(event.find("crit="), std::string::npos);
    }
  }
}

TEST(FastForward, HeterogeneousMixBitIdenticalAcrossLoops) {
  // One memory-hog core (lbm: short gaps, large footprint, mostly asleep
  // on critical loads) + one compute-bound bursty core (wrf: long gaps,
  // long idle phases) — the event loop's target case, where the naive loop
  // burns cycles stepping a sleeping hog and a gap-retiring computer. The
  // final stats AND the per-epoch time series must be bit-identical across
  // all three loops.
  ExperimentSpec naive;
  naive.benchmarks = {"lbm", "wrf"};
  naive.mode = MemoryMode::kRop;
  naive.ranks = 2;
  naive.rank_partition = true;
  naive.instructions_per_core = 150'000;
  naive.telemetry.sampler.epoch_cycles = 2'000;
  naive.loop = cpu::LoopMode::kNaive;
  const ExperimentResult ref = run_experiment(naive);
  ASSERT_TRUE(ref.epochs != nullptr);
  EXPECT_GE(ref.epochs->num_epochs(), 2u);

  for (const cpu::LoopMode loop :
       {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
    SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
    ExperimentSpec fast = naive;
    fast.loop = loop;
    const ExperimentResult r = run_experiment(fast);
    expect_identical(ref, r);
    ASSERT_TRUE(r.epochs != nullptr);
    ASSERT_EQ(ref.epochs->num_epochs(), r.epochs->num_epochs());
    ASSERT_EQ(ref.epochs->counter_names(), r.epochs->counter_names());
    for (std::size_t i = 0; i < ref.epochs->num_epochs(); ++i) {
      ASSERT_EQ(ref.epochs->epoch_end(i), r.epochs->epoch_end(i))
          << "epoch " << i;
      for (std::size_t c = 0; c < ref.epochs->counter_names().size(); ++c) {
        ASSERT_EQ(ref.epochs->delta(i, c), r.epochs->delta(i, c))
            << "epoch " << i << " counter " << ref.epochs->counter_names()[c];
      }
    }
  }
}

TEST(FastForward, CycleLimitEndsIdentically) {
  // Ending a run *inside* a skip span exercises the clamp to the cycle
  // limit (the final listener tick must still happen, and lazily-billed
  // sleeping cores must settle at the same final cycle).
  ExperimentSpec naive = quick_multicore_spec(MemoryMode::kRop);
  naive.instructions_per_core = 50'000'000;  // unreachable
  naive.max_cpu_cycles = 300'001;            // cut off mid-run, off-ratio
  naive.loop = cpu::LoopMode::kNaive;
  const ExperimentResult a = run_experiment(naive);
  EXPECT_TRUE(a.run.hit_cycle_limit);
  for (const cpu::LoopMode loop :
       {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
    SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
    ExperimentSpec fast = naive;
    fast.loop = loop;
    expect_identical(a, run_experiment(fast));
  }
}

}  // namespace
}  // namespace rop::sim
