// Determinism guarantees for the two execution-speed features: the parallel
// experiment runner and the frozen-cycle fast-forward. Both must be
// bit-identical to the serial/naive baseline — not approximately equal.
#include <gtest/gtest.h>

#include <vector>

#include "sim/runner.h"

namespace rop::sim {
namespace {

ExperimentSpec quick_multicore_spec(MemoryMode mode) {
  // 4-core mix on 4 ranks: enough contention to exercise refresh sealing,
  // forwarding, and coalescing, small enough to run several times.
  ExperimentSpec spec = multi_core_spec(1, mode, /*rank_partition=*/true);
  spec.instructions_per_core = 120'000;
  return spec;
}

std::vector<ExperimentSpec> sweep_specs() {
  return {
      quick_multicore_spec(MemoryMode::kBaseline),
      quick_multicore_spec(MemoryMode::kRop),
      quick_multicore_spec(MemoryMode::kElastic),
      quick_multicore_spec(MemoryMode::kPausing),
  };
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  // The registry report covers every counter, scalar, and histogram the
  // simulation recorded (including the coreN.* and llc.* mirrors).
  EXPECT_EQ(a.stats.report(), b.stats.report());
  ASSERT_EQ(a.run.cores.size(), b.run.cores.size());
  EXPECT_EQ(a.run.cpu_cycles, b.run.cpu_cycles);
  EXPECT_EQ(a.run.mem_cycles, b.run.mem_cycles);
  EXPECT_EQ(a.run.hit_cycle_limit, b.run.hit_cycle_limit);
  for (std::size_t c = 0; c < a.run.cores.size(); ++c) {
    EXPECT_EQ(a.run.cores[c].instructions, b.run.cores[c].instructions);
    EXPECT_EQ(a.run.cores[c].cpu_cycles, b.run.cores[c].cpu_cycles);
    EXPECT_DOUBLE_EQ(a.run.cores[c].ipc, b.run.cores[c].ipc);
  }
  EXPECT_DOUBLE_EQ(a.total_energy_mj(), b.total_energy_mj());
  EXPECT_DOUBLE_EQ(a.energy.sram_mj, b.energy.sram_mj);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_DOUBLE_EQ(a.sram_hit_rate, b.sram_hit_rate);
}

TEST(ParallelRunner, MatchesSerialAtEveryThreadCount) {
  const std::vector<ExperimentSpec> specs = sweep_specs();

  std::vector<ExperimentResult> serial;
  serial.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    serial.push_back(run_experiment(spec));
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const std::vector<ExperimentResult> parallel =
        run_experiments(specs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "spec=" << i);
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(FastForward, BitIdenticalToNaiveLoop) {
  for (const MemoryMode mode :
       {MemoryMode::kBaseline, MemoryMode::kRop, MemoryMode::kElastic,
        MemoryMode::kPausing, MemoryMode::kPerBank, MemoryMode::kNoRefresh}) {
    SCOPED_TRACE(testing::Message() << "mode=" << static_cast<int>(mode));
    ExperimentSpec fast = quick_multicore_spec(mode);
    ExperimentSpec naive = fast;
    naive.fast_forward = false;
    expect_identical(run_experiment(naive), run_experiment(fast));
  }
}

TEST(FastForward, BitIdenticalSingleCore) {
  // Single-core runs spend the most time fully frozen, so they take the
  // longest jumps — the strongest stress on next_event_cycle being exact.
  for (const char* bench : {"libquantum", "lbm", "gobmk"}) {
    SCOPED_TRACE(bench);
    ExperimentSpec fast = single_core_spec(bench, MemoryMode::kRop);
    fast.instructions_per_core = 200'000;
    ExperimentSpec naive = fast;
    naive.fast_forward = false;
    expect_identical(run_experiment(naive), run_experiment(fast));
  }
}

TEST(FastForward, CycleLimitEndsIdentically) {
  // Ending a run *inside* a frozen span exercises the clamp to the last
  // memory-tick boundary (the final listener tick must still happen).
  ExperimentSpec fast = quick_multicore_spec(MemoryMode::kRop);
  fast.instructions_per_core = 50'000'000;  // unreachable
  fast.max_cpu_cycles = 300'001;            // cut off mid-run, off-ratio
  ExperimentSpec naive = fast;
  naive.fast_forward = false;
  const ExperimentResult a = run_experiment(naive);
  const ExperimentResult b = run_experiment(fast);
  EXPECT_TRUE(a.run.hit_cycle_limit);
  expect_identical(a, b);
}

}  // namespace
}  // namespace rop::sim
