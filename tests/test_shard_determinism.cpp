// Channel-sharded simulation loop: bit-identity against the serial
// event-driven loop. The sharded loop runs each channel's controller (and
// attached engine / refresh manager) lazily, folding per-channel stats into
// the shared registry at epoch boundaries and finalize — every observable
// output must match the single-thread loop exactly, for every refresh
// scheme, at every shard count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace rop::sim {
namespace {

ExperimentSpec sharded_spec(MemoryMode mode, std::uint32_t channels,
                            std::uint32_t shards,
                            dram::RefreshMode refresh = dram::RefreshMode::k1x,
                            std::uint64_t epoch_cycles = 0) {
  ExperimentSpec spec = multi_core_spec(1, mode, /*rank_partition=*/false);
  spec.ranks = 2;
  spec.channels = channels;
  spec.shard_channels = shards;
  spec.refresh_mode = refresh;
  spec.instructions_per_core = 60'000;
  spec.telemetry.sampler.epoch_cycles = epoch_cycles;
  return spec;
}

/// Everything observable except wall-clock and checker_ticks (the checker
/// tick count depends on how many per-channel checkers were attached, which
/// is loop-mode-dependent by design; violations are not).
void expect_identical(const ExperimentResult& serial,
                      const ExperimentResult& sharded) {
  EXPECT_EQ(serial.stats.report(), sharded.stats.report());
  EXPECT_EQ(serial.run.cpu_cycles, sharded.run.cpu_cycles);
  EXPECT_EQ(serial.run.mem_cycles, sharded.run.mem_cycles);
  EXPECT_EQ(serial.run.hit_cycle_limit, sharded.run.hit_cycle_limit);
  ASSERT_EQ(serial.run.cores.size(), sharded.run.cores.size());
  for (std::size_t c = 0; c < serial.run.cores.size(); ++c) {
    EXPECT_EQ(serial.run.cores[c].instructions,
              sharded.run.cores[c].instructions);
    EXPECT_EQ(serial.run.cores[c].cpu_cycles, sharded.run.cores[c].cpu_cycles);
    EXPECT_DOUBLE_EQ(serial.run.cores[c].ipc, sharded.run.cores[c].ipc);
  }
  EXPECT_DOUBLE_EQ(serial.total_energy_mj(), sharded.total_energy_mj());
  EXPECT_DOUBLE_EQ(serial.energy.refresh_mj, sharded.energy.refresh_mj);
  EXPECT_EQ(serial.refreshes, sharded.refreshes);
  EXPECT_DOUBLE_EQ(serial.sram_hit_rate, sharded.sram_hit_rate);
  EXPECT_DOUBLE_EQ(serial.lambda, sharded.lambda);
  EXPECT_DOUBLE_EQ(serial.beta, sharded.beta);
  EXPECT_EQ(serial.nonblocking_fraction, sharded.nonblocking_fraction);
  EXPECT_EQ(serial.max_blocked, sharded.max_blocked);
  EXPECT_EQ(serial.checker_violations, sharded.checker_violations);
}

void expect_identical_epochs(const ExperimentResult& serial,
                             const ExperimentResult& sharded) {
  ASSERT_NE(serial.epochs, nullptr);
  ASSERT_NE(sharded.epochs, nullptr);
  ASSERT_EQ(serial.epochs->num_epochs(), sharded.epochs->num_epochs());
  ASSERT_EQ(serial.epochs->counter_names(), sharded.epochs->counter_names());
  for (std::size_t e = 0; e < serial.epochs->num_epochs(); ++e) {
    EXPECT_EQ(serial.epochs->epoch_end(e), sharded.epochs->epoch_end(e));
    for (std::size_t c = 0; c < serial.epochs->counter_names().size(); ++c) {
      EXPECT_EQ(serial.epochs->delta(e, c), sharded.epochs->delta(e, c))
          << "epoch " << e << " series "
          << serial.epochs->counter_names()[c];
    }
  }
}

class ShardDeterminism : public ::testing::TestWithParam<MemoryMode> {};

TEST_P(ShardDeterminism, BitIdenticalAtEveryShardCount) {
  const MemoryMode mode = GetParam();
  ExperimentSpec serial_spec = sharded_spec(mode, /*channels=*/4,
                                            /*shards=*/0);
  const ExperimentResult serial = run_experiment(serial_spec);

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const ExperimentResult sharded =
        run_experiment(sharded_spec(mode, /*channels=*/4, shards));
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_identical(serial, sharded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ShardDeterminism,
    ::testing::Values(MemoryMode::kBaseline, MemoryMode::kRop,
                      MemoryMode::kElastic, MemoryMode::kPausing,
                      MemoryMode::kPerBank, MemoryMode::kDarp,
                      MemoryMode::kSarp, MemoryMode::kHira),
    [](const ::testing::TestParamInfo<MemoryMode>& param_info) {
      switch (param_info.param) {
        case MemoryMode::kBaseline: return "Baseline";
        case MemoryMode::kNoRefresh: return "NoRefresh";
        case MemoryMode::kRop: return "Rop";
        case MemoryMode::kElastic: return "Elastic";
        case MemoryMode::kPausing: return "Pausing";
        case MemoryMode::kPerBank: return "PerBank";
        case MemoryMode::kDarp: return "Darp";
        case MemoryMode::kSarp: return "Sarp";
        case MemoryMode::kHira: return "Hira";
      }
      return "Unknown";
    });

TEST(ShardDeterminism, EpochSeriesMatchSerialSampling) {
  // Epoch folding is the trickiest part of the sharded loop: counters must
  // be folded into the shared registry exactly at each boundary, not late.
  const ExperimentResult serial = run_experiment(
      sharded_spec(MemoryMode::kRop, 4, 0, dram::RefreshMode::k1x,
                   /*epoch_cycles=*/5'000));
  const ExperimentResult sharded = run_experiment(
      sharded_spec(MemoryMode::kRop, 4, 4, dram::RefreshMode::k1x,
                   /*epoch_cycles=*/5'000));
  expect_identical(serial, sharded);
  expect_identical_epochs(serial, sharded);
}

TEST(ShardDeterminism, RefreshRateSweepStaysIdentical) {
  for (const dram::RefreshMode refresh :
       {dram::RefreshMode::k1x, dram::RefreshMode::k2x,
        dram::RefreshMode::k4x}) {
    const ExperimentResult serial =
        run_experiment(sharded_spec(MemoryMode::kBaseline, 2, 0, refresh));
    const ExperimentResult sharded =
        run_experiment(sharded_spec(MemoryMode::kBaseline, 2, 2, refresh));
    SCOPED_TRACE("refresh=" +
                 std::to_string(static_cast<int>(refresh)) + "x");
    expect_identical(serial, sharded);
  }
}

TEST(ShardDeterminism, CheckerCleanUnderSharding) {
  // Per-channel checkers audit queue conservation, refresh deadlines, and
  // buffer coherence inside each shard; the channel-0 checker additionally
  // runs the end-of-run conservation audit over the folded registry.
  ExperimentSpec spec = sharded_spec(MemoryMode::kRop, 4, 4);
  spec.check = true;
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.checker_ticks, 0u);
  EXPECT_EQ(result.checker_violations, 0u);
}

TEST(ShardDeterminism, ShardCountClampsToChannels) {
  // Asking for more shards than channels is legal: the pool clamps.
  const ExperimentResult serial =
      run_experiment(sharded_spec(MemoryMode::kBaseline, 2, 0));
  const ExperimentResult sharded =
      run_experiment(sharded_spec(MemoryMode::kBaseline, 2, 8));
  expect_identical(serial, sharded);
}

}  // namespace
}  // namespace rop::sim
