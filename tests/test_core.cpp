// Trace-driven core tests with a scripted memory port.
#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.h"

namespace rop::cpu {
namespace {

/// Scripted port: accepts everything (unless told not to) and lets the
/// test complete reads explicitly.
class FakePort final : public MemoryPort {
 public:
  std::optional<RequestId> issue_read(CoreId, Address addr) override {
    if (!accept_reads) return std::nullopt;
    reads.push_back(addr);
    return next_id++;
  }
  bool issue_write(CoreId, Address addr) override {
    if (!accept_writes) return false;
    writes.push_back(addr);
    return true;
  }

  bool accept_reads = true;
  bool accept_writes = true;
  std::vector<Address> reads, writes;
  RequestId next_id = 1;
};

/// Fixed scripted trace, looping.
class ScriptTrace final : public workload::TraceSource {
 public:
  explicit ScriptTrace(std::vector<workload::TraceRecord> recs)
      : recs_(std::move(recs)) {}
  workload::TraceRecord next() override {
    auto r = recs_[pos_];
    pos_ = (pos_ + 1) % recs_.size();
    return r;
  }
  void reset() override { pos_ = 0; }

 private:
  std::vector<workload::TraceRecord> recs_;
  std::size_t pos_ = 0;
};

cache::LlcConfig tiny_llc() {
  cache::LlcConfig cfg;
  cfg.size_bytes = 8 * 1024;  // 128 lines
  cfg.associativity = 2;
  return cfg;
}

CoreConfig no_critical() {
  CoreConfig cfg;
  cfg.critical_load_fraction = 0.0;
  return cfg;
}

TEST(Core, RetiresGapInstructionsAtIssueWidth) {
  FakePort port;
  // One record: 40 compute instructions then a read.
  ScriptTrace trace({{40, false, 0x0}});
  Core core(0, no_critical(), tiny_llc(), trace, port);
  core.cycle();  // retires 4
  EXPECT_EQ(core.stats().instructions, 4u);
  for (int i = 0; i < 9; ++i) core.cycle();
  // 40 gap instructions + the memory instruction itself at cycle 10+.
  EXPECT_GE(core.stats().instructions, 40u);
}

TEST(Core, LlcMissIssuesMemoryRead) {
  FakePort port;
  ScriptTrace trace({{0, false, 0x0}, {0, false, 64 * 1024}});
  Core core(0, no_critical(), tiny_llc(), trace, port);
  core.cycle();
  EXPECT_GE(port.reads.size(), 1u);
  EXPECT_EQ(core.outstanding(), port.reads.size());
}

TEST(Core, LlcHitGeneratesNoTraffic) {
  FakePort port;
  // Two accesses to the same line: second is a hit.
  ScriptTrace trace({{0, false, 0x0}, {0, false, 0x0}, {1000, false, 0x0}});
  CoreConfig cfg = no_critical();
  Core core(0, cfg, tiny_llc(), trace, port);
  core.cycle();
  const std::size_t after_first = port.reads.size();
  EXPECT_EQ(after_first, 1u);  // only the cold miss
}

TEST(Core, MlpBudgetStallsCore) {
  FakePort port;
  // Endless stream of distinct lines, no compute.
  std::vector<workload::TraceRecord> recs;
  for (int i = 0; i < 64; ++i) {
    recs.push_back({0, false, static_cast<Address>(i) * 64 * 1024});
  }
  CoreConfig cfg = no_critical();
  cfg.max_outstanding = 4;
  ScriptTrace trace(recs);
  Core core(0, cfg, tiny_llc(), trace, port);
  for (int i = 0; i < 20; ++i) core.cycle();
  EXPECT_EQ(core.outstanding(), 4u);
  const auto issued = port.reads.size();
  EXPECT_EQ(issued, 4u);
  core.on_read_complete(1, core.stats().cycles);
  core.cycle();
  EXPECT_EQ(port.reads.size(), 5u);
}

TEST(Core, CriticalLoadBlocksUntilCompletion) {
  FakePort port;
  std::vector<workload::TraceRecord> recs;
  for (int i = 0; i < 64; ++i) {
    recs.push_back({0, false, static_cast<Address>(i) * 64 * 1024});
  }
  CoreConfig cfg;
  cfg.critical_load_fraction = 1.0;  // every miss is critical
  cfg.max_outstanding = 8;
  ScriptTrace trace(recs);
  Core core(0, cfg, tiny_llc(), trace, port);
  core.cycle();
  ASSERT_EQ(port.reads.size(), 1u);
  const std::uint64_t retired = core.stats().instructions;
  for (int i = 0; i < 10; ++i) core.cycle();
  EXPECT_EQ(core.stats().instructions, retired);  // fully blocked
  EXPECT_GE(core.stats().stall_cycles, 10u);
  core.on_read_complete(1, core.stats().cycles);
  core.cycle();
  EXPECT_GT(core.stats().instructions, retired);
}

TEST(Core, WriteMissGeneratesFillAndLaterWriteback) {
  FakePort port;
  // Direct-mapped-ish tiny cache: write 0x0 (fill), then conflict line
  // evicts it dirty (writeback).
  cache::LlcConfig cfg;
  cfg.size_bytes = 2 * kLineBytes;  // 1 set, 2 ways
  cfg.associativity = 2;
  ScriptTrace trace({{0, true, 0x0},
                     {0, false, 1 * 64},
                     {0, false, 2 * 64},
                     {40, false, 0x0}});
  Core core(0, no_critical(), cfg, trace, port);
  for (int i = 0; i < 100; ++i) {
    core.cycle();
    // Complete all outstanding reads promptly.
    while (core.outstanding() > 0) {
      core.on_read_complete(0, core.stats().cycles);
    }
  }
  // Fill for the write + 2 read fills; the third access evicted dirty 0x0.
  EXPECT_GE(port.reads.size(), 3u);
  ASSERT_GE(port.writes.size(), 1u);
  EXPECT_EQ(port.writes[0], 0x0u);
}

TEST(Core, RetriesWhenPortRejects) {
  FakePort port;
  port.accept_reads = false;
  ScriptTrace trace({{0, false, 0x0}});
  Core core(0, no_critical(), tiny_llc(), trace, port);
  for (int i = 0; i < 5; ++i) core.cycle();
  EXPECT_TRUE(port.reads.empty());
  EXPECT_GE(core.stats().stall_cycles, 4u);
  port.accept_reads = true;
  core.cycle();
  EXPECT_EQ(port.reads.size(), 1u);
}

TEST(Core, IpcComputation) {
  FakePort port;
  ScriptTrace trace({{400, false, 0x0}});
  Core core(0, no_critical(), tiny_llc(), trace, port);
  for (int i = 0; i < 100; ++i) {
    core.cycle();
    while (core.outstanding() > 0) {
      core.on_read_complete(0, core.stats().cycles);
    }
  }
  EXPECT_NEAR(core.stats().ipc(), 4.0, 0.2);
}

TEST(Core, NextEventCycleTracksComputeGap) {
  FakePort port;
  ScriptTrace trace({{40, false, 0x0}});
  Core core(0, no_critical(), tiny_llc(), trace, port);
  // No record fetched yet: the next cycle must execute for real.
  EXPECT_EQ(core.next_event_cycle(), 0u);
  core.cycle();  // fetches the record, retires 4 of the 40-instruction gap
  ASSERT_EQ(core.stats().cycles, 1u);
  ASSERT_EQ(core.remaining_gap(), 36u);
  // 36 / width 4 = 9 more provably pure cycles.
  EXPECT_EQ(core.next_event_cycle(), 10u);
  core.run_until(10);
  EXPECT_EQ(core.stats().cycles, 10u);
  EXPECT_EQ(core.stats().instructions, 40u);
  EXPECT_EQ(core.remaining_gap(), 0u);
  EXPECT_EQ(core.next_event_cycle(), 10u);  // mem op next: must execute
  core.cycle();
  EXPECT_EQ(port.reads.size(), 1u);
}

TEST(Core, RunUntilMatchesPerCycleExecution) {
  // Two identical cores over the same scripted trace: one executes every
  // cycle, one jumps through pure spans with run_until. Full state must
  // stay bit-identical.
  const std::vector<workload::TraceRecord> recs{
      {40, false, 0x0},    {7, true, 64 * 1024}, {0, false, 128 * 1024},
      {123, false, 0x40},  {2, true, 0x0},       {55, false, 192 * 1024},
  };
  FakePort port_a, port_b;
  ScriptTrace trace_a(recs), trace_b(recs);
  CoreConfig cfg;
  cfg.critical_load_fraction = 0.5;
  Core a(0, cfg, tiny_llc(), trace_a, port_a);
  Core b(0, cfg, tiny_llc(), trace_b, port_b);
  for (std::uint64_t now = 0; now < 2000;) {
    a.cycle();
    ++now;
    while (b.stats().cycles < now) {
      const std::uint64_t next = b.next_event_cycle();
      if (next > b.stats().cycles) {
        b.run_until(std::min(next, now));
      } else {
        b.cycle();
      }
    }
    if (now % 16 == 0) {
      // Complete everything outstanding on both (criticals share ids:
      // both cores issue the same sequence).
      while (a.outstanding() > 0) a.on_read_complete(port_a.next_id - a.outstanding(), now);
      while (b.outstanding() > 0) b.on_read_complete(port_b.next_id - b.outstanding(), now);
    }
    ASSERT_EQ(a.stats().cycles, b.stats().cycles);
    ASSERT_EQ(a.stats().instructions, b.stats().instructions);
    ASSERT_EQ(a.stats().stall_cycles, b.stats().stall_cycles);
    ASSERT_EQ(a.stats().mem_reads, b.stats().mem_reads);
    ASSERT_EQ(a.remaining_gap(), b.remaining_gap());
    ASSERT_EQ(a.have_record(), b.have_record());
    ASSERT_EQ(a.rng().state(), b.rng().state());
    ASSERT_EQ(port_a.reads, port_b.reads);
    ASSERT_EQ(port_a.writes, port_b.writes);
  }
}

TEST(Core, WakeBackfillMatchesPerCycleStallBilling) {
  // A sleeping core woken with a late `now` must bill exactly the cycles a
  // per-cycle core spent stalling.
  std::vector<workload::TraceRecord> recs{{0, false, 0x0},
                                          {0, false, 64 * 1024}};
  CoreConfig cfg;
  cfg.critical_load_fraction = 1.0;  // the first miss blocks retirement
  FakePort port_a, port_b;
  ScriptTrace trace_a(recs), trace_b(recs);
  Core a(0, cfg, tiny_llc(), trace_a, port_a);
  Core b(0, cfg, tiny_llc(), trace_b, port_b);
  a.cycle();
  b.cycle();
  ASSERT_TRUE(a.stalled_on_memory());
  ASSERT_TRUE(b.stalled_on_memory());
  // Naive: bill 25 stall cycles one by one, wake at cycle 26.
  for (int i = 0; i < 25; ++i) a.cycle();
  a.on_read_complete(1, a.stats().cycles);
  // Event: never executed while asleep; the wake back-fills the span.
  EXPECT_EQ(b.stats().cycles, 1u);
  b.on_read_complete(1, 26);
  EXPECT_EQ(a.stats().cycles, b.stats().cycles);
  EXPECT_EQ(a.stats().stall_cycles, b.stats().stall_cycles);
  EXPECT_EQ(a.stats().instructions, b.stats().instructions);
  EXPECT_FALSE(b.stalled_on_memory());
  EXPECT_EQ(b.next_event_cycle(), 26u);  // next record fetch must execute
}

TEST(Core, RunUntilWhileStalledBillsBulkStall) {
  std::vector<workload::TraceRecord> recs{{0, false, 0x0}};
  CoreConfig cfg;
  cfg.critical_load_fraction = 1.0;
  FakePort port;
  ScriptTrace trace(recs);
  Core core(0, cfg, tiny_llc(), trace, port);
  core.cycle();
  ASSERT_TRUE(core.stalled_on_memory());
  EXPECT_EQ(core.next_event_cycle(), kNeverCycle);
  const std::uint64_t before_stall = core.stats().stall_cycles;
  core.run_until(1000);
  EXPECT_EQ(core.stats().cycles, 1000u);
  EXPECT_EQ(core.stats().stall_cycles, before_stall + 999u);
  core.run_until(500);  // no-op: already past
  EXPECT_EQ(core.stats().cycles, 1000u);
}

TEST(Core, OnReadCompleteWrongIdKeepsCriticalBlocked) {
  FakePort port;
  std::vector<workload::TraceRecord> recs{{0, false, 0x0},
                                          {0, false, 64 * 1024}};
  CoreConfig cfg;
  cfg.critical_load_fraction = 1.0;
  ScriptTrace trace(recs);
  Core core(0, cfg, tiny_llc(), trace, port);
  core.cycle();
  ASSERT_EQ(port.reads.size(), 1u);
  // A completion for some other id must not unblock the critical wait
  // (ids start at 1 in FakePort).
  core.on_read_complete(999, core.stats().cycles);
  const std::uint64_t retired = core.stats().instructions;
  core.cycle();
  EXPECT_EQ(core.stats().instructions, retired);
}

}  // namespace
}  // namespace rop::cpu
