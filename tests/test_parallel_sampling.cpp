// Checkpoint-spawned parallel sampling (sim/parallel_sampling): the
// determinism contract (observation set bit-identical to the sequential
// pool at every worker count, across schemes), the stratified-placement
// accuracy win under a window budget, deterministic auto-stop, the
// worker-budget accounting shared with the campaign engine, and
// kill-and-resume of parallel-sampled campaign cells.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/parallel_sampling.h"
#include "sim/sampling.h"
#include "sim/worker_budget.h"

namespace rop::sim {
namespace {

namespace fs = std::filesystem;

ExperimentSpec planned_spec(const std::string& bench, MemoryMode mode,
                            std::uint32_t jobs, std::uint32_t strata = 0) {
  ExperimentSpec spec = single_core_spec(bench, mode);
  spec.instructions_per_core = 2'000'000;
  spec.sampling.enabled = true;
  spec.sampling.jobs = jobs;
  spec.sampling.strata = strata;
  return spec;
}

void expect_same_observations(const SamplingSummary& a,
                              const SamplingSummary& b) {
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.measured_cpu_cycles, b.measured_cpu_cycles);
  EXPECT_EQ(a.functional_cpu_cycles, b.functional_cpu_cycles);
  EXPECT_EQ(a.ci_converged, b.ci_converged);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.strata, b.strata);
  // Estimates must match to the last bit, not approximately: the merge is
  // in placement order, so the estimator sees the identical input vector.
  EXPECT_EQ(a.ipc.mean, b.ipc.mean);
  EXPECT_EQ(a.ipc.stderr_, b.ipc.stderr_);
  EXPECT_EQ(a.ipc.ci95_half, b.ipc.ci95_half);
  EXPECT_EQ(a.energy_mj_per_mcycle.mean, b.energy_mj_per_mcycle.mean);
  EXPECT_EQ(a.energy_mj_per_mcycle.ci95_half,
            b.energy_mj_per_mcycle.ci95_half);
  EXPECT_EQ(a.refresh_blocked_per_mem_cycle.mean,
            b.refresh_blocked_per_mem_cycle.mean);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const WindowObservation& x = a.observations[i];
    const WindowObservation& y = b.observations[i];
    EXPECT_EQ(x.index, y.index) << "window " << i;
    EXPECT_EQ(x.stratum, y.stratum) << "window " << i;
    EXPECT_EQ(x.cpu_cycles, y.cpu_cycles) << "window " << i;
    EXPECT_EQ(x.ipc, y.ipc) << "window " << i;
    EXPECT_EQ(x.energy_mj_per_mcycle, y.energy_mj_per_mcycle)
        << "window " << i;
    EXPECT_EQ(x.refresh_blocked_per_mem_cycle,
              y.refresh_blocked_per_mem_cycle)
        << "window " << i;
  }
}

// ---------------------------------------------------------------------------
// (a) Observation-set bit-identity, sequential pool vs N workers, at fixed
// placement, across the scheme zoo the sweeps actually run.

class ParallelSamplingIdentity
    : public ::testing::TestWithParam<MemoryMode> {};

TEST_P(ParallelSamplingIdentity, SequentialAndParallelWorkersMatch) {
  const MemoryMode mode = GetParam();
  ExperimentResult seq = run_experiment(planned_spec("lbm", mode, 1));
  ExperimentResult par = run_experiment(planned_spec("lbm", mode, 3));
  ASSERT_GT(seq.sampling.windows, 0u);
  EXPECT_EQ(seq.sampling.placement, SamplingPlacement::kUniform);
  EXPECT_EQ(seq.sampling.workers, 1u);
  EXPECT_EQ(par.sampling.workers, 3u);
  expect_same_observations(seq.sampling, par.sampling);
  // The whole stats document agrees too, once the two operational fields
  // (wall clock, worker count) are held equal.
  seq.wall_seconds = par.wall_seconds = 0.0;
  par.sampling.workers = seq.sampling.workers;
  EXPECT_EQ(seq.to_json(), par.to_json());
}

INSTANTIATE_TEST_SUITE_P(SchemeZoo, ParallelSamplingIdentity,
                         ::testing::Values(MemoryMode::kBaseline,
                                           MemoryMode::kRop,
                                           MemoryMode::kDarp,
                                           MemoryMode::kSarp),
                         [](const auto& param_info) {
                           return std::string(
                               memory_mode_name(param_info.param));
                         });

TEST(ParallelSampling, StratifiedPlacementIsAlsoWorkerCountInvariant) {
  ExperimentResult seq = run_experiment(planned_spec("lbm", MemoryMode::kRop,
                                                     1, /*strata=*/4));
  ExperimentResult par = run_experiment(planned_spec("lbm", MemoryMode::kRop,
                                                     3, /*strata=*/4));
  ASSERT_GT(seq.sampling.windows, 0u);
  EXPECT_EQ(seq.sampling.placement, SamplingPlacement::kStratified);
  EXPECT_EQ(seq.sampling.strata, 4u);
  expect_same_observations(seq.sampling, par.sampling);
}

// ---------------------------------------------------------------------------
// (b) Stratified placement accuracy: under a window budget the uniform
// planner spends every window at the start of the run (the cap binds before
// the later strata are reached), so on a phase-changing profile like lbm
// the estimate only sees the fast early phase. The stratified planner
// re-divides the remaining budget over the remaining strata at each
// stratum boundary and Neyman-weights the estimator by observed
// functional cycles, recovering full-horizon coverage from the same
// number of windows.

TEST(ParallelSampling, StratifiedBeatsUniformUnderWindowBudget) {
  ExperimentSpec exact_spec = single_core_spec("lbm", MemoryMode::kRop);
  exact_spec.instructions_per_core = 40'000'000;
  const ExperimentResult exact = run_experiment(exact_spec);
  const double exact_ipc =
      static_cast<double>(exact.run.cores[0].instructions) /
      static_cast<double>(exact.run.cores[0].cpu_cycles);

  ExperimentSpec uniform = planned_spec("lbm", MemoryMode::kRop, 2);
  uniform.instructions_per_core = 40'000'000;
  uniform.sampling.max_windows = 24;
  ExperimentSpec stratified = uniform;
  stratified.sampling.strata = 8;

  const ExperimentResult u = run_experiment(uniform);
  const ExperimentResult s = run_experiment(stratified);
  ASSERT_EQ(u.sampling.windows, 24u);
  ASSERT_EQ(s.sampling.windows, 24u);

  const double uniform_err = std::abs(u.sampling.ipc.mean - exact_ipc);
  const double strat_err = std::abs(s.sampling.ipc.mean - exact_ipc);
  // Measured on this profile: uniform ~19% off (all 24 windows land in the
  // first tenth of the run), stratified ~1.5%. Assert a conservative 4x
  // improvement and a sane absolute bound so the test tolerates drift in
  // the profile generator without losing the claim.
  EXPECT_LT(strat_err, uniform_err / 4.0)
      << "stratified " << s.sampling.ipc.mean << " vs uniform "
      << u.sampling.ipc.mean << " vs exact " << exact_ipc;
  EXPECT_LT(strat_err / exact_ipc, 0.05)
      << "stratified IPC " << s.sampling.ipc.mean << " vs exact "
      << exact_ipc;
}

// ---------------------------------------------------------------------------
// Deterministic auto-stop: --sample-target-ci under parallel dispatch must
// pick the same window count as the sequential pool — the stop decision for
// ordinal n only looks at the completed prefix n - kAutoStopLookahead.

TEST(ParallelSampling, AutoStopPicksSameWindowCountAtEveryWorkerCount) {
  ExperimentSpec spec = planned_spec("libquantum", MemoryMode::kBaseline, 1);
  spec.instructions_per_core = 20'000'000;
  spec.sampling.min_windows = 4;
  spec.sampling.target_ci_frac = 0.10;
  const ExperimentResult seq = run_experiment(spec);
  spec.sampling.jobs = 4;
  ExperimentResult par = run_experiment(spec);

  EXPECT_TRUE(seq.sampling.ci_converged);
  EXPECT_TRUE(par.sampling.ci_converged);
  EXPECT_EQ(seq.sampling.windows, par.sampling.windows);
  expect_same_observations(seq.sampling, par.sampling);
  // Auto-stop fired well before the full horizon.
  EXPECT_LT(seq.run.cores[0].instructions, spec.instructions_per_core);
}

// ---------------------------------------------------------------------------
// Worker accounting: a planned-sampled spec occupies `jobs` workers, and
// the shared budget rule keeps cells x window-jobs within the machine.

TEST(WorkerBudget, SampledCellCountsItsWindowJobs) {
  ExperimentSpec spec = planned_spec("lbm", MemoryMode::kRop, 4);
  EXPECT_EQ(experiment_worker_width(spec), 4u);

  spec.sampling.jobs = 0;  // chained sampling: serial, width 1
  EXPECT_EQ(experiment_worker_width(spec), 1u);

  spec.sampling.enabled = false;
  EXPECT_EQ(experiment_worker_width(spec), 1u);

  ExperimentSpec sharded = single_core_spec("lbm", MemoryMode::kBaseline);
  sharded.channels = 4;
  sharded.shard_channels = 2;
  EXPECT_EQ(experiment_worker_width(sharded), 2u);
}

TEST(WorkerBudget, FourSampledCellsOnAnEightBudgetRunTwoAtATime) {
  // 4 campaign cells, each a planned-sampled run with 4 window workers, on
  // a machine budget of 8 hardware threads: the derived job count must be
  // 2 (2 cells x 4 window workers = 8), never 4 (16 threads).
  EXPECT_EQ(worker_budget(/*requested_jobs=*/0, /*shards_per_job=*/4,
                          /*n_tasks=*/4, /*hardware=*/8),
            2u);
  // An explicit request is honored (the user's call), only task-clamped.
  EXPECT_EQ(worker_budget(3, 4, 4, 8), 3u);
  EXPECT_EQ(worker_budget(0, 4, 1, 8), 1u);
  // Width wider than the machine still floors at one job.
  EXPECT_EQ(worker_budget(0, 16, 4, 8), 1u);
}

// ---------------------------------------------------------------------------
// (c) Campaign integration: sampled cells expand with the sampling block,
// occupy `jobs` workers in the budget, and kill-and-resume reproduces the
// uninterrupted merged document byte-for-byte.

constexpr const char* kSampledCampaignSpec = R"({
  "name": "sampled-smoke",
  "instructions_per_core": 2000000,
  "sampling": {"jobs": 2, "strata": 4},
  "axes": {
    "benchmark": ["lbm"],
    "mode": ["baseline", "rop", "sarp"]
  }
})";

std::string write_spec(const std::string& dir, const std::string& text) {
  fs::create_directories(dir);
  const std::string path = dir + "/spec.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CampaignOptions quiet_options(const std::string& spec_path,
                              const std::string& out_dir) {
  CampaignOptions opts;
  opts.spec_path = spec_path;
  opts.out_dir = out_dir;
  opts.jobs = 1;
  opts.progress = false;
  return opts;
}

TEST(ParallelSampledCampaign, ExpandsSamplingBlockAndRejectsConflicts) {
  std::string err;
  const auto doc = json::parse(kSampledCampaignSpec, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto cells = expand_campaign(*doc, &err);
  ASSERT_TRUE(cells.has_value()) << err;
  ASSERT_EQ(cells->size(), 3u);
  for (const auto& cell : *cells) {
    EXPECT_TRUE(cell.spec.sampling.enabled);
    EXPECT_EQ(cell.spec.sampling.jobs, 2u);
    EXPECT_EQ(cell.spec.sampling.strata, 4u);
    EXPECT_EQ(experiment_worker_width(cell.spec), 2u);
  }

  // Sampling is mutually exclusive with intra-cell checkpoints, sharding,
  // and epoch telemetry; strata without a planner is also an error.
  const auto with_snap = json::parse(
      R"({"snapshot_every": 1000, "sampling": {"jobs": 2},
          "axes": {"benchmark": ["lbm"]}})");
  ASSERT_TRUE(with_snap.has_value());
  EXPECT_FALSE(expand_campaign(*with_snap, &err).has_value());
  EXPECT_NE(err.find("snapshot_every"), std::string::npos);

  const auto with_shards = json::parse(
      R"({"shard_channels": 2, "sampling": {"jobs": 2},
          "axes": {"benchmark": ["lbm"], "channels": [4]}})");
  ASSERT_TRUE(with_shards.has_value());
  EXPECT_FALSE(expand_campaign(*with_shards, &err).has_value());
  EXPECT_NE(err.find("serial"), std::string::npos);

  const auto bare_strata = json::parse(
      R"({"sampling": {"strata": 4}, "axes": {"benchmark": ["lbm"]}})");
  ASSERT_TRUE(bare_strata.has_value());
  EXPECT_FALSE(expand_campaign(*bare_strata, &err).has_value());
  EXPECT_NE(err.find("strata"), std::string::npos);
}

TEST(ParallelSampledCampaign, KillAndResumeStaysByteIdentical) {
  const std::string base = ::testing::TempDir() + "rop_psample_campaign";
  fs::remove_all(base);
  const std::string spec_path = write_spec(base, kSampledCampaignSpec);

  std::string err;
  const auto full =
      run_campaign(quiet_options(spec_path, base + "/full"), &err);
  ASSERT_TRUE(full.has_value()) << err;
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->ran_cells, 3u);

  // Kill after one cell, then resume: the remaining sampled cells run
  // fresh and the merged document matches the uninterrupted reference.
  CampaignOptions killed = quiet_options(spec_path, base + "/resumed");
  killed.stop_after = 1;
  const auto partial = run_campaign(killed, &err);
  ASSERT_TRUE(partial.has_value()) << err;
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->ran_cells, 1u);

  const auto resumed =
      run_campaign(quiet_options(spec_path, base + "/resumed"), &err);
  ASSERT_TRUE(resumed.has_value()) << err;
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->skipped_cells, 1u);
  EXPECT_EQ(resumed->ran_cells, 2u);
  EXPECT_EQ(slurp(base + "/resumed/merged.json"), slurp(full->merged_path));

  // The per-cell stats documents carry the planner's sampling block.
  for (int i = 0; i < 3; ++i) {
    const std::string cell_path =
        base + "/full/cell_00000" + std::to_string(i) + ".json";
    const auto doc = json::parse(slurp(cell_path), &err);
    ASSERT_TRUE(doc.has_value()) << cell_path << ": " << err;
    const json::Value* sampling = doc->find("sampling");
    ASSERT_NE(sampling, nullptr) << cell_path;
    EXPECT_EQ(sampling->find("placement")->as_string(), "stratified");
    EXPECT_EQ(sampling->find("strata")->as_u64(), 4u);
    EXPECT_EQ(sampling->find("workers")->as_u64(), 2u);
    EXPECT_GT(sampling->find("windows")->as_u64(), 0u);
  }

  fs::remove_all(base);
}

}  // namespace
}  // namespace rop::sim
