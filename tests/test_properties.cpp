// Property-based parameterized suites over randomized inputs: timing
// legality of scheduled command streams, probability ranges, budget
// conservation, request conservation.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "mem/memory_system.h"
#include "rop/pattern_profiler.h"
#include "rop/prediction_table.h"
#include "rop/rop_engine.h"

namespace rop {
namespace {

// --- Timing legality: replay random request loads through the controller
// and verify rank-level invariants on the issued command stream via a
// shadow checker fed from channel events. The channel itself aborts on
// illegal commands (ROP_ASSERT in Bank::issue), so simply surviving a
// randomized run is the property; these tests also check aggregate
// invariants afterwards.

struct LoadParams {
  std::uint64_t seed;
  std::uint32_t ranks;
  double write_fraction;
  Cycle mean_gap;
};

class RandomLoadTest : public ::testing::TestWithParam<LoadParams> {};

TEST_P(RandomLoadTest, RandomTrafficNeverTripsTimingAsserts) {
  const LoadParams p = GetParam();
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.ranks = p.ranks;
  StatRegistry stats;
  mem::MemorySystem mem(cfg, &stats);
  Rng rng(p.seed);

  std::uint64_t accepted_reads = 0;
  std::uint64_t completed_reads = 0;
  const std::uint64_t total_lines = cfg.org.total_lines();
  Cycle next_arrival = 0;
  const Cycle horizon = 4 * cfg.timings.tREFI;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now >= next_arrival) {
      const Address addr = rng.next_below(total_lines) << kLineShift;
      const bool is_write = rng.next_bool(p.write_fraction);
      const auto type = is_write ? mem::ReqType::kWrite : mem::ReqType::kRead;
      if (mem.can_accept(addr, type)) {
        const auto id = mem.enqueue(addr, type, 0, now);
        if (id && !is_write) ++accepted_reads;
      }
      next_arrival = now + rng.next_gap(static_cast<double>(p.mean_gap));
    }
    mem.tick(now);
    completed_reads += mem.drain_completed().size();
  }
  // Drain the tail.
  for (Cycle now = horizon; completed_reads < accepted_reads &&
                            now < horizon + 100'000;
       ++now) {
    mem.tick(now);
    completed_reads += mem.drain_completed().size();
  }
  EXPECT_EQ(completed_reads, accepted_reads);

  // Refresh average rate: one per tREFI per rank (within slack).
  const auto& rm = mem.controller(0).refresh_manager();
  for (RankId r = 0; r < p.ranks; ++r) {
    EXPECT_GE(rm.issued(r), 3u);
    EXPECT_LE(rm.issued(r), 6u);  // horizon boundaries + at most one in the tail
  }
  mem.finalize(horizon + 100'000);
  // Activity accounting is exhaustive for every rank.
  for (RankId r = 0; r < p.ranks; ++r) {
    const auto& a = mem.controller(0).channel().rank(r).activity();
    EXPECT_EQ(a.active_cycles + a.precharged_cycles + a.refresh_cycles,
              horizon + 100'000);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Loads, RandomLoadTest,
    ::testing::Values(LoadParams{1, 1, 0.0, 8}, LoadParams{2, 1, 0.3, 20},
                      LoadParams{3, 2, 0.5, 12}, LoadParams{4, 4, 0.25, 30},
                      LoadParams{5, 4, 0.9, 15}, LoadParams{6, 2, 0.1, 5}));

// --- ROP-enabled runs satisfy the same conservation and legality bounds.

class RandomRopLoadTest : public ::testing::TestWithParam<LoadParams> {};

TEST_P(RandomRopLoadTest, RopTrafficConservesRequests) {
  const LoadParams p = GetParam();
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.ranks = p.ranks;
  cfg.ctrl.policy = mem::RefreshPolicy::kRopDrain;
  StatRegistry stats;
  mem::MemorySystem mem(cfg, &stats);
  engine::RopConfig rc;
  rc.training_refreshes = 3;
  engine::RopEngine eng(rc, mem.controller(0), mem.address_map(), &stats);
  Rng rng(p.seed * 77);

  std::uint64_t accepted_reads = 0;
  std::uint64_t completed_reads = 0;
  std::uint64_t stream_line = 0;
  const Cycle horizon = 6 * cfg.timings.tREFI;
  Cycle next_arrival = 0;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now >= next_arrival) {
      // Mix of streaming and random traffic exercises both prediction
      // success and failure paths.
      const Address addr = rng.next_bool(0.5)
                               ? (stream_line++ << kLineShift)
                               : rng.next_below(1 << 22) << kLineShift;
      const bool is_write = rng.next_bool(p.write_fraction);
      const auto type = is_write ? mem::ReqType::kWrite : mem::ReqType::kRead;
      if (mem.can_accept(addr, type)) {
        const auto id = mem.enqueue(addr, type, 0, now);
        if (id && !is_write) ++accepted_reads;
      }
      next_arrival = now + rng.next_gap(static_cast<double>(p.mean_gap));
    }
    mem.tick(now);
    completed_reads += mem.drain_completed().size();
  }
  for (Cycle now = horizon; completed_reads < accepted_reads &&
                            now < horizon + 200'000;
       ++now) {
    mem.tick(now);
    completed_reads += mem.drain_completed().size();
  }
  EXPECT_EQ(completed_reads, accepted_reads);
  EXPECT_GE(eng.overall_hit_rate(), 0.0);
  EXPECT_LE(eng.overall_hit_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, RandomRopLoadTest,
    ::testing::Values(LoadParams{11, 1, 0.2, 10}, LoadParams{12, 1, 0.4, 25},
                      LoadParams{13, 2, 0.3, 18}, LoadParams{14, 4, 0.2, 40}));

// --- Prediction table properties over random access sequences.

class TableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableProperty, BudgetsNeverExceedCapacityAndOffsetsInRange) {
  Rng rng(GetParam());
  const std::uint64_t bank_lines = 1 << 16;
  engine::PredictionTable t(8, bank_lines);
  for (int i = 0; i < 3000; ++i) {
    t.on_access(static_cast<BankId>(rng.next_below(8)),
                rng.next_below(bank_lines), i);
    if (i % 97 == 0) {
      const std::uint32_t cap = 1 + static_cast<std::uint32_t>(
                                        rng.next_below(128));
      const auto preds = t.predict(cap, rng.next_bool(0.5),
                                   static_cast<std::uint32_t>(
                                       rng.next_below(20)),
                                   i, rng.next_below(2) * 500);
      std::uint32_t total = 0;
      for (const auto& bp : preds) {
        total += bp.budget;
        EXPECT_LE(bp.offsets.size(), bp.budget);
        for (const auto off : bp.offsets) {
          EXPECT_LT(off, bank_lines);
        }
      }
      EXPECT_LE(total, cap);
    }
    if (i % 501 == 0) t.decay();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Correlator probability properties over random timelines.

class CorrelatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrelatorProperty, ProbabilitiesAlwaysInUnitInterval) {
  Rng rng(GetParam() * 1337);
  engine::WindowCorrelator wc(500 + rng.next_below(2000), 2);
  Cycle now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 1 + rng.next_below(300);
    const RankId rank = static_cast<RankId>(rng.next_below(2));
    if (rng.next_bool(0.2)) {
      wc.on_refresh(rank, now);
    } else {
      wc.on_request(rank, now, rng.next_bool(0.7));
    }
  }
  wc.finalize();
  const auto& c = wc.counts();
  EXPECT_GE(c.lambda(), 0.0);
  EXPECT_LE(c.lambda(), 1.0);
  EXPECT_GE(c.beta(), 0.0);
  EXPECT_LE(c.beta(), 1.0);
  EXPECT_GE(c.e1_fraction() + c.e2_fraction(), 0.0);
  EXPECT_LE(c.e1_fraction() + c.e2_fraction(), 1.0);
  // Every refresh was categorized exactly once.
  EXPECT_GT(c.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelatorProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace rop
