// Channel tests: data-bus occupancy, rank-to-rank switching, event counts.
#include <gtest/gtest.h>

#include "dram/channel.h"

namespace rop::dram {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : t(make_ddr4_1600_timings()) {
    org.channels = 1;
    org.ranks = 2;
    org.banks = 8;
  }

  Command act(RankId r, BankId b, RowId row) {
    return Command{CmdType::kActivate, DramCoord{0, r, b, row, 0}, 0};
  }
  Command rd(RankId r, BankId b, RowId row) {
    return Command{CmdType::kRead, DramCoord{0, r, b, row, 0}, 0};
  }
  Command wr(RankId r, BankId b, RowId row) {
    return Command{CmdType::kWrite, DramCoord{0, r, b, row, 0}, 0};
  }

  DramTimings t;
  DramOrganization org;
};

TEST_F(ChannelTest, ConstructsRanks) {
  Channel ch(t, org);
  EXPECT_EQ(ch.num_ranks(), 2u);
}

TEST_F(ChannelTest, ReadReturnsDataDoneCycle) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  const Cycle done = ch.issue(rd(0, 0, 1), t.tRCD);
  EXPECT_EQ(done, t.read_data_done(t.tRCD));
}

TEST_F(ChannelTest, DataBusSerializesBursts) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  ch.issue(act(0, 1, 1), t.tRRD);
  const Cycle first = t.tRRD + t.tRCD;
  ch.issue(rd(0, 0, 1), first);
  // Same rank, same direction: tCCD (= burst length) is the limiter and
  // exactly back-to-back bursts are legal.
  EXPECT_FALSE(ch.can_issue(rd(0, 1, 1), first + t.tCCD - 1));
  EXPECT_TRUE(ch.can_issue(rd(0, 1, 1), first + t.tCCD));
}

TEST_F(ChannelTest, RankSwitchAddsTrtrs) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  ch.issue(act(1, 0, 1), 1);
  const Cycle first = 1 + t.tRCD;
  const Cycle done = ch.issue(rd(0, 0, 1), first);
  // A read on the other rank must leave a tRTRS gap after the burst.
  // Earliest command time c satisfies c + CL >= done + tRTRS.
  const Cycle earliest = done + t.tRTRS - t.CL;
  EXPECT_FALSE(ch.can_issue(rd(1, 0, 1), earliest - 1));
  EXPECT_TRUE(ch.can_issue(rd(1, 0, 1), earliest));
}

TEST_F(ChannelTest, DirectionSwitchAddsTrtrs) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  const Cycle rd_at = t.tRCD;
  const Cycle done = ch.issue(rd(0, 0, 1), rd_at);
  // Write after read on the same rank: gap on the bus.
  const Cycle earliest = done + t.tRTRS - t.CWL;
  EXPECT_FALSE(ch.can_issue(wr(0, 0, 1), earliest - 1));
  EXPECT_TRUE(ch.can_issue(wr(0, 0, 1), earliest));
}

TEST_F(ChannelTest, EventCountsAccumulate) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  ch.issue(rd(0, 0, 1), t.tRCD);
  ch.issue(wr(0, 0, 1), t.tRCD + t.tCCD + t.tRTRS + t.CL);
  const ChannelEvents& ev = ch.events();
  EXPECT_EQ(ev.activates, 1u);
  EXPECT_EQ(ev.reads, 1u);
  EXPECT_EQ(ev.writes, 1u);
  EXPECT_EQ(ev.refreshes, 0u);
}

TEST_F(ChannelTest, RefreshCountsAndCompletes) {
  Channel ch(t, org);
  const Cycle done = ch.issue(Command{CmdType::kRefresh,
                                      DramCoord{0, 1, 0, 0, 0}, 0}, 5);
  EXPECT_EQ(done, 5 + t.tRFC);
  EXPECT_EQ(ch.events().refreshes, 1u);
  EXPECT_TRUE(ch.rank(1).refreshing());
  // Rank 0 is unaffected by rank 1's refresh.
  EXPECT_TRUE(ch.can_issue(act(0, 0, 1), 6));
  ch.tick(done);
  EXPECT_FALSE(ch.rank(1).refreshing());
}

TEST_F(ChannelTest, SettleAccountingCoversAllRanks) {
  Channel ch(t, org);
  ch.issue(act(0, 0, 1), 0);
  ch.settle_accounting(500);
  const auto& a0 = ch.rank(0).activity();
  const auto& a1 = ch.rank(1).activity();
  EXPECT_EQ(a0.active_cycles + a0.precharged_cycles + a0.refresh_cycles, 500u);
  EXPECT_EQ(a1.precharged_cycles, 500u);
}

}  // namespace
}  // namespace rop::dram
