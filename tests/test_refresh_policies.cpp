// Tests for the alternative refresh schemes: Elastic Refresh, Refresh
// Pausing, and per-bank refresh (REFpb).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mem/memory_system.h"

namespace rop::mem {
namespace {

class RefreshPolicyTest : public ::testing::Test {
 protected:
  MemoryConfig config(RefreshPolicy policy, bool per_bank = false) {
    MemoryConfig cfg;
    cfg.timings = dram::make_ddr4_1600_timings();
    cfg.org.ranks = 1;
    cfg.ctrl.policy = policy;
    cfg.ctrl.per_bank_refresh = per_bank;
    return cfg;
  }

  /// Run with a steady read stream; returns (completed, mean latency).
  struct Outcome {
    std::uint64_t completed = 0;
    std::uint64_t accepted = 0;
    double mean_latency = 0;
  };
  Outcome run_stream(MemorySystem& mem, StatRegistry& stats, Cycle horizon,
                     Cycle interarrival) {
    Outcome out;
    std::uint64_t line = 0;
    for (Cycle now = 0; now < horizon; ++now) {
      if (now % interarrival == 0 &&
          mem.can_accept(line << kLineShift, ReqType::kRead)) {
        if (mem.enqueue(line << kLineShift, ReqType::kRead, 0, now)) {
          ++out.accepted;
          ++line;
        }
      }
      mem.tick(now);
      out.completed += mem.drain_completed().size();
    }
    for (Cycle now = horizon;
         out.completed < out.accepted && now < horizon + 100'000; ++now) {
      mem.tick(now);
      out.completed += mem.drain_completed().size();
    }
    if (const auto* lat = stats.find_scalar("mem.read_latency")) {
      out.mean_latency = lat->mean();
    }
    return out;
  }
};

TEST_F(RefreshPolicyTest, ElasticMaintainsRefreshAverage) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kElastic), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto out = run_stream(mem, stats, 20 * trefi, 15);
  EXPECT_EQ(out.completed, out.accepted);
  // The running average must hold: ~20 refreshes over 20 tREFI (elastic
  // may briefly lag by up to the postponement budget).
  const auto issued = mem.controller(0).refresh_manager().issued(0);
  EXPECT_GE(issued, 20u - mem.config().timings.max_postponed_refreshes);
  EXPECT_LE(issued, 22u);
}

TEST_F(RefreshPolicyTest, ElasticDefersUnderLoadThenForcedByBudget) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kElastic), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  // Saturating traffic: the rank is never idle, so elastic postpones until
  // the budget forces refreshes.
  std::uint64_t line = 0;
  Cycle first_refresh = 0;
  for (Cycle now = 0; now < 9 * trefi; ++now) {
    if (now % 5 == 0 && mem.can_accept(line << kLineShift, ReqType::kRead)) {
      if (mem.enqueue(line << kLineShift, ReqType::kRead, 0, now)) ++line;
    }
    mem.tick(now);
    mem.drain_completed();
    if (first_refresh == 0 &&
        mem.controller(0).refresh_manager().issued(0) > 0) {
      first_refresh = now;
    }
  }
  // Under constant load, the first refresh lands well after its boundary
  // (deferred) but before the budget would be violated.
  EXPECT_GT(first_refresh, trefi / 2);
  EXPECT_GT(mem.controller(0).refresh_manager().issued(0), 0u);
}

TEST_F(RefreshPolicyTest, PausingCompletesRefreshWorkInSegments) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kPausing), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto out = run_stream(mem, stats, 20 * trefi, 40);
  EXPECT_EQ(out.completed, out.accepted);
  const auto issued = mem.controller(0).refresh_manager().issued(0);
  EXPECT_GE(issued, 18u);
  // Refresh work actually executed in segments.
  EXPECT_GT(mem.controller(0).channel().events().refresh_segments,
            issued);
}

// Regression: the blocking window must be opened exactly once per refresh
// obligation. The old code inferred "first segment" from
// refresh_remaining_ == tRFC, but pause overhead grows refresh_remaining_,
// so with pause_overhead >= pause_quantum a pause restores it to exactly
// tRFC and on_refresh_start re-fired on every resumed segment (hundreds of
// phantom windows per refresh).
TEST_F(RefreshPolicyTest, PausingCountsBlockingWindowOncePerRefresh) {
  StatRegistry stats;
  MemoryConfig cfg = config(RefreshPolicy::kPausing);
  cfg.ctrl.pause_quantum = 48;
  cfg.ctrl.pause_overhead = 48;  // each pause undoes one segment of work
  MemorySystem mem(cfg, &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  // A read lands in every inter-segment gap, forcing a pause per segment.
  std::uint64_t line = 0;
  for (Cycle now = 0; now < 10 * trefi; ++now) {
    if (now % 60 == 0 &&
        mem.can_accept(line << kLineShift, ReqType::kRead)) {
      if (mem.enqueue(line << kLineShift, ReqType::kRead, 0, now)) ++line;
    }
    mem.tick(now);
    mem.drain_completed();
  }
  const auto& c = mem.controller(0);
  const auto issued = c.refresh_manager().issued(0);
  EXPECT_GT(stats.counter_value("mem.refresh_pauses"), 0u);
  // One window per completed refresh, plus at most one for a refresh still
  // in progress at the horizon. The old sentinel counted hundreds.
  EXPECT_GE(c.blocking_stats().total_refreshes(), issued);
  EXPECT_LE(c.blocking_stats().total_refreshes(), issued + 1);
}

// Regression companion: demand already pending when the refresh comes due,
// so the pause path runs before the first segment ever issues. The window
// must still be counted exactly once.
TEST_F(RefreshPolicyTest, PausingPauseBeforeFirstSegmentCountsWindowOnce) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kPausing), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  // Back-to-back reads straddling the first boundary keep pending_demand
  // nonzero at due time; afterwards the queue drains and the refresh runs.
  std::uint64_t line = 0;
  for (Cycle now = 0; now < trefi + 2000; ++now) {
    const bool near_boundary = now + 400 >= trefi && now <= trefi + 400;
    if (near_boundary && now % 10 == 0 &&
        mem.can_accept(line << kLineShift, ReqType::kRead)) {
      if (mem.enqueue(line << kLineShift, ReqType::kRead, 0, now)) ++line;
    }
    mem.tick(now);
    mem.drain_completed();
  }
  const auto& c = mem.controller(0);
  EXPECT_EQ(c.refresh_manager().issued(0), 1u);
  EXPECT_EQ(c.blocking_stats().total_refreshes(), 1u);
}

// Regression: under saturating demand, an urgent (budget-exhausted) pausing
// refresh must preempt new demand to its rank. Before the fix, the scheduler
// kept re-activating rows on the starved rank, the forced-full REF could not
// close, and owed refreshes climbed past the JEDEC 8-postponement budget.
TEST_F(RefreshPolicyTest, PausingUrgentRefreshNeverExceedsPostponementBudget) {
  StatRegistry stats;
  MemoryConfig cfg = config(RefreshPolicy::kPausing);
  cfg.org.ranks = 2;
  MemorySystem mem(cfg, &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto budget = mem.config().timings.max_postponed_refreshes;
  Rng rng(3 * 1337);
  std::uint32_t max_owed = 0;
  for (Cycle now = 0; now < 20 * trefi; ++now) {
    if (now % 3 == 0) {
      const Address addr = rng.next_below(1u << 22) << kLineShift;
      if (mem.can_accept(addr, ReqType::kRead)) {
        (void)mem.enqueue(addr, ReqType::kRead, 0, now);
      }
    }
    mem.tick(now);
    mem.drain_completed();
    const auto& rm = mem.controller(0).refresh_manager();
    for (RankId r = 0; r < cfg.org.ranks; ++r) {
      max_owed = std::max(max_owed, rm.owed(r, now));
    }
  }
  EXPECT_LE(max_owed, budget);
}

TEST_F(RefreshPolicyTest, PausingImprovesTailLatencyOverAutoRefresh) {
  StatRegistry stats_auto, stats_pause;
  MemorySystem auto_mem(config(RefreshPolicy::kAutoRefresh), &stats_auto);
  MemorySystem pause_mem(config(RefreshPolicy::kPausing), &stats_pause);
  const Cycle trefi = auto_mem.config().timings.tREFI;
  run_stream(auto_mem, stats_auto, 30 * trefi, 60);
  run_stream(pause_mem, stats_pause, 30 * trefi, 60);
  const double max_auto = stats_auto.find_scalar("mem.read_latency")->max();
  const double max_pause =
      stats_pause.find_scalar("mem.read_latency")->max();
  // A read can wait out a whole tRFC under auto-refresh, but at most a
  // segment (plus service) under pausing.
  EXPECT_LT(max_pause, max_auto);
}

TEST_F(RefreshPolicyTest, PerBankRefreshesEveryBankRoundRobin) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kAutoRefresh, true), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  for (Cycle now = 0; now < 2 * trefi; ++now) {
    mem.tick(now);
  }
  // 8 bank-refreshes per tREFI: about 16 units over two intervals.
  const auto units = mem.controller(0).refresh_manager().issued(0);
  EXPECT_GE(units, 14u);
  EXPECT_LE(units, 18u);
  EXPECT_EQ(stats.counter_value("mem.bank_refreshes"), units);
  EXPECT_EQ(stats.counter_value("mem.refreshes"), 0u);  // no full REF
}

TEST_F(RefreshPolicyTest, PerBankKeepsOtherBanksAvailable) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kAutoRefresh, true), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto out = run_stream(mem, stats, 10 * trefi, 25);
  EXPECT_EQ(out.completed, out.accepted);
  // Mean latency under per-bank refresh stays close to refresh-free
  // service because 7 of 8 banks remain usable during each lock.
  EXPECT_LT(out.mean_latency, 80.0);
}

TEST_F(RefreshPolicyTest, PerBankConservesRequestsUnderRandomLoad) {
  StatRegistry stats;
  MemoryConfig cfg = config(RefreshPolicy::kAutoRefresh, true);
  cfg.org.ranks = 2;
  MemorySystem mem(cfg, &stats);
  Rng rng(99);
  std::uint64_t accepted = 0, completed = 0;
  const Cycle horizon = 6 * cfg.timings.tREFI;
  for (Cycle now = 0; now < horizon; ++now) {
    if (now % 9 == 0) {
      const Address addr = rng.next_below(1 << 22) << kLineShift;
      if (mem.can_accept(addr, ReqType::kRead) &&
          mem.enqueue(addr, ReqType::kRead, 0, now)) {
        ++accepted;
      }
    }
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  for (Cycle now = horizon; completed < accepted && now < horizon + 100'000;
       ++now) {
    mem.tick(now);
    completed += mem.drain_completed().size();
  }
  EXPECT_EQ(completed, accepted);
}

TEST_F(RefreshPolicyTest, AllPoliciesKeepRefreshAverageOverLongRun) {
  for (const RefreshPolicy policy :
       {RefreshPolicy::kAutoRefresh, RefreshPolicy::kElastic,
        RefreshPolicy::kPausing, RefreshPolicy::kRopDrain}) {
    StatRegistry stats;
    MemorySystem mem(config(policy), &stats);
    const Cycle trefi = mem.config().timings.tREFI;
    run_stream(mem, stats, 40 * trefi, 30);
    const auto issued = mem.controller(0).refresh_manager().issued(0);
    EXPECT_GE(issued, 40u - mem.config().timings.max_postponed_refreshes)
        << "policy " << static_cast<int>(policy);
    EXPECT_LE(issued, 42u) << "policy " << static_cast<int>(policy);
  }
}

// --- DARP / SARP / HiRA (refresh–access parallelism schemes) -----------

TEST_F(RefreshPolicyTest, DarpMaintainsPerBankRefreshAverage) {
  StatRegistry stats;
  MemorySystem mem(config(RefreshPolicy::kDarp), &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto out = run_stream(mem, stats, 20 * trefi, 15);
  EXPECT_EQ(out.completed, out.accepted);
  // Bank-granularity obligations: 8 units per tREFI. DARP reorders and
  // postpones but may never fall behind by more than the JEDEC budget.
  const auto units = mem.controller(0).refresh_manager().issued(0);
  EXPECT_GE(units, 20u * 8 - mem.config().timings.max_postponed_refreshes);
  EXPECT_LE(units, 20u * 8 + 8);
  EXPECT_EQ(stats.counter_value("mem.bank_refreshes"), units);
  EXPECT_EQ(stats.counter_value("mem.refreshes"), 0u);  // never a full REF
}

TEST_F(RefreshPolicyTest, SubarrayPoliciesMaintainRefreshAverage) {
  for (const RefreshPolicy policy :
       {RefreshPolicy::kSarp, RefreshPolicy::kHira}) {
    StatRegistry stats;
    MemoryConfig cfg = config(policy);
    cfg.org.subarrays = 8;
    MemorySystem mem(cfg, &stats);
    const Cycle trefi = mem.config().timings.tREFI;
    const auto out = run_stream(mem, stats, 20 * trefi, 15);
    EXPECT_EQ(out.completed, out.accepted)
        << "policy " << static_cast<int>(policy);
    const auto units = mem.controller(0).refresh_manager().issued(0);
    EXPECT_GE(units, 20u * 8 - mem.config().timings.max_postponed_refreshes)
        << "policy " << static_cast<int>(policy);
    EXPECT_LE(units, 20u * 8 + 8) << "policy " << static_cast<int>(policy);
  }
}

TEST_F(RefreshPolicyTest, DarpAndSarpReduceRefreshBlockingVsAutoRefresh) {
  // The acceptance metric: request-cycles queued demand spends behind an
  // in-flight refresh lock. DARP steers REFpb into idle banks, SARP locks
  // 1/8th of a bank — both must beat the all-rank freeze of auto-refresh
  // on a memory-intensive stream.
  const auto blocked = [&](RefreshPolicy policy, std::uint32_t subarrays) {
    StatRegistry stats;
    MemoryConfig cfg = config(policy);
    cfg.org.subarrays = subarrays;
    MemorySystem mem(cfg, &stats);
    const Cycle trefi = mem.config().timings.tREFI;
    run_stream(mem, stats, 30 * trefi, 12);
    return stats.counter_value("mem.refresh_blocked_cycles");
  };
  const auto base = blocked(RefreshPolicy::kAutoRefresh, 1);
  const auto darp = blocked(RefreshPolicy::kDarp, 1);
  const auto sarp = blocked(RefreshPolicy::kSarp, 8);
  const auto hira = blocked(RefreshPolicy::kHira, 8);
  EXPECT_GT(base, 0u);
  EXPECT_LT(darp, base);
  EXPECT_LT(sarp, base);
  EXPECT_LT(hira, base);
}

TEST_F(RefreshPolicyTest, NewSchemesConserveRequestsUnderRandomLoad) {
  struct Case {
    RefreshPolicy policy;
    std::uint32_t subarrays;
  };
  for (const Case c : {Case{RefreshPolicy::kDarp, 1},
                       Case{RefreshPolicy::kSarp, 8},
                       Case{RefreshPolicy::kHira, 8}}) {
    StatRegistry stats;
    MemoryConfig cfg = config(c.policy);
    cfg.org.ranks = 2;
    cfg.org.subarrays = c.subarrays;
    MemorySystem mem(cfg, &stats);
    Rng rng(417);
    std::uint64_t accepted = 0, completed = 0;
    const Cycle horizon = 6 * cfg.timings.tREFI;
    for (Cycle now = 0; now < horizon; ++now) {
      if (now % 7 == 0) {
        const Address addr = rng.next_below(1 << 22) << kLineShift;
        if (mem.can_accept(addr, ReqType::kRead) &&
            mem.enqueue(addr, ReqType::kRead, 0, now)) {
          ++accepted;
        }
      }
      mem.tick(now);
      completed += mem.drain_completed().size();
    }
    for (Cycle now = horizon;
         completed < accepted && now < horizon + 100'000; ++now) {
      mem.tick(now);
      completed += mem.drain_completed().size();
    }
    EXPECT_EQ(completed, accepted)
        << "policy " << static_cast<int>(c.policy);
  }
}

TEST_F(RefreshPolicyTest, DarpNeverExceedsPostponementBudgetUnderSaturation) {
  StatRegistry stats;
  MemoryConfig cfg = config(RefreshPolicy::kDarp);
  cfg.org.ranks = 2;
  MemorySystem mem(cfg, &stats);
  const Cycle trefi = mem.config().timings.tREFI;
  const auto budget = mem.config().timings.max_postponed_refreshes;
  Rng rng(1337);
  std::uint32_t max_owed = 0;
  for (Cycle now = 0; now < 20 * trefi; ++now) {
    if (now % 3 == 0) {
      const Address addr = rng.next_below(1u << 22) << kLineShift;
      if (mem.can_accept(addr, ReqType::kRead)) {
        (void)mem.enqueue(addr, ReqType::kRead, 0, now);
      }
    }
    mem.tick(now);
    mem.drain_completed();
    const auto& rm = mem.controller(0).refresh_manager();
    for (RankId r = 0; r < cfg.org.ranks; ++r) {
      max_owed = std::max(max_owed, rm.owed(r, now));
    }
  }
  EXPECT_LE(max_owed, budget);
}

}  // namespace
}  // namespace rop::mem
