// Experiment-layer tests: canned runners produce coherent metric bundles.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace rop::sim {
namespace {

ExperimentSpec quick(std::string bench, MemoryMode mode) {
  ExperimentSpec spec = single_core_spec(std::move(bench), mode);
  spec.instructions_per_core = 400'000;
  return spec;
}

TEST(Experiment, BaselineRunProducesMetrics) {
  const ExperimentResult res = run_experiment(quick("libquantum",
                                                    MemoryMode::kBaseline));
  EXPECT_GT(res.ipc(), 0.0);
  EXPECT_GT(res.total_energy_mj(), 0.0);
  EXPECT_GT(res.refreshes, 0u);
  EXPECT_EQ(res.nonblocking_fraction.size(), 3u);
  for (const double f : res.nonblocking_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Experiment, NoRefreshHasZeroRefreshes) {
  const ExperimentResult res = run_experiment(quick("bzip2",
                                                    MemoryMode::kNoRefresh));
  EXPECT_EQ(res.refreshes, 0u);
  EXPECT_DOUBLE_EQ(res.energy.refresh_mj, 0.0);
}

TEST(Experiment, RopRunPopulatesRopMetrics) {
  ExperimentSpec spec = quick("libquantum", MemoryMode::kRop);
  spec.instructions_per_core = 2'000'000;
  spec.rop.training_refreshes = 5;
  const ExperimentResult res = run_experiment(spec);
  EXPECT_GE(res.sram_hit_rate, 0.0);
  EXPECT_LE(res.sram_hit_rate, 1.0);
  EXPECT_GT(res.stats.counter_value("rop.decisions_prefetch") +
                res.stats.counter_value("rop.decisions_skip") +
                res.stats.counter_value("rop.skipped_saturated"),
            0u);
  EXPECT_GT(res.energy.sram_mj, 0.0);
}

TEST(Experiment, DeterministicForEqualSpecs) {
  const ExperimentSpec spec = quick("gcc", MemoryMode::kBaseline);
  const ExperimentResult a = run_experiment(spec);
  const ExperimentResult b = run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
  EXPECT_DOUBLE_EQ(a.total_energy_mj(), b.total_energy_mj());
  EXPECT_EQ(a.refreshes, b.refreshes);
}

TEST(Experiment, SeedSaltChangesOutcome) {
  ExperimentSpec a = quick("gcc", MemoryMode::kBaseline);
  ExperimentSpec b = a;
  b.seed_salt = 42;
  EXPECT_NE(run_experiment(a).run.cpu_cycles,
            run_experiment(b).run.cpu_cycles);
}

TEST(Experiment, MultiCoreSpecBuildsFourCores) {
  ExperimentSpec spec = multi_core_spec(3, MemoryMode::kBaseline, true);
  spec.instructions_per_core = 150'000;
  const ExperimentResult res = run_experiment(spec);
  EXPECT_EQ(res.run.cores.size(), 4u);
  for (const auto& core : res.run.cores) {
    EXPECT_GT(core.ipc, 0.0);
  }
}

TEST(Experiment, WeightedSpeedupIdentityAgainstSelf) {
  ExperimentSpec spec = multi_core_spec(6, MemoryMode::kBaseline, false);
  spec.instructions_per_core = 150'000;
  const ExperimentResult res = run_experiment(spec);
  std::vector<double> alone;
  for (const auto& c : res.run.cores) alone.push_back(c.ipc);
  EXPECT_NEAR(res.weighted_speedup(alone), 4.0, 1e-9);
}

TEST(Experiment, NoRefreshBeatsBaselineOnIntensiveWorkload) {
  ExperimentSpec base = quick("lbm", MemoryMode::kBaseline);
  ExperimentSpec ideal = quick("lbm", MemoryMode::kNoRefresh);
  base.instructions_per_core = 2'000'000;
  ideal.instructions_per_core = 2'000'000;
  EXPECT_GT(run_experiment(ideal).ipc(), run_experiment(base).ipc());
}

TEST(Experiment, FgrModesChangeRefreshCount) {
  ExperimentSpec x1 = quick("libquantum", MemoryMode::kBaseline);
  ExperimentSpec x4 = x1;
  x4.refresh_mode = dram::RefreshMode::k4x;
  const auto r1 = run_experiment(x1);
  const auto r4 = run_experiment(x4);
  // 4x mode refreshes ~4x as often (per elapsed cycle).
  const double rate1 = static_cast<double>(r1.refreshes) /
                       static_cast<double>(r1.run.mem_cycles);
  const double rate4 = static_cast<double>(r4.refreshes) /
                       static_cast<double>(r4.run.mem_cycles);
  EXPECT_NEAR(rate4 / rate1, 4.0, 0.5);
}

}  // namespace
}  // namespace rop::sim
