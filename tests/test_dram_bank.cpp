// Bank state-machine tests: command legality and timing constraints.
#include <gtest/gtest.h>

#include "dram/bank.h"

namespace rop::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  DramTimings t = make_ddr4_1600_timings();
  Bank bank;
};

TEST_F(BankTest, StartsPrechargedAndActivatable) {
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.open_row().has_value());
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kWrite, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kPrecharge, 0, 0));
}

TEST_F(BankTest, ActivateOpensRowAndSetsConstraints) {
  bank.issue(CmdType::kActivate, 42, 100, t);
  EXPECT_EQ(bank.state(), BankState::kActive);
  ASSERT_TRUE(bank.open_row().has_value());
  EXPECT_EQ(*bank.open_row(), 42u);
  EXPECT_EQ(bank.next_read(), 100 + t.tRCD);
  EXPECT_EQ(bank.next_write(), 100 + t.tRCD);
  EXPECT_EQ(bank.next_precharge(), 100 + t.tRAS);
  EXPECT_EQ(bank.next_activate(), 100 + t.tRC);
}

TEST_F(BankTest, ReadRequiresRowMatchAndTrcd) {
  bank.issue(CmdType::kActivate, 42, 100, t);
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 42, 100 + t.tRCD - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kRead, 42, 100 + t.tRCD));
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 43, 100 + t.tRCD));
}

TEST_F(BankTest, PrechargeRespectsTras) {
  bank.issue(CmdType::kActivate, 7, 0, t);
  EXPECT_FALSE(bank.can_issue(CmdType::kPrecharge, 0, t.tRAS - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kPrecharge, 0, t.tRAS));
  bank.issue(CmdType::kPrecharge, 0, t.tRAS, t);
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.open_row().has_value());
  // tRP before the next activate.
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 9, t.tRAS + t.tRP - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 9, t.tRAS + t.tRP));
}

TEST_F(BankTest, ReadExtendsPrechargePoint) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  const Cycle rd_at = t.tRAS - 2;  // a late read pushes tRTP past tRAS
  bank.issue(CmdType::kRead, 1, rd_at, t);
  EXPECT_EQ(bank.next_precharge(), std::max<Cycle>(t.tRAS, rd_at + t.tRTP));
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  bank.issue(CmdType::kWrite, 1, t.tRCD, t);
  const Cycle expected = t.write_data_done(t.tRCD) + t.tWR;
  EXPECT_EQ(bank.next_precharge(), std::max<Cycle>(t.tRAS, expected));
}

TEST_F(BankTest, BackToBackActivatesRespectTrc) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  bank.issue(CmdType::kPrecharge, 0, t.tRAS, t);
  // tRC from the first ACT dominates tRAS + tRP here (tRC = tRAS + tRP).
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 2, t.tRC - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 2, t.tRC));
}

TEST_F(BankTest, RefreshLocksBankForTrfc) {
  bank.issue(CmdType::kRefresh, 0, 50, t);
  EXPECT_EQ(bank.state(), BankState::kRefreshing);
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC + 10));
  bank.complete_refresh(50 + t.tRFC);
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC));
}

TEST_F(BankTest, DeferHelpersOnlyTighten) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  const Cycle before = bank.next_read();
  bank.defer_read_until(before - 1);  // looser: must not relax
  EXPECT_EQ(bank.next_read(), before);
  bank.defer_read_until(before + 100);
  EXPECT_EQ(bank.next_read(), before + 100);
  const Cycle wr_before = bank.next_write();
  bank.defer_write_until(wr_before + 7);
  EXPECT_EQ(bank.next_write(), wr_before + 7);
}

// --- Subarray-aware model (SARP / HiRA substrate) ---------------------

class SubarrayBankTest : public ::testing::Test {
 protected:
  void SetUp() override { bank.configure_subarrays(8, 64 * 1024); }
  DramTimings t = make_ddr4_1600_timings();
  Bank bank;
};

TEST_F(SubarrayBankTest, RowsPartitionIntoContiguousSubarrays) {
  EXPECT_EQ(bank.subarrays(), 8u);
  const std::uint32_t rows_per_sub = 64 * 1024 / 8;
  EXPECT_EQ(bank.subarray_of(0), 0u);
  EXPECT_EQ(bank.subarray_of(rows_per_sub - 1), 0u);
  EXPECT_EQ(bank.subarray_of(rows_per_sub), 1u);
  EXPECT_EQ(bank.subarray_of(64 * 1024 - 1), 7u);
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(bank.subarray_of(bank.subarray_row(s)), s);
  }
}

TEST_F(SubarrayBankTest, SubarrayRefreshLocksOnlyTargetSubarray) {
  const RowId sub0_row = bank.subarray_row(0);
  const RowId sub3_row = bank.subarray_row(3);
  bank.issue(CmdType::kRefreshBank, sub0_row, 100, t);
  // The bank does NOT go whole-bank kRefreshing: other subarrays serve.
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  ASSERT_TRUE(bank.refreshing_subarray(100).has_value());
  EXPECT_EQ(*bank.refreshing_subarray(100), 0u);
  EXPECT_EQ(bank.subarray_busy_until(0), 100 + t.tRFCpb);
  // ACT into the locked subarray is illegal; into another it is legal.
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, sub0_row, 100));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, sub3_row, 100));
  // The lock expires after tRFCpb.
  EXPECT_FALSE(
      bank.can_issue(CmdType::kActivate, sub0_row, 100 + t.tRFCpb - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, sub0_row, 100 + t.tRFCpb));
  EXPECT_FALSE(bank.refreshing_subarray(100 + t.tRFCpb).has_value());
}

TEST_F(SubarrayBankTest, AtMostOneSubarrayRefreshInFlight) {
  bank.issue(CmdType::kRefreshBank, bank.subarray_row(0), 100, t);
  // A second subarray refresh (any target) must wait out the first.
  EXPECT_FALSE(
      bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(4), 100));
  EXPECT_FALSE(bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(4),
                              100 + t.tRFCpb - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(4),
                             100 + t.tRFCpb));
  // Whole-bank REF also waits for the in-flight subarray refresh.
  EXPECT_FALSE(bank.can_issue(CmdType::kRefresh, 0, 100 + t.tRFCpb - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kRefresh, 0, 100 + t.tRFCpb));
}

TEST_F(SubarrayBankTest, HiraOverlapRefreshLegalUnderOpenRowElsewhere) {
  const RowId open = bank.subarray_row(2) + 5;
  bank.issue(CmdType::kActivate, open, 0, t);
  ASSERT_EQ(bank.state(), BankState::kActive);
  // Same-subarray refresh under the open row: never legal.
  EXPECT_FALSE(bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(2),
                              t.tRC + 10));
  EXPECT_EQ(bank.earliest_issue(CmdType::kRefreshBank, bank.subarray_row(2)),
            kNeverCycle);
  // Different subarray: legal once tRC from the ACT has elapsed (the
  // hidden activation needs its own row-cycle spacing).
  EXPECT_FALSE(
      bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(6), t.tRC - 1));
  EXPECT_TRUE(
      bank.can_issue(CmdType::kRefreshBank, bank.subarray_row(6), t.tRC));
  EXPECT_EQ(bank.earliest_issue(CmdType::kRefreshBank, bank.subarray_row(6)),
            t.tRC);
  bank.issue(CmdType::kRefreshBank, bank.subarray_row(6), t.tRC, t);
  // The open row survives the overlapped refresh; reads keep flowing.
  ASSERT_TRUE(bank.open_row().has_value());
  EXPECT_EQ(*bank.open_row(), open);
  EXPECT_TRUE(bank.can_issue(CmdType::kRead, open, t.tRC));
}

TEST_F(SubarrayBankTest, SubarrayRefreshClosesLocalRowRecord) {
  const RowId row = bank.subarray_row(1) + 3;
  bank.issue(CmdType::kActivate, row, 0, t);
  EXPECT_EQ(bank.subarray_last_row(1), std::optional<RowId>(row));
  bank.issue(CmdType::kPrecharge, 0, t.tRAS, t);
  bank.issue(CmdType::kRefreshBank, bank.subarray_row(1), t.tRC, t);
  EXPECT_FALSE(bank.subarray_last_row(1).has_value());
}

TEST_F(BankTest, WholeBankModeUnchangedBySubarrayApi) {
  // Default configuration is one subarray == the legacy whole-bank model:
  // REFpb locks the entire bank via kRefreshing.
  EXPECT_EQ(bank.subarrays(), 1u);
  EXPECT_EQ(bank.subarray_of(12345), 0u);
  bank.issue(CmdType::kRefreshBank, 0, 50, t);
  EXPECT_EQ(bank.state(), BankState::kRefreshing);
  EXPECT_FALSE(bank.refreshing_subarray(50).has_value());
  bank.complete_refresh(50 + t.tRFCpb);
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFCpb - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFCpb));
}

}  // namespace
}  // namespace rop::dram
