// Bank state-machine tests: command legality and timing constraints.
#include <gtest/gtest.h>

#include "dram/bank.h"

namespace rop::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  DramTimings t = make_ddr4_1600_timings();
  Bank bank;
};

TEST_F(BankTest, StartsPrechargedAndActivatable) {
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.open_row().has_value());
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kWrite, 5, 0));
  EXPECT_FALSE(bank.can_issue(CmdType::kPrecharge, 0, 0));
}

TEST_F(BankTest, ActivateOpensRowAndSetsConstraints) {
  bank.issue(CmdType::kActivate, 42, 100, t);
  EXPECT_EQ(bank.state(), BankState::kActive);
  ASSERT_TRUE(bank.open_row().has_value());
  EXPECT_EQ(*bank.open_row(), 42u);
  EXPECT_EQ(bank.next_read(), 100 + t.tRCD);
  EXPECT_EQ(bank.next_write(), 100 + t.tRCD);
  EXPECT_EQ(bank.next_precharge(), 100 + t.tRAS);
  EXPECT_EQ(bank.next_activate(), 100 + t.tRC);
}

TEST_F(BankTest, ReadRequiresRowMatchAndTrcd) {
  bank.issue(CmdType::kActivate, 42, 100, t);
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 42, 100 + t.tRCD - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kRead, 42, 100 + t.tRCD));
  EXPECT_FALSE(bank.can_issue(CmdType::kRead, 43, 100 + t.tRCD));
}

TEST_F(BankTest, PrechargeRespectsTras) {
  bank.issue(CmdType::kActivate, 7, 0, t);
  EXPECT_FALSE(bank.can_issue(CmdType::kPrecharge, 0, t.tRAS - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kPrecharge, 0, t.tRAS));
  bank.issue(CmdType::kPrecharge, 0, t.tRAS, t);
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.open_row().has_value());
  // tRP before the next activate.
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 9, t.tRAS + t.tRP - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 9, t.tRAS + t.tRP));
}

TEST_F(BankTest, ReadExtendsPrechargePoint) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  const Cycle rd_at = t.tRAS - 2;  // a late read pushes tRTP past tRAS
  bank.issue(CmdType::kRead, 1, rd_at, t);
  EXPECT_EQ(bank.next_precharge(), std::max<Cycle>(t.tRAS, rd_at + t.tRTP));
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  bank.issue(CmdType::kWrite, 1, t.tRCD, t);
  const Cycle expected = t.write_data_done(t.tRCD) + t.tWR;
  EXPECT_EQ(bank.next_precharge(), std::max<Cycle>(t.tRAS, expected));
}

TEST_F(BankTest, BackToBackActivatesRespectTrc) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  bank.issue(CmdType::kPrecharge, 0, t.tRAS, t);
  // tRC from the first ACT dominates tRAS + tRP here (tRC = tRAS + tRP).
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 2, t.tRC - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 2, t.tRC));
}

TEST_F(BankTest, RefreshLocksBankForTrfc) {
  bank.issue(CmdType::kRefresh, 0, 50, t);
  EXPECT_EQ(bank.state(), BankState::kRefreshing);
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC + 10));
  bank.complete_refresh(50 + t.tRFC);
  EXPECT_EQ(bank.state(), BankState::kPrecharged);
  EXPECT_FALSE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC - 1));
  EXPECT_TRUE(bank.can_issue(CmdType::kActivate, 1, 50 + t.tRFC));
}

TEST_F(BankTest, DeferHelpersOnlyTighten) {
  bank.issue(CmdType::kActivate, 1, 0, t);
  const Cycle before = bank.next_read();
  bank.defer_read_until(before - 1);  // looser: must not relax
  EXPECT_EQ(bank.next_read(), before);
  bank.defer_read_until(before + 100);
  EXPECT_EQ(bank.next_read(), before + 100);
  const Cycle wr_before = bank.next_write();
  bank.defer_write_until(wr_before + 7);
  EXPECT_EQ(bank.next_write(), wr_before + 7);
}

}  // namespace
}  // namespace rop::dram
