// SRAM prefetch buffer tests: associativity, LRU, coherence, rounds.
#include <gtest/gtest.h>

#include "rop/sram_buffer.h"

namespace rop::engine {
namespace {

TEST(SramBuffer, InsertThenLookupHits) {
  SramBuffer buf(4);
  buf.begin_round(0);
  EXPECT_TRUE(buf.insert(0x1000));
  EXPECT_TRUE(buf.lookup(0x1000));
  EXPECT_FALSE(buf.lookup(0x2000));
  EXPECT_EQ(buf.stats().hits, 1u);
  EXPECT_EQ(buf.stats().lookups, 2u);
}

TEST(SramBuffer, FullyAssociativeAcrossAddressSpace) {
  SramBuffer buf(4);
  buf.begin_round(0);
  // Addresses that would conflict in any set-indexed structure.
  const Address addrs[] = {0x0, 0x100000, 0x200000, 0x300000};
  for (const Address a : addrs) buf.insert(a);
  for (const Address a : addrs) EXPECT_TRUE(buf.contains(a));
  EXPECT_EQ(buf.size(), 4u);
}

TEST(SramBuffer, LruEvictionAtCapacity) {
  SramBuffer buf(2);
  buf.begin_round(0);
  buf.insert(0x40);
  buf.insert(0x80);
  EXPECT_TRUE(buf.lookup(0x40));  // 0x40 becomes MRU
  buf.insert(0xC0);               // evicts 0x80
  EXPECT_TRUE(buf.contains(0x40));
  EXPECT_FALSE(buf.contains(0x80));
  EXPECT_TRUE(buf.contains(0xC0));
  EXPECT_EQ(buf.size(), 2u);
}

TEST(SramBuffer, DuplicateInsertKeepsSingleCopy) {
  SramBuffer buf(4);
  buf.begin_round(0);
  EXPECT_TRUE(buf.insert(0x40));
  EXPECT_FALSE(buf.insert(0x40));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.stats().fills, 2u);
}

TEST(SramBuffer, InvalidateRemovesLine) {
  SramBuffer buf(4);
  buf.begin_round(0);
  buf.insert(0x40);
  buf.invalidate(0x40);
  EXPECT_FALSE(buf.contains(0x40));
  EXPECT_EQ(buf.stats().invalidations, 1u);
  // Invalidating an absent line is a no-op.
  buf.invalidate(0x9999);
  EXPECT_EQ(buf.stats().invalidations, 1u);
}

TEST(SramBuffer, BeginRoundClearsAndReowns) {
  SramBuffer buf(4);
  buf.begin_round(0);
  buf.insert(0x40);
  ASSERT_TRUE(buf.owner().has_value());
  EXPECT_EQ(*buf.owner(), 0u);
  buf.begin_round(3);
  EXPECT_EQ(*buf.owner(), 3u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_FALSE(buf.contains(0x40));
  EXPECT_EQ(buf.stats().rounds, 2u);
}

TEST(SramBuffer, ClearDropsOwnership) {
  SramBuffer buf(4);
  buf.begin_round(1);
  buf.insert(0x40);
  buf.clear();
  EXPECT_FALSE(buf.owner().has_value());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(SramBuffer, CapacityIsRespectedUnderChurn) {
  SramBuffer buf(16);
  buf.begin_round(0);
  for (Address a = 0; a < 1000; ++a) {
    buf.insert(a << kLineShift);
    ASSERT_LE(buf.size(), 16u);
  }
  // The 16 most recent lines survive.
  for (Address a = 1000 - 16; a < 1000; ++a) {
    EXPECT_TRUE(buf.contains(a << kLineShift));
  }
}

TEST(SramBuffer, ContainsDoesNotPerturbStatsOrLru) {
  SramBuffer buf(2);
  buf.begin_round(0);
  buf.insert(0x40);
  buf.insert(0x80);
  const auto lookups_before = buf.stats().lookups;
  EXPECT_TRUE(buf.contains(0x40));  // must NOT refresh 0x40's LRU position
  EXPECT_EQ(buf.stats().lookups, lookups_before);
  buf.insert(0xC0);  // evicts 0x40 (still LRU despite contains())
  EXPECT_FALSE(buf.contains(0x40));
}

}  // namespace
}  // namespace rop::engine
