// Rank-scope timing tests: tRRD, tFAW, tCCD, write-to-read turnaround,
// refresh lockout, and activity accounting for the power model.
#include <gtest/gtest.h>

#include "dram/rank.h"

namespace rop::dram {
namespace {

Command act(RankId r, BankId b, RowId row) {
  return Command{CmdType::kActivate, DramCoord{0, r, b, row, 0}, 0};
}
Command rd(RankId r, BankId b, RowId row, ColumnId col) {
  return Command{CmdType::kRead, DramCoord{0, r, b, row, col}, 0};
}
Command wr(RankId r, BankId b, RowId row, ColumnId col) {
  return Command{CmdType::kWrite, DramCoord{0, r, b, row, col}, 0};
}
Command pre(RankId r, BankId b) {
  return Command{CmdType::kPrecharge, DramCoord{0, r, b, 0, 0}, 0};
}
Command ref(RankId r) {
  return Command{CmdType::kRefresh, DramCoord{0, r, 0, 0, 0}, 0};
}

class RankTest : public ::testing::Test {
 protected:
  DramTimings t = make_ddr4_1600_timings();
  Rank rank{t, 8};
};

TEST_F(RankTest, TrrdBetweenActivatesToDifferentBanks) {
  rank.issue(act(0, 0, 1), 0);
  EXPECT_FALSE(rank.can_issue(act(0, 1, 1), t.tRRD - 1));
  EXPECT_TRUE(rank.can_issue(act(0, 1, 1), t.tRRD));
}

TEST_F(RankTest, TfawLimitsFourActivatesPerWindow) {
  Cycle now = 0;
  for (BankId b = 0; b < 4; ++b) {
    rank.issue(act(0, b, 1), now);
    now += t.tRRD;
  }
  // The 5th ACT must wait until tFAW from the first (DDR4-1600: tFAW is
  // exactly 4 x tRRD, so the window opens right as tRRD would allow it).
  EXPECT_FALSE(rank.can_issue(act(0, 4, 1), t.tFAW - 1));
  EXPECT_TRUE(rank.can_issue(act(0, 4, 1), t.tFAW));
}

TEST_F(RankTest, TccdBetweenColumnCommands) {
  rank.issue(act(0, 0, 1), 0);
  rank.issue(act(0, 1, 1), t.tRRD);
  const Cycle first_rd = t.tRRD + t.tRCD;
  rank.issue(rd(0, 0, 1, 0), first_rd);
  EXPECT_FALSE(rank.can_issue(rd(0, 1, 1, 0), first_rd + t.tCCD - 1));
  EXPECT_TRUE(rank.can_issue(rd(0, 1, 1, 0), first_rd + t.tCCD));
}

TEST_F(RankTest, WriteToReadTurnaroundAppliesRankWide) {
  rank.issue(act(0, 0, 1), 0);
  rank.issue(act(0, 1, 1), t.tRRD);
  const Cycle wr_at = t.tRRD + t.tRCD;
  rank.issue(wr(0, 0, 1, 0), wr_at);
  const Cycle rd_ok = t.write_data_done(wr_at) + t.tWTR;
  // Read to a *different* bank in the same rank also waits for tWTR.
  EXPECT_FALSE(rank.can_issue(rd(0, 1, 1, 0), rd_ok - 1));
  EXPECT_TRUE(rank.can_issue(rd(0, 1, 1, 0), rd_ok));
}

TEST_F(RankTest, RefreshRequiresAllBanksPrecharged) {
  rank.issue(act(0, 3, 1), 0);
  EXPECT_FALSE(rank.can_issue(ref(0), t.tRAS + t.tRP + 100));
  rank.issue(pre(0, 3), t.tRAS);
  // Still waiting on tRP recovery of bank 3.
  EXPECT_FALSE(rank.can_issue(ref(0), t.tRAS + t.tRP - 1));
  EXPECT_TRUE(rank.can_issue(ref(0), t.tRAS + t.tRP));
}

TEST_F(RankTest, RefreshFreezesEveryBankUntilTrfc) {
  rank.issue(ref(0), 10);
  EXPECT_TRUE(rank.refreshing());
  EXPECT_EQ(rank.refresh_done(), 10 + t.tRFC);
  EXPECT_FALSE(rank.can_issue(act(0, 0, 1), 10 + t.tRFC - 1));
  rank.tick(10 + t.tRFC - 1);
  EXPECT_TRUE(rank.refreshing());
  rank.tick(10 + t.tRFC);
  EXPECT_FALSE(rank.refreshing());
  EXPECT_TRUE(rank.can_issue(act(0, 0, 1), 10 + t.tRFC));
}

TEST_F(RankTest, ActivityAccountingPartitionsTime) {
  // 100 cycles precharged, then active until 300, then refresh.
  rank.issue(act(0, 0, 5), 100);
  rank.issue(pre(0, 0), 100 + t.tRAS);
  const Cycle ref_at = 300;
  rank.issue(ref(0), ref_at);
  rank.tick(ref_at + t.tRFC);
  rank.settle_accounting(1000);

  const RankActivity& a = rank.activity();
  EXPECT_EQ(a.active_cycles, static_cast<std::uint64_t>(t.tRAS));
  EXPECT_EQ(a.refresh_cycles, static_cast<std::uint64_t>(t.tRFC));
  EXPECT_EQ(a.active_cycles + a.precharged_cycles + a.refresh_cycles, 1000u);
}

TEST_F(RankTest, AccountingSettlesMidRefresh) {
  rank.issue(ref(0), 0);
  rank.settle_accounting(t.tRFC / 2);
  EXPECT_EQ(rank.activity().refresh_cycles,
            static_cast<std::uint64_t>(t.tRFC / 2));
  // Settling past the end splits refresh vs precharged correctly.
  rank.settle_accounting(t.tRFC + 50);
  EXPECT_EQ(rank.activity().refresh_cycles,
            static_cast<std::uint64_t>(t.tRFC));
  EXPECT_EQ(rank.activity().precharged_cycles, 50u);
}

TEST_F(RankTest, AllBanksPrechargedTracksState) {
  EXPECT_TRUE(rank.all_banks_precharged());
  rank.issue(act(0, 2, 9), 0);
  EXPECT_FALSE(rank.all_banks_precharged());
  rank.issue(pre(0, 2), t.tRAS);
  EXPECT_TRUE(rank.all_banks_precharged());
}

}  // namespace
}  // namespace rop::dram
