// Unit tests for the common substrate: RNG, statistics, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace rop {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, GeometricGapMeanApproximatesTarget) {
  Rng r(13);
  for (double mean : {2.0, 10.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.next_gap(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.1);
  }
}

TEST(Rng, GapIsAtLeastOne) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.next_gap(1.5), 1u);
  }
  // Degenerate mean collapses to 1.
  EXPECT_EQ(r.next_gap(0.5), 1u);
}

TEST(Stats, CounterAccumulates) {
  StatRegistry reg;
  reg.counter("a").inc();
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter_value("a"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
}

TEST(Stats, ScalarTracksMoments) {
  StatRegistry reg;
  auto& s = reg.scalar("lat");
  s.record(10.0);
  s.record(20.0);
  s.record(30.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(Stats, EmptyScalarIsZero) {
  Scalar s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  Histogram h(10, 4);  // buckets [0,10) [10,20) [20,30) [30,40) + overflow
  h.record(0);
  h.record(9);
  h.record(10);
  h.record(39);
  h.record(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);  // overflow
}

TEST(Stats, HistogramQuantileMonotone) {
  Histogram h(1, 100);
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
}

TEST(Stats, HistogramPercentileEmpty) {
  const Histogram h(10, 4);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(Stats, HistogramPercentileSingleSample) {
  Histogram h(10, 4);
  h.record(5);  // bucket [0, 10)
  // One sample: p0 pins the bucket's lower edge, p100 its upper edge, and
  // interior percentiles interpolate linearly across the bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(Stats, HistogramPercentileEdgesSkipEmptyBuckets) {
  Histogram h(10, 4);
  h.record(25);  // bucket [20, 30) — buckets 0 and 1 stay empty
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 30.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(50.0));
  EXPECT_LE(h.percentile(50.0), h.percentile(100.0));
}

TEST(Stats, HistogramMergeThenPercentileMatchesCombined) {
  Histogram lo(1, 100);
  Histogram hi(1, 100);
  Histogram all(1, 100);
  for (std::uint64_t v = 0; v < 50; ++v) {
    lo.record(v);
    all.record(v);
  }
  for (std::uint64_t v = 50; v < 100; ++v) {
    hi.record(v);
    all.record(v);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), all.count());
  EXPECT_EQ(lo.sum(), all.sum());
  for (const double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(lo.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

TEST(Stats, ResetAllClearsEverything) {
  StatRegistry reg;
  reg.counter("c").inc(3);
  reg.scalar("s").record(1.0);
  reg.histogram("h", 1, 4).record(2);
  reg.reset_all();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.find_scalar("s")->count(), 0u);
  EXPECT_EQ(reg.find_histogram("h")->count(), 0u);
}

TEST(Stats, ReportContainsNames) {
  StatRegistry reg;
  reg.counter("mem.reads").inc(7);
  const std::string report = reg.report();
  EXPECT_NE(report.find("mem.reads 7"), std::string::npos);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(0.5, 1), "50.0%");
}

}  // namespace
}  // namespace rop
