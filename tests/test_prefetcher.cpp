// Prefetcher tests: coordinate plumbing between prediction tables and the
// address map.
#include <gtest/gtest.h>

#include "rop/prefetcher.h"

namespace rop::engine {
namespace {

class PrefetcherTest : public ::testing::Test {
 protected:
  PrefetcherTest()
      : map(make_org(), mem::MapScheme::kRowRankBankColumn),
        pf(map, 0, 2) {}

  static dram::DramOrganization make_org() {
    dram::DramOrganization org;
    org.ranks = 2;
    org.banks = 8;
    return org;
  }

  void touch(Address addr, Cycle now) {
    pf.on_access(map.map(addr), now);
  }

  mem::AddressMap map;
  Prefetcher pf;
};

TEST_F(PrefetcherTest, EmptyTableMakesNoPrefetches) {
  EXPECT_TRUE(pf.make_prefetches(0, 16).empty());
}

TEST_F(PrefetcherTest, StreamYieldsNextLines) {
  // Walk 20 consecutive lines (all land in rank 0, bank 0, columns 0..19).
  for (std::uint64_t line = 0; line < 20; ++line) {
    touch(line << kLineShift, line);
  }
  const auto reqs = pf.make_prefetches(0, 8);
  ASSERT_FALSE(reqs.empty());
  for (std::size_t k = 0; k < reqs.size(); ++k) {
    EXPECT_EQ(reqs[k].type, mem::ReqType::kPrefetch);
    EXPECT_EQ(reqs[k].coord.rank, 0u);
    EXPECT_EQ(reqs[k].line_addr, (20 + k) << kLineShift);
    // line_addr and coord must agree.
    EXPECT_EQ(map.map(reqs[k].line_addr), reqs[k].coord);
  }
}

TEST_F(PrefetcherTest, RankTablesAreIndependent) {
  // Touch only rank 1 (use compose_in_rank to pin the rank).
  for (std::uint64_t i = 0; i < 10; ++i) {
    touch(map.compose_in_rank(1, i), i);
  }
  EXPECT_TRUE(pf.make_prefetches(0, 8).empty());
  EXPECT_FALSE(pf.make_prefetches(1, 8).empty());
}

TEST_F(PrefetcherTest, OtherChannelsIgnored) {
  mem::AddressMap map2(make_org(), mem::MapScheme::kRowRankBankColumn);
  Prefetcher pf_ch1(map2, /*channel=*/1, 2);
  DramCoord c = map2.map(0x40);
  c.channel = 0;  // not this prefetcher's channel
  pf_ch1.on_access(c, 0);
  EXPECT_TRUE(pf_ch1.make_prefetches(0, 8).empty());
}

TEST_F(PrefetcherTest, CapacityBoundsRequestCount) {
  for (std::uint64_t line = 0; line < 64; ++line) {
    touch(line << kLineShift, line);
  }
  EXPECT_LE(pf.make_prefetches(0, 4).size(), 4u);
  EXPECT_LE(pf.make_prefetches(0, 64).size(), 64u);
}

TEST_F(PrefetcherTest, ClearForgetsHistory) {
  for (std::uint64_t line = 0; line < 20; ++line) {
    touch(line << kLineShift, line);
  }
  pf.clear();
  EXPECT_TRUE(pf.make_prefetches(0, 8).empty());
}

TEST_F(PrefetcherTest, RecencyHorizonFocusesHotBank) {
  // Old traffic in bank 0 (columns of row 0), recent in bank 1.
  for (std::uint64_t line = 0; line < 20; ++line) {
    touch(line << kLineShift, 100 + line);  // bank 0
  }
  for (std::uint64_t line = 128; line < 148; ++line) {
    touch(line << kLineShift, 10'000 + line);  // bank 1
  }
  const auto reqs =
      pf.make_prefetches(0, 16, 0, /*now=*/10'200, /*recency_horizon=*/300);
  ASSERT_FALSE(reqs.empty());
  std::size_t bank1 = 0;
  for (const auto& r : reqs) {
    if (r.coord.bank == 1) ++bank1;
  }
  EXPECT_GE(bank1 * 2, reqs.size());  // majority targets the hot bank
}

}  // namespace
}  // namespace rop::engine
