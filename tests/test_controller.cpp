// Controller integration tests: request lifecycle, refresh policies,
// forwarding, and the listener hook protocol.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "mem/controller.h"

namespace rop::mem {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : t(dram::make_ddr4_1600_timings()) {
    org.channels = 1;
    org.ranks = 1;
    org.banks = 8;
  }

  std::unique_ptr<Controller> make(ControllerConfig cfg = {}) {
    return std::make_unique<Controller>(0, t, org, cfg, &stats);
  }

  Request read_req(Address line, RankId rank = 0, BankId bank = 0,
                   RowId row = 0, ColumnId col = 0) {
    Request r;
    r.id = next_id_++;
    r.type = ReqType::kRead;
    r.line_addr = line;
    r.coord = DramCoord{0, rank, bank, row, col};
    return r;
  }
  Request write_req(Address line, RankId rank = 0, BankId bank = 0,
                    RowId row = 0, ColumnId col = 0) {
    Request r = read_req(line, rank, bank, row, col);
    r.type = ReqType::kWrite;
    return r;
  }

  /// Tick until `pred` or the bound is hit; returns cycles consumed.
  template <typename Pred>
  Cycle run_until(Controller& c, Cycle from, Cycle bound, Pred pred) {
    Cycle now = from;
    for (; now < bound && !pred(); ++now) c.tick(now);
    return now;
  }

  dram::DramTimings t;
  dram::DramOrganization org;
  StatRegistry stats;
  RequestId next_id_ = 1;
};

TEST_F(ControllerTest, ReadCompletesWithDramLatency) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(read_req(0x1000, 0, 0, 5, 3), 0));
  std::vector<Request> done;
  run_until(*c, 0, 1000, [&] {
    auto d = c->drain_completed();
    done.insert(done.end(), d.begin(), d.end());
    return !done.empty();
  });
  ASSERT_EQ(done.size(), 1u);
  // ACT at ~1, RD at ~1+tRCD, data done CL+tBL later.
  EXPECT_GE(done[0].completion, t.tRCD + t.CL + t.tBL);
  EXPECT_LE(done[0].completion, t.tRCD + t.CL + t.tBL + 8);
  EXPECT_EQ(done[0].serviced_by, ServicedBy::kDram);
}

TEST_F(ControllerTest, WritesArePostedAndRetireSilently) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(write_req(0x2000, 0, 1, 2, 0), 0));
  run_until(*c, 0, 2000, [&] { return c->idle(); });
  EXPECT_TRUE(c->idle());
  EXPECT_EQ(stats.counter_value("mem.writes_issued"), 1u);
  EXPECT_TRUE(c->drain_completed().empty());
}

TEST_F(ControllerTest, ReadAfterWriteForwards) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(write_req(0x3000, 0, 0, 1, 1), 0));
  ASSERT_TRUE(c->enqueue(read_req(0x3000, 0, 0, 1, 1), 0));
  const auto done = c->drain_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].serviced_by, ServicedBy::kWriteForward);
  EXPECT_EQ(done[0].completion, 1u);
}

TEST_F(ControllerTest, DuplicateWritesCoalesce) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(write_req(0x4000), 0));
  ASSERT_TRUE(c->enqueue(write_req(0x4000), 0));
  EXPECT_EQ(stats.counter_value("mem.write_coalesced"), 1u);
  EXPECT_EQ(c->write_queue_depth(), 1u);
}

TEST_F(ControllerTest, ReadQueueCapacityEnforced) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  cfg.sched.read_queue_capacity = 4;
  auto c = make(cfg);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c->can_accept(ReqType::kRead));
    ASSERT_TRUE(c->enqueue(read_req(0x100 * (i + 1), 0, 0, i), 0));
  }
  EXPECT_FALSE(c->can_accept(ReqType::kRead));
  EXPECT_FALSE(c->enqueue(read_req(0x9999, 0, 0, 7), 0));
}

TEST_F(ControllerTest, AutoRefreshIssuesOnCadence) {
  auto c = make();  // refresh enabled, baseline policy
  const Cycle horizon = 5 * t.tREFI;
  run_until(*c, 0, horizon, [] { return false; });
  // Boundaries at tREFI, ..., 4 x tREFI inside the horizon (the first
  // tREFI interval must elapse before a refresh comes due).
  EXPECT_EQ(c->refresh_manager().issued(0), 4u);
  EXPECT_EQ(stats.counter_value("mem.refreshes"), 4u);
}

TEST_F(ControllerTest, NoRefreshModeNeverRefreshes) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  run_until(*c, 0, 3 * t.tREFI, [] { return false; });
  EXPECT_EQ(stats.counter_value("mem.refreshes"), 0u);
}

TEST_F(ControllerTest, BaselineBlocksDemandDuringRefresh) {
  auto c = make();
  // Enqueue right at the first refresh boundary (tREFI): the read must
  // wait out tRFC.
  const Cycle boundary = t.tREFI;
  ASSERT_TRUE(c->enqueue(read_req(0x5000, 0, 0, 3), boundary));
  std::vector<Request> done;
  run_until(*c, boundary, boundary + 3000, [&] {
    auto d = c->drain_completed();
    done.insert(done.end(), d.begin(), d.end());
    return !done.empty();
  });
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GE(done[0].completion, boundary + static_cast<Cycle>(t.tRFC));
}

TEST_F(ControllerTest, RankLockedAndUnavailableTrackPhases) {
  auto c = make();
  EXPECT_FALSE(c->rank_locked(0));
  c->tick(t.tREFI);  // refresh due at tREFI: baseline seals immediately
  // Either the REF went out on the first tick (rank refreshing) or the
  // rank is sealing; both count as unavailable.
  EXPECT_TRUE(c->rank_unavailable(0));
}

/// Listener that records the hook sequence.
class RecordingListener final : public ControllerListener {
 public:
  std::optional<Cycle> on_enqueue(const Request& req, Cycle) override {
    enqueued.push_back(req.line_addr);
    return std::nullopt;
  }
  void on_demand_serviced(const Request& req, Cycle) override {
    serviced.push_back(req.line_addr);
  }
  void on_rank_locked(RankId rank, Cycle now) override {
    locks.emplace_back(rank, now);
  }
  void on_refresh_issued(RankId rank, Cycle start, Cycle done) override {
    refreshes.emplace_back(rank, start);
    EXPECT_GT(done, start);
  }
  void on_prefetch_filled(const Request& req, Cycle) override {
    fills.push_back(req.line_addr);
  }
  void on_tick(Cycle) override { ++ticks; }

  std::vector<Address> enqueued, serviced, fills;
  std::vector<std::pair<RankId, Cycle>> locks, refreshes;
  std::uint64_t ticks = 0;
};

TEST_F(ControllerTest, ListenerSeesLockBeforeRefresh) {
  ControllerConfig cfg;
  cfg.policy = RefreshPolicy::kRopDrain;
  auto c = make(cfg);
  RecordingListener listener;
  c->set_listener(&listener);
  run_until(*c, 0, 2 * t.tREFI, [] { return false; });
  ASSERT_GE(listener.refreshes.size(), 1u);
  ASSERT_GE(listener.locks.size(), 1u);
  EXPECT_LE(listener.locks[0].second, listener.refreshes[0].second);
  EXPECT_GT(listener.ticks, 0u);
}

TEST_F(ControllerTest, PrefetchFillsFlowThroughListener) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  RecordingListener listener;
  c->set_listener(&listener);
  Request pf = read_req(0x7000, 0, 0, 9, 2);
  pf.type = ReqType::kPrefetch;
  ASSERT_TRUE(c->enqueue_prefetch(pf, 0));
  run_until(*c, 0, 1000, [&] { return listener.fills.size() == 1; });
  ASSERT_EQ(listener.fills.size(), 1u);
  EXPECT_EQ(listener.fills[0], 0x7000u);
  // Prefetch fills never surface as completed demand.
  EXPECT_TRUE(c->drain_completed().empty());
}

TEST_F(ControllerTest, StalePrefetchFillDropped) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  RecordingListener listener;
  c->set_listener(&listener);
  Request pf = read_req(0x8000, 0, 0, 9, 2);
  pf.type = ReqType::kPrefetch;
  ASSERT_TRUE(c->enqueue_prefetch(pf, 0));
  // Keep the read queue non-empty so the write can never issue: writes are
  // only scheduled when no read work exists. The prefetch still slips into
  // command-bus gaps left by the paced read stream.
  Cycle now = 0;
  bool write_sent = false;
  for (; now < 4000 && listener.fills.empty() &&
         stats.counter_value("rop.prefetch_dropped_stale") == 0;
       ++now) {
    if (now % 6 == 0 && c->can_accept(ReqType::kRead)) {
      c->enqueue(read_req(0x100000 + (now << 6), 0, 2, 1,
                          static_cast<ColumnId>(now / 6 % 128)),
                 now);
    }
    if (!write_sent && stats.counter_value("rop.prefetch_issued") == 1) {
      // Prefetch is in flight: the write to the same line supersedes it.
      ASSERT_TRUE(c->enqueue(write_req(0x8000, 0, 1, 1), now));
      write_sent = true;
    }
    c->tick(now);
    c->drain_completed();
  }
  EXPECT_TRUE(write_sent);
  EXPECT_TRUE(listener.fills.empty());
  EXPECT_EQ(stats.counter_value("rop.prefetch_dropped_stale"), 1u);
}

// Companion to StalePrefetchFillDropped: once the fill is dropped, a read
// to the line must see the newest data via write-forwarding — it can never
// be SRAM-served, because no fill was ever delivered to the buffer.
TEST_F(ControllerTest, ReadAfterStaleDropForwardsNeverSramServed) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  RecordingListener listener;
  c->set_listener(&listener);
  Request pf = read_req(0x8000, 0, 0, 9, 2);
  pf.type = ReqType::kPrefetch;
  ASSERT_TRUE(c->enqueue_prefetch(pf, 0));
  Cycle now = 0;
  bool write_sent = false;
  for (; now < 4000 &&
         stats.counter_value("rop.prefetch_dropped_stale") == 0;
       ++now) {
    if (now % 6 == 0 && c->can_accept(ReqType::kRead)) {
      c->enqueue(read_req(0x100000 + (now << 6), 0, 2, 1,
                          static_cast<ColumnId>(now / 6 % 128)),
                 now);
    }
    if (!write_sent && stats.counter_value("rop.prefetch_issued") == 1) {
      ASSERT_TRUE(c->enqueue(write_req(0x8000, 0, 1, 1), now));
      write_sent = true;
    }
    c->tick(now);
    c->drain_completed();
  }
  ASSERT_EQ(stats.counter_value("rop.prefetch_dropped_stale"), 1u);
  EXPECT_TRUE(listener.fills.empty());
  // The superseding write is still queued (reads starve it), so the read
  // forwards from the write queue at enqueue time.
  ASSERT_TRUE(c->enqueue(read_req(0x8000, 0, 1, 1), now));
  const auto done = c->drain_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].line_addr, 0x8000u);
  EXPECT_EQ(done[0].serviced_by, ServicedBy::kWriteForward);
}

// Writes are posted and leave the write index the moment their WR command
// issues. A write to the same line arriving while the older one is mid-issue
// (burst still on the bus) must become a NEW queue entry, not coalesce into
// a no-longer-queued write — otherwise its data would be silently lost.
TEST_F(ControllerTest, WriteAfterOlderWriteIssuedIsNotCoalesced) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(write_req(0x9000, 0, 0, 3), 0));
  Cycle now = 0;
  for (; now < 2000 && stats.counter_value("mem.writes_issued") == 0; ++now) {
    c->tick(now);
  }
  ASSERT_EQ(stats.counter_value("mem.writes_issued"), 1u);
  // Older write just issued; the line is no longer queued.
  ASSERT_TRUE(c->enqueue(write_req(0x9000, 0, 0, 3), now));
  EXPECT_EQ(stats.counter_value("mem.write_coalesced"), 0u);
  EXPECT_EQ(c->write_queue_depth(), 1u);
  for (; now < 4000 && !c->idle(); ++now) c->tick(now);
  EXPECT_EQ(stats.counter_value("mem.writes_issued"), 2u);
}

TEST_F(ControllerTest, CompleteMatchingReadsServicesQueued) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  auto c = make(cfg);
  ASSERT_TRUE(c->enqueue(read_req(0xA000, 0, 0, 1), 0));
  ASSERT_TRUE(c->enqueue(read_req(0xB000, 0, 0, 2), 0));
  c->complete_matching_reads(0, [](const Request& r) -> std::optional<Cycle> {
    return r.line_addr == 0xA000 ? std::optional<Cycle>(42) : std::nullopt;
  });
  const auto done = c->drain_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].line_addr, 0xA000u);
  EXPECT_EQ(done[0].completion, 42u);
  EXPECT_EQ(done[0].serviced_by, ServicedBy::kSramBuffer);
  EXPECT_EQ(c->read_queue_depth(), 1u);
}

TEST_F(ControllerTest, RequestConservationUnderLoad) {
  // Every accepted read completes exactly once, even across refreshes.
  auto c = make();
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  Cycle now = 0;
  Rng rng(1);
  for (; now < 4 * t.tREFI; ++now) {
    if (now % 7 == 0 && c->can_accept(ReqType::kRead)) {
      const RowId row = static_cast<RowId>(rng.next_below(4));
      const BankId bank = static_cast<BankId>(rng.next_below(8));
      if (c->enqueue(read_req((now << 6) | 1, 0, bank, row), now)) ++accepted;
    }
    c->tick(now);
    completed += c->drain_completed().size();
  }
  for (; completed < accepted && now < 10 * t.tREFI; ++now) {
    c->tick(now);
    completed += c->drain_completed().size();
  }
  EXPECT_EQ(completed, accepted);
  c->finalize(now);
}

}  // namespace
}  // namespace rop::mem
