// Cycle-accounting attribution: the CPI stack must be a *disjoint, total*
// decomposition of every core's cycles — categories sum bit-exactly to the
// cycle count on every scheme, every simulation loop, and every shard
// count — and the derived exports (stats JSON attribution block, progress
// heartbeat JSONL) must carry it faithfully.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "telemetry/attribution.h"

namespace rop::sim {
namespace {

std::array<std::uint64_t, telemetry::kCpiCategoryCount> stack_of(
    const cpu::CoreResult& c) {
  return {c.retire_cycles,
          c.stall_mlp_cycles,
          c.stall_port_cycles,
          c.stall_mem_queue_cycles,
          c.stall_mem_bank_cycles,
          c.stall_mem_cas_cycles,
          c.stall_mem_bus_cycles,
          c.stall_refresh_rank_cycles,
          c.stall_refresh_bank_cycles,
          c.stall_refresh_subarray_cycles,
          c.stall_refresh_pause_cycles,
          c.stall_rop_sram_cycles,
          c.other_cycles};
}

void expect_stack_total(const ExperimentResult& r, const std::string& what) {
  ASSERT_FALSE(r.run.cores.empty()) << what;
  for (std::size_t c = 0; c < r.run.cores.size(); ++c) {
    const cpu::CoreResult& core = r.run.cores[c];
    EXPECT_EQ(core.cpi_stack_sum(), core.cpu_cycles)
        << what << " core " << c << ": CPI stack does not cover the cycles";
  }
}

constexpr MemoryMode kAllModes[] = {
    MemoryMode::kBaseline, MemoryMode::kRop,      MemoryMode::kElastic,
    MemoryMode::kPausing,  MemoryMode::kPerBank,  MemoryMode::kDarp,
    MemoryMode::kSarp,     MemoryMode::kHira,     MemoryMode::kNoRefresh,
};

TEST(CpiStack, SumsToCyclesOnEveryModeAndLoop) {
  constexpr cpu::LoopMode kLoops[] = {cpu::LoopMode::kNaive,
                                      cpu::LoopMode::kFrozenStall,
                                      cpu::LoopMode::kEventDriven};
  for (const MemoryMode mode : kAllModes) {
    std::vector<ExperimentResult> per_loop;
    for (const cpu::LoopMode loop : kLoops) {
      ExperimentSpec spec = single_core_spec("libquantum", mode);
      spec.instructions_per_core = 120'000;
      spec.loop = loop;
      spec.check = true;  // SimChecker audits the invariant too
      per_loop.push_back(run_experiment(spec));
      expect_stack_total(per_loop.back(), "mode/loop run");
      EXPECT_EQ(per_loop.back().checker_violations, 0u);
    }
    // The decomposition itself (not just the total) is loop-invariant.
    for (std::size_t l = 1; l < per_loop.size(); ++l) {
      ASSERT_EQ(per_loop[l].run.cores.size(), per_loop[0].run.cores.size());
      for (std::size_t c = 0; c < per_loop[l].run.cores.size(); ++c) {
        EXPECT_EQ(stack_of(per_loop[l].run.cores[c]),
                  stack_of(per_loop[0].run.cores[c]))
            << "loop " << l << " core " << c;
      }
    }
  }
}

TEST(CpiStack, IsShardInvariant) {
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ExperimentSpec spec = single_core_spec("omnetpp", MemoryMode::kRop);
    spec.instructions_per_core = 120'000;
    spec.channels = 4;
    spec.shard_channels = shards;
    const ExperimentResult r = run_experiment(spec);
    expect_stack_total(r, "sharded run");
  }
}

TEST(CpiStack, MulticoreRefreshStallsAreAttributed) {
  ExperimentSpec spec = multi_core_spec(1, MemoryMode::kBaseline,
                                        /*rank_partition=*/false);
  spec.instructions_per_core = 150'000;
  const ExperimentResult r = run_experiment(spec);
  expect_stack_total(r, "multicore baseline");
  std::uint64_t refresh = 0;
  std::uint64_t retire = 0;
  for (const cpu::CoreResult& c : r.run.cores) {
    refresh += c.stall_refresh_rank_cycles + c.stall_refresh_bank_cycles +
               c.stall_refresh_subarray_cycles + c.stall_refresh_pause_cycles;
    retire += c.retire_cycles;
  }
  EXPECT_GT(retire, 0u);
  // Rank-wide REF on a contended 4-core mix must surface as refresh stall.
  EXPECT_GT(refresh, 0u);
}

TEST(CpiStack, RegistryMirrorsMatchCoreResults) {
  ExperimentSpec spec = single_core_spec("lbm", MemoryMode::kRop);
  spec.instructions_per_core = 120'000;
  const ExperimentResult r = run_experiment(spec);
  const auto& keys = telemetry::cpi_category_keys();
  for (std::size_t c = 0; c < r.run.cores.size(); ++c) {
    const auto stack = stack_of(r.run.cores[c]);
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const std::string name =
          "core" + std::to_string(c) + ".cpi." + keys[k];
      EXPECT_EQ(r.stats.counter_value(name), stack[k]) << name;
    }
  }
}

TEST(AttributionJson, CarriesStacksAndRequestTotals) {
  ExperimentSpec spec = single_core_spec("libquantum", MemoryMode::kBaseline);
  spec.instructions_per_core = 120'000;
  const ExperimentResult r = run_experiment(spec);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"cpi_stack\""), std::string::npos);
  for (const char* key : telemetry::cpi_category_keys()) {
    std::string quoted = "\"";
    quoted += key;
    quoted += '"';
    EXPECT_NE(json.find(quoted), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"rop_recovered_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"blocked_rank_cycles\""), std::string::npos);
  EXPECT_GT(r.cpu_ratio, 0u);
}

TEST(ProgressHeartbeat, WritesRunJsonl) {
  const std::string path =
      ::testing::TempDir() + "rop_progress_run.jsonl";
  std::remove(path.c_str());
  ExperimentSpec spec = single_core_spec("libquantum", MemoryMode::kRop);
  spec.instructions_per_core = 120'000;
  spec.progress_file = path;
  spec.progress_every = 10'000;  // several beats within the short run
  const ExperimentResult r = run_experiment(spec);
  expect_stack_total(r, "progress run");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u) << "expected periodic beats plus a final one";
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"kind\":\"run\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_NE(lines.back().find("\"done\":true"), std::string::npos);
  // Progress is an operational side channel: the simulated outcome is
  // byte-identical with and without it.
  ExperimentSpec plain = spec;
  plain.progress_file.clear();
  const ExperimentResult base = run_experiment(plain);
  EXPECT_EQ(base.stats.report(), r.stats.report());
  std::remove(path.c_str());
}

TEST(ProgressHeartbeat, BadPathIsInertNotFatal) {
  telemetry::ProgressWriter w("/nonexistent-dir/progress.jsonl");
  EXPECT_FALSE(w.ok());
  telemetry::ProgressWriter::RunHeartbeat beat;
  w.write_run(beat);  // must not crash
  ExperimentSpec spec = single_core_spec("libquantum", MemoryMode::kBaseline);
  spec.instructions_per_core = 60'000;
  spec.progress_file = "/nonexistent-dir/progress.jsonl";
  const ExperimentResult r = run_experiment(spec);
  expect_stack_total(r, "bad progress path");
}

}  // namespace
}  // namespace rop::sim
