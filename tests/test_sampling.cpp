// SMARTS-style sampled execution: statistical machinery (t quantiles, the
// mean/stderr/CI estimator), determinism of the sampled loop, and the
// headline accuracy contract — on every SPEC-like profile, the sampled
// IPC and energy estimates must contain the exact event-driven run's value
// inside their emitted 95% confidence interval.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/sampling.h"
#include "workload/spec_profiles.h"

namespace rop::sim {
namespace {

TEST(SamplingMath, TQuantiles) {
  EXPECT_DOUBLE_EQ(t_quantile_975(1), 12.706);
  EXPECT_DOUBLE_EQ(t_quantile_975(4), 2.776);
  EXPECT_DOUBLE_EQ(t_quantile_975(29), 2.045);
  EXPECT_DOUBLE_EQ(t_quantile_975(30), 1.96);
  EXPECT_DOUBLE_EQ(t_quantile_975(1000), 1.96);
  EXPECT_DOUBLE_EQ(t_quantile_975(0), 0.0);
}

TEST(SamplingMath, EstimatorMeanStderrCI) {
  const SamplingEstimate empty = estimate_from({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stderr_, 0.0);

  const SamplingEstimate one = estimate_from({3.5});
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stderr_, 0.0);  // undefined variance -> no CI

  const SamplingEstimate e = estimate_from({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.mean, 2.5);
  EXPECT_NEAR(e.stderr_, std::sqrt((5.0 / 3.0) / 4.0), 1e-12);
  EXPECT_NEAR(e.ci95_half, 3.182 * e.stderr_, 1e-12);

  const SamplingEstimate c = estimate_from({7.0, 7.0, 7.0});
  EXPECT_DOUBLE_EQ(c.mean, 7.0);
  EXPECT_DOUBLE_EQ(c.ci95_half, 0.0);  // zero variance -> degenerate CI
}

ExperimentSpec sampled_spec(const std::string& bench) {
  ExperimentSpec spec = single_core_spec(bench, MemoryMode::kBaseline);
  spec.instructions_per_core = 2'000'000;
  spec.sampling.enabled = true;
  return spec;
}

TEST(Sampling, SampledRunIsDeterministic) {
  ExperimentSpec spec = sampled_spec("libquantum");
  ExperimentResult a = run_experiment(spec);
  ExperimentResult b = run_experiment(spec);
  a.wall_seconds = b.wall_seconds = 0.0;
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_GT(a.sampling.windows, 0u);
  EXPECT_GT(a.sampling.functional_cpu_cycles, 0u);
  // The sampled run simulated only part of the horizon in detail.
  EXPECT_LT(a.sampling.measured_cpu_cycles, a.run.cpu_cycles);
}

TEST(Sampling, JsonCarriesSamplingBlock) {
  const ExperimentResult r = run_experiment(sampled_spec("omnetpp"));
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"sampling\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ci95_half\""), std::string::npos);
  EXPECT_NE(json.find("\"energy_mj_per_mcycle\""), std::string::npos);

  // Exact runs carry a null sampling block.
  ExperimentSpec exact = sampled_spec("omnetpp");
  exact.sampling.enabled = false;
  const std::string exact_json = run_experiment(exact).to_json();
  EXPECT_NE(exact_json.find("\"sampling\":null"), std::string::npos);
}

TEST(Sampling, TargetCIAutoStops) {
  ExperimentSpec spec = sampled_spec("libquantum");
  spec.instructions_per_core = 20'000'000;  // far more than convergence needs
  spec.sampling.min_windows = 4;
  spec.sampling.target_ci_frac = 0.10;
  const ExperimentResult r = run_experiment(spec);
  EXPECT_TRUE(r.sampling.ci_converged);
  EXPECT_GE(r.sampling.windows, 4u);
  // Auto-stop fired: nowhere near the full instruction budget was simulated
  // in detail.
  EXPECT_LT(r.run.cores[0].instructions, spec.instructions_per_core);
}

TEST(Sampling, MaxWindowsCapsTheRun) {
  ExperimentSpec spec = sampled_spec("lbm");
  spec.instructions_per_core = 20'000'000;
  spec.sampling.max_windows = 3;
  const ExperimentResult r = run_experiment(spec);
  EXPECT_EQ(r.sampling.windows, 3u);
}

// ---------------------------------------------------------------------------
// Accuracy: every SPEC-like profile, sampled vs exact event loop.

struct ExactMetrics {
  double ipc = 0.0;
  double energy_mj_per_mcycle = 0.0;
};

ExactMetrics exact_run(const std::string& bench) {
  ExperimentSpec spec = single_core_spec(bench, MemoryMode::kBaseline);
  spec.instructions_per_core = 2'000'000;
  const ExperimentResult r = run_experiment(spec);
  ExactMetrics m;
  m.ipc = static_cast<double>(r.run.cores[0].instructions) /
          static_cast<double>(r.run.cores[0].cpu_cycles);
  // DRAM-only energy rate (the sampled estimator excludes the ROP SRAM,
  // which kBaseline does not have anyway).
  m.energy_mj_per_mcycle = (r.total_energy_mj() - r.energy.sram_mj) * 1e6 /
                           static_cast<double>(r.run.mem_cycles);
  return m;
}

class SamplingAccuracy : public ::testing::TestWithParam<std::string_view> {};

TEST_P(SamplingAccuracy, WithinCIOfExactRun) {
  const std::string bench(GetParam());
  const ExactMetrics exact = exact_run(bench);

  const ExperimentResult s = run_experiment(sampled_spec(bench));
  ASSERT_GE(s.sampling.windows, 2u) << "not enough sampling windows";

  const SamplingEstimate& ipc = s.sampling.ipc;
  EXPECT_LE(std::abs(ipc.mean - exact.ipc), ipc.ci95_half)
      << "sampled IPC " << ipc.mean << " +/- " << ipc.ci95_half
      << " vs exact " << exact.ipc;

  const SamplingEstimate& energy = s.sampling.energy_mj_per_mcycle;
  EXPECT_LE(std::abs(energy.mean - exact.energy_mj_per_mcycle),
            energy.ci95_half)
      << "sampled energy " << energy.mean << " +/- " << energy.ci95_half
      << " vs exact " << exact.energy_mj_per_mcycle;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SamplingAccuracy,
                         ::testing::ValuesIn(workload::kBenchmarkNames),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace rop::sim
