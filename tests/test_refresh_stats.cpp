// Refresh blocking statistics tests (Figs 2-3 machinery).
#include <gtest/gtest.h>

#include "mem/refresh_stats.h"

namespace rop::mem {
namespace {

constexpr Cycle kTrfc = 280;

TEST(RefreshStats, NonBlockingWhenNoArrivals) {
  RefreshBlockingStats s(1, kTrfc);
  s.on_refresh_start(0, 1000);
  s.on_refresh_start(0, 10000);
  s.finalize();
  EXPECT_EQ(s.total_refreshes(), 2u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(s.non_blocking_fraction(k), 1.0);
    EXPECT_DOUBLE_EQ(s.mean_blocked_per_blocking_refresh(k), 0.0);
  }
}

TEST(RefreshStats, ArrivalInsideWindowBlocks) {
  RefreshBlockingStats s(1, kTrfc);
  s.on_refresh_start(0, 1000);
  s.on_read_arrival(0, 1000 + kTrfc - 1);  // inside 1x window
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_blocked_per_blocking_refresh(0), 1.0);
  EXPECT_EQ(s.max_blocked(0), 1u);
}

TEST(RefreshStats, WindowMultiplesNest) {
  RefreshBlockingStats s(1, kTrfc);
  s.on_refresh_start(0, 0);
  // Arrival in (1x, 2x]: blocks the 2x and 4x windows but not 1x.
  s.on_read_arrival(0, kTrfc + 10);
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(1), 0.0);
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(2), 0.0);
}

TEST(RefreshStats, ArrivalBeforeRefreshDoesNotBlock) {
  RefreshBlockingStats s(1, kTrfc);
  s.on_read_arrival(0, 500);
  s.on_refresh_start(0, 1000);
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 1.0);
}

TEST(RefreshStats, MeanCountsOnlyBlockingRefreshes) {
  RefreshBlockingStats s(1, kTrfc);
  s.on_refresh_start(0, 0);
  s.on_read_arrival(0, 10);
  s.on_read_arrival(0, 20);
  s.on_read_arrival(0, 30);
  s.on_refresh_start(0, 100000);  // non-blocking
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(s.mean_blocked_per_blocking_refresh(0), 3.0);
  EXPECT_EQ(s.max_blocked(0), 3u);
}

TEST(RefreshStats, PerRankIsolation) {
  RefreshBlockingStats s(2, kTrfc);
  s.on_refresh_start(0, 0);
  s.on_read_arrival(1, 10);  // different rank: must not block rank 0
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 1.0);
}

TEST(RefreshStats, LazyRetirementMatchesFinalize) {
  RefreshBlockingStats s(1, kTrfc);
  for (int i = 0; i < 10; ++i) {
    s.on_refresh_start(0, static_cast<Cycle>(i) * 10000);
    s.on_read_arrival(0, static_cast<Cycle>(i) * 10000 + 5);
  }
  // Arrivals far in the future force retirement of old windows.
  s.on_read_arrival(0, 10'000'000);
  s.finalize();
  EXPECT_EQ(s.total_refreshes(), 10u);
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 0.0);
}

TEST(RefreshStats, OverlappingWindowsEachCountArrivals) {
  // Two refreshes close together (4x windows overlap): one arrival can
  // block both.
  RefreshBlockingStats s(1, kTrfc);
  s.on_refresh_start(0, 0);
  s.on_refresh_start(0, kTrfc * 2);
  s.on_read_arrival(0, kTrfc * 2 + 5);  // in 4x of first, 1x of second
  s.finalize();
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(2), 0.0);  // both blocked at 4x
  EXPECT_DOUBLE_EQ(s.non_blocking_fraction(0), 0.5);  // only second at 1x
}

}  // namespace
}  // namespace rop::mem
