// End-to-end integration tests reproducing the paper's qualitative claims
// on short runs: refresh hurts, ROP recovers, energy follows performance.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace rop::sim {
namespace {

ExperimentResult run(const std::string& bench, MemoryMode mode,
                     std::uint64_t instructions = 4'000'000) {
  ExperimentSpec spec = single_core_spec(bench, mode);
  spec.instructions_per_core = instructions;
  spec.rop.training_refreshes = 10;
  return run_experiment(spec);
}

TEST(Integration, RefreshCostsPerformanceOnIntensiveBenchmark) {
  const auto base = run("lbm", MemoryMode::kBaseline);
  const auto ideal = run("lbm", MemoryMode::kNoRefresh);
  EXPECT_GT(ideal.ipc(), base.ipc() * 1.01);  // at least ~1% penalty
  EXPECT_LT(ideal.ipc(), base.ipc() * 1.15);  // but bounded by duty cycle
}

TEST(Integration, RefreshBarelyCostsQuietBenchmark) {
  const auto base = run("gobmk", MemoryMode::kBaseline, 2'000'000);
  const auto ideal = run("gobmk", MemoryMode::kNoRefresh, 2'000'000);
  EXPECT_LT(ideal.ipc() / base.ipc(), 1.01);
}

TEST(Integration, RopRecoversRefreshLossOnStreamingBenchmark) {
  const auto base = run("libquantum", MemoryMode::kBaseline, 8'000'000);
  const auto ideal = run("libquantum", MemoryMode::kNoRefresh, 8'000'000);
  const auto rop = run("libquantum", MemoryMode::kRop, 8'000'000);
  EXPECT_GT(rop.ipc(), base.ipc());
  EXPECT_LT(rop.ipc(), ideal.ipc() * 1.02);
  // ROP recovers a substantial fraction of the refresh gap.
  const double recovered = (rop.ipc() - base.ipc()) / (ideal.ipc() - base.ipc());
  EXPECT_GT(recovered, 0.25);
}

TEST(Integration, RopHitRateIsHighForStreamingBenchmark) {
  const auto rop = run("libquantum", MemoryMode::kRop, 8'000'000);
  EXPECT_GT(rop.sram_hit_rate, 0.4);
  EXPECT_DOUBLE_EQ(rop.lambda, 1.0);  // steady stream: B>0 => A>0 always
}

TEST(Integration, RopSavesEnergyWhenItSavesTime) {
  const auto base = run("libquantum", MemoryMode::kBaseline, 8'000'000);
  const auto rop = run("libquantum", MemoryMode::kRop, 8'000'000);
  ASSERT_GT(rop.ipc(), base.ipc());
  EXPECT_LT(rop.total_energy_mj(), base.total_energy_mj() * 1.005);
}

TEST(Integration, NoRefreshSavesEnergy) {
  const auto base = run("lbm", MemoryMode::kBaseline);
  const auto ideal = run("lbm", MemoryMode::kNoRefresh);
  EXPECT_LT(ideal.total_energy_mj(), base.total_energy_mj());
}

TEST(Integration, MostRefreshesAreNonBlockingForQuietWorkloads) {
  const auto base = run("gobmk", MemoryMode::kBaseline, 2'000'000);
  // Paper Fig. 2: non-intensive benchmarks mostly have non-blocking
  // refreshes (avg 79.3% at the 1x window).
  EXPECT_GT(base.nonblocking_fraction[0], 0.6);
  // Larger examined windows can only catch more blocking refreshes.
  EXPECT_GE(base.nonblocking_fraction[0], base.nonblocking_fraction[1]);
  EXPECT_GE(base.nonblocking_fraction[1], base.nonblocking_fraction[2]);
}

TEST(Integration, BlockedRequestCountsAreSmall) {
  const auto base = run("libquantum", MemoryMode::kBaseline);
  // Paper Fig. 3: each blocking refresh blocks only a handful of requests
  // (their maximum over all benchmarks was 12; our MLP bound is similar).
  EXPECT_GT(base.mean_blocked_per_blocking_refresh[0], 0.0);
  EXPECT_LT(base.mean_blocked_per_blocking_refresh[0], 40.0);
}

TEST(Integration, RankPartitioningNotWorseOnMix) {
  ExperimentSpec base = multi_core_spec(2, MemoryMode::kBaseline, false);
  ExperimentSpec rp = multi_core_spec(2, MemoryMode::kBaseline, true);
  base.instructions_per_core = 800'000;
  rp.instructions_per_core = 800'000;
  const auto rb = run_experiment(base);
  const auto rrp = run_experiment(rp);
  double sum_b = 0, sum_rp = 0;
  for (const auto& c : rb.run.cores) sum_b += c.ipc;
  for (const auto& c : rrp.run.cores) sum_rp += c.ipc;
  EXPECT_GT(sum_rp, sum_b * 0.97);
}

TEST(Integration, FourCoreRopAtLeastMatchesBaselineRp) {
  ExperimentSpec rp = multi_core_spec(1, MemoryMode::kBaseline, true);
  ExperimentSpec rop = multi_core_spec(1, MemoryMode::kRop, true);
  rp.instructions_per_core = 2'000'000;
  rop.instructions_per_core = 2'000'000;
  rop.rop.training_refreshes = 10;
  const auto a = run_experiment(rp);
  const auto b = run_experiment(rop);
  double sum_rp = 0, sum_rop = 0;
  for (const auto& c : a.run.cores) sum_rp += c.ipc;
  for (const auto& c : b.run.cores) sum_rop += c.ipc;
  EXPECT_GT(sum_rop, sum_rp * 0.98);
}

TEST(Integration, WindowMultiplesProduceConsistentLambdaBeta) {
  // Table I property: lambda/beta are largely insensitive to the window
  // length for steady streams.
  for (const std::uint32_t mult : {1u, 2u, 4u}) {
    ExperimentSpec spec = single_core_spec("libquantum", MemoryMode::kRop);
    spec.instructions_per_core = 3'000'000;
    spec.rop.training_refreshes = 10;
    spec.rop.window_multiple = mult;
    const auto res = run_experiment(spec);
    EXPECT_DOUBLE_EQ(res.lambda, 1.0) << "window multiple " << mult;
  }
}

}  // namespace
}  // namespace rop::sim
