// Full-system tests: clock coupling, relocation, rank partitioning,
// multi-core runs.
#include <gtest/gtest.h>

#include "cpu/system.h"
#include "workload/synthetic.h"

namespace rop::cpu {
namespace {

mem::MemoryConfig mem_config(std::uint32_t ranks, bool refresh = true) {
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.ranks = ranks;
  cfg.ctrl.refresh_enabled = refresh;
  return cfg;
}

SystemConfig sys_config(bool rank_partition = false) {
  SystemConfig cfg;
  cfg.cpu_ratio = 4;
  cfg.core.critical_load_fraction = 0.3;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.rank_partition = rank_partition;
  return cfg;
}

workload::SyntheticConfig stream_workload(std::uint64_t seed) {
  workload::SyntheticConfig wc;
  wc.mean_gap = 100;
  wc.footprint_lines = 1 << 18;  // 16 MB, well beyond the LLC
  wc.streams = {{{+1}, 1.0}};
  wc.random_fraction = 0.0;
  wc.write_fraction = 0.2;
  wc.seed = seed;
  return wc;
}

TEST(System, SingleCoreRunReachesTarget) {
  StatRegistry stats;
  mem::MemorySystem memory(mem_config(1), &stats);
  workload::SyntheticTrace trace(stream_workload(1));
  std::vector<workload::TraceSource*> traces{&trace};
  System sys(sys_config(), memory, traces);
  const RunResult res = sys.run(100'000, 10'000'000);
  EXPECT_FALSE(res.hit_cycle_limit);
  ASSERT_EQ(res.cores.size(), 1u);
  EXPECT_GE(res.cores[0].instructions, 100'000u);
  EXPECT_GT(res.cores[0].ipc, 0.0);
  EXPECT_LE(res.cores[0].ipc, 4.0);
  EXPECT_EQ(res.mem_cycles, res.cpu_cycles / 4);
}

TEST(System, DeterministicAcrossRuns) {
  auto run_once = [] {
    StatRegistry stats;
    mem::MemorySystem memory(mem_config(1), &stats);
    workload::SyntheticTrace trace(stream_workload(7));
    std::vector<workload::TraceSource*> traces{&trace};
    System sys(sys_config(), memory, traces);
    return sys.run(50'000, 10'000'000);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_DOUBLE_EQ(a.cores[0].ipc, b.cores[0].ipc);
  EXPECT_EQ(a.cores[0].mem_reads, b.cores[0].mem_reads);
}

TEST(System, CycleLimitReportsTruthfully) {
  StatRegistry stats;
  mem::MemorySystem memory(mem_config(1), &stats);
  workload::SyntheticTrace trace(stream_workload(3));
  std::vector<workload::TraceSource*> traces{&trace};
  System sys(sys_config(), memory, traces);
  const RunResult res = sys.run(100'000'000, 10'000);  // unreachable target
  EXPECT_TRUE(res.hit_cycle_limit);
  EXPECT_EQ(res.cpu_cycles, 10'000u);
}

TEST(System, RankPartitioningConfinesCoreTraffic) {
  StatRegistry stats;
  mem::MemorySystem memory(mem_config(4, false), &stats);
  workload::SyntheticTrace t0(stream_workload(1));
  workload::SyntheticTrace t1(stream_workload(2));
  workload::SyntheticTrace t2(stream_workload(3));
  workload::SyntheticTrace t3(stream_workload(4));
  std::vector<workload::TraceSource*> traces{&t0, &t1, &t2, &t3};
  System sys(sys_config(true), memory, traces);
  sys.run(20'000, 10'000'000);
  // With partitioning every core's rank is core % 4; verify via the
  // public relocation path: issue through the port and inspect mapping.
  for (CoreId c = 0; c < 4; ++c) {
    // The system's address map should place this core's addresses in its
    // home rank. Probe a few local addresses via relocation effects:
    // all commands the run issued kept per-rank accounting; at least the
    // rank of core c must have seen activity.
    const auto& act = memory.controller(0).channel().rank(c).activity();
    EXPECT_GT(act.active_cycles, 0u) << "rank " << c;
  }
}

TEST(System, FlatLayoutKeepsCoreRegionsDisjoint) {
  StatRegistry stats;
  mem::MemorySystem memory(mem_config(2, false), &stats);
  workload::SyntheticTrace t0(stream_workload(1));
  workload::SyntheticTrace t1(stream_workload(1));  // identical workloads
  std::vector<workload::TraceSource*> traces{&t0, &t1};
  SystemConfig cfg = sys_config(false);
  cfg.shared_llc = false;  // private LLCs: the cores behave symmetrically
  System sys(cfg, memory, traces);
  const RunResult res = sys.run(20'000, 10'000'000);
  // Identical traces but disjoint regions: both cores make progress and
  // generate their own misses (no accidental sharing through the LLC).
  EXPECT_GT(res.cores[0].mem_reads, 0u);
  EXPECT_GT(res.cores[1].mem_reads, 0u);
  const double ratio = static_cast<double>(res.cores[0].mem_reads) /
                       static_cast<double>(res.cores[1].mem_reads);
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

TEST(System, SharedLlcIsUsedByAllCores) {
  StatRegistry stats;
  mem::MemorySystem memory(mem_config(2, false), &stats);
  workload::SyntheticTrace t0(stream_workload(5));
  workload::SyntheticTrace t1(stream_workload(6));
  std::vector<workload::TraceSource*> traces{&t0, &t1};
  SystemConfig cfg = sys_config(false);
  cfg.shared_llc = true;
  System sys(cfg, memory, traces);
  sys.run(20'000, 10'000'000);
  EXPECT_GT(sys.shared_llc().stats().accesses, 0u);
}

TEST(System, NoRefreshNeverSlowerThanBaseline) {
  auto run_mode = [](bool refresh) {
    StatRegistry stats;
    mem::MemorySystem memory(mem_config(1, refresh), &stats);
    workload::SyntheticConfig wc = stream_workload(11);
    wc.mean_gap = 150;
    workload::SyntheticTrace trace(wc);
    std::vector<workload::TraceSource*> traces{&trace};
    System sys(sys_config(), memory, traces);
    return sys.run(300'000, 100'000'000).cores[0].ipc;
  };
  const double with_refresh = run_mode(true);
  const double without_refresh = run_mode(false);
  EXPECT_GT(without_refresh, with_refresh);
}

}  // namespace
}  // namespace rop::cpu
