// Address mapping tests: bijectivity, scheme layouts, rank partitioning.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/address_map.h"

namespace rop::mem {
namespace {

dram::DramOrganization org4() {
  dram::DramOrganization org;
  org.channels = 1;
  org.ranks = 4;
  org.banks = 8;
  org.rows = 1 << 16;
  org.columns = 128;
  return org;
}

class AddressMapParam : public ::testing::TestWithParam<MapScheme> {};

TEST_P(AddressMapParam, MapUnmapRoundTripsRandomAddresses) {
  const AddressMap map(org4(), GetParam());
  Rng rng(99);
  const std::uint64_t total = map.organization().total_lines();
  for (int i = 0; i < 5000; ++i) {
    const Address addr = rng.next_below(total) << kLineShift;
    const DramCoord c = map.map(addr);
    EXPECT_LT(c.rank, 4u);
    EXPECT_LT(c.bank, 8u);
    EXPECT_LT(c.row, 1u << 16);
    EXPECT_LT(c.column, 128u);
    EXPECT_EQ(map.unmap(c), addr);
  }
}

TEST_P(AddressMapParam, SubLineBitsIgnored) {
  const AddressMap map(org4(), GetParam());
  EXPECT_EQ(map.map(0x1000), map.map(0x1000 + 63));
}

TEST_P(AddressMapParam, BankOffsetRoundTrips) {
  const AddressMap map(org4(), GetParam());
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t off = rng.next_below(map.organization().lines_per_bank());
    const DramCoord c = map.coord_from_bank_offset(0, 2, 5, off);
    EXPECT_EQ(c.rank, 2u);
    EXPECT_EQ(c.bank, 5u);
    EXPECT_EQ(map.line_offset_in_bank(c), off);
  }
}

TEST_P(AddressMapParam, BankOffsetWrapsBeyondCapacity) {
  const AddressMap map(org4(), GetParam());
  const std::uint64_t n = map.organization().lines_per_bank();
  EXPECT_EQ(map.coord_from_bank_offset(0, 0, 0, n + 17),
            map.coord_from_bank_offset(0, 0, 0, 17));
}

TEST_P(AddressMapParam, ComposeInRankPinsRankAndIsBijective) {
  const AddressMap map(org4(), GetParam());
  Rng rng(3);
  std::vector<Address> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t local = rng.next_below(map.lines_per_rank());
    const Address a = map.compose_in_rank(3, local);
    EXPECT_EQ(map.map(a).rank, 3u);
  }
  // Bijective over sequential indices: distinct locals -> distinct addrs.
  std::vector<Address> addrs;
  for (std::uint64_t local = 0; local < 512; ++local) {
    addrs.push_back(map.compose_in_rank(1, local));
  }
  std::sort(addrs.begin(), addrs.end());
  EXPECT_EQ(std::adjacent_find(addrs.begin(), addrs.end()), addrs.end());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AddressMapParam,
                         ::testing::Values(MapScheme::kRowRankBankColumn,
                                           MapScheme::kRowBankRankColumn,
                                           MapScheme::kRowColumnRankBank));

TEST(AddressMap, PageInterleaveKeepsRowsInOneBank) {
  const AddressMap map(org4(), MapScheme::kRowRankBankColumn);
  // 128 consecutive lines share bank/rank/row (one DRAM row).
  const DramCoord first = map.map(0);
  for (std::uint64_t line = 0; line < 128; ++line) {
    const DramCoord c = map.map(line << kLineShift);
    EXPECT_EQ(c.bank, first.bank);
    EXPECT_EQ(c.rank, first.rank);
    EXPECT_EQ(c.row, first.row);
    EXPECT_EQ(c.column, line);
  }
  // Line 128 moves to the next bank.
  EXPECT_NE(map.map(128ull << kLineShift).bank, first.bank);
}

TEST(AddressMap, PageInterleaveBankOffsetsAreStreamContinuous) {
  // The ROP prediction table depends on this: a unit-stride stream's
  // per-bank offsets advance by exactly +1 across successive visits.
  const AddressMap map(org4(), MapScheme::kRowRankBankColumn);
  std::vector<std::uint64_t> last_offset(8 * 4, 0);
  std::vector<bool> seen(8 * 4, false);
  for (std::uint64_t line = 0; line < 128 * 8 * 4 * 3; ++line) {
    const DramCoord c = map.map(line << kLineShift);
    const std::size_t key = c.rank * 8 + c.bank;
    const std::uint64_t off = map.line_offset_in_bank(c);
    if (seen[key]) {
      EXPECT_EQ(off, last_offset[key] + 1);
    }
    last_offset[key] = off;
    seen[key] = true;
  }
}

TEST(AddressMap, LineInterleaveRotatesBanksEveryLine) {
  const AddressMap map(org4(), MapScheme::kRowColumnRankBank);
  for (std::uint64_t line = 0; line < 64; ++line) {
    EXPECT_EQ(map.map(line << kLineShift).bank, line % 8);
  }
}

TEST(AddressMap, RankPartitioningHomeRank) {
  const RankPartitioning rp{true};
  EXPECT_EQ(rp.home_rank(0, 4), 0u);
  EXPECT_EQ(rp.home_rank(3, 4), 3u);
  EXPECT_EQ(rp.home_rank(5, 4), 1u);
}

}  // namespace
}  // namespace rop::mem
