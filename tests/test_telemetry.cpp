// Telemetry layer: epoch sampling exactness (including bit-identity across
// the frozen-cycle fast-forward), trace-event recording and JSON export,
// structured stats export, and the SimChecker trace-context diagnostics.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "check/sim_checker.h"
#include "common/stats.h"
#include "sim/experiment.h"
#include "telemetry/epoch_sampler.h"
#include "telemetry/stats_json.h"
#include "telemetry/trace_sink.h"

namespace rop {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator: tracks strings/escapes, checks brace and
// bracket nesting, rejects trailing commas and commas before closers. Not a
// full parser, but strict enough to catch every emitter bug we have seen
// (unbalanced sections, missing commas handled by python -m json.tool in CI).
bool json_well_formed(const std::string& text) {
  std::vector<char> nesting;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': nesting.push_back('}'); prev_significant = c; break;
      case '[': nesting.push_back(']'); prev_significant = c; break;
      case '}':
      case ']':
        if (nesting.empty() || nesting.back() != c) return false;
        if (prev_significant == ',') return false;  // trailing comma
        nesting.pop_back();
        prev_significant = c;
        break;
      case ',':
        if (prev_significant == ',' || prev_significant == '{' ||
            prev_significant == '[') {
          return false;
        }
        prev_significant = c;
        break;
      default:
        if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
          prev_significant = c;
        }
    }
  }
  return !in_string && nesting.empty();
}

// ---------------------------------------------------------------------------
// Histogram percentiles (satellite: p50/p95/p99 from buckets).

TEST(HistogramPercentile, EmptyAndMonotone) {
  Histogram h(10, 10);
  EXPECT_EQ(h.percentile(50.0), 0.0);

  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  const double p99 = h.percentile(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // 100 uniform samples over [0, 100): the interpolated median sits at the
  // middle of the range, p99 near the top.
  EXPECT_NEAR(p50, 50.0, 10.0);
  EXPECT_NEAR(p99, 99.0, 10.0);
  EXPECT_LE(h.percentile(100.0), 110.0);
}

TEST(HistogramPercentile, OverflowBucketIsLowerBound) {
  Histogram h(10, 4);  // covers [0, 40) + overflow
  for (int i = 0; i < 10; ++i) h.record(1000);
  // Everything in the overflow bucket: percentile interpolates within one
  // bucket width past the covered range — a lower bound, never garbage.
  EXPECT_GE(h.percentile(50.0), 40.0);
  EXPECT_LE(h.percentile(50.0), 50.0);
}

// ---------------------------------------------------------------------------
// Stats JSON export.

TEST(StatsJson, EmptyScalarExportsNullMinMax) {
  StatRegistry reg;
  reg.scalar("touched").record(3.5);
  reg.scalar("untouched");  // registered, never recorded

  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  telemetry::write_registry_sections(w, reg);
  w.end_object();
  const std::string json = os.str();

  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"untouched\":{\"count\":0,\"sum\":0,"
                      "\"mean\":0,\"min\":null,\"max\":null}"),
            std::string::npos)
      << json;
  // The in-code API is unchanged: min()/max() still return 0.0.
  EXPECT_EQ(reg.find_scalar("untouched")->min(), 0.0);
  EXPECT_NE(json.find("\"min\":3.5"), std::string::npos) << json;
}

TEST(StatsJson, WriterEscapesAndNestsCorrectly) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.key("quote\"back\\slash\nnewline");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(-2.5);
  w.value(false);
  w.null();
  w.end_array();
  w.end_object();
  const std::string json = os.str();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_EQ(json,
            "{\"quote\\\"back\\\\slash\\nnewline\":[1,-2.5,false,null]}");
}

TEST(StatsJson, ExperimentToJsonRoundTrips) {
  sim::ExperimentSpec spec = sim::single_core_spec("lbm", sim::MemoryMode::kRop);
  spec.instructions_per_core = 100'000;
  spec.telemetry.sampler.epoch_cycles = 6240;
  const sim::ExperimentResult result = sim::run_experiment(spec);
  const std::string json = result.to_json();

  EXPECT_TRUE(json_well_formed(json));
  // Every registered counter appears with its exact value.
  for (const auto& [name, counter] : result.stats.counters()) {
    const std::string expect =
        "\"" + name + "\":" + std::to_string(counter.value());
    EXPECT_NE(json.find(expect), std::string::npos)
        << "missing " << expect;
  }
  // Epoch series present, one delta list per counter.
  ASSERT_TRUE(result.epochs != nullptr);
  EXPECT_GE(result.epochs->num_epochs(), 1u);
  EXPECT_NE(json.find("\"epoch_cycles\":6240"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  // Histogram buckets exported.
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EpochSampler unit behaviour.

TEST(EpochSampler, DeltasLandInTheRightEpoch) {
  StatRegistry reg;
  Counter* c = reg.counter_handle("events");
  telemetry::SamplerConfig cfg;
  cfg.epoch_cycles = 10;
  telemetry::EpochSampler s(cfg, &reg);

  c->inc(3);           // cycles [0, 10)
  s.advance_to(10);    // boundary 10: sees the 3
  c->inc(5);           // cycles [10, 20)
  s.advance_to(25);    // boundaries 20 emitted; 25 is mid-epoch
  c->inc(1);
  s.close(25);         // trailing partial (20, 25]

  ASSERT_EQ(s.num_epochs(), 3u);
  EXPECT_EQ(s.epoch_end(0), 10u);
  EXPECT_EQ(s.epoch_end(1), 20u);
  EXPECT_EQ(s.epoch_end(2), 25u);
  EXPECT_EQ(s.delta(0, 0), 3u);
  EXPECT_EQ(s.delta(1, 0), 5u);
  EXPECT_EQ(s.delta(2, 0), 1u);
}

TEST(EpochSampler, LazyCatchUpEmitsSkippedBoundaries) {
  StatRegistry reg;
  Counter* c = reg.counter_handle("events");
  telemetry::SamplerConfig cfg;
  cfg.epoch_cycles = 10;
  telemetry::EpochSampler s(cfg, &reg);

  c->inc(7);
  // Jump straight across three boundaries, as a frozen-cycle skip would.
  // The skipped ticks were provable no-ops, so the counter did not move
  // after the jump started: epoch 1 gets everything, epochs 2-3 get zero.
  s.advance_to(30);
  s.close(30);
  ASSERT_EQ(s.num_epochs(), 3u);
  EXPECT_EQ(s.delta(0, 0), 7u);
  EXPECT_EQ(s.delta(1, 0), 0u);
  EXPECT_EQ(s.delta(2, 0), 0u);
}

TEST(EpochSampler, RingDropsOldestEpochs) {
  StatRegistry reg;
  Counter* c = reg.counter_handle("events");
  telemetry::SamplerConfig cfg;
  cfg.epoch_cycles = 10;
  cfg.max_epochs = 4;
  telemetry::EpochSampler s(cfg, &reg);

  for (Cycle t = 10; t <= 100; t += 10) {
    c->inc(t);  // distinct delta per epoch
    s.advance_to(t);
  }
  s.close(100);
  EXPECT_EQ(s.num_epochs(), 4u);
  EXPECT_EQ(s.first_epoch_index(), 6u);  // epochs 0..5 dropped
  EXPECT_EQ(s.epoch_end(0), 70u);
  EXPECT_EQ(s.epoch_end(3), 100u);
  EXPECT_EQ(s.delta(3, 0), 100u);
}

TEST(EpochSampler, DisabledSamplerIsInert) {
  StatRegistry reg;
  telemetry::SamplerConfig cfg;  // epoch_cycles = 0
  telemetry::EpochSampler s(cfg, &reg);
  EXPECT_FALSE(s.enabled());
  s.advance_to(1'000'000);
  s.close(2'000'000);
  EXPECT_EQ(s.num_epochs(), 0u);
}

// The pinned contract: the epoch series is bit-identical no matter which
// simulation loop ran — naive, frozen-stall fast-forward, or the unified
// core/memory event loop. Sampling points are exact, not approximately
// placed, even when a bulk advance jumps several epoch boundaries at once.
TEST(EpochSampler, BitIdenticalAcrossFastForward) {
  for (const sim::MemoryMode mode :
       {sim::MemoryMode::kBaseline, sim::MemoryMode::kRop,
        sim::MemoryMode::kPausing}) {
    SCOPED_TRACE(testing::Message() << "mode=" << static_cast<int>(mode));
    sim::ExperimentSpec naive = sim::single_core_spec("gobmk", mode);
    naive.instructions_per_core = 150'000;
    naive.telemetry.sampler.epoch_cycles = 1000;  // off-tREFI on purpose
    naive.loop = cpu::LoopMode::kNaive;

    const sim::ExperimentResult a = sim::run_experiment(naive);
    ASSERT_TRUE(a.epochs != nullptr);
    EXPECT_GE(a.epochs->num_epochs(), 2u);
    for (const cpu::LoopMode loop :
         {cpu::LoopMode::kFrozenStall, cpu::LoopMode::kEventDriven}) {
      SCOPED_TRACE(testing::Message() << "loop=" << static_cast<int>(loop));
      sim::ExperimentSpec fast = naive;
      fast.loop = loop;
      const sim::ExperimentResult b = sim::run_experiment(fast);
      ASSERT_TRUE(b.epochs != nullptr);
      ASSERT_EQ(a.epochs->num_epochs(), b.epochs->num_epochs());
      ASSERT_EQ(a.epochs->counter_names(), b.epochs->counter_names());
      for (std::size_t i = 0; i < a.epochs->num_epochs(); ++i) {
        ASSERT_EQ(a.epochs->epoch_end(i), b.epochs->epoch_end(i))
            << "epoch " << i;
        for (std::size_t c = 0; c < a.epochs->counter_names().size(); ++c) {
          ASSERT_EQ(a.epochs->delta(i, c), b.epochs->delta(i, c))
              << "epoch " << i << " counter " << a.epochs->counter_names()[c];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TraceSink.

TEST(TraceSink, CategoryParsing) {
  EXPECT_EQ(telemetry::parse_trace_categories("all"),
            std::optional<std::uint32_t>(telemetry::kCatAll));
  EXPECT_EQ(telemetry::parse_trace_categories("cmds,refresh"),
            std::optional<std::uint32_t>(telemetry::kCatCmds |
                                         telemetry::kCatRefresh));
  EXPECT_EQ(telemetry::parse_trace_categories("rop"),
            std::optional<std::uint32_t>(telemetry::kCatRop));
  EXPECT_FALSE(telemetry::parse_trace_categories("bogus").has_value());
  EXPECT_FALSE(telemetry::parse_trace_categories("cmds,bogus").has_value());
}

telemetry::TraceEvent make_event(Cycle ts, telemetry::EventKind kind,
                                 std::uint8_t category) {
  telemetry::TraceEvent e;
  e.ts = ts;
  e.kind = kind;
  e.category = category;
  return e;
}

TEST(TraceSink, RingKeepsNewestAndCountsDrops) {
  telemetry::TraceConfig cfg;
  cfg.categories = telemetry::kCatAll;
  cfg.capacity = 4;
  telemetry::TraceSink sink(cfg);
  for (Cycle t = 0; t < 7; ++t) {
    sink.record(make_event(t, telemetry::EventKind::kCmdRead,
                           static_cast<std::uint8_t>(telemetry::kCatCmds)));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 3u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, 3 + i) << "snapshot must be oldest-first";
  }
  const auto recent = sink.format_recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_NE(recent[1].find("RD"), std::string::npos);
}

TEST(TraceSink, WantsFiltersByCategory) {
  telemetry::TraceConfig cfg;
  cfg.categories = telemetry::kCatRefresh;
  telemetry::TraceSink sink(cfg);
  EXPECT_TRUE(sink.wants(telemetry::kCatRefresh));
  EXPECT_FALSE(sink.wants(telemetry::kCatCmds));
  EXPECT_FALSE(sink.wants(telemetry::kCatRop));
}

TEST(TraceSink, ChromeTraceJsonFromRealRun) {
  sim::ExperimentSpec spec = sim::single_core_spec("lbm", sim::MemoryMode::kRop);
  spec.instructions_per_core = 100'000;
  spec.telemetry.trace.categories = telemetry::kCatAll;
  const sim::ExperimentResult result = sim::run_experiment(spec);
  ASSERT_TRUE(result.trace != nullptr);
  EXPECT_GT(result.trace->size(), 0u);

  std::ostringstream os;
  result.trace->write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Commands and refresh windows from a real run; every event carries the
  // Chrome-required fields.
  EXPECT_NE(json.find("\"name\":\"RD\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"refresh_window\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
}

TEST(TraceSink, BinaryFormatHeaderAndSize) {
  telemetry::TraceConfig cfg;
  cfg.categories = telemetry::kCatAll;
  telemetry::TraceSink sink(cfg);
  for (Cycle t = 0; t < 5; ++t) {
    sink.record(make_event(t, telemetry::EventKind::kCmdActivate,
                           static_cast<std::uint8_t>(telemetry::kCatCmds)));
  }
  std::ostringstream os(std::ios::binary);
  sink.write_binary(os);
  const std::string blob = os.str();
  ASSERT_GE(blob.size(), 8u);
  EXPECT_EQ(blob.substr(0, 8), "ROPTRC01");
  // Header (8 magic + 4 version + 4 tck + 8 count + 8 dropped) + 5 records
  // of 36 bytes each (ts 8 + dur 8 + arg 8 + kind 1 + cat 1 + ch 2 +
  // rank 2 + bank 2 + core 4).
  EXPECT_EQ(blob.size(), 32u + 5u * 36u);
}

TEST(TraceSink, RequestSpansCarryServiceSource) {
  sim::ExperimentSpec spec = sim::single_core_spec("lbm",
                                                   sim::MemoryMode::kBaseline);
  spec.instructions_per_core = 50'000;
  spec.telemetry.trace.categories = telemetry::kCatReqs;
  const sim::ExperimentResult result = sim::run_experiment(spec);
  ASSERT_TRUE(result.trace != nullptr);
  const auto events = result.trace->snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_read = false;
  bool saw_xfer = false;
  for (const auto& e : events) {
    switch (e.kind) {
      case telemetry::EventKind::kReadSpan:
        saw_read = true;
        EXPECT_GT(e.dur, 0u);  // latency = completion - arrival >= 1
        break;
      // Nested lifecycle slices ride in the same category.
      case telemetry::EventKind::kReadXferSpan:
        saw_xfer = true;
        EXPECT_GT(e.dur, 0u);  // CAS + burst is never instantaneous
        break;
      case telemetry::EventKind::kReadQueueSpan:
      case telemetry::EventKind::kReadActSpan:
        EXPECT_GT(e.dur, 0u);
        break;
      default:
        ADD_FAILURE() << "unexpected kind in reqs category: "
                      << telemetry::event_kind_name(e.kind);
    }
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_xfer);
  std::ostringstream os;
  result.trace->write_json(os);
  EXPECT_NE(os.str().find("\"serviced_by\":\"dram\""), std::string::npos);
  EXPECT_NE(os.str().find("\"dropped_events\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SimChecker trace context (satellite: failures carry the last M events).

TEST(SimChecker, ViolationReportIncludesTraceTail) {
  telemetry::TraceConfig cfg;
  cfg.categories = telemetry::kCatAll;
  telemetry::TraceSink sink(cfg);
  for (Cycle t = 100; t < 140; ++t) {
    sink.record(make_event(t, telemetry::EventKind::kCmdActivate,
                           static_cast<std::uint8_t>(telemetry::kCatCmds)));
  }

  check::SimChecker checker;
  checker.set_trace(&sink, /*context_events=*/8);
  // Force a violation through the auditor interface: a request retired
  // before it arrived is unconditionally invalid.
  mem::Request bad;
  bad.id = 42;
  bad.arrival = 500;
  bad.completion = 400;
  checker.on_retired(bad);

  EXPECT_FALSE(checker.ok());
  const std::string summary = checker.summary();
  EXPECT_NE(summary.find("trace context (last 8 events"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("ACT"), std::string::npos) << summary;
  // The tail holds the *newest* events before the violation.
  EXPECT_NE(summary.find("[139]"), std::string::npos) << summary;
  EXPECT_EQ(summary.find("[100]"), std::string::npos) << summary;
}

TEST(SimChecker, NoTraceAttachedMeansNoContextSection) {
  check::SimChecker checker;
  mem::Request bad;
  bad.id = 1;
  bad.arrival = 10;
  bad.completion = 5;
  checker.on_retired(bad);
  EXPECT_EQ(checker.summary().find("trace context"), std::string::npos);
}

}  // namespace
}  // namespace rop
