// Campaign engine: spec expansion, resumable checkpointing, and the
// deterministic merged document. The headline property: a campaign that is
// interrupted (stop_after) and resumed produces a merged.json byte-equal
// to an uninterrupted run of the same spec.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/snapshot.h"

namespace rop::sim {
namespace {

namespace fs = std::filesystem;

constexpr const char* kNineCellSpec = R"({
  "name": "smoke",
  "instructions_per_core": 15000,
  "axes": {
    "benchmark": ["libquantum"],
    "mode": ["baseline", "rop", "norefresh"],
    "refresh": ["1x", "2x", "4x"]
  }
})";

std::string write_spec(const std::string& dir, const std::string& text) {
  fs::create_directories(dir);
  const std::string path = dir + "/spec.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

CampaignOptions quiet_options(const std::string& spec_path,
                              const std::string& out_dir) {
  CampaignOptions opts;
  opts.spec_path = spec_path;
  opts.out_dir = out_dir;
  opts.jobs = 1;  // deterministic completion order in tests
  opts.progress = false;
  return opts;
}

TEST(JsonParser, RoundTripsTheBasics) {
  std::string err;
  const auto doc = json::parse(
      R"({"a": 1, "b": [true, null, -2, 3.5], "s": "x\ny"})", &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("a")->as_u64(), 1u);
  const json::Array& arr = doc->find("b")->as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_i64(), -2);
  EXPECT_DOUBLE_EQ(arr[3].as_double(), 3.5);
  EXPECT_EQ(doc->find("s")->as_string(), "x\ny");

  // 64-bit counters survive exactly (the double view would round).
  const auto big = json::parse("18446744073709551615");
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->as_u64(), 18446744073709551615ull);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(json::parse("{\"a\": }", &err).has_value());
  EXPECT_FALSE(json::parse("[1, 2", &err).has_value());
  EXPECT_FALSE(json::parse("{} trailing", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(CampaignExpand, NineCellGridWithStableIndices) {
  std::string err;
  const auto spec = json::parse(kNineCellSpec, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto cells = expand_campaign(*spec, &err);
  ASSERT_TRUE(cells.has_value()) << err;
  ASSERT_EQ(cells->size(), 9u);
  // Fixed axis order, last axis (refresh) fastest.
  EXPECT_EQ((*cells)[0].label, "libquantum/baseline/r1/1x/part0/ch1/llc2");
  EXPECT_EQ((*cells)[1].label, "libquantum/baseline/r1/2x/part0/ch1/llc2");
  EXPECT_EQ((*cells)[3].label, "libquantum/rop/r1/1x/part0/ch1/llc2");
  EXPECT_EQ((*cells)[8].label, "libquantum/norefresh/r1/4x/part0/ch1/llc2");
  for (std::size_t i = 0; i < cells->size(); ++i) {
    EXPECT_EQ((*cells)[i].index, i);
    EXPECT_EQ((*cells)[i].spec.instructions_per_core, 15'000u);
  }
  EXPECT_EQ((*cells)[3].spec.mode, MemoryMode::kRop);
  EXPECT_EQ((*cells)[1].spec.refresh_mode, dram::RefreshMode::k2x);
}

TEST(CampaignExpand, EverySchemeNameRoundTripsThroughACampaignSpec) {
  // The campaign loader and the ropsim CLI share one parser (sim/presets);
  // every canonical scheme name must round-trip name -> parse -> name and
  // expand to a campaign cell running that mode.
  std::string err;
  for (const MemoryMode mode : kAllMemoryModes) {
    const std::string name = memory_mode_name(mode);
    const auto parsed = parse_memory_mode(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, mode) << name;

    const auto spec = json::parse(
        R"({"axes": {"benchmark": ["libquantum"], "mode": [")" + name +
        R"("]}})", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    const auto cells = expand_campaign(*spec, &err);
    ASSERT_TRUE(cells.has_value()) << name << ": " << err;
    ASSERT_EQ(cells->size(), 1u);
    EXPECT_EQ((*cells)[0].spec.mode, mode) << name;
  }
  // Compact aliases historically used in campaign specs stay valid.
  EXPECT_EQ(parse_memory_mode("norefresh"), MemoryMode::kNoRefresh);
  EXPECT_EQ(parse_memory_mode("perbank"), MemoryMode::kPerBank);
  EXPECT_FALSE(parse_memory_mode("warp-drive").has_value());
  // Refresh modes round-trip through the same shared parser.
  for (const dram::RefreshMode rm :
       {dram::RefreshMode::k1x, dram::RefreshMode::k2x,
        dram::RefreshMode::k4x}) {
    EXPECT_EQ(parse_refresh_mode(refresh_mode_name(rm)), rm);
  }
  EXPECT_FALSE(parse_refresh_mode("8x").has_value());
}

TEST(CampaignExpand, WorkloadMixesAndErrors) {
  std::string err;
  const auto mix = json::parse(
      R"({"axes": {"benchmark": ["wl1"], "channels": [2]}})");
  ASSERT_TRUE(mix.has_value());
  const auto cells = expand_campaign(*mix, &err);
  ASSERT_TRUE(cells.has_value()) << err;
  ASSERT_EQ(cells->size(), 1u);
  EXPECT_EQ((*cells)[0].spec.benchmarks.size(), 4u);  // 4-core mix
  EXPECT_EQ((*cells)[0].spec.channels, 2u);

  const auto bad = json::parse(R"({"axes": {"mode": ["warp-drive"]}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(expand_campaign(*bad, &err).has_value());
  EXPECT_NE(err.find("warp-drive"), std::string::npos);
}

TEST(CampaignRun, InterruptedThenResumedMatchesUninterrupted) {
  const std::string base = ::testing::TempDir() + "rop_campaign_test";
  fs::remove_all(base);
  const std::string spec_path = write_spec(base, kNineCellSpec);

  // Reference: one uninterrupted pass.
  std::string err;
  const auto full =
      run_campaign(quiet_options(spec_path, base + "/full"), &err);
  ASSERT_TRUE(full.has_value()) << err;
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->total_cells, 9u);
  EXPECT_EQ(full->ran_cells, 9u);
  EXPECT_EQ(full->skipped_cells, 0u);
  ASSERT_FALSE(full->merged_path.empty());

  // Interrupted: stop after 4 fresh completions — the campaign exits
  // incomplete exactly as if killed between two checkpoints.
  CampaignOptions interrupted = quiet_options(spec_path, base + "/resumed");
  interrupted.stop_after = 4;
  const auto partial = run_campaign(interrupted, &err);
  ASSERT_TRUE(partial.has_value()) << err;
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->ran_cells, 4u);
  EXPECT_TRUE(fs::exists(base + "/resumed/manifest.json"));
  EXPECT_FALSE(fs::exists(base + "/resumed/merged.json"));

  // Resume: only the missing five cells run; the merge runs at the end.
  const auto resumed =
      run_campaign(quiet_options(spec_path, base + "/resumed"), &err);
  ASSERT_TRUE(resumed.has_value()) << err;
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->skipped_cells, 4u);
  EXPECT_EQ(resumed->ran_cells, 5u);

  // The acceptance property: byte-identical merged documents.
  EXPECT_EQ(slurp(base + "/resumed/merged.json"),
            slurp(full->merged_path));

  // And the merged document is well-formed with the expected shape.
  const auto merged = json::parse(slurp(full->merged_path), &err);
  ASSERT_TRUE(merged.has_value()) << err;
  EXPECT_EQ(merged->find("cells")->as_u64(), 9u);
  EXPECT_EQ(merged->find("per_cell")->as_array().size(), 9u);
  const json::Value* agg = merged->find("aggregate");
  ASSERT_NE(agg, nullptr);
  EXPECT_GT(agg->find("counters")->as_object().size(), 0u);
  // No wall-clock leakage: byte-identity depends on it.
  EXPECT_EQ(slurp(full->merged_path).find("wall_seconds"),
            std::string::npos);

  fs::remove_all(base);
}

TEST(CampaignRun, MidCellKillResumesFromIntraCellSnapshot) {
  const std::string base = ::testing::TempDir() + "rop_campaign_midcell";
  fs::remove_all(base);
  // snapshot_every is below the natural cell length (lbm at 150k
  // instructions runs ~50k CPU cycles), so every cell leaves periodic
  // checkpoints behind while it runs.
  const std::string spec_text = R"({
    "name": "midkill",
    "instructions_per_core": 150000,
    "snapshot_every": 15000,
    "axes": {"benchmark": ["lbm"], "mode": ["baseline", "rop"]}
  })";
  const std::string spec_path = write_spec(base, spec_text);

  std::string err;
  const auto spec_doc = json::parse(spec_text, &err);
  ASSERT_TRUE(spec_doc.has_value()) << err;
  const auto cells = expand_campaign(*spec_doc, &err);
  ASSERT_TRUE(cells.has_value()) << err;
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_EQ((*cells)[0].spec.snapshot.every, 15'000u);

  // Reference: one uninterrupted pass (checkpointing enabled there too —
  // periodic saves must not perturb results).
  const auto full =
      run_campaign(quiet_options(spec_path, base + "/full"), &err);
  ASSERT_TRUE(full.has_value()) << err;
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->ran_cells, 2u);

  // Kill after the first cell: cell 0's JSON and the manifest land, cell 1
  // has not started.
  CampaignOptions killed = quiet_options(spec_path, base + "/resumed");
  killed.stop_after = 1;
  const auto partial = run_campaign(killed, &err);
  ASSERT_TRUE(partial.has_value()) << err;
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->ran_cells, 1u);

  // Manufacture the debris a kill *mid-cell-1* leaves behind: run cell 1's
  // spec up to an arbitrary interior cycle so its periodic checkpoint sits
  // in the output directory with no cell JSON next to it.
  const std::string snap_path = base + "/resumed/cell_000001.snap";
  ExperimentSpec mid = (*cells)[1].spec;
  mid.snapshot.out = snap_path;
  mid.snapshot.stop_at = 25'001;
  const ExperimentResult cut = run_experiment(mid);
  EXPECT_TRUE(cut.interrupted);
  ASSERT_TRUE(fs::exists(snap_path));
  EXPECT_TRUE(snapshot_compatible(
      snap_path, config_fingerprint(spec_canonical((*cells)[1].spec))));

  // Resume: cell 0 is skipped via the manifest, cell 1 resumes from the
  // intra-cell checkpoint — and the merged document is still byte-equal
  // to the uninterrupted reference.
  const auto resumed =
      run_campaign(quiet_options(spec_path, base + "/resumed"), &err);
  ASSERT_TRUE(resumed.has_value()) << err;
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->skipped_cells, 1u);
  EXPECT_EQ(resumed->ran_cells, 1u);
  EXPECT_EQ(slurp(base + "/resumed/merged.json"), slurp(full->merged_path));
  // The checkpoint is consumed: deleted once the cell JSON lands.
  EXPECT_FALSE(fs::exists(snap_path));

  // A stale checkpoint (wrong format / different sweep) is discarded, not
  // trusted: the cell runs fresh and the campaign still converges.
  const std::string stale_dir = base + "/stale";
  fs::create_directories(stale_dir);
  {
    std::ofstream bogus(stale_dir + "/cell_000000.snap", std::ios::binary);
    bogus << "not a snapshot";
  }
  const auto stale =
      run_campaign(quiet_options(spec_path, stale_dir), &err);
  ASSERT_TRUE(stale.has_value()) << err;
  EXPECT_TRUE(stale->complete);
  EXPECT_EQ(stale->ran_cells, 2u);
  EXPECT_EQ(slurp(stale_dir + "/merged.json"), slurp(full->merged_path));
  EXPECT_FALSE(fs::exists(stale_dir + "/cell_000000.snap"));

  fs::remove_all(base);
}

TEST(CampaignRun, FingerprintMismatchStartsOver) {
  const std::string base = ::testing::TempDir() + "rop_campaign_fp";
  fs::remove_all(base);
  const std::string spec_path = write_spec(base, R"({
    "name": "tiny",
    "instructions_per_core": 10000,
    "axes": {"benchmark": ["lbm"], "mode": ["baseline", "norefresh"]}
  })");

  std::string err;
  const auto first = run_campaign(quiet_options(spec_path, base + "/out"),
                                  &err);
  ASSERT_TRUE(first.has_value()) << err;
  EXPECT_EQ(first->ran_cells, 2u);

  // Same grid, different spec bytes: the manifest must not be trusted.
  write_spec(base, R"({
    "name": "tiny2",
    "instructions_per_core": 10000,
    "axes": {"benchmark": ["lbm"], "mode": ["baseline", "norefresh"]}
  })");
  const auto second = run_campaign(quiet_options(spec_path, base + "/out"),
                                   &err);
  ASSERT_TRUE(second.has_value()) << err;
  EXPECT_EQ(second->skipped_cells, 0u);
  EXPECT_EQ(second->ran_cells, 2u);

  fs::remove_all(base);
}

TEST(CampaignRun, ReportsSpecErrors) {
  const std::string base = ::testing::TempDir() + "rop_campaign_err";
  fs::remove_all(base);
  std::string err;

  CampaignOptions missing = quiet_options(base + "/nope.json", base + "/o");
  EXPECT_FALSE(run_campaign(missing, &err).has_value());
  EXPECT_NE(err.find("cannot read"), std::string::npos);

  const std::string bad_path = write_spec(base, "{not json");
  EXPECT_FALSE(run_campaign(quiet_options(bad_path, base + "/o"), &err)
                   .has_value());
  EXPECT_NE(err.find("parse error"), std::string::npos);

  fs::remove_all(base);
}

}  // namespace
}  // namespace rop::sim
