// Refresh manager tests: cadence, postponement budget, stagger.
#include <gtest/gtest.h>

#include "mem/refresh_manager.h"

namespace rop::mem {
namespace {

class RefreshManagerTest : public ::testing::Test {
 protected:
  dram::DramTimings t = dram::make_ddr4_1600_timings();
};

TEST_F(RefreshManagerTest, FirstRefreshDueAtFirstBoundary) {
  RefreshManager rm(t, 1);
  // Nothing is owed until a full tREFI has elapsed: the first boundary
  // sits at offset + tREFI, not at the phase offset itself.
  EXPECT_EQ(rm.owed(0, 0), 0u);
  EXPECT_EQ(rm.owed(0, t.tREFI - 1), 0u);
  EXPECT_EQ(rm.owed(0, t.tREFI), 1u);
  rm.on_refresh_issued(0);
  EXPECT_EQ(rm.owed(0, t.tREFI), 0u);
  EXPECT_EQ(rm.owed(0, 2 * t.tREFI - 1), 0u);
  EXPECT_EQ(rm.owed(0, 2 * t.tREFI), 1u);
}

// Regression for the owed() off-by-one: the formula used to count the
// phase offset itself as a boundary, so rank 0 was issued its first REF
// at cycle 0 instead of one full tREFI in. Pin the first-REF-due cycle
// for every rank of a staggered 4-rank config.
TEST_F(RefreshManagerTest, FirstRefreshCyclePinnedPerRank) {
  RefreshManager rm(t, 4);
  for (RankId r = 0; r < 4; ++r) {
    const Cycle first = rm.phase_offset(r) + t.tREFI;
    EXPECT_EQ(rm.owed(r, first - 1), 0u) << "rank " << r;
    EXPECT_EQ(rm.owed(r, first), 1u) << "rank " << r;
    EXPECT_EQ(rm.next_boundary(r, 0), first) << "rank " << r;
  }
}

TEST_F(RefreshManagerTest, OwedAccumulatesWhenPostponed) {
  RefreshManager rm(t, 1);
  // Never issue: after k boundaries, k refreshes are owed.
  EXPECT_EQ(rm.owed(0, 3 * t.tREFI), 3u);  // boundaries at 1,2,3 x tREFI
}

TEST_F(RefreshManagerTest, UrgentAtPostponementBudget) {
  RefreshManager rm(t, 1);
  const Cycle almost = t.max_postponed_refreshes * t.tREFI;
  EXPECT_FALSE(rm.urgent(0, almost - 1));
  EXPECT_TRUE(rm.urgent(0, almost));  // 8 boundaries passed, none issued
}

TEST_F(RefreshManagerTest, CatchUpClearsBacklog) {
  RefreshManager rm(t, 1);
  const Cycle now = 3 * t.tREFI;  // 3 owed
  for (int i = 0; i < 3; ++i) rm.on_refresh_issued(0);
  EXPECT_EQ(rm.owed(0, now), 0u);
  EXPECT_EQ(rm.issued(0), 3u);
  EXPECT_EQ(rm.total_issued(), 3u);
}

TEST_F(RefreshManagerTest, RanksAreStaggered) {
  RefreshManager rm(t, 4);
  EXPECT_EQ(rm.phase_offset(0), 0u);
  EXPECT_EQ(rm.phase_offset(1), t.tREFI / 4);
  EXPECT_EQ(rm.phase_offset(3), 3u * t.tREFI / 4);
  // Before its first boundary (offset + tREFI), a rank owes nothing.
  EXPECT_EQ(rm.owed(3, rm.phase_offset(3) + t.tREFI - 1), 0u);
  EXPECT_EQ(rm.owed(3, rm.phase_offset(3) + t.tREFI), 1u);
}

TEST_F(RefreshManagerTest, NextBoundaryAdvancesWithIssues) {
  RefreshManager rm(t, 2);
  EXPECT_EQ(rm.next_boundary(0, 0), static_cast<Cycle>(t.tREFI));
  rm.on_refresh_issued(0);
  EXPECT_EQ(rm.next_boundary(0, 10), static_cast<Cycle>(2 * t.tREFI));
  rm.on_refresh_issued(0);
  EXPECT_EQ(rm.next_boundary(0, 10), static_cast<Cycle>(3 * t.tREFI));
  // Rank 1 boundaries sit one interval past its phase offset.
  EXPECT_EQ(rm.next_boundary(1, 0), rm.phase_offset(1) + t.tREFI);
}

TEST_F(RefreshManagerTest, LongRunAverageOnePerTrefi) {
  RefreshManager rm(t, 1);
  Cycle now = 0;
  std::uint64_t issued = 0;
  // Issue as soon as due for 1000 intervals.
  for (int i = 0; i < 1000; ++i) {
    while (rm.owed(0, now) == 0) now += 13;
    rm.on_refresh_issued(0);
    ++issued;
  }
  EXPECT_EQ(issued, 1000u);
  // Elapsed time ~ 1000 x tREFI (first due at tREFI).
  EXPECT_NEAR(static_cast<double>(now),
              1000.0 * static_cast<double>(t.tREFI),
              static_cast<double>(t.tREFI));
}

}  // namespace
}  // namespace rop::mem
