// Prediction table tests: VLDP-variant update rules, Eq. 3 budget split,
// candidate generation, overflow halving, recency filtering.
#include <gtest/gtest.h>

#include <numeric>

#include "rop/prediction_table.h"

namespace rop::engine {
namespace {

constexpr std::uint64_t kBankLines = 1 << 20;

TEST(PredictionTable, FirstAccessOnlySetsLastAddr) {
  PredictionTable t(8, kBankLines);
  t.on_access(0, 100);
  const TableEntry& e = t.entry(0);
  ASSERT_TRUE(e.last_addr.has_value());
  EXPECT_EQ(*e.last_addr, 100u);
  EXPECT_FALSE(e.delta1_valid);
  EXPECT_EQ(e.weight(), 0u);
}

TEST(PredictionTable, RepeatedDeltaIncrementsF1) {
  PredictionTable t(8, kBankLines);
  for (std::uint64_t i = 0; i < 10; ++i) t.on_access(0, 100 + i);
  const TableEntry& e = t.entry(0);
  EXPECT_TRUE(e.delta1_valid);
  EXPECT_EQ(e.delta1, 1);
  // 9 deltas total; the first delta installs (f1=0), 8 repeats follow.
  EXPECT_EQ(e.f1, 8u);
  EXPECT_EQ(*e.last_addr, 109u);
}

TEST(PredictionTable, NewDeltaResetsF1) {
  PredictionTable t(8, kBankLines);
  t.on_access(0, 0);
  t.on_access(0, 1);
  t.on_access(0, 2);  // delta +1 twice -> f1 = 1
  EXPECT_EQ(t.entry(0).f1, 1u);
  t.on_access(0, 50);  // new delta +48
  EXPECT_EQ(t.entry(0).delta1, 48);
  EXPECT_EQ(t.entry(0).f1, 0u);
}

TEST(PredictionTable, TwoDeltaTupleDetected) {
  // Alternating +3 / +5: f1 never grows, f2 does.
  PredictionTable t(8, kBankLines);
  std::uint64_t addr = 0;
  for (int i = 0; i < 40; ++i) {
    addr += (i % 2 == 0) ? 3 : 5;
    t.on_access(0, addr);
  }
  const TableEntry& e = t.entry(0);
  EXPECT_EQ(e.f1, 0u);
  EXPECT_TRUE(e.delta2_valid);
  EXPECT_GT(e.f2, 5u);
}

TEST(PredictionTable, ThreeDeltaTupleDetected) {
  // Period-3 pattern +1,+1,+130 (the VLDP showcase).
  PredictionTable t(8, kBankLines);
  const std::int64_t deltas[3] = {1, 1, 130};
  std::uint64_t addr = 0;
  for (int i = 0; i < 60; ++i) {
    addr += deltas[i % 3];
    t.on_access(0, addr);
  }
  const TableEntry& e = t.entry(0);
  EXPECT_TRUE(e.delta3_valid);
  EXPECT_GT(e.f3, 5u);
  // delta1 oscillates between +1 and +130 installs: it never accumulates.
  EXPECT_LE(e.f1, 1u);
}

TEST(PredictionTable, PerBankIsolation) {
  PredictionTable t(8, kBankLines);
  for (std::uint64_t i = 0; i < 5; ++i) t.on_access(2, i);
  EXPECT_FALSE(t.entry(3).last_addr.has_value());
  EXPECT_GT(t.entry(2).weight(), 0u);
  EXPECT_EQ(t.entry(3).weight(), 0u);
}

TEST(PredictionTable, TotalWeightSumsBanks) {
  PredictionTable t(4, kBankLines);
  for (std::uint64_t i = 0; i < 5; ++i) t.on_access(0, i);
  for (std::uint64_t i = 0; i < 9; ++i) t.on_access(1, i * 2);
  EXPECT_EQ(t.total_weight(), t.entry(0).weight() + t.entry(1).weight());
}

TEST(PredictionTable, PredictBudgetsSumToCapacity) {
  PredictionTable t(8, kBankLines);
  for (std::uint64_t i = 0; i < 30; ++i) t.on_access(static_cast<BankId>(i % 3), 1000 + i / 3);
  const auto preds = t.predict(64);
  const std::uint32_t total = std::accumulate(
      preds.begin(), preds.end(), 0u,
      [](std::uint32_t acc, const BankPrediction& p) { return acc + p.budget; });
  EXPECT_EQ(total, 64u);
}

TEST(PredictionTable, Eq3ProportionalSplit) {
  PredictionTable t(2, kBankLines);
  // Bank 0: 3x the repeats of bank 1.
  for (std::uint64_t i = 0; i < 31; ++i) t.on_access(0, i);       // f1 = 29
  for (std::uint64_t i = 0; i < 11; ++i) t.on_access(1, 500 + i); // f1 = 9
  const auto preds = t.predict(38);
  // weight0 ~ 30ish, weight1 ~ 10ish: budget ratio ~ 3:1.
  EXPECT_GT(preds[0].budget, preds[1].budget * 2);
  EXPECT_GT(preds[1].budget, 0u);
}

TEST(PredictionTable, UniformAblationIgnoresWeights) {
  PredictionTable t(2, kBankLines);
  for (std::uint64_t i = 0; i < 31; ++i) t.on_access(0, i);
  for (std::uint64_t i = 0; i < 11; ++i) t.on_access(1, 500 + i);
  const auto preds = t.predict(40, /*uniform=*/true);
  EXPECT_EQ(preds[0].budget, preds[1].budget);
}

TEST(PredictionTable, GeneratedOffsetsFollowSingleDelta) {
  PredictionTable t(1, kBankLines);
  for (std::uint64_t i = 0; i < 20; ++i) t.on_access(0, 100 + 2 * i);
  const auto preds = t.predict(8);
  // The 2- and 3-delta walks duplicate the single-delta walk here, so the
  // deduplicated candidate list is shorter than the budget but strictly
  // follows the +2 stride from LastAddr (138).
  ASSERT_GE(preds[0].offsets.size(), 4u);
  for (std::size_t k = 0; k < preds[0].offsets.size(); ++k) {
    EXPECT_EQ(preds[0].offsets[k], 138 + 2 * (k + 1));
  }
}

TEST(PredictionTable, SkipShiftsTheWalk) {
  PredictionTable t(1, kBankLines);
  for (std::uint64_t i = 0; i < 20; ++i) t.on_access(0, 100 + i);
  const auto preds = t.predict(4, false, /*skip_per_bank=*/10);
  ASSERT_GE(preds[0].offsets.size(), 1u);
  EXPECT_EQ(preds[0].offsets[0], 119u + 10 + 1);
}

TEST(PredictionTable, OffsetsWrapAroundBankCapacity) {
  PredictionTable t(1, 1000);
  t.on_access(0, 995);
  t.on_access(0, 996);
  t.on_access(0, 997);
  const auto preds = t.predict(6);
  for (const std::uint64_t off : preds[0].offsets) {
    EXPECT_LT(off, 1000u);
  }
}

TEST(PredictionTable, NegativeDeltaWalksBackwards) {
  PredictionTable t(1, kBankLines);
  for (std::uint64_t i = 0; i < 10; ++i) t.on_access(0, 1000 - 3 * i);
  const auto preds = t.predict(3);
  ASSERT_FALSE(preds[0].offsets.empty());
  EXPECT_EQ(preds[0].offsets[0], 1000u - 27 - 3);
}

TEST(PredictionTable, EmptyTablePredictsNothing) {
  PredictionTable t(8, kBankLines);
  const auto preds = t.predict(64);
  for (const auto& p : preds) {
    EXPECT_EQ(p.budget, 0u);
    EXPECT_TRUE(p.offsets.empty());
  }
}

TEST(PredictionTable, ZeroWeightFallsBackToNextLine) {
  PredictionTable t(2, kBankLines);
  t.on_access(0, 42);  // only LastAddr, no repeats
  const auto preds = t.predict(4);
  ASSERT_GT(preds[0].budget, 0u);
  ASSERT_FALSE(preds[0].offsets.empty());
  EXPECT_EQ(preds[0].offsets[0], 43u);  // next-line fallback
}

TEST(PredictionTable, DecayHalvesFrequencies) {
  PredictionTable t(1, kBankLines);
  for (std::uint64_t i = 0; i < 17; ++i) t.on_access(0, i);
  const std::uint16_t before = t.entry(0).f1;
  t.decay();
  EXPECT_EQ(t.entry(0).f1, before / 2);
}

TEST(PredictionTable, ClearForgetsEverything) {
  PredictionTable t(2, kBankLines);
  for (std::uint64_t i = 0; i < 9; ++i) t.on_access(1, i);
  t.clear();
  EXPECT_EQ(t.total_weight(), 0u);
  EXPECT_FALSE(t.entry(1).last_addr.has_value());
}

TEST(PredictionTable, RecencyFilterZeroesStaleBanks) {
  PredictionTable t(2, kBankLines);
  for (std::uint64_t i = 0; i < 10; ++i) t.on_access(0, i, /*now=*/100 + i);
  for (std::uint64_t i = 0; i < 10; ++i) t.on_access(1, i, /*now=*/5000 + i);
  // At now=5100 with a 200-cycle horizon, bank 0 (last access 109) is
  // stale: it keeps at most the small crossing reserve while the active
  // bank takes the bulk of the budget.
  const auto preds = t.predict(32, false, 0, 5100, 200);
  EXPECT_LE(preds[0].budget, 4u);
  EXPECT_GE(preds[1].budget, 28u);
}

TEST(PredictionTable, PredictedNextBankFollowsTransitionStride) {
  PredictionTable t(8, kBankLines);
  EXPECT_FALSE(t.predicted_next_bank().has_value());
  t.on_access(2, 0);
  t.on_access(3, 0);  // stride +1
  ASSERT_TRUE(t.predicted_next_bank().has_value());
  EXPECT_EQ(*t.predicted_next_bank(), 4u);
  t.on_access(5, 1);  // stride +2 now
  EXPECT_EQ(*t.predicted_next_bank(), 7u);
  t.on_access(7, 2);
  EXPECT_EQ(*t.predicted_next_bank(), (7u + 2u) % 8u);  // wraps
}

TEST(PredictionTable, OverflowHalvesAllFrequencies) {
  PredictionTable t(1, kBankLines);
  TableEntry& probe = const_cast<TableEntry&>(t.entry(0));
  // Drive f1 close to the ceiling via direct setup, then one more access.
  t.on_access(0, 0);
  t.on_access(0, 1);
  probe.f1 = 0xFFFF;
  probe.f2 = 100;
  probe.delta2_valid = true;
  probe.delta2 = {1, 1};
  probe.f3 = 60;
  t.on_access(0, 2);  // repeat delta +1: would overflow f1
  EXPECT_EQ(t.entry(0).f1, 0x8000u);  // halved then incremented
  // f2 was halved by the overflow, then its (1,1) tuple matched: 50 + 1.
  EXPECT_EQ(t.entry(0).f2, 51u);
  EXPECT_EQ(t.entry(0).f3, 30u);  // halved only
}

TEST(PredictionTable, DedupAcrossPatterns) {
  // delta1 = +1 and delta2 = (+1,+1) generate overlapping offsets; the
  // candidate list must not contain duplicates.
  PredictionTable t(1, kBankLines);
  for (std::uint64_t i = 0; i < 30; ++i) t.on_access(0, i);
  const auto preds = t.predict(16);
  auto offsets = preds[0].offsets;
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(std::adjacent_find(offsets.begin(), offsets.end()),
            offsets.end());
}

}  // namespace
}  // namespace rop::engine
