#!/usr/bin/env python3
"""Render CPI stacks from ropsim --stats-json documents.

Usage:
    report_cpi.py STATS_JSON [STATS_JSON ...] [--core N] [--csv]

Each input is either a single-run document (schema_version >= 3, with an
"attribution" block), a --compare document ({"benchmark", "modes": {...}}),
or a bench sidecar; every embedded document becomes one column. For every
core the renderer prints the absolute cycle count per category, the share
of total cycles, and the CPI contribution (category cycles / instructions),
plus an ASCII bar chart of the stack. Columns are printed side by side so
`report_cpi.py baseline.json rop.json` (or one --compare document) reads as
a direct refresh-overhead comparison — the paper's Fig. 1 decomposition.

With --csv, emits one long-form CSV row per (column, core, category)
instead of the tables: label,core,category,cycles,share,cpi.

Stdlib only; exit 1 when no attribution-bearing document is found.
"""

import argparse
import json
import sys

# Canonical category order (telemetry/attribution.h); the renderer groups
# them for display but never invents or drops a key.
CPI_KEYS = ["retire", "stall_mlp", "stall_port", "mem_queue", "mem_bank",
            "mem_cas", "mem_bus", "refresh_rank", "refresh_bank",
            "refresh_subarray", "refresh_pause", "rop_sram", "other"]

REFRESH_KEYS = ["refresh_rank", "refresh_bank", "refresh_subarray",
                "refresh_pause"]

BAR_WIDTH = 40
BAR_GLYPHS = {
    "retire": "=",
    "stall_mlp": "m",
    "stall_port": "p",
    "mem_queue": "q",
    "mem_bank": "b",
    "mem_cas": "c",
    "mem_bus": "u",
    "refresh_rank": "R",
    "refresh_bank": "B",
    "refresh_subarray": "S",
    "refresh_pause": "P",
    "rop_sram": "r",
    "other": ".",
}


def collect_documents(obj, where):
    """Yield (label, document) for a stats doc, --compare doc, or sidecar."""
    if "attribution" in obj and "run" in obj:
        yield where, obj
    elif "modes" in obj:
        for mode, doc in obj["modes"].items():
            yield mode, doc
    else:
        for label, doc in obj.items():
            if isinstance(doc, dict) and "attribution" in doc:
                yield label, doc


def core_rows(doc):
    """Yield (core_index, cycles, instructions, stack_dict) per core."""
    attr = doc.get("attribution")
    if not attr:
        return
    run_cores = doc.get("run", {}).get("cores", [])
    for entry in attr.get("cores", []):
        idx = entry["core"]
        instructions = 0
        if idx < len(run_cores):
            instructions = run_cores[idx].get("instructions", 0)
        yield idx, entry["cycles"], instructions, entry["cpi_stack"]


def render_bar(stack, cycles):
    if cycles == 0:
        return "(no cycles)"
    bar = []
    for key in CPI_KEYS:
        width = round(BAR_WIDTH * stack[key] / cycles)
        bar.append(BAR_GLYPHS[key] * width)
    return "[" + "".join(bar)[:BAR_WIDTH].ljust(BAR_WIDTH) + "]"


def render_column(label, doc, core_filter):
    attr = doc["attribution"]
    lines = [f"== {label} (cpu_ratio {attr.get('cpu_ratio', '?')}) =="]
    for idx, cycles, instructions, stack in core_rows(doc):
        if core_filter is not None and idx != core_filter:
            continue
        total = sum(stack.values())
        ipc = instructions / cycles if cycles else 0.0
        lines.append(f"core {idx}: {cycles} cycles, "
                     f"{instructions} instructions (IPC {ipc:.4f})")
        if total != cycles:
            lines.append(f"  WARNING: stack sums to {total}, "
                         f"not {cycles} (delta {total - cycles:+d})")
        lines.append(f"  {render_bar(stack, cycles)}")
        lines.append(f"  {'category':<18}{'cycles':>14}{'share':>9}"
                     f"{'cpi':>10}")
        for key in CPI_KEYS:
            v = stack[key]
            if v == 0:
                continue
            share = v / cycles if cycles else 0.0
            cpi = v / instructions if instructions else 0.0
            marker = " *" if key in REFRESH_KEYS else ""
            lines.append(f"  {key:<18}{v:>14}{share:>8.1%}{cpi:>10.4f}"
                         f"{marker}")
        refresh = sum(stack[k] for k in REFRESH_KEYS)
        if refresh:
            share = refresh / cycles if cycles else 0.0
            lines.append(f"  {'(refresh total)':<18}{refresh:>14}"
                         f"{share:>8.1%}")
    recovered = attr.get("rop_recovered_cycles", 0)
    if recovered:
        lines.append(f"rop_recovered_cycles: {recovered} "
                     f"(controller cycles served from SRAM during refresh)")
    req = attr.get("requests", {})
    blocked = {k: v for k, v in req.items() if v}
    if blocked:
        lines.append("request blocked-cycle totals (controller cycles): "
                     + ", ".join(f"{k}={v}" for k, v in blocked.items()))
    return lines


def render_csv(columns, core_filter, out):
    out.write("label,core,category,cycles,share,cpi\n")
    for label, doc in columns:
        for idx, cycles, instructions, stack in core_rows(doc):
            if core_filter is not None and idx != core_filter:
                continue
            for key in CPI_KEYS:
                v = stack[key]
                share = v / cycles if cycles else 0.0
                cpi = v / instructions if instructions else 0.0
                out.write(f"{label},{idx},{key},{v},{share:.6f},{cpi:.6f}\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", nargs="+",
                        help="stats JSON documents (single-run, --compare, "
                             "or sidecar)")
    parser.add_argument("--core", type=int, default=None,
                        help="render only this core index")
    parser.add_argument("--csv", action="store_true",
                        help="emit long-form CSV instead of tables")
    args = parser.parse_args()

    columns = []
    for path in args.stats:
        with open(path) as f:
            obj = json.load(f)
        for label, doc in collect_documents(obj, path):
            if doc.get("attribution"):
                columns.append((label, doc))
    if not columns:
        print("no documents with an attribution block found "
              "(need schema_version >= 3; re-run ropsim --stats-json)",
              file=sys.stderr)
        return 1

    if args.csv:
        render_csv(columns, args.core, sys.stdout)
        return 0

    blocks = [render_column(label, doc, args.core) for label, doc in columns]
    for block in blocks:
        print("\n".join(block))
        print()
    if len(columns) >= 2:
        # Refresh-overhead delta of every column against the first.
        base_label, base_doc = columns[0]
        base = {idx: sum(stack[k] for k in REFRESH_KEYS) / cycles
                for idx, cycles, _, stack in core_rows(base_doc) if cycles}
        print(f"refresh-stall share vs {base_label}:")
        for label, doc in columns[1:]:
            for idx, cycles, _, stack in core_rows(doc):
                if args.core is not None and idx != args.core:
                    continue
                if not cycles or idx not in base:
                    continue
                share = sum(stack[k] for k in REFRESH_KEYS) / cycles
                print(f"  {label} core {idx}: {share:.2%} "
                      f"(base {base[idx]:.2%}, delta "
                      f"{share - base[idx]:+.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
