#!/usr/bin/env python3
"""CI gate: compare a google-benchmark JSON run against the committed
baseline and fail on significant regressions.

Usage:
    check_bench_regression.py RESULTS_JSON BASELINE_JSON [--threshold 1.25]

RESULTS_JSON is the output of `--benchmark_format=json`. BASELINE_JSON is a
committed measurement file (e.g. BENCH_eventcore.json) whose top-level
`ci_baseline_ns` object maps benchmark names to reference per-iteration
times in nanoseconds. Only benchmarks listed there are gated; everything
else is informational. A benchmark regresses when its measured real_time
exceeds baseline * threshold (default 1.25 — wide enough to absorb shared
CI runner noise, tight enough to catch a hot-path slip).

Exit status: 0 when every gated benchmark is within the threshold, 1 on any
regression or when a gated benchmark is missing from the results.

--overhead-threshold R adds a second, aggregate gate: the geometric mean of
measured/baseline ratios over all gated benchmarks must stay at or below R.
The telemetry CI job uses it with R = 1.01 to assert that the telemetry
layer, when disabled, costs the hot paths less than 1% versus the committed
event-core baseline (per-benchmark noise is absorbed by the geomean).

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import sys


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale.get(unit, 1.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark JSON output")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when measured > baseline * threshold")
    parser.add_argument("--overhead-threshold", type=float, default=None,
                        help="also fail when the geometric mean of "
                             "measured/baseline ratios over the gated "
                             "benchmarks exceeds this value")
    args = parser.parse_args()

    with open(args.results) as f:
        results = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    gated = baseline.get("ci_baseline_ns")
    if not gated:
        print(f"error: {args.baseline} has no ci_baseline_ns object")
        return 1

    # With --benchmark_repetitions=N the results carry one entry per
    # repetition under the same name; keep the minimum. Min-of-N is the
    # standard estimator for "how fast can this code go" — it strips
    # scheduler and frequency noise that would otherwise eat most of a
    # tight overhead budget.
    measured = {}
    for bench in results.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ns = to_ns(bench["real_time"], bench.get("time_unit", "ns"))
        name = bench["name"]
        measured[name] = min(ns, measured.get(name, ns))

    failed = False
    ratios = []
    for name, base_ns in sorted(gated.items()):
        if name not in measured:
            print(f"FAIL {name}: gated benchmark missing from results")
            failed = True
            continue
        got = measured[name]
        ratio = got / base_ns
        ratios.append(ratio)
        verdict = "FAIL" if ratio > args.threshold else "ok"
        print(f"{verdict:4} {name}: {got:.1f} ns vs baseline {base_ns:.1f} ns "
              f"(x{ratio:.2f}, limit x{args.threshold:.2f})")
        if ratio > args.threshold:
            failed = True

    if args.overhead_threshold is not None and ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        verdict = "FAIL" if geomean > args.overhead_threshold else "ok"
        print(f"{verdict:4} aggregate overhead: geomean x{geomean:.4f} "
              f"(limit x{args.overhead_threshold:.4f}, "
              f"{len(ratios)} benchmarks)")
        if geomean > args.overhead_threshold:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
