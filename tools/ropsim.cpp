// ropsim — command-line driver for the ROP memory-system simulator.
//
// Runs any benchmark (or trace file) on any of the memory systems with the
// knobs exposed as flags, and prints a full report: performance, energy
// breakdown, refresh statistics, and (for ROP) engine internals.
//
//   ropsim --benchmark libquantum --mode rop --instructions 20000000
//   ropsim --benchmark wl1 --mode rop --cores 4 --ranks 4 --llc-mb 4
//   ropsim --benchmark lbm --compare --jobs 4
//   ropsim --benchmark wl1 --channels 4 --shard-channels 4
//   ropsim --trace /path/app.trace --mode baseline
//   ropsim campaign sweep.json --out results/
//   ropsim --help
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/sim_checker.h"
#include "common/table.h"
#include "sim/campaign.h"
#include "cpu/system.h"
#include "energy/dram_power.h"
#include "mem/memory_system.h"
#include "mem/refresh_stats.h"
#include "rop/rop_engine.h"
#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/runner.h"
#include "telemetry/epoch_sampler.h"
#include "telemetry/stats_json.h"
#include "telemetry/trace_sink.h"
#include "workload/spec_profiles.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace {

using namespace rop;

struct Options {
  std::string benchmark = "libquantum";
  std::string trace_path;
  std::string mode = "baseline";
  std::uint32_t cores = 1;
  std::uint32_t ranks = 1;
  std::uint32_t channels = 1;
  std::uint32_t shard_channels = 0;
  std::uint64_t llc_mb = 2;
  std::uint64_t instructions = 10'000'000;
  std::uint32_t buffer_lines = 64;
  std::uint32_t window_multiple = 1;
  std::uint32_t training = 50;
  bool rank_partition = false;
  std::string refresh_mode = "1x";
  bool dump_stats = false;
  bool compare = false;
  unsigned jobs = 0;
  std::string loop = "event";  // --loop event|frozen|naive|sampled
  bool check = false;
  std::string snapshot_in;            // --snapshot-in PATH
  std::string snapshot_out;           // --snapshot-out PATH
  std::uint64_t snapshot_every = 0;   // --snapshot-every N (CPU cycles)
  std::uint64_t snapshot_stop = 0;    // --snapshot-stop-at N (CPU cycles)
  std::uint64_t sample_warmup = 0;    // --sample-warmup N; 0 = default
  std::uint64_t sample_detail = 0;    // --sample-detail N
  std::uint64_t sample_functional = 0;  // --sample-functional N
  std::uint32_t sample_min_windows = 0;   // --sample-min-windows N
  std::uint32_t sample_max_windows = 0;   // --sample-max-windows N
  double sample_target_ci = 0.0;      // --sample-target-ci FRAC
  std::uint32_t sample_jobs = 0;      // --sample-jobs N (planned parallel)
  std::uint32_t sample_strata = 0;    // --sample-strata N (stratified)
  std::string stats_json;             // --stats-json PATH
  std::string trace_out;              // --trace-out PATH
  std::string trace_cats = "all";     // --trace-cats CATS
  std::string trace_format = "json";  // --trace-format json|binary
  std::uint64_t epoch = 0;            // --epoch N; 0 = auto (tREFI)
  std::string progress;               // --progress FILE (JSONL heartbeat)
  std::uint64_t progress_every = 0;   // --progress-every N; 0 = default
};

[[noreturn]] void usage(int code) {
  std::puts(
      "ropsim — ROP memory-system simulator\n"
      "\n"
      "  --benchmark NAME     one of the 12 SPEC-like profiles, or wl1..wl6\n"
      "                       for a 4-core mix (default libquantum)\n"
      "  --trace PATH         replay a text trace file instead\n"
      "  --mode MODE          baseline | no-refresh | rop | elastic |\n"
      "                       pausing | per-bank | darp | sarp | hira\n"
      "                       (default baseline)\n"
      "  --cores N            number of cores (default 1; wl mixes force 4)\n"
      "  --ranks N            DRAM ranks (default 1)\n"
      "  --channels N         memory channels (default 1)\n"
      "  --shard-channels N   run the channel-sharded simulation loop with N\n"
      "                       shard workers (bit-identical to the serial\n"
      "                       loop; incompatible with --trace-out/--loop)\n"
      "  --llc-mb N           shared LLC size in MiB (default 2)\n"
      "  --instructions N     per-core instruction target (default 10M)\n"
      "  --buffer-lines N     ROP SRAM capacity (default 64)\n"
      "  --window N           ROP observational window multiple (default 1)\n"
      "  --training N         ROP training refreshes (default 50)\n"
      "  --rank-partition     enable rank-aware mapping\n"
      "  --refresh 1x|2x|4x   JEDEC fine-grained refresh mode (default 1x)\n"
      "  --stats              dump the raw statistics registry\n"
      "  --compare            run the workload under every memory mode and\n"
      "                       print a comparison table (ignores --mode)\n"
      "  --jobs N             worker threads for --compare (default: one\n"
      "                       per hardware thread)\n"
      "  --loop MODE          simulation loop: event | frozen | naive |\n"
      "                       sampled (default event; the first three are\n"
      "                       bit-identical; sampled is SMARTS-style\n"
      "                       statistical sampling — see docs/PERFORMANCE.md)\n"
      "  --no-fast-forward    alias for --loop naive (cross-checking)\n"
      "                       (results are bit-identical either way)\n"
      "  --check              audit the run with the SimChecker invariant\n"
      "                       checker (see docs/CORRECTNESS.md); nonzero\n"
      "                       exit on any violation\n"
      "  --stats-json PATH    write every counter/scalar/histogram plus the\n"
      "                       epoch time-series as JSON (schema in\n"
      "                       docs/OBSERVABILITY.md); with --compare, one\n"
      "                       document keyed by mode\n"
      "  --epoch N            epoch-sampling period in controller cycles\n"
      "                       (default: tREFI when --stats-json is given)\n"
      "  --trace-out PATH     write a Chrome trace-event timeline of the run\n"
      "                       (open in chrome://tracing or ui.perfetto.dev)\n"
      "  --trace-cats CATS    trace categories, comma-separated from\n"
      "                       cmds,refresh,rop,reqs, or all (default all)\n"
      "  --trace-format FMT   json | binary (default json)\n"
      "  --progress FILE      append a JSONL heartbeat (cycles, Mcyc/s, ETA)\n"
      "                       to FILE during the run; tail -f it for live\n"
      "                       state (see docs/OBSERVABILITY.md)\n"
      "  --progress-every N   heartbeat period in CPU cycles (default 10M)\n"
      "\n"
      "checkpoint/restore (see docs/PERFORMANCE.md §8):\n"
      "  --snapshot-out PATH      write a checkpoint (at --snapshot-stop-at,\n"
      "                           or periodically with --snapshot-every)\n"
      "  --snapshot-in PATH       resume a run from a checkpoint (the spec\n"
      "                           flags must match the saving run exactly)\n"
      "  --snapshot-every N       checkpoint every N CPU cycles\n"
      "  --snapshot-stop-at N     stop and checkpoint at CPU cycle N\n"
      "\n"
      "sampled-loop knobs (only with --loop sampled; defaults in\n"
      "src/sim/sampling.h):\n"
      "  --sample-warmup N        detailed-but-unmeasured CPU cycles per unit\n"
      "  --sample-detail N        measured CPU cycles per unit\n"
      "  --sample-functional N    instructions fast-forwarded between units\n"
      "  --sample-min-windows N   observations before auto-stop may fire\n"
      "  --sample-max-windows N   hard cap on window count\n"
      "  --sample-target-ci F     stop when IPC ci95/mean <= F (e.g. 0.05)\n"
      "  --sample-jobs N          plan windows on a functional-only pass and\n"
      "                           run them on N snapshot-restoring workers\n"
      "                           (estimates are identical for every N >= 1;\n"
      "                           see docs/PERFORMANCE.md §9)\n"
      "  --sample-strata N        stratified window placement over N horizon\n"
      "                           slices, traffic-proportional allocation\n"
      "                           (requires --sample-jobs >= 1)\n"
      "  --help\n"
      "\n"
      "campaign mode — expand a JSON sweep spec into a grid of runs with\n"
      "resumable checkpointing and one merged stats document:\n"
      "\n"
      "  ropsim campaign SPEC.json --out DIR [--jobs N] [--no-resume]\n"
      "                  [--stop-after N] [--quiet] [--progress FILE]\n"
      "\n"
      "  --progress FILE appends one JSONL heartbeat per cell transition\n"
      "  (done/failed/running counts, wall-clock, ETA, last cell label).\n"
      "\n"
      "  Writes DIR/cell_NNNNNN.json per run, DIR/manifest.json after every\n"
      "  completed cell, and DIR/merged.json once all cells are done.\n"
      "  Re-running the same spec resumes from the manifest. See\n"
      "  docs/PERFORMANCE.md for the spec format.\n");
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--benchmark") {
      opt.benchmark = need(i);
    } else if (arg == "--trace") {
      opt.trace_path = need(i);
    } else if (arg == "--mode") {
      opt.mode = need(i);
    } else if (arg == "--cores") {
      opt.cores = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--ranks") {
      opt.ranks = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--channels") {
      opt.channels = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--shard-channels") {
      opt.shard_channels = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--llc-mb") {
      opt.llc_mb = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--instructions") {
      opt.instructions = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--buffer-lines") {
      opt.buffer_lines = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--window") {
      opt.window_multiple = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--training") {
      opt.training = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--rank-partition") {
      opt.rank_partition = true;
    } else if (arg == "--refresh") {
      opt.refresh_mode = need(i);
    } else if (arg == "--stats") {
      opt.dump_stats = true;
    } else if (arg == "--compare") {
      opt.compare = true;
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--loop") {
      opt.loop = need(i);
    } else if (arg == "--no-fast-forward") {
      opt.loop = "naive";
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--snapshot-in") {
      opt.snapshot_in = need(i);
    } else if (arg == "--snapshot-out") {
      opt.snapshot_out = need(i);
    } else if (arg == "--snapshot-every") {
      opt.snapshot_every = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--snapshot-stop-at") {
      opt.snapshot_stop = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--sample-warmup") {
      opt.sample_warmup = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--sample-detail") {
      opt.sample_detail = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--sample-functional") {
      opt.sample_functional = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--sample-min-windows") {
      opt.sample_min_windows = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--sample-max-windows") {
      opt.sample_max_windows = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--sample-target-ci") {
      opt.sample_target_ci = std::strtod(need(i), nullptr);
    } else if (arg == "--sample-jobs") {
      opt.sample_jobs = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--sample-strata") {
      opt.sample_strata = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (arg == "--stats-json") {
      opt.stats_json = need(i);
    } else if (arg == "--epoch") {
      opt.epoch = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--trace-out") {
      opt.trace_out = need(i);
    } else if (arg == "--trace-cats") {
      opt.trace_cats = need(i);
    } else if (arg == "--trace-format") {
      opt.trace_format = need(i);
    } else if (arg == "--progress") {
      opt.progress = need(i);
    } else if (arg == "--progress-every") {
      opt.progress_every = std::strtoull(need(i), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(2);
    }
  }
  return opt;
}

sim::MemoryMode parse_mode(const std::string& s) {
  // Shared preset-layer parser: the same names work in campaign specs.
  const auto mode = sim::parse_memory_mode(s);
  if (!mode) {
    std::fprintf(stderr, "unknown mode: %s\n", s.c_str());
    usage(2);
  }
  return *mode;
}

dram::RefreshMode parse_refresh(const std::string& s) {
  const auto mode = sim::parse_refresh_mode(s);
  if (!mode) {
    std::fprintf(stderr, "unknown refresh mode: %s\n", s.c_str());
    usage(2);
  }
  return *mode;
}

cpu::LoopMode parse_loop(const std::string& s) {
  if (s == "event") return cpu::LoopMode::kEventDriven;
  if (s == "frozen") return cpu::LoopMode::kFrozenStall;
  if (s == "naive") return cpu::LoopMode::kNaive;
  if (s == "sampled") return cpu::LoopMode::kEventDriven;  // serial detail loop
  std::fprintf(stderr, "unknown loop mode: %s\n", s.c_str());
  usage(2);
}

bool snapshot_requested(const Options& opt) {
  return !opt.snapshot_in.empty() || !opt.snapshot_out.empty() ||
         opt.snapshot_every > 0 || opt.snapshot_stop > 0;
}

bool is_workload_mix(const std::string& name) {
  return name.size() == 3 && name.compare(0, 2, "wl") == 0 &&
         name[2] >= '1' && name[2] <= '6';
}

std::uint32_t parse_categories(const std::string& csv) {
  const auto cats = telemetry::parse_trace_categories(csv);
  if (!cats) {
    std::fprintf(stderr,
                 "unknown trace category in: %s (valid: all, cmds, refresh, "
                 "rop, reqs)\n",
                 csv.c_str());
    usage(2);
  }
  return *cats;
}

/// Write `text` to `path`; stderr + false on failure.
bool write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  os << text;
  return static_cast<bool>(os);
}

sim::ExperimentSpec spec_from_options(const Options& opt,
                                      sim::MemoryMode mode) {
  sim::ExperimentSpec spec;
  if (is_workload_mix(opt.benchmark)) {
    spec.benchmarks = workload::workload_mix(opt.benchmark[2] - '0');
    spec.ranks = std::max(opt.ranks, 4u);
  } else {
    spec.benchmarks.assign(opt.cores, opt.benchmark);
    spec.ranks = opt.ranks;
  }
  spec.mode = mode;
  spec.rank_partition = opt.rank_partition;
  spec.channels = opt.channels;
  spec.shard_channels = std::min(opt.shard_channels, opt.channels);
  spec.llc_bytes = opt.llc_mb << 20;
  spec.rop.buffer_lines = opt.buffer_lines;
  spec.rop.window_multiple = opt.window_multiple;
  spec.rop.training_refreshes = opt.training;
  spec.refresh_mode = parse_refresh(opt.refresh_mode);
  spec.instructions_per_core = opt.instructions;
  spec.max_cpu_cycles = opt.instructions * 256;
  spec.loop = parse_loop(opt.loop);
  spec.check = opt.check;
  spec.snapshot.in = opt.snapshot_in;
  spec.snapshot.out = opt.snapshot_out;
  spec.snapshot.every = opt.snapshot_every;
  spec.snapshot.stop_at = opt.snapshot_stop;
  spec.progress_file = opt.progress;
  if (opt.progress_every > 0) spec.progress_every = opt.progress_every;
  if (opt.loop == "sampled") {
    spec.sampling.enabled = true;
    if (opt.sample_warmup > 0) spec.sampling.warmup_cycles = opt.sample_warmup;
    if (opt.sample_detail > 0) spec.sampling.detail_cycles = opt.sample_detail;
    if (opt.sample_functional > 0) {
      spec.sampling.functional_instructions = opt.sample_functional;
    }
    if (opt.sample_min_windows > 0) {
      spec.sampling.min_windows = opt.sample_min_windows;
    }
    spec.sampling.max_windows = opt.sample_max_windows;
    spec.sampling.target_ci_frac = opt.sample_target_ci;
    spec.sampling.jobs = opt.sample_jobs;
    spec.sampling.strata = opt.sample_strata;
  }
  return spec;
}

/// --compare: the same workload under every memory mode, fanned out over
/// the parallel experiment runner, summarized against the baseline.
int run_compare(const Options& opt) {
  static constexpr struct {
    const char* name;
    sim::MemoryMode mode;
  } kAllModes[] = {
      {"baseline", sim::MemoryMode::kBaseline},
      {"rop", sim::MemoryMode::kRop},
      {"elastic", sim::MemoryMode::kElastic},
      {"pausing", sim::MemoryMode::kPausing},
      {"per-bank", sim::MemoryMode::kPerBank},
      {"darp", sim::MemoryMode::kDarp},
      {"sarp", sim::MemoryMode::kSarp},
      {"hira", sim::MemoryMode::kHira},
      {"no-refresh", sim::MemoryMode::kNoRefresh},
  };

  if (!opt.progress.empty()) {
    std::fprintf(stderr, "ropsim: --progress is ignored with --compare (nine "
                         "concurrent runs would race on one heartbeat "
                         "file)\n");
  }
  std::vector<sim::ExperimentSpec> specs;
  for (const auto& m : kAllModes) {
    specs.push_back(spec_from_options(opt, m.mode));
    specs.back().progress_file.clear();
  }
  if (!opt.stats_json.empty() || opt.epoch != 0) {
    for (auto& spec : specs) {
      spec.telemetry.sampler.epoch_cycles =
          opt.epoch != 0
              ? opt.epoch
              : sim::make_memory_config(spec.ranks, spec.mode,
                                        spec.refresh_mode)
                    .timings.tREFI;
    }
  }
  std::printf("ropsim: comparing %zu modes on %s (%llu instructions/core, "
              "jobs=%u)\n",
              specs.size(), opt.benchmark.c_str(),
              static_cast<unsigned long long>(opt.instructions), opt.jobs);
  const std::vector<sim::ExperimentResult> results =
      sim::run_experiments(specs, opt.jobs);

  const auto total_ipc = [](const sim::ExperimentResult& r) {
    double sum = 0.0;
    for (const auto& core : r.run.cores) sum += core.ipc;
    return sum;
  };
  const sim::ExperimentResult& base = results[0];

  TextTable table("mode comparison");
  table.set_header({"mode", "IPC", "speedup", "energy (mJ)", "energy ratio",
                    "refreshes", "lat p50", "lat p95", "lat p99", "wall (s)",
                    "Mcyc/s"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::ExperimentResult& r = results[i];
    const Histogram* lat = r.stats.find_histogram("mem.read_latency_hist");
    const auto pct = [&](double p) {
      return lat != nullptr ? TextTable::fmt(lat->percentile(p), 1)
                            : std::string("-");
    };
    table.add_row({kAllModes[i].name, TextTable::fmt(total_ipc(r), 4),
                   TextTable::fmt(total_ipc(r) / total_ipc(base), 4),
                   TextTable::fmt(r.total_energy_mj(), 2),
                   TextTable::fmt(r.total_energy_mj() / base.total_energy_mj(),
                                  4),
                   std::to_string(r.refreshes), pct(50.0), pct(95.0),
                   pct(99.0), TextTable::fmt(r.wall_seconds, 2),
                   TextTable::fmt(r.sim_cycles_per_second() / 1e6, 1)});
  }
  table.print();
  std::printf("\nread-latency percentiles in controller cycles "
              "(bucket-interpolated; see docs/OBSERVABILITY.md)\n");
  std::printf("\nhost speed: simulated controller megacycles per wall-clock "
              "second per mode\n(timed inside System::run; --jobs overlap "
              "makes per-mode wall time conservative)\n");

  const sim::ExperimentResult& rop = results[1];
  if (rop.sram_hit_rate > 0.0) {
    std::printf("\nROP: sram-hit-rate=%.3f lambda=%.2f beta=%.2f\n",
                rop.sram_hit_rate, rop.lambda, rop.beta);
  }

  if (!opt.stats_json.empty()) {
    // One document, full per-mode dumps keyed by mode name. Each embedded
    // document is itself the single-run schema.
    std::string doc = "{\n\"benchmark\": \"" +
                      telemetry::JsonWriter::escape(opt.benchmark) +
                      "\",\n\"modes\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string sub = results[i].to_json();
      while (!sub.empty() && (sub.back() == '\n' || sub.back() == ' ')) {
        sub.pop_back();
      }
      doc += '"';
      doc += kAllModes[i].name;
      doc += "\": ";
      doc += sub;
      doc += (i + 1 < results.size()) ? ",\n" : "\n";
    }
    doc += "}\n}\n";
    if (!write_file(opt.stats_json, doc)) return 1;
    std::printf("\nwrote per-mode stats JSON to %s\n", opt.stats_json.c_str());
  }
  return 0;
}

/// --shard-channels N: the manual system assembly below doesn't know about
/// per-channel registries, so sharded single runs route through
/// run_experiment, which does. Bit-identical results, same report.
int run_sharded_single(const Options& opt, sim::MemoryMode mode) {
  sim::ExperimentSpec spec = spec_from_options(opt, mode);
  const bool planned_sampling =
      spec.sampling.enabled && spec.sampling.jobs > 0;
  // Planned parallel sampling runs without telemetry sinks (the backbone
  // never executes a detailed cycle); --epoch with it is rejected in main.
  if (!planned_sampling && (!opt.stats_json.empty() || opt.epoch != 0)) {
    spec.telemetry.sampler.epoch_cycles =
        opt.epoch != 0 ? opt.epoch
                       : sim::make_memory_config(spec.ranks, spec.mode,
                                                 spec.refresh_mode)
                             .timings.tREFI;
  }
  std::printf("ropsim: mode=%s ranks=%u channels=%u shards=%u llc=%lluMiB "
              "refresh=%s\n",
              opt.mode.c_str(), spec.ranks, spec.channels,
              spec.shard_channels,
              static_cast<unsigned long long>(opt.llc_mb),
              opt.refresh_mode.c_str());
  const sim::ExperimentResult result = sim::run_experiment(spec);
  // A sampled run stopping at its CI target (or window cap) and a run cut
  // at --snapshot-stop-at are early finishes by design, not truncation.
  if (result.run.hit_cycle_limit && !result.sampling.enabled &&
      !result.interrupted) {
    std::fprintf(stderr, "warning: cycle limit reached before the target\n");
  }
  if (result.interrupted) {
    std::printf("checkpointed at CPU cycle %llu -> %s (resume with "
                "--snapshot-in)\n",
                static_cast<unsigned long long>(result.run.cpu_cycles),
                spec.snapshot.out.c_str());
  }
  if (result.sampling.enabled) {
    const auto& s = result.sampling;
    std::printf("\nsampled run: %llu windows (%llu measured + %llu "
                "functional CPU cycles)%s\n",
                static_cast<unsigned long long>(s.windows),
                static_cast<unsigned long long>(s.measured_cpu_cycles),
                static_cast<unsigned long long>(s.functional_cpu_cycles),
                s.ci_converged ? " — CI target reached" : "");
    if (s.placement != sim::SamplingPlacement::kChained) {
      std::printf("  placement %s, %u worker%s%s\n",
                  sim::sampling_placement_name(s.placement), s.workers,
                  s.workers == 1 ? "" : "s",
                  s.strata > 0
                      ? (", " + std::to_string(s.strata) + " strata").c_str()
                      : "");
    }
    std::printf("  IPC                 %.4f +/- %.4f (95%% CI)\n",
                s.ipc.mean, s.ipc.ci95_half);
    std::printf("  energy mJ/Mcycle    %.4f +/- %.4f\n",
                s.energy_mj_per_mcycle.mean, s.energy_mj_per_mcycle.ci95_half);
    std::printf("  refresh-blocked/cyc %.5f +/- %.5f\n",
                s.refresh_blocked_per_mem_cycle.mean,
                s.refresh_blocked_per_mem_cycle.ci95_half);
  }

  TextTable cores_table("per-core results");
  cores_table.set_header({"core", "workload", "instructions", "cycles",
                          "IPC", "mem reads", "writebacks"});
  for (std::size_t c = 0; c < result.run.cores.size(); ++c) {
    const auto& r = result.run.cores[c];
    cores_table.add_row({std::to_string(c), spec.benchmarks[c],
                         std::to_string(r.instructions),
                         std::to_string(r.cpu_cycles),
                         TextTable::fmt(r.ipc, 4),
                         std::to_string(r.mem_reads),
                         std::to_string(r.mem_writebacks)});
  }
  cores_table.print();

  std::printf("\nenergy: %.3f mJ total (refresh %.3f mJ); refreshes issued: "
              "%llu\n",
              result.total_energy_mj(), result.energy.refresh_mj,
              static_cast<unsigned long long>(result.refreshes));
  if (const auto* hist =
          result.stats.find_histogram("mem.read_latency_hist")) {
    std::printf("read latency: mean %.1f, p50 %.1f, p95 %.1f, p99 %.1f "
                "cycles\n",
                result.stats.find_scalar("mem.read_latency")->mean(),
                hist->percentile(50.0), hist->percentile(95.0),
                hist->percentile(99.0));
  }
  if (result.sram_hit_rate > 0.0) {
    std::printf("ROP: sram-hit-rate=%.3f lambda=%.2f beta=%.2f\n",
                result.sram_hit_rate, result.lambda, result.beta);
  }
  std::printf("wall: %.2f s (%.1f simulated controller Mcyc/s)\n",
              result.wall_seconds, result.sim_cycles_per_second() / 1e6);

  if (opt.dump_stats) {
    std::printf("\n--- raw statistics ---\n%s", result.stats.report().c_str());
  }
  if (!opt.stats_json.empty()) {
    if (!write_file(opt.stats_json, result.to_json())) return 1;
    std::printf("wrote stats JSON to %s\n", opt.stats_json.c_str());
  }
  return result.checker_violations == 0 ? 0 : 1;
}

/// `ropsim campaign SPEC.json --out DIR [...]`.
int run_campaign_cli(int argc, char** argv) {
  sim::CampaignOptions opts;
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      opts.out_dir = need(i);
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--no-resume") {
      opts.resume = false;
    } else if (arg == "--stop-after") {
      opts.stop_after = static_cast<std::size_t>(
          std::strtoull(need(i), nullptr, 10));
    } else if (arg == "--quiet") {
      opts.progress = false;
    } else if (arg == "--progress") {
      opts.progress_file = need(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (!arg.empty() && arg[0] != '-' && opts.spec_path.empty()) {
      opts.spec_path = arg;
    } else {
      std::fprintf(stderr, "unknown campaign flag: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (opts.spec_path.empty()) {
    std::fprintf(stderr, "campaign: missing SPEC.json argument\n");
    usage(2);
  }
  if (opts.out_dir.empty()) {
    std::fprintf(stderr, "campaign: missing --out DIR\n");
    usage(2);
  }

  std::string err;
  const auto summary = sim::run_campaign(opts, &err);
  if (!summary) {
    std::fprintf(stderr, "campaign failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("campaign: %zu/%zu cells complete (%zu ran, %zu resumed)\n",
              summary->completed_cells, summary->total_cells,
              summary->ran_cells, summary->skipped_cells);
  if (summary->complete) {
    std::printf("merged stats: %s\n", summary->merged_path.c_str());
    return 0;
  }
  std::printf("incomplete — re-run the same command to resume\n");
  // stop_after is a deliberate pause, not a failure.
  return opts.stop_after > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "campaign") == 0) {
    return run_campaign_cli(argc, argv);
  }
  Options opt = parse(argc, argv);
  if (opt.trace_format != "json" && opt.trace_format != "binary") {
    std::fprintf(stderr, "unknown --trace-format: %s\n",
                 opt.trace_format.c_str());
    usage(2);
  }
  if (opt.compare) {
    if (!opt.trace_path.empty()) {
      std::fprintf(stderr, "--compare does not support --trace\n");
      return 2;
    }
    if (!opt.trace_out.empty()) {
      std::fprintf(stderr, "--compare does not support --trace-out (six "
                           "modes, one timeline file); run modes singly\n");
      return 2;
    }
    return run_compare(opt);
  }
  const sim::MemoryMode mode = parse_mode(opt.mode);
  if (opt.sample_jobs > 0 && opt.loop != "sampled") {
    std::fprintf(stderr, "--sample-jobs requires --loop sampled\n");
    return 2;
  }
  if (opt.sample_strata > 0 && opt.sample_jobs == 0) {
    std::fprintf(stderr, "--sample-strata requires --sample-jobs >= 1\n");
    return 2;
  }
  if (opt.sample_jobs > 0 && opt.epoch != 0) {
    std::fprintf(stderr, "--sample-jobs runs without telemetry sinks; "
                         "--epoch is not supported\n");
    return 2;
  }
  // --progress alone routes through run_experiment too (the heartbeat loop
  // lives there), but must not tighten the loop-mode rules the other
  // routed features carry.
  const bool progress_only_routing =
      !opt.progress.empty() && opt.shard_channels == 0 && opt.channels <= 1 &&
      !snapshot_requested(opt) && opt.loop != "sampled";
  if (opt.shard_channels > 0 || opt.channels > 1 || snapshot_requested(opt) ||
      opt.loop == "sampled" || !opt.progress.empty()) {
    // Multi-channel, sharded, checkpointed, sampled, and heartbeat runs all
    // go through run_experiment (the manual assembly below is
    // single-channel and knows nothing about per-channel registries,
    // snapshots, sampling, or the progress writer).
    // --shard-channels 0 with --channels N is the serial multi-channel
    // reference the sharded loop is bit-compared against.
    if (!opt.trace_path.empty() || !opt.trace_out.empty()) {
      std::fprintf(stderr, "--channels/--shard-channels/--snapshot-*/"
                           "--progress/--loop sampled do not support --trace "
                           "or --trace-out\n");
      return 2;
    }
    if (!progress_only_routing && opt.loop != "event" &&
        opt.loop != "sampled" &&
        !(snapshot_requested(opt) && opt.loop == "frozen")) {
      std::fprintf(stderr, "--channels/--shard-channels require --loop "
                           "event\n");
      return 2;
    }
    if (snapshot_requested(opt) && opt.loop == "sampled") {
      std::fprintf(stderr, "--snapshot-* and --loop sampled are mutually "
                           "exclusive\n");
      return 2;
    }
    if ((opt.snapshot_stop > 0 || opt.snapshot_every > 0) &&
        opt.snapshot_out.empty()) {
      std::fprintf(stderr, "--snapshot-stop-at/--snapshot-every require "
                           "--snapshot-out\n");
      return 2;
    }
    if (opt.loop == "sampled" && opt.shard_channels > 0) {
      std::fprintf(stderr, "--loop sampled requires the serial loop (no "
                           "--shard-channels)\n");
      return 2;
    }
    return run_sharded_single(opt, mode);
  }

  // Workloads: a wlN mix, a trace file, or N copies of one profile.
  std::vector<std::string> benchmarks;
  std::vector<std::unique_ptr<workload::TraceSource>> sources;
  std::vector<workload::TraceSource*> source_ptrs;
  if (!opt.trace_path.empty()) {
    benchmarks.assign(opt.cores, opt.trace_path);
    for (std::uint32_t c = 0; c < opt.cores; ++c) {
      sources.push_back(std::make_unique<workload::MemoryTrace>(
          workload::read_trace_file(opt.trace_path)));
    }
  } else if (is_workload_mix(opt.benchmark)) {
    benchmarks = workload::workload_mix(opt.benchmark[2] - '0');
    opt.cores = 4;
    if (opt.ranks < 4) opt.ranks = 4;
    for (std::size_t c = 0; c < benchmarks.size(); ++c) {
      sources.push_back(std::make_unique<workload::SyntheticTrace>(
          workload::spec_profile(benchmarks[c], c)));
    }
  } else {
    benchmarks.assign(opt.cores, opt.benchmark);
    for (std::uint32_t c = 0; c < opt.cores; ++c) {
      sources.push_back(std::make_unique<workload::SyntheticTrace>(
          workload::spec_profile(opt.benchmark, c)));
    }
  }
  for (auto& s : sources) source_ptrs.push_back(s.get());

  // System assembly.
  StatRegistry stats;
  const mem::MemoryConfig mem_cfg =
      sim::make_memory_config(opt.ranks, mode, parse_refresh(opt.refresh_mode));
  mem::MemorySystem memory(mem_cfg, &stats);
  std::shared_ptr<telemetry::TraceSink> trace;
  if (!opt.trace_out.empty()) {
    telemetry::TraceConfig trace_cfg;
    trace_cfg.categories = parse_categories(opt.trace_cats);
    trace_cfg.tck_ps = memory.config().timings.tCK_ps;
    trace = std::make_shared<telemetry::TraceSink>(trace_cfg);
    memory.set_trace(trace.get());
  }
  std::unique_ptr<check::SimChecker> checker;
  if (opt.check || sim::checker_enabled_by_environment()) {
    checker = std::make_unique<check::SimChecker>();
    checker->attach(memory);
    if (trace) checker->set_trace(trace.get());
  }
  std::vector<std::unique_ptr<engine::RopEngine>> engines;
  if (mode == sim::MemoryMode::kRop) {
    engine::RopConfig rc;
    rc.buffer_lines = opt.buffer_lines;
    rc.window_multiple = opt.window_multiple;
    rc.training_refreshes = opt.training;
    for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
      engines.push_back(std::make_unique<engine::RopEngine>(
          rc, memory.controller(ch), memory.address_map(), &stats));
    }
  }
  cpu::SystemConfig sys_cfg =
      sim::make_system_config(opt.llc_mb << 20, opt.rank_partition);
  sys_cfg.loop = parse_loop(opt.loop);
  cpu::System system(sys_cfg, memory, source_ptrs);
  if (checker) {
    for (const auto& eng : engines) checker->watch(*eng);
  }
  // Sampler last: an empty counter list snapshots everything registered,
  // which is complete only once the whole system is assembled.
  std::shared_ptr<telemetry::EpochSampler> sampler;
  const std::uint64_t epoch_cycles =
      opt.epoch != 0 ? opt.epoch
                     : (!opt.stats_json.empty()
                            ? memory.config().timings.tREFI
                            : 0);
  if (epoch_cycles != 0) {
    telemetry::SamplerConfig sampler_cfg;
    sampler_cfg.epoch_cycles = epoch_cycles;
    sampler = std::make_shared<telemetry::EpochSampler>(sampler_cfg, &stats);
    memory.set_sampler(sampler.get());
  }

  std::printf("ropsim: mode=%s ranks=%u llc=%lluMiB refresh=%s cores=%u\n",
              opt.mode.c_str(), opt.ranks,
              static_cast<unsigned long long>(opt.llc_mb),
              opt.refresh_mode.c_str(), opt.cores);
  const cpu::RunResult run =
      system.run(opt.instructions, opt.instructions * 256);
  if (run.hit_cycle_limit) {
    std::fprintf(stderr, "warning: cycle limit reached before the target\n");
  }

  TextTable cores_table("per-core results");
  cores_table.set_header({"core", "workload", "instructions", "cycles",
                          "IPC", "mem reads", "writebacks"});
  for (std::size_t c = 0; c < run.cores.size(); ++c) {
    const auto& r = run.cores[c];
    cores_table.add_row({std::to_string(c), benchmarks[c],
                         std::to_string(r.instructions),
                         std::to_string(r.cpu_cycles),
                         TextTable::fmt(r.ipc, 4),
                         std::to_string(r.mem_reads),
                         std::to_string(r.mem_writebacks)});
  }
  cores_table.print();

  // Energy report.
  const energy::DramPowerModel power(energy::DramEnergyParams{},
                                     memory.config().timings);
  energy::EnergyBreakdown total;
  for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
    const auto e = power.compute(memory.controller(ch).channel());
    total.background_mj += e.background_mj;
    total.act_pre_mj += e.act_pre_mj;
    total.read_mj += e.read_mj;
    total.write_mj += e.write_mj;
    total.refresh_mj += e.refresh_mj;
    total.io_mj += e.io_mj;
  }
  if (!engines.empty()) {
    const auto sram = energy::SramEnergyParams::for_capacity(opt.buffer_lines);
    const double tck =
        static_cast<double>(memory.config().timings.tCK_ps) * 1e-12;
    for (const auto& eng : engines) {
      const auto& bs = eng->buffer().stats();
      total.sram_mj += sram.energy_mj(
          bs.lookups + bs.fills,
          static_cast<double>(eng->sram_on_cycles()) * tck);
    }
  }
  TextTable energy_table("memory energy (mJ)");
  energy_table.set_header({"background", "act/pre", "read", "write",
                           "refresh", "io", "sram", "total"});
  energy_table.add_row(
      {TextTable::fmt(total.background_mj, 3), TextTable::fmt(total.act_pre_mj, 3),
       TextTable::fmt(total.read_mj, 3), TextTable::fmt(total.write_mj, 3),
       TextTable::fmt(total.refresh_mj, 3), TextTable::fmt(total.io_mj, 3),
       TextTable::fmt(total.sram_mj, 4), TextTable::fmt(total.total_mj(), 3)});
  energy_table.print();

  // Refresh report.
  std::printf("\nrefreshes issued: %llu (postponement-average preserved); "
              "bank refreshes: %llu; pausing segments: %llu\n",
              static_cast<unsigned long long>(
                  stats.counter_value("mem.refreshes")),
              static_cast<unsigned long long>(
                  stats.counter_value("mem.bank_refreshes")),
              static_cast<unsigned long long>(
                  memory.controller(0).channel().events().refresh_segments));
  if (const auto* hist = stats.find_histogram("mem.read_latency_hist")) {
    std::printf("read latency: mean %.1f, p50 %.1f, p95 %.1f, p99 %.1f "
                "cycles\n",
                stats.find_scalar("mem.read_latency")->mean(),
                hist->percentile(50.0), hist->percentile(95.0),
                hist->percentile(99.0));
  }
  const auto& bs = memory.controller(0).blocking_stats();
  std::printf("non-blocking refreshes (1x tRFC window): %.1f%%; mean blocked "
              "per blocking refresh: %.2f\n",
              100.0 * bs.non_blocking_fraction(0),
              bs.mean_blocked_per_blocking_refresh(0));

  if (!engines.empty()) {
    const auto& eng = *engines.front();
    std::printf("\nROP: lambda=%.2f beta=%.2f buffer-hit-rate=%.3f "
                "rounds=%llu fills=%llu\n",
                eng.lambda(), eng.beta(), eng.overall_hit_rate(),
                static_cast<unsigned long long>(eng.buffer().stats().rounds),
                static_cast<unsigned long long>(
                    stats.counter_value("rop.buffer_fills")));
  }

  if (opt.dump_stats) {
    std::printf("\n--- raw statistics ---\n%s", stats.report().c_str());
  }

  int exit_code = 0;
  if (checker) {
    for (std::size_t c = 0; c < run.cores.size(); ++c) {
      checker->audit_cpi(static_cast<std::uint32_t>(c),
                         run.cores[c].cpu_cycles,
                         run.cores[c].cpi_stack_sum());
    }
    checker->finalize();
    std::printf("\n%s\n", checker->summary().c_str());
    if (!checker->ok()) exit_code = 1;
  }

  if (trace) {
    std::ofstream os(opt.trace_out, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   opt.trace_out.c_str());
      return 1;
    }
    if (opt.trace_format == "binary") {
      trace->write_binary(os);
    } else {
      trace->write_json(os);
    }
    std::printf("\nwrote %s trace to %s (%zu events, %llu dropped)\n",
                opt.trace_format.c_str(), opt.trace_out.c_str(),
                trace->size(),
                static_cast<unsigned long long>(trace->dropped()));
  }

  if (!opt.stats_json.empty()) {
    // Assemble the same document run_experiment-based callers get from
    // ExperimentResult::to_json, from the manually-built system.
    sim::ExperimentResult result;
    result.run = run;
    result.energy = total;
    result.stats = stats;
    result.cpu_ratio = sys_cfg.cpu_ratio;
    result.epochs = sampler;
    result.trace = trace;
    if (checker) {
      result.checker_ticks = checker->ticks_checked();
      result.checker_violations = checker->violation_count();
    }
    if (!engines.empty()) {
      double rate_sum = 0.0;
      for (const auto& eng : engines) rate_sum += eng->overall_hit_rate();
      result.sram_hit_rate = rate_sum / static_cast<double>(engines.size());
      result.lambda = engines.front()->lambda();
      result.beta = engines.front()->beta();
    }
    const std::size_t num_windows =
        mem::RefreshBlockingStats::kExaminedMultiples.size();
    result.nonblocking_fraction.assign(num_windows, 0.0);
    result.mean_blocked_per_blocking_refresh.assign(num_windows, 0.0);
    result.max_blocked.assign(num_windows, 0);
    for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
      const auto& b = memory.controller(ch).blocking_stats();
      result.refreshes += b.total_refreshes();
      for (std::size_t k = 0; k < num_windows; ++k) {
        result.nonblocking_fraction[k] += b.non_blocking_fraction(k);
        result.mean_blocked_per_blocking_refresh[k] +=
            b.mean_blocked_per_blocking_refresh(k);
        result.max_blocked[k] =
            std::max(result.max_blocked[k], b.max_blocked(k));
      }
    }
    if (memory.num_channels() > 1) {
      for (std::size_t k = 0; k < num_windows; ++k) {
        result.nonblocking_fraction[k] /= memory.num_channels();
        result.mean_blocked_per_blocking_refresh[k] /= memory.num_channels();
      }
    }
    if (!write_file(opt.stats_json, result.to_json())) return 1;
    std::printf("wrote stats JSON to %s\n", opt.stats_json.c_str());
  }
  return exit_code;
}
