#!/usr/bin/env python3
"""CI gate: validate a ropsim --stats-json document against the export
schema (telemetry/stats_json.h, docs/OBSERVABILITY.md).

Usage:
    check_stats_schema.py STATS_JSON [--require-epochs]
                          [--require-counter NAME]... [--require-sampling]
                          [--require-attribution]

Checks, per document:
  - top-level sections present: run, energy_mj, counters, scalars,
    histograms, epochs, refresh_blocking, checker
  - every counter value is a non-negative integer
  - every scalar has count/sum/mean/min/max, and min/max are null exactly
    when count == 0 (the "no samples" encoding)
  - every histogram has count/mean/bucket_width/buckets/p50/p95/p99, the
    bucket counts sum to `count`, and the percentiles are monotone
  - with --require-epochs: the epochs section is non-null, has at least one
    epoch, and every series has one delta per epoch
  - with --require-counter NAME: NAME exists in the counters section
  - the sampling section (schema_version 2, from --loop sampled), when
    non-null: windows/measured/functional cycle counts are non-negative
    integers, and each estimate (ipc, energy_mj_per_mcycle,
    refresh_blocked_per_mem_cycle) carries mean/stderr/ci95_half with
    ci95_half >= stderr >= 0; documents at schema_version >= 4
    additionally carry placement ("chained" | "uniform" | "stratified"),
    workers, and strata: "chained" means the sequential loop (workers and
    strata both 0), "uniform"/"stratified" mean the parallel planner ran
    (workers >= 1), and strata >= 1 exactly when placement is
    "stratified"
  - with --require-sampling: the sampling section is non-null with at
    least one window, and the document declares schema_version >= 2
  - the attribution section (schema_version 3), when present: cpu_ratio is
    a positive integer, every core's cpi_stack carries exactly the 13
    canonical categories as non-negative integers summing bit-exactly to
    that core's cycles, and rop_recovered_cycles plus the four per-cause
    requests.blocked_*_cycles totals are non-negative integers
  - the epochs section's dropped_epochs (when present) is a non-negative
    integer equal to first_epoch_index
  - with --require-attribution: the attribution section is present with at
    least one core, and the document declares schema_version >= 3

The file may also be a --compare document ({"benchmark", "modes": {...}})
or a bench sidecar (an object whose values are stats documents); every
embedded document is validated.

Exit status: 0 when every document passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import sys

REQUIRED_SECTIONS = ["run", "energy_mj", "counters", "scalars",
                     "histograms", "epochs", "refresh_blocking", "checker"]


def fail(errors, where, msg):
    errors.append(f"{where}: {msg}")


SAMPLING_ESTIMATES = ["ipc", "energy_mj_per_mcycle",
                      "refresh_blocked_per_mem_cycle"]

# Canonical CPI-stack categories, in export order (telemetry/attribution.h).
CPI_KEYS = ["retire", "stall_mlp", "stall_port", "mem_queue", "mem_bank",
            "mem_cas", "mem_bus", "refresh_rank", "refresh_bank",
            "refresh_subarray", "refresh_pause", "rop_sram", "other"]

REQUEST_BLOCKED_KEYS = ["blocked_rank_cycles", "blocked_bank_cycles",
                        "blocked_subarray_cycles", "blocked_pause_cycles"]


def check_attribution(doc, where, errors, require_attribution):
    attr = doc.get("attribution")
    if attr is None:
        if require_attribution:
            fail(errors, where,
                 "attribution section missing but --require-attribution set")
        return
    if require_attribution and doc.get("schema_version", 0) < 3:
        fail(errors, where,
             f"attribution document declares schema_version "
             f"{doc.get('schema_version')!r}, expected >= 3")
    ratio = attr.get("cpu_ratio")
    if not isinstance(ratio, int) or ratio < 1:
        fail(errors, where,
             f"attribution cpu_ratio is not a positive integer: {ratio!r}")
    cores = attr.get("cores")
    if not isinstance(cores, list):
        fail(errors, where, "attribution 'cores' is not an array")
        return
    if require_attribution and not cores:
        fail(errors, where, "attribution has zero cores")
    for entry in cores:
        core = entry.get("core")
        cyc = entry.get("cycles")
        stack = entry.get("cpi_stack")
        label = f"attribution core {core!r}"
        if not isinstance(cyc, int) or cyc < 0:
            fail(errors, where,
                 f"{label} cycles is not a non-negative integer: {cyc!r}")
            continue
        if not isinstance(stack, dict):
            fail(errors, where, f"{label} has no cpi_stack object")
            continue
        if sorted(stack) != sorted(CPI_KEYS):
            fail(errors, where,
                 f"{label} cpi_stack keys {sorted(stack)} != canonical "
                 f"category set")
            continue
        bad = [k for k, v in stack.items()
               if not isinstance(v, int) or v < 0]
        if bad:
            fail(errors, where,
                 f"{label} cpi_stack has non-integer/negative entries: {bad}")
            continue
        total = sum(stack.values())
        if total != cyc:
            fail(errors, where,
                 f"{label} cpi_stack sums to {total} but cycles = {cyc} "
                 f"(delta {total - cyc:+d})")
    rec = attr.get("rop_recovered_cycles")
    if not isinstance(rec, int) or rec < 0:
        fail(errors, where,
             f"attribution rop_recovered_cycles is not a non-negative "
             f"integer: {rec!r}")
    requests = attr.get("requests")
    if not isinstance(requests, dict):
        fail(errors, where, "attribution 'requests' is not an object")
        return
    for key in REQUEST_BLOCKED_KEYS:
        v = requests.get(key)
        if not isinstance(v, int) or v < 0:
            fail(errors, where,
                 f"attribution requests '{key}' is not a non-negative "
                 f"integer: {v!r}")


def check_sampling(doc, where, errors, require_sampling):
    sampling = doc.get("sampling")
    if sampling is None:
        if require_sampling:
            fail(errors, where,
                 "sampling section is null but --require-sampling set")
        return
    if require_sampling and doc.get("schema_version", 0) < 2:
        fail(errors, where,
             f"sampled document declares schema_version "
             f"{doc.get('schema_version')!r}, expected >= 2")
    for field in ("windows", "measured_cpu_cycles", "functional_cpu_cycles"):
        v = sampling.get(field)
        if not isinstance(v, int) or v < 0:
            fail(errors, where,
                 f"sampling '{field}' is not a non-negative integer: {v!r}")
    if not isinstance(sampling.get("ci_converged"), bool):
        fail(errors, where, "sampling 'ci_converged' is not a boolean")
    if require_sampling and sampling.get("windows", 0) < 1:
        fail(errors, where, "sampled document has zero measurement windows")
    if doc.get("schema_version", 0) >= 4:
        placement = sampling.get("placement")
        workers = sampling.get("workers")
        strata = sampling.get("strata")
        if placement not in ("chained", "uniform", "stratified"):
            fail(errors, where,
                 f"sampling 'placement' is not one of "
                 f"chained/uniform/stratified: {placement!r}")
        for field, v in (("workers", workers), ("strata", strata)):
            if not isinstance(v, int) or v < 0:
                fail(errors, where,
                     f"sampling '{field}' is not a non-negative integer: "
                     f"{v!r}")
        if isinstance(workers, int) and isinstance(strata, int):
            if placement == "chained" and (workers != 0 or strata != 0):
                fail(errors, where,
                     f"chained placement must have workers == strata == 0, "
                     f"got workers={workers} strata={strata}")
            if placement in ("uniform", "stratified") and workers < 1:
                fail(errors, where,
                     f"{placement} placement needs workers >= 1, got "
                     f"{workers}")
            if placement == "uniform" and strata != 0:
                fail(errors, where,
                     f"uniform placement must have strata == 0, got "
                     f"{strata}")
            if placement == "stratified" and strata < 1:
                fail(errors, where,
                     f"stratified placement needs strata >= 1, got "
                     f"{strata}")
    for name in SAMPLING_ESTIMATES:
        est = sampling.get(name)
        if not isinstance(est, dict):
            fail(errors, where, f"sampling estimate '{name}' missing")
            continue
        for field in ("mean", "stderr", "ci95_half"):
            if not isinstance(est.get(field), (int, float)):
                fail(errors, where,
                     f"sampling '{name}.{field}' is not a number: "
                     f"{est.get(field)!r}")
                break
        else:
            if not (est["ci95_half"] >= est["stderr"] >= 0):
                fail(errors, where,
                     f"sampling '{name}' violates ci95_half >= stderr >= 0: "
                     f"{est['ci95_half']}, {est['stderr']}")


def check_document(doc, where, errors, require_epochs, require_counters,
                   require_sampling=False, require_attribution=False):
    for section in REQUIRED_SECTIONS:
        if section not in doc:
            fail(errors, where, f"missing section '{section}'")
    if errors:
        return

    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, where,
                 f"counter '{name}' is not a non-negative integer: {value!r}")
    for name in require_counters:
        if name not in doc["counters"]:
            fail(errors, where, f"required counter '{name}' missing")

    for name, s in doc["scalars"].items():
        for field in ("count", "sum", "mean", "min", "max"):
            if field not in s:
                fail(errors, where, f"scalar '{name}' missing '{field}'")
                break
        else:
            empty = s["count"] == 0
            for field in ("min", "max"):
                if empty and s[field] is not None:
                    fail(errors, where,
                         f"scalar '{name}' has count 0 but {field} is "
                         f"{s[field]!r} (must be null)")
                if not empty and s[field] is None:
                    fail(errors, where,
                         f"scalar '{name}' has samples but {field} is null")

    for name, h in doc["histograms"].items():
        for field in ("count", "mean", "bucket_width", "buckets",
                      "p50", "p95", "p99"):
            if field not in h:
                fail(errors, where, f"histogram '{name}' missing '{field}'")
                break
        else:
            if not isinstance(h["buckets"], list) or not h["buckets"]:
                fail(errors, where, f"histogram '{name}' has no buckets")
            elif sum(h["buckets"]) != h["count"]:
                fail(errors, where,
                     f"histogram '{name}' buckets sum to "
                     f"{sum(h['buckets'])}, count says {h['count']}")
            if not (h["p50"] <= h["p95"] <= h["p99"]):
                fail(errors, where,
                     f"histogram '{name}' percentiles not monotone: "
                     f"{h['p50']}, {h['p95']}, {h['p99']}")

    epochs = doc["epochs"]
    if require_epochs and epochs is None:
        fail(errors, where, "epochs section is null but --require-epochs set")
    if epochs is not None:
        for field in ("epoch_cycles", "first_epoch_index", "end_cycles",
                      "series"):
            if field not in epochs:
                fail(errors, where, f"epochs missing '{field}'")
                return
        n = len(epochs["end_cycles"])
        if require_epochs and n == 0:
            fail(errors, where, "epochs present but empty")
        if require_epochs and not epochs["series"]:
            fail(errors, where, "epochs has no series")
        for name, deltas in epochs["series"].items():
            if len(deltas) != n:
                fail(errors, where,
                     f"series '{name}' has {len(deltas)} deltas for "
                     f"{n} epochs")
        ends = epochs["end_cycles"]
        if any(b <= a for a, b in zip(ends, ends[1:])):
            fail(errors, where, "epoch end_cycles not strictly increasing")
        if "dropped_epochs" in epochs:
            dropped = epochs["dropped_epochs"]
            if not isinstance(dropped, int) or dropped < 0:
                fail(errors, where,
                     f"epochs dropped_epochs is not a non-negative integer: "
                     f"{dropped!r}")
            elif dropped != epochs["first_epoch_index"]:
                fail(errors, where,
                     f"epochs dropped_epochs ({dropped}) != "
                     f"first_epoch_index ({epochs['first_epoch_index']})")

    check_sampling(doc, where, errors, require_sampling)
    check_attribution(doc, where, errors, require_attribution)


def collect_documents(obj, where):
    """Yield (document, label) for a stats doc, a --compare doc, or a
    bench sidecar."""
    if "counters" in obj:
        yield obj, where
    elif "modes" in obj:
        for mode, doc in obj["modes"].items():
            yield doc, f"{where}[{mode}]"
    else:
        for label, doc in obj.items():
            if isinstance(doc, dict) and "counters" in doc:
                yield doc, f"{where}[{label}]"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="ropsim --stats-json output (or a "
                                      "--compare / sidecar document)")
    parser.add_argument("--require-epochs", action="store_true",
                        help="fail unless a non-empty epoch series is present")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME", help="fail unless NAME is exported")
    parser.add_argument("--require-sampling", action="store_true",
                        help="fail unless a non-null sampling block with at "
                             "least one window is present (schema_version 2)")
    parser.add_argument("--require-attribution", action="store_true",
                        help="fail unless an attribution block with at least "
                             "one core is present (schema_version 3)")
    args = parser.parse_args()

    with open(args.stats) as f:
        obj = json.load(f)

    errors = []
    n_docs = 0
    for doc, where in collect_documents(obj, args.stats):
        n_docs += 1
        check_document(doc, where, errors, args.require_epochs,
                       args.require_counter, args.require_sampling,
                       args.require_attribution)
    if n_docs == 0:
        errors.append(f"{args.stats}: no stats documents found")

    for e in errors:
        print(f"FAIL {e}")
    if not errors:
        print(f"ok   {args.stats}: {n_docs} document(s) conform to the "
              f"stats schema")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
