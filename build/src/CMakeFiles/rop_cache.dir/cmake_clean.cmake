file(REMOVE_RECURSE
  "CMakeFiles/rop_cache.dir/cache/llc.cpp.o"
  "CMakeFiles/rop_cache.dir/cache/llc.cpp.o.d"
  "librop_cache.a"
  "librop_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
