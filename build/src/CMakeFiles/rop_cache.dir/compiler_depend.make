# Empty compiler generated dependencies file for rop_cache.
# This may be replaced when dependencies are built.
