file(REMOVE_RECURSE
  "librop_cache.a"
)
