file(REMOVE_RECURSE
  "librop_mem.a"
)
