# Empty compiler generated dependencies file for rop_mem.
# This may be replaced when dependencies are built.
