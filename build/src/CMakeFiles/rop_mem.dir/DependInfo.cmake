
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cpp" "src/CMakeFiles/rop_mem.dir/mem/address_map.cpp.o" "gcc" "src/CMakeFiles/rop_mem.dir/mem/address_map.cpp.o.d"
  "/root/repo/src/mem/controller.cpp" "src/CMakeFiles/rop_mem.dir/mem/controller.cpp.o" "gcc" "src/CMakeFiles/rop_mem.dir/mem/controller.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/CMakeFiles/rop_mem.dir/mem/memory_system.cpp.o" "gcc" "src/CMakeFiles/rop_mem.dir/mem/memory_system.cpp.o.d"
  "/root/repo/src/mem/refresh_manager.cpp" "src/CMakeFiles/rop_mem.dir/mem/refresh_manager.cpp.o" "gcc" "src/CMakeFiles/rop_mem.dir/mem/refresh_manager.cpp.o.d"
  "/root/repo/src/mem/scheduler.cpp" "src/CMakeFiles/rop_mem.dir/mem/scheduler.cpp.o" "gcc" "src/CMakeFiles/rop_mem.dir/mem/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rop_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
