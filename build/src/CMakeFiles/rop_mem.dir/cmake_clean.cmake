file(REMOVE_RECURSE
  "CMakeFiles/rop_mem.dir/mem/address_map.cpp.o"
  "CMakeFiles/rop_mem.dir/mem/address_map.cpp.o.d"
  "CMakeFiles/rop_mem.dir/mem/controller.cpp.o"
  "CMakeFiles/rop_mem.dir/mem/controller.cpp.o.d"
  "CMakeFiles/rop_mem.dir/mem/memory_system.cpp.o"
  "CMakeFiles/rop_mem.dir/mem/memory_system.cpp.o.d"
  "CMakeFiles/rop_mem.dir/mem/refresh_manager.cpp.o"
  "CMakeFiles/rop_mem.dir/mem/refresh_manager.cpp.o.d"
  "CMakeFiles/rop_mem.dir/mem/scheduler.cpp.o"
  "CMakeFiles/rop_mem.dir/mem/scheduler.cpp.o.d"
  "librop_mem.a"
  "librop_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
