# Empty dependencies file for rop_common.
# This may be replaced when dependencies are built.
