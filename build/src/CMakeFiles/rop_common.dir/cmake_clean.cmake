file(REMOVE_RECURSE
  "CMakeFiles/rop_common.dir/common/stats.cpp.o"
  "CMakeFiles/rop_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/rop_common.dir/common/table.cpp.o"
  "CMakeFiles/rop_common.dir/common/table.cpp.o.d"
  "librop_common.a"
  "librop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
