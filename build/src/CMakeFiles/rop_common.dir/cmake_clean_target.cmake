file(REMOVE_RECURSE
  "librop_common.a"
)
