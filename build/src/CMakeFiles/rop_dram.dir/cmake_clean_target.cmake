file(REMOVE_RECURSE
  "librop_dram.a"
)
