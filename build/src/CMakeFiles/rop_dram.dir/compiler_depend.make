# Empty compiler generated dependencies file for rop_dram.
# This may be replaced when dependencies are built.
