file(REMOVE_RECURSE
  "CMakeFiles/rop_dram.dir/dram/bank.cpp.o"
  "CMakeFiles/rop_dram.dir/dram/bank.cpp.o.d"
  "CMakeFiles/rop_dram.dir/dram/channel.cpp.o"
  "CMakeFiles/rop_dram.dir/dram/channel.cpp.o.d"
  "CMakeFiles/rop_dram.dir/dram/rank.cpp.o"
  "CMakeFiles/rop_dram.dir/dram/rank.cpp.o.d"
  "CMakeFiles/rop_dram.dir/dram/timing.cpp.o"
  "CMakeFiles/rop_dram.dir/dram/timing.cpp.o.d"
  "librop_dram.a"
  "librop_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
