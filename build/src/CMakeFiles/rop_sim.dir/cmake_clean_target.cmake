file(REMOVE_RECURSE
  "librop_sim.a"
)
