file(REMOVE_RECURSE
  "CMakeFiles/rop_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/rop_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/rop_sim.dir/sim/presets.cpp.o"
  "CMakeFiles/rop_sim.dir/sim/presets.cpp.o.d"
  "librop_sim.a"
  "librop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
