# Empty compiler generated dependencies file for rop_sim.
# This may be replaced when dependencies are built.
