file(REMOVE_RECURSE
  "CMakeFiles/rop_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/rop_cpu.dir/cpu/core.cpp.o.d"
  "CMakeFiles/rop_cpu.dir/cpu/system.cpp.o"
  "CMakeFiles/rop_cpu.dir/cpu/system.cpp.o.d"
  "librop_cpu.a"
  "librop_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
