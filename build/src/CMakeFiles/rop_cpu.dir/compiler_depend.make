# Empty compiler generated dependencies file for rop_cpu.
# This may be replaced when dependencies are built.
