file(REMOVE_RECURSE
  "librop_cpu.a"
)
