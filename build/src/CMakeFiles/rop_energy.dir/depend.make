# Empty dependencies file for rop_energy.
# This may be replaced when dependencies are built.
