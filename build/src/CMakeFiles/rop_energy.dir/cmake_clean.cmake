file(REMOVE_RECURSE
  "CMakeFiles/rop_energy.dir/energy/dram_power.cpp.o"
  "CMakeFiles/rop_energy.dir/energy/dram_power.cpp.o.d"
  "librop_energy.a"
  "librop_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
