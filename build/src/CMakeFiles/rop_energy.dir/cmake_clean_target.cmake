file(REMOVE_RECURSE
  "librop_energy.a"
)
