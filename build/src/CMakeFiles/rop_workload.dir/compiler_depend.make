# Empty compiler generated dependencies file for rop_workload.
# This may be replaced when dependencies are built.
