file(REMOVE_RECURSE
  "CMakeFiles/rop_workload.dir/workload/spec_profiles.cpp.o"
  "CMakeFiles/rop_workload.dir/workload/spec_profiles.cpp.o.d"
  "CMakeFiles/rop_workload.dir/workload/synthetic.cpp.o"
  "CMakeFiles/rop_workload.dir/workload/synthetic.cpp.o.d"
  "CMakeFiles/rop_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/rop_workload.dir/workload/trace_io.cpp.o.d"
  "librop_workload.a"
  "librop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
