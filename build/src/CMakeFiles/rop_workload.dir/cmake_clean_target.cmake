file(REMOVE_RECURSE
  "librop_workload.a"
)
