
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rop/pattern_profiler.cpp" "src/CMakeFiles/rop_rop.dir/rop/pattern_profiler.cpp.o" "gcc" "src/CMakeFiles/rop_rop.dir/rop/pattern_profiler.cpp.o.d"
  "/root/repo/src/rop/prediction_table.cpp" "src/CMakeFiles/rop_rop.dir/rop/prediction_table.cpp.o" "gcc" "src/CMakeFiles/rop_rop.dir/rop/prediction_table.cpp.o.d"
  "/root/repo/src/rop/prefetcher.cpp" "src/CMakeFiles/rop_rop.dir/rop/prefetcher.cpp.o" "gcc" "src/CMakeFiles/rop_rop.dir/rop/prefetcher.cpp.o.d"
  "/root/repo/src/rop/rop_engine.cpp" "src/CMakeFiles/rop_rop.dir/rop/rop_engine.cpp.o" "gcc" "src/CMakeFiles/rop_rop.dir/rop/rop_engine.cpp.o.d"
  "/root/repo/src/rop/sram_buffer.cpp" "src/CMakeFiles/rop_rop.dir/rop/sram_buffer.cpp.o" "gcc" "src/CMakeFiles/rop_rop.dir/rop/sram_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
