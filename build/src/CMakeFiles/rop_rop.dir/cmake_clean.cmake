file(REMOVE_RECURSE
  "CMakeFiles/rop_rop.dir/rop/pattern_profiler.cpp.o"
  "CMakeFiles/rop_rop.dir/rop/pattern_profiler.cpp.o.d"
  "CMakeFiles/rop_rop.dir/rop/prediction_table.cpp.o"
  "CMakeFiles/rop_rop.dir/rop/prediction_table.cpp.o.d"
  "CMakeFiles/rop_rop.dir/rop/prefetcher.cpp.o"
  "CMakeFiles/rop_rop.dir/rop/prefetcher.cpp.o.d"
  "CMakeFiles/rop_rop.dir/rop/rop_engine.cpp.o"
  "CMakeFiles/rop_rop.dir/rop/rop_engine.cpp.o.d"
  "CMakeFiles/rop_rop.dir/rop/sram_buffer.cpp.o"
  "CMakeFiles/rop_rop.dir/rop/sram_buffer.cpp.o.d"
  "librop_rop.a"
  "librop_rop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_rop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
