file(REMOVE_RECURSE
  "librop_rop.a"
)
