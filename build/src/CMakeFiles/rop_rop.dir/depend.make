# Empty dependencies file for rop_rop.
# This may be replaced when dependencies are built.
