# Empty dependencies file for bench_comparison_schemes.
# This may be replaced when dependencies are built.
