file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_schemes.dir/bench_comparison_schemes.cpp.o"
  "CMakeFiles/bench_comparison_schemes.dir/bench_comparison_schemes.cpp.o.d"
  "bench_comparison_schemes"
  "bench_comparison_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
