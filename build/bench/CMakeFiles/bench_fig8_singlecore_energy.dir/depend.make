# Empty dependencies file for bench_fig8_singlecore_energy.
# This may be replaced when dependencies are built.
