
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_event_coverage.cpp" "bench/CMakeFiles/bench_fig4_event_coverage.dir/bench_fig4_event_coverage.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_event_coverage.dir/bench_fig4_event_coverage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_rop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
