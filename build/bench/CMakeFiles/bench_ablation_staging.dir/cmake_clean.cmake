file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_staging.dir/bench_ablation_staging.cpp.o"
  "CMakeFiles/bench_ablation_staging.dir/bench_ablation_staging.cpp.o.d"
  "bench_ablation_staging"
  "bench_ablation_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
