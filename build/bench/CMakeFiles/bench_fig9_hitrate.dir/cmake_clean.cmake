file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hitrate.dir/bench_fig9_hitrate.cpp.o"
  "CMakeFiles/bench_fig9_hitrate.dir/bench_fig9_hitrate.cpp.o.d"
  "bench_fig9_hitrate"
  "bench_fig9_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
