# Empty dependencies file for bench_fig9_hitrate.
# This may be replaced when dependencies are built.
