file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lambda_beta.dir/bench_table1_lambda_beta.cpp.o"
  "CMakeFiles/bench_table1_lambda_beta.dir/bench_table1_lambda_beta.cpp.o.d"
  "bench_table1_lambda_beta"
  "bench_table1_lambda_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lambda_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
