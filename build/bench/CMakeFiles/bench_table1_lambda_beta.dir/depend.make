# Empty dependencies file for bench_table1_lambda_beta.
# This may be replaced when dependencies are built.
