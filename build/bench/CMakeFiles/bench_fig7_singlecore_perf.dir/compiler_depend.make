# Empty compiler generated dependencies file for bench_fig7_singlecore_perf.
# This may be replaced when dependencies are built.
