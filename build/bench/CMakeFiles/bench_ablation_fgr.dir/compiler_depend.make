# Empty compiler generated dependencies file for bench_ablation_fgr.
# This may be replaced when dependencies are built.
