file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fgr.dir/bench_ablation_fgr.cpp.o"
  "CMakeFiles/bench_ablation_fgr.dir/bench_ablation_fgr.cpp.o.d"
  "bench_ablation_fgr"
  "bench_ablation_fgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
