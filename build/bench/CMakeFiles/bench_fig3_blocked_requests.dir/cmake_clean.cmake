file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_blocked_requests.dir/bench_fig3_blocked_requests.cpp.o"
  "CMakeFiles/bench_fig3_blocked_requests.dir/bench_fig3_blocked_requests.cpp.o.d"
  "bench_fig3_blocked_requests"
  "bench_fig3_blocked_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blocked_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
