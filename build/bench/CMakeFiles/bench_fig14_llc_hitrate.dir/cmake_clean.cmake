file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_llc_hitrate.dir/bench_fig14_llc_hitrate.cpp.o"
  "CMakeFiles/bench_fig14_llc_hitrate.dir/bench_fig14_llc_hitrate.cpp.o.d"
  "bench_fig14_llc_hitrate"
  "bench_fig14_llc_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_llc_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
