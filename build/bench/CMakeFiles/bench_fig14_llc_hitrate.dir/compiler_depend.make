# Empty compiler generated dependencies file for bench_fig14_llc_hitrate.
# This may be replaced when dependencies are built.
