file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_analytics.dir/streaming_analytics.cpp.o"
  "CMakeFiles/example_streaming_analytics.dir/streaming_analytics.cpp.o.d"
  "example_streaming_analytics"
  "example_streaming_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
