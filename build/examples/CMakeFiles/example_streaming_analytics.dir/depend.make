# Empty dependencies file for example_streaming_analytics.
# This may be replaced when dependencies are built.
