# Empty compiler generated dependencies file for example_multiprogrammed_server.
# This may be replaced when dependencies are built.
