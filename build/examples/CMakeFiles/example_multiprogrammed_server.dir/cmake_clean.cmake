file(REMOVE_RECURSE
  "CMakeFiles/example_multiprogrammed_server.dir/multiprogrammed_server.cpp.o"
  "CMakeFiles/example_multiprogrammed_server.dir/multiprogrammed_server.cpp.o.d"
  "example_multiprogrammed_server"
  "example_multiprogrammed_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiprogrammed_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
