# Empty compiler generated dependencies file for example_refresh_microscope.
# This may be replaced when dependencies are built.
