file(REMOVE_RECURSE
  "CMakeFiles/example_refresh_microscope.dir/refresh_microscope.cpp.o"
  "CMakeFiles/example_refresh_microscope.dir/refresh_microscope.cpp.o.d"
  "example_refresh_microscope"
  "example_refresh_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_refresh_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
