# Empty compiler generated dependencies file for rop_tests.
# This may be replaced when dependencies are built.
