
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_map.cpp" "tests/CMakeFiles/rop_tests.dir/test_address_map.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_address_map.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/rop_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/rop_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_controller_dynamics.cpp" "tests/CMakeFiles/rop_tests.dir/test_controller_dynamics.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_controller_dynamics.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/rop_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dram_bank.cpp" "tests/CMakeFiles/rop_tests.dir/test_dram_bank.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_dram_bank.cpp.o.d"
  "/root/repo/tests/test_dram_channel.cpp" "tests/CMakeFiles/rop_tests.dir/test_dram_channel.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_dram_channel.cpp.o.d"
  "/root/repo/tests/test_dram_rank.cpp" "tests/CMakeFiles/rop_tests.dir/test_dram_rank.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_dram_rank.cpp.o.d"
  "/root/repo/tests/test_dram_timing.cpp" "tests/CMakeFiles/rop_tests.dir/test_dram_timing.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_dram_timing.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/rop_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/rop_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rop_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_llc.cpp" "tests/CMakeFiles/rop_tests.dir/test_llc.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_llc.cpp.o.d"
  "/root/repo/tests/test_memory_system.cpp" "tests/CMakeFiles/rop_tests.dir/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/test_multichannel.cpp" "tests/CMakeFiles/rop_tests.dir/test_multichannel.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_multichannel.cpp.o.d"
  "/root/repo/tests/test_pattern_profiler.cpp" "tests/CMakeFiles/rop_tests.dir/test_pattern_profiler.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_pattern_profiler.cpp.o.d"
  "/root/repo/tests/test_prediction_table.cpp" "tests/CMakeFiles/rop_tests.dir/test_prediction_table.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_prediction_table.cpp.o.d"
  "/root/repo/tests/test_prefetcher.cpp" "tests/CMakeFiles/rop_tests.dir/test_prefetcher.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_prefetcher.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rop_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_refresh_manager.cpp" "tests/CMakeFiles/rop_tests.dir/test_refresh_manager.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_refresh_manager.cpp.o.d"
  "/root/repo/tests/test_refresh_policies.cpp" "tests/CMakeFiles/rop_tests.dir/test_refresh_policies.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_refresh_policies.cpp.o.d"
  "/root/repo/tests/test_refresh_segments.cpp" "tests/CMakeFiles/rop_tests.dir/test_refresh_segments.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_refresh_segments.cpp.o.d"
  "/root/repo/tests/test_refresh_stats.cpp" "tests/CMakeFiles/rop_tests.dir/test_refresh_stats.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_refresh_stats.cpp.o.d"
  "/root/repo/tests/test_rop_engine.cpp" "tests/CMakeFiles/rop_tests.dir/test_rop_engine.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_rop_engine.cpp.o.d"
  "/root/repo/tests/test_rop_multirank.cpp" "tests/CMakeFiles/rop_tests.dir/test_rop_multirank.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_rop_multirank.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/rop_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sram_buffer.cpp" "tests/CMakeFiles/rop_tests.dir/test_sram_buffer.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_sram_buffer.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/rop_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/rop_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/rop_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/rop_tests.dir/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_rop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
