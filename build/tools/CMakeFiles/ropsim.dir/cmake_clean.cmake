file(REMOVE_RECURSE
  "CMakeFiles/ropsim.dir/ropsim.cpp.o"
  "CMakeFiles/ropsim.dir/ropsim.cpp.o.d"
  "ropsim"
  "ropsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
