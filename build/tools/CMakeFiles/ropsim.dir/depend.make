# Empty dependencies file for ropsim.
# This may be replaced when dependencies are built.
