// Figure 11: normalized memory energy of the 4-core workload mixes on
// Baseline, Baseline-RP and ROP.
//
// Paper: ROP cuts energy by up to 40% (gmean 22.6%) vs the baseline; the
// more intensive the mix, the more it saves (execution time shrinks most).
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(10'000'000);
  const std::uint64_t llc = 4ull << 20;

  TextTable table("Fig. 11 — 4-core energy (normalized to Baseline)");
  table.set_header({"mix", "E base (mJ)", "base-RP", "ROP"});

  std::vector<double> rop_norm;
  for (std::uint32_t wl = 1; wl <= workload::kNumWorkloadMixes; ++wl) {
    double energy[3];
    int i = 0;
    for (const auto& [mode, rp] :
         {std::pair{sim::MemoryMode::kBaseline, false},
          std::pair{sim::MemoryMode::kBaseline, true},
          std::pair{sim::MemoryMode::kRop, true}}) {
      sim::ExperimentSpec spec = sim::multi_core_spec(wl, mode, rp, llc);
      spec.instructions_per_core = instr;
      energy[i++] = sim::run_experiment(spec).total_energy_mj();
    }
    rop_norm.push_back(energy[2] / energy[0]);
    table.add_row({"WL" + std::to_string(wl), TextTable::fmt(energy[0], 2),
                   TextTable::fmt(energy[1] / energy[0], 4),
                   TextTable::fmt(energy[2] / energy[0], 4)});
  }
  table.print();
  std::printf("\nmeasured: ROP energy gmean %.4fx of baseline\n",
              bench::geomean(rop_norm));
  bench::print_paper_note(
      "Fig. 11",
      "paper: ROP reduces energy up to 40% (gmean 22.6%); savings track "
      "the weighted-speedup gains because shorter runs draw less "
      "background power.");
  return 0;
}
