// Figure 7: single-core IPC normalized to the baseline — ROP with SRAM
// buffers of 16/32/64/128 lines vs the idealized no-refresh memory.
//
// Paper: ROP tracks No-Refresh closely (up to 9.2% over baseline, 3.3%
// average) and larger buffers help; ROP can even beat No-Refresh slightly
// because SRAM is faster than DRAM.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(20'000'000);
  const std::uint32_t capacities[] = {16, 32, 64, 128};
  const std::size_t per_bench = 2 + std::size(capacities);

  // One flat spec list — baseline, the four ROP capacities, and the
  // no-refresh ideal per benchmark — handed to the parallel runner.
  // Results come back in spec order regardless of worker count.
  std::vector<sim::ExperimentSpec> specs;
  for (const auto name : workload::kBenchmarkNames) {
    specs.push_back(bench::bench_spec(std::string(name),
                                      sim::MemoryMode::kBaseline, instr));
    for (const std::uint32_t cap : capacities) {
      sim::ExperimentSpec spec = bench::bench_spec(
          std::string(name), sim::MemoryMode::kRop, instr);
      spec.rop.buffer_lines = cap;
      specs.push_back(spec);
    }
    specs.push_back(bench::bench_spec(std::string(name),
                                      sim::MemoryMode::kNoRefresh, instr));
  }
  const std::vector<sim::ExperimentResult> results =
      sim::run_experiments(specs, bench::bench_threads());

  TextTable table("Fig. 7 — single-core IPC normalized to baseline");
  table.set_header({"benchmark", "ROP-16", "ROP-32", "ROP-64", "ROP-128",
                    "no-refresh"});

  std::vector<double> gains64;
  std::size_t at = 0;
  for (const auto name : workload::kBenchmarkNames) {
    const sim::ExperimentResult& base = results[at];
    std::vector<std::string> row{std::string(name)};
    for (std::size_t c = 0; c < std::size(capacities); ++c) {
      const double norm = results[at + 1 + c].ipc() / base.ipc();
      if (capacities[c] == 64) gains64.push_back(norm);
      row.push_back(TextTable::fmt(norm, 4));
    }
    const sim::ExperimentResult& ideal = results[at + per_bench - 1];
    row.push_back(TextTable::fmt(ideal.ipc() / base.ipc(), 4));
    table.add_row(std::move(row));
    at += per_bench;
  }
  table.print();

  double max_gain = 0, avg = 0;
  for (const double g : gains64) {
    max_gain = std::max(max_gain, g - 1.0);
    avg += (g - 1.0) / static_cast<double>(gains64.size());
  }
  std::printf("\nmeasured (ROP-64): max gain %.1f%%, avg gain %.1f%%\n",
              100 * max_gain, 100 * avg);
  bench::print_paper_note(
      "Fig. 7",
      "paper: ROP improves IPC up to 9.2% (avg 3.3%); gains concentrate in "
      "the memory-intensive benchmarks and grow with buffer capacity.");
  return 0;
}
