// Figure 12: normalized weighted speedup of ROP (and Baseline-RP) relative
// to the baseline across LLC sizes of 1/2/4/8 MB.
//
// Paper: ROP wins at every LLC size (up to 2.22x at 1 MB, gmean 1.32x) and
// the gain shrinks as the LLC grows — more filtering means fewer memory
// requests for ROP to rescue and a stronger baseline.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(8'000'000);
  const std::uint64_t llcs[] = {1ull << 20, 2ull << 20, 4ull << 20,
                                8ull << 20};

  bench::AloneIpcCache alone;
  TextTable table("Fig. 12 — ROP weighted speedup vs baseline, by LLC size");
  table.set_header({"mix", "1MB", "2MB", "4MB", "8MB"});

  std::vector<double> per_llc_gmean[4];
  for (std::uint32_t wl = 1; wl <= workload::kNumWorkloadMixes; ++wl) {
    std::vector<std::string> row{"WL" + std::to_string(wl)};
    int k = 0;
    for (const std::uint64_t llc : llcs) {
      const auto ipc_alone = alone.for_mix(wl, 4, llc, instr);
      sim::ExperimentSpec base =
          sim::multi_core_spec(wl, sim::MemoryMode::kBaseline, false, llc);
      sim::ExperimentSpec rop =
          sim::multi_core_spec(wl, sim::MemoryMode::kRop, true, llc);
      base.instructions_per_core = instr;
      rop.instructions_per_core = instr;
      const double ws_base =
          sim::run_experiment(base).weighted_speedup(ipc_alone);
      const double ws_rop =
          sim::run_experiment(rop).weighted_speedup(ipc_alone);
      const double norm = ws_rop / ws_base;
      per_llc_gmean[k++].push_back(norm);
      row.push_back(TextTable::fmt(norm, 4));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nmeasured gmean by LLC: 1MB %.4f, 2MB %.4f, 4MB %.4f, "
              "8MB %.4f\n",
              bench::geomean(per_llc_gmean[0]),
              bench::geomean(per_llc_gmean[1]),
              bench::geomean(per_llc_gmean[2]),
              bench::geomean(per_llc_gmean[3]));
  bench::print_paper_note(
      "Fig. 12",
      "paper: gains at every LLC size, shrinking as the LLC grows (their "
      "max was 2.22x at 1 MB). Expect the same monotone trend.");
  return 0;
}
