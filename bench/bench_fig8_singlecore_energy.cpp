// Figure 8: single-core memory energy normalized to the baseline, for ROP
// (64-line buffer) and the idealized no-refresh memory.
//
// Paper: ROP consumes less energy than the baseline (up to 6.7% less, 3.6%
// average) even though it does not remove refreshes and adds SRAM — the
// shorter execution time cuts background energy.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(20'000'000);

  // Three specs per benchmark (baseline, ROP-64, no-refresh), run through
  // the parallel runner; results are ordered like the specs.
  std::vector<sim::ExperimentSpec> specs;
  for (const auto name : workload::kBenchmarkNames) {
    specs.push_back(bench::bench_spec(std::string(name),
                                      sim::MemoryMode::kBaseline, instr));
    specs.push_back(
        bench::bench_spec(std::string(name), sim::MemoryMode::kRop, instr));
    specs.push_back(bench::bench_spec(std::string(name),
                                      sim::MemoryMode::kNoRefresh, instr));
  }
  const std::vector<sim::ExperimentResult> results =
      sim::run_experiments(specs, bench::bench_threads());

  TextTable table("Fig. 8 — single-core energy normalized to baseline");
  table.set_header({"benchmark", "baseline (mJ)", "ROP-64", "no-refresh",
                    "ROP sram (mJ)"});

  std::vector<double> savings;
  std::size_t at = 0;
  for (const auto name : workload::kBenchmarkNames) {
    const sim::ExperimentResult& base = results[at];
    const sim::ExperimentResult& rop = results[at + 1];
    const sim::ExperimentResult& ideal = results[at + 2];
    at += 3;
    const double norm = rop.total_energy_mj() / base.total_energy_mj();
    savings.push_back(1.0 - norm);
    table.add_row({std::string(name),
                   TextTable::fmt(base.total_energy_mj(), 2),
                   TextTable::fmt(norm, 4),
                   TextTable::fmt(ideal.total_energy_mj() /
                                      base.total_energy_mj(),
                                  4),
                   TextTable::fmt(rop.energy.sram_mj, 4)});
  }
  table.print();

  double max_save = -1, avg = 0;
  for (const double s : savings) {
    max_save = std::max(max_save, s);
    avg += s / static_cast<double>(savings.size());
  }
  std::printf("\nmeasured: ROP energy saving max %.1f%%, avg %.1f%%\n",
              100 * max_save, 100 * avg);
  bench::print_paper_note(
      "Fig. 8",
      "paper: ROP saves up to 6.7% energy (avg 3.6%), tracking its "
      "performance gains: the benchmarks that speed up the most also save "
      "the most energy.");
  return 0;
}
