// Figure 2: percentage of non-blocking refreshes at examined periods of
// 1x / 2x / 4x the refresh cycle time (tRFC), per benchmark.
//
// Paper: a large share of refreshes never block a request; non-intensive
// benchmarks average 79.3% non-blocking.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  TextTable table("Fig. 2 — non-blocking refreshes (baseline memory)");
  table.set_header({"benchmark", "intensive", "1x tRFC", "2x tRFC",
                    "4x tRFC"});

  bench::StatsSidecar sidecar("bench_fig2_nonblocking");
  double quiet_avg = 0;
  int quiet_n = 0;
  for (const auto name : workload::kBenchmarkNames) {
    const auto base = sim::run_experiment(bench::with_epochs(
        bench::bench_spec(std::string(name), sim::MemoryMode::kBaseline,
                          instr)));
    sidecar.add(std::string(name), base);
    table.add_row({std::string(name),
                   workload::is_intensive(name) ? "Y" : "",
                   TextTable::pct(base.nonblocking_fraction[0]),
                   TextTable::pct(base.nonblocking_fraction[1]),
                   TextTable::pct(base.nonblocking_fraction[2])});
    if (!workload::is_intensive(name)) {
      quiet_avg += base.nonblocking_fraction[0];
      ++quiet_n;
    }
  }
  table.print();
  std::printf("\nmeasured: non-intensive average at 1x window = %.1f%%\n",
              100 * quiet_avg / quiet_n);
  bench::print_paper_note(
      "Fig. 2",
      "paper: many refreshes block nothing; non-intensive benchmarks "
      "average 79.3% non-blocking at the 1x window, and the fraction can "
      "only drop as the window widens.");
  sidecar.write();
  return 0;
}
