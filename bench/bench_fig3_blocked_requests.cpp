// Figure 3: average number of read requests blocked per *blocking* refresh
// (and the maximum observed), per benchmark.
//
// Paper: each blocking refresh blocks only a handful of requests; their
// maximum across all benchmarks was 12.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  TextTable table("Fig. 3 — requests blocked per blocking refresh (1x tRFC)");
  table.set_header({"benchmark", "mean blocked", "max blocked",
                    "refreshes"});

  bench::StatsSidecar sidecar("bench_fig3_blocked_requests");
  for (const auto name : workload::kBenchmarkNames) {
    const auto base = sim::run_experiment(bench::with_epochs(
        bench::bench_spec(std::string(name), sim::MemoryMode::kBaseline,
                          instr)));
    sidecar.add(std::string(name), base);
    table.add_row({std::string(name),
                   TextTable::fmt(base.mean_blocked_per_blocking_refresh[0],
                                  2),
                   std::to_string(base.max_blocked[0]),
                   std::to_string(base.refreshes)});
  }
  table.print();
  bench::print_paper_note(
      "Fig. 3",
      "paper: on average each blocking refresh blocks a marginal number of "
      "requests (max observed 12). The bound here is the per-core MLP "
      "window (16) plus queue drain, so expect small means and a max in "
      "the low tens.");
  sidecar.write();
  return 0;
}
