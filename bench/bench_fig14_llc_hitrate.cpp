// Figure 14: SRAM buffer hit rate of the 4-core ROP runs across LLC sizes.
//
// Paper: the hit rate stays high at every LLC size, confirming the access
// patterns remain predictable after cache filtering.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(8'000'000);
  const std::uint64_t llcs[] = {1ull << 20, 2ull << 20, 4ull << 20,
                                8ull << 20};

  TextTable table("Fig. 14 — SRAM buffer hit rate by LLC size (4-core ROP)");
  table.set_header({"mix", "1MB", "2MB", "4MB", "8MB"});

  for (std::uint32_t wl = 1; wl <= workload::kNumWorkloadMixes; ++wl) {
    std::vector<std::string> row{"WL" + std::to_string(wl)};
    for (const std::uint64_t llc : llcs) {
      sim::ExperimentSpec rop =
          sim::multi_core_spec(wl, sim::MemoryMode::kRop, true, llc);
      rop.instructions_per_core = instr;
      row.push_back(TextTable::fmt(sim::run_experiment(rop).sram_hit_rate,
                                   3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::print_paper_note(
      "Fig. 14",
      "paper: hit rate remains at an impressive level across LLC sizes; "
      "intensive mixes keep the buffer busy, quiet mixes rarely stage and "
      "show noisier rates.");
  return 0;
}
