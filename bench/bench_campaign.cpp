// Microbenchmarks (google-benchmark) for the aggregation machinery the
// channel-sharded loop and the campaign engine lean on: exact-summation
// Scalar recording/merging, histogram and registry folds, and the JSON
// parse of a per-run stats document. Gated numbers live in
// BENCH_campaign.json (ci_baseline_ns); the end-to-end serial-vs-sharded
// wall-clock rows in that file come from ropsim runs, not this binary.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "common/json.h"
#include "common/stats.h"
#include "sim/experiment.h"

namespace {

using namespace rop;

// Scalar::record with integral samples stays on the single-partial fast
// path until the running sum crosses 2^53 — this is the controller's
// read-latency hot path, so it is the number to watch.
void BM_ScalarRecordInt(benchmark::State& state) {
  Scalar s;
  std::uint64_t v = 17;
  for (auto _ : state) {
    s.record(static_cast<double>(v));
    v = v * 2862933555777941757ull + 3037000493ull;
    v >>= 48;  // keep samples small so the sum stays exactly representable
  }
  benchmark::DoNotOptimize(s.count());
}

void BM_ScalarMerge(benchmark::State& state) {
  Scalar src;
  for (int i = 0; i < 1000; ++i) src.record(static_cast<double>(i % 97));
  for (auto _ : state) {
    Scalar dst;
    dst.record(1.0);
    dst.merge(src);
    benchmark::DoNotOptimize(dst.count());
  }
}

void BM_HistogramMerge(benchmark::State& state) {
  Histogram src(4, 64);
  for (std::uint64_t i = 0; i < 10'000; ++i) src.record(i % 300);
  Histogram dst(4, 64);
  for (auto _ : state) {
    dst.merge(src);
    benchmark::DoNotOptimize(dst.count());
  }
}

StatRegistry representative_registry() {
  StatRegistry reg;
  // Shapes mirror a real run: a few dozen counters, a handful of scalars
  // and histograms (mem.*, rop.*, coreN.*, llc.*).
  for (int i = 0; i < 48; ++i) {
    reg.counter("mem.counter_" + std::to_string(i)).inc(1'000'000 + i);
  }
  for (int i = 0; i < 6; ++i) {
    Scalar& s = reg.scalar("mem.scalar_" + std::to_string(i));
    for (int k = 0; k < 64; ++k) s.record(static_cast<double>(k * 3 + i));
  }
  for (int i = 0; i < 3; ++i) {
    Histogram& h = reg.histogram("mem.hist_" + std::to_string(i), 4, 64);
    for (std::uint64_t k = 0; k < 256; ++k) h.record(k);
  }
  return reg;
}

// The per-epoch cost of the sharded loop's counter fold is bounded by this
// (the fold walks registered handles, not the maps, but merge_from is what
// finalize and the campaign aggregate pay per channel/cell).
void BM_RegistryMergeFrom(benchmark::State& state) {
  const StatRegistry src = representative_registry();
  StatRegistry dst = representative_registry();
  for (auto _ : state) {
    dst.merge_from(src);
    benchmark::DoNotOptimize(dst.counter_value("mem.counter_0"));
  }
}

// Campaign merge reads every cell document back through this parser; a
// tiny real experiment gives a document with the genuine shape and size.
void BM_JsonParseStatsDoc(benchmark::State& state) {
  sim::ExperimentSpec spec =
      sim::single_core_spec("lbm", sim::MemoryMode::kBaseline);
  spec.instructions_per_core = 5'000;
  const std::string doc = sim::run_experiment(spec).to_json();
  for (auto _ : state) {
    const auto parsed = json::parse(doc);
    benchmark::DoNotOptimize(parsed.has_value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * doc.size()));
}

BENCHMARK(BM_ScalarRecordInt);
BENCHMARK(BM_ScalarMerge);
BENCHMARK(BM_HistogramMerge);
BENCHMARK(BM_RegistryMergeFrom);
BENCHMARK(BM_JsonParseStatsDoc);

}  // namespace
