// Ablation: the probabilistic lambda/beta gating (paper §IV-B/C) vs
// always-prefetch and never-prefetch, plus the Eq. 3 budget split vs a
// uniform split.
//
// What to look for: always-prefetch wastes bus bandwidth on quiet ranks
// (its gains shrink or go negative on bursty benchmarks), never-prefetch
// isolates the pure drain effect, and Eq. 3 beats the uniform split when
// traffic concentrates in a few banks.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);
  const char* benchmarks[] = {"libquantum", "lbm", "gcc", "bzip2", "wrf"};

  TextTable table("Ablation — gating and budget policies (IPC vs baseline)");
  table.set_header({"benchmark", "probabilistic", "always", "never",
                    "uniform-split"});

  for (const char* name : benchmarks) {
    const auto base = sim::run_experiment(
        bench::bench_spec(name, sim::MemoryMode::kBaseline, instr));

    const auto run_variant = [&](auto tweak) {
      sim::ExperimentSpec spec =
          bench::bench_spec(name, sim::MemoryMode::kRop, instr);
      tweak(spec.rop);
      return sim::run_experiment(spec).ipc() / base.ipc();
    };

    const double prob = run_variant([](engine::RopConfig&) {});
    const double always = run_variant([](engine::RopConfig& rc) {
      rc.gating = engine::GatingMode::kAlwaysPrefetch;
    });
    const double never = run_variant([](engine::RopConfig& rc) {
      rc.gating = engine::GatingMode::kNeverPrefetch;
    });
    const double uniform = run_variant([](engine::RopConfig& rc) {
      rc.uniform_budget = true;
    });
    table.add_row({name, TextTable::fmt(prob, 4), TextTable::fmt(always, 4),
                   TextTable::fmt(never, 4), TextTable::fmt(uniform, 4)});
  }
  table.print();
  bench::print_paper_note(
      "design ablation (DESIGN.md §4)",
      "expectation: probabilistic ~ always on steady streams (lambda ~ 1 "
      "makes them identical) but probabilistic avoids waste on bursty "
      "benchmarks; never-prefetch hovers near 1.0 (drain alone); Eq. 3 >= "
      "uniform when bank activity is skewed.");
  return 0;
}
