// Passive controller listener that feeds WindowCorrelators at 1x/2x/4x
// tREFI — the machinery behind Fig. 4 and Table I. It observes the
// baseline memory without altering its behaviour.
#pragma once

#include <array>
#include <memory>

#include "cpu/system.h"
#include "mem/memory_system.h"
#include "rop/pattern_profiler.h"
#include "sim/presets.h"
#include "workload/spec_profiles.h"
#include "workload/synthetic.h"

namespace rop::bench {

class CorrelationObserver final : public mem::ControllerListener {
 public:
  CorrelationObserver(Cycle trefi, std::uint32_t num_ranks)
      : correlators_{engine::WindowCorrelator(1 * trefi, num_ranks),
                     engine::WindowCorrelator(2 * trefi, num_ranks),
                     engine::WindowCorrelator(4 * trefi, num_ranks)} {}

  std::optional<Cycle> on_enqueue(const mem::Request& req,
                                  Cycle now) override {
    for (auto& wc : correlators_) {
      wc.on_request(req.coord.rank, now, req.type == mem::ReqType::kRead);
    }
    return std::nullopt;
  }
  void on_demand_serviced(const mem::Request&, Cycle) override {}
  void on_rank_locked(RankId, Cycle) override {}
  void on_refresh_issued(RankId rank, Cycle start, Cycle) override {
    for (auto& wc : correlators_) wc.on_refresh(rank, start);
  }
  void on_prefetch_filled(const mem::Request&, Cycle) override {}
  void on_tick(Cycle now) override {
    // Close expired windows lazily but regularly.
    if ((now & 0x3FF) == 0) {
      for (auto& wc : correlators_) wc.advance(now);
    }
  }

  void finalize() {
    for (auto& wc : correlators_) wc.finalize();
  }

  /// Counts for window multiple index 0 -> 1x, 1 -> 2x, 2 -> 4x.
  [[nodiscard]] const engine::CategoryCounts& counts(std::size_t k) const {
    return correlators_.at(k).counts();
  }

 private:
  std::array<engine::WindowCorrelator, 3> correlators_;
};

/// Run `benchmark` on the baseline memory with a CorrelationObserver
/// attached; returns the observer with finalized counts.
inline std::unique_ptr<CorrelationObserver> observe_benchmark(
    const std::string& benchmark, std::uint64_t instructions) {
  const mem::MemoryConfig mem_cfg =
      sim::make_memory_config(1, sim::MemoryMode::kBaseline);
  StatRegistry stats;
  mem::MemorySystem memory(mem_cfg, &stats);
  auto observer = std::make_unique<CorrelationObserver>(
      mem_cfg.timings.tREFI, mem_cfg.org.ranks);
  memory.controller(0).set_listener(observer.get());

  workload::SyntheticTrace trace(workload::spec_profile(benchmark));
  std::vector<workload::TraceSource*> traces{&trace};
  cpu::System system(sim::make_system_config(2ull << 20, false), memory,
                     traces);
  system.run(instructions, instructions * 64);
  observer->finalize();
  return observer;
}

}  // namespace rop::bench
