// Microbenchmarks (google-benchmark) for the simulator's hot paths: these
// bound the simulation rate and guard against accidental slowdowns.
#include <benchmark/benchmark.h>

#include "cache/llc.h"
#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/memory_system.h"
#include "rop/pattern_profiler.h"
#include "rop/prediction_table.h"
#include "rop/sram_buffer.h"

namespace {

using namespace rop;

void BM_AddressMapRoundTrip(benchmark::State& state) {
  dram::DramOrganization org;
  org.ranks = 4;
  const mem::AddressMap map(org, mem::MapScheme::kRowRankBankColumn);
  Rng rng(1);
  const std::uint64_t total = org.total_lines();
  for (auto _ : state) {
    const Address a = rng.next_below(total) << kLineShift;
    const DramCoord c = map.map(a);
    benchmark::DoNotOptimize(map.unmap(c));
  }
}
BENCHMARK(BM_AddressMapRoundTrip);

void BM_LlcAccess(benchmark::State& state) {
  cache::LlcConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cache::Llc llc(cfg);
  Rng rng(2);
  for (auto _ : state) {
    const Address a = rng.next_below(1 << 20) << kLineShift;
    benchmark::DoNotOptimize(llc.access(a, rng.next_bool(0.3)));
  }
}
BENCHMARK(BM_LlcAccess);

void BM_PredictionTableUpdate(benchmark::State& state) {
  engine::PredictionTable table(8, 1 << 23);
  Rng rng(3);
  std::uint64_t offset = 0;
  Cycle now = 0;
  for (auto _ : state) {
    offset += 1 + rng.next_below(3);
    table.on_access(static_cast<BankId>(rng.next_below(8)), offset, ++now);
  }
}
BENCHMARK(BM_PredictionTableUpdate);

void BM_PredictionTablePredict(benchmark::State& state) {
  engine::PredictionTable table(8, 1 << 23);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    table.on_access(static_cast<BankId>(i % 8), i / 8, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.predict(64, false, 0, 20'000, 1'000));
  }
}
BENCHMARK(BM_PredictionTablePredict);

void BM_SramBufferProbe(benchmark::State& state) {
  engine::SramBuffer buf(64);
  buf.begin_round(0);
  for (Address a = 0; a < 64; ++a) buf.insert(a << kLineShift);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.lookup(rng.next_below(128) << kLineShift));
  }
}
BENCHMARK(BM_SramBufferProbe);

void BM_WindowCorrelator(benchmark::State& state) {
  engine::WindowCorrelator wc(6240, 4);
  Rng rng(5);
  Cycle now = 0;
  for (auto _ : state) {
    now += 1 + rng.next_below(40);
    const RankId rank = static_cast<RankId>(rng.next_below(4));
    if (rng.next_bool(0.01)) {
      wc.on_refresh(rank, now);
    } else {
      wc.on_request(rank, now, true);
    }
  }
}
BENCHMARK(BM_WindowCorrelator);

void BM_MemorySystemTick(benchmark::State& state) {
  // End-to-end controller tick rate under a steady read stream.
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.ranks = 1;
  StatRegistry stats;
  mem::MemorySystem memsys(cfg, &stats);
  std::uint64_t line = 0;
  Cycle now = 0;
  for (auto _ : state) {
    if (now % 12 == 0 && memsys.can_accept(line << kLineShift,
                                           mem::ReqType::kRead)) {
      (void)memsys.enqueue(line << kLineShift, mem::ReqType::kRead, 0, now);
      ++line;
    }
    memsys.tick(now);
    benchmark::DoNotOptimize(memsys.drain_completed());
    ++now;
  }
}
BENCHMARK(BM_MemorySystemTick);

}  // namespace
