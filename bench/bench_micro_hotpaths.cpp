// Microbenchmarks (google-benchmark) for the simulator's hot paths: these
// bound the simulation rate and guard against accidental slowdowns.
#include <benchmark/benchmark.h>

#include "cache/llc.h"
#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/memory_system.h"
#include "rop/pattern_profiler.h"
#include "rop/prediction_table.h"
#include "rop/sram_buffer.h"

namespace {

using namespace rop;

void BM_AddressMapRoundTrip(benchmark::State& state) {
  dram::DramOrganization org;
  org.ranks = 4;
  const mem::AddressMap map(org, mem::MapScheme::kRowRankBankColumn);
  Rng rng(1);
  const std::uint64_t total = org.total_lines();
  for (auto _ : state) {
    const Address a = rng.next_below(total) << kLineShift;
    const DramCoord c = map.map(a);
    benchmark::DoNotOptimize(map.unmap(c));
  }
}
BENCHMARK(BM_AddressMapRoundTrip);

void BM_LlcAccess(benchmark::State& state) {
  cache::LlcConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cache::Llc llc(cfg);
  Rng rng(2);
  for (auto _ : state) {
    const Address a = rng.next_below(1 << 20) << kLineShift;
    benchmark::DoNotOptimize(llc.access(a, rng.next_bool(0.3)));
  }
}
BENCHMARK(BM_LlcAccess);

void BM_PredictionTableUpdate(benchmark::State& state) {
  engine::PredictionTable table(8, 1 << 23);
  Rng rng(3);
  std::uint64_t offset = 0;
  Cycle now = 0;
  for (auto _ : state) {
    offset += 1 + rng.next_below(3);
    table.on_access(static_cast<BankId>(rng.next_below(8)), offset, ++now);
  }
}
BENCHMARK(BM_PredictionTableUpdate);

void BM_PredictionTablePredict(benchmark::State& state) {
  engine::PredictionTable table(8, 1 << 23);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    table.on_access(static_cast<BankId>(i % 8), i / 8, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.predict(64, false, 0, 20'000, 1'000));
  }
}
BENCHMARK(BM_PredictionTablePredict);

void BM_SramBufferProbe(benchmark::State& state) {
  engine::SramBuffer buf(64);
  buf.begin_round(0);
  for (Address a = 0; a < 64; ++a) buf.insert(a << kLineShift);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.lookup(rng.next_below(128) << kLineShift));
  }
}
BENCHMARK(BM_SramBufferProbe);

void BM_WindowCorrelator(benchmark::State& state) {
  engine::WindowCorrelator wc(6240, 4);
  Rng rng(5);
  Cycle now = 0;
  for (auto _ : state) {
    now += 1 + rng.next_below(40);
    const RankId rank = static_cast<RankId>(rng.next_below(4));
    if (rng.next_bool(0.01)) {
      wc.on_refresh(rank, now);
    } else {
      wc.on_request(rank, now, true);
    }
  }
}
BENCHMARK(BM_WindowCorrelator);

void BM_StatRegistryCounterLookup(benchmark::State& state) {
  // Cost of one string-keyed counter lookup + increment — what every
  // completed event used to pay before the handle API.
  StatRegistry stats;
  stats.counter("mem.reads");
  stats.counter("mem.writes");
  stats.counter("rop.buffer_fills");
  for (auto _ : state) {
    stats.counter("mem.reads").inc();
    benchmark::DoNotOptimize(&stats);
  }
}
BENCHMARK(BM_StatRegistryCounterLookup);

void BM_StatRegistryHandleInc(benchmark::State& state) {
  // Same increment through a cached handle — the pattern all hot paths use
  // now (resolve once at construction, pointer-bump per event).
  StatRegistry stats;
  Counter* reads = stats.counter_handle("mem.reads");
  stats.counter("mem.writes");
  stats.counter("rop.buffer_fills");
  for (auto _ : state) {
    reads->inc();
    benchmark::DoNotOptimize(&stats);
  }
}
BENCHMARK(BM_StatRegistryHandleInc);

mem::Request make_request(std::uint64_t line, mem::ReqType type,
                          const dram::DramOrganization& org) {
  mem::Request r;
  r.type = type;
  r.line_addr = line << kLineShift;
  r.coord.rank = static_cast<RankId>(line % org.ranks);
  r.coord.bank = static_cast<BankId>((line / org.ranks) % org.banks);
  r.coord.row = static_cast<RowId>(line / 1024);
  r.coord.column = static_cast<ColumnId>(line % 128);
  return r;
}

void BM_ControllerEnqueueComplete(benchmark::State& state) {
  // The demand enqueue/complete hot loop: a steady read stream mixed with
  // writes that coalesce and reads that forward from the write queue.
  // Stresses per-event stat accounting and the write-queue lookup paths.
  const dram::DramTimings t = dram::make_ddr4_1600_timings();
  dram::DramOrganization org;
  org.ranks = 4;
  mem::ControllerConfig cfg;
  cfg.refresh_enabled = false;
  StatRegistry stats;
  mem::Controller ctrl(0, t, org, cfg, &stats);
  Cycle now = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    mem::Request req;
    if (i % 4 == 3) {
      // Writes cycle over a 64-line pool: repeats coalesce.
      req = make_request(1'000'000 + i % 64, mem::ReqType::kWrite, org);
    } else if (i % 16 == 1) {
      // Reads into the write pool: read-after-write forwarding.
      req = make_request(1'000'000 + i % 64, mem::ReqType::kRead, org);
    } else {
      req = make_request(i, mem::ReqType::kRead, org);
    }
    if (ctrl.can_accept(req.type)) ctrl.enqueue(req, now);
    ctrl.tick(now);
    benchmark::DoNotOptimize(ctrl.drain_completed());
    ++now;
    ++i;
  }
}
BENCHMARK(BM_ControllerEnqueueComplete);

void BM_ControllerPendingDemand(benchmark::State& state) {
  // pending_demand() is called on every refresh-management tick; the seed
  // implementation scanned both queues per call.
  const dram::DramTimings t = dram::make_ddr4_1600_timings();
  dram::DramOrganization org;
  org.ranks = 4;
  mem::ControllerConfig cfg;
  cfg.refresh_enabled = false;
  StatRegistry stats;
  mem::Controller ctrl(0, t, org, cfg, &stats);
  for (std::uint64_t i = 0; i < 56; ++i) {
    ctrl.enqueue(make_request(i, mem::ReqType::kRead, org), 0);
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    ctrl.enqueue(make_request(500'000 + i, mem::ReqType::kWrite, org), 0);
  }
  RankId r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.pending_demand(r));
    r = (r + 1) % org.ranks;
  }
}
BENCHMARK(BM_ControllerPendingDemand);

void BM_MemorySystemTick(benchmark::State& state) {
  // End-to-end controller tick rate under a steady read stream.
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings();
  cfg.org.ranks = 1;
  StatRegistry stats;
  mem::MemorySystem memsys(cfg, &stats);
  std::uint64_t line = 0;
  Cycle now = 0;
  for (auto _ : state) {
    if (now % 12 == 0 && memsys.can_accept(line << kLineShift,
                                           mem::ReqType::kRead)) {
      (void)memsys.enqueue(line << kLineShift, mem::ReqType::kRead, 0, now);
      ++line;
    }
    memsys.tick(now);
    benchmark::DoNotOptimize(memsys.drain_completed());
    ++now;
  }
}
BENCHMARK(BM_MemorySystemTick);

}  // namespace
