// Table I: the conditional probabilities lambda = P{A>0 | B>0} and
// beta = P{A=0 | B=0} per benchmark at 1x / 2x / 4x observational windows.
//
// Paper: most benchmarks show high lambda and/or beta (prefetch decisions
// based on B are accurate), and both values are largely insensitive to the
// window length. Streaming benchmarks (lbm, libquantum, bwaves) have
// lambda ~ 0.99 and beta ~ 0 (B=0 windows are rare and usually followed by
// traffic anyway).
#include "analysis_listener.h"
#include "bench_util.h"

namespace {

std::string fmt_prob(const rop::engine::CategoryCounts& c, bool lambda) {
  // Print "-" when the conditioning event never occurred.
  const std::uint64_t denom =
      lambda ? c.counts[0] + c.counts[1] : c.counts[2] + c.counts[3];
  if (denom == 0) return "-";
  return rop::TextTable::fmt(lambda ? c.lambda() : c.beta(), 2);
}

}  // namespace

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  TextTable table("Table I — lambda and beta per observational window");
  table.set_header({"benchmark", "l 1x", "b 1x", "l 2x", "b 2x", "l 4x",
                    "b 4x"});

  for (const auto name : workload::kBenchmarkNames) {
    const auto obs = bench::observe_benchmark(std::string(name), instr);
    table.add_row({std::string(name),
                   fmt_prob(obs->counts(0), true),
                   fmt_prob(obs->counts(0), false),
                   fmt_prob(obs->counts(1), true),
                   fmt_prob(obs->counts(1), false),
                   fmt_prob(obs->counts(2), true),
                   fmt_prob(obs->counts(2), false)});
  }
  table.print();
  bench::print_paper_note(
      "Table I",
      "paper (1x window): lambda avg 0.80, beta avg 0.64; intensive "
      "streamers have lambda ~0.99 with beta ~0, quiet benchmarks have "
      "high beta; values shift little between 1x/2x/4x windows.");
  return 0;
}
