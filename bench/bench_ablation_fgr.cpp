// Ablation / future work (paper §VII): fine-grained refresh modes. JEDEC
// DDR4 FGR trades shorter tRFC for more frequent refreshes; the paper
// anticipates ROP remains effective because finer granularity still cannot
// avoid access/refresh conflicts.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);
  const char* benchmarks[] = {"libquantum", "lbm", "gcc"};

  TextTable table("Ablation — fine-grained refresh (1x/2x/4x modes)");
  table.set_header({"benchmark", "mode", "IPC base", "IPC noref", "IPC ROP",
                    "ROP gain", "hit"});

  for (const char* name : benchmarks) {
    for (const auto& [mode, label] :
         {std::pair{dram::RefreshMode::k1x, "1x"},
          std::pair{dram::RefreshMode::k2x, "2x"},
          std::pair{dram::RefreshMode::k4x, "4x"}}) {
      sim::ExperimentSpec base =
          bench::bench_spec(name, sim::MemoryMode::kBaseline, instr);
      sim::ExperimentSpec noref =
          bench::bench_spec(name, sim::MemoryMode::kNoRefresh, instr);
      sim::ExperimentSpec rop =
          bench::bench_spec(name, sim::MemoryMode::kRop, instr);
      base.refresh_mode = noref.refresh_mode = rop.refresh_mode = mode;
      const auto rb = sim::run_experiment(base);
      const auto rn = sim::run_experiment(noref);
      const auto rr = sim::run_experiment(rop);
      table.add_row({name, label, TextTable::fmt(rb.ipc(), 4),
                     TextTable::fmt(rn.ipc(), 4), TextTable::fmt(rr.ipc(), 4),
                     TextTable::pct(rr.ipc() / rb.ipc() - 1.0),
                     TextTable::fmt(rr.sram_hit_rate, 3)});
    }
  }
  table.print();
  bench::print_paper_note(
      "paper §VII future work",
      "FGR shortens each freeze but refreshes more often (total duty "
      "rises: tRFC does not halve when tREFI does). Expect the baseline "
      "penalty to persist or grow at 2x/4x and ROP to keep recovering a "
      "similar fraction with smaller per-round staging.");
  return 0;
}
