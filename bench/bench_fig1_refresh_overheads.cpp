// Figure 1: performance and energy of the auto-refresh baseline vs an
// idealized no-refresh memory, per benchmark.
//
// Paper: refresh costs up to 7.3% performance (avg 3.3%) and up to 41.6%
// extra energy (avg 26.5% — their energy delta is dominated by a DRAM
// power model charging refresh heavily; our Micron-style model yields the
// same direction with smaller magnitudes).
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  TextTable table("Fig. 1 — refresh overheads: baseline vs no-refresh");
  table.set_header({"benchmark", "IPC base", "IPC noref", "perf loss",
                    "E base (mJ)", "E noref (mJ)", "extra energy"});

  std::vector<double> perf_loss, energy_extra;
  for (const auto name : workload::kBenchmarkNames) {
    const auto base = sim::run_experiment(
        bench::bench_spec(std::string(name), sim::MemoryMode::kBaseline,
                          instr));
    const auto ideal = sim::run_experiment(
        bench::bench_spec(std::string(name), sim::MemoryMode::kNoRefresh,
                          instr));
    const double loss = 1.0 - base.ipc() / ideal.ipc();
    const double extra =
        base.total_energy_mj() / ideal.total_energy_mj() - 1.0;
    perf_loss.push_back(loss);
    energy_extra.push_back(extra);
    table.add_row({std::string(name), TextTable::fmt(base.ipc(), 4),
                   TextTable::fmt(ideal.ipc(), 4), TextTable::pct(loss),
                   TextTable::fmt(base.total_energy_mj(), 2),
                   TextTable::fmt(ideal.total_energy_mj(), 2),
                   TextTable::pct(extra)});
  }
  table.print();

  double loss_avg = 0, loss_max = 0, extra_avg = 0, extra_max = 0;
  const auto n = static_cast<double>(perf_loss.size());
  for (std::size_t i = 0; i < perf_loss.size(); ++i) {
    loss_avg += perf_loss[i] / n;
    loss_max = std::max(loss_max, perf_loss[i]);
    extra_avg += energy_extra[i] / n;
    extra_max = std::max(extra_max, energy_extra[i]);
  }
  std::printf("\nmeasured: perf loss avg %.1f%% max %.1f%% | "
              "extra energy avg %.1f%% max %.1f%%\n",
              100 * loss_avg, 100 * loss_max, 100 * extra_avg,
              100 * extra_max);
  bench::print_paper_note(
      "Fig. 1",
      "paper: perf loss avg 3.3%, max 7.3%; extra energy avg 26.5%, max "
      "41.6%. Expect the same shape: intensive benchmarks lose the most, "
      "quiet ones almost nothing.");
  return 0;
}
