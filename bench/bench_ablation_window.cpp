// Ablation: observational window length (1x / 2x / 4x tREFI) — paper
// §III-C argues lambda/beta are insensitive to it, which justifies the 1x
// default.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);
  const char* benchmarks[] = {"libquantum", "gcc", "bzip2", "wrf", "gobmk"};

  TextTable table("Ablation — observational window multiple");
  table.set_header({"benchmark", "IPC 1x", "IPC 2x", "IPC 4x", "hit 1x",
                    "hit 2x", "hit 4x"});

  for (const char* name : benchmarks) {
    std::vector<std::string> row{name};
    std::vector<std::string> hits;
    for (const std::uint32_t mult : {1u, 2u, 4u}) {
      sim::ExperimentSpec spec =
          bench::bench_spec(name, sim::MemoryMode::kRop, instr);
      spec.rop.window_multiple = mult;
      const auto res = sim::run_experiment(spec);
      row.push_back(TextTable::fmt(res.ipc(), 4));
      hits.push_back(TextTable::fmt(res.sram_hit_rate, 3));
    }
    row.insert(row.end(), hits.begin(), hits.end());
    table.add_row(std::move(row));
  }
  table.print();
  bench::print_paper_note(
      "Table I insensitivity claim",
      "paper: lambda/beta barely move between 1x/2x/4x windows, so the "
      "window length should not change ROP's behaviour much. Expect nearly "
      "identical IPC and hit rates across columns.");
  return 0;
}
