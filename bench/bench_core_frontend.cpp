// Microbenchmarks (google-benchmark) for the CPU front end: per-core gap
// retirement (naive vs closed-form run_until), the synthetic-trace record
// ring, and the LLC MRU fast path. Gated numbers live in
// BENCH_corefront.json (ci_baseline_ns).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <optional>

#include "cache/llc.h"
#include "common/rng.h"
#include "cpu/core.h"
#include "workload/synthetic.h"

namespace {

using namespace rop;

/// Memory port that accepts everything instantly — the benches target the
/// core's retirement arithmetic, not the memory system.
struct NullPort final : cpu::MemoryPort {
  std::optional<RequestId> issue_read(CoreId, Address) override {
    return ++id;
  }
  bool issue_write(CoreId, Address) override { return true; }
  RequestId id = 0;
};

workload::SyntheticConfig compute_heavy_trace(std::uint32_t batch) {
  workload::SyntheticConfig cfg;
  cfg.mean_gap = 400.0;  // gap-dominated: the event loop's best case
  cfg.write_fraction = 0.2;
  cfg.footprint_lines = 1ull << 16;
  cfg.random_fraction = 0.1;
  cfg.batch_records = batch;
  return cfg;
}

cpu::CoreConfig bench_core_config() {
  cpu::CoreConfig cfg;
  cfg.issue_width = 4;
  // Effectively unbounded: a capped MSHR count would block the core on
  // the NullPort (which never completes mid-iteration) and turn both
  // loops into stall-spinning, hiding the retirement cost under test.
  cfg.max_outstanding = 1u << 20;
  // No critical loads: the core never sleeps, so both strategies measure
  // pure retirement cost over the same cycle count.
  cfg.critical_load_fraction = 0.0;
  return cfg;
}

constexpr std::uint64_t kCyclesPerIter = 4096;

void drain(cpu::Core& core) {
  while (core.outstanding() > 0) {
    core.on_read_complete(0, core.stats().cycles);
  }
}

void BM_CoreNaiveGapCycles(benchmark::State& state) {
  // Reference loop: one cycle() call per CPU cycle, ~100 of every 101
  // cycles pure compute-gap arithmetic at mean_gap 400 / width 4.
  workload::SyntheticTrace trace(compute_heavy_trace(32));
  cache::LlcConfig llc;
  llc.size_bytes = 1ull << 20;
  NullPort port;
  cpu::Core core(0, bench_core_config(), llc, trace, port);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kCyclesPerIter; ++i) core.cycle();
    drain(core);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kCyclesPerIter));
}
BENCHMARK(BM_CoreNaiveGapCycles);

void BM_CoreEventGapCycles(benchmark::State& state) {
  // Same simulated cycles through next_event_cycle + run_until: compute
  // gaps collapse into one bulk update each.
  workload::SyntheticTrace trace(compute_heavy_trace(32));
  cache::LlcConfig llc;
  llc.size_bytes = 1ull << 20;
  NullPort port;
  cpu::Core core(0, bench_core_config(), llc, trace, port);
  for (auto _ : state) {
    const std::uint64_t target = core.stats().cycles + kCyclesPerIter;
    while (core.stats().cycles < target) {
      const std::uint64_t next = core.next_event_cycle();
      if (next > core.stats().cycles) {
        core.run_until(std::min(next, target));
      } else {
        core.cycle();
      }
    }
    drain(core);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kCyclesPerIter));
}
BENCHMARK(BM_CoreEventGapCycles);

void BM_SyntheticTraceNext(benchmark::State& state) {
  // Per-record generation cost; arg = batch_records (0 disables the ring).
  workload::SyntheticConfig cfg;
  cfg.mean_gap = 180.0;
  cfg.streams = {{{+1, +1, +130}, 1.0}, {{+1}, 2.0}};
  cfg.random_fraction = 0.2;
  cfg.burst_ops = 100.0;
  cfg.idle_instructions = 1000.0;
  cfg.batch_records = static_cast<std::uint32_t>(state.range(0));
  workload::SyntheticTrace trace(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next());
  }
}
BENCHMARK(BM_SyntheticTraceNext)->Arg(0)->Arg(32);

void BM_LlcMruHit(benchmark::State& state) {
  // Repeated touches to the hottest line in a set: the MRU probe resolves
  // the hit with one tag compare instead of a 16-way scan.
  cache::LlcConfig cfg;
  cfg.size_bytes = 2ull << 20;
  cache::Llc llc(cfg);
  llc.access(0x40000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.access(0x40000, false));
  }
}
BENCHMARK(BM_LlcMruHit);

}  // namespace
