// Cross-scheme comparison (paper §VI context): auto-refresh baseline,
// Elastic Refresh (MICRO'10), Refresh Pausing (HPCA'13), per-bank refresh
// (REFpb, the §VII future-work granularity), ROP, and the no-refresh upper
// bound — on the same workloads, same memory.
//
// The paper argues ROP is orthogonal to scheduling-based schemes (elastic/
// pausing) because prefetching removes the conflict instead of moving it,
// and that finer refresh granularity "cannot completely avoid access
// conflicts". This bench puts those claims side by side.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  const std::pair<const char*, sim::MemoryMode> systems[] = {
      {"baseline", sim::MemoryMode::kBaseline},
      {"elastic", sim::MemoryMode::kElastic},
      {"pausing", sim::MemoryMode::kPausing},
      {"per-bank", sim::MemoryMode::kPerBank},
      {"ROP", sim::MemoryMode::kRop},
      {"no-refresh", sim::MemoryMode::kNoRefresh},
  };

  TextTable table("refresh schemes — IPC normalized to auto-refresh baseline");
  std::vector<std::string> header{"benchmark"};
  for (const auto& [label, mode] : systems) header.push_back(label);
  table.set_header(std::move(header));

  for (const auto name : workload::kBenchmarkNames) {
    double base_ipc = 0.0;
    std::vector<std::string> row{std::string(name)};
    for (const auto& [label, mode] : systems) {
      const auto res = sim::run_experiment(
          bench::bench_spec(std::string(name), mode, instr));
      if (mode == sim::MemoryMode::kBaseline) base_ipc = res.ipc();
      row.push_back(TextTable::fmt(res.ipc() / base_ipc, 4));
    }
    table.add_row(std::move(row));
  }
  table.print();
  bench::print_paper_note(
      "scheme comparison (related work, §VI)",
      "expected ordering on intensive benchmarks: baseline <= elastic <= "
      "pausing/per-bank <= ROP <= no-refresh. Scheduling schemes move the "
      "freeze out of busy periods; per-bank shrinks its blast radius; ROP "
      "hides it behind the SRAM buffer.");
  return 0;
}
