// Cross-scheme comparison (paper §VI context): auto-refresh baseline,
// Elastic Refresh (MICRO'10), Refresh Pausing (HPCA'13), per-bank refresh
// (REFpb, the §VII future-work granularity), DARP and SARP (refresh–access
// parallelism, Chang et al. HPCA'14), a HiRA-style refresh/activation
// overlap (MICRO'22), ROP, and the no-refresh upper bound — on the same
// workloads, same memory.
//
// The paper argues ROP is orthogonal to scheduling-based schemes (elastic/
// pausing) because prefetching removes the conflict instead of moving it,
// and that finer refresh granularity "cannot completely avoid access
// conflicts". This bench puts those claims side by side, including the
// strongest published competitors. Alongside IPC it reports the
// refresh-blocking integral (mem.refresh_blocked_cycles: request-cycles
// queued demand reads spend behind an in-flight refresh lock), the metric
// DARP/SARP explicitly attack.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  const std::pair<const char*, sim::MemoryMode> systems[] = {
      {"baseline", sim::MemoryMode::kBaseline},
      {"elastic", sim::MemoryMode::kElastic},
      {"pausing", sim::MemoryMode::kPausing},
      {"per-bank", sim::MemoryMode::kPerBank},
      {"darp", sim::MemoryMode::kDarp},
      {"sarp", sim::MemoryMode::kSarp},
      {"hira", sim::MemoryMode::kHira},
      {"ROP", sim::MemoryMode::kRop},
      {"no-refresh", sim::MemoryMode::kNoRefresh},
  };

  bench::StatsSidecar sidecar("bench_comparison_schemes");

  TextTable table("refresh schemes — IPC normalized to auto-refresh baseline");
  TextTable blocking(
      "refresh-blocked request-cycles (x1000) — lower is better");
  std::vector<std::string> header{"benchmark"};
  for (const auto& [label, mode] : systems) header.push_back(label);
  std::vector<std::string> blocking_header = header;
  table.set_header(std::move(header));
  blocking.set_header(std::move(blocking_header));

  for (const auto name : workload::kBenchmarkNames) {
    double base_ipc = 0.0;
    std::vector<std::string> row{std::string(name)};
    std::vector<std::string> blocked_row{std::string(name)};
    for (const auto& [label, mode] : systems) {
      auto res = sim::run_experiment(
          bench::bench_spec(std::string(name), mode, instr));
      if (mode == sim::MemoryMode::kBaseline) base_ipc = res.ipc();
      row.push_back(TextTable::fmt(res.ipc() / base_ipc, 4));
      const double blocked_k =
          static_cast<double>(
              res.stats.counter("mem.refresh_blocked_cycles").value()) /
          1000.0;
      blocked_row.push_back(TextTable::fmt(blocked_k, 1));
      sidecar.add(std::string(name) + "/" + label, res);
    }
    table.add_row(std::move(row));
    blocking.add_row(std::move(blocked_row));
  }
  table.print();
  blocking.print();
  bench::print_paper_note(
      "scheme comparison (related work, §VI)",
      "expected ordering on intensive benchmarks: baseline <= elastic <= "
      "pausing/per-bank <= darp/sarp/hira <= ROP <= no-refresh. Scheduling "
      "schemes move the freeze out of busy periods; per-bank shrinks its "
      "blast radius; DARP steers it into idle banks, SARP/HiRA shrink it to "
      "one subarray; ROP hides it behind the SRAM buffer.");
  sidecar.write();
  return 0;
}
