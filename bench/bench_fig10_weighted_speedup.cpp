// Figure 10: normalized weighted speedups of the 4-core workload mixes on
// Baseline, Baseline-RP (rank partitioning), and ROP.
//
// Paper: ROP improves weighted speedup over the baseline (max 1.8x, gmean
// 1.29x) and over Baseline-RP (max 18.8%, gmean 6.5%); the more intensive
// the mix, the larger the gain.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(10'000'000);
  const std::uint64_t llc = 4ull << 20;

  bench::AloneIpcCache alone;
  TextTable table("Fig. 10 — 4-core weighted speedup (normalized to Baseline)");
  table.set_header({"mix", "WS base", "WS base-RP", "WS ROP", "RP/base",
                    "ROP/base", "ROP/RP"});

  std::vector<double> rop_over_base, rop_over_rp;
  for (std::uint32_t wl = 1; wl <= workload::kNumWorkloadMixes; ++wl) {
    const auto ipc_alone = alone.for_mix(wl, 4, llc, instr);
    double ws[3];
    int i = 0;
    for (const auto& [mode, rp] :
         {std::pair{sim::MemoryMode::kBaseline, false},
          std::pair{sim::MemoryMode::kBaseline, true},
          std::pair{sim::MemoryMode::kRop, true}}) {
      sim::ExperimentSpec spec = sim::multi_core_spec(wl, mode, rp, llc);
      spec.instructions_per_core = instr;
      ws[i++] = sim::run_experiment(spec).weighted_speedup(ipc_alone);
    }
    rop_over_base.push_back(ws[2] / ws[0]);
    rop_over_rp.push_back(ws[2] / ws[1]);
    table.add_row({"WL" + std::to_string(wl), TextTable::fmt(ws[0], 3),
                   TextTable::fmt(ws[1], 3), TextTable::fmt(ws[2], 3),
                   TextTable::fmt(ws[1] / ws[0], 4),
                   TextTable::fmt(ws[2] / ws[0], 4),
                   TextTable::fmt(ws[2] / ws[1], 4)});
  }
  table.print();
  std::printf("\nmeasured: ROP/baseline gmean %.3fx, ROP/baseline-RP gmean "
              "%.3fx\n",
              bench::geomean(rop_over_base), bench::geomean(rop_over_rp));
  bench::print_paper_note(
      "Fig. 10",
      "paper: ROP/baseline up to 1.8x (gmean 1.29x), ROP/RP gmean 1.065x. "
      "Expect the ordering ROP >= base-RP >= base with the largest margins "
      "on the intensive mixes (WL1/WL2).");
  return 0;
}
