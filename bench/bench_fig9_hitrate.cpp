// Figure 9: SRAM buffer hit rate in single-core runs, by buffer capacity
// (16/32/64/128 lines).
//
// Paper: the buffer "constantly delivers a hit rate above 0.6" and the
// rate rises with capacity.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(20'000'000);
  const std::uint32_t capacities[] = {16, 32, 64, 128};

  TextTable table("Fig. 9 — SRAM buffer hit rate by capacity");
  table.set_header({"benchmark", "16", "32", "64", "128"});

  bench::StatsSidecar sidecar("bench_fig9_hitrate");
  std::vector<double> rates64;
  for (const auto name : workload::kBenchmarkNames) {
    std::vector<std::string> row{std::string(name)};
    for (const std::uint32_t cap : capacities) {
      sim::ExperimentSpec spec = bench::with_epochs(bench::bench_spec(
          std::string(name), sim::MemoryMode::kRop, instr));
      spec.rop.buffer_lines = cap;
      const auto rop = sim::run_experiment(spec);
      if (cap == 64) rates64.push_back(rop.sram_hit_rate);
      sidecar.add(std::string(name) + "/" + std::to_string(cap), rop);
      row.push_back(TextTable::fmt(rop.sram_hit_rate, 3));
    }
    table.add_row(std::move(row));
  }
  table.print();

  double mean64 = 0;
  for (const double r : rates64) mean64 += r / static_cast<double>(rates64.size());
  std::printf("\nmeasured: mean hit rate at 64 lines = %.3f (streaming "
              "benchmarks carry the average; quiet ones rarely stage)\n",
              mean64);
  bench::print_paper_note(
      "Fig. 9",
      "paper: hit rate above 0.6 on average and increasing with capacity. "
      "Here the metric counts reads arriving during refresh periods; for "
      "quiet benchmarks the denominator is tiny and the lambda/beta gating "
      "skips most refreshes, so their rates are noisy.");
  sidecar.write();
  return 0;
}
