// Microbenchmarks (google-benchmark) for the SMARTS sampled-execution
// machinery and the snapshot serializer: the CI estimator, a full sampled
// run vs its exact twin (the speedup the sampling block buys at bench
// scale), and an end-to-end checkpoint save + bit-identical restore.
// Gated numbers live in BENCH_sampling.json (ci_baseline_ns); the
// billion-cycle end-to-end wall-clock rows in that file come from ropsim
// runs, not this binary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/sampling.h"
#include "sim/sim_instance.h"
#include "sim/snapshot.h"
#include "workload/spec_profiles.h"

namespace {

using namespace rop;

sim::ExperimentSpec lbm_spec(std::uint64_t instructions) {
  sim::ExperimentSpec spec;
  spec.benchmarks = {"lbm"};
  spec.mode = sim::MemoryMode::kRop;
  spec.instructions_per_core = instructions;
  spec.max_cpu_cycles = instructions * 256;
  return spec;
}

// The per-window estimator update: mean, stderr, and the t-quantile CI
// over a realistic window count. run_sampled pays this once per window
// when a CI target is set, so it must stay trivially cheap next to the
// detailed window it summarizes.
void BM_EstimatorFromWindows(benchmark::State& state) {
  std::vector<double> obs;
  obs.reserve(256);
  std::uint64_t v = 99;
  for (int i = 0; i < 256; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;
    obs.push_back(2.0 + static_cast<double>(v >> 54) / 512.0);
  }
  for (auto _ : state) {
    const sim::SamplingEstimate e = sim::estimate_from(obs);
    benchmark::DoNotOptimize(e.ci95_half);
  }
}

// Exact twin of the sampled run below: same workload, same horizon,
// every cycle detailed. The sampled/exact ratio at this scale is the
// floor of what sampling buys (the win grows with the horizon — see the
// end_to_end_seconds rows in BENCH_sampling.json).
void BM_ExactExperiment(benchmark::State& state) {
  const sim::ExperimentSpec spec = lbm_spec(2'000'000);
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(spec);
    benchmark::DoNotOptimize(r.run.cpu_cycles);
  }
}

// Full sampled run at tuned defaults: alternating warmup/detail windows
// and functional fast-forward, estimator folds included.
void BM_SampledExperiment(benchmark::State& state) {
  sim::ExperimentSpec spec = lbm_spec(2'000'000);
  spec.sampling.enabled = true;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(spec);
    benchmark::DoNotOptimize(r.sampling.ipc.mean);
  }
}

// End-to-end checkpoint cost: run to an interior cycle, serialize the
// full simulator to disk (atomic tmp+rename), then restore and finish.
// This is what a campaign cell pays per snapshot_every period plus what
// a resume pays once; both halves ride the same serializer.
void BM_SnapshotSaveRestore(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rop_bench_ck.snap")
          .string();
  sim::ExperimentSpec save = lbm_spec(200'000);
  save.snapshot.out = path;
  save.snapshot.stop_at = 30'001;
  sim::ExperimentSpec restore = lbm_spec(200'000);
  restore.snapshot.in = path;
  for (auto _ : state) {
    const sim::ExperimentResult half = sim::run_experiment(save);
    const sim::ExperimentResult rest = sim::run_experiment(restore);
    benchmark::DoNotOptimize(half.interrupted);
    benchmark::DoNotOptimize(rest.run.cpu_cycles);
  }
  std::remove(path.c_str());
}

// Planned parallel sampling at the same scale: one functional-only
// planner pass dropping in-memory snapshots, windows dispatched to a
// 4-worker pool (sim/parallel_sampling). On a single hardware thread
// this measures the dispatch overhead over BM_SampledExperiment; the
// speedup itself needs real cores (see end_to_end_seconds).
void BM_ParallelSampledExperiment(benchmark::State& state) {
  sim::ExperimentSpec spec = lbm_spec(2'000'000);
  spec.sampling.enabled = true;
  spec.sampling.jobs = 4;
  for (auto _ : state) {
    const sim::ExperimentResult r = sim::run_experiment(spec);
    benchmark::DoNotOptimize(r.sampling.ipc.mean);
  }
}

// The unit the parallel planner pays per placed window: serialize the
// full simulator into an in-memory buffer and restore it onto a replica
// instance — no filesystem in the loop, unlike BM_SnapshotSaveRestore.
void BM_SnapshotInMemoryRoundTrip(benchmark::State& state) {
  const sim::ExperimentSpec spec = lbm_spec(200'000);
  sim::SimInstance planner = sim::build_sim_instance(spec);
  planner.system->begin_run(spec.instructions_per_core, spec.max_cpu_cycles);
  (void)planner.system->advance_until(30'001);
  const sim::SnapshotContext src = planner.snapshot_context();

  sim::SimInstance replica = sim::build_sim_instance(spec);
  replica.system->begin_run(spec.instructions_per_core, spec.max_cpu_cycles);
  const sim::SnapshotContext dst = replica.snapshot_context();

  const std::uint64_t fp =
      sim::config_fingerprint(sim::spec_canonical(spec));
  for (auto _ : state) {
    const std::string buf = sim::save_snapshot_buffer(src, fp);
    std::string err;
    const bool ok = sim::load_snapshot_buffer(buf, dst, fp, &err);
    benchmark::DoNotOptimize(ok);
  }
}

}  // namespace

BENCHMARK(BM_EstimatorFromWindows);
BENCHMARK(BM_ExactExperiment)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampledExperiment)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSampledExperiment)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotSaveRestore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotInMemoryRoundTrip)->Unit(benchmark::kMillisecond);
