// Figure 4: fraction of refreshes falling into the two dominant events —
// E1 (B>0 && A>0) and E2 (B=0 && A=0) — at 1x/2x/4x observational windows.
//
// Paper: E1+E2 dominates across all benchmarks, so a predictor that only
// distinguishes those two events already achieves high coverage.
#include <sstream>

#include "analysis_listener.h"
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);

  TextTable table("Fig. 4 — dominant-event coverage E1 + E2");
  table.set_header({"benchmark", "E1 1x", "E2 1x", "E1+E2 1x", "E1+E2 2x",
                    "E1+E2 4x"});

  bench::StatsSidecar sidecar("bench_fig4_event_coverage");
  double coverage_sum = 0;
  for (const auto name : workload::kBenchmarkNames) {
    const auto obs = bench::observe_benchmark(std::string(name), instr);
    const auto& c1 = obs->counts(0);
    const auto& c2 = obs->counts(1);
    const auto& c4 = obs->counts(2);
    const double cov1 = c1.e1_fraction() + c1.e2_fraction();
    coverage_sum += cov1;
    {
      // Listener-based harness: no ExperimentResult, so render the window
      // categories directly.
      std::ostringstream os;
      telemetry::JsonWriter w(os);
      w.begin_object();
      static constexpr const char* kWindows[] = {"1x", "2x", "4x"};
      for (std::size_t k = 0; k < 3; ++k) {
        const auto& c = obs->counts(k);
        w.key(kWindows[k]);
        w.begin_object();
        w.key("e1_fraction");
        w.value(c.e1_fraction());
        w.key("e2_fraction");
        w.value(c.e2_fraction());
        w.key("lambda");
        w.value(c.lambda());
        w.key("beta");
        w.value(c.beta());
        w.key("refreshes");
        w.value(c.total());
        w.end_object();
      }
      w.end_object();
      sidecar.add_raw(std::string(name), os.str());
    }
    table.add_row({std::string(name), TextTable::pct(c1.e1_fraction()),
                   TextTable::pct(c1.e2_fraction()), TextTable::pct(cov1),
                   TextTable::pct(c2.e1_fraction() + c2.e2_fraction()),
                   TextTable::pct(c4.e1_fraction() + c4.e2_fraction())});
  }
  table.print();
  std::printf("\nmeasured: mean E1+E2 coverage at 1x = %.1f%%\n",
              100 * coverage_sum / static_cast<double>(workload::kBenchmarkNames.size()));
  bench::print_paper_note(
      "Fig. 4",
      "paper: E1 and E2 are the dominant refresh categories for every "
      "benchmark (typically > 80% combined), which is what makes the "
      "B-based prefetch decision accurate.");
  sidecar.write();
  return 0;
}
