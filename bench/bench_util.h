// Shared helpers for the figure/table reproduction benches.
//
// Run lengths default to values that finish each bench in minutes; set
// ROP_BENCH_INSTRUCTIONS (per-core instruction count) to trade fidelity for
// time, e.g. ROP_BENCH_INSTRUCTIONS=2000000 for a smoke pass.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/runner.h"
#include "telemetry/stats_json.h"
#include "workload/spec_profiles.h"

namespace rop::bench {

inline std::uint64_t instructions_per_core(std::uint64_t fallback) {
  if (const char* env = std::getenv("ROP_BENCH_INSTRUCTIONS")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

/// Worker count for sim::run_experiments in the figure harnesses. Defaults
/// to one thread per hardware thread; ROP_BENCH_THREADS overrides (1 forces
/// the serial path).
inline unsigned bench_threads() {
  if (const char* env = std::getenv("ROP_BENCH_THREADS")) {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

/// Simulation throughput in simulated memory-controller megacycles per
/// wall-clock second — the unit the host-speed reports use (see
/// docs/PERFORMANCE.md). Zero when the run was too fast to time.
inline double sim_mcycles_per_second(const sim::ExperimentResult& r) {
  return r.sim_cycles_per_second() / 1e6;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Single-core spec with bench-appropriate run length.
inline sim::ExperimentSpec bench_spec(const std::string& benchmark,
                                      sim::MemoryMode mode,
                                      std::uint64_t instructions) {
  sim::ExperimentSpec spec = sim::single_core_spec(benchmark, mode);
  spec.instructions_per_core = instructions;
  return spec;
}

/// IPC of each benchmark running alone on a `ranks`-rank baseline memory
/// with the given LLC — the denominator of weighted speedup (Eq. 4).
/// Memoized per (benchmark, ranks, llc) because the LLC sweeps reuse it.
class AloneIpcCache {
 public:
  double get(const std::string& benchmark, std::uint32_t ranks,
             std::uint64_t llc_bytes, std::uint64_t instructions) {
    const std::string key = benchmark + "/" + std::to_string(ranks) + "/" +
                            std::to_string(llc_bytes);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    sim::ExperimentSpec spec;
    spec.benchmarks = {benchmark};
    spec.mode = sim::MemoryMode::kBaseline;
    spec.ranks = ranks;
    spec.llc_bytes = llc_bytes;
    spec.instructions_per_core = instructions;
    const double ipc = sim::run_experiment(spec).ipc();
    cache_.emplace(key, ipc);
    return ipc;
  }

  std::vector<double> for_mix(std::uint32_t wl, std::uint32_t ranks,
                              std::uint64_t llc_bytes,
                              std::uint64_t instructions) {
    std::vector<double> out;
    for (const auto& b : workload::workload_mix(wl)) {
      out.push_back(get(b, ranks, llc_bytes, instructions));
    }
    return out;
  }

 private:
  std::map<std::string, double> cache_;
};

inline void print_paper_note(const char* what, const char* paper_says) {
  std::printf("\npaper reference: %s\n%s\n", what, paper_says);
}

/// Add epoch sampling (one epoch per tREFI by default) to a spec so the
/// bench's JSON sidecar carries time-series alongside the printed tables.
inline sim::ExperimentSpec with_epochs(sim::ExperimentSpec spec,
                                       Cycle epoch_cycles = 6240) {
  spec.telemetry.sampler.epoch_cycles = epoch_cycles;
  return spec;
}

/// Machine-readable sidecar for the figure benches: collects labelled
/// ExperimentResult::to_json documents and writes `<bench>.stats.json`
/// (one object keyed by label) next to the working directory. Disabled by
/// ROP_BENCH_SIDECAR=0; plots and the CI schema check consume the output.
class StatsSidecar {
 public:
  explicit StatsSidecar(std::string bench_name)
      : path_(bench_name + ".stats.json") {
    if (const char* env = std::getenv("ROP_BENCH_SIDECAR")) {
      enabled_ = std::strcmp(env, "0") != 0;
    }
  }

  void add(const std::string& label, const sim::ExperimentResult& result) {
    if (!enabled_) return;
    std::string doc = result.to_json();
    while (!doc.empty() && doc.back() == '\n') doc.pop_back();
    entries_.emplace_back(label, std::move(doc));
  }

  /// For harnesses that do not produce an ExperimentResult (e.g. the
  /// listener-based Fig. 4 observer): attach a pre-rendered JSON value.
  void add_raw(const std::string& label, std::string json_value) {
    if (!enabled_) return;
    entries_.emplace_back(label, std::move(json_value));
  }

  /// Write the collected documents; prints the path (or the failure).
  void write() const {
    if (!enabled_ || entries_.empty()) return;
    std::ofstream os(path_, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "sidecar: cannot open %s for writing\n",
                   path_.c_str());
      return;
    }
    os << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      os << '"' << telemetry::JsonWriter::escape(entries_[i].first)
         << "\": " << entries_[i].second;
      os << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    os << "}\n";
    std::printf("\nwrote stats sidecar: %s (%zu runs)\n", path_.c_str(),
                entries_.size());
  }

 private:
  std::string path_;
  bool enabled_ = true;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace rop::bench
