// Figure 13: normalized 4-core energy of ROP relative to the baseline
// across LLC sizes of 1/2/4/8 MB.
//
// Paper: ROP saves energy at every LLC size (up to 48.8%, gmean 24.4%).
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(8'000'000);
  const std::uint64_t llcs[] = {1ull << 20, 2ull << 20, 4ull << 20,
                                8ull << 20};

  TextTable table("Fig. 13 — ROP energy vs baseline, by LLC size");
  table.set_header({"mix", "1MB", "2MB", "4MB", "8MB"});

  std::vector<double> all_norms;
  for (std::uint32_t wl = 1; wl <= workload::kNumWorkloadMixes; ++wl) {
    std::vector<std::string> row{"WL" + std::to_string(wl)};
    for (const std::uint64_t llc : llcs) {
      sim::ExperimentSpec base =
          sim::multi_core_spec(wl, sim::MemoryMode::kBaseline, false, llc);
      sim::ExperimentSpec rop =
          sim::multi_core_spec(wl, sim::MemoryMode::kRop, true, llc);
      base.instructions_per_core = instr;
      rop.instructions_per_core = instr;
      const double norm = sim::run_experiment(rop).total_energy_mj() /
                          sim::run_experiment(base).total_energy_mj();
      all_norms.push_back(norm);
      row.push_back(TextTable::fmt(norm, 4));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nmeasured: gmean normalized energy %.4f across all mixes "
              "and LLC sizes\n",
              bench::geomean(all_norms));
  bench::print_paper_note(
      "Fig. 13",
      "paper: energy savings at every LLC size, up to 48.8% (gmean 24.4%), "
      "strongest on intensive mixes at small LLCs.");
  return 0;
}
