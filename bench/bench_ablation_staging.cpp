// Ablation of the staging decisions this implementation adds on top of the
// paper's text (DESIGN.md §6): adaptive round sizing, the bank recency
// filter on Eq. 3, and the bus-saturation guard.
#include "bench_util.h"

int main() {
  using namespace rop;
  const std::uint64_t instr = bench::instructions_per_core(15'000'000);
  const char* benchmarks[] = {"libquantum", "lbm", "gemsfdtd", "gcc"};

  TextTable table(
      "Ablation — staging mechanics (IPC vs baseline / buffer hit rate)");
  table.set_header({"benchmark", "full ROP", "fixed-count", "no-recency",
                    "no-sat-guard", "hit full", "hit no-recency"});

  for (const char* name : benchmarks) {
    const auto base = sim::run_experiment(
        bench::bench_spec(name, sim::MemoryMode::kBaseline, instr));

    const auto run_variant = [&](auto tweak) {
      sim::ExperimentSpec spec =
          bench::bench_spec(name, sim::MemoryMode::kRop, instr);
      tweak(spec.rop);
      return sim::run_experiment(spec);
    };

    const auto full = run_variant([](engine::RopConfig&) {});
    const auto fixed = run_variant(
        [](engine::RopConfig& rc) { rc.adaptive_count = false; });
    const auto no_recency = run_variant(
        [](engine::RopConfig& rc) { rc.bank_recency_horizon = 0; });
    const auto no_guard = run_variant(
        [](engine::RopConfig& rc) { rc.saturation_guard_bursts = 0.0; });

    table.add_row({name, TextTable::fmt(full.ipc() / base.ipc(), 4),
                   TextTable::fmt(fixed.ipc() / base.ipc(), 4),
                   TextTable::fmt(no_recency.ipc() / base.ipc(), 4),
                   TextTable::fmt(no_guard.ipc() / base.ipc(), 4),
                   TextTable::fmt(full.sram_hit_rate, 3),
                   TextTable::fmt(no_recency.sram_hit_rate, 3)});
  }
  table.print();
  bench::print_paper_note(
      "staging ablation (DESIGN.md §6)",
      "expectation: disabling the recency filter drops the hit rate for "
      "bank-resident streams (Eq. 3 dilutes the hot bank); fixed-count "
      "staging adds bus waste on quieter benchmarks; the saturation guard "
      "only matters when the bus is near capacity.");
  return 0;
}
