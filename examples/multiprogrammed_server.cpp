// Scenario: a consolidation server running four applications on a 4-rank
// memory (the paper's multiprogrammed setup, §V-C). Demonstrates the
// public experiment API: workload mixes, rank partitioning, weighted
// speedup (Eq. 4), and per-core fairness.
//
//   ./example_multiprogrammed_server [mix 1..6] [instructions]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace rop;
  const std::uint32_t wl =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1;
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8'000'000ull;
  if (wl < 1 || wl > workload::kNumWorkloadMixes) {
    std::fprintf(stderr, "mix must be 1..6\n");
    return 1;
  }

  const auto mix = workload::workload_mix(wl);
  std::printf("workload mix WL%u:", wl);
  for (const auto& b : mix) std::printf(" %s", b.c_str());
  std::printf("  (%llu instructions per core)\n\n",
              static_cast<unsigned long long>(instructions));

  // IPC_alone per benchmark (Eq. 4 denominators).
  std::vector<double> alone;
  for (const auto& b : mix) {
    sim::ExperimentSpec spec;
    spec.benchmarks = {b};
    spec.ranks = 4;
    spec.llc_bytes = 4ull << 20;
    spec.instructions_per_core = instructions;
    alone.push_back(sim::run_experiment(spec).ipc());
  }

  TextTable table("4-core consolidation: baseline vs rank partitioning vs ROP");
  table.set_header({"system", "WS (Eq. 4)", "core0", "core1", "core2",
                    "core3", "energy (mJ)", "SRAM hit"});
  for (const auto& [label, mode, rp] :
       {std::tuple{"baseline", sim::MemoryMode::kBaseline, false},
        std::tuple{"baseline-RP", sim::MemoryMode::kBaseline, true},
        std::tuple{"ROP", sim::MemoryMode::kRop, true}}) {
    sim::ExperimentSpec spec = sim::multi_core_spec(wl, mode, rp);
    spec.instructions_per_core = instructions;
    const auto res = sim::run_experiment(spec);
    std::vector<std::string> row{label,
                                 TextTable::fmt(res.weighted_speedup(alone),
                                                3)};
    for (std::size_t c = 0; c < 4; ++c) {
      row.push_back(TextTable::fmt(res.run.cores[c].ipc / alone[c], 3));
    }
    row.push_back(TextTable::fmt(res.total_energy_mj(), 2));
    row.push_back(mode == sim::MemoryMode::kRop
                      ? TextTable::fmt(res.sram_hit_rate, 3)
                      : std::string("-"));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nPer-core columns are IPC_shared / IPC_alone (1.0 = no slowdown "
      "from sharing). Rank partitioning removes inter-application rank "
      "interference; ROP additionally hides each rank's refresh freezes.\n");
  return 0;
}
