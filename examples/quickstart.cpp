// Quickstart: run one benchmark on the three memory systems the paper
// compares — auto-refresh baseline, idealized no-refresh, and ROP — and
// print the headline metrics.
//
//   ./example_quickstart [benchmark] [instructions]
//
// Benchmark defaults to libquantum (the paper's best case); instruction
// count defaults to 4M per core.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace rop;

  const std::string benchmark = argc > 1 ? argv[1] : "libquantum";
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4'000'000ull;

  std::printf("ROP quickstart: benchmark=%s, %llu instructions\n\n",
              benchmark.c_str(),
              static_cast<unsigned long long>(instructions));

  TextTable table("baseline vs no-refresh vs ROP (64-line buffer)");
  table.set_header({"system", "IPC", "norm. IPC", "energy (mJ)",
                    "norm. energy", "refreshes", "SRAM hit rate"});

  double base_ipc = 0.0;
  double base_energy = 0.0;
  for (const auto& [name, mode] :
       {std::pair{"baseline", sim::MemoryMode::kBaseline},
        std::pair{"no-refresh", sim::MemoryMode::kNoRefresh},
        std::pair{"ROP", sim::MemoryMode::kRop}}) {
    sim::ExperimentSpec spec = sim::single_core_spec(benchmark, mode);
    spec.instructions_per_core = instructions;
    const sim::ExperimentResult res = sim::run_experiment(spec);
    if (mode == sim::MemoryMode::kBaseline) {
      base_ipc = res.ipc();
      base_energy = res.total_energy_mj();
    }
    table.add_row({name, TextTable::fmt(res.ipc(), 4),
                   TextTable::fmt(res.ipc() / base_ipc, 4),
                   TextTable::fmt(res.total_energy_mj(), 3),
                   TextTable::fmt(res.total_energy_mj() / base_energy, 4),
                   std::to_string(res.refreshes),
                   mode == sim::MemoryMode::kRop
                       ? TextTable::fmt(res.sram_hit_rate, 3)
                       : std::string("-")});
  }
  table.print();

  std::printf(
      "\nExpected shape: no-refresh > ROP > baseline in IPC;\n"
      "ROP recovers most of the refresh-induced loss (paper Fig. 7).\n");
  return 0;
}
