// A microscopic look at refresh behaviour (paper §III): run a benchmark on
// the baseline memory and report how refreshes and requests interact —
// non-blocking fractions, blocked-request counts, and the four B/A refresh
// categories with the resulting lambda/beta.
//
//   ./example_refresh_microscope [benchmark] [instructions]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "cpu/system.h"
#include "mem/memory_system.h"
#include "rop/pattern_profiler.h"
#include "sim/presets.h"
#include "workload/spec_profiles.h"
#include "workload/synthetic.h"

namespace {

/// Observer feeding one WindowCorrelator at the 1x tREFI window.
class Microscope final : public rop::mem::ControllerListener {
 public:
  Microscope(rop::Cycle trefi, std::uint32_t ranks)
      : correlator_(trefi, ranks) {}

  std::optional<rop::Cycle> on_enqueue(const rop::mem::Request& req,
                                       rop::Cycle now) override {
    correlator_.on_request(req.coord.rank, now,
                           req.type == rop::mem::ReqType::kRead);
    return std::nullopt;
  }
  void on_demand_serviced(const rop::mem::Request&, rop::Cycle) override {}
  void on_rank_locked(rop::RankId, rop::Cycle) override {}
  void on_refresh_issued(rop::RankId rank, rop::Cycle start,
                         rop::Cycle) override {
    correlator_.on_refresh(rank, start);
  }
  void on_prefetch_filled(const rop::mem::Request&, rop::Cycle) override {}
  void on_tick(rop::Cycle now) override {
    if ((now & 0xFF) == 0) correlator_.advance(now);
  }

  rop::engine::WindowCorrelator correlator_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rop;
  const std::string benchmark = argc > 1 ? argv[1] : "bzip2";
  const std::uint64_t instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 15'000'000ull;

  StatRegistry stats;
  const mem::MemoryConfig mem_cfg =
      sim::make_memory_config(1, sim::MemoryMode::kBaseline);
  mem::MemorySystem memory(mem_cfg, &stats);
  Microscope scope(mem_cfg.timings.tREFI, mem_cfg.org.ranks);
  memory.controller(0).set_listener(&scope);

  workload::SyntheticTrace trace(workload::spec_profile(benchmark));
  std::vector<workload::TraceSource*> traces{&trace};
  cpu::System system(sim::make_system_config(2ull << 20, false), memory,
                     traces);
  const auto rr = system.run(instructions, instructions * 64);
  scope.correlator_.finalize();

  std::printf("refresh microscope: %s, %llu instructions, IPC %.3f\n\n",
              benchmark.c_str(),
              static_cast<unsigned long long>(instructions),
              rr.cores[0].ipc);

  const auto& blocking = memory.controller(0).blocking_stats();
  TextTable t1("refresh/request interaction (paper Figs. 2-3)");
  t1.set_header({"examined window", "non-blocking", "mean blocked",
                 "max blocked"});
  const char* labels[] = {"1x tRFC", "2x tRFC", "4x tRFC"};
  for (std::size_t k = 0; k < 3; ++k) {
    t1.add_row({labels[k], TextTable::pct(blocking.non_blocking_fraction(k)),
                TextTable::fmt(blocking.mean_blocked_per_blocking_refresh(k),
                               2),
                std::to_string(blocking.max_blocked(k))});
  }
  t1.print();

  const auto& c = scope.correlator_.counts();
  TextTable t2("refresh categories in the 1x tREFI window (paper §IV-B)");
  t2.set_header({"category", "count", "fraction"});
  const char* cats[] = {"B>0 && A>0 (E1)", "B>0 && A=0", "B=0 && A>0",
                        "B=0 && A=0 (E2)"};
  for (std::size_t k = 0; k < 4; ++k) {
    t2.add_row({cats[k], std::to_string(c.counts[k]),
                TextTable::pct(c.total() ? static_cast<double>(c.counts[k]) /
                                               static_cast<double>(c.total())
                                         : 0.0)});
  }
  t2.print();

  std::printf("\nlambda = P{A>0 | B>0} = %.2f    beta = P{A=0 | B=0} = %.2f\n",
              c.lambda(), c.beta());
  std::printf("prediction coverage E1+E2 = %.1f%% of %llu refreshes\n",
              100.0 * (c.e1_fraction() + c.e2_fraction()),
              static_cast<unsigned long long>(c.total()));
  return 0;
}
