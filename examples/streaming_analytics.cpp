// Scenario: an in-memory analytics engine scanning large column segments
// (the DRAM-based storage systems the paper's introduction motivates, e.g.
// log-structured DRAM stores). Scans are latency-sensitive: a refresh that
// freezes the rank mid-scan stretches the tail.
//
// This example runs a scan-heavy workload on baseline and ROP memories and
// reports mean and tail read latency at the controller, showing where the
// improvement comes from rather than just the bottom-line IPC.
//
//   ./example_streaming_analytics [instructions]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "sim/experiment.h"
#include "workload/synthetic.h"

namespace {

rop::workload::SyntheticConfig scan_workload() {
  rop::workload::SyntheticConfig wc;
  wc.name = "column-scan";
  wc.mean_gap = 200;  // filter/aggregate work between line touches
  wc.write_fraction = 0.05;  // scans are read-dominant
  wc.footprint_lines = (512ull << 20) / rop::kLineBytes;  // 512 MB segment
  wc.streams = {{{+1}, 1.0}};  // one column segment, sequential scan
  wc.random_fraction = 0.01;  // occasional dictionary lookups
  wc.seed = 2016;
  return wc;
}

struct ScanResult {
  double ipc = 0;
  double mean_latency = 0;
  double p95_latency = 0;
  double p99_latency = 0;
  double max_latency = 0;
  double sram_served_frac = 0;
};

ScanResult run(rop::sim::MemoryMode mode, std::uint64_t instructions) {
  using namespace rop;
  StatRegistry stats;
  const mem::MemoryConfig mem_cfg = sim::make_memory_config(1, mode);
  mem::MemorySystem memory(mem_cfg, &stats);
  std::unique_ptr<engine::RopEngine> eng;
  if (mode == sim::MemoryMode::kRop) {
    eng = std::make_unique<engine::RopEngine>(engine::RopConfig{},
                                              memory.controller(0),
                                              memory.address_map(), &stats);
  }
  workload::SyntheticTrace trace(scan_workload());
  std::vector<workload::TraceSource*> traces{&trace};
  cpu::System system(sim::make_system_config(2ull << 20, false), memory,
                     traces);
  const auto rr = system.run(instructions, instructions * 64);

  ScanResult out;
  out.ipc = rr.cores[0].ipc;
  if (const auto* lat = stats.find_scalar("mem.read_latency")) {
    out.mean_latency = lat->mean();
    out.max_latency = lat->max();
  }
  if (const auto* hist = stats.find_histogram("mem.read_latency_hist")) {
    out.p95_latency = static_cast<double>(hist->quantile(0.95));
    out.p99_latency = static_cast<double>(hist->quantile(0.99));
  }
  const double reads =
      static_cast<double>(stats.counter_value("mem.reads"));
  out.sram_served_frac =
      reads > 0 ? static_cast<double>(stats.counter_value("mem.sram_serviced")) / reads
                : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rop;
  const std::uint64_t instructions =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000'000ull;

  std::printf("streaming analytics scan: 512 MB column segment, "
              "%llu instructions\n\n",
              static_cast<unsigned long long>(instructions));

  TextTable table("scan latency under refresh (controller clock cycles)");
  table.set_header({"memory", "IPC", "mean", "p95", "p99", "max",
                    "SRAM-served"});
  for (const auto& [label, mode] :
       {std::pair{"baseline", sim::MemoryMode::kBaseline},
        std::pair{"no-refresh", sim::MemoryMode::kNoRefresh},
        std::pair{"ROP", sim::MemoryMode::kRop}}) {
    const ScanResult r = run(mode, instructions);
    table.add_row({label, TextTable::fmt(r.ipc, 4),
                   TextTable::fmt(r.mean_latency, 1),
                   TextTable::fmt(r.p95_latency, 0),
                   TextTable::fmt(r.p99_latency, 0),
                   TextTable::fmt(r.max_latency, 0),
                   TextTable::pct(r.sram_served_frac, 2)});
  }
  table.print();
  std::printf(
      "\nReading the table: under the baseline, scans that collide with a "
      "refresh wait out the tRFC freeze (~280 cycles) — that is the p99. "
      "ROP serves those reads from the SRAM buffer, collapsing the p99 to "
      "near the no-refresh bound; the remaining max outliers are rare "
      "drain-window stragglers.\n");
  return 0;
}
