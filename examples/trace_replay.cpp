// Trace capture and replay: snapshot a synthetic benchmark into the text
// trace format, replay it through the simulator, and verify the replay
// reproduces the generator run exactly. This is the workflow for swapping
// in real application traces (e.g. converted SPEC or gem5/zsim dumps).
//
//   ./example_trace_replay [benchmark] [records] [path]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cpu/system.h"
#include "mem/memory_system.h"
#include "sim/presets.h"
#include "workload/spec_profiles.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace {

double run_ipc(rop::workload::TraceSource& source,
               std::uint64_t instructions) {
  using namespace rop;
  StatRegistry stats;
  const mem::MemoryConfig mem_cfg =
      sim::make_memory_config(1, sim::MemoryMode::kBaseline);
  mem::MemorySystem memory(mem_cfg, &stats);
  std::vector<workload::TraceSource*> traces{&source};
  cpu::System system(sim::make_system_config(2ull << 20, false), memory,
                     traces);
  return system.run(instructions, instructions * 64).cores[0].ipc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rop;
  const std::string benchmark = argc > 1 ? argv[1] : "gcc";
  const std::size_t records =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
  const std::string path =
      argc > 3 ? argv[3] : "/tmp/rop_" + benchmark + ".trace";

  // 1. Capture the generator into a file.
  workload::SyntheticTrace generator(workload::spec_profile(benchmark));
  const auto captured = workload::capture(generator, records);
  workload::write_trace_file(path, captured);
  std::printf("captured %zu records of '%s' into %s\n", captured.size(),
              benchmark.c_str(), path.c_str());

  // 2. Replay from the file and from the generator; the runs must agree
  //    as long as execution stays within the captured prefix.
  std::uint64_t instructions = 0;
  for (const auto& rec : captured) instructions += rec.gap + 1;
  instructions = instructions * 9 / 10;  // stay inside the captured prefix

  workload::MemoryTrace replay(workload::read_trace_file(path));
  generator.reset();
  const double ipc_generator = run_ipc(generator, instructions);
  const double ipc_replay = run_ipc(replay, instructions);

  std::printf("IPC from generator: %.6f\n", ipc_generator);
  std::printf("IPC from replay:    %.6f\n", ipc_replay);
  if (ipc_generator == ipc_replay) {
    std::printf("replay is bit-identical to the generator run\n");
  } else {
    std::printf("replay diverged (ran past the captured prefix?)\n");
    return 1;
  }
  std::remove(path.c_str());
  return 0;
}
