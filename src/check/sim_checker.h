// SimChecker: machine-checked simulator invariants (opt-in).
//
// PR 1 made the controller hot paths rely on incrementally-maintained
// bookkeeping (per-rank pending counters, the write_index_ line set, SRAM
// buffer coherence, refresh postponement accounting). The checker recomputes
// each of those from the ground-truth structures and cross-checks the stat
// counters for request conservation, so any future fast-path change that
// drifts from the slow-path definition fails loudly in debug/CI runs
// instead of silently skewing results.
//
// Invariant families (docs/CORRECTNESS.md has the full catalogue):
//  (a) counter/index consistency — pending_reads_/pending_writes_/
//      queued_prefetches_/inflight_prefetches_ equal a fresh count of the
//      queues, and write_index_ is exactly the set of queued write lines;
//  (b) buffer coherence — the SRAM buffer never holds a line with a queued
//      newer write on its channel;
//  (c) refresh deadlines — per-rank owed refreshes never exceed the JEDEC
//      postponement budget, so every tREFI interval is eventually covered
//      (out-of-order per-bank refresh under DARP included);
//  (c') subarray locks (SARP/HiRA) — a bank with an in-flight subarray
//      refresh is never whole-bank kRefreshing, at most one of its
//      subarrays is locked at a time, and an open row never lives in the
//      locked subarray;
//  (d) request conservation — enqueued == completed + still-queued +
//      in-flight per request class, and completion >= arrival for every
//      retired request.
//
// (a)-(c) run on every controller tick via the ControllerAuditor hook; (d)
// runs at end of run in finalize(). A detached checker costs one null-check
// per tick (see bench_micro_hotpaths).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::check {

struct CheckerConfig {
  /// Keep the first N violation messages verbatim (all are still counted).
  std::uint32_t max_reports = 16;
};

class SimChecker final : public mem::ControllerAuditor {
 public:
  explicit SimChecker(CheckerConfig cfg = {});
  ~SimChecker() override;

  SimChecker(const SimChecker&) = delete;
  SimChecker& operator=(const SimChecker&) = delete;

  /// Register as the auditor of every controller in `mem`. The checker must
  /// outlive the ticking of `mem` (the destructor detaches defensively).
  void attach(mem::MemorySystem& mem);

  /// Channel-scoped variant for the sharded loop: audit only channel `ch`,
  /// so each shard's ticks call into a checker owned by that shard and no
  /// checker state is shared across workers. The global conservation audit
  /// in finalize() runs only on the channel-0 checker (it reads the folded
  /// shared registry, so it must run after the run's stat fold).
  void attach(mem::MemorySystem& mem, ChannelId ch);

  /// Include a ROP engine's SRAM buffer in the per-tick coherence sweep.
  void watch(const engine::RopEngine& eng);

  /// Attach a trace sink (non-owning): the first violation snapshots the
  /// last `context_events` trace events and summary() appends them, so a
  /// CI failure carries the command/refresh timeline that led up to it.
  void set_trace(const telemetry::TraceSink* trace,
                 std::size_t context_events = 32);

  // mem::ControllerAuditor
  void on_tick_end(const mem::Controller& ctrl, Cycle now) override;
  void on_retired(const mem::Request& req) override;

  /// End-of-run audit: request conservation across all channels and final
  /// refresh-coverage deadlines. Call after the run loop (and after the
  /// final drain); safe to call once per attached memory system.
  void finalize();

  /// Invariant family (e), CPI-stack exactness: the attribution ledger's
  /// disjoint categories must sum bit-exactly to the core's cycles. The
  /// experiment layer calls this once per core with the frozen values
  /// (unresolved critical span already folded into `other`); any gap means
  /// a cycle was double-billed or dropped. Must run before finalize().
  void audit_cpi(std::uint32_t core, std::uint64_t cycles,
                 std::uint64_t stack_sum);

  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] std::uint64_t ticks_checked() const { return ticks_checked_; }
  [[nodiscard]] std::uint64_t requests_retired() const { return retired_; }
  [[nodiscard]] const std::vector<std::string>& reports() const {
    return reports_;
  }
  /// One-line verdict plus the retained violation reports (for ropsim
  /// --check and CI logs).
  [[nodiscard]] std::string summary() const;

 private:
  void violate(std::string msg);
  void check_queue_counters(const mem::Controller& c, Cycle now);
  void check_refresh_deadlines(const mem::Controller& c, Cycle now);
  void check_subarray_locks(const mem::Controller& c, Cycle now);
  void check_buffer_coherence(const mem::Controller& c, Cycle now);
  void check_conservation();

  CheckerConfig cfg_;
  mem::MemorySystem* mem_ = nullptr;
  /// Channel this checker audits; kInvalidChannel = all of them.
  static constexpr ChannelId kAllChannels = ~ChannelId{0};
  ChannelId scope_ = kAllChannels;
  std::vector<const engine::RopEngine*> engines_;
  const telemetry::TraceSink* trace_ = nullptr;
  std::size_t trace_context_ = 32;
  std::vector<std::string> trace_tail_;  // captured at the first violation
  std::vector<std::string> reports_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t ticks_checked_ = 0;
  std::uint64_t retired_ = 0;
  Cycle last_now_ = 0;
  bool finalized_ = false;
};

}  // namespace rop::check
