#include "check/sim_checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "telemetry/trace_sink.h"

namespace rop::check {

SimChecker::SimChecker(CheckerConfig cfg) : cfg_(cfg) {}

SimChecker::~SimChecker() {
  // Defensive detach: a controller must never hold a dangling auditor.
  if (mem_ == nullptr) return;
  for (ChannelId ch = 0; ch < mem_->num_channels(); ++ch) {
    if (mem_->controller(ch).auditor() == this) {
      mem_->controller(ch).set_auditor(nullptr);
    }
  }
}

void SimChecker::attach(mem::MemorySystem& mem) {
  ROP_ASSERT(mem_ == nullptr && "one checker audits one memory system");
  mem_ = &mem;
  for (ChannelId ch = 0; ch < mem.num_channels(); ++ch) {
    mem.controller(ch).set_auditor(this);
  }
}

void SimChecker::attach(mem::MemorySystem& mem, ChannelId ch) {
  ROP_ASSERT(mem_ == nullptr && "one checker audits one memory system");
  ROP_ASSERT(ch < mem.num_channels());
  mem_ = &mem;
  scope_ = ch;
  mem.controller(ch).set_auditor(this);
}

void SimChecker::watch(const engine::RopEngine& eng) {
  engines_.push_back(&eng);
}

void SimChecker::set_trace(const telemetry::TraceSink* trace,
                           std::size_t context_events) {
  trace_ = trace;
  trace_context_ = context_events;
}

void SimChecker::violate(std::string msg) {
  ++violation_count_;
  if (reports_.size() < cfg_.max_reports) reports_.push_back(std::move(msg));
  // Snapshot the trace tail at the *first* violation: that is the timeline
  // that led into the bug; later violations are usually fallout.
  if (violation_count_ == 1 && trace_ != nullptr) {
    trace_tail_ = trace_->format_recent(trace_context_);
  }
}

void SimChecker::on_tick_end(const mem::Controller& ctrl, Cycle now) {
  ++ticks_checked_;
  last_now_ = std::max(last_now_, now);
  check_queue_counters(ctrl, now);
  check_refresh_deadlines(ctrl, now);
  check_subarray_locks(ctrl, now);
  check_buffer_coherence(ctrl, now);
}

void SimChecker::on_retired(const mem::Request& req) {
  ++retired_;
  if (req.completion < req.arrival) {
    std::ostringstream os;
    os << "[conservation] request " << req.id << " line 0x" << std::hex
       << req.line_addr << std::dec << " retired with completion "
       << req.completion << " < arrival " << req.arrival;
    violate(os.str());
  }
}

void SimChecker::check_queue_counters(const mem::Controller& c, Cycle now) {
  const std::uint32_t ranks = c.channel().num_ranks();
  std::vector<std::uint32_t> reads(ranks, 0);
  std::vector<std::uint32_t> writes(ranks, 0);
  std::vector<std::uint32_t> queued_pf(ranks, 0);
  std::vector<std::uint32_t> inflight_pf(ranks, 0);

  for (const auto& r : c.read_queue()) ++reads.at(r.coord.rank);
  for (const auto& r : c.write_queue()) ++writes.at(r.coord.rank);
  for (const auto& r : c.prefetch_queue()) ++queued_pf.at(r.coord.rank);
  for (const auto& r : c.in_flight()) {
    if (r.type == mem::ReqType::kPrefetch) ++inflight_pf.at(r.coord.rank);
    // Bursts with completion <= now were drained at the top of this tick;
    // anything issued later lands strictly in the future.
    if (r.completion <= now) {
      std::ostringstream os;
      os << "[counters] ch " << c.id() << " in-flight request " << r.id
         << " completion " << r.completion << " <= now " << now;
      violate(os.str());
    }
  }

  const auto mismatch = [&](const char* what, RankId rank,
                            std::uint64_t cached, std::uint64_t actual) {
    std::ostringstream os;
    os << "[counters] ch " << c.id() << " rank " << rank << " cycle " << now
       << ": " << what << " counter " << cached << " != queue count "
       << actual;
    violate(os.str());
  };
  for (RankId r = 0; r < ranks; ++r) {
    if (c.pending_reads(r) != reads[r]) {
      mismatch("pending_reads", r, c.pending_reads(r), reads[r]);
    }
    if (c.pending_writes(r) != writes[r]) {
      mismatch("pending_writes", r, c.pending_writes(r), writes[r]);
    }
    if (c.queued_prefetches(r) != queued_pf[r]) {
      mismatch("queued_prefetches", r, c.queued_prefetches(r), queued_pf[r]);
    }
    if (c.inflight_prefetches(r) != inflight_pf[r]) {
      mismatch("inflight_prefetches", r, c.inflight_prefetches(r),
               inflight_pf[r]);
    }
  }

  // Drain bookkeeping: while a rank is locked for refresh, the cached
  // drain_pending counter must equal the queued reads that arrived at or
  // before the lock (the naive definition the event core replaced with
  // incremental updates).
  for (RankId r = 0; r < ranks; ++r) {
    const Cycle lock = c.locked_at(r);
    if (lock == kNeverCycle) continue;
    std::uint32_t old_reads = 0;
    for (const auto& req : c.read_queue()) {
      if (req.coord.rank == r && req.arrival <= lock) ++old_reads;
    }
    if (c.drain_pending(r) != old_reads) {
      mismatch("drain_pending", r, c.drain_pending(r), old_reads);
    }
  }

  // write_index_ must be *exactly* the queued write lines: every queued
  // write present, and no stale leftover entries (coalescing guarantees
  // one queued write per line, so the sizes must match too).
  if (c.write_index().size() != c.write_queue().size()) {
    std::ostringstream os;
    os << "[counters] ch " << c.id() << " cycle " << now
       << ": write_index size " << c.write_index().size()
       << " != write queue size " << c.write_queue().size();
    violate(os.str());
  }
  for (const auto& w : c.write_queue()) {
    if (c.write_index().count(w.line_addr) == 0) {
      std::ostringstream os;
      os << "[counters] ch " << c.id() << " cycle " << now
         << ": queued write line 0x" << std::hex << w.line_addr << std::dec
         << " missing from write_index";
      violate(os.str());
    }
  }
}

void SimChecker::check_refresh_deadlines(const mem::Controller& c,
                                         Cycle now) {
  if (!c.config().refresh_enabled) return;
  const auto& rm = c.refresh_manager();
  const std::uint32_t budget =
      c.channel().timings().max_postponed_refreshes;
  for (RankId r = 0; r < c.channel().num_ranks(); ++r) {
    if (rm.owed(r, now) > budget) {
      std::ostringstream os;
      os << "[refresh] ch " << c.id() << " rank " << r << " cycle " << now
         << ": owed " << rm.owed(r, now) << " refresh units exceeds the "
         << "JEDEC postponement budget " << budget;
      violate(os.str());
    }
  }
}

void SimChecker::check_subarray_locks(const mem::Controller& c, Cycle now) {
  for (RankId r = 0; r < c.channel().num_ranks(); ++r) {
    const auto& rank = c.channel().rank(r);
    for (BankId b = 0; b < rank.num_banks(); ++b) {
      const auto& bank = rank.bank(b);
      if (bank.subarrays() <= 1) continue;
      // At most one subarray refresh in flight per bank.
      std::uint32_t locked = 0;
      for (std::uint32_t s = 0; s < bank.subarrays(); ++s) {
        if (now < bank.subarray_busy_until(s)) ++locked;
      }
      if (locked > 1) {
        std::ostringstream os;
        os << "[subarray] ch " << c.id() << " rank " << r << " bank " << b
           << " cycle " << now << ": " << locked
           << " subarrays locked at once (max 1 REFpb in flight per bank)";
        violate(os.str());
      }
      const auto sub = bank.refreshing_subarray(now);
      if (!sub.has_value()) continue;
      // Subarray refresh is not a whole-bank lock: the bank must stay out
      // of kRefreshing so the other subarrays keep serving.
      if (bank.state() == dram::BankState::kRefreshing) {
        std::ostringstream os;
        os << "[subarray] ch " << c.id() << " rank " << r << " bank " << b
           << " cycle " << now << ": subarray " << *sub
           << " refreshing while bank is whole-bank kRefreshing";
        violate(os.str());
      }
      // An open row must never live in the locked subarray: the HiRA
      // overlap is only legal across *different* subarrays.
      if (bank.state() == dram::BankState::kActive &&
          bank.open_row().has_value() &&
          bank.subarray_of(*bank.open_row()) == *sub) {
        std::ostringstream os;
        os << "[subarray] ch " << c.id() << " rank " << r << " bank " << b
           << " cycle " << now << ": open row " << *bank.open_row()
           << " lives in refreshing subarray " << *sub;
        violate(os.str());
      }
    }
  }
}

void SimChecker::check_buffer_coherence(const mem::Controller& c,
                                        Cycle now) {
  for (const engine::RopEngine* eng : engines_) {
    if (&eng->controller() != &c) continue;
    const auto& buf = eng->buffer();
    if (buf.size() > buf.capacity()) {
      std::ostringstream os;
      os << "[buffer] ch " << c.id() << " cycle " << now << ": buffer holds "
         << buf.size() << " lines, capacity " << buf.capacity();
      violate(os.str());
    }
    if (!buf.owner().has_value()) continue;
    for (const Address line : buf.lines()) {
      if (c.write_index().count(line) != 0) {
        std::ostringstream os;
        os << "[buffer] ch " << c.id() << " cycle " << now
           << ": SRAM buffer holds line 0x" << std::hex << line << std::dec
           << " which has a queued newer write";
        violate(os.str());
      }
    }
  }
}

void SimChecker::check_conservation() {
  const StatRegistry& stats = *mem_->stats();

  std::uint64_t queued_reads = 0;
  std::uint64_t queued_writes = 0;
  std::uint64_t queued_pf = 0;
  std::uint64_t inflight_demand = 0;
  std::uint64_t inflight_pf = 0;
  for (ChannelId ch = 0; ch < mem_->num_channels(); ++ch) {
    const auto& c = mem_->controller(ch);
    queued_reads += c.read_queue().size();
    queued_writes += c.write_queue().size();
    queued_pf += c.prefetch_queue().size();
    for (const auto& r : c.in_flight()) {
      if (r.type == mem::ReqType::kPrefetch) {
        ++inflight_pf;
      } else {
        ++inflight_demand;
      }
    }
  }

  const auto identity = [this](const char* what, std::uint64_t enqueued,
                               std::uint64_t accounted) {
    if (enqueued == accounted) return;
    std::ostringstream os;
    os << "[conservation] " << what << ": enqueued " << enqueued
       << " != completed + queued + in-flight " << accounted;
    violate(os.str());
  };

  // Reads: every accepted read either retired (its latency was recorded at
  // that moment, drained or not), is still queued, or is in flight.
  const auto* lat = stats.find_scalar("mem.read_latency");
  const std::uint64_t retired_reads = lat != nullptr ? lat->count() : 0;
  identity("reads", stats.counter_value("mem.reads"),
           retired_reads + queued_reads + inflight_demand);

  // Writes are posted: issued to DRAM, coalesced into a queued entry, or
  // still queued.
  identity("writes", stats.counter_value("mem.writes"),
           stats.counter_value("mem.writes_issued") +
               stats.counter_value("mem.write_coalesced") + queued_writes);

  // Prefetches: enqueued ones are queued, dropped, or issued; issued ones
  // are in flight, dropped stale at fill time, or completed.
  identity("prefetches (queue)",
           stats.counter_value("rop.prefetch_enqueued"),
           stats.counter_value("rop.prefetch_issued") +
               stats.counter_value("rop.prefetch_dropped") + queued_pf);
  identity("prefetches (in flight)",
           stats.counter_value("rop.prefetch_issued"),
           stats.counter_value("rop.prefetch_completed") +
               stats.counter_value("rop.prefetch_dropped_stale") +
               inflight_pf);
}

void SimChecker::audit_cpi(std::uint32_t core, std::uint64_t cycles,
                           std::uint64_t stack_sum) {
  if (stack_sum == cycles) return;
  std::ostringstream os;
  os << "(e) CPI stack: core " << core << " categories sum to " << stack_sum
     << " but cycles = " << cycles << " (delta "
     << (stack_sum > cycles ? "+" : "-")
     << (stack_sum > cycles ? stack_sum - cycles : cycles - stack_sum)
     << ")";
  violate(os.str());
}

void SimChecker::finalize() {
  ROP_ASSERT(mem_ != nullptr && "finalize requires an attached memory");
  if (finalized_) return;
  finalized_ = true;
  // Conservation is a whole-memory identity against the shared registry;
  // channel-scoped checkers delegate it to the channel-0 instance so the
  // sharded run audits it exactly once (after the final stat fold).
  if (scope_ == kAllChannels || scope_ == 0) check_conservation();
  // Final deadline sweep: a backlog beyond the budget at end of run means
  // some tREFI interval was never covered.
  for (ChannelId ch = 0; ch < mem_->num_channels(); ++ch) {
    if (scope_ != kAllChannels && ch != scope_) continue;
    check_refresh_deadlines(mem_->controller(ch), last_now_);
  }
}

std::string SimChecker::summary() const {
  std::ostringstream os;
  os << "checker: " << (ok() ? "OK" : "FAILED") << " (" << ticks_checked_
     << " ticks audited, " << retired_ << " requests retired, "
     << violation_count_ << " violations)";
  for (const auto& r : reports_) os << "\n  " << r;
  if (violation_count_ > reports_.size()) {
    os << "\n  ... " << violation_count_ - reports_.size() << " more";
  }
  if (!trace_tail_.empty()) {
    os << "\n  trace context (last " << trace_tail_.size()
       << " events before the first violation):";
    for (const auto& line : trace_tail_) os << "\n    " << line;
  }
  return os.str();
}

}  // namespace rop::check
