// DRAM energy model in the style of the Micron system power calculator
// (TN-41-01), which the paper uses. Energy is split into
//   * background power integrated over the rank activity breakdown
//     (precharged standby IDD2N / active standby IDD3N),
//   * activate/precharge pair energy per ACT (IDD0 derate),
//   * read/write burst energy (IDD4R/IDD4W over the burst),
//   * refresh energy ((IDD5B - IDD2N) over tRFC per REF),
//   * I/O and termination energy per transferred bit.
//
// Because background power is integrated over *execution time*, anything
// that shortens the run (like ROP) reduces total energy even without
// removing refreshes — the paper's §V-B2 mechanism.
#pragma once

#include <cstdint>

#include "dram/channel.h"
#include "dram/timing.h"

namespace rop::energy {

/// DDR4-1600 8 Gb x8 device currents (datasheet-typical values).
struct DramEnergyParams {
  double vdd = 1.2;          // volts
  double idd0_ma = 58.0;     // one-bank ACT-PRE current
  double idd2n_ma = 44.0;    // precharged standby
  double idd3n_ma = 52.0;    // active standby
  double idd4r_ma = 140.0;   // read burst
  double idd4w_ma = 130.0;   // write burst
  double idd5b_ma = 190.0;   // burst refresh
  std::uint32_t devices_per_rank = 8;  // x8 devices on a 64-bit channel
  double io_pj_per_bit = 5.0;          // I/O + ODT energy per data bit
};

struct EnergyBreakdown {
  double background_mj = 0.0;
  double act_pre_mj = 0.0;
  double read_mj = 0.0;
  double write_mj = 0.0;
  double refresh_mj = 0.0;
  double io_mj = 0.0;
  double sram_mj = 0.0;  // filled in by the experiment layer when ROP is on

  [[nodiscard]] double total_mj() const {
    return background_mj + act_pre_mj + read_mj + write_mj + refresh_mj +
           io_mj + sram_mj;
  }
};

class DramPowerModel {
 public:
  DramPowerModel(const DramEnergyParams& params,
                 const dram::DramTimings& timings);

  /// Compute the energy of everything a channel did. Requires
  /// settle_accounting() to have been called (MemorySystem::finalize).
  [[nodiscard]] EnergyBreakdown compute(const dram::Channel& channel) const;

  [[nodiscard]] const DramEnergyParams& params() const { return params_; }

 private:
  [[nodiscard]] double cycle_seconds() const;

  DramEnergyParams params_;
  const dram::DramTimings& timings_;
};

/// SRAM prefetch buffer energy (paper Table III / CACTI 5.3).
struct SramEnergyParams {
  double access_nj = 0.0137;  // per lookup or fill
  double leakage_mw = 2.0;    // while powered on

  /// Table III values for the evaluated buffer capacities.
  [[nodiscard]] static SramEnergyParams for_capacity(std::uint32_t lines);

  /// Energy for `accesses` operations plus leakage over `on_seconds`.
  [[nodiscard]] double energy_mj(std::uint64_t accesses,
                                 double on_seconds) const {
    return static_cast<double>(accesses) * access_nj * 1e-6 +
           leakage_mw * on_seconds;
  }
};

}  // namespace rop::energy
