#include "energy/dram_power.h"

namespace rop::energy {

DramPowerModel::DramPowerModel(const DramEnergyParams& params,
                               const dram::DramTimings& timings)
    : params_(params), timings_(timings) {}

double DramPowerModel::cycle_seconds() const {
  return static_cast<double>(timings_.tCK_ps) * 1e-12;
}

EnergyBreakdown DramPowerModel::compute(
    const dram::Channel& channel) const {
  EnergyBreakdown e;
  const double tck = cycle_seconds();
  const double ndev = params_.devices_per_rank;
  const double vdd = params_.vdd;

  // Background: integrate the per-rank activity breakdown. Power in
  // watts = IDD(mA) * 1e-3 * VDD * devices; energy in mJ = W * s * 1e3.
  const double p2n_w = params_.idd2n_ma * 1e-3 * vdd * ndev;
  const double p3n_w = params_.idd3n_ma * 1e-3 * vdd * ndev;
  const double ref_surcharge_w =
      (params_.idd5b_ma - params_.idd2n_ma) * 1e-3 * vdd * ndev;
  for (RankId r = 0; r < channel.num_ranks(); ++r) {
    const dram::RankActivity& act = channel.rank(r).activity();
    const double pre_s = static_cast<double>(act.precharged_cycles) * tck;
    const double actv_s = static_cast<double>(act.active_cycles) * tck;
    const double ref_s = static_cast<double>(act.refresh_cycles) * tck;
    // Refresh background is charged at the precharged rate; the IDD5B
    // surcharge is integrated over the actual refresh time below, which
    // covers full REF, FGR modes, pausing segments, and (scaled by the
    // bank fraction) per-bank REFpb locks.
    e.background_mj += (pre_s + ref_s) * p2n_w * 1e3;
    e.background_mj += actv_s * p3n_w * 1e3;
    const double bank_ref_s =
        static_cast<double>(act.bank_refresh_cycles) * tck /
        static_cast<double>(channel.rank(r).num_banks());
    e.refresh_mj += (ref_s + bank_ref_s) * ref_surcharge_w * 1e3;
  }

  const dram::ChannelEvents& ev = channel.events();

  // ACT/PRE pair: IDD0 over tRC minus the standby already charged as
  // background (IDD3N during tRAS, IDD2N during tRP).
  {
    const double trc_s = static_cast<double>(timings_.tRC) * tck;
    const double tras_frac =
        static_cast<double>(timings_.tRAS) / static_cast<double>(timings_.tRC);
    const double background_ma = params_.idd3n_ma * tras_frac +
                                 params_.idd2n_ma * (1.0 - tras_frac);
    const double e_act_j =
        (params_.idd0_ma - background_ma) * 1e-3 * vdd * ndev * trc_s;
    e.act_pre_mj = static_cast<double>(ev.activates) * e_act_j * 1e3;
  }

  // Column bursts: IDD4 surcharge over the burst duration.
  {
    const double burst_s = static_cast<double>(timings_.tBL) * tck;
    const double e_rd_j =
        (params_.idd4r_ma - params_.idd3n_ma) * 1e-3 * vdd * ndev * burst_s;
    const double e_wr_j =
        (params_.idd4w_ma - params_.idd3n_ma) * 1e-3 * vdd * ndev * burst_s;
    e.read_mj = static_cast<double>(ev.reads) * e_rd_j * 1e3;
    e.write_mj = static_cast<double>(ev.writes) * e_wr_j * 1e3;
  }

  // I/O: every column burst moves one 64 B line.
  {
    const double bits = static_cast<double>(kLineBytes) * 8.0;
    const double e_io_j = bits * params_.io_pj_per_bit * 1e-12;
    e.io_mj =
        static_cast<double>(ev.reads + ev.writes) * e_io_j * 1e3;
  }

  return e;
}

SramEnergyParams SramEnergyParams::for_capacity(std::uint32_t lines) {
  // Paper Table III: access energy for 16/32/64/128-slot buffers; leakage
  // scales roughly with the array size (CACTI-style estimate).
  SramEnergyParams p;
  if (lines <= 16) {
    p.access_nj = 0.0132;
    p.leakage_mw = 0.5;
  } else if (lines <= 32) {
    p.access_nj = 0.0135;
    p.leakage_mw = 1.0;
  } else if (lines <= 64) {
    p.access_nj = 0.0137;
    p.leakage_mw = 2.0;
  } else {
    p.access_nj = 0.0152;
    p.leakage_mw = 4.0;
  }
  return p;
}

}  // namespace rop::energy
