// TraceSink: ring-buffered event recorder behind every telemetry timeline.
//
// The DRAM channel, the controller, and the ROP engine record fixed-size
// TraceEvent records (command issues, refresh windows, prefetch activity,
// per-request queue-latency spans) into a preallocated ring. Category
// filtering happens at record time via a bitmask, so a sink constructed
// with only `kCatRefresh` never pays for command events. A null sink (the
// default everywhere) costs one pointer compare per would-be event.
//
// Export formats:
//  - write_json: Chrome trace-event JSON ("traceEvents" array) that loads
//    directly in chrome://tracing and Perfetto. pid = channel, tid = rank
//    (or 1000 + core for request spans); timestamps are microseconds
//    derived from controller cycles via tCK.
//  - write_binary: compact host-endian records behind a magic header, for
//    runs long enough that JSON would dominate the wall time.
//  - format_recent: human-readable tail for diagnostics (SimChecker
//    violation reports attach it as immediate context).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rop::telemetry {

/// Category bits (`--trace-cats=cmds,refresh,rop,reqs`).
inline constexpr std::uint32_t kCatCmds = 1u << 0;     // ACT/PRE/RD/WR/REF
inline constexpr std::uint32_t kCatRefresh = 1u << 1;  // windows, segments
inline constexpr std::uint32_t kCatRop = 1u << 2;      // fills, hits, drops
inline constexpr std::uint32_t kCatReqs = 1u << 3;     // queue-latency spans
inline constexpr std::uint32_t kCatAll =
    kCatCmds | kCatRefresh | kCatRop | kCatReqs;

/// Parse a comma-separated category list ("cmds,refresh", "all", "rop").
/// nullopt on an unknown token.
[[nodiscard]] std::optional<std::uint32_t> parse_trace_categories(
    const std::string& csv);

enum class EventKind : std::uint8_t {
  kCmdActivate,
  kCmdPrecharge,
  kCmdRead,
  kCmdWrite,
  kCmdRefresh,
  kCmdRefreshBank,
  kRefreshWindow,  // tRFC span; arg = postponement depth at issue
  kRankLock,       // due-time lock until REF went out (drain + seal)
  kPauseSegment,   // one Refresh Pausing segment
  kPrefetchFill,   // arg = line address
  kBufferHit,      // SRAM hit during refresh; arg = line address
  kLockServed,     // SRAM service inside the lock window; arg = line
  kStaleDrop,      // fill dropped: newer write queued; arg = line
  kPrefetchDrop,   // queued prefetch flushed at seal; arg = line
  kReadSpan,       // demand read arrival -> completion; arg = ServicedBy
  kSubarrayRefresh,  // tRFCpb subarray lock (SARP/HiRA); arg = subarray
  // Nested lifecycle slices inside a kReadSpan (same core lane, so
  // chrome://tracing renders them as children of the read span):
  kReadQueueSpan,  // arrival -> column-command issue (queue + locks)
  kReadActSpan,    // this request's ACT -> issue (row-conflict wait)
  kReadXferSpan,   // issue -> data (CAS latency + burst)
};

[[nodiscard]] const char* event_kind_name(EventKind kind);
[[nodiscard]] const char* event_category_name(std::uint32_t category);

struct TraceEvent {
  Cycle ts = 0;   // controller cycle the event starts
  Cycle dur = 0;  // span length in cycles (0 = instant)
  std::uint64_t arg = 0;
  EventKind kind = EventKind::kCmdActivate;
  std::uint8_t category = 0;  // one of the kCat* bits (low byte)
  std::uint16_t channel = 0;
  std::uint16_t rank = 0;
  std::uint16_t bank = 0;
  std::uint32_t core = 0;

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(ts, dur, arg, kind, category, channel, rank, bank, core);
  }
};

struct TraceConfig {
  /// Bitmask of kCat* values; 0 disables recording entirely.
  std::uint32_t categories = 0;
  /// Ring capacity in events (~40 B each). When full, the oldest events
  /// are overwritten and `dropped()` counts them.
  std::size_t capacity = 1u << 18;
  /// Cycle -> wall-time scale for JSON export (DDR4-1600 default).
  std::uint32_t tck_ps = 1250;
};

class TraceSink {
 public:
  explicit TraceSink(const TraceConfig& cfg);

  /// Record-time filter; callers skip event assembly when false.
  [[nodiscard]] bool wants(std::uint32_t category) const {
    return (cfg_.categories & category) != 0;
  }

  void record(const TraceEvent& e);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

  /// Events oldest-first (unwraps the ring).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto).
  void write_json(std::ostream& os) const;

  /// Compact binary: "ROPTRC01" magic, version/tck/count header, then
  /// fixed 36-byte host-endian records (ts, dur, arg, kind, category,
  /// channel, rank, bank, core).
  void write_binary(std::ostream& os) const;

  /// Last `n` events as human-readable lines, oldest first.
  [[nodiscard]] std::vector<std::string> format_recent(std::size_t n) const;

  /// Snapshot serialization: the ring contents, overwrite cursor, and drop
  /// count. Config (categories, capacity, tck) is rebuilt from the spec.
  template <class Ar>
  void io(Ar& ar) {
    ar(buf_, head_, dropped_);
  }

 private:
  TraceConfig cfg_;
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;  // next overwrite slot once the ring is full
  std::uint64_t dropped_ = 0;
};

}  // namespace rop::telemetry
