#include "telemetry/stats_json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "telemetry/epoch_sampler.h"

namespace rop::telemetry {

void JsonWriter::open(char c) {
  separate();
  os_ << c;
  need_comma_.push_back(false);
}

void JsonWriter::close(char c) {
  ROP_ASSERT(!need_comma_.empty());
  ROP_ASSERT(!pending_key_);
  need_comma_.pop_back();
  os_ << c;
  if (!need_comma_.empty()) need_comma_.back() = true;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma and the ':' follows it
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) os_ << ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::key(std::string_view k) {
  ROP_ASSERT(!pending_key_);
  if (!need_comma_.empty() && need_comma_.back()) os_ << ',';
  if (!need_comma_.empty()) need_comma_.back() = true;
  os_ << '"' << escape(k) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  os_ << '"' << escape(s) << '"';
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  os_ << buf;
}

void JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  separate();
  os_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_registry_sections(JsonWriter& w, const StatRegistry& stats) {
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : stats.counters()) {
    w.key(name);
    w.value(c.value());
  }
  w.end_object();

  w.key("scalars");
  w.begin_object();
  for (const auto& [name, s] : stats.scalars()) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(s.count());
    w.key("sum");
    w.value(s.sum());
    w.key("mean");
    w.value(s.mean());
    // Empty scalars export null bounds: Scalar::min()/max() return 0.0 on
    // no samples, which downstream tooling would mistake for an observed 0.
    w.key("min");
    if (s.count() > 0) {
      w.value(s.min());
    } else {
      w.null();
    }
    w.key("max");
    if (s.count() > 0) {
      w.value(s.max());
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : stats.histograms()) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h.count());
    // Exact integer sample sum: lets downstream tools (campaign merge)
    // reconstruct and Histogram::merge without mean-roundtrip error.
    w.key("sum");
    w.value(h.sum());
    w.key("mean");
    w.value(h.mean());
    w.key("bucket_width");
    w.value(h.bucket_width());
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      w.value(h.bucket(i));
    }
    w.end_array();
    w.key("p50");
    w.value(h.percentile(50.0));
    w.key("p95");
    w.value(h.percentile(95.0));
    w.key("p99");
    w.value(h.percentile(99.0));
    w.end_object();
  }
  w.end_object();
}

void write_epoch_section(JsonWriter& w, const EpochSampler* sampler) {
  w.key("epochs");
  if (sampler == nullptr || !sampler->enabled()) {
    w.null();
    return;
  }
  w.begin_object();
  w.key("epoch_cycles");
  w.value(static_cast<std::uint64_t>(sampler->epoch_cycles()));
  w.key("first_epoch_index");
  w.value(sampler->first_epoch_index());
  // Oldest epochs evicted by the ring (== first_epoch_index; spelled out so
  // consumers don't have to know the ring semantics).
  w.key("dropped_epochs");
  w.value(sampler->first_epoch_index());
  w.key("end_cycles");
  w.begin_array();
  for (std::size_t i = 0; i < sampler->num_epochs(); ++i) {
    w.value(static_cast<std::uint64_t>(sampler->epoch_end(i)));
  }
  w.end_array();
  w.key("series");
  w.begin_object();
  const auto& names = sampler->counter_names();
  for (std::size_t c = 0; c < names.size(); ++c) {
    w.key(names[c]);
    w.begin_array();
    for (std::size_t i = 0; i < sampler->num_epochs(); ++i) {
      w.value(sampler->delta(i, c));
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

}  // namespace rop::telemetry
