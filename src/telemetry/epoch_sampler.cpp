#include "telemetry/epoch_sampler.h"

#include <cstdio>

namespace rop::telemetry {

EpochSampler::EpochSampler(const SamplerConfig& cfg, StatRegistry* stats)
    : cfg_(cfg) {
  ROP_ASSERT(stats != nullptr);
  ROP_ASSERT(cfg_.max_epochs > 0);
  if (!enabled()) {
    closed_ = true;  // advance_to stays a no-op forever
    return;
  }
  if (cfg_.counters.empty()) {
    for (const auto& [name, counter] : stats->counters()) {
      names_.push_back(name);
      handles_.push_back(&counter);
    }
  } else {
    for (const std::string& name : cfg_.counters) {
      names_.push_back(name);
      // Registers the counter when absent so a configured name is always
      // sampled (it simply stays zero until something records into it).
      handles_.push_back(stats->counter_handle(name));
    }
  }
  prev_.assign(handles_.size(), 0);
  deltas_.assign(cfg_.max_epochs * handles_.size(), 0);
  ends_.assign(cfg_.max_epochs, 0);
  next_boundary_ = cfg_.epoch_cycles;
}

void EpochSampler::take_sample(Cycle end_cycle) {
  std::size_t slot;
  if (rows_ < cfg_.max_epochs) {
    slot = (first_row_ + rows_) % cfg_.max_epochs;
    ++rows_;
  } else {
    if (!warned_drop_) {
      warned_drop_ = true;
      std::fprintf(stderr,
                   "epoch sampler: ring full at %zu epochs — dropping oldest "
                   "(raise SamplerConfig::max_epochs or the epoch period; "
                   "the stats JSON reports the count as dropped_epochs)\n",
                   cfg_.max_epochs);
    }
    slot = first_row_;
    first_row_ = (first_row_ + 1) % cfg_.max_epochs;
    ++first_epoch_;
  }
  ends_[slot] = end_cycle;
  std::uint64_t* row = &deltas_[slot * handles_.size()];
  for (std::size_t c = 0; c < handles_.size(); ++c) {
    const std::uint64_t v = handles_[c]->value();
    row[c] = v - prev_[c];
    prev_[c] = v;
  }
}

void EpochSampler::catch_up(Cycle now) {
  while (next_boundary_ <= now) {
    take_sample(next_boundary_);
    next_boundary_ += cfg_.epoch_cycles;
  }
}

void EpochSampler::close(Cycle end) {
  if (closed_) return;
  advance_to(end);
  closed_ = true;
  // Trailing partial epoch: covers (last boundary, end]. Note the run's
  // end-of-run publications (e.g. the per-core counter mirrors in
  // cpu::System::run) land here, not in a live series.
  const Cycle last_boundary = next_boundary_ - cfg_.epoch_cycles;
  if (end > last_boundary) take_sample(end);
}

Cycle EpochSampler::epoch_end(std::size_t i) const {
  ROP_ASSERT(i < rows_);
  return ends_[(first_row_ + i) % cfg_.max_epochs];
}

std::uint64_t EpochSampler::delta(std::size_t i, std::size_t c) const {
  ROP_ASSERT(i < rows_);
  ROP_ASSERT(c < handles_.size());
  return deltas_[((first_row_ + i) % cfg_.max_epochs) * handles_.size() + c];
}

}  // namespace rop::telemetry
