// Attribution: the canonical CPI-stack category set and the live-progress
// heartbeat writer.
//
// The CPI stack is a disjoint decomposition of every core's cycles — each
// executed cycle bills exactly one category, and a critical-load sleep span
// is decomposed at wake from the fill's lifecycle stamps (see
// cpu::CoreStats and Core::attribute_critical_span). This header owns the
// category order and JSON key names so the stats exporter, the schema
// validator (tools/check_stats_schema.py), and the renderer
// (tools/report_cpi.py) agree on one vocabulary.
//
// ProgressWriter is the JSONL heartbeat behind `ropsim --progress FILE` and
// `campaign --progress FILE`: one self-contained JSON object per line
// (cycles, throughput, ETA for runs; done/running/total for campaigns),
// flushed on every write so `tail -f` and dashboards see live state. The
// file is an operational side channel — it is not part of the experiment's
// deterministic surface (like snapshot paths, it is excluded from the spec
// fingerprint).
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace rop::telemetry {

/// CPI-stack categories in canonical export order. Keep in sync with the
/// cpu::CoreStats ledger fields and docs/OBSERVABILITY.md.
enum class CpiCategory : std::uint8_t {
  kRetire = 0,        // >= 1 instruction retired this cycle
  kStallMlp,          // outstanding-miss budget full
  kStallPort,         // memory queue rejected the op
  kMemQueue,          // critical fill: controller queue wait
  kMemBank,           // critical fill: row activation (bank conflict)
  kMemCas,            // critical fill: column-access latency
  kMemBus,            // critical fill: data burst
  kRefreshRank,       // rank REF lock
  kRefreshBank,       // per-bank REFpb lock
  kRefreshSubarray,   // subarray lock (SARP/HiRA)
  kRefreshPause,      // pausing segments
  kRopSram,           // residual wait of SRAM-buffer fills (revived service)
  kOther,             // align/functional jumps, end-of-run residue
};

inline constexpr std::size_t kCpiCategoryCount = 13;

/// JSON key for a category (e.g. "refresh_rank"). Stable export names.
[[nodiscard]] const char* cpi_category_key(CpiCategory c);

/// All keys in canonical order, for iteration.
[[nodiscard]] const std::array<const char*, kCpiCategoryCount>&
cpi_category_keys();

/// One core's CPI stack as a plain value array in canonical order.
struct CpiStack {
  std::array<std::uint64_t, kCpiCategoryCount> cycles{};

  [[nodiscard]] std::uint64_t& operator[](CpiCategory c) {
    return cycles[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t operator[](CpiCategory c) const {
    return cycles[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t sum() const {
    std::uint64_t s = 0;
    for (const std::uint64_t v : cycles) s += v;
    return s;
  }
};

/// JSONL heartbeat file. Construction truncates the target; every write_*
/// appends one line and flushes. A writer that failed to open is inert
/// (ok() == false, writes are dropped) so a bad path degrades to "no
/// progress file", never to a crashed run.
class ProgressWriter {
 public:
  explicit ProgressWriter(const std::string& path);
  ~ProgressWriter();

  ProgressWriter(const ProgressWriter&) = delete;
  ProgressWriter& operator=(const ProgressWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_ != nullptr; }

  /// One simulation-run heartbeat (`{"kind":"run",...}`). eta_s < 0 means
  /// unknown (nothing retired yet).
  struct RunHeartbeat {
    std::uint64_t cpu_cycles = 0;
    std::uint64_t max_cpu_cycles = 0;
    std::uint64_t instructions = 0;         // retired, summed over cores
    std::uint64_t target_instructions = 0;  // total across cores
    std::uint64_t cores_remaining = 0;      // cores short of their target
    double wall_s = 0.0;
    double mcyc_per_s = 0.0;  // CPU Mcycles per wall second
    double eta_s = -1.0;
    bool done = false;
  };
  void write_run(const RunHeartbeat& h);

  /// One campaign heartbeat (`{"kind":"campaign",...}`), written per cell
  /// transition. eta_s < 0 means unknown (no cell finished yet).
  struct CampaignHeartbeat {
    std::uint64_t done = 0;  // completed cells (reused + fresh)
    std::uint64_t failed = 0;
    std::uint64_t running = 0;
    std::uint64_t total = 0;
    double wall_s = 0.0;
    double eta_s = -1.0;
    std::string last_cell;  // label of the most recent transition
  };
  void write_campaign(const CampaignHeartbeat& h);

 private:
  std::FILE* out_ = nullptr;
};

}  // namespace rop::telemetry
