// Structured JSON export for the statistics registry and epoch series.
//
// JsonWriter is a minimal streaming writer (no DOM, no dependencies) with
// automatic comma management; the write_* helpers render the registry
// sections that ExperimentResult::to_json and ropsim --stats-json share.
//
// Schema (docs/OBSERVABILITY.md documents the full document layout):
//   "counters":   { name: value, ... }
//   "scalars":    { name: {count, sum, mean, min, max}, ... }
//                 min/max are null when count == 0 — "no samples" must be
//                 distinguishable from "observed zero".
//   "histograms": { name: {count, mean, bucket_width, buckets: [...],
//                          p50, p95, p99}, ... }
//   "epochs":     {epoch_cycles, first_epoch_index, end_cycles: [...],
//                  series: {name: [deltas...], ...}}
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace rop::telemetry {

class EpochSampler;

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool v);
  void null();

  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  void open(char c);
  void close(char c);
  void separate();

  std::ostream& os_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Emit the "counters", "scalars", and "histograms" keys into the current
/// object.
void write_registry_sections(JsonWriter& w, const StatRegistry& stats);

/// Emit the "epochs" key into the current object (null sampler or a
/// disabled one writes `"epochs": null`).
void write_epoch_section(JsonWriter& w, const EpochSampler* sampler);

}  // namespace rop::telemetry
