// EpochSampler: delta time-series of StatRegistry counters.
//
// Every `epoch_cycles` controller cycles the sampler snapshots a configured
// set of counters and stores the per-epoch deltas in a preallocated ring —
// the raw material for the paper's time-resolved figures (blocked-request
// bursts around tRFC windows, hit-rate evolution) without any per-event
// hooks in the simulator.
//
// Exactness under the event-driven clock: the sample at epoch boundary B
// reflects all activity strictly before controller cycle B (the state the
// naive loop would observe entering tick(B)). cpu::System::run calls
// advance_to(mem_now) at every memory-clock boundary it visits *before* the
// (possibly skipped) tick; boundaries inside a frozen-cycle skip span are
// emitted lazily at the next visited boundary, which is exact because the
// event-clock contract guarantees every skipped tick is a provable no-op —
// no counter can have moved. The determinism tests pin the resulting series
// bit-identical between the naive and fast-forward loops.
//
// Hot-path cost: one branch (`now < next_boundary_`) per advance_to call
// when no boundary is due; nothing allocates after construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace rop::telemetry {

struct SamplerConfig {
  /// Sampling period in controller cycles; 0 disables the sampler.
  /// tREFI (6240 at DDR4-1600 1x) gives one sample per refresh interval.
  Cycle epoch_cycles = 0;
  /// Counters to sample. Empty = every counter registered in the registry
  /// at sampler construction time (construct the sampler after the full
  /// system so all subsystems have registered).
  std::vector<std::string> counters;
  /// Ring capacity in epochs; when exceeded the oldest epochs are dropped
  /// (first_epoch_index() reports how many).
  std::size_t max_epochs = 4096;
};

class EpochSampler {
 public:
  EpochSampler(const SamplerConfig& cfg, StatRegistry* stats);

  [[nodiscard]] bool enabled() const { return cfg_.epoch_cycles > 0; }
  [[nodiscard]] Cycle epoch_cycles() const { return cfg_.epoch_cycles; }

  /// Emit every pending epoch with boundary <= now. Hot path: a single
  /// compare when no boundary is due.
  void advance_to(Cycle now) {
    if (!closed_ && now >= next_boundary_) catch_up(now);
  }

  /// End of run at cycle `end`: emit pending full epochs, then a trailing
  /// partial epoch covering (last boundary, end] when it is non-empty.
  /// Idempotent; the sampler ignores advance_to after close.
  void close(Cycle end);

  /// Next epoch boundary the sampler will emit at. The channel-sharded
  /// loop folds per-channel counter deltas into the sampled registry just
  /// before each boundary so the series matches the serial interleaving.
  [[nodiscard]] Cycle next_boundary() const { return next_boundary_; }

  [[nodiscard]] const std::vector<std::string>& counter_names() const {
    return names_;
  }
  /// Epochs currently retained in the ring.
  [[nodiscard]] std::size_t num_epochs() const { return rows_; }
  /// Global index of the oldest retained epoch (0 unless the ring dropped).
  [[nodiscard]] std::uint64_t first_epoch_index() const {
    return first_epoch_;
  }
  /// End cycle of retained epoch `i` (exclusive; the epoch covers
  /// [end - epoch_cycles, end), except a trailing partial epoch).
  [[nodiscard]] Cycle epoch_end(std::size_t i) const;
  /// Delta of counter `c` over retained epoch `i`.
  [[nodiscard]] std::uint64_t delta(std::size_t i, std::size_t c) const;

  /// Snapshot serialization: last-boundary values, the delta ring, and the
  /// boundary cursor. Names/handles are config-derived (the counter set is
  /// fixed by the spec, and the sampler is constructed before restore).
  template <class Ar>
  void io(Ar& ar) {
    ar(prev_, deltas_, ends_, rows_, first_row_, first_epoch_,
       next_boundary_, closed_);
  }

 private:
  void catch_up(Cycle now);
  void take_sample(Cycle end_cycle);

  SamplerConfig cfg_;
  std::vector<std::string> names_;
  std::vector<const Counter*> handles_;
  std::vector<std::uint64_t> prev_;  // counter values at the last boundary

  // Flat ring: row r lives at slot (first_row_ + r) % max_epochs.
  std::vector<std::uint64_t> deltas_;  // max_epochs x names_.size()
  std::vector<Cycle> ends_;
  std::size_t rows_ = 0;
  std::size_t first_row_ = 0;
  std::uint64_t first_epoch_ = 0;

  Cycle next_boundary_ = 0;
  bool closed_ = false;
  /// One stderr warning per sampler when the ring first wraps. Operational
  /// nudge only — deliberately not serialized (a restored run warns again).
  bool warned_drop_ = false;
};

}  // namespace rop::telemetry
