#include "telemetry/trace_sink.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <set>
#include <utility>

namespace rop::telemetry {

std::optional<std::uint32_t> parse_trace_categories(const std::string& csv) {
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string token = csv.substr(start, end - start);
    if (token == "all") {
      mask |= kCatAll;
    } else if (token == "cmds") {
      mask |= kCatCmds;
    } else if (token == "refresh") {
      mask |= kCatRefresh;
    } else if (token == "rop") {
      mask |= kCatRop;
    } else if (token == "reqs") {
      mask |= kCatReqs;
    } else if (!token.empty()) {
      return std::nullopt;
    }
    start = end + 1;
  }
  return mask;
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCmdActivate: return "ACT";
    case EventKind::kCmdPrecharge: return "PRE";
    case EventKind::kCmdRead: return "RD";
    case EventKind::kCmdWrite: return "WR";
    case EventKind::kCmdRefresh: return "REF";
    case EventKind::kCmdRefreshBank: return "REFpb";
    case EventKind::kRefreshWindow: return "refresh_window";
    case EventKind::kRankLock: return "rank_lock";
    case EventKind::kPauseSegment: return "refresh_segment";
    case EventKind::kPrefetchFill: return "prefetch_fill";
    case EventKind::kBufferHit: return "buffer_hit";
    case EventKind::kLockServed: return "lock_window_served";
    case EventKind::kStaleDrop: return "stale_drop";
    case EventKind::kPrefetchDrop: return "prefetch_drop";
    case EventKind::kReadSpan: return "read";
    case EventKind::kSubarrayRefresh: return "subarray_refresh";
    case EventKind::kReadQueueSpan: return "read.queue";
    case EventKind::kReadActSpan: return "read.activate";
    case EventKind::kReadXferSpan: return "read.transfer";
  }
  return "?";
}

const char* event_category_name(std::uint32_t category) {
  switch (category) {
    case kCatCmds: return "cmds";
    case kCatRefresh: return "refresh";
    case kCatRop: return "rop";
    case kCatReqs: return "reqs";
    default: return "other";
  }
}

TraceSink::TraceSink(const TraceConfig& cfg) : cfg_(cfg) {
  ROP_ASSERT(cfg.capacity > 0);
  buf_.reserve(cfg.capacity);
}

void TraceSink::record(const TraceEvent& e) {
  if ((cfg_.categories & e.category) == 0) return;
  if (buf_.size() < cfg_.capacity) {
    buf_.push_back(e);
    return;
  }
  buf_[head_] = e;
  head_ = (head_ + 1) % cfg_.capacity;
  ++dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  // head_ is the oldest slot once the ring has wrapped (it is the next to
  // be overwritten); before that the buffer is already in order.
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

namespace {

/// Microseconds with enough precision for single-cycle resolution
/// (1 cycle = 1.25 ns at DDR4-1600).
void append_us(std::string& out, Cycle cycles, std::uint32_t tck_ps) {
  char buf[64];
  const double us =
      static_cast<double>(cycles) * static_cast<double>(tck_ps) / 1e6;
  std::snprintf(buf, sizeof buf, "%.6f", us);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

const char* serviced_by_name(std::uint64_t v) {
  switch (v) {
    case 0: return "dram";
    case 1: return "sram_buffer";
    case 2: return "write_forward";
    default: return "?";
  }
}

}  // namespace

void TraceSink::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 120 + 4096);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";

  // Track every (pid, tid) lane so metadata events can name them.
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;
  bool first = true;
  for (const TraceEvent& e : events) {
    const std::uint32_t pid = e.channel;
    const bool req_lane = e.kind == EventKind::kReadSpan ||
                          e.kind == EventKind::kReadQueueSpan ||
                          e.kind == EventKind::kReadActSpan ||
                          e.kind == EventKind::kReadXferSpan;
    const std::uint32_t tid =
        req_lane ? 1000u + e.core : static_cast<std::uint32_t>(e.rank);
    pids.insert(pid);
    lanes.emplace(pid, tid);
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += event_kind_name(e.kind);
    out += "\",\"cat\":\"";
    out += event_category_name(e.category);
    out += "\",\"ph\":\"";
    out += e.dur > 0 ? 'X' : 'i';
    out += "\",\"ts\":";
    append_us(out, e.ts, cfg_.tck_ps);
    if (e.dur > 0) {
      out += ",\"dur\":";
      append_us(out, e.dur, cfg_.tck_ps);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":";
    append_u64(out, pid);
    out += ",\"tid\":";
    append_u64(out, tid);
    out += ",\"args\":{";
    switch (e.kind) {
      case EventKind::kReadSpan:
        out += "\"serviced_by\":\"";
        out += serviced_by_name(e.arg);
        out += "\",\"rank\":";
        append_u64(out, e.rank);
        out += ",\"bank\":";
        append_u64(out, e.bank);
        out += ",\"latency_cycles\":";
        append_u64(out, e.dur);
        break;
      case EventKind::kRefreshWindow:
        out += "\"owed\":";
        append_u64(out, e.arg);
        break;
      case EventKind::kRankLock:
      case EventKind::kPauseSegment:
      case EventKind::kReadQueueSpan:
      case EventKind::kReadActSpan:
      case EventKind::kReadXferSpan:
        out += "\"cycles\":";
        append_u64(out, e.dur);
        break;
      case EventKind::kSubarrayRefresh:
        out += "\"bank\":";
        append_u64(out, e.bank);
        out += ",\"subarray\":";
        append_u64(out, e.arg);
        break;
      case EventKind::kPrefetchFill:
      case EventKind::kBufferHit:
      case EventKind::kLockServed:
      case EventKind::kStaleDrop:
      case EventKind::kPrefetchDrop:
        out += "\"line\":";
        append_u64(out, e.arg);
        break;
      default:  // DRAM commands
        out += "\"bank\":";
        append_u64(out, e.bank);
        break;
    }
    out += "}}";
  }

  // Metadata: name the process/thread lanes after their hardware meaning.
  char buf[96];
  for (const std::uint32_t pid : pids) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"channel %u\"}}",
                  pid, pid);
    out += buf;
  }
  for (const auto& [pid, tid] : lanes) {
    if (tid >= 1000u) {
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":%u,\"args\":{\"name\":\"core %u\"}}",
                    pid, tid, tid - 1000u);
    } else {
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":%u,\"args\":{\"name\":\"rank %u\"}}",
                    pid, tid, tid);
    }
    out += buf;
  }
  // Footer: how many events the ring overwrote. Chrome/Perfetto ignore
  // unknown top-level keys; consumers that care about completeness check it.
  out += "],\"dropped_events\":";
  append_u64(out, dropped_);
  out += "}";
  os << out;
}

void TraceSink::write_binary(std::ostream& os) const {
  const auto put = [&os](const auto& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  os.write("ROPTRC01", 8);
  const std::uint32_t version = 1;
  const std::uint32_t tck_ps = cfg_.tck_ps;
  const std::uint64_t count = buf_.size();
  put(version);
  put(tck_ps);
  put(count);
  put(dropped_);
  for (const TraceEvent& e : snapshot()) {
    put(e.ts);
    put(e.dur);
    put(e.arg);
    const auto kind = static_cast<std::uint8_t>(e.kind);
    put(kind);
    put(e.category);
    put(e.channel);
    put(e.rank);
    put(e.bank);
    put(e.core);
  }
}

std::vector<std::string> TraceSink::format_recent(std::size_t n) const {
  const std::vector<TraceEvent> events = snapshot();
  const std::size_t take = std::min(n, events.size());
  std::vector<std::string> out;
  out.reserve(take);
  for (std::size_t i = events.size() - take; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "[%" PRIu64 "] %-16s ch=%u rank=%u bank=%u dur=%" PRIu64
                  " arg=%" PRIu64,
                  e.ts, event_kind_name(e.kind),
                  static_cast<unsigned>(e.channel),
                  static_cast<unsigned>(e.rank),
                  static_cast<unsigned>(e.bank), e.dur, e.arg);
    out.emplace_back(buf);
  }
  return out;
}

}  // namespace rop::telemetry
