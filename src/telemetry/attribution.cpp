#include "telemetry/attribution.h"

#include <cinttypes>

namespace rop::telemetry {

namespace {

constexpr std::array<const char*, kCpiCategoryCount> kKeys = {
    "retire",           //
    "stall_mlp",        //
    "stall_port",       //
    "mem_queue",        //
    "mem_bank",         //
    "mem_cas",          //
    "mem_bus",          //
    "refresh_rank",     //
    "refresh_bank",     //
    "refresh_subarray", //
    "refresh_pause",    //
    "rop_sram",         //
    "other",            //
};

/// Minimal JSON string escaping for cell labels (quote, backslash,
/// control characters; labels are ASCII identifiers in practice).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

const char* cpi_category_key(CpiCategory c) {
  return kKeys[static_cast<std::size_t>(c)];
}

const std::array<const char*, kCpiCategoryCount>& cpi_category_keys() {
  return kKeys;
}

ProgressWriter::ProgressWriter(const std::string& path) {
  out_ = std::fopen(path.c_str(), "w");
}

ProgressWriter::~ProgressWriter() {
  if (out_ != nullptr) std::fclose(out_);
}

void ProgressWriter::write_run(const RunHeartbeat& h) {
  if (out_ == nullptr) return;
  std::fprintf(out_,
               "{\"kind\":\"run\",\"cpu_cycles\":%" PRIu64
               ",\"max_cpu_cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
               ",\"target_instructions\":%" PRIu64
               ",\"cores_remaining\":%" PRIu64
               ",\"wall_s\":%.3f,\"mcyc_per_s\":%.3f,\"eta_s\":%.3f,"
               "\"done\":%s}\n",
               h.cpu_cycles, h.max_cpu_cycles, h.instructions,
               h.target_instructions, h.cores_remaining, h.wall_s,
               h.mcyc_per_s, h.eta_s, h.done ? "true" : "false");
  std::fflush(out_);
}

void ProgressWriter::write_campaign(const CampaignHeartbeat& h) {
  if (out_ == nullptr) return;
  std::string label;
  append_escaped(label, h.last_cell);
  std::fprintf(out_,
               "{\"kind\":\"campaign\",\"done\":%" PRIu64
               ",\"failed\":%" PRIu64 ",\"running\":%" PRIu64
               ",\"total\":%" PRIu64
               ",\"wall_s\":%.3f,\"eta_s\":%.3f,\"last_cell\":\"%s\"}\n",
               h.done, h.failed, h.running, h.total, h.wall_s, h.eta_s,
               label.c_str());
  std::fflush(out_);
}

}  // namespace rop::telemetry
