// Umbrella configuration for the telemetry layer: one struct an experiment
// spec embeds to turn on epoch sampling and/or event tracing. Both are off
// by default — the simulator's hot paths then pay only null-pointer checks
// (the <1% overhead bound CI enforces; see docs/OBSERVABILITY.md).
#pragma once

#include "telemetry/epoch_sampler.h"
#include "telemetry/trace_sink.h"

namespace rop::telemetry {

struct TelemetryConfig {
  SamplerConfig sampler{};
  TraceConfig trace{};

  [[nodiscard]] bool sampling() const { return sampler.epoch_cycles > 0; }
  [[nodiscard]] bool tracing() const { return trace.categories != 0; }
  [[nodiscard]] bool any() const { return sampling() || tracing(); }
};

}  // namespace rop::telemetry
