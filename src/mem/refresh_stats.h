// Online refresh/request interaction statistics (paper §III-B, Figs 2–3).
//
// A read request is "blocked" by a refresh when it arrives inside the
// examined window following the refresh start; the paper examines windows of
// 1x, 2x and 4x the refresh cycle time (tRFC). A refresh with at least one
// such arrival is a "blocking" refresh. The tracker keeps the small set of
// still-open windows per rank and retires them lazily.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace rop::mem {

class RefreshBlockingStats {
 public:
  static constexpr std::array<std::uint32_t, 3> kExaminedMultiples{1, 2, 4};

  RefreshBlockingStats(std::uint32_t num_ranks, Cycle trfc)
      : trfc_(trfc), open_(num_ranks) {}

  void on_refresh_start(RankId rank, Cycle start) {
    retire_expired(rank, start);
    open_.at(rank).push_back(Window{start, {}});
    ++total_refreshes_;
  }

  void on_read_arrival(RankId rank, Cycle t) {
    retire_expired(rank, t);
    for (Window& w : open_.at(rank)) {
      for (std::size_t k = 0; k < kExaminedMultiples.size(); ++k) {
        if (t >= w.start && t < w.start + kExaminedMultiples[k] * trfc_) {
          ++w.blocked[k];
        }
      }
    }
  }

  /// Retire every still-open window (end of simulation).
  void finalize() {
    for (auto& q : open_) {
      while (!q.empty()) {
        retire(q.front());
        q.pop_front();
      }
    }
  }

  [[nodiscard]] std::uint64_t total_refreshes() const {
    return total_refreshes_;
  }

  /// Fraction of refreshes with zero blocked arrivals in examined window k.
  [[nodiscard]] double non_blocking_fraction(std::size_t k) const {
    if (total_refreshes_ == 0) return 1.0;
    const std::uint64_t retired = retired_refreshes_;
    if (retired == 0) return 1.0;
    return static_cast<double>(retired - blocking_refreshes_[k]) /
           static_cast<double>(retired);
  }

  /// Mean number of blocked requests per *blocking* refresh in window k.
  [[nodiscard]] double mean_blocked_per_blocking_refresh(std::size_t k) const {
    if (blocking_refreshes_[k] == 0) return 0.0;
    return static_cast<double>(blocked_requests_[k]) /
           static_cast<double>(blocking_refreshes_[k]);
  }

  [[nodiscard]] std::uint64_t max_blocked(std::size_t k) const {
    return max_blocked_[k];
  }

  /// Snapshot serialization: open windows plus the retired aggregates.
  template <class Ar>
  void io(Ar& ar) {
    ar(open_, total_refreshes_, retired_refreshes_, blocking_refreshes_,
       blocked_requests_, max_blocked_);
  }

 private:
  struct Window {
    Cycle start = 0;
    std::array<std::uint64_t, 3> blocked{};

    template <class Ar>
    void io(Ar& ar) {
      ar(start, blocked);
    }
  };

  void retire(const Window& w) {
    ++retired_refreshes_;
    for (std::size_t k = 0; k < kExaminedMultiples.size(); ++k) {
      if (w.blocked[k] > 0) {
        ++blocking_refreshes_[k];
        blocked_requests_[k] += w.blocked[k];
        max_blocked_[k] = std::max(max_blocked_[k], w.blocked[k]);
      }
    }
  }

  void retire_expired(RankId rank, Cycle now) {
    auto& q = open_.at(rank);
    const Cycle horizon = kExaminedMultiples.back() * trfc_;
    while (!q.empty() && now >= q.front().start + horizon) {
      retire(q.front());
      q.pop_front();
    }
  }

  Cycle trfc_;
  std::vector<std::deque<Window>> open_;
  std::uint64_t total_refreshes_ = 0;
  std::uint64_t retired_refreshes_ = 0;
  std::array<std::uint64_t, 3> blocking_refreshes_{};
  std::array<std::uint64_t, 3> blocked_requests_{};
  std::array<std::uint64_t, 3> max_blocked_{};
};

}  // namespace rop::mem
