// Top-level memory system: address mapping + one controller per channel.
//
// This is the public substrate API the CPU layer and the examples talk to:
// enqueue line-granular requests, tick once per controller clock, drain
// completions.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/timing.h"
#include "mem/address_map.h"
#include "mem/controller.h"

namespace rop::telemetry {
class EpochSampler;
class TraceSink;
}

namespace rop::mem {

struct MemoryConfig {
  dram::DramTimings timings{};
  dram::DramOrganization org{};
  MapScheme scheme = MapScheme::kRowRankBankColumn;
  ControllerConfig ctrl{};
  /// Give every channel its own StatRegistry instead of recording into the
  /// shared one. Required by the channel-sharded event loop (shards must
  /// not contend on one registry); the shard pool folds the per-channel
  /// registries into the shared registry at epoch boundaries and at
  /// finalize, reproducing the serial stats bit-for-bit.
  bool per_channel_stats = false;
};

class MemorySystem {
 public:
  MemorySystem(const MemoryConfig& cfg, StatRegistry* stats);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Queue-space check for the channel `byte_addr` maps to.
  [[nodiscard]] bool can_accept(Address byte_addr, ReqType type) const;

  /// Enqueue a demand access. Returns the request id on acceptance, or
  /// nullopt when the target queue is full (caller retries next cycle).
  /// When `channel` is non-null it receives the channel the address maps
  /// to (on acceptance only) — the sharded loop uses it to re-arm just
  /// that channel's shard instead of dirtying all of them.
  std::optional<RequestId> enqueue(Address byte_addr, ReqType type,
                                   CoreId core, Cycle now,
                                   ChannelId* channel = nullptr);

  /// Advance all channels one controller clock.
  void tick(Cycle now);

  /// All demand reads completed since the last call (any channel).
  std::vector<Request> drain_completed();

  /// Allocation-free variant of drain_completed: invokes
  /// `fn(const Request&)` per completed read, channels in order, requests
  /// in completion-drain order within each channel — the same sequence the
  /// vector API yields. This is the simulation loop's per-tick path.
  template <typename Fn>
  void for_each_completed(Fn&& fn) {
    for (auto& ctrl : controllers_) ctrl->drain_completed_into(fn);
  }

  [[nodiscard]] const AddressMap& address_map() const { return map_; }
  [[nodiscard]] const MemoryConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(controllers_.size());
  }
  [[nodiscard]] Controller& controller(ChannelId ch) {
    return *controllers_.at(ch);
  }
  [[nodiscard]] const Controller& controller(ChannelId ch) const {
    return *controllers_.at(ch);
  }

  /// Attach an epoch sampler (non-owning; nullptr detaches). tick() then
  /// advances it to every executed cycle and finalize() closes it; the
  /// event-driven loop in cpu::System additionally advances it at skipped
  /// boundaries so sampling points stay exact (see telemetry/epoch_sampler).
  void set_sampler(telemetry::EpochSampler* sampler) { sampler_ = sampler; }
  [[nodiscard]] telemetry::EpochSampler* sampler() const { return sampler_; }

  /// Attach a trace sink to every controller (non-owning; nullptr detaches).
  void set_trace(telemetry::TraceSink* trace) {
    for (auto& ctrl : controllers_) ctrl->set_trace(trace);
  }

  /// Settle energy/blocking accounting at end of run.
  void finalize(Cycle now);

  /// True when every queue and in-flight buffer is empty.
  [[nodiscard]] bool idle() const;

  /// The shared registry (never null). The CPU layer resolves its own stat
  /// handles from it at construction. With per_channel_stats the channels
  /// record into their own registries instead; this one then holds the
  /// mirrored names (see mirror_channel_stats) plus everything non-channel
  /// (llc.*, coreN.*), and receives the folds.
  [[nodiscard]] StatRegistry* stats() const { return stats_; }

  /// True when each channel records into a private registry.
  [[nodiscard]] bool per_channel_stats() const {
    return cfg_.per_channel_stats;
  }

  /// The registry channel `ch` records into: its private registry under
  /// per_channel_stats, otherwise the shared one — so assembly code
  /// (engines, checkers) can target the right registry unconditionally.
  [[nodiscard]] StatRegistry& channel_stats(ChannelId ch) {
    return cfg_.per_channel_stats ? *channel_stats_.at(ch) : *stats_;
  }
  [[nodiscard]] const StatRegistry& channel_stats(ChannelId ch) const {
    return cfg_.per_channel_stats ? *channel_stats_.at(ch) : *stats_;
  }

  /// Register every stat name that exists in any per-channel registry into
  /// the shared registry with a zero value (histograms adopt the source
  /// geometry). Idempotent; no-op without per_channel_stats. Must run
  /// before an EpochSampler is constructed over the shared registry so the
  /// sampler resolves handles for the channel counters it will observe via
  /// folds.
  void mirror_channel_stats();

  /// Earliest controller cycle > `now` at which any channel can act — see
  /// Controller::next_event_cycle. kNeverCycle when the memory is idle with
  /// refresh disabled.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const {
    Cycle next = kNeverCycle;
    for (const auto& ctrl : controllers_) {
      next = std::min(next, ctrl->next_event_cycle(now));
    }
    return next;
  }

  /// Snapshot serialization: the request-id source, every controller, and
  /// (under per_channel_stats) the per-channel registries. The shared
  /// registry is serialized separately by sim/snapshot.cpp — before this
  /// object, so handle-preserving registry restore precedes everything
  /// that might read a counter.
  template <class Ar>
  void io(Ar& ar) {
    ar(next_id_);
    for (auto& ctrl : controllers_) ar.field(*ctrl);
    for (auto& reg : channel_stats_) ar.field(*reg);
  }

 private:
  MemoryConfig cfg_;  // owns the timings the channels reference
  AddressMap map_;
  StatRegistry* stats_;
  std::vector<std::unique_ptr<StatRegistry>> channel_stats_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  RequestId next_id_ = 1;
  telemetry::EpochSampler* sampler_ = nullptr;
};

}  // namespace rop::mem
