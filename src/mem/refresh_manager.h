// Per-rank auto-refresh scheduling.
//
// JEDEC requires one REF per tREFI on average; up to 8 REFs may be postponed
// (and later made up) as long as the running average holds. The baseline
// memory issues refreshes as soon as they come due ("auto-refresh"); the ROP
// controller defers them briefly to drain the target rank and slot in
// prefetches (paper §IV-D), bounded by the postponement budget.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/timing.h"

namespace rop::mem {

class RefreshManager {
 public:
  /// `units_per_trefi` = 1 for full-rank REF (one unit per tREFI) or the
  /// bank count for per-bank REFpb (8 units per tREFI, one per bank).
  /// A registry, when supplied, publishes "mem.refresh_units_issued" via a
  /// handle resolved here once.
  RefreshManager(const dram::DramTimings& timings, std::uint32_t num_ranks,
                 std::uint32_t units_per_trefi = 1,
                 StatRegistry* stats = nullptr);

  /// Number of refreshes currently owed by `rank` at `now` (scheduled
  /// boundaries passed minus refreshes issued).
  [[nodiscard]] std::uint32_t owed(RankId rank, Cycle now) const;

  /// True once at least one refresh is due.
  [[nodiscard]] bool due(RankId rank, Cycle now) const {
    return owed(rank, now) > 0;
  }

  /// True when the postponement budget is exhausted: the controller must
  /// prioritize this refresh over everything else.
  [[nodiscard]] bool urgent(RankId rank, Cycle now) const {
    return owed(rank, now) >= t_.max_postponed_refreshes;
  }

  /// The scheduled time of the next refresh boundary for `rank` — the
  /// anchor for ROP's observational window.
  [[nodiscard]] Cycle next_boundary(RankId rank, Cycle now) const;

  /// Earliest cycle at which this rank's refresh bookkeeping can change:
  /// `now` when a refresh is already owed, otherwise the next scheduled
  /// boundary. Feeds the controller's frozen-cycle fast-forward query.
  [[nodiscard]] Cycle next_event_cycle(RankId rank, Cycle now) const {
    return owed(rank, now) > 0 ? now : next_boundary(rank, now);
  }

  /// First cycle strictly after `now` at which owed(rank, ·) increases —
  /// the next tREFI boundary crossing. owed() is a step function of time
  /// between refresh issues, so this is the only instant where idle-rank
  /// refresh machinery (and urgency, and the elastic threshold) can change
  /// without a command landing first.
  [[nodiscard]] Cycle next_owed_increase(RankId rank, Cycle now) const {
    const Cycle offset = phase_offset(rank);
    if (now < offset + interval()) return offset + interval();
    return offset + ((now - offset) / interval() + 1) * interval();
  }

  /// Record an issued REF command.
  void on_refresh_issued(RankId rank);

  [[nodiscard]] std::uint64_t issued(RankId rank) const {
    return issued_.at(rank);
  }
  [[nodiscard]] std::uint64_t total_issued() const;

  /// Ranks refresh staggered: rank r's boundaries sit at
  /// r * interval / num_ranks + k * interval, mirroring real controllers
  /// that avoid refreshing all ranks at once.
  [[nodiscard]] Cycle phase_offset(RankId rank) const;

  /// Scheduling interval between refresh units (tREFI / units_per_trefi).
  [[nodiscard]] Cycle interval() const {
    return t_.tREFI / units_per_trefi_;
  }

  /// Snapshot serialization: issued_ is the only mutable state (owed and
  /// boundaries are pure functions of time). The stats counter rides with
  /// the registry, not here.
  template <class Ar>
  void io(Ar& ar) {
    ar(issued_);
  }

 private:
  const dram::DramTimings& t_;
  std::vector<std::uint64_t> issued_;
  std::uint32_t num_ranks_;
  std::uint32_t units_per_trefi_;
  Counter* units_issued_ = nullptr;  // optional, resolved at construction
};

}  // namespace rop::mem
