#include "mem/address_map.h"

namespace rop::mem {

namespace {

/// Extract `count` values' worth of modulus from `v`, returning the digit
/// and advancing `v`.
std::uint64_t take(std::uint64_t& v, std::uint64_t count) {
  const std::uint64_t digit = v % count;
  v /= count;
  return digit;
}

}  // namespace

AddressMap::AddressMap(const dram::DramOrganization& org, MapScheme scheme)
    : org_(org), scheme_(scheme) {
  ROP_ASSERT(org.channels > 0 && org.ranks > 0 && org.banks > 0);
  ROP_ASSERT(org.rows > 0 && org.columns > 0);
}

DramCoord AddressMap::map(Address byte_addr) const {
  std::uint64_t line = byte_addr >> kLineShift;
  DramCoord c;
  c.channel = static_cast<ChannelId>(take(line, org_.channels));
  switch (scheme_) {
    case MapScheme::kRowRankBankColumn:
      c.column = static_cast<ColumnId>(take(line, org_.columns));
      c.bank = static_cast<BankId>(take(line, org_.banks));
      c.rank = static_cast<RankId>(take(line, org_.ranks));
      break;
    case MapScheme::kRowBankRankColumn:
      c.column = static_cast<ColumnId>(take(line, org_.columns));
      c.rank = static_cast<RankId>(take(line, org_.ranks));
      c.bank = static_cast<BankId>(take(line, org_.banks));
      break;
    case MapScheme::kRowColumnRankBank:
      c.bank = static_cast<BankId>(take(line, org_.banks));
      c.rank = static_cast<RankId>(take(line, org_.ranks));
      c.column = static_cast<ColumnId>(take(line, org_.columns));
      break;
  }
  c.row = static_cast<RowId>(line % org_.rows);
  return c;
}

Address AddressMap::unmap(const DramCoord& coord) const {
  std::uint64_t line = coord.row;
  switch (scheme_) {
    case MapScheme::kRowRankBankColumn:
      line = line * org_.ranks + coord.rank;
      line = line * org_.banks + coord.bank;
      line = line * org_.columns + coord.column;
      break;
    case MapScheme::kRowBankRankColumn:
      line = line * org_.banks + coord.bank;
      line = line * org_.ranks + coord.rank;
      line = line * org_.columns + coord.column;
      break;
    case MapScheme::kRowColumnRankBank:
      line = line * org_.columns + coord.column;
      line = line * org_.ranks + coord.rank;
      line = line * org_.banks + coord.bank;
      break;
  }
  line = line * org_.channels + coord.channel;
  return line << kLineShift;
}

std::uint64_t AddressMap::line_offset_in_bank(const DramCoord& coord) const {
  return static_cast<std::uint64_t>(coord.row) * org_.columns + coord.column;
}

DramCoord AddressMap::coord_from_bank_offset(ChannelId channel, RankId rank,
                                             BankId bank,
                                             std::uint64_t offset) const {
  const std::uint64_t wrapped = offset % org_.lines_per_bank();
  DramCoord c;
  c.channel = channel;
  c.rank = rank;
  c.bank = bank;
  c.row = static_cast<RowId>(wrapped / org_.columns);
  c.column = static_cast<ColumnId>(wrapped % org_.columns);
  return c;
}

Address AddressMap::compose_in_rank(RankId rank,
                                    std::uint64_t local_line) const {
  std::uint64_t v = local_line % lines_per_rank();
  DramCoord c;
  c.rank = rank;
  c.channel = static_cast<ChannelId>(take(v, org_.channels));
  // Mirror the scheme's bank/column digit order so rank-partitioned
  // traffic keeps the same interleaving behaviour as the flat layout.
  switch (scheme_) {
    case MapScheme::kRowRankBankColumn:
    case MapScheme::kRowBankRankColumn:
      c.column = static_cast<ColumnId>(take(v, org_.columns));
      c.bank = static_cast<BankId>(take(v, org_.banks));
      break;
    case MapScheme::kRowColumnRankBank:
      c.bank = static_cast<BankId>(take(v, org_.banks));
      c.column = static_cast<ColumnId>(take(v, org_.columns));
      break;
  }
  c.row = static_cast<RowId>(v % org_.rows);
  return unmap(c);
}

}  // namespace rop::mem
