// Per-channel memory controller.
//
// Owns the DRAM channel, the transaction queues, the FR-FCFS scheduler and
// the refresh manager, and exposes the hook interface the ROP engine plugs
// into. One command is issued on the command bus per controller clock.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/channel.h"
#include "mem/refresh_manager.h"
#include "mem/refresh_stats.h"
#include "mem/request.h"
#include "mem/scheduler.h"

namespace rop::mem {

/// Hook interface implemented by the ROP engine (src/rop). The controller
/// works identically with a null listener (baseline / no-refresh systems).
class ControllerListener {
 public:
  virtual ~ControllerListener() = default;

  /// A demand request is about to be enqueued. The listener may service a
  /// read immediately (SRAM buffer hit while the rank is locked or
  /// refreshing) by returning its completion cycle; writes always return
  /// nullopt but give the listener the chance to invalidate buffered copies.
  virtual std::optional<Cycle> on_enqueue(const Request& req, Cycle now) = 0;

  /// A demand column command went on the bus. The prediction tables learn
  /// from the *serviced* command stream, so that at staging time LastAddr
  /// points at the last line actually read from DRAM and the generated
  /// candidates start exactly at the still-queued blocked requests.
  virtual void on_demand_serviced(const Request& req, Cycle now) = 0;

  /// The rank sealed for its due refresh: queued demand has drained, new
  /// demand is frozen. This is the moment the ROP engine takes its
  /// prefetch decision and stages prefetch reads (paper §IV-D); REF goes
  /// out once they land.
  virtual void on_rank_locked(RankId rank, Cycle now) = 0;

  /// REF command went on the bus; the rank is frozen during [start, done).
  virtual void on_refresh_issued(RankId rank, Cycle start, Cycle done) = 0;

  /// A prefetch read finished its data burst: fill the SRAM buffer.
  virtual void on_prefetch_filled(const Request& req, Cycle now) = 0;

  /// Called once per controller tick before scheduling, so the engine can
  /// enqueue prefetch requests ahead of an imminent refresh.
  ///
  /// Under the event-driven clock (cpu::System fast-forward) ticks between
  /// controller events are skipped, so consecutive calls may be more than
  /// one cycle apart. Listener state must therefore be a function of `now`,
  /// not of the call count — the ROP engine accumulates deltas.
  virtual void on_tick(Cycle now) = 0;

  /// End of run at controller cycle `now`: settle any time-integrated
  /// accounting (the last on_tick may have landed well before `now` when
  /// ticks were skipped). Called from Controller::finalize in both the
  /// naive and the event-driven loop with the same cycle, which keeps
  /// accumulated statistics bit-identical between them.
  virtual void on_finalize(Cycle now) { (void)now; }
};

class Controller;

/// Read-only audit hook (src/check). Unlike ControllerListener — which
/// participates in request servicing — an auditor only observes: the
/// controller calls it after every tick and for every retired request so an
/// invariant checker can validate queue/counter/refresh bookkeeping. A null
/// auditor (the default) costs one branch per tick.
class ControllerAuditor {
 public:
  virtual ~ControllerAuditor() = default;

  /// All per-tick work (burst completion, refresh management, scheduling)
  /// for `now` has finished; the controller's state is stable.
  virtual void on_tick_end(const Controller& ctrl, Cycle now) = 0;

  /// A demand read left the controller through drain_completed().
  virtual void on_retired(const Request& req) = 0;
};

/// How the controller schedules due refreshes. kAutoRefresh is the
/// paper's baseline; kRopDrain is the ROP controller behaviour (§IV-D);
/// kElastic and kPausing implement the two refresh-hiding schemes the
/// paper's related work compares against conceptually (§VI).
enum class RefreshPolicy : std::uint8_t {
  /// Issue REF the moment it is due; the rank blocks immediately.
  kAutoRefresh,
  /// Elastic Refresh (Stuecheli et al., MICRO'10): postpone a due refresh
  /// until the rank has been idle for a threshold that shrinks as the
  /// postponement backlog grows; forced at the JEDEC budget.
  kElastic,
  /// Refresh Pausing (Nair et al., HPCA'13): execute the refresh in
  /// segments; between segments, pending demand is serviced. Pausing adds
  /// a small re-lock overhead per resume and is abandoned for a straight
  /// finish when the postponement budget nears exhaustion.
  kPausing,
  /// ROP (paper §IV-D): drain queued demand, seal the rank, stage the
  /// engine's prefetches, then refresh. Requires an attached RopEngine to
  /// be useful (without one it degrades to drain-then-refresh).
  kRopDrain,
  /// DARP (Chang et al., HPCA'14): out-of-order per-bank refresh scheduled
  /// into idle-bank and write-drain windows. A due REFpb goes to a bank
  /// with no pending demand (during write drain, no pending *reads*);
  /// when every un-refreshed bank has demand the refresh is postponed,
  /// forced at the JEDEC budget. A round bitmask keeps the out-of-order
  /// selection fair: each bank is refreshed once per round of 8.
  kDarp,
  /// SARP (same paper): per-bank refresh targets one *subarray* at a time;
  /// the bank keeps serving accesses to its other subarrays during the
  /// tRFCpb lock. Requires DramOrganization::subarrays > 1.
  kSarp,
  /// HiRA-style overlap (Yaglikci et al., MICRO'22): like kSarp, but the
  /// subarray refresh (a hidden row activation) may issue while a row is
  /// open in a *different* subarray of the same bank, overlapping refresh
  /// with activation instead of waiting for a precharged bank.
  kHira,
};

/// Policies that retire refresh obligations one bank-unit at a time
/// (RefreshManager runs at banks-per-tREFI cadence, like per_bank_refresh).
[[nodiscard]] constexpr bool policy_uses_bank_units(RefreshPolicy p) {
  return p == RefreshPolicy::kDarp || p == RefreshPolicy::kSarp ||
         p == RefreshPolicy::kHira;
}

/// Policies that target individual subarrays (need org.subarrays > 1).
[[nodiscard]] constexpr bool policy_uses_subarrays(RefreshPolicy p) {
  return p == RefreshPolicy::kSarp || p == RefreshPolicy::kHira;
}

struct ControllerConfig {
  SchedulerConfig sched{};
  /// false models the idealized no-refresh memory of Figs 1 and 7.
  bool refresh_enabled = true;
  RefreshPolicy policy = RefreshPolicy::kAutoRefresh;
  /// kRopDrain: bound on the drain+staging window past due time.
  Cycle drain_bound = 1024;
  /// kElastic: rank-idle threshold at zero backlog; the threshold decays
  /// linearly to zero as owed refreshes approach the JEDEC budget.
  Cycle elastic_base_idle = 96;
  /// kPausing: refresh segment length (~60 ns) and re-lock overhead per
  /// resume.
  Cycle pause_quantum = 48;
  Cycle pause_overhead = 8;
  /// Refresh one bank at a time (tRFCpb lock per bank, 8x the cadence)
  /// instead of freezing the whole rank — the finer-granularity mode the
  /// paper's future work (§VII) targets. Only meaningful with
  /// kAutoRefresh; other banks keep servicing demand during the lock.
  bool per_bank_refresh = false;
};

class Controller {
 public:
  Controller(ChannelId id, const dram::DramTimings& timings,
             const dram::DramOrganization& org, ControllerConfig cfg,
             StatRegistry* stats);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  void set_listener(ControllerListener* listener) { listener_ = listener; }

  /// Attach/detach an invariant auditor (nullptr disables; see
  /// check::SimChecker). Near-zero cost when null.
  void set_auditor(ControllerAuditor* auditor) { auditor_ = auditor; }
  [[nodiscard]] ControllerAuditor* auditor() const { return auditor_; }

  /// Attach a telemetry trace sink (nullptr detaches). The controller
  /// records refresh windows, request latency spans and ROP drop events;
  /// the channel (handed the sink here too) records command issues. A null
  /// sink costs one pointer compare per would-be event.
  void set_trace(telemetry::TraceSink* trace) {
    trace_ = trace;
    channel_.set_trace(trace, id_);
  }
  [[nodiscard]] telemetry::TraceSink* trace() const { return trace_; }

  [[nodiscard]] bool can_accept(ReqType type) const;

  /// Enqueue a demand request. Returns false when the target queue is full
  /// (the caller must retry). On acceptance the request id is recorded and
  /// reads complete through drain_completed(); writes are posted.
  bool enqueue(Request req, Cycle now);

  /// Enqueue a prefetch read (ROP engine only). Prefetches are dropped
  /// silently if the prefetch queue is full.
  bool enqueue_prefetch(Request req, Cycle now);

  /// Advance one controller clock: complete data bursts, manage refresh,
  /// issue at most one command.
  void tick(Cycle now);

  /// Completed demand reads since the last drain (writes are posted and do
  /// not appear here). The caller takes ownership.
  std::vector<Request> drain_completed();

  /// Allocation-free drain: invokes `fn(const Request&)` for each completed
  /// demand read, in the same order drain_completed() would return them,
  /// and releases the arena slots. With an auditor attached this falls back
  /// to the vector path so the retired-audit ordering (all releases, then
  /// all audits, then delivery) matches the vector API exactly.
  template <typename Fn>
  void drain_completed_into(Fn&& fn) {
    if (completed_.empty()) return;
    if (auditor_ != nullptr) {
      for (const Request& req : drain_completed()) fn(req);
      return;
    }
    for (const RequestIndex idx : completed_) {
      const Request req = arena_[idx];
      arena_.release(idx);
      fn(req);
    }
    completed_.clear();
  }

  /// Remove queued demand reads to `rank` that `probe` can service (SRAM
  /// buffer hits at refresh start); each serviced request completes at the
  /// cycle `probe` returns.
  void complete_matching_reads(
      RankId rank,
      const std::function<std::optional<Cycle>(const Request&)>& probe);

  [[nodiscard]] const dram::Channel& channel() const { return channel_; }
  [[nodiscard]] dram::Channel& channel() { return channel_; }
  [[nodiscard]] const RefreshManager& refresh_manager() const { return rm_; }
  [[nodiscard]] RefreshBlockingStats& blocking_stats() { return blocking_; }
  [[nodiscard]] const RefreshBlockingStats& blocking_stats() const {
    return blocking_;
  }
  [[nodiscard]] ChannelId id() const { return id_; }
  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

  [[nodiscard]] bool rank_refreshing(RankId rank) const {
    return channel_.rank(rank).refreshing();
  }
  /// True from the refresh-due lock until REF issues.
  [[nodiscard]] bool rank_locked(RankId rank) const {
    return phase_.at(rank) != RefreshPhase::kIdle;
  }
  /// True while demand requests to the rank cannot be serviced from DRAM
  /// (locked for refresh or refresh in flight) — the window during which
  /// the SRAM buffer stands in.
  [[nodiscard]] bool rank_unavailable(RankId rank) const {
    return rank_refreshing(rank) || rank_locked(rank);
  }
  [[nodiscard]] std::size_t pending_demand(RankId rank) const {
    return pending_reads_[rank] + pending_writes_[rank];
  }
  [[nodiscard]] std::size_t pending_prefetches(RankId rank) const {
    return queued_prefetches_[rank] + inflight_prefetches_[rank];
  }
  [[nodiscard]] std::size_t read_queue_depth() const { return read_q_.size(); }
  [[nodiscard]] std::size_t write_queue_depth() const {
    return write_q_.size();
  }
  /// Cycle the pending refresh came due (kNeverCycle when no lock is
  /// active) and the count of pre-lock reads still draining — exposed for
  /// the invariant checker and the determinism state dump.
  [[nodiscard]] Cycle locked_at(RankId rank) const {
    return locked_at_.at(rank);
  }
  [[nodiscard]] std::uint32_t drain_pending(RankId rank) const {
    return drain_pending_.at(rank);
  }
  /// Refresh phase as a raw value (0 idle, 1 draining, 2 sealing) for
  /// state dumps.
  [[nodiscard]] std::uint8_t refresh_phase(RankId rank) const {
    return static_cast<std::uint8_t>(phase_.at(rank));
  }

  /// True when no demand work is queued, in flight, or awaiting drain.
  [[nodiscard]] bool idle() const {
    return read_q_.empty() && write_q_.empty() && in_flight_.empty() &&
           completed_.empty();
  }

  // -- Read-only inspection surface for the invariant checker ------------
  // (src/check/sim_checker.cpp). Exposes the raw structures the fast paths
  // maintain incrementally so an auditor can recompute them from scratch.
  // Queues are arena-backed; the views iterate like the Request containers
  // they replaced.
  [[nodiscard]] RequestView read_queue() const {
    return RequestView(&arena_, &read_q_);
  }
  [[nodiscard]] RequestView write_queue() const {
    return RequestView(&arena_, &write_q_);
  }
  [[nodiscard]] RequestView prefetch_queue() const {
    return RequestView(&arena_, &prefetch_q_);
  }
  [[nodiscard]] RequestView in_flight() const {
    return RequestView(&arena_, &in_flight_);
  }
  [[nodiscard]] const std::unordered_set<Address>& write_index() const {
    return write_index_;
  }
  [[nodiscard]] std::uint32_t pending_reads(RankId rank) const {
    return pending_reads_.at(rank);
  }
  [[nodiscard]] std::uint32_t pending_writes(RankId rank) const {
    return pending_writes_.at(rank);
  }
  [[nodiscard]] std::uint32_t queued_prefetches(RankId rank) const {
    return queued_prefetches_.at(rank);
  }
  [[nodiscard]] std::uint32_t inflight_prefetches(RankId rank) const {
    return inflight_prefetches_.at(rank);
  }
  /// kPausing: refresh work (cycles) outstanding for the in-progress
  /// obligation; 0 when none.
  [[nodiscard]] Cycle refresh_remaining(RankId rank) const {
    return refresh_remaining_.at(rank);
  }

  /// Settle cycle accounting (energy) at end of run.
  void finalize(Cycle now);

  /// Earliest controller cycle > `now` at which this controller can do
  /// anything observable (complete a burst, issue a command, start or end a
  /// refresh, hit a refresh boundary), assuming no new request is enqueued
  /// in between (an enqueue invalidates the answer; cpu::System tracks that
  /// with a dirty flag). Must be called right after tick(now). May return a
  /// cycle where nothing happens (conservative-early is harmless: the tick
  /// executes as a no-op and recomputes), but never a cycle later than the
  /// true next action — the event-driven loop in cpu::System relies on
  /// every tick in (now, next_event_cycle) being a provable no-op.
  /// kNeverCycle when nothing is queued, in flight, or scheduled (e.g. the
  /// refresh-disabled idle controller).
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const;

  /// True when completed demand reads await drain.
  [[nodiscard]] bool has_completed() const { return !completed_.empty(); }

  /// Delivery bound for the channel-sharded loop: the earliest tick cycle
  /// >= `pos` + 1 at which completed_ could gain an entry, given that no
  /// further request is enqueued (an enqueue invalidates the answer; the
  /// shard pool tracks that per channel). Unlike next_event_cycle this
  /// ignores channel-internal activity (command issues, refresh phases) —
  /// those advance inside the shard without the CPU having to observe
  /// them. Conservative-early is harmless (the pool re-advances and
  /// recomputes); late would mis-deliver a completion and is never
  /// returned. kNeverCycle when no queued or in-flight read exists.
  ///
  /// Soundness: completed_ gains entries during tick(T) only via
  ///  (1) an in-flight demand read whose data burst lands at T
  ///      (complete_bursts) — bounded by inflight_min_completion_;
  ///  (2) a prefetch fill at T whose listener services queued reads
  ///      reentrantly (on_prefetch_filled -> complete_matching_reads) —
  ///      also bounded by inflight_min_completion_;
  ///  (3) a queued read issued to DRAM after `pos` — its data needs at
  ///      least CL + tBL cycles after the earliest possible issue pos + 1;
  ///  (4) a refresh issue at T whose listener probes the SRAM buffer
  ///      (on_refresh_issued -> complete_matching_reads) — only possible
  ///      once the rank's refresh machinery is engaged or a refresh is
  ///      owed, so bounded by the next tREFI boundary when idle.
  [[nodiscard]] Cycle completion_lower_bound(Cycle pos) const;

  /// Snapshot serialization (see common/snapshot_io.h): the channel, the
  /// refresh bookkeeping, the arena-backed queues, and every incrementally
  /// maintained counter. write_index_ is a derived view of write_q_ and is
  /// rebuilt on restore instead of being serialized (unordered containers
  /// have no canonical byte order). Stat handles, the listener/auditor and
  /// the trace sink are runtime wiring and do not ride.
  template <class Ar>
  void io(Ar& ar) {
    ar(channel_, rm_, blocking_, arena_, read_q_, write_q_, prefetch_q_,
       in_flight_, completed_, reads_by_rank_, inflight_min_completion_,
       pending_reads_, pending_writes_, queued_prefetches_,
       inflight_prefetches_, draining_writes_, phase_, locked_at_,
       drain_pending_, last_arrival_, refresh_remaining_, refresh_started_,
       refresh_window_opened_, next_refresh_bank_, reads_by_bank_count_,
       writes_by_bank_count_, darp_round_mask_, next_refresh_sub_);
    if constexpr (Ar::kIsReader) {
      write_index_.clear();
      for (const RequestIndex idx : write_q_) {
        write_index_.insert(arena_[idx].line_addr);
      }
    }
  }

 private:
  /// tick() body; split out so the auditor hook runs after every exit path.
  void step(Cycle now);
  /// Returns true when a refresh-related command (PRE or REF) was issued.
  bool manage_refresh(Cycle now);
  void issue_pick(const SchedulerPick& pick, Cycle now);
  void complete_bursts(Cycle now);
  /// Flush queued prefetches for a rank (urgent refresh override).
  void drop_prefetches(RankId rank);
  /// Latency bookkeeping + a kReadSpan trace event for a serviced demand
  /// read; `req` must have arrival and completion set.
  void record_read_latency(const Request& req);
  /// Issue PRE for an open bank or the REF itself; true when a command
  /// went out this cycle.
  bool issue_refresh_commands(RankId rank, Cycle now);
  bool manage_refresh_per_bank(Cycle now);
  bool manage_refresh_pausing(Cycle now);
  bool manage_refresh_darp(Cycle now);
  bool manage_refresh_subarray(Cycle now);

  /// DARP: pick the bank to refresh next on rank `r`, honouring the round
  /// mask and the idle-bank / write-drain heuristics. Returns num_banks
  /// when every eligible bank should be postponed (none when urgent).
  [[nodiscard]] BankId darp_pick_bank(RankId r, bool urgent) const;
  /// DARP idle test for (r, b): no pending demand, or no pending reads
  /// while the controller drains writes.
  [[nodiscard]] bool darp_bank_idle(RankId r, BankId b) const;

  /// Flat per-(rank, bank) slot index for the demand-occupancy counters.
  [[nodiscard]] std::size_t bank_slot(RankId r, BankId b) const {
    return static_cast<std::size_t>(r) * num_banks_ + b;
  }

  /// Charge `cycles` of refresh-induced demand blocking for each of
  /// `requests` queued reads (see mem.refresh_blocked_cycles).
  void charge_refresh_blocking(std::uint64_t requests, Cycle cycles);
  /// Queued reads on rank `r` whose target subarray is `sub` of bank `b`.
  [[nodiscard]] std::uint64_t queued_reads_in_subarray(RankId r, BankId b,
                                                      std::uint32_t sub) const;
  /// Subarray-refresh trace event + blocking charge at REFpb issue.
  void record_subarray_refresh(RankId r, BankId b, std::uint32_t sub,
                               Cycle now);

  /// next_event_cycle helpers: earliest cycle the refresh machinery for
  /// rank `r` can act or change eligibility (policy-specific), and the
  /// earliest cycle issue_refresh_commands could put a command on the bus
  /// for `r` given frozen bank state.
  [[nodiscard]] Cycle refresh_event_cycle(RankId r, Cycle now) const;
  [[nodiscard]] Cycle seal_ready_cycle(RankId r) const;

  /// Remove `idx` from rank `r`'s read index and from the drain counter
  /// when the request predates the rank's lock.
  void on_read_leaves_queue(RankId r, RequestIndex idx, const Request& req);

  /// Hot-path statistics, resolved to stable pointers once at construction.
  /// Event code must go through these — a string-keyed registry lookup per
  /// event costs more than the event itself (see docs/PERFORMANCE.md).
  struct StatHandles {
    Counter* reads = nullptr;
    Counter* writes = nullptr;
    Counter* sram_serviced = nullptr;
    Counter* read_forwarded = nullptr;
    Counter* write_coalesced = nullptr;
    Counter* writes_issued = nullptr;
    Counter* refreshes = nullptr;
    Counter* bank_refreshes = nullptr;
    Counter* refresh_pauses = nullptr;
    /// Integral of refresh-induced demand blocking, in request-cycles:
    /// every queued demand read is charged the span during which its
    /// rank / bank / subarray is locked by an in-flight refresh. The
    /// scheme-comparison bench uses this as the cross-policy
    /// "refresh-blocking" metric (event-driven, so it is exact under
    /// skipped frozen cycles, unlike a per-tick census).
    Counter* refresh_blocked_cycles = nullptr;
    Counter* prefetch_enqueued = nullptr;
    Counter* prefetch_issued = nullptr;
    Counter* prefetch_dropped = nullptr;
    Counter* prefetch_dropped_queue_full = nullptr;
    Counter* prefetch_dropped_stale = nullptr;
    Counter* prefetch_completed = nullptr;
    Scalar* read_latency = nullptr;
    Histogram* read_latency_hist = nullptr;
    /// Attribution ledger (telemetry/attribution.h): per-cause
    /// refresh-blocked request-cycles folded at read retirement from the
    /// per-request accumulators (their sum across causes reproduces
    /// mem.refresh_blocked_cycles for demand reads), matching per-cause
    /// latency histograms, queue/activation wait spans, and the residual
    /// refresh-window cycles SRAM service recovered (the paper's revived
    /// frozen cycles).
    Counter* attr_blocked_rank = nullptr;
    Counter* attr_blocked_bank = nullptr;
    Counter* attr_blocked_sub = nullptr;
    Counter* attr_blocked_pause = nullptr;
    Counter* attr_rop_recovered = nullptr;
    Histogram* attr_blocked_rank_hist = nullptr;
    Histogram* attr_blocked_bank_hist = nullptr;
    Histogram* attr_blocked_sub_hist = nullptr;
    Histogram* attr_blocked_pause_hist = nullptr;
    Histogram* attr_queue_wait_hist = nullptr;
    Histogram* attr_act_wait_hist = nullptr;
  };

  ChannelId id_;
  ControllerConfig cfg_;
  dram::Channel channel_;
  RefreshManager rm_;
  Scheduler scheduler_;
  RefreshBlockingStats blocking_;
  StatRegistry* stats_;
  StatHandles h_;
  ControllerListener* listener_ = nullptr;
  ControllerAuditor* auditor_ = nullptr;

  /// Pooled request storage; every queue below holds indices into it.
  RequestArena arena_;
  std::vector<RequestIndex> read_q_;
  std::vector<RequestIndex> write_q_;
  std::vector<RequestIndex> prefetch_q_;
  std::vector<RequestIndex> in_flight_;  // reads/prefetches waiting on data
  std::vector<RequestIndex> completed_;
  /// Queued demand reads per rank, in age order — the per-rank view of
  /// read_q_ that complete_matching_reads and the drain machinery use
  /// instead of rescanning the whole read queue.
  std::vector<std::vector<RequestIndex>> reads_by_rank_;

  /// Min completion cycle over in_flight_, maintained incrementally
  /// (tightened on push, rebuilt during the complete_bursts sweep) so
  /// next_event_cycle avoids a per-call linear scan.
  Cycle inflight_min_completion_ = kNeverCycle;

  /// Lines currently present in write_q_. Coalescing keeps at most one
  /// queued write per line, so a set gives O(1) read-after-write forwarding,
  /// coalescing, and stale-prefetch checks without index fix-ups when
  /// issue_pick erases from the middle of the queue.
  std::unordered_set<Address> write_index_;
  /// Incrementally-maintained per-rank queue occupancy, replacing the
  /// count_if scans the refresh machinery used to run every tick.
  std::vector<std::uint32_t> pending_reads_;
  std::vector<std::uint32_t> pending_writes_;
  std::vector<std::uint32_t> queued_prefetches_;
  std::vector<std::uint32_t> inflight_prefetches_;

  bool draining_writes_ = false;

  /// Per-rank refresh progression. kIdle: no refresh pending. kDraining
  /// (ROP only): refresh due; demand keeps flowing while queued requests
  /// drain and staged prefetches fill the buffer. kSealing: demand to the
  /// rank is held while banks are precharged and REF goes out. Baseline
  /// auto-refresh jumps straight from kIdle to kSealing at due time.
  enum class RefreshPhase : std::uint8_t { kIdle, kDraining, kSealing };
  std::vector<RefreshPhase> phase_;
  /// Cycle the pending refresh came due (bounds the drain window).
  std::vector<Cycle> locked_at_;
  /// Queued reads that predate the rank's lock and still await service —
  /// the count the ROP drain waits on. Snapshot of pending_reads_ at lock
  /// time, incremented by lock-cycle arrivals, decremented as pre-lock
  /// reads leave the queue. Replaces a per-tick count_if over read_q_.
  std::vector<std::uint32_t> drain_pending_;
  /// kElastic: last demand arrival per rank (idle detection).
  std::vector<Cycle> last_arrival_;
  /// kPausing: refresh work remaining per rank (0 = none in progress) and
  /// whether the in-progress refresh has been paused at least once.
  std::vector<Cycle> refresh_remaining_;
  std::vector<bool> refresh_started_;
  /// kPausing: whether blocking stats saw the first segment of the
  /// in-progress refresh. Tracked explicitly — pause overhead mutates
  /// refresh_remaining_, so "remaining == tRFC" is not a reliable
  /// first-segment test (see docs/CORRECTNESS.md).
  std::vector<bool> refresh_window_opened_;
  /// per_bank_refresh / kSarp / kHira: round-robin cursor of the next bank
  /// to refresh.
  std::vector<BankId> next_refresh_bank_;
  /// Banks per rank (sizes the flat per-bank counter vectors below).
  std::uint32_t num_banks_ = 0;
  /// Per-(rank, bank) queued-demand occupancy, maintained alongside the
  /// per-rank counters. DARP's idle-bank selection reads these; they are
  /// cheap enough to keep exact under every policy.
  std::vector<std::uint32_t> reads_by_bank_count_;
  std::vector<std::uint32_t> writes_by_bank_count_;
  /// kDarp: bitmask of banks already refreshed in the current round (reset
  /// when all banks are set) — out-of-order selection stays fair.
  std::vector<std::uint32_t> darp_round_mask_;
  /// kSarp / kHira: per-(rank, bank) cursor of the next subarray to
  /// refresh (flat bank_slot indexing).
  std::vector<std::uint32_t> next_refresh_sub_;

  /// Event recorder for the telemetry timelines; null in the common case
  /// (every hook is a pointer compare). Kept at the cold end of the class
  /// so attaching telemetry support does not shift the hot queue members.
  telemetry::TraceSink* trace_ = nullptr;
};

}  // namespace rop::mem
