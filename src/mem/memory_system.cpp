#include "mem/memory_system.h"

#include "telemetry/epoch_sampler.h"

namespace rop::mem {

MemorySystem::MemorySystem(const MemoryConfig& cfg, StatRegistry* stats)
    : cfg_(cfg), map_(cfg_.org, cfg_.scheme), stats_(stats) {
  ROP_ASSERT(stats != nullptr);
  ROP_ASSERT(dram::validate(cfg_.timings));
  controllers_.reserve(cfg_.org.channels);
  if (cfg_.per_channel_stats) channel_stats_.reserve(cfg_.org.channels);
  for (ChannelId ch = 0; ch < cfg_.org.channels; ++ch) {
    StatRegistry* reg = stats_;
    if (cfg_.per_channel_stats) {
      channel_stats_.push_back(std::make_unique<StatRegistry>());
      reg = channel_stats_.back().get();
    }
    controllers_.push_back(std::make_unique<Controller>(
        ch, cfg_.timings, cfg_.org, cfg_.ctrl, reg));
  }
}

void MemorySystem::mirror_channel_stats() {
  for (const auto& reg : channel_stats_) {
    for (const auto& [name, c] : reg->counters()) {
      (void)c;
      stats_->counter(name);
    }
    for (const auto& [name, s] : reg->scalars()) {
      (void)s;
      stats_->scalar(name);
    }
    for (const auto& [name, h] : reg->histograms()) {
      stats_->histogram(name, h.bucket_width(), h.num_buckets() - 1);
    }
  }
}

bool MemorySystem::can_accept(Address byte_addr, ReqType type) const {
  const DramCoord coord = map_.map(byte_addr);
  return controllers_.at(coord.channel)->can_accept(type);
}

std::optional<RequestId> MemorySystem::enqueue(Address byte_addr, ReqType type,
                                               CoreId core, Cycle now,
                                               ChannelId* channel) {
  Request req;
  req.id = next_id_;
  req.type = type;
  req.line_addr = (byte_addr >> kLineShift) << kLineShift;
  req.coord = map_.map(byte_addr);
  req.core = core;
  if (!controllers_.at(req.coord.channel)->enqueue(req, now)) {
    return std::nullopt;
  }
  ++next_id_;
  if (channel != nullptr) *channel = req.coord.channel;
  return req.id;
}

void MemorySystem::tick(Cycle now) {
  // Epoch boundaries at or before `now` must snapshot the registry before
  // this cycle executes (sample at B = state strictly before B).
  if (sampler_ != nullptr) sampler_->advance_to(now);
  for (auto& ctrl : controllers_) ctrl->tick(now);
}

std::vector<Request> MemorySystem::drain_completed() {
  std::vector<Request> out;
  for (auto& ctrl : controllers_) {
    auto part = ctrl->drain_completed();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void MemorySystem::finalize(Cycle now) {
  for (auto& ctrl : controllers_) ctrl->finalize(now);
  if (sampler_ != nullptr) sampler_->close(now);
}

bool MemorySystem::idle() const {
  for (const auto& ctrl : controllers_) {
    if (!ctrl->idle()) return false;
  }
  return true;
}

}  // namespace rop::mem
