// FR-FCFS command scheduling (first-ready, first-come-first-served).
//
// Reads have priority over writes; writes are drained in batches once the
// write queue crosses a high watermark (Table III: "writes are scheduled in
// batches"). Prefetch reads are a third class that the ROP engine enqueues
// shortly before a refresh; they are serviced behind demand requests but
// coalesce with them on open rows (paper §IV-D).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dram/channel.h"
#include "dram/command.h"
#include "mem/request.h"

namespace rop::mem {

struct SchedulerConfig {
  std::size_t read_queue_capacity = 64;   // Table III: 64-entry read queue
  std::size_t write_queue_capacity = 64;  // Table III: 64-entry write queue
  std::size_t write_drain_high = 48;      // enter drain mode at this depth
  std::size_t write_drain_low = 16;       // leave drain mode at this depth
};

/// The scheduler's decision: which command to put on the command bus, and —
/// for column commands — which queued request it services.
struct SchedulerPick {
  dram::Command cmd;
  int queue_id = -1;            // index into the QueueView span
  std::size_t request_index = 0;  // index within that queue
  [[nodiscard]] bool services_request() const { return cmd.is_column(); }
};

/// A queue the scheduler may draw from this cycle, in priority order.
/// Queues store arena indices; the view carries the arena to dereference
/// them.
struct QueueView {
  const RequestArena* arena = nullptr;
  const std::vector<RequestIndex>* indices = nullptr;
  int id = -1;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }

  /// Choose the next command. `blocked(request, queue_id)` masks requests
  /// that must not be scheduled this cycle (rank refreshing, rank locked
  /// for an imminent refresh, post-lock arrivals during a drain, ...).
  ///
  /// Selection order:
  ///   1. the oldest request (scanning queues in priority order) whose
  ///      column command is issuable right now (row hit, "first ready"),
  ///   2. otherwise the oldest request that needs an ACT that is issuable,
  ///   3. otherwise the oldest request that needs a PRE (row conflict) that
  ///      is issuable — unless a same-priority request still row-hits the
  ///      open row (keep the row open for it).
  using BlockedFn = std::function<bool(const Request&, int queue_id)>;
  template <typename BlockedPred>
  [[nodiscard]] std::optional<SchedulerPick> pick(
      std::span<const QueueView> queues, const dram::Channel& channel,
      Cycle now, const BlockedPred& blocked) const;

  /// Earliest cycle > `now` at which pick() over the same (frozen) queues
  /// could return a command, or kNeverCycle when no unblocked request can
  /// ever issue without other state changing first. Mirrors pick()'s
  /// candidate enumeration exactly — including the keep-row-open taker
  /// rule, which must not be over-approximated: treating a taker-suppressed
  /// PRE as a candidate would yield a perpetually-past cycle and degrade
  /// the event loop to per-cycle ticking. Blocked requests are skipped;
  /// their unblock points (refresh completion, seal/REF transitions) are
  /// separate controller events. Returns as soon as a candidate at
  /// `now + 1` is found.
  template <typename BlockedPred>
  [[nodiscard]] Cycle earliest_issue_cycle(std::span<const QueueView> queues,
                                           const dram::Channel& channel,
                                           Cycle now,
                                           const BlockedPred& blocked) const;

 private:
  SchedulerConfig cfg_;

  // Channel state is frozen for the duration of one pick() call, and bank
  // command legality never depends on which request asked: pass-1 column
  // candidates all target the bank's open row, and ACT/PRE legality ignores
  // the row entirely. One cached verdict per (bank, command kind) therefore
  // answers every same-bank candidate, collapsing the O(queue) can_issue
  // scans that dominate saturated-queue cycles where nothing can issue.
  enum class Verdict : std::uint8_t { kUnknown = 0, kYes, kNo };
  struct BankMemo {
    Verdict read = Verdict::kUnknown;
    Verdict write = Verdict::kUnknown;
    Verdict act = Verdict::kUnknown;
    Verdict pre = Verdict::kUnknown;
    Verdict taker = Verdict::kUnknown;  // open row still has a queued hit?
  };
  mutable std::vector<BankMemo> memo_;  // scratch, valid within one pick()
  mutable std::uint32_t memo_banks_ = 0;
};

namespace scheduler_detail {

inline dram::CmdType column_cmd_for(const Request& req) {
  return req.type == ReqType::kWrite ? dram::CmdType::kWrite
                                     : dram::CmdType::kRead;
}

/// True when any request in any queue would row-hit bank `coord`'s
/// currently open row (used to avoid closing rows that still have takers).
inline bool open_row_has_taker(std::span<const QueueView> queues,
                               const DramCoord& coord, RowId open_row) {
  for (const QueueView& qv : queues) {
    for (const RequestIndex ri : *qv.indices) {
      const Request& req = (*qv.arena)[ri];
      if (req.coord.rank == coord.rank && req.coord.bank == coord.bank &&
          req.coord.row == open_row) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace scheduler_detail

template <typename BlockedPred>
std::optional<SchedulerPick> Scheduler::pick(std::span<const QueueView> queues,
                                             const dram::Channel& channel,
                                             Cycle now,
                                             const BlockedPred& blocked) const {
  memo_banks_ = channel.num_ranks() > 0 ? channel.rank(0).num_banks() : 0;
  memo_.assign(std::size_t{channel.num_ranks()} * memo_banks_, BankMemo{});
  const auto memo_for = [this](const DramCoord& c) -> BankMemo& {
    return memo_[std::size_t{c.rank} * memo_banks_ + c.bank];
  };

  // Pass 1: first-ready column commands, in queue priority then age order.
  for (const QueueView& qv : queues) {
    std::size_t i = 0;
    for (const RequestIndex ri : *qv.indices) {
      const Request& req = (*qv.arena)[ri];
      const std::size_t at = i++;
      if (blocked(req, qv.id)) continue;
      const dram::Bank& bank =
          channel.rank(req.coord.rank).bank(req.coord.bank);
      if (bank.state() != dram::BankState::kActive || !bank.open_row() ||
          *bank.open_row() != req.coord.row) {
        continue;
      }
      const dram::CmdType type = scheduler_detail::column_cmd_for(req);
      BankMemo& m = memo_for(req.coord);
      Verdict& v = type == dram::CmdType::kWrite ? m.write : m.read;
      if (v == Verdict::kUnknown) {
        const dram::Command probe{type, req.coord, req.id};
        v = channel.can_issue(probe, now) ? Verdict::kYes : Verdict::kNo;
      }
      if (v == Verdict::kYes) {
        return SchedulerPick{dram::Command{type, req.coord, req.id}, qv.id,
                             at};
      }
    }
  }

  // Pass 2: row commands (ACT / PRE) for the oldest requests.
  for (const QueueView& qv : queues) {
    std::size_t i = 0;
    for (const RequestIndex ri : *qv.indices) {
      const Request& req = (*qv.arena)[ri];
      const std::size_t at = i++;
      if (blocked(req, qv.id)) continue;
      const dram::Bank& bank =
          channel.rank(req.coord.rank).bank(req.coord.bank);
      switch (bank.state()) {
        case dram::BankState::kPrecharged: {
          BankMemo& m = memo_for(req.coord);
          if (m.act == Verdict::kUnknown) {
            const dram::Command probe{dram::CmdType::kActivate, req.coord,
                                      req.id};
            m.act =
                channel.can_issue(probe, now) ? Verdict::kYes : Verdict::kNo;
          }
          if (m.act == Verdict::kYes) {
            return SchedulerPick{
                dram::Command{dram::CmdType::kActivate, req.coord, req.id},
                qv.id, at};
          }
          break;
        }
        case dram::BankState::kActive: {
          // Row conflict: close the row, but only if nobody still wants it.
          if (bank.open_row() && *bank.open_row() != req.coord.row) {
            BankMemo& m = memo_for(req.coord);
            if (m.taker == Verdict::kUnknown) {
              m.taker = scheduler_detail::open_row_has_taker(
                            queues, req.coord, *bank.open_row())
                            ? Verdict::kYes
                            : Verdict::kNo;
            }
            if (m.taker == Verdict::kNo) {
              if (m.pre == Verdict::kUnknown) {
                const dram::Command probe{dram::CmdType::kPrecharge,
                                          req.coord, 0};
                m.pre = channel.can_issue(probe, now) ? Verdict::kYes
                                                      : Verdict::kNo;
              }
              if (m.pre == Verdict::kYes) {
                return SchedulerPick{
                    dram::Command{dram::CmdType::kPrecharge, req.coord, 0},
                    qv.id, at};
              }
            }
          }
          break;
        }
        case dram::BankState::kRefreshing:
          break;
      }
    }
  }
  return std::nullopt;
}

template <typename BlockedPred>
Cycle Scheduler::earliest_issue_cycle(std::span<const QueueView> queues,
                                      const dram::Channel& channel, Cycle now,
                                      const BlockedPred& blocked) const {
  memo_banks_ = channel.num_ranks() > 0 ? channel.rank(0).num_banks() : 0;
  memo_.assign(std::size_t{channel.num_ranks()} * memo_banks_, BankMemo{});
  const auto memo_for = [this](const DramCoord& c) -> BankMemo& {
    return memo_[std::size_t{c.rank} * memo_banks_ + c.bank];
  };

  // Candidates already issuable (or issuable at now + 1) clamp to the very
  // next tick: at most one command leaves per cycle, so a second ready
  // candidate simply waits its turn.
  const Cycle soonest = now + 1;
  Cycle best = kNeverCycle;
  const auto consider = [&best, soonest](Cycle c) {
    if (c != kNeverCycle) best = std::min(best, std::max(c, soonest));
  };

  for (const QueueView& qv : queues) {
    for (const RequestIndex ri : *qv.indices) {
      const Request& req = (*qv.arena)[ri];
      if (blocked(req, qv.id)) continue;
      const dram::Bank& bank =
          channel.rank(req.coord.rank).bank(req.coord.bank);
      switch (bank.state()) {
        case dram::BankState::kActive:
          if (bank.open_row() && *bank.open_row() == req.coord.row) {
            // Pass-1 candidate: column command on the open row.
            const dram::CmdType type = scheduler_detail::column_cmd_for(req);
            consider(channel.earliest_issue(
                dram::Command{type, req.coord, req.id}));
          } else {
            // Pass-3 candidate: row conflict wants a PRE — but only once no
            // queued request still row-hits the open row (pick() keeps the
            // row open for takers, and takers only disappear at issue or
            // enqueue ticks, both of which recompute this scan).
            BankMemo& m = memo_for(req.coord);
            if (m.taker == Verdict::kUnknown) {
              m.taker = scheduler_detail::open_row_has_taker(
                            queues, req.coord, *bank.open_row())
                            ? Verdict::kYes
                            : Verdict::kNo;
            }
            if (m.taker == Verdict::kNo) {
              consider(channel.earliest_issue(
                  dram::Command{dram::CmdType::kPrecharge, req.coord, 0}));
            }
          }
          break;
        case dram::BankState::kPrecharged:
        case dram::BankState::kRefreshing:
          // Pass-2 candidate: ACT (a refreshing bank releases at its
          // recorded next_activate, folded in by Bank::earliest_issue).
          consider(channel.earliest_issue(
              dram::Command{dram::CmdType::kActivate, req.coord, req.id}));
          break;
      }
      if (best <= soonest) return best;
    }
  }
  return best;
}

}  // namespace rop::mem
