// FR-FCFS command scheduling (first-ready, first-come-first-served).
//
// Reads have priority over writes; writes are drained in batches once the
// write queue crosses a high watermark (Table III: "writes are scheduled in
// batches"). Prefetch reads are a third class that the ROP engine enqueues
// shortly before a refresh; they are serviced behind demand requests but
// coalesce with them on open rows (paper §IV-D).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <span>

#include "dram/channel.h"
#include "dram/command.h"
#include "mem/request.h"

namespace rop::mem {

struct SchedulerConfig {
  std::size_t read_queue_capacity = 64;   // Table III: 64-entry read queue
  std::size_t write_queue_capacity = 64;  // Table III: 64-entry write queue
  std::size_t write_drain_high = 48;      // enter drain mode at this depth
  std::size_t write_drain_low = 16;       // leave drain mode at this depth
};

/// The scheduler's decision: which command to put on the command bus, and —
/// for column commands — which queued request it services.
struct SchedulerPick {
  dram::Command cmd;
  int queue_id = -1;            // index into the QueueView span
  std::size_t request_index = 0;  // index within that queue
  [[nodiscard]] bool services_request() const { return cmd.is_column(); }
};

/// A queue the scheduler may draw from this cycle, in priority order.
struct QueueView {
  const std::deque<Request>* requests = nullptr;
  int id = -1;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }

  /// Choose the next command. `blocked(request, queue_id)` masks requests
  /// that must not be scheduled this cycle (rank refreshing, rank locked
  /// for an imminent refresh, post-lock arrivals during a drain, ...).
  ///
  /// Selection order:
  ///   1. the oldest request (scanning queues in priority order) whose
  ///      column command is issuable right now (row hit, "first ready"),
  ///   2. otherwise the oldest request that needs an ACT that is issuable,
  ///   3. otherwise the oldest request that needs a PRE (row conflict) that
  ///      is issuable — unless a same-priority request still row-hits the
  ///      open row (keep the row open for it).
  using BlockedFn = std::function<bool(const Request&, int queue_id)>;
  [[nodiscard]] std::optional<SchedulerPick> pick(
      std::span<const QueueView> queues, const dram::Channel& channel,
      Cycle now, const BlockedFn& blocked) const;

 private:
  SchedulerConfig cfg_;
};

}  // namespace rop::mem
