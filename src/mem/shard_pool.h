// ShardPool: per-channel lazy advancement of the memory system, the engine
// behind cpu::System's `--shard-channels` loop.
//
// Channels are independent timing domains: a controller's tick touches only
// its own channel, rank, refresh-manager, and ROP-engine state, and (with
// MemoryConfig::per_channel_stats) only its own StatRegistry. The only
// cross-channel coupling is observational — read completions delivered to
// the cores, and the epoch sampler's counter snapshots. The pool exploits
// that: each channel advances through its own next-event recurrence
//
//     d' = next_event_cycle(d)   after   tick(d)
//
// entirely independently, and the CPU loop only has to visit a memory
// boundary when some channel could *deliver* a completion
// (Controller::completion_lower_bound — typically CAS-latency-many cycles
// later than next_event_cycle, which also fires for internal activity like
// command issues and refresh phases). Two consequences:
//
//  * an enqueue re-arms only the target channel (note_enqueue), where the
//    serial loop's global mem_dirty_ re-ticks every channel;
//  * between deliveries, channels that are idle are not ticked at all, and
//    busy channels batch their whole tick recurrence in one advance_to.
//
// Bit-identity with the serial event loop follows from the no-op-tick
// invariance the determinism suite already pins (naive == event): both
// loops execute supersets of the true event set, arrivals are stamped at
// the same cycles (the CPU window structure is unchanged), and completions
// are drained at the boundary they were produced (advance_to(M) runs every
// due tick <= M, and the delivery bound guarantees no completion was
// produced in an unvisited window).
//
// Stats: with per-channel registries the pool folds counter deltas into
// the shared registry just before each epoch boundary (reproducing the
// serial sampler series exactly — no channel tick between the fold and the
// snapshot can have moved a counter) and merges scalars/histograms once at
// finalize, where Scalar's order-independent exact summation makes the
// merged values bit-identical to serial interleaved recording.
//
// Threading: shard w owns channels {ch : ch % num_shards == w}. Worker 0
// is the calling thread; workers 1..n-1 park on a condition variable and
// are dispatched only when at least two shards have due work over a span
// worth the wakeup (kParallelSpan). All controller state is quiescent
// outside advance_to — the job mutex orders every hand-off, so the main
// thread may freely read controllers (drain, bounds, finalize) between
// calls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/memory_system.h"

namespace rop::mem {

class ShardPool {
 public:
  /// `num_shards` is clamped to the channel count. The pool snapshots the
  /// per-channel registries at construction, so build it after the full
  /// system (engines included) has registered its stats; it mirrors the
  /// channel stat names into the shared registry as a backstop (see
  /// MemorySystem::mirror_channel_stats for why the sampler needs them
  /// earlier).
  ShardPool(MemorySystem& memory, std::uint32_t num_shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Run every due channel tick with cycle <= target, folding counter
  /// deltas at each epoch boundary crossed on the way. Called once per
  /// visited memory window; monotone targets only.
  void advance_to(Cycle target);

  /// Fold epoch boundaries <= target without advancing past already-due
  /// work (end-of-run: the serial loop samples the final boundary without
  /// executing another tick).
  void sample_to(Cycle target);

  /// A request was accepted by channel `ch` at memory cycle `now`: its
  /// first observing tick is now + 1, and the cached delivery bound for
  /// the channel is stale.
  void note_enqueue(ChannelId ch, Cycle now);

  /// Earliest memory cycle > pos at which any channel could hold a
  /// deliverable completion — the sharded loop's mem_next_event.
  /// Conservative-early; exact per-channel bounds are cached and only
  /// recomputed after the channel ticked or accepted a request.
  [[nodiscard]] Cycle next_required_boundary(Cycle pos);

  /// Drain completed demand reads, channels in order — the serial
  /// MemorySystem::for_each_completed sequence.
  template <typename Fn>
  void for_each_completed(Fn&& fn) {
    for (auto& cs : channels_) cs.ctrl->drain_completed_into(fn);
  }

  /// End of run: finalize every controller (channel order), fold the final
  /// counter deltas plus all scalars/histograms into the shared registry,
  /// and close the sampler — the sharded replacement for
  /// MemorySystem::finalize.
  void finalize_run(Cycle end);

  [[nodiscard]] std::uint32_t num_shards() const { return num_shards_; }

  /// Snapshot serialization: the per-channel event clocks (next_due) and
  /// the counter-fold baselines. Cached delivery bounds are recomputed
  /// (marked stale). The baselines must be serialized verbatim — not
  /// resynced to the restored channel counters — because the fold
  /// invariant is `mirror_value + (src - prev) == true total`: any delta
  /// accumulated since the last fold lives only in (src - prev), and the
  /// snapshot captures mirror, src, and prev each as-is. (The
  /// construction-time priming of prev is simply overwritten here.)
  template <class Ar>
  void io(Ar& ar) {
    for (auto& cs : channels_) {
      ar.field(cs.next_due);
      if constexpr (Ar::kIsReader) cs.bound_stale = true;
    }
    for (auto& f : folds_) ar.field(f.prev);
  }

 private:
  struct ChannelState {
    Controller* ctrl = nullptr;
    /// Next cycle whose tick must execute (the per-channel event clock);
    /// kNeverCycle parks the channel until note_enqueue re-arms it.
    Cycle next_due = 0;
    /// Cached completion_lower_bound; valid while the channel neither
    /// ticked nor accepted a request since it was computed.
    Cycle bound = 0;
    bool bound_stale = true;
  };

  struct CounterFold {
    Counter* dst = nullptr;
    const Counter* src = nullptr;
    std::uint64_t prev = 0;
  };

  /// Dispatch spans at least this long (memory cycles) to the worker
  /// threads; shorter ones run inline — a wakeup costs more than a few
  /// ticks.
  static constexpr Cycle kParallelSpan = 64;

  void advance_all(Cycle target);
  void advance_shard(std::uint32_t shard, Cycle target);
  static void advance_channel(ChannelState& cs, Cycle target);
  void fold_counters();
  void fold_epochs_through(Cycle target);
  void worker_main(std::uint32_t shard);

  MemorySystem& memory_;
  StatRegistry* shared_;
  std::uint32_t num_shards_;
  std::vector<ChannelState> channels_;
  std::vector<CounterFold> folds_;

  // Job hand-off: main publishes job_target_ under job_mu_ and bumps
  // job_gen_; workers run their shard and count themselves done. The mutex
  // carries all happens-before edges for the controller state.
  std::vector<std::thread> workers_;
  std::mutex job_mu_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // main waits for done_count_
  std::uint64_t job_gen_ = 0;
  Cycle job_target_ = 0;
  std::uint32_t done_count_ = 0;
  bool stop_ = false;
};

}  // namespace rop::mem
