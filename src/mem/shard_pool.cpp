#include "mem/shard_pool.h"

#include <algorithm>

#include "telemetry/epoch_sampler.h"

namespace rop::mem {

ShardPool::ShardPool(MemorySystem& memory, std::uint32_t num_shards)
    : memory_(memory),
      shared_(memory.stats()),
      num_shards_(std::clamp(num_shards, 1u, memory.num_channels())) {
  // Backstop: the sampler should already have seen the mirrored names (see
  // MemorySystem::mirror_channel_stats), but late assembly paths that skip
  // the sampler still need the shared-registry destinations for the folds.
  memory_.mirror_channel_stats();

  channels_.reserve(memory_.num_channels());
  for (ChannelId ch = 0; ch < memory_.num_channels(); ++ch) {
    channels_.push_back(ChannelState{&memory_.controller(ch), 0, 0, true});
  }

  if (memory_.per_channel_stats()) {
    for (ChannelId ch = 0; ch < memory_.num_channels(); ++ch) {
      const StatRegistry& reg = memory_.channel_stats(ch);
      for (const auto& [name, src] : reg.counters()) {
        folds_.push_back(
            CounterFold{shared_->counter_handle(name), &src, src.value()});
      }
    }
  }

  for (std::uint32_t w = 1; w < num_shards_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ShardPool::advance_channel(ChannelState& cs, Cycle target) {
  if (cs.next_due > target) return;
  Controller& ctrl = *cs.ctrl;
  Cycle due = cs.next_due;
  do {
    ctrl.tick(due);
    due = ctrl.next_event_cycle(due);
  } while (due <= target);
  cs.next_due = due;
  cs.bound_stale = true;
}

void ShardPool::advance_shard(std::uint32_t shard, Cycle target) {
  for (std::uint32_t ch = shard;
       ch < static_cast<std::uint32_t>(channels_.size());
       ch += num_shards_) {
    advance_channel(channels_[ch], target);
  }
}

void ShardPool::advance_all(Cycle target) {
  // Dispatch the worker threads only when at least two shards have a span
  // of due work long enough to amortize the wakeup; the common short hop
  // (one boundary, one busy channel) runs inline.
  if (num_shards_ > 1) {
    std::uint32_t due_shards = 0;
    Cycle min_due = kNeverCycle;
    for (std::uint32_t w = 0; w < num_shards_ && due_shards < 2; ++w) {
      for (std::uint32_t ch = w;
           ch < static_cast<std::uint32_t>(channels_.size());
           ch += num_shards_) {
        if (channels_[ch].next_due <= target) {
          ++due_shards;
          min_due = std::min(min_due, channels_[ch].next_due);
          break;
        }
      }
    }
    if (due_shards >= 2 && target - min_due >= kParallelSpan) {
      {
        std::lock_guard<std::mutex> lk(job_mu_);
        job_target_ = target;
        done_count_ = 0;
        ++job_gen_;
      }
      job_cv_.notify_all();
      advance_shard(0, target);
      std::unique_lock<std::mutex> lk(job_mu_);
      done_cv_.wait(lk, [this] { return done_count_ == num_shards_ - 1; });
      return;
    }
  }
  for (auto& cs : channels_) advance_channel(cs, target);
}

void ShardPool::worker_main(std::uint32_t shard) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    Cycle target;
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [&] { return stop_ || job_gen_ > seen_gen; });
      if (stop_) return;
      seen_gen = job_gen_;
      target = job_target_;
    }
    advance_shard(shard, target);
    {
      std::lock_guard<std::mutex> lk(job_mu_);
      ++done_count_;
    }
    done_cv_.notify_one();
  }
}

void ShardPool::fold_counters() {
  for (auto& f : folds_) {
    const std::uint64_t v = f.src->value();
    f.dst->inc(v - f.prev);
    f.prev = v;
  }
}

void ShardPool::fold_epochs_through(Cycle target) {
  telemetry::EpochSampler* const s = memory_.sampler();
  if (s == nullptr || !s->enabled()) return;
  while (s->next_boundary() <= target) {
    const Cycle b = s->next_boundary();
    // The sample at boundary b reflects state strictly before cycle b:
    // run every due tick < b, publish the counter deltas, then emit.
    advance_all(b - 1);
    fold_counters();
    s->advance_to(b);
    if (s->next_boundary() <= b) break;  // closed early; no progress
  }
}

void ShardPool::advance_to(Cycle target) {
  fold_epochs_through(target);
  advance_all(target);
}

void ShardPool::sample_to(Cycle target) { fold_epochs_through(target); }

void ShardPool::note_enqueue(ChannelId ch, Cycle now) {
  ChannelState& cs = channels_.at(ch);
  // The first tick that can observe an arrival stamped `now` is now + 1
  // (the naive tick(M) only sees arrivals <= M - 1).
  cs.next_due = std::min(cs.next_due, now + 1);
  cs.bound_stale = true;
}

Cycle ShardPool::next_required_boundary(Cycle pos) {
  Cycle next = kNeverCycle;
  for (auto& cs : channels_) {
    // A cached bound stays a valid lower bound while the channel neither
    // ticks nor accepts a request; once <= pos it must be refreshed (the
    // caller just drained, so a fresh bound is always > pos).
    if (cs.bound_stale || cs.bound <= pos) {
      cs.bound = cs.ctrl->completion_lower_bound(pos);
      cs.bound_stale = false;
    }
    next = std::min(next, cs.bound);
  }
  return next;
}

void ShardPool::finalize_run(Cycle end) {
  for (auto& cs : channels_) cs.ctrl->finalize(end);
  if (memory_.per_channel_stats()) {
    fold_counters();  // finalize may have moved counters (blocking settle)
    for (ChannelId ch = 0; ch < memory_.num_channels(); ++ch) {
      const StatRegistry& reg = memory_.channel_stats(ch);
      for (const auto& [name, s] : reg.scalars()) {
        shared_->scalar(name).merge(s);
      }
      for (const auto& [name, h] : reg.histograms()) {
        shared_->histogram(name, h.bucket_width(), h.num_buckets() - 1)
            .merge(h);
      }
    }
  }
  if (telemetry::EpochSampler* const s = memory_.sampler()) s->close(end);
}

}  // namespace rop::mem
