#include "mem/refresh_manager.h"

#include <numeric>

namespace rop::mem {

RefreshManager::RefreshManager(const dram::DramTimings& timings,
                               std::uint32_t num_ranks,
                               std::uint32_t units_per_trefi,
                               StatRegistry* stats)
    : t_(timings),
      issued_(num_ranks, 0),
      num_ranks_(num_ranks),
      units_per_trefi_(units_per_trefi) {
  ROP_ASSERT(num_ranks > 0);
  ROP_ASSERT(units_per_trefi > 0 && units_per_trefi <= t_.tREFI);
  if (stats != nullptr) {
    units_issued_ = stats->counter_handle("mem.refresh_units_issued");
  }
}

Cycle RefreshManager::phase_offset(RankId rank) const {
  return static_cast<Cycle>(rank) * interval() / num_ranks_;
}

std::uint32_t RefreshManager::owed(RankId rank, Cycle now) const {
  const Cycle offset = phase_offset(rank);
  // The first tREFI interval must elapse before any refresh is owed: rank
  // r's k-th boundary sits at offset + k * tREFI (k >= 1), never at the
  // phase offset itself.
  if (now < offset + interval()) return 0;
  const std::uint64_t boundaries = (now - offset) / interval();
  const std::uint64_t done = issued_.at(rank);
  return boundaries > done ? static_cast<std::uint32_t>(boundaries - done) : 0;
}

Cycle RefreshManager::next_boundary(RankId rank, Cycle now) const {
  const Cycle offset = phase_offset(rank);
  const std::uint64_t done = issued_.at(rank);
  // The next boundary not yet covered by an issued refresh; when overdue
  // the boundary is in the past and a refresh is owed now.
  (void)now;
  return offset + (done + 1) * interval();
}

void RefreshManager::on_refresh_issued(RankId rank) {
  ++issued_.at(rank);
  if (units_issued_ != nullptr) units_issued_->inc();
}

std::uint64_t RefreshManager::total_issued() const {
  return std::accumulate(issued_.begin(), issued_.end(), std::uint64_t{0});
}

}  // namespace rop::mem
