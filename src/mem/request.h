// Memory transactions as seen by the controller.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace rop::mem {

enum class ReqType : std::uint8_t {
  kRead,      // demand read (LLC miss fill)
  kWrite,     // writeback from the LLC
  kPrefetch,  // ROP prefetch read into the SRAM buffer
};

/// How a completed request was serviced — the experiment layer uses this to
/// split latency statistics.
enum class ServicedBy : std::uint8_t {
  kDram,
  kSramBuffer,    // hit in the ROP SRAM buffer during a refresh
  kWriteForward,  // read forwarded from a pending write in the write queue
};

struct Request {
  RequestId id = 0;
  ReqType type = ReqType::kRead;
  Address line_addr = 0;  // line-granular byte address (low 6 bits zero)
  DramCoord coord{};
  CoreId core = 0;
  Cycle arrival = 0;                 // controller clock
  Cycle completion = kNeverCycle;    // set when serviced
  ServicedBy serviced_by = ServicedBy::kDram;

  [[nodiscard]] bool is_read() const { return type != ReqType::kWrite; }
};

}  // namespace rop::mem
