// Memory transactions as seen by the controller, plus the pooled arena
// that backs every controller queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rop::mem {

enum class ReqType : std::uint8_t {
  kRead,      // demand read (LLC miss fill)
  kWrite,     // writeback from the LLC
  kPrefetch,  // ROP prefetch read into the SRAM buffer
};

/// How a completed request was serviced — the experiment layer uses this to
/// split latency statistics.
enum class ServicedBy : std::uint8_t {
  kDram,
  kSramBuffer,    // hit in the ROP SRAM buffer during a refresh
  kWriteForward,  // read forwarded from a pending write in the write queue
};

struct Request {
  RequestId id = 0;
  ReqType type = ReqType::kRead;
  Address line_addr = 0;  // line-granular byte address (low 6 bits zero)
  DramCoord coord{};
  CoreId core = 0;
  Cycle arrival = 0;                 // controller clock
  Cycle completion = kNeverCycle;    // set when serviced
  ServicedBy serviced_by = ServicedBy::kDram;

  // Lifecycle stamps for latency attribution (telemetry/attribution.h):
  // arrival -> eligible -> act -> issued -> completion. `eligible` is the
  // first cycle the request could have been scheduled (arrival, or the
  // refresh-lock release when it arrived mid-lock); `act` is set only when
  // a row activation was issued *for this request* (row hits inherit the
  // open row and never pay activation wait); `issued` is the column
  // command issue cycle for DRAM-serviced reads.
  Cycle eligible = 0;
  Cycle act = kNeverCycle;
  Cycle issued = kNeverCycle;

  // Per-cause refresh-blocked sub-intervals (controller cycles), charged
  // at the same refresh-issue/arrival events that feed the aggregate
  // mem.refresh_blocked_cycles counter — their sum over live reads equals
  // that counter's growth by construction.
  std::uint32_t blocked_rank = 0;    // whole-rank REF lock
  std::uint32_t blocked_bank = 0;    // per-bank REFpb lock
  std::uint32_t blocked_sub = 0;     // subarray REFpb lock (SARP/HiRA)
  std::uint32_t blocked_pause = 0;   // pausing-segment lock

  [[nodiscard]] bool is_read() const { return type != ReqType::kWrite; }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(id, type, line_addr, coord, core, arrival, completion, serviced_by,
       eligible, act, issued, blocked_rank, blocked_bank, blocked_sub,
       blocked_pause);
  }
};

/// Stable handle into a RequestArena slot.
using RequestIndex = std::uint32_t;
inline constexpr RequestIndex kNoRequest = 0xffffffffu;

/// Pooled storage for in-controller requests. Queues hold RequestIndex
/// values instead of Request copies, so moving a request between queues
/// (read queue -> in flight -> completed) is an index move, not a 64-byte
/// copy, and queue erases shuffle 4-byte indices. Slots are recycled
/// through a free list; indices stay stable for the lifetime of the
/// request inside the controller.
class RequestArena {
 public:
  [[nodiscard]] RequestIndex alloc(const Request& req) {
    if (!free_.empty()) {
      const RequestIndex idx = free_.back();
      free_.pop_back();
      slots_[idx] = req;
      return idx;
    }
    const auto idx = static_cast<RequestIndex>(slots_.size());
    ROP_ASSERT(idx != kNoRequest);
    slots_.push_back(req);
    return idx;
  }

  void release(RequestIndex idx) { free_.push_back(idx); }

  [[nodiscard]] Request& operator[](RequestIndex idx) { return slots_[idx]; }
  [[nodiscard]] const Request& operator[](RequestIndex idx) const {
    return slots_[idx];
  }

  /// Number of live (allocated, not yet released) slots.
  [[nodiscard]] std::size_t live() const {
    return slots_.size() - free_.size();
  }

  /// Snapshot serialization: slots and the free list verbatim, so every
  /// RequestIndex held by the controller's queues stays valid and future
  /// allocations recycle the same slots in the same order.
  template <class Ar>
  void io(Ar& ar) {
    ar(slots_, free_);
  }

 private:
  std::vector<Request> slots_;
  std::vector<RequestIndex> free_;
};

/// Read-only view of one index queue dereferenced through its arena.
/// Iterates like the container of Request values it replaces, so
/// inspection code (the invariant checker, tests) keeps its range-for
/// loops.
class RequestView {
 public:
  RequestView(const RequestArena* arena,
              const std::vector<RequestIndex>* indices)
      : arena_(arena), indices_(indices) {}

  class iterator {
   public:
    using value_type = Request;
    using reference = const Request&;
    using difference_type = std::ptrdiff_t;

    iterator(const RequestArena* arena,
             const std::vector<RequestIndex>::const_iterator it)
        : arena_(arena), it_(it) {}
    reference operator*() const { return (*arena_)[*it_]; }
    const Request* operator->() const { return &(*arena_)[*it_]; }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const iterator& o) const { return it_ == o.it_; }
    bool operator!=(const iterator& o) const { return it_ != o.it_; }

   private:
    const RequestArena* arena_;
    std::vector<RequestIndex>::const_iterator it_;
  };

  [[nodiscard]] iterator begin() const {
    return iterator(arena_, indices_->begin());
  }
  [[nodiscard]] iterator end() const {
    return iterator(arena_, indices_->end());
  }
  [[nodiscard]] std::size_t size() const { return indices_->size(); }
  [[nodiscard]] bool empty() const { return indices_->empty(); }
  [[nodiscard]] const Request& operator[](std::size_t i) const {
    return (*arena_)[(*indices_)[i]];
  }

 private:
  const RequestArena* arena_;
  const std::vector<RequestIndex>* indices_;
};

}  // namespace rop::mem
