#include "mem/scheduler.h"

#include <algorithm>

namespace rop::mem {

namespace {

dram::CmdType column_cmd_for(const Request& req) {
  return req.type == ReqType::kWrite ? dram::CmdType::kWrite
                                     : dram::CmdType::kRead;
}

/// True when any request in any queue would row-hit bank `coord`'s
/// currently open row (used to avoid closing rows that still have takers).
bool open_row_has_taker(std::span<const QueueView> queues,
                        const DramCoord& coord, RowId open_row) {
  for (const QueueView& qv : queues) {
    for (const Request& req : *qv.requests) {
      if (req.coord.rank == coord.rank && req.coord.bank == coord.bank &&
          req.coord.row == open_row) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::optional<SchedulerPick> Scheduler::pick(
    std::span<const QueueView> queues, const dram::Channel& channel,
    Cycle now, const BlockedFn& blocked) const {
  // Pass 1: first-ready column commands, in queue priority then age order.
  for (const QueueView& qv : queues) {
    for (std::size_t i = 0; i < qv.requests->size(); ++i) {
      const Request& req = (*qv.requests)[i];
      if (blocked(req, qv.id)) continue;
      const dram::Bank& bank = channel.rank(req.coord.rank).bank(req.coord.bank);
      if (bank.state() != dram::BankState::kActive || !bank.open_row() ||
          *bank.open_row() != req.coord.row) {
        continue;
      }
      dram::Command cmd{column_cmd_for(req), req.coord, req.id};
      if (channel.can_issue(cmd, now)) {
        return SchedulerPick{cmd, qv.id, i};
      }
    }
  }

  // Pass 2: row commands (ACT / PRE) for the oldest requests.
  for (const QueueView& qv : queues) {
    for (std::size_t i = 0; i < qv.requests->size(); ++i) {
      const Request& req = (*qv.requests)[i];
      if (blocked(req, qv.id)) continue;
      const dram::Bank& bank = channel.rank(req.coord.rank).bank(req.coord.bank);
      switch (bank.state()) {
        case dram::BankState::kPrecharged: {
          dram::Command act{dram::CmdType::kActivate, req.coord, req.id};
          if (channel.can_issue(act, now)) {
            return SchedulerPick{act, qv.id, i};
          }
          break;
        }
        case dram::BankState::kActive: {
          // Row conflict: close the row, but only if nobody still wants it.
          if (bank.open_row() && *bank.open_row() != req.coord.row &&
              !open_row_has_taker(queues, req.coord, *bank.open_row())) {
            dram::Command pre{dram::CmdType::kPrecharge, req.coord, 0};
            if (channel.can_issue(pre, now)) {
              return SchedulerPick{pre, qv.id, i};
            }
          }
          break;
        }
        case dram::BankState::kRefreshing:
          break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace rop::mem
