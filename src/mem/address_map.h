// Physical-address interleaving schemes.
//
// The mapper translates line-granular physical addresses to DRAM coordinates
// and back. Two schemes are provided:
//
//  * kRowColumnRankBank — line-interleaved across banks (the default, and
//    what DRAMSim2-style controllers typically use): consecutive lines
//    rotate through the banks, maximizing bank-level parallelism. A strided
//    stream then leaves a clean small-delta trail in *every* bank's
//    prediction-table entry, which is the regime the paper's per-bank
//    table and Eq. 3 budget split are designed for.
//  * kRowRankBankColumn — page-interleaved: consecutive lines fill a row
//    inside one bank before moving to the next bank (stronger bank
//    locality per [22], weaker parallelism).
//  * kRowBankRankColumn — as page-interleaved but with rank below bank.
//
// Rank-aware mapping (paper §IV-A "Rank-aware Mapping") is expressed by
// taking the rank not from address bits but from a per-core assignment; see
// RankPartitioning below.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/timing.h"

namespace rop::mem {

enum class MapScheme : std::uint8_t {
  kRowRankBankColumn,  // [row | rank | bank | column | channel]
  kRowBankRankColumn,  // [row | bank | rank | column | channel]
  kRowColumnRankBank,  // [row | column | rank | bank | channel]
};

class AddressMap {
 public:
  AddressMap(const dram::DramOrganization& org,
             MapScheme scheme = MapScheme::kRowRankBankColumn);

  /// Decompose a byte address (any alignment; low 6 bits ignored).
  [[nodiscard]] DramCoord map(Address byte_addr) const;

  /// Rebuild the line-granular byte address from a coordinate.
  [[nodiscard]] Address unmap(const DramCoord& coord) const;

  /// Linear cache-line offset of `coord` within its bank — the LastAddr
  /// representation used by the ROP prediction table.
  [[nodiscard]] std::uint64_t line_offset_in_bank(const DramCoord& coord) const;

  /// Inverse of line_offset_in_bank for a fixed channel/rank/bank. Offsets
  /// beyond the bank wrap around (prefetch address generation may step past
  /// the last row).
  [[nodiscard]] DramCoord coord_from_bank_offset(ChannelId channel, RankId rank,
                                                 BankId bank,
                                                 std::uint64_t offset) const;

  /// Rank-partitioned relocation: spread a rank-local line index over
  /// channel/column/bank/row while pinning the rank — the physical address
  /// layout used when rank partitioning confines a core to its home rank.
  /// Bijective over one rank's capacity; indices beyond it wrap.
  [[nodiscard]] Address compose_in_rank(RankId rank,
                                        std::uint64_t local_line) const;

  /// Cache lines addressable within one rank (wrap bound for the above).
  [[nodiscard]] std::uint64_t lines_per_rank() const {
    return static_cast<std::uint64_t>(org_.channels) * org_.banks *
           org_.lines_per_bank();
  }

  [[nodiscard]] const dram::DramOrganization& organization() const {
    return org_;
  }
  [[nodiscard]] MapScheme scheme() const { return scheme_; }

 private:
  dram::DramOrganization org_;
  MapScheme scheme_;
};

/// Rank partitioning assigns each core a home rank; the system remaps the
/// rank field of every address a core emits to its home rank, so concurrent
/// applications do not interleave within a rank (paper §IV-A, §V-A).
struct RankPartitioning {
  bool enabled = false;

  [[nodiscard]] RankId home_rank(CoreId core, std::uint32_t num_ranks) const {
    return core % num_ranks;
  }
};

}  // namespace rop::mem
