#include "mem/controller.h"

#include <algorithm>
#include <array>

#include "telemetry/trace_sink.h"

namespace rop::mem {

Controller::Controller(ChannelId id, const dram::DramTimings& timings,
                       const dram::DramOrganization& org, ControllerConfig cfg,
                       StatRegistry* stats)
    : id_(id),
      cfg_(cfg),
      channel_(timings, org),
      rm_(timings, org.ranks,
          cfg.per_bank_refresh || policy_uses_bank_units(cfg.policy)
              ? org.banks
              : 1,
          stats),
      scheduler_(cfg.sched),
      blocking_(org.ranks, timings.tRFC),
      stats_(stats),
      reads_by_rank_(org.ranks),
      pending_reads_(org.ranks, 0),
      pending_writes_(org.ranks, 0),
      queued_prefetches_(org.ranks, 0),
      inflight_prefetches_(org.ranks, 0),
      phase_(org.ranks, RefreshPhase::kIdle),
      locked_at_(org.ranks, kNeverCycle),
      drain_pending_(org.ranks, 0),
      last_arrival_(org.ranks, 0),
      refresh_remaining_(org.ranks, 0),
      refresh_started_(org.ranks, false),
      refresh_window_opened_(org.ranks, false),
      next_refresh_bank_(org.ranks, 0),
      num_banks_(org.banks),
      reads_by_bank_count_(static_cast<std::size_t>(org.ranks) * org.banks, 0),
      writes_by_bank_count_(static_cast<std::size_t>(org.ranks) * org.banks,
                            0),
      darp_round_mask_(org.ranks, 0),
      next_refresh_sub_(static_cast<std::size_t>(org.ranks) * org.banks, 0) {
  ROP_ASSERT(stats != nullptr);
  // Per-bank refresh replaces the whole-rank policies.
  ROP_ASSERT(!cfg.per_bank_refresh ||
             cfg.policy == RefreshPolicy::kAutoRefresh);
  // Subarray-targeted policies need the subarray-aware bank model.
  ROP_ASSERT(!policy_uses_subarrays(cfg.policy) || org.subarrays > 1);
  h_.reads = stats->counter_handle("mem.reads");
  h_.writes = stats->counter_handle("mem.writes");
  h_.sram_serviced = stats->counter_handle("mem.sram_serviced");
  h_.read_forwarded = stats->counter_handle("mem.read_forwarded");
  h_.write_coalesced = stats->counter_handle("mem.write_coalesced");
  h_.writes_issued = stats->counter_handle("mem.writes_issued");
  h_.refreshes = stats->counter_handle("mem.refreshes");
  h_.bank_refreshes = stats->counter_handle("mem.bank_refreshes");
  h_.refresh_pauses = stats->counter_handle("mem.refresh_pauses");
  h_.refresh_blocked_cycles =
      stats->counter_handle("mem.refresh_blocked_cycles");
  h_.prefetch_enqueued = stats->counter_handle("rop.prefetch_enqueued");
  h_.prefetch_issued = stats->counter_handle("rop.prefetch_issued");
  h_.prefetch_dropped = stats->counter_handle("rop.prefetch_dropped");
  h_.prefetch_dropped_queue_full =
      stats->counter_handle("rop.prefetch_dropped_queue_full");
  h_.prefetch_dropped_stale =
      stats->counter_handle("rop.prefetch_dropped_stale");
  h_.prefetch_completed = stats->counter_handle("rop.prefetch_completed");
  h_.read_latency = stats->scalar_handle("mem.read_latency");
  // 8-cycle buckets out to 1024 cycles (beyond 2x tRFC), overflow above.
  h_.read_latency_hist =
      stats->histogram_handle("mem.read_latency_hist", 8, 128);
  h_.attr_blocked_rank = stats->counter_handle("attr.blocked_rank_cycles");
  h_.attr_blocked_bank = stats->counter_handle("attr.blocked_bank_cycles");
  h_.attr_blocked_sub = stats->counter_handle("attr.blocked_subarray_cycles");
  h_.attr_blocked_pause = stats->counter_handle("attr.blocked_pause_cycles");
  h_.attr_rop_recovered = stats->counter_handle("attr.rop_recovered_cycles");
  h_.attr_blocked_rank_hist =
      stats->histogram_handle("attr.blocked_rank_hist", 8, 128);
  h_.attr_blocked_bank_hist =
      stats->histogram_handle("attr.blocked_bank_hist", 8, 128);
  h_.attr_blocked_sub_hist =
      stats->histogram_handle("attr.blocked_subarray_hist", 8, 128);
  h_.attr_blocked_pause_hist =
      stats->histogram_handle("attr.blocked_pause_hist", 8, 128);
  h_.attr_queue_wait_hist =
      stats->histogram_handle("attr.queue_wait_hist", 8, 128);
  h_.attr_act_wait_hist =
      stats->histogram_handle("attr.act_wait_hist", 8, 128);
}

void Controller::record_read_latency(const Request& req) {
  const Cycle latency = req.completion - req.arrival;
  h_.read_latency->record(static_cast<double>(latency));
  h_.read_latency_hist->record(latency);
  // Fold the per-request attribution accumulators into the ledger. The
  // zero-skips keep the common unblocked read at four integer compares.
  if (req.blocked_rank != 0) {
    h_.attr_blocked_rank->inc(req.blocked_rank);
    h_.attr_blocked_rank_hist->record(req.blocked_rank);
  }
  if (req.blocked_bank != 0) {
    h_.attr_blocked_bank->inc(req.blocked_bank);
    h_.attr_blocked_bank_hist->record(req.blocked_bank);
  }
  if (req.blocked_sub != 0) {
    h_.attr_blocked_sub->inc(req.blocked_sub);
    h_.attr_blocked_sub_hist->record(req.blocked_sub);
  }
  if (req.blocked_pause != 0) {
    h_.attr_blocked_pause->inc(req.blocked_pause);
    h_.attr_blocked_pause_hist->record(req.blocked_pause);
  }
  if (req.issued != kNeverCycle) {
    h_.attr_queue_wait_hist->record(req.issued - req.arrival);
    if (req.act != kNeverCycle) {
      h_.attr_act_wait_hist->record(req.issued - req.act);
    }
  }
  if (trace_ != nullptr && trace_->wants(telemetry::kCatReqs)) {
    telemetry::TraceEvent e;
    e.ts = req.arrival;
    e.dur = latency;
    e.arg = static_cast<std::uint64_t>(req.serviced_by);
    e.kind = telemetry::EventKind::kReadSpan;
    e.category = telemetry::kCatReqs;
    e.channel = static_cast<std::uint16_t>(id_);
    e.rank = static_cast<std::uint16_t>(req.coord.rank);
    e.bank = static_cast<std::uint16_t>(req.coord.bank);
    e.core = req.core;
    trace_->record(e);
    // Nested lifecycle slices inside the read span: queue wait
    // (arrival -> issue), activation wait (ACT -> issue) and the data
    // transfer (issue -> data). Chrome/Perfetto nest them by containment
    // on the same lane.
    if (req.issued != kNeverCycle) {
      if (req.issued > req.arrival) {
        e.ts = req.arrival;
        e.dur = req.issued - req.arrival;
        e.kind = telemetry::EventKind::kReadQueueSpan;
        trace_->record(e);
      }
      if (req.act != kNeverCycle && req.issued > req.act) {
        e.ts = req.act;
        e.dur = req.issued - req.act;
        e.kind = telemetry::EventKind::kReadActSpan;
        trace_->record(e);
      }
      e.ts = req.issued;
      e.dur = req.completion - req.issued;
      e.kind = telemetry::EventKind::kReadXferSpan;
      trace_->record(e);
    }
  }
}

bool Controller::can_accept(ReqType type) const {
  switch (type) {
    case ReqType::kRead:
      return read_q_.size() < cfg_.sched.read_queue_capacity;
    case ReqType::kWrite:
      return write_q_.size() < cfg_.sched.write_queue_capacity;
    case ReqType::kPrefetch:
      return prefetch_q_.size() < cfg_.sched.read_queue_capacity;
  }
  return false;
}

bool Controller::enqueue(Request req, Cycle now) {
  ROP_ASSERT(req.type != ReqType::kPrefetch);
  // Admission control comes first: a rejected request must leave stats,
  // arrival tracking, and listener/profiler state completely untouched —
  // the caller retries the same request next cycle and it would otherwise
  // be double-counted.
  if (!can_accept(req.type)) return false;
  req.arrival = now;
  req.eligible = now;
  last_arrival_[req.coord.rank] = now;

  if (req.type == ReqType::kRead) {
    h_.reads->inc();
    blocking_.on_read_arrival(req.coord.rank, now);
    // The ROP engine observes every demand arrival; it may service a read
    // from the SRAM buffer while the rank is frozen.
    if (listener_ != nullptr) {
      if (const auto done = listener_->on_enqueue(req, now)) {
        req.completion = *done;
        req.serviced_by = ServicedBy::kSramBuffer;
        h_.sram_serviced->inc();
        // The revived-cycle credit: without the buffer this read would
        // have waited out the rest of the refresh window.
        const dram::Rank& rk = channel_.rank(req.coord.rank);
        if (rk.refreshing() && rk.refresh_done() > req.completion) {
          h_.attr_rop_recovered->inc(rk.refresh_done() - req.completion);
        }
        record_read_latency(req);
        completed_.push_back(arena_.alloc(req));
        return true;
      }
    }
    // Read-after-write forwarding: coalescing keeps at most one queued
    // write per line, so set membership is exact.
    if (write_index_.count(req.line_addr) != 0) {
      req.completion = now + 1;
      req.serviced_by = ServicedBy::kWriteForward;
      h_.read_forwarded->inc();
      record_read_latency(req);
      completed_.push_back(arena_.alloc(req));
      return true;
    }
    const RankId r = req.coord.rank;
    const RequestIndex idx = arena_.alloc(req);
    read_q_.push_back(idx);
    reads_by_rank_[r].push_back(idx);
    ++pending_reads_[r];
    ++reads_by_bank_count_[bank_slot(r, req.coord.bank)];
    // A read arriving at the lock cycle itself satisfies `arrival <= lock`
    // and the drain must wait for it too.
    if (locked_at_[r] != kNeverCycle && now <= locked_at_[r]) {
      ++drain_pending_[r];
    }
    // Refresh-blocking metric: a read arriving mid-lock is charged the
    // remaining lock span (issue-time charges cover the reads already
    // queued when the lock began). The per-request accumulator records the
    // same span under its cause, and `eligible` moves to the lock release.
    Request& qr = arena_[idx];
    const dram::Rank& rank = channel_.rank(r);
    const dram::Bank& bank = rank.bank(req.coord.bank);
    if (rank.refreshing()) {
      if (rank.refresh_done() > now) {
        const Cycle span = rank.refresh_done() - now;
        charge_refresh_blocking(1, span);
        if (cfg_.policy == RefreshPolicy::kPausing) {
          qr.blocked_pause += static_cast<std::uint32_t>(span);
        } else {
          qr.blocked_rank += static_cast<std::uint32_t>(span);
        }
        qr.eligible = rank.refresh_done();
      }
    } else if (bank.state() == dram::BankState::kRefreshing) {
      if (bank.next_activate() > now) {
        const Cycle span = bank.next_activate() - now;
        charge_refresh_blocking(1, span);
        qr.blocked_bank += static_cast<std::uint32_t>(span);
        qr.eligible = bank.next_activate();
      }
    } else if (const auto sub = bank.refreshing_subarray(now)) {
      if (bank.subarray_of(req.coord.row) == *sub) {
        const Cycle span = bank.subarray_busy_until(*sub) - now;
        charge_refresh_blocking(1, span);
        qr.blocked_sub += static_cast<std::uint32_t>(span);
        qr.eligible = bank.subarray_busy_until(*sub);
      }
    }
  } else {
    h_.writes->inc();
    // Writes never complete through the listener, but it must still see the
    // arrival to invalidate any buffered copy of the line.
    if (listener_ != nullptr) {
      const auto done = listener_->on_enqueue(req, now);
      ROP_ASSERT(!done);
    }
    // Coalesce repeated writes to the same line: the queued entry (and its
    // scheduler age) stands for the newest data.
    if (write_index_.count(req.line_addr) != 0) {
      h_.write_coalesced->inc();
      return true;
    }
    write_q_.push_back(arena_.alloc(req));
    write_index_.insert(req.line_addr);
    ++pending_writes_[req.coord.rank];
    ++writes_by_bank_count_[bank_slot(req.coord.rank, req.coord.bank)];
  }
  return true;
}

bool Controller::enqueue_prefetch(Request req, Cycle now) {
  ROP_ASSERT(req.type == ReqType::kPrefetch);
  if (prefetch_q_.size() >= cfg_.sched.read_queue_capacity) {
    h_.prefetch_dropped_queue_full->inc();
    return false;
  }
  req.arrival = now;
  h_.prefetch_enqueued->inc();
  prefetch_q_.push_back(arena_.alloc(req));
  ++queued_prefetches_[req.coord.rank];
  return true;
}

void Controller::on_read_leaves_queue(RankId r, RequestIndex idx,
                                      const Request& req) {
  auto& by_rank = reads_by_rank_[r];
  const auto it = std::find(by_rank.begin(), by_rank.end(), idx);
  ROP_ASSERT(it != by_rank.end());
  by_rank.erase(it);
  --pending_reads_[r];
  --reads_by_bank_count_[bank_slot(r, req.coord.bank)];
  // Pre-lock reads count toward the drain the refresh is waiting on.
  if (locked_at_[r] != kNeverCycle && req.arrival <= locked_at_[r]) {
    ROP_ASSERT(drain_pending_[r] > 0);
    --drain_pending_[r];
  }
}

void Controller::drop_prefetches(RankId rank) {
  std::size_t out = 0;
  for (const RequestIndex idx : prefetch_q_) {
    if (arena_[idx].coord.rank == rank) {
      h_.prefetch_dropped->inc();
      if (trace_ != nullptr && trace_->wants(telemetry::kCatRop)) {
        const Request& req = arena_[idx];
        telemetry::TraceEvent e;
        e.ts = req.arrival;
        e.arg = req.line_addr;
        e.kind = telemetry::EventKind::kPrefetchDrop;
        e.category = telemetry::kCatRop;
        e.channel = static_cast<std::uint16_t>(id_);
        e.rank = static_cast<std::uint16_t>(rank);
        e.bank = static_cast<std::uint16_t>(req.coord.bank);
        trace_->record(e);
      }
      --queued_prefetches_[rank];
      arena_.release(idx);
    } else {
      prefetch_q_[out++] = idx;
    }
  }
  prefetch_q_.resize(out);
}

void Controller::complete_bursts(Cycle now) {
  // The cached minimum makes the common "nothing lands this cycle" case a
  // single compare (kNeverCycle when nothing is in flight).
  if (inflight_min_completion_ > now) return;
  std::size_t out = 0;
  Cycle min_completion = kNeverCycle;
  for (const RequestIndex idx : in_flight_) {
    if (arena_[idx].completion > now) {
      min_completion = std::min(min_completion, arena_[idx].completion);
      in_flight_[out++] = idx;
      continue;
    }
    if (arena_[idx].type == ReqType::kPrefetch) {
      // Copy out: the fill listener may service queued reads reentrantly.
      const Request req = arena_[idx];
      arena_.release(idx);
      --inflight_prefetches_[req.coord.rank];
      // Drop fills whose line has a newer pending write — the buffer must
      // never hold data staler than the write queue.
      if (write_index_.count(req.line_addr) != 0) {
        h_.prefetch_dropped_stale->inc();
        if (trace_ != nullptr && trace_->wants(telemetry::kCatRop)) {
          telemetry::TraceEvent e;
          e.ts = now;
          e.arg = req.line_addr;
          e.kind = telemetry::EventKind::kStaleDrop;
          e.category = telemetry::kCatRop;
          e.channel = static_cast<std::uint16_t>(id_);
          e.rank = static_cast<std::uint16_t>(req.coord.rank);
          e.bank = static_cast<std::uint16_t>(req.coord.bank);
          trace_->record(e);
        }
      } else {
        h_.prefetch_completed->inc();
        if (listener_ != nullptr) listener_->on_prefetch_filled(req, now);
      }
    } else {
      record_read_latency(arena_[idx]);
      completed_.push_back(idx);
    }
  }
  in_flight_.resize(out);
  inflight_min_completion_ = min_completion;
}

bool Controller::issue_refresh_commands(RankId r, Cycle now) {
  dram::Rank& rank = channel_.rank(r);
  dram::Command ref{dram::CmdType::kRefresh, DramCoord{id_, r, 0, 0, 0}, 0};
  if (channel_.can_issue(ref, now)) {
    // Any prefetch that failed to issue before the seal is pointless now.
    drop_prefetches(r);
    // Snapshot before the bookkeeping resets: postponement depth at issue
    // and the due-time lock this REF closes.
    if (trace_ != nullptr && trace_->wants(telemetry::kCatRefresh)) {
      telemetry::TraceEvent e;
      e.category = telemetry::kCatRefresh;
      e.channel = static_cast<std::uint16_t>(id_);
      e.rank = static_cast<std::uint16_t>(r);
      if (locked_at_[r] != kNeverCycle && now > locked_at_[r]) {
        e.ts = locked_at_[r];
        e.dur = now - locked_at_[r];
        e.kind = telemetry::EventKind::kRankLock;
        trace_->record(e);
      }
      e.ts = now;
      e.dur = channel_.timings().tRFC;
      e.kind = telemetry::EventKind::kRefreshWindow;
      e.arg = rm_.owed(r, now);
      trace_->record(e);
    }
    channel_.issue(ref, now);
    rm_.on_refresh_issued(r);
    blocking_.on_refresh_start(r, now);
    // Every read still queued to the rank is frozen for the full tRFC.
    charge_refresh_blocking(pending_reads_[r], channel_.timings().tRFC);
    for (const RequestIndex qidx : reads_by_rank_[r]) {
      arena_[qidx].blocked_rank +=
          static_cast<std::uint32_t>(channel_.timings().tRFC);
    }
    h_.refreshes->inc();
    phase_[r] = RefreshPhase::kIdle;
    locked_at_[r] = kNeverCycle;
    drain_pending_[r] = 0;
    if (listener_ != nullptr) {
      listener_->on_refresh_issued(r, now, rank.refresh_done());
    }
    return true;
  }
  // Close open banks so REF becomes legal.
  for (BankId b = 0; b < rank.num_banks(); ++b) {
    if (rank.bank(b).state() != dram::BankState::kActive) continue;
    dram::Command pre{dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                      0};
    if (channel_.can_issue(pre, now)) {
      channel_.issue(pre, now);
      return true;
    }
  }
  return false;
}

bool Controller::manage_refresh(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    const std::uint32_t owed = rm_.owed(r, now);
    if (owed == 0) continue;

    const bool urgent = rm_.urgent(r, now);

    if (phase_[r] == RefreshPhase::kIdle) {
      switch (cfg_.policy) {
        case RefreshPolicy::kAutoRefresh:
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kSealing;
          break;
        case RefreshPolicy::kElastic: {
          // Wait for a rank-idle window whose required length shrinks as
          // the postponement backlog grows; force at the JEDEC budget.
          if (!urgent) {
            const std::uint32_t budget =
                channel_.timings().max_postponed_refreshes;
            const std::uint32_t slack = owed >= budget ? 0 : budget - owed;
            const Cycle threshold =
                cfg_.elastic_base_idle * slack / budget;
            if (now - last_arrival_[r] < threshold) continue;
          }
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kSealing;
          break;
        }
        case RefreshPolicy::kRopDrain:
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kDraining;
          break;
        case RefreshPolicy::kPausing:
        case RefreshPolicy::kDarp:
        case RefreshPolicy::kSarp:
        case RefreshPolicy::kHira:
          ROP_ASSERT(false && "policy has a dedicated manage path");
          break;
      }
      if (phase_[r] != RefreshPhase::kIdle) {
        // Snapshot the drain target: every queued read to this rank
        // arrived strictly before `now`, so all of them predate the lock
        // (same-cycle arrivals land after this tick and bump the counter
        // in enqueue).
        drain_pending_[r] = pending_reads_[r];
      }
    }

    const bool within_bound = now < locked_at_[r] + cfg_.drain_bound;

    if (phase_[r] == RefreshPhase::kDraining) {
      if (!urgent && within_bound && drain_pending_[r] > 0) {
        continue;  // drain still in progress; demand keeps flowing
      }
      // Drain complete: seal the rank. Demand freezes here, which makes
      // this the moment the ROP engine stages its prefetch round — the
      // prediction tables reflect the final pre-refresh stream position.
      phase_[r] = RefreshPhase::kSealing;
      if (listener_ != nullptr) listener_->on_rank_locked(r, now);
    }

    // While sealing, staged prefetches own the bus for this rank; REF goes
    // out once they land (or the budget runs out).
    if (cfg_.policy == RefreshPolicy::kRopDrain && !urgent && within_bound &&
        pending_prefetches(r) > 0) {
      continue;
    }
    if (urgent) drop_prefetches(r);

    if (issued) continue;  // command bus already used this cycle
    issued = issue_refresh_commands(r, now);
  }
  return issued;
}

bool Controller::manage_refresh_pausing(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;  // a segment is executing

    if (refresh_remaining_[r] == 0) {
      if (rm_.owed(r, now) == 0) continue;
      refresh_remaining_[r] = channel_.timings().tRFC;
      refresh_started_[r] = false;
      refresh_window_opened_[r] = false;
    }

    const bool urgent = rm_.urgent(r, now);
    // Pause: while demand is pending and the budget allows, the rank stays
    // available and the scheduler services requests between segments. Each
    // resume pays the re-lock overhead.
    if (!urgent && pending_demand(r) > 0) {
      if (refresh_started_[r]) {
        h_.refresh_pauses->inc();
        refresh_remaining_[r] += cfg_.pause_overhead;
        refresh_started_[r] = false;  // count one pause per gap
      }
      continue;
    }

    if (issued) continue;

    // All banks must be precharged before a segment may begin.
    dram::Command ref{dram::CmdType::kRefresh, DramCoord{id_, r, 0, 0, 0}, 0};
    if (!channel_.can_issue(ref, now)) {
      for (BankId b = 0; b < rank.num_banks(); ++b) {
        if (rank.bank(b).state() != dram::BankState::kActive) continue;
        dram::Command pre{dram::CmdType::kPrecharge,
                          DramCoord{id_, r, b, 0, 0}, 0};
        if (channel_.can_issue(pre, now)) {
          channel_.issue(pre, now);
          issued = true;
          break;
        }
      }
      continue;
    }

    const Cycle duration =
        urgent ? refresh_remaining_[r]
               : std::min<Cycle>(cfg_.pause_quantum, refresh_remaining_[r]);
    // Open the blocking window exactly once per refresh obligation. The
    // first-segment test must not be inferred from refresh_remaining_:
    // pause overhead grows it, so with pause_overhead >= pause_quantum it
    // can return to (or overshoot) tRFC mid-refresh and the sentinel
    // mis-counts window starts.
    if (!refresh_window_opened_[r]) {
      blocking_.on_refresh_start(r, now);
      refresh_window_opened_[r] = true;
      // Nominal tRFC span; the actual segments (and their pause gaps) are
      // traced individually via begin_refresh_segment.
      if (trace_ != nullptr && trace_->wants(telemetry::kCatRefresh)) {
        telemetry::TraceEvent e;
        e.ts = now;
        e.dur = channel_.timings().tRFC;
        e.arg = rm_.owed(r, now);
        e.kind = telemetry::EventKind::kRefreshWindow;
        e.category = telemetry::kCatRefresh;
        e.channel = static_cast<std::uint16_t>(id_);
        e.rank = static_cast<std::uint16_t>(r);
        trace_->record(e);
      }
    }
    channel_.begin_refresh_segment(r, now, duration);
    charge_refresh_blocking(pending_reads_[r], duration);
    for (const RequestIndex qidx : reads_by_rank_[r]) {
      arena_[qidx].blocked_pause += static_cast<std::uint32_t>(duration);
    }
    refresh_started_[r] = true;
    refresh_remaining_[r] -= duration;
    if (refresh_remaining_[r] == 0) {
      rm_.on_refresh_issued(r);
      h_.refreshes->inc();
      refresh_started_[r] = false;
    }
    issued = true;
  }
  return issued;
}

bool Controller::manage_refresh_per_bank(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    if (rm_.owed(r, now) == 0) continue;

    const BankId b = next_refresh_bank_[r];
    dram::Bank& bank = rank.bank(b);
    if (bank.state() == dram::BankState::kRefreshing) continue;
    if (issued) continue;

    if (bank.state() == dram::BankState::kActive) {
      dram::Command pre{dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                        0};
      if (channel_.can_issue(pre, now)) {
        channel_.issue(pre, now);
        issued = true;
      }
      continue;
    }
    dram::Command refpb{dram::CmdType::kRefreshBank,
                        DramCoord{id_, r, b, 0, 0}, 0};
    if (channel_.can_issue(refpb, now)) {
      channel_.issue(refpb, now);
      rm_.on_refresh_issued(r);
      h_.bank_refreshes->inc();
      charge_refresh_blocking(reads_by_bank_count_[bank_slot(r, b)],
                              channel_.timings().tRFCpb);
      for (const RequestIndex qidx : reads_by_rank_[r]) {
        if (arena_[qidx].coord.bank != b) continue;
        arena_[qidx].blocked_bank +=
            static_cast<std::uint32_t>(channel_.timings().tRFCpb);
      }
      next_refresh_bank_[r] =
          static_cast<BankId>((b + 1) % rank.num_banks());
      issued = true;
    }
  }
  return issued;
}

bool Controller::darp_bank_idle(RankId r, BankId b) const {
  const std::size_t slot = bank_slot(r, b);
  if (reads_by_bank_count_[slot] != 0) return false;
  // During write drain reads are off the critical path anyway: a bank with
  // only writes pending is fair game (DARP's write-refresh
  // parallelization). Outside drain mode the bank must be fully idle.
  return draining_writes_ || writes_by_bank_count_[slot] == 0;
}

BankId Controller::darp_pick_bank(RankId r, bool urgent) const {
  // Out-of-order selection: any bank not yet refreshed this round whose
  // queues make it idle. When every candidate has demand the refresh is
  // postponed — unless the JEDEC budget forces it, in which case the first
  // un-refreshed bank is taken regardless.
  const dram::Rank& rank = channel_.rank(r);
  const std::uint32_t nb = rank.num_banks();
  const std::uint32_t mask = darp_round_mask_[r];
  BankId fallback = static_cast<BankId>(nb);
  for (BankId b = 0; b < nb; ++b) {
    if ((mask >> b) & 1u) continue;
    if (rank.bank(b).state() == dram::BankState::kRefreshing) continue;
    if (darp_bank_idle(r, b)) return b;
    if (fallback == nb) fallback = b;
  }
  return urgent ? fallback : static_cast<BankId>(nb);
}

bool Controller::manage_refresh_darp(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    if (rm_.owed(r, now) == 0) continue;

    const bool urgent = rm_.urgent(r, now);
    const BankId b = darp_pick_bank(r, urgent);
    if (b >= rank.num_banks()) continue;  // postponed: every candidate busy
    if (issued) continue;

    dram::Bank& bank = rank.bank(b);
    if (bank.state() == dram::BankState::kActive) {
      // An idle-but-open bank (or the forced fallback) is precharged so
      // REFpb becomes legal next.
      dram::Command pre{dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                        0};
      if (channel_.can_issue(pre, now)) {
        channel_.issue(pre, now);
        issued = true;
      }
      continue;
    }
    dram::Command refpb{dram::CmdType::kRefreshBank,
                        DramCoord{id_, r, b, 0, 0}, 0};
    if (channel_.can_issue(refpb, now)) {
      channel_.issue(refpb, now);
      rm_.on_refresh_issued(r);
      h_.bank_refreshes->inc();
      charge_refresh_blocking(reads_by_bank_count_[bank_slot(r, b)],
                              channel_.timings().tRFCpb);
      for (const RequestIndex qidx : reads_by_rank_[r]) {
        if (arena_[qidx].coord.bank != b) continue;
        arena_[qidx].blocked_bank +=
            static_cast<std::uint32_t>(channel_.timings().tRFCpb);
      }
      darp_round_mask_[r] |= 1u << b;
      const std::uint32_t full = (1u << rank.num_banks()) - 1u;
      if (darp_round_mask_[r] == full) darp_round_mask_[r] = 0;
      issued = true;
    }
  }
  return issued;
}

std::uint64_t Controller::queued_reads_in_subarray(RankId r, BankId b,
                                                   std::uint32_t sub) const {
  const dram::Bank& bank = channel_.rank(r).bank(b);
  std::uint64_t n = 0;
  for (const RequestIndex idx : reads_by_rank_[r]) {
    const Request& req = arena_[idx];
    if (req.coord.bank == b && bank.subarray_of(req.coord.row) == sub) ++n;
  }
  return n;
}

void Controller::record_subarray_refresh(RankId r, BankId b, std::uint32_t sub,
                                         Cycle now) {
  // Only reads into the locked subarray are blocked; the rest of the bank
  // keeps serving (that asymmetry vs. whole-bank REFpb is SARP's win).
  {
    const dram::Bank& bank = channel_.rank(r).bank(b);
    std::uint64_t n = 0;
    for (const RequestIndex idx : reads_by_rank_[r]) {
      Request& req = arena_[idx];
      if (req.coord.bank != b || bank.subarray_of(req.coord.row) != sub) {
        continue;
      }
      req.blocked_sub += static_cast<std::uint32_t>(channel_.timings().tRFCpb);
      ++n;
    }
    charge_refresh_blocking(n, channel_.timings().tRFCpb);
  }
  if (trace_ != nullptr && trace_->wants(telemetry::kCatRefresh)) {
    telemetry::TraceEvent e;
    e.ts = now;
    e.dur = channel_.timings().tRFCpb;
    e.arg = sub;
    e.kind = telemetry::EventKind::kSubarrayRefresh;
    e.category = telemetry::kCatRefresh;
    e.channel = static_cast<std::uint16_t>(id_);
    e.rank = static_cast<std::uint16_t>(r);
    e.bank = static_cast<std::uint16_t>(b);
    trace_->record(e);
  }
}

bool Controller::manage_refresh_subarray(Cycle now) {
  const bool hira = cfg_.policy == RefreshPolicy::kHira;
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    if (rm_.owed(r, now) == 0) continue;

    const bool urgent = rm_.urgent(r, now);
    const BankId b = next_refresh_bank_[r];
    dram::Bank& bank = rank.bank(b);
    const std::uint32_t sub = next_refresh_sub_[bank_slot(r, b)];
    const RowId row = bank.subarray_row(sub);

    bool attempt = false;
    if (bank.state() == dram::BankState::kActive) {
      // SARP waits for a precharged bank; HiRA additionally overlaps the
      // refresh with an open row in a *different* subarray.
      const bool conflict =
          !hira ||
          (bank.open_row() && bank.subarray_of(*bank.open_row()) == sub);
      if (conflict) {
        if (urgent && !issued) {
          // Budget exhausted: force the row closed so REFpb can go out.
          dram::Command pre{dram::CmdType::kPrecharge,
                            DramCoord{id_, r, b, 0, 0}, 0};
          if (channel_.can_issue(pre, now)) {
            channel_.issue(pre, now);
            issued = true;
          }
        }
        continue;  // postponed until the row closes (or urgency forces it)
      }
      attempt = true;
    } else if (bank.state() == dram::BankState::kPrecharged) {
      attempt = true;
    }
    if (!attempt || issued) continue;

    dram::Command refpb{dram::CmdType::kRefreshBank,
                        DramCoord{id_, r, b, row, 0}, 0};
    if (channel_.can_issue(refpb, now)) {
      channel_.issue(refpb, now);
      rm_.on_refresh_issued(r);
      h_.bank_refreshes->inc();
      record_subarray_refresh(r, b, sub, now);
      // Rotate subarrays within the bank, banks within the rank.
      next_refresh_sub_[bank_slot(r, b)] =
          (sub + 1) % std::max<std::uint32_t>(1, bank.subarrays());
      next_refresh_bank_[r] =
          static_cast<BankId>((b + 1) % rank.num_banks());
      issued = true;
    }
  }
  return issued;
}

void Controller::charge_refresh_blocking(std::uint64_t requests,
                                         Cycle cycles) {
  if (requests == 0 || cycles == 0) return;
  h_.refresh_blocked_cycles->inc(requests * cycles);
}

void Controller::issue_pick(const SchedulerPick& pick, Cycle now) {
  const Cycle done = channel_.issue(pick.cmd, now);
  if (!pick.services_request()) {
    // A row activation picked for a specific queued read stamps its `act`
    // time: only the request that triggered the ACT pays activation wait;
    // row-hitting followers see pure queue wait. PRE picks (conflict
    // closes) carry request context too but stamp nothing.
    if (pick.cmd.type == dram::CmdType::kActivate && pick.queue_id == 0) {
      Request& req = arena_[read_q_[pick.request_index]];
      if (req.act == kNeverCycle) req.act = now;
    }
    return;
  }

  std::vector<RequestIndex>* q = nullptr;
  switch (pick.queue_id) {
    case 0: q = &read_q_; break;
    case 1: q = &write_q_; break;
    case 2: q = &prefetch_q_; break;
    default: ROP_ASSERT(false);
  }
  const RequestIndex idx = (*q)[pick.request_index];
  q->erase(q->begin() + static_cast<std::ptrdiff_t>(pick.request_index));
  Request& req = arena_[idx];
  switch (pick.queue_id) {
    case 0: on_read_leaves_queue(req.coord.rank, idx, req); break;
    case 1:
      --pending_writes_[req.coord.rank];
      --writes_by_bank_count_[bank_slot(req.coord.rank, req.coord.bank)];
      write_index_.erase(req.line_addr);
      break;
    case 2: --queued_prefetches_[req.coord.rank]; break;
    default: break;
  }

  if (req.type != ReqType::kPrefetch && listener_ != nullptr) {
    listener_->on_demand_serviced(req, now);
  }

  if (req.type == ReqType::kWrite) {
    // Writes are posted: the data burst retires silently.
    h_.writes_issued->inc();
    arena_.release(idx);
    return;
  }
  req.issued = now;
  req.completion = done;
  in_flight_.push_back(idx);
  inflight_min_completion_ = std::min(inflight_min_completion_, done);
  if (req.type == ReqType::kPrefetch) {
    ++inflight_prefetches_[req.coord.rank];
    h_.prefetch_issued->inc();
  }
}

void Controller::tick(Cycle now) {
  step(now);
  // The audit hook runs after every exit path of the per-tick work, when
  // queue/counter/refresh state is stable for this cycle.
  if (auditor_ != nullptr) auditor_->on_tick_end(*this, now);
}

void Controller::step(Cycle now) {
  channel_.tick(now);
  complete_bursts(now);
  if (listener_ != nullptr) listener_->on_tick(now);

  // Write-drain hysteresis.
  if (write_q_.size() >= cfg_.sched.write_drain_high) draining_writes_ = true;
  if (write_q_.size() <= cfg_.sched.write_drain_low) draining_writes_ = false;

  if (cfg_.refresh_enabled) {
    bool refresh_cmd = false;
    if (cfg_.per_bank_refresh) {
      refresh_cmd = manage_refresh_per_bank(now);
    } else if (cfg_.policy == RefreshPolicy::kDarp) {
      refresh_cmd = manage_refresh_darp(now);
    } else if (policy_uses_subarrays(cfg_.policy)) {
      refresh_cmd = manage_refresh_subarray(now);
    } else if (cfg_.policy == RefreshPolicy::kPausing) {
      refresh_cmd = manage_refresh_pausing(now);
    } else {
      refresh_cmd = manage_refresh(now);
    }
    if (refresh_cmd) return;
  }

  // Urgent pausing refreshes must be allowed to close: new demand to the
  // rank keeps re-activating rows, which can hold off the forced-full REF
  // past the next boundary and blow the JEDEC postponement budget.
  std::uint32_t urgent_mask = 0;
  if (cfg_.refresh_enabled && cfg_.policy == RefreshPolicy::kPausing) {
    for (RankId r = 0; r < channel_.num_ranks(); ++r) {
      if (rm_.urgent(r, now)) urgent_mask |= 1u << r;
    }
  }

  const auto blocked = [this, urgent_mask](const Request& req, int queue_id) {
    const RankId r = req.coord.rank;
    if (channel_.rank(r).refreshing()) return true;
    if ((urgent_mask >> r) & 1u) return true;
    // Prefetch reads flow through the whole lock window.
    if (queue_id == 2) return false;
    // Demand is held only while the rank seals for the REF command
    // (baseline enters sealing immediately at due time).
    return phase_[r] == RefreshPhase::kSealing;
  };

  // Outside drain mode writes are only serviced when no read work exists at
  // all — opportunistic writes would otherwise pay bus-turnaround penalties
  // against latency-critical reads.
  std::array<QueueView, 3> views;
  std::size_t n_views = 0;
  if (draining_writes_) {
    views[n_views++] = QueueView{&arena_, &write_q_, 1};
    views[n_views++] = QueueView{&arena_, &read_q_, 0};
  } else {
    views[n_views++] = QueueView{&arena_, &read_q_, 0};
    if (read_q_.empty()) views[n_views++] = QueueView{&arena_, &write_q_, 1};
  }
  views[n_views++] = QueueView{&arena_, &prefetch_q_, 2};

  const std::span<const QueueView> view_span(views.data(), n_views);
  if (const auto pick = scheduler_.pick(view_span, channel_, now, blocked)) {
    issue_pick(*pick, now);
  }
}

std::vector<Request> Controller::drain_completed() {
  std::vector<Request> out;
  if (!completed_.empty()) {
    out.reserve(completed_.size());
    for (const RequestIndex idx : completed_) {
      out.push_back(arena_[idx]);
      arena_.release(idx);
    }
    completed_.clear();
  }
  if (auditor_ != nullptr) {
    for (const Request& req : out) auditor_->on_retired(req);
  }
  return out;
}

void Controller::complete_matching_reads(
    RankId rank,
    const std::function<std::optional<Cycle>(const Request&)>& probe) {
  // The per-rank index walks exactly the candidates (in age order, which
  // matches read-queue order for one rank) instead of rescanning the whole
  // read queue per probe.
  auto& by_rank = reads_by_rank_[rank];
  const dram::Rank& rk = channel_.rank(rank);
  std::size_t out = 0;
  for (const RequestIndex idx : by_rank) {
    Request& req = arena_[idx];
    const auto done = probe(req);
    if (!done) {
      by_rank[out++] = idx;
      continue;
    }
    const auto it = std::find(read_q_.begin(), read_q_.end(), idx);
    ROP_ASSERT(it != read_q_.end());
    read_q_.erase(it);
    --pending_reads_[rank];
    --reads_by_bank_count_[bank_slot(rank, req.coord.bank)];
    if (locked_at_[rank] != kNeverCycle && req.arrival <= locked_at_[rank]) {
      ROP_ASSERT(drain_pending_[rank] > 0);
      --drain_pending_[rank];
    }
    req.completion = *done;
    req.serviced_by = ServicedBy::kSramBuffer;
    h_.sram_serviced->inc();
    if (rk.refreshing() && rk.refresh_done() > *done) {
      h_.attr_rop_recovered->inc(rk.refresh_done() - *done);
    }
    record_read_latency(req);
    completed_.push_back(idx);
  }
  by_rank.resize(out);
}

void Controller::finalize(Cycle now) {
  if (listener_ != nullptr) listener_->on_finalize(now);
  channel_.settle_accounting(now);
  blocking_.finalize();
}

Cycle Controller::seal_ready_cycle(RankId r) const {
  // Mirrors issue_refresh_commands: while rows are open the next action is
  // one PRE per tick (the earliest legal one); once all banks are closed
  // (and any per-bank locks have released) the REF itself goes out.
  const dram::Rank& rank = channel_.rank(r);
  Cycle pre = kNeverCycle;
  bool any_active = false;
  for (BankId b = 0; b < rank.num_banks(); ++b) {
    if (rank.bank(b).state() != dram::BankState::kActive) continue;
    any_active = true;
    pre = std::min(pre,
                   channel_.earliest_issue(dram::Command{
                       dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                       0}));
  }
  if (any_active) return pre;
  return rank.earliest_refresh_ready();
}

Cycle Controller::refresh_event_cycle(RankId r, Cycle now) const {
  // Earliest cycle the refresh machinery for (non-refreshing) rank `r` can
  // act or change eligibility. Waiting states return the cycle the wait
  // can end *without any command landing first*; progress that comes from
  // commands (drains, prefetch fills) is covered by the scheduler scan and
  // in-flight completions, and every executed tick recomputes this.
  if (cfg_.per_bank_refresh) {
    if (rm_.owed(r, now) == 0) return rm_.next_owed_increase(r, now);
    const dram::Rank& rank = channel_.rank(r);
    const BankId b = next_refresh_bank_[r];
    const dram::Bank& bank = rank.bank(b);
    if (bank.state() == dram::BankState::kRefreshing) {
      // Cursor bank still locked: the machinery idles until it releases.
      return bank.next_activate();
    }
    const dram::CmdType type = bank.state() == dram::BankState::kActive
                                   ? dram::CmdType::kPrecharge
                                   : dram::CmdType::kRefreshBank;
    return channel_.earliest_issue(
        dram::Command{type, DramCoord{id_, r, b, 0, 0}, 0});
  }

  if (cfg_.policy == RefreshPolicy::kDarp) {
    if (rm_.owed(r, now) == 0) return rm_.next_owed_increase(r, now);
    const bool urgent = rm_.urgent(r, now);
    const BankId b = darp_pick_bank(r, urgent);
    const dram::Rank& rank = channel_.rank(r);
    if (b >= rank.num_banks()) {
      // Postponed: eligibility changes through commands (queues draining —
      // the scheduler scan covers those), a per-bank lock release (covered
      // by earliest_pb_release in next_event_cycle), or the urgency flip
      // at the next boundary.
      return rm_.next_owed_increase(r, now);
    }
    const dram::CmdType type = rank.bank(b).state() == dram::BankState::kActive
                                   ? dram::CmdType::kPrecharge
                                   : dram::CmdType::kRefreshBank;
    // The boundary crossing can flip urgency and change the pick, so it
    // bounds the wait even when the chosen command is further out.
    return std::min(channel_.earliest_issue(
                        dram::Command{type, DramCoord{id_, r, b, 0, 0}, 0}),
                    rm_.next_owed_increase(r, now));
  }

  if (policy_uses_subarrays(cfg_.policy)) {
    if (rm_.owed(r, now) == 0) return rm_.next_owed_increase(r, now);
    const dram::Rank& rank = channel_.rank(r);
    const BankId b = next_refresh_bank_[r];
    const dram::Bank& bank = rank.bank(b);
    const std::uint32_t sub = next_refresh_sub_[bank_slot(r, b)];
    const RowId row = bank.subarray_row(sub);
    if (bank.state() == dram::BankState::kActive) {
      const bool conflict =
          cfg_.policy != RefreshPolicy::kHira ||
          (bank.open_row() && bank.subarray_of(*bank.open_row()) == sub);
      if (conflict) {
        if (!rm_.urgent(r, now)) {
          // Postponed until the open row closes (a command) or urgency
          // flips at the next boundary.
          return rm_.next_owed_increase(r, now);
        }
        return std::min(
            channel_.earliest_issue(dram::Command{
                dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0}, 0}),
            rm_.next_owed_increase(r, now));
      }
    }
    return std::min(
        channel_.earliest_issue(dram::Command{dram::CmdType::kRefreshBank,
                                              DramCoord{id_, r, b, row, 0},
                                              0}),
        rm_.next_owed_increase(r, now));
  }

  if (cfg_.policy == RefreshPolicy::kPausing) {
    if (refresh_remaining_[r] == 0) {
      if (rm_.owed(r, now) == 0) return rm_.next_owed_increase(r, now);
      return now + 1;  // the obligation opens on the next tick
    }
    if (!rm_.urgent(r, now) && pending_demand(r) > 0) {
      // Paused: demand progress comes from the scan; urgency (which forces
      // the finish) can only flip at the next boundary crossing.
      return rm_.next_owed_increase(r, now);
    }
    // Resuming or forced: the next segment begins once the rank seals.
    return seal_ready_cycle(r);
  }

  if (phase_[r] == RefreshPhase::kIdle) {
    const std::uint32_t owed = rm_.owed(r, now);
    if (owed == 0) return rm_.next_owed_increase(r, now);
    if (cfg_.policy == RefreshPolicy::kElastic && !rm_.urgent(r, now)) {
      // Locks once the rank has been idle for the backlog-scaled
      // threshold. Arrivals reset the idle clock (and dirty-force a
      // tick); the threshold shrinks at the next boundary.
      const std::uint32_t budget = channel_.timings().max_postponed_refreshes;
      const std::uint32_t slack = owed >= budget ? 0 : budget - owed;
      const Cycle threshold = cfg_.elastic_base_idle * slack / budget;
      return std::min(std::max(last_arrival_[r] + threshold, now + 1),
                      rm_.next_owed_increase(r, now));
    }
    return now + 1;  // the lock engages on the next tick
  }

  const bool urgent = rm_.urgent(r, now);
  const Cycle bound_end = locked_at_[r] + cfg_.drain_bound;

  if (phase_[r] == RefreshPhase::kDraining) {
    if (!urgent && now < bound_end && drain_pending_[r] > 0) {
      // Reads drain through the scheduler (scan) or the SRAM buffer (tick
      // events); failing that, the bound or a budget flip forces the seal.
      return std::min(bound_end, rm_.next_owed_increase(r, now));
    }
    return now + 1;  // the seal transition happens on the next tick
  }

  // kSealing. ROP holds the REF while staged prefetches are still in the
  // queue or in the air (their progress is scan/in-flight events).
  if (cfg_.policy == RefreshPolicy::kRopDrain && !urgent &&
      now < bound_end && pending_prefetches(r) > 0) {
    return std::min(bound_end, rm_.next_owed_increase(r, now));
  }
  return seal_ready_cycle(r);
}

Cycle Controller::next_event_cycle(Cycle now) const {
  // Completed requests await drain on the very next tick.
  if (!completed_.empty()) return now + 1;

  const Cycle soonest = now + 1;
  Cycle next = kNeverCycle;
  const auto consider = [&next, soonest](Cycle c) {
    if (c != kNeverCycle) next = std::min(next, std::max(c, soonest));
  };

  // Data bursts in flight (cached min, rebuilt by complete_bursts).
  consider(inflight_min_completion_);
  if (next == soonest) return next;

  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    const dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) {
      // The thaw is observable (demand resumes, the ROP window closes,
      // pausing re-evaluates) and must land on its exact cycle.
      consider(rank.refresh_done());
      continue;  // the refresh machinery skips refreshing ranks
    }
    if (rank.pb_refreshing()) consider(rank.earliest_pb_release());
    if (cfg_.refresh_enabled) consider(refresh_event_cycle(r, now));
    if (next == soonest) return next;
  }

  if (read_q_.empty() && write_q_.empty() && prefetch_q_.empty()) {
    return next;
  }

  // Scheduler horizon: the earliest cycle any queued request could put a
  // command on the bus. Queue sizes are frozen until the next executed
  // tick (enqueues dirty-force one), so the next tick's write-drain
  // hysteresis and view order are pure functions of current state.
  bool drain_next = draining_writes_;
  if (write_q_.size() >= cfg_.sched.write_drain_high) drain_next = true;
  if (write_q_.size() <= cfg_.sched.write_drain_low) drain_next = false;

  std::uint32_t urgent_mask = 0;
  if (cfg_.refresh_enabled && cfg_.policy == RefreshPolicy::kPausing) {
    for (RankId r = 0; r < channel_.num_ranks(); ++r) {
      if (rm_.urgent(r, now)) urgent_mask |= 1u << r;
    }
  }
  const auto blocked = [this, urgent_mask](const Request& req, int queue_id) {
    const RankId r = req.coord.rank;
    if (channel_.rank(r).refreshing()) return true;
    if ((urgent_mask >> r) & 1u) return true;
    if (queue_id == 2) return false;
    return phase_[r] == RefreshPhase::kSealing;
  };

  std::array<QueueView, 3> views;
  std::size_t n_views = 0;
  if (drain_next) {
    views[n_views++] = QueueView{&arena_, &write_q_, 1};
    views[n_views++] = QueueView{&arena_, &read_q_, 0};
  } else {
    views[n_views++] = QueueView{&arena_, &read_q_, 0};
    if (read_q_.empty()) views[n_views++] = QueueView{&arena_, &write_q_, 1};
  }
  views[n_views++] = QueueView{&arena_, &prefetch_q_, 2};
  const std::span<const QueueView> view_span(views.data(), n_views);
  consider(scheduler_.earliest_issue_cycle(view_span, channel_, now, blocked));

  return next;
}

Cycle Controller::completion_lower_bound(Cycle pos) const {
  if (!completed_.empty()) return pos + 1;

  Cycle bound = kNeverCycle;
  const auto consider = [&bound](Cycle c) { bound = std::min(bound, c); };

  // In-flight data bursts: demand completions land exactly here; prefetch
  // fills can reentrantly service queued reads at the same cycle, so this
  // one cached minimum covers both (conservative-early when the earliest
  // burst is a prefetch with no matching read).
  consider(inflight_min_completion_);

  if (!read_q_.empty()) {
    // A queued read not yet in flight needs an issue (earliest pos + 1)
    // plus the CAS latency and burst before data lands.
    const auto& t = channel_.timings();
    consider(pos + 1 + t.CL + t.tBL);

    // A refresh issue can probe the SRAM buffer and service queued reads
    // via the ROP listener. With the rank idle and nothing owed, that
    // cannot happen before the next tREFI boundary.
    if (listener_ != nullptr && cfg_.refresh_enabled) {
      for (RankId r = 0; r < channel_.num_ranks(); ++r) {
        if (pending_reads_[r] == 0) continue;
        if (phase_[r] != RefreshPhase::kIdle || refresh_remaining_[r] > 0 ||
            rm_.owed(r, pos) > 0) {
          consider(pos + 1);
        } else {
          consider(rm_.next_owed_increase(r, pos));
        }
      }
    }
  }

  if (bound == kNeverCycle) return bound;
  return std::max(bound, pos + 1);
}

}  // namespace rop::mem
