#include "mem/controller.h"

#include <algorithm>
#include <array>

namespace rop::mem {

Controller::Controller(ChannelId id, const dram::DramTimings& timings,
                       const dram::DramOrganization& org, ControllerConfig cfg,
                       StatRegistry* stats)
    : id_(id),
      cfg_(cfg),
      channel_(timings, org),
      rm_(timings, org.ranks, cfg.per_bank_refresh ? org.banks : 1, stats),
      scheduler_(cfg.sched),
      blocking_(org.ranks, timings.tRFC),
      stats_(stats),
      pending_reads_(org.ranks, 0),
      pending_writes_(org.ranks, 0),
      queued_prefetches_(org.ranks, 0),
      inflight_prefetches_(org.ranks, 0),
      phase_(org.ranks, RefreshPhase::kIdle),
      locked_at_(org.ranks, kNeverCycle),
      last_arrival_(org.ranks, 0),
      refresh_remaining_(org.ranks, 0),
      refresh_started_(org.ranks, false),
      refresh_window_opened_(org.ranks, false),
      next_refresh_bank_(org.ranks, 0) {
  ROP_ASSERT(stats != nullptr);
  // Per-bank refresh replaces the whole-rank policies.
  ROP_ASSERT(!cfg.per_bank_refresh ||
             cfg.policy == RefreshPolicy::kAutoRefresh);
  h_.reads = stats->counter_handle("mem.reads");
  h_.writes = stats->counter_handle("mem.writes");
  h_.sram_serviced = stats->counter_handle("mem.sram_serviced");
  h_.read_forwarded = stats->counter_handle("mem.read_forwarded");
  h_.write_coalesced = stats->counter_handle("mem.write_coalesced");
  h_.writes_issued = stats->counter_handle("mem.writes_issued");
  h_.refreshes = stats->counter_handle("mem.refreshes");
  h_.bank_refreshes = stats->counter_handle("mem.bank_refreshes");
  h_.refresh_pauses = stats->counter_handle("mem.refresh_pauses");
  h_.prefetch_enqueued = stats->counter_handle("rop.prefetch_enqueued");
  h_.prefetch_issued = stats->counter_handle("rop.prefetch_issued");
  h_.prefetch_dropped = stats->counter_handle("rop.prefetch_dropped");
  h_.prefetch_dropped_queue_full =
      stats->counter_handle("rop.prefetch_dropped_queue_full");
  h_.prefetch_dropped_stale =
      stats->counter_handle("rop.prefetch_dropped_stale");
  h_.prefetch_completed = stats->counter_handle("rop.prefetch_completed");
  h_.read_latency = stats->scalar_handle("mem.read_latency");
  // 8-cycle buckets out to 1024 cycles (beyond 2x tRFC), overflow above.
  h_.read_latency_hist =
      stats->histogram_handle("mem.read_latency_hist", 8, 128);
}

void Controller::record_read_latency(Cycle latency) {
  h_.read_latency->record(static_cast<double>(latency));
  h_.read_latency_hist->record(latency);
}

bool Controller::can_accept(ReqType type) const {
  switch (type) {
    case ReqType::kRead:
      return read_q_.size() < cfg_.sched.read_queue_capacity;
    case ReqType::kWrite:
      return write_q_.size() < cfg_.sched.write_queue_capacity;
    case ReqType::kPrefetch:
      return prefetch_q_.size() < cfg_.sched.read_queue_capacity;
  }
  return false;
}

bool Controller::enqueue(Request req, Cycle now) {
  ROP_ASSERT(req.type != ReqType::kPrefetch);
  // Admission control comes first: a rejected request must leave stats,
  // arrival tracking, and listener/profiler state completely untouched —
  // the caller retries the same request next cycle and it would otherwise
  // be double-counted.
  if (!can_accept(req.type)) return false;
  req.arrival = now;
  last_arrival_[req.coord.rank] = now;

  if (req.type == ReqType::kRead) {
    h_.reads->inc();
    blocking_.on_read_arrival(req.coord.rank, now);
    // The ROP engine observes every demand arrival; it may service a read
    // from the SRAM buffer while the rank is frozen.
    if (listener_ != nullptr) {
      if (const auto done = listener_->on_enqueue(req, now)) {
        req.completion = *done;
        req.serviced_by = ServicedBy::kSramBuffer;
        h_.sram_serviced->inc();
        record_read_latency(*done - now);
        completed_.push_back(req);
        return true;
      }
    }
    // Read-after-write forwarding: coalescing keeps at most one queued
    // write per line, so set membership is exact.
    if (write_index_.count(req.line_addr) != 0) {
      req.completion = now + 1;
      req.serviced_by = ServicedBy::kWriteForward;
      h_.read_forwarded->inc();
      record_read_latency(1);
      completed_.push_back(req);
      return true;
    }
    read_q_.push_back(req);
    ++pending_reads_[req.coord.rank];
  } else {
    h_.writes->inc();
    // Writes never complete through the listener, but it must still see the
    // arrival to invalidate any buffered copy of the line.
    if (listener_ != nullptr) {
      const auto done = listener_->on_enqueue(req, now);
      ROP_ASSERT(!done);
    }
    // Coalesce repeated writes to the same line: the queued entry (and its
    // scheduler age) stands for the newest data.
    if (write_index_.count(req.line_addr) != 0) {
      h_.write_coalesced->inc();
      return true;
    }
    write_q_.push_back(req);
    write_index_.insert(req.line_addr);
    ++pending_writes_[req.coord.rank];
  }
  return true;
}

bool Controller::enqueue_prefetch(Request req, Cycle now) {
  ROP_ASSERT(req.type == ReqType::kPrefetch);
  if (prefetch_q_.size() >= cfg_.sched.read_queue_capacity) {
    h_.prefetch_dropped_queue_full->inc();
    return false;
  }
  req.arrival = now;
  h_.prefetch_enqueued->inc();
  prefetch_q_.push_back(req);
  ++queued_prefetches_[req.coord.rank];
  return true;
}

std::size_t Controller::pending_drain(RankId rank) const {
  // Only queued reads hold the refresh back: writes are posted (nobody
  // waits on them) and retire from the write queue whenever convenient.
  const Cycle lock = locked_at_.at(rank);
  const auto drains = [rank, lock](const Request& r) {
    return r.coord.rank == rank && r.arrival <= lock;
  };
  return static_cast<std::size_t>(
      std::count_if(read_q_.begin(), read_q_.end(), drains));
}

void Controller::drop_prefetches(RankId rank) {
  for (auto it = prefetch_q_.begin(); it != prefetch_q_.end();) {
    if (it->coord.rank == rank) {
      h_.prefetch_dropped->inc();
      --queued_prefetches_[rank];
      it = prefetch_q_.erase(it);
    } else {
      ++it;
    }
  }
}

void Controller::complete_bursts(Cycle now) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->completion > now) {
      ++it;
      continue;
    }
    Request req = *it;
    it = in_flight_.erase(it);
    if (req.type == ReqType::kPrefetch) {
      --inflight_prefetches_[req.coord.rank];
      // Drop fills whose line has a newer pending write — the buffer must
      // never hold data staler than the write queue.
      if (write_index_.count(req.line_addr) != 0) {
        h_.prefetch_dropped_stale->inc();
      } else {
        h_.prefetch_completed->inc();
        if (listener_ != nullptr) listener_->on_prefetch_filled(req, now);
      }
    } else {
      record_read_latency(req.completion - req.arrival);
      completed_.push_back(req);
    }
  }
}

bool Controller::issue_refresh_commands(RankId r, Cycle now) {
  dram::Rank& rank = channel_.rank(r);
  dram::Command ref{dram::CmdType::kRefresh, DramCoord{id_, r, 0, 0, 0}, 0};
  if (channel_.can_issue(ref, now)) {
    // Any prefetch that failed to issue before the seal is pointless now.
    drop_prefetches(r);
    channel_.issue(ref, now);
    rm_.on_refresh_issued(r);
    blocking_.on_refresh_start(r, now);
    h_.refreshes->inc();
    phase_[r] = RefreshPhase::kIdle;
    locked_at_[r] = kNeverCycle;
    if (listener_ != nullptr) {
      listener_->on_refresh_issued(r, now, rank.refresh_done());
    }
    return true;
  }
  // Close open banks so REF becomes legal.
  for (BankId b = 0; b < rank.num_banks(); ++b) {
    if (rank.bank(b).state() != dram::BankState::kActive) continue;
    dram::Command pre{dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                      0};
    if (channel_.can_issue(pre, now)) {
      channel_.issue(pre, now);
      return true;
    }
  }
  return false;
}

bool Controller::manage_refresh(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    const std::uint32_t owed = rm_.owed(r, now);
    if (owed == 0) continue;

    const bool urgent = rm_.urgent(r, now);

    if (phase_[r] == RefreshPhase::kIdle) {
      switch (cfg_.policy) {
        case RefreshPolicy::kAutoRefresh:
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kSealing;
          break;
        case RefreshPolicy::kElastic: {
          // Wait for a rank-idle window whose required length shrinks as
          // the postponement backlog grows; force at the JEDEC budget.
          if (!urgent) {
            const std::uint32_t budget =
                channel_.timings().max_postponed_refreshes;
            const std::uint32_t slack = owed >= budget ? 0 : budget - owed;
            const Cycle threshold =
                cfg_.elastic_base_idle * slack / budget;
            if (now - last_arrival_[r] < threshold) continue;
          }
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kSealing;
          break;
        }
        case RefreshPolicy::kRopDrain:
          locked_at_[r] = now;
          phase_[r] = RefreshPhase::kDraining;
          break;
        case RefreshPolicy::kPausing:
          ROP_ASSERT(false && "kPausing handled by manage_refresh_pausing");
          break;
      }
    }

    const bool within_bound = now < locked_at_[r] + cfg_.drain_bound;

    if (phase_[r] == RefreshPhase::kDraining) {
      if (!urgent && within_bound && pending_drain(r) > 0) {
        continue;  // drain still in progress; demand keeps flowing
      }
      // Drain complete: seal the rank. Demand freezes here, which makes
      // this the moment the ROP engine stages its prefetch round — the
      // prediction tables reflect the final pre-refresh stream position.
      phase_[r] = RefreshPhase::kSealing;
      if (listener_ != nullptr) listener_->on_rank_locked(r, now);
    }

    // While sealing, staged prefetches own the bus for this rank; REF goes
    // out once they land (or the budget runs out).
    if (cfg_.policy == RefreshPolicy::kRopDrain && !urgent && within_bound &&
        pending_prefetches(r) > 0) {
      continue;
    }
    if (urgent) drop_prefetches(r);

    if (issued) continue;  // command bus already used this cycle
    issued = issue_refresh_commands(r, now);
  }
  return issued;
}

bool Controller::manage_refresh_pausing(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;  // a segment is executing

    if (refresh_remaining_[r] == 0) {
      if (rm_.owed(r, now) == 0) continue;
      refresh_remaining_[r] = channel_.timings().tRFC;
      refresh_started_[r] = false;
      refresh_window_opened_[r] = false;
    }

    const bool urgent = rm_.urgent(r, now);
    // Pause: while demand is pending and the budget allows, the rank stays
    // available and the scheduler services requests between segments. Each
    // resume pays the re-lock overhead.
    if (!urgent && pending_demand(r) > 0) {
      if (refresh_started_[r]) {
        h_.refresh_pauses->inc();
        refresh_remaining_[r] += cfg_.pause_overhead;
        refresh_started_[r] = false;  // count one pause per gap
      }
      continue;
    }

    if (issued) continue;

    // All banks must be precharged before a segment may begin.
    dram::Command ref{dram::CmdType::kRefresh, DramCoord{id_, r, 0, 0, 0}, 0};
    if (!channel_.can_issue(ref, now)) {
      for (BankId b = 0; b < rank.num_banks(); ++b) {
        if (rank.bank(b).state() != dram::BankState::kActive) continue;
        dram::Command pre{dram::CmdType::kPrecharge,
                          DramCoord{id_, r, b, 0, 0}, 0};
        if (channel_.can_issue(pre, now)) {
          channel_.issue(pre, now);
          issued = true;
          break;
        }
      }
      continue;
    }

    const Cycle duration =
        urgent ? refresh_remaining_[r]
               : std::min<Cycle>(cfg_.pause_quantum, refresh_remaining_[r]);
    // Open the blocking window exactly once per refresh obligation. The
    // first-segment test must not be inferred from refresh_remaining_:
    // pause overhead grows it, so with pause_overhead >= pause_quantum it
    // can return to (or overshoot) tRFC mid-refresh and the sentinel
    // mis-counts window starts.
    if (!refresh_window_opened_[r]) {
      blocking_.on_refresh_start(r, now);
      refresh_window_opened_[r] = true;
    }
    channel_.begin_refresh_segment(r, now, duration);
    refresh_started_[r] = true;
    refresh_remaining_[r] -= duration;
    if (refresh_remaining_[r] == 0) {
      rm_.on_refresh_issued(r);
      h_.refreshes->inc();
      refresh_started_[r] = false;
    }
    issued = true;
  }
  return issued;
}

bool Controller::manage_refresh_per_bank(Cycle now) {
  bool issued = false;
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    dram::Rank& rank = channel_.rank(r);
    if (rank.refreshing()) continue;
    if (rm_.owed(r, now) == 0) continue;

    const BankId b = next_refresh_bank_[r];
    dram::Bank& bank = rank.bank(b);
    if (bank.state() == dram::BankState::kRefreshing) continue;
    if (issued) continue;

    if (bank.state() == dram::BankState::kActive) {
      dram::Command pre{dram::CmdType::kPrecharge, DramCoord{id_, r, b, 0, 0},
                        0};
      if (channel_.can_issue(pre, now)) {
        channel_.issue(pre, now);
        issued = true;
      }
      continue;
    }
    dram::Command refpb{dram::CmdType::kRefreshBank,
                        DramCoord{id_, r, b, 0, 0}, 0};
    if (channel_.can_issue(refpb, now)) {
      channel_.issue(refpb, now);
      rm_.on_refresh_issued(r);
      h_.bank_refreshes->inc();
      next_refresh_bank_[r] =
          static_cast<BankId>((b + 1) % rank.num_banks());
      issued = true;
    }
  }
  return issued;
}

void Controller::issue_pick(const SchedulerPick& pick, Cycle now) {
  const Cycle done = channel_.issue(pick.cmd, now);
  if (!pick.services_request()) return;

  std::deque<Request>* q = nullptr;
  switch (pick.queue_id) {
    case 0: q = &read_q_; break;
    case 1: q = &write_q_; break;
    case 2: q = &prefetch_q_; break;
    default: ROP_ASSERT(false);
  }
  Request req = (*q)[pick.request_index];
  q->erase(q->begin() + static_cast<std::ptrdiff_t>(pick.request_index));
  switch (pick.queue_id) {
    case 0: --pending_reads_[req.coord.rank]; break;
    case 1:
      --pending_writes_[req.coord.rank];
      write_index_.erase(req.line_addr);
      break;
    case 2: --queued_prefetches_[req.coord.rank]; break;
    default: break;
  }

  if (req.type != ReqType::kPrefetch && listener_ != nullptr) {
    listener_->on_demand_serviced(req, now);
  }

  if (req.type == ReqType::kWrite) {
    // Writes are posted: the data burst retires silently.
    h_.writes_issued->inc();
    return;
  }
  req.completion = done;
  in_flight_.push_back(req);
  if (req.type == ReqType::kPrefetch) {
    ++inflight_prefetches_[req.coord.rank];
    h_.prefetch_issued->inc();
  }
}

void Controller::tick(Cycle now) {
  step(now);
  // The audit hook runs after every exit path of the per-tick work, when
  // queue/counter/refresh state is stable for this cycle.
  if (auditor_ != nullptr) auditor_->on_tick_end(*this, now);
}

void Controller::step(Cycle now) {
  channel_.tick(now);
  complete_bursts(now);
  if (listener_ != nullptr) listener_->on_tick(now);

  // Write-drain hysteresis.
  if (write_q_.size() >= cfg_.sched.write_drain_high) draining_writes_ = true;
  if (write_q_.size() <= cfg_.sched.write_drain_low) draining_writes_ = false;

  if (cfg_.refresh_enabled) {
    bool refresh_cmd = false;
    if (cfg_.per_bank_refresh) {
      refresh_cmd = manage_refresh_per_bank(now);
    } else if (cfg_.policy == RefreshPolicy::kPausing) {
      refresh_cmd = manage_refresh_pausing(now);
    } else {
      refresh_cmd = manage_refresh(now);
    }
    if (refresh_cmd) return;
  }

  // Urgent pausing refreshes must be allowed to close: new demand to the
  // rank keeps re-activating rows, which can hold off the forced-full REF
  // past the next boundary and blow the JEDEC postponement budget.
  std::uint32_t urgent_mask = 0;
  if (cfg_.refresh_enabled && cfg_.policy == RefreshPolicy::kPausing) {
    for (RankId r = 0; r < channel_.num_ranks(); ++r) {
      if (rm_.urgent(r, now)) urgent_mask |= 1u << r;
    }
  }

  const auto blocked = [this, urgent_mask](const Request& req, int queue_id) {
    const RankId r = req.coord.rank;
    if (channel_.rank(r).refreshing()) return true;
    if ((urgent_mask >> r) & 1u) return true;
    // Prefetch reads flow through the whole lock window.
    if (queue_id == 2) return false;
    // Demand is held only while the rank seals for the REF command
    // (baseline enters sealing immediately at due time).
    return phase_[r] == RefreshPhase::kSealing;
  };

  // Outside drain mode writes are only serviced when no read work exists at
  // all — opportunistic writes would otherwise pay bus-turnaround penalties
  // against latency-critical reads.
  std::array<QueueView, 3> views;
  std::size_t n_views = 0;
  if (draining_writes_) {
    views[n_views++] = QueueView{&write_q_, 1};
    views[n_views++] = QueueView{&read_q_, 0};
  } else {
    views[n_views++] = QueueView{&read_q_, 0};
    if (read_q_.empty()) views[n_views++] = QueueView{&write_q_, 1};
  }
  views[n_views++] = QueueView{&prefetch_q_, 2};

  const std::span<const QueueView> view_span(views.data(), n_views);
  if (const auto pick = scheduler_.pick(view_span, channel_, now, blocked)) {
    issue_pick(*pick, now);
  }
}

std::vector<Request> Controller::drain_completed() {
  std::vector<Request> out;
  out.swap(completed_);
  if (auditor_ != nullptr) {
    for (const Request& req : out) auditor_->on_retired(req);
  }
  return out;
}

void Controller::complete_matching_reads(
    RankId rank,
    const std::function<std::optional<Cycle>(const Request&)>& probe) {
  for (auto it = read_q_.begin(); it != read_q_.end();) {
    if (it->coord.rank != rank) {
      ++it;
      continue;
    }
    const auto done = probe(*it);
    if (!done) {
      ++it;
      continue;
    }
    Request req = *it;
    it = read_q_.erase(it);
    --pending_reads_[req.coord.rank];
    req.completion = *done;
    req.serviced_by = ServicedBy::kSramBuffer;
    h_.sram_serviced->inc();
    record_read_latency(req.completion - req.arrival);
    completed_.push_back(req);
  }
}

void Controller::finalize(Cycle now) {
  channel_.settle_accounting(now);
  blocking_.finalize();
}

Cycle Controller::next_event_cycle(Cycle now) const {
  // Completed requests await drain on the very next tick.
  if (!completed_.empty()) return now + 1;

  const Cycle soonest = now + 1;
  Cycle next = kNeverCycle;
  const auto consider = [&next, soonest](Cycle c) {
    next = std::min(next, std::max(c, soonest));
  };

  for (const Request& r : in_flight_) consider(r.completion);

  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    // An active drain/seal makes progress (or re-evaluates) every tick.
    if (phase_[r] != RefreshPhase::kIdle) return soonest;
    if (channel_.rank(r).refreshing()) {
      consider(channel_.rank(r).refresh_done());
    }
  }

  if (cfg_.refresh_enabled) {
    for (RankId r = 0; r < channel_.num_ranks(); ++r) {
      // A paused refresh or an owed one may act on any tick (elastic waits
      // for an idle window, pausing for a demand gap) — stay conservative.
      if (cfg_.policy == RefreshPolicy::kPausing && refresh_remaining_[r] > 0) {
        return soonest;
      }
      if (rm_.owed(r, now) > 0) return soonest;
      consider(rm_.next_event_cycle(r, now));
    }
  }

  // Queued work for a rank that is not frozen can issue on any tick.
  for (RankId r = 0; r < channel_.num_ranks(); ++r) {
    if (channel_.rank(r).refreshing()) continue;
    if (pending_reads_[r] + pending_writes_[r] + queued_prefetches_[r] > 0) {
      return soonest;
    }
  }
  return next;
}

}  // namespace rop::mem
