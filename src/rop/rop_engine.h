// The ROP engine: Training -> Observing -> Prefetching state machine
// (paper §IV-C, last paragraph), one instance per memory channel.
//
//  * Training: the Pattern Profiler correlates B/A windows around each
//    refresh; after `training_refreshes` closed windows it freezes lambda
//    and beta. The SRAM buffer is off (no leakage charged).
//  * Observing: when a refresh comes due the controller locks the rank and
//    calls on_rank_locked; the engine decides — probabilistically gated by
//    lambda (B>0) or 1-beta (B=0) — whether to prefetch, and if so stages
//    up to `buffer_lines` prefetch reads produced by the prediction tables
//    (Eq. 3 split) from their *current* state, so the candidates track the
//    live stream position.
//  * Prefetching: transient while the staged prefetches execute; the REF
//    command follows once the drain and the fills complete (bounded by the
//    controller's drain window and the JEDEC postponement budget).
//
// While a rank is locked or frozen by REF, demand reads that hit the buffer
// complete at SRAM latency instead of blocking. If the phase hit rate drops
// below `hit_rate_threshold` the engine falls back to Training.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/controller.h"
#include "rop/pattern_profiler.h"
#include "rop/prefetcher.h"
#include "rop/sram_buffer.h"
#include "telemetry/trace_sink.h"

namespace rop::engine {

enum class RopState : std::uint8_t { kTraining, kObserving, kPrefetching };

enum class GatingMode : std::uint8_t {
  kProbabilistic,   // the paper's lambda/beta gating
  kAlwaysPrefetch,  // ablation: prefetch before every refresh
  kNeverPrefetch,   // ablation: never prefetch (isolates drain effects)
};

struct RopConfig {
  std::uint32_t buffer_lines = 64;        // SRAM capacity (paper default)
  std::uint32_t training_refreshes = 50;  // paper §V-A
  double hit_rate_threshold = 0.6;        // paper §V-A
  std::uint32_t window_multiple = 1;      // W = multiple x tREFI (paper §III-C)
  Cycle sram_latency = 1;                 // 3 CPU cycles ~ 1 controller cycle
  std::uint32_t eval_period_refreshes = 50;
  std::uint32_t eval_min_opportunities = 16;
  std::uint64_t seed = 0x20160816ULL;
  GatingMode gating = GatingMode::kProbabilistic;
  bool uniform_budget = false;  // ablation: even split instead of Eq. 3
  /// Adapt the prefetch count to the demand observed during
  /// recent freeze windows (1.5x EMA + margin, clamped to [min_prefetch,
  /// buffer_lines]) instead of always staging the full buffer (set false
  /// to follow the paper literally: Eq. 3 distributes the whole capacity).
  bool adaptive_count = true;
  std::uint32_t min_prefetch = 8;
  /// Ablation: prefetch distance in expected lines consumed while staging.
  /// The default 0 matches the seal-time staging design, where demand is
  /// frozen during staging and no overshoot is needed.
  double distance_scale = 0.0;
  /// Zero-budget banks that have been idle longer than this many cycles at
  /// staging time (they cannot receive requests during the freeze). 0
  /// disables the recency filter (ablation).
  Cycle bank_recency_horizon = 1536;
  /// Skip prefetch rounds while the data bus is effectively saturated
  /// (mean demand inter-arrival below this many burst times): staging then
  /// steals bus time 1:1 from demand and cannot win. ROP targets
  /// latency-bound phases. Set to 0 to disable the guard (ablation).
  double saturation_guard_bursts = 2.0;
};

class RopEngine final : public mem::ControllerListener {
 public:
  RopEngine(const RopConfig& cfg, mem::Controller& ctrl,
            const mem::AddressMap& map, StatRegistry* stats);

  // mem::ControllerListener
  std::optional<Cycle> on_enqueue(const mem::Request& req, Cycle now) override;
  void on_demand_serviced(const mem::Request& req, Cycle now) override;
  void on_rank_locked(RankId rank, Cycle now) override;
  void on_refresh_issued(RankId rank, Cycle start, Cycle done) override;
  void on_prefetch_filled(const mem::Request& req, Cycle now) override;
  void on_tick(Cycle now) override;
  void on_finalize(Cycle now) override;

  [[nodiscard]] RopState state() const { return state_; }
  /// The controller this engine is attached to (checker uses it to pair
  /// buffer contents with the owning channel's write queue).
  [[nodiscard]] const mem::Controller& controller() const { return ctrl_; }
  [[nodiscard]] double lambda() const { return profiler_.lambda(); }
  [[nodiscard]] double beta() const { return profiler_.beta(); }
  [[nodiscard]] const SramBuffer& buffer() const { return buffer_; }
  [[nodiscard]] const Prefetcher& prefetcher() const { return prefetcher_; }
  [[nodiscard]] const PatternProfiler& profiler() const { return profiler_; }

  /// Paper §V-B3 metric: buffer hits / demand reads arriving during
  /// refresh periods, over the whole run.
  [[nodiscard]] double overall_hit_rate() const {
    return overall_opportunities_
               ? static_cast<double>(overall_hits_) /
                     static_cast<double>(overall_opportunities_)
               : 0.0;
  }
  [[nodiscard]] std::uint64_t sram_on_cycles() const { return sram_on_cycles_; }

  /// Snapshot serialization: the full state machine — profiler, prediction
  /// tables, SRAM buffer, RNG, EMAs, and phase accounting. phase_unconsumed_
  /// is an unordered set with no canonical byte order, so it rides as a
  /// sorted vector and is rebuilt on restore.
  template <class Ar>
  void io(Ar& ar) {
    ar(profiler_, prefetcher_, buffer_, rng_, state_, last_access_,
       ema_interarrival_, ema_channel_interarrival_, last_channel_arrival_,
       ema_freeze_demand_, reads_this_freeze_, refreshes_since_eval_,
       phase_hits_, phase_opportunities_, phase_fills_, phase_consumed_,
       overall_hits_, overall_opportunities_, sram_on_cycles_, last_tick_);
    std::vector<Address> staged;
    if constexpr (!Ar::kIsReader) {
      staged.assign(phase_unconsumed_.begin(), phase_unconsumed_.end());
      std::sort(staged.begin(), staged.end());
    }
    ar(staged);
    if constexpr (Ar::kIsReader) {
      phase_unconsumed_.clear();
      phase_unconsumed_.insert(staged.begin(), staged.end());
    }
  }

 private:
  void evaluate_phase();
  [[nodiscard]] Cycle window() const { return window_; }
  /// Record an instant ROP trace event (fill/hit/serve) into the
  /// controller's sink; a detached sink costs one pointer compare.
  void trace_rop(telemetry::EventKind kind, RankId rank, Address line,
                 Cycle now);

  /// Hot-path stat handles, resolved once at construction (the registry
  /// guarantees pointer stability) — no string-keyed lookups per event.
  struct StatHandles {
    Counter* buffer_hits = nullptr;
    Counter* buffer_misses = nullptr;
    Counter* lock_window_served = nullptr;
    Counter* skipped_saturated = nullptr;
    Counter* decisions_skip = nullptr;
    Counter* decisions_prefetch = nullptr;
    Counter* rounds_empty = nullptr;
    Counter* retrain_events = nullptr;
    Counter* buffer_fills = nullptr;
    Scalar* lambda = nullptr;
    Scalar* beta = nullptr;
    Scalar* phase_accuracy = nullptr;
    Scalar* phase_hits_per_fill = nullptr;
  };

  RopConfig cfg_;
  mem::Controller& ctrl_;
  StatRegistry* stats_;
  StatHandles h_;

  Cycle window_;
  PatternProfiler profiler_;
  Prefetcher prefetcher_;
  SramBuffer buffer_;
  Rng rng_;

  RopState state_ = RopState::kTraining;
  std::vector<Cycle> last_access_;  // per-rank: last demand arrival
  /// Exponential averages driving the adaptive count / prefetch distance.
  std::vector<double> ema_interarrival_;    // per-rank demand inter-arrival
  double ema_channel_interarrival_ = 1e6;   // channel-wide (bus pressure)
  Cycle last_channel_arrival_ = kNeverCycle;
  std::vector<double> ema_freeze_demand_;   // reads per freeze (lock+refresh)
  std::vector<std::uint32_t> reads_this_freeze_;
  std::uint32_t refreshes_since_eval_ = 0;

  std::uint64_t phase_hits_ = 0;
  std::uint64_t phase_opportunities_ = 0;
  std::uint64_t phase_fills_ = 0;
  /// Fills served at least once since they landed. The accuracy metric
  /// divides this (not raw hits) by fills: repeat services of one staged
  /// line — or a line retained across rounds without a refill — must not
  /// push "accuracy" past 1.0, so each fill is consumable exactly once.
  std::uint64_t phase_consumed_ = 0;
  std::unordered_set<Address> phase_unconsumed_;  // staged, not yet served
  std::uint64_t overall_hits_ = 0;
  std::uint64_t overall_opportunities_ = 0;
  std::uint64_t sram_on_cycles_ = 0;
  Cycle last_tick_ = 0;
};

}  // namespace rop::engine
