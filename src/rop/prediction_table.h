// ROP prediction table (paper §IV-C, Fig. 6).
//
// A variation of the Variable Length Delta Prefetcher adapted to rank scope:
// one table per rank, one entry per bank. Each entry remembers the last
// accessed cache-line offset within the bank and three delta patterns —
// a single delta, a two-delta tuple and a three-delta tuple — each with a
// repetition frequency:
//
//   | BankID | LastAddr | Delta1 | f1 | Delta2 | f2 | Delta3 | f3 |
//
// On every access the new delta is compared against Delta1 (f1 increments on
// a match, otherwise Delta1 is replaced and f1 reset); every two accesses
// form a two-delta tuple compared against Delta2; every three accesses form
// a three-delta tuple compared against Delta3. When any frequency would
// overflow, all three are halved.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace rop::engine {

/// Signed line-offset delta between consecutive accesses in a bank.
using Delta = std::int64_t;

struct TableEntry {
  std::optional<std::uint64_t> last_addr;  // line offset within the bank
  Cycle last_access = kNeverCycle;         // when this bank was last touched

  Delta delta1 = 0;
  std::uint16_t f1 = 0;
  bool delta1_valid = false;

  std::array<Delta, 2> delta2{};
  std::uint16_t f2 = 0;
  bool delta2_valid = false;

  std::array<Delta, 3> delta3{};
  std::uint16_t f3 = 0;
  bool delta3_valid = false;

  /// Recent delta history used to form the 2- and 3-tuples.
  std::array<Delta, 3> recent{};
  std::uint8_t deltas_seen = 0;  // mod-6 counter for tuple boundaries

  [[nodiscard]] std::uint32_t weight() const {
    return static_cast<std::uint32_t>(f1) + f2 + f3;
  }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(last_addr, last_access, delta1, f1, delta1_valid, delta2, f2,
       delta2_valid, delta3, f3, delta3_valid, recent, deltas_seen);
  }
};

/// Per-bank prefetch budget and the generated candidate offsets.
struct BankPrediction {
  BankId bank = 0;
  std::uint32_t budget = 0;
  std::vector<std::uint64_t> offsets;  // line offsets within the bank
};

class PredictionTable {
 public:
  /// `num_banks` entries; `lines_per_bank` bounds generated offsets (they
  /// wrap modulo the bank size).
  PredictionTable(std::uint32_t num_banks, std::uint64_t lines_per_bank);

  /// Record an access to `bank` at line `offset` within the bank.
  void on_access(BankId bank, std::uint64_t offset, Cycle now = 0);

  [[nodiscard]] const TableEntry& entry(BankId bank) const {
    return entries_.at(bank);
  }
  [[nodiscard]] std::uint32_t num_banks() const {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Total pattern weight across banks (denominator of Eq. 3).
  [[nodiscard]] std::uint64_t total_weight() const;

  /// Split a buffer of `capacity` lines across banks proportionally to
  /// pattern weight (Eq. 3) and generate candidate offsets per bank by
  /// walking each delta pattern from LastAddr, proportionally to its
  /// frequency. `uniform` replaces Eq. 3 with an even split (ablation).
  /// `skip_per_bank` is the prefetch distance: each pattern walk first
  /// advances that many steps without emitting, so the candidates land
  /// where the stream will be once staging completes, not where it is now.
  /// When `recency_horizon` is non-zero, banks whose last access is older
  /// than `now - recency_horizon` get zero budget: a bank idle for longer
  /// than a staging+refresh freeze cannot receive requests during one, so
  /// spending buffer lines there only dilutes the hot banks.
  [[nodiscard]] std::vector<BankPrediction> predict(
      std::uint32_t capacity, bool uniform = false,
      std::uint32_t skip_per_bank = 0, Cycle now = 0,
      Cycle recency_horizon = 0) const;

  /// Halve every frequency (called once per refresh of the owning rank):
  /// Eq. 3's budget split then tracks the banks hot in the *recent*
  /// observational window instead of the whole history.
  void decay();

  void clear();

  /// Bank the last access went to, and the predicted next bank assuming
  /// the most recent inter-bank transition stride repeats (how a strided
  /// stream walks banks under page interleaving).
  [[nodiscard]] std::optional<BankId> last_bank() const { return last_bank_; }
  [[nodiscard]] std::optional<BankId> predicted_next_bank() const;

  /// Snapshot serialization: entries plus the inter-bank stride tracker.
  template <class Ar>
  void io(Ar& ar) {
    ar(entries_, last_bank_, transition_stride_);
  }

 private:
  void generate_offsets(const TableEntry& e, std::uint32_t budget,
                        std::uint32_t skip,
                        std::vector<std::uint64_t>& out) const;

  std::vector<TableEntry> entries_;
  std::uint64_t lines_per_bank_;
  std::optional<BankId> last_bank_;
  std::optional<std::uint32_t> transition_stride_;  // mod num_banks
};

}  // namespace rop::engine
