#include "rop/prefetcher.h"

namespace rop::engine {

Prefetcher::Prefetcher(const mem::AddressMap& map, ChannelId channel,
                       std::uint32_t num_ranks, bool uniform_budget,
                       StatRegistry* stats)
    : map_(map), channel_(channel), uniform_budget_(uniform_budget) {
  if (stats != nullptr) {
    generated_ = stats->counter_handle("rop.prefetch_generated");
  }
  const auto& org = map.organization();
  tables_.reserve(num_ranks);
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    tables_.emplace_back(org.banks, org.lines_per_bank());
  }
}

void Prefetcher::on_access(const DramCoord& coord, Cycle now) {
  if (coord.channel != channel_) return;
  tables_.at(coord.rank).on_access(coord.bank, map_.line_offset_in_bank(coord),
                                   now);
}

std::vector<mem::Request> Prefetcher::make_prefetches(
    RankId rank, std::uint32_t capacity, std::uint32_t skip_per_bank,
    Cycle now, Cycle recency_horizon) const {
  std::vector<mem::Request> out;
  const auto predictions = tables_.at(rank).predict(
      capacity, uniform_budget_, skip_per_bank, now, recency_horizon);
  for (const BankPrediction& bp : predictions) {
    for (const std::uint64_t offset : bp.offsets) {
      mem::Request req;
      req.type = mem::ReqType::kPrefetch;
      req.coord = map_.coord_from_bank_offset(channel_, rank, bp.bank, offset);
      req.line_addr = map_.unmap(req.coord);
      out.push_back(req);
      if (out.size() >= capacity) break;
    }
    if (out.size() >= capacity) break;
  }
  if (generated_ != nullptr) generated_->inc(out.size());
  return out;
}

}  // namespace rop::engine
