#include "rop/pattern_profiler.h"

namespace rop::engine {

WindowCorrelator::WindowCorrelator(Cycle window, std::uint32_t num_ranks)
    : window_(window), arrivals_(num_ranks), open_(num_ranks) {
  ROP_ASSERT(window > 0);
  ROP_ASSERT(num_ranks > 0);
}

void WindowCorrelator::close(const OpenWindow& w) {
  const std::size_t idx = (w.b > 0 ? 0 : 2) + (w.a > 0 ? 0 : 1);
  ++counts_.counts[idx];
}

void WindowCorrelator::advance(Cycle now) {
  for (auto& q : open_) {
    while (!q.empty() && now >= q.front().refresh_start + window_) {
      close(q.front());
      q.pop_front();
    }
  }
}

void WindowCorrelator::on_request(RankId rank, Cycle now, bool is_read) {
  advance(now);
  auto& hist = arrivals_.at(rank);
  hist.push_back(now);
  // Retain only what a future B-window can still see.
  while (!hist.empty() && hist.front() + window_ <= now) hist.pop_front();
  if (is_read) {
    for (OpenWindow& w : open_.at(rank)) {
      if (now >= w.refresh_start && now < w.refresh_start + window_) ++w.a;
    }
  }
}

void WindowCorrelator::on_refresh(RankId rank, Cycle now) {
  advance(now);
  const auto& hist = arrivals_.at(rank);
  std::uint64_t b = 0;
  for (auto it = hist.rbegin(); it != hist.rend(); ++it) {
    if (*it + window_ <= now) break;
    if (*it < now) ++b;
  }
  open_.at(rank).push_back(OpenWindow{now, b});
}

void WindowCorrelator::finalize() {
  for (auto& q : open_) {
    while (!q.empty()) {
      close(q.front());
      q.pop_front();
    }
  }
}

void WindowCorrelator::reset() {
  for (auto& q : open_) q.clear();
  for (auto& h : arrivals_) h.clear();
  counts_ = CategoryCounts{};
}

PatternProfiler::PatternProfiler(Cycle window, std::uint32_t num_ranks,
                                 std::uint32_t training_refreshes)
    : correlator_(window, num_ranks), training_refreshes_(training_refreshes) {
  ROP_ASSERT(training_refreshes > 0);
}

bool PatternProfiler::on_refresh(RankId rank, Cycle now) {
  if (trained_) return false;
  correlator_.on_refresh(rank, now);
  ++seen_;
  // Training completes once enough refreshes have been observed *and*
  // their A-windows have closed (counts only include closed windows).
  if (seen_ > training_refreshes_ &&
      correlator_.counts().total() >= training_refreshes_) {
    lambda_ = correlator_.counts().lambda();
    beta_ = correlator_.counts().beta();
    trained_ = true;
    return true;
  }
  return false;
}

void PatternProfiler::restart() {
  correlator_.reset();
  seen_ = 0;
  trained_ = false;
  lambda_ = 1.0;
  beta_ = 1.0;
}

}  // namespace rop::engine
