// Fully-associative SRAM prefetch buffer in the memory controller
// (paper §IV-A). Sized in cache lines (16/32/64/128 in the evaluation).
//
// Ranks take turns using the buffer: a prefetch round clears it and tags it
// with the owning rank. Lines are looked up by full line address; writes to
// a buffered line invalidate it (the buffer must never return data staler
// than the write queue). The buffer also keeps the access/energy counters
// the SRAM power model consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rop::engine {

struct SramBufferStats {
  std::uint64_t fills = 0;        // prefetch lines written
  std::uint64_t lookups = 0;      // probe operations while active
  std::uint64_t hits = 0;         // successful probes
  std::uint64_t invalidations = 0;
  std::uint64_t rounds = 0;       // prefetch rounds (clears + re-own)
};

class SramBuffer {
 public:
  explicit SramBuffer(std::uint32_t capacity_lines);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::optional<RankId> owner() const { return owner_; }

  /// Start a prefetch round for `rank`: drop previous contents, re-own.
  void begin_round(RankId rank);

  /// Insert a prefetched line (LRU-evicts when full). Returns false when
  /// the line was already present.
  bool insert(Address line_addr);

  /// Probe for a line; counts a lookup and (on success) a hit.
  [[nodiscard]] bool lookup(Address line_addr);

  /// Probe without disturbing statistics (used by tests/debug).
  [[nodiscard]] bool contains(Address line_addr) const {
    return map_.find(line_addr) != map_.end();
  }

  /// All buffered line addresses in LRU order (front = least recent).
  /// Read-only view for the invariant checker's coherence sweep.
  [[nodiscard]] const std::vector<Address>& lines() const { return lru_; }

  /// Drop a line if present (write coherence).
  void invalidate(Address line_addr);

  void clear();

  [[nodiscard]] const SramBufferStats& stats() const { return stats_; }

  /// Snapshot serialization: owner, LRU order, and counters. The lookup
  /// map is a derived view of the LRU vector (values are always `true`)
  /// and is rebuilt on restore.
  template <class Ar>
  void io(Ar& ar) {
    ar(owner_, lru_, stats_.fills, stats_.lookups, stats_.hits,
       stats_.invalidations, stats_.rounds);
    if constexpr (Ar::kIsReader) {
      map_.clear();
      for (const Address line : lru_) map_.emplace(line, true);
    }
  }

 private:
  void touch(Address line_addr);

  std::uint32_t capacity_;
  std::optional<RankId> owner_;
  // LRU order: front = least recently used. For <=128 lines a vector scan
  // is faster than any pointer-chasing structure, but the map keeps lookup
  // O(1) for the hot probe path.
  std::vector<Address> lru_;
  std::unordered_map<Address, bool> map_;
  SramBufferStats stats_;
};

}  // namespace rop::engine
