// Pattern Profiler (paper §IV-B) and the underlying window correlator.
//
// For each refresh at time T the correlator computes
//   B = number of demand requests (reads + writes) in [T - W, T)
//   A = number of demand reads in [T, T + W)
// and classifies the refresh into one of four categories:
//   (1) B>0 && A>0   (2) B>0 && A=0   (3) B=0 && A>0   (4) B=0 && A=0
// from which the two conditional probabilities of Eqs. 1–2 follow:
//   lambda = P{A>0 | B>0},  beta = P{A=0 | B=0}.
//
// The same machinery serves both the online ROP training phase (W = 1x
// tREFI) and the offline-style analyses behind Fig. 4 and Table I (W = 1x,
// 2x, 4x tREFI).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace rop::engine {

/// Aggregated refresh-category counts for one window length.
struct CategoryCounts {
  // Indexed as [B>0][A>0] flattened: 0: B>0,A>0  1: B>0,A=0
  //                                  2: B=0,A>0  3: B=0,A=0
  std::array<std::uint64_t, 4> counts{};

  [[nodiscard]] std::uint64_t total() const {
    return counts[0] + counts[1] + counts[2] + counts[3];
  }
  /// lambda = P{A>0 | B>0}; returns `fallback` when B>0 never occurred.
  [[nodiscard]] double lambda(double fallback = 1.0) const {
    const std::uint64_t denom = counts[0] + counts[1];
    return denom ? static_cast<double>(counts[0]) / static_cast<double>(denom)
                 : fallback;
  }
  /// beta = P{A=0 | B=0}; returns `fallback` when B=0 never occurred.
  [[nodiscard]] double beta(double fallback = 1.0) const {
    const std::uint64_t denom = counts[2] + counts[3];
    return denom ? static_cast<double>(counts[3]) / static_cast<double>(denom)
                 : fallback;
  }
  /// Fraction of refreshes in event E1 (B>0 && A>0).
  [[nodiscard]] double e1_fraction() const {
    const std::uint64_t t = total();
    return t ? static_cast<double>(counts[0]) / static_cast<double>(t) : 0.0;
  }
  /// Fraction of refreshes in event E2 (B=0 && A=0).
  [[nodiscard]] double e2_fraction() const {
    const std::uint64_t t = total();
    return t ? static_cast<double>(counts[3]) / static_cast<double>(t) : 0.0;
  }
};

class WindowCorrelator {
 public:
  /// `window` is W in controller cycles; `num_ranks` sizes internal state.
  WindowCorrelator(Cycle window, std::uint32_t num_ranks);

  /// Record a demand request to `rank` at `now` (reads and writes feed the
  /// B-windows; only reads feed the A-windows).
  void on_request(RankId rank, Cycle now, bool is_read);

  /// Record a refresh start on `rank`. B is evaluated immediately against
  /// the retained arrival history; the A-window stays open for W cycles.
  void on_refresh(RankId rank, Cycle now);

  /// Close every A-window that ends at or before `now`.
  void advance(Cycle now);

  /// Close all windows unconditionally (end of run / end of training).
  void finalize();

  [[nodiscard]] const CategoryCounts& counts() const { return counts_; }
  [[nodiscard]] Cycle window() const { return window_; }

  void reset();

  /// Snapshot serialization: arrival history, open A-windows, and counts.
  template <class Ar>
  void io(Ar& ar) {
    ar(arrivals_, open_, counts_.counts);
  }

 private:
  struct OpenWindow {
    Cycle refresh_start = 0;
    std::uint64_t b = 0;
    std::uint64_t a = 0;

    template <class Ar>
    void io(Ar& ar) {
      ar(refresh_start, b, a);
    }
  };

  void close(const OpenWindow& w);

  Cycle window_;
  std::vector<std::deque<Cycle>> arrivals_;   // per-rank B-window history
  std::vector<std::deque<OpenWindow>> open_;  // per-rank open A-windows
  CategoryCounts counts_;
};

/// The paper's Pattern Profiler: trains a WindowCorrelator over a fixed
/// number of refreshes and then freezes lambda/beta.
class PatternProfiler {
 public:
  PatternProfiler(Cycle window, std::uint32_t num_ranks,
                  std::uint32_t training_refreshes);

  void on_request(RankId rank, Cycle now, bool is_read) {
    if (!trained_) correlator_.on_request(rank, now, is_read);
  }

  /// Returns true when this refresh completed the training period (the
  /// caller transitions the engine to the Observing state).
  bool on_refresh(RankId rank, Cycle now);

  void advance(Cycle now) {
    if (!trained_) correlator_.advance(now);
  }

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] const CategoryCounts& counts() const {
    return correlator_.counts();
  }

  /// Restart a fresh training phase (hit rate fell below threshold).
  void restart();

  /// Snapshot serialization: the correlator plus the training progress and
  /// the frozen lambda/beta.
  template <class Ar>
  void io(Ar& ar) {
    ar(correlator_, seen_, trained_, lambda_, beta_);
  }

 private:
  WindowCorrelator correlator_;
  std::uint32_t training_refreshes_;
  std::uint32_t seen_ = 0;
  bool trained_ = false;
  double lambda_ = 1.0;
  double beta_ = 1.0;
};

}  // namespace rop::engine
