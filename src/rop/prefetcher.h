// ROP Prefetcher (paper §IV-C/D): owns the per-rank prediction tables and
// turns their predictions into prefetch requests addressed at real DRAM
// coordinates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/address_map.h"
#include "mem/request.h"
#include "rop/prediction_table.h"

namespace rop::engine {

class Prefetcher {
 public:
  /// `uniform_budget` replaces the Eq. 3 proportional split with an even
  /// one (ablation knob). When a registry is supplied the candidate count
  /// is published as "rop.prefetch_generated" (handle resolved here, once).
  Prefetcher(const mem::AddressMap& map, ChannelId channel,
             std::uint32_t num_ranks, bool uniform_budget = false,
             StatRegistry* stats = nullptr);

  /// Observe a demand access (updates the target rank's prediction table).
  void on_access(const DramCoord& coord, Cycle now);

  /// Build up to `capacity` prefetch requests for `rank` from the current
  /// prediction table contents. `skip_per_bank` is the prefetch distance in
  /// pattern steps (see PredictionTable::predict).
  [[nodiscard]] std::vector<mem::Request> make_prefetches(
      RankId rank, std::uint32_t capacity, std::uint32_t skip_per_bank = 0,
      Cycle now = 0, Cycle recency_horizon = 0) const;

  [[nodiscard]] const PredictionTable& table(RankId rank) const {
    return tables_.at(rank);
  }
  [[nodiscard]] PredictionTable& table(RankId rank) { return tables_.at(rank); }

  void clear() {
    for (auto& t : tables_) t.clear();
  }

  /// Snapshot serialization: only the prediction tables are mutable, and
  /// they serialize in place (not default-constructible; the per-rank
  /// count is fixed by config).
  template <class Ar>
  void io(Ar& ar) {
    for (PredictionTable& t : tables_) ar.field(t);
  }

 private:
  const mem::AddressMap& map_;
  ChannelId channel_;
  bool uniform_budget_;
  Counter* generated_ = nullptr;  // optional, resolved at construction
  std::vector<PredictionTable> tables_;
};

}  // namespace rop::engine
