#include "rop/rop_engine.h"

#include <algorithm>

namespace rop::engine {

RopEngine::RopEngine(const RopConfig& cfg, mem::Controller& ctrl,
                     const mem::AddressMap& map, StatRegistry* stats)
    : cfg_(cfg),
      ctrl_(ctrl),
      stats_(stats),
      window_(static_cast<Cycle>(cfg.window_multiple) *
              ctrl.channel().timings().tREFI),
      profiler_(window_, ctrl.channel().num_ranks(), cfg.training_refreshes),
      prefetcher_(map, ctrl.id(), ctrl.channel().num_ranks(),
                  cfg.uniform_budget, stats),
      buffer_(cfg.buffer_lines),
      rng_(cfg.seed),
      last_access_(ctrl.channel().num_ranks(), kNeverCycle),
      ema_interarrival_(ctrl.channel().num_ranks(), 1e6),
      ema_freeze_demand_(ctrl.channel().num_ranks(), 0.0),
      reads_this_freeze_(ctrl.channel().num_ranks(), 0) {
  ROP_ASSERT(stats != nullptr);
  ROP_ASSERT(cfg.window_multiple >= 1);
  h_.buffer_hits = stats->counter_handle("rop.buffer_hits");
  h_.buffer_misses = stats->counter_handle("rop.buffer_misses");
  h_.lock_window_served = stats->counter_handle("rop.lock_window_served");
  h_.skipped_saturated = stats->counter_handle("rop.skipped_saturated");
  h_.decisions_skip = stats->counter_handle("rop.decisions_skip");
  h_.decisions_prefetch = stats->counter_handle("rop.decisions_prefetch");
  h_.rounds_empty = stats->counter_handle("rop.rounds_empty");
  h_.retrain_events = stats->counter_handle("rop.retrain_events");
  h_.buffer_fills = stats->counter_handle("rop.buffer_fills");
  h_.lambda = stats->scalar_handle("rop.lambda");
  h_.beta = stats->scalar_handle("rop.beta");
  h_.phase_accuracy = stats->scalar_handle("rop.phase_accuracy");
  h_.phase_hits_per_fill = stats->scalar_handle("rop.phase_hits_per_fill");
  ctrl_.set_listener(this);
}

std::optional<Cycle> RopEngine::on_enqueue(const mem::Request& req,
                                           Cycle now) {
  const RankId rank = req.coord.rank;
  const bool is_read = req.type == mem::ReqType::kRead;

  profiler_.on_request(rank, now, is_read);
  if (last_access_.at(rank) != kNeverCycle && now > last_access_[rank]) {
    const auto dt = static_cast<double>(now - last_access_[rank]);
    ema_interarrival_[rank] = 0.875 * ema_interarrival_[rank] + 0.125 * dt;
  }
  last_access_.at(rank) = now;
  if (last_channel_arrival_ != kNeverCycle && now > last_channel_arrival_) {
    const auto dt = static_cast<double>(now - last_channel_arrival_);
    ema_channel_interarrival_ =
        0.875 * ema_channel_interarrival_ + 0.125 * dt;
  }
  last_channel_arrival_ = now;

  if (!is_read) {
    // Coherence: a newer write supersedes any buffered copy.
    buffer_.invalidate(req.line_addr);
    return std::nullopt;
  }

  if (ctrl_.rank_unavailable(rank)) {
    // Paper §V-B3 hit rate counts reads arriving during the refresh period
    // proper; services inside the pre-refresh lock window are tracked as a
    // separate counter.
    const bool in_refresh = ctrl_.rank_refreshing(rank);
    ++reads_this_freeze_[rank];
    // The retrain decision tracks the whole freeze window (seal+refresh);
    // the reported Fig. 9 hit rate keeps the paper's refresh-only scope.
    ++phase_opportunities_;
    if (in_refresh) ++overall_opportunities_;
    if (state_ != RopState::kTraining && buffer_.owner() == rank &&
        buffer_.lookup(req.line_addr)) {
      ++phase_hits_;
      if (phase_unconsumed_.erase(req.line_addr) > 0) ++phase_consumed_;
      if (in_refresh) {
        ++overall_hits_;
        h_.buffer_hits->inc();
        trace_rop(telemetry::EventKind::kBufferHit, rank, req.line_addr, now);
      } else {
        h_.lock_window_served->inc();
        trace_rop(telemetry::EventKind::kLockServed, rank, req.line_addr,
                  now);
      }
      return now + cfg_.sram_latency;
    }
    if (in_refresh) h_.buffer_misses->inc();
  }
  return std::nullopt;
}

void RopEngine::on_demand_serviced(const mem::Request& req, Cycle now) {
  // Learn only from the read stream: demand reads and write-allocate fills
  // follow the program's access order, while writebacks are LLC evictions
  // that lag it and would pollute the delta patterns.
  if (req.type == mem::ReqType::kRead) prefetcher_.on_access(req.coord, now);
}

void RopEngine::on_rank_locked(RankId rank, Cycle now) {
  // Fold the demand observed during the previous freeze window into the
  // per-rank EMA that sizes the next prefetch round.
  ema_freeze_demand_[rank] =
      0.75 * ema_freeze_demand_[rank] +
      0.25 * static_cast<double>(reads_this_freeze_[rank]);
  reads_this_freeze_[rank] = 0;

  if (state_ == RopState::kTraining) return;

  // Saturation guard: when demand already saturates the shared data bus,
  // every staged line delays a demand line by the same amount and the
  // refresh shadow cannot be hidden, only moved. The *channel-wide*
  // arrival rate is what matters — with rank partitioning each rank's own
  // stream may look sparse while four of them fill the bus.
  if (cfg_.saturation_guard_bursts > 0.0 &&
      ema_channel_interarrival_ <
          cfg_.saturation_guard_bursts *
              static_cast<double>(ctrl_.channel().timings().tBL)) {
    h_.skipped_saturated->inc();
    return;
  }

  // B>0 iff a demand request hit this rank inside the observational window
  // ending at the lock (the refresh boundary).
  const bool b_positive = last_access_.at(rank) != kNeverCycle &&
                          last_access_.at(rank) + window_ > now;

  bool prefetch = false;
  switch (cfg_.gating) {
    case GatingMode::kProbabilistic:
      // B>0: prefetch with confidence lambda. B=0: skip with confidence
      // beta, i.e. prefetch with probability 1-beta (paper §IV-C).
      prefetch = b_positive ? rng_.next_bool(profiler_.lambda())
                            : rng_.next_bool(1.0 - profiler_.beta());
      break;
    case GatingMode::kAlwaysPrefetch:
      prefetch = true;
      break;
    case GatingMode::kNeverPrefetch:
      prefetch = false;
      break;
  }

  if (!prefetch) {
    h_.decisions_skip->inc();
    return;
  }
  h_.decisions_prefetch->inc();

  // Size the round to the demand actually seen during refresh windows —
  // blindly staging the whole buffer wastes bus bandwidth on quiet ranks.
  std::uint32_t count = cfg_.buffer_lines;
  if (cfg_.adaptive_count) {
    const double want = 1.5 * ema_freeze_demand_[rank] + 8.0;
    count = std::clamp<std::uint32_t>(static_cast<std::uint32_t>(want),
                                      cfg_.min_prefetch, cfg_.buffer_lines);
  }

  // Prefetch distance: while the round is staging (roughly tBL cycles of
  // bus time per line plus slack), the demand stream keeps consuming
  // lines; start the pattern walks where the stream will be at REF time.
  std::uint32_t skip_per_bank = 0;
  if (cfg_.distance_scale > 0.0) {
    const double staging_cycles =
        static_cast<double>(ctrl_.channel().timings().tBL) * count + 64.0;
    const double consumed =
        cfg_.distance_scale * staging_cycles / ema_interarrival_[rank];
    skip_per_bank = static_cast<std::uint32_t>(
        consumed / prefetcher_.table(rank).num_banks());
  }

  // Active-bank horizon: banks touched within the last ~8 demand
  // inter-arrivals are where the freeze-window demand will land.
  const Cycle horizon = std::clamp<Cycle>(
      static_cast<Cycle>(8.0 * ema_interarrival_[rank]), 32,
      cfg_.bank_recency_horizon);

  buffer_.begin_round(rank);
  auto requests = prefetcher_.make_prefetches(
      rank, count, skip_per_bank, now,
      cfg_.bank_recency_horizon == 0 ? 0 : horizon);
  if (requests.empty()) {
    h_.rounds_empty->inc();
    return;
  }
  for (mem::Request& req : requests) {
    ctrl_.enqueue_prefetch(req, now);
  }
  state_ = RopState::kPrefetching;
}

void RopEngine::on_tick(Cycle now) {
  profiler_.advance(now);
  if (state_ != RopState::kTraining && now > last_tick_) {
    // The buffer is powered only outside Training (leakage accounting).
    sram_on_cycles_ += now - last_tick_;
  }
  last_tick_ = now;
}

void RopEngine::on_finalize(Cycle now) {
  // Settle the delta accounting at the end-of-run cycle. Under the
  // event-driven clock the last executed tick may land well before `now`;
  // both loops call finalize with the same cycle, so the accumulated
  // SRAM-on time and profiler windows end up bit-identical.
  on_tick(now);
}

void RopEngine::on_refresh_issued(RankId rank, Cycle start, Cycle /*done*/) {
  // Age the pattern frequencies so the next Eq. 3 split favours the banks
  // that were hot during this window.
  prefetcher_.table(rank).decay();
  const bool training_complete = profiler_.on_refresh(rank, start);
  if (training_complete) {
    state_ = RopState::kObserving;
    h_.lambda->record(profiler_.lambda());
    h_.beta->record(profiler_.beta());
    // Opportunities seen while the buffer was off must not poison the
    // first hit-rate evaluation of the new predicting phase.
    phase_hits_ = 0;
    phase_opportunities_ = 0;
    phase_fills_ = 0;
    phase_consumed_ = 0;
    phase_unconsumed_.clear();
    refreshes_since_eval_ = 0;
  }

  if (state_ == RopState::kPrefetching) state_ = RopState::kObserving;

  if (state_ != RopState::kTraining && buffer_.owner() == rank &&
      buffer_.size() > 0) {
    // Reads that arrived during the lock window (and missed because their
    // fill had not landed yet) are still queued; serve the ones the buffer
    // now holds instead of letting them stall for tRFC. These are lock-
    // window services, outside the paper's refresh-period hit-rate metric.
    ctrl_.complete_matching_reads(
        rank,
        [this, start, rank](const mem::Request& req) -> std::optional<Cycle> {
          if (buffer_.lookup(req.line_addr)) {
            ++phase_hits_;
            if (phase_unconsumed_.erase(req.line_addr) > 0) {
              ++phase_consumed_;
            }
            h_.lock_window_served->inc();
            trace_rop(telemetry::EventKind::kLockServed, rank, req.line_addr,
                      start);
            return start + cfg_.sram_latency;
          }
          return std::nullopt;
        });
  }

  if (state_ != RopState::kTraining &&
      ++refreshes_since_eval_ >= cfg_.eval_period_refreshes) {
    evaluate_phase();
  }
}

void RopEngine::evaluate_phase() {
  refreshes_since_eval_ = 0;
  // Retrain on prefetch *accuracy* (staged lines that were consumed), not
  // raw coverage: when freeze-window demand exceeds the buffer capacity,
  // coverage is capacity-limited even though every prediction was right,
  // and falling back to Training would only forfeit the lines we do serve.
  // Accuracy counts each staged line at most once per fill: a hot line
  // served many times (or retained in the buffer across rounds without a
  // refill) must not mask rounds full of unconsumed fills, so consumed is
  // bounded by fills and accuracy by 1.0; repeat traffic is reported
  // separately as hits-per-fill.
  if (phase_fills_ >= cfg_.eval_min_opportunities) {
    const double accuracy = static_cast<double>(phase_consumed_) /
                            static_cast<double>(phase_fills_);
    ROP_ASSERT(accuracy <= 1.0);
    h_.phase_accuracy->record(accuracy);
    h_.phase_hits_per_fill->record(static_cast<double>(phase_hits_) /
                                   static_cast<double>(phase_fills_));
    if (accuracy < cfg_.hit_rate_threshold) {
      // Patterns drifted: retrain lambda/beta from scratch (paper §IV-C).
      h_.retrain_events->inc();
      profiler_.restart();
      prefetcher_.clear();
      buffer_.clear();
      state_ = RopState::kTraining;
    }
  }
  phase_hits_ = 0;
  phase_opportunities_ = 0;
  phase_fills_ = 0;
  phase_consumed_ = 0;
  phase_unconsumed_.clear();
}

void RopEngine::on_prefetch_filled(const mem::Request& req, Cycle now) {
  if (buffer_.owner() != req.coord.rank) return;
  buffer_.insert(req.line_addr);
  ++phase_fills_;
  phase_unconsumed_.insert(req.line_addr);
  h_.buffer_fills->inc();
  trace_rop(telemetry::EventKind::kPrefetchFill, req.coord.rank,
            req.line_addr, now);

  // A blocked read for this exact line may already be queued (it arrived
  // during the seal before the fill landed); release it immediately rather
  // than letting it stall until the refresh completes.
  ctrl_.complete_matching_reads(
      req.coord.rank,
      [this, &req, now](const mem::Request& queued) -> std::optional<Cycle> {
        if (queued.line_addr != req.line_addr) return std::nullopt;
        if (!buffer_.lookup(queued.line_addr)) return std::nullopt;
        // Arrival was already counted as a freeze opportunity; the late
        // fill flips it from a stall into a service.
        ++phase_hits_;
        if (phase_unconsumed_.erase(queued.line_addr) > 0) {
          ++phase_consumed_;
        }
        h_.lock_window_served->inc();
        trace_rop(telemetry::EventKind::kLockServed, queued.coord.rank,
                  queued.line_addr, now);
        return now + cfg_.sram_latency;
      });
}

void RopEngine::trace_rop(telemetry::EventKind kind, RankId rank,
                          Address line, Cycle now) {
  telemetry::TraceSink* trace = ctrl_.trace();
  if (trace == nullptr || !trace->wants(telemetry::kCatRop)) return;
  telemetry::TraceEvent e;
  e.ts = now;
  e.arg = line;
  e.kind = kind;
  e.category = telemetry::kCatRop;
  e.channel = static_cast<std::uint16_t>(ctrl_.id());
  e.rank = static_cast<std::uint16_t>(rank);
  trace->record(e);
}

}  // namespace rop::engine
