#include "rop/sram_buffer.h"

#include <algorithm>

namespace rop::engine {

SramBuffer::SramBuffer(std::uint32_t capacity_lines)
    : capacity_(capacity_lines) {
  ROP_ASSERT(capacity_lines > 0);
  lru_.reserve(capacity_lines);
  map_.reserve(capacity_lines * 2);
}

void SramBuffer::begin_round(RankId rank) {
  clear();
  owner_ = rank;
  ++stats_.rounds;
}

void SramBuffer::touch(Address line_addr) {
  const auto it = std::find(lru_.begin(), lru_.end(), line_addr);
  ROP_ASSERT(it != lru_.end());
  lru_.erase(it);
  lru_.push_back(line_addr);
}

bool SramBuffer::insert(Address line_addr) {
  ++stats_.fills;
  if (map_.find(line_addr) != map_.end()) {
    touch(line_addr);
    return false;
  }
  if (lru_.size() >= capacity_) {
    map_.erase(lru_.front());
    lru_.erase(lru_.begin());
  }
  lru_.push_back(line_addr);
  map_.emplace(line_addr, true);
  return true;
}

bool SramBuffer::lookup(Address line_addr) {
  ++stats_.lookups;
  if (map_.find(line_addr) == map_.end()) return false;
  touch(line_addr);
  ++stats_.hits;
  return true;
}

void SramBuffer::invalidate(Address line_addr) {
  const auto it = map_.find(line_addr);
  if (it == map_.end()) return;
  map_.erase(it);
  lru_.erase(std::find(lru_.begin(), lru_.end(), line_addr));
  ++stats_.invalidations;
}

void SramBuffer::clear() {
  lru_.clear();
  map_.clear();
  owner_.reset();
}

}  // namespace rop::engine
