#include "rop/prediction_table.h"

#include <algorithm>
#include <numeric>

namespace rop::engine {

namespace {

constexpr std::uint16_t kFreqMax = 0xFFFF;

/// Proper modulo for signed walks over an unsigned ring of `size` lines.
std::uint64_t wrap_offset(std::int64_t value, std::uint64_t size) {
  std::int64_t m = value % static_cast<std::int64_t>(size);
  if (m < 0) m += static_cast<std::int64_t>(size);
  return static_cast<std::uint64_t>(m);
}

}  // namespace

PredictionTable::PredictionTable(std::uint32_t num_banks,
                                 std::uint64_t lines_per_bank)
    : entries_(num_banks), lines_per_bank_(lines_per_bank) {
  ROP_ASSERT(num_banks > 0);
  ROP_ASSERT(lines_per_bank > 0);
}

void PredictionTable::on_access(BankId bank, std::uint64_t offset,
                                Cycle now) {
  TableEntry& e = entries_.at(bank);
  e.last_access = now;
  if (last_bank_ && *last_bank_ != bank) {
    const auto n = static_cast<std::uint32_t>(entries_.size());
    transition_stride_ = (bank + n - *last_bank_) % n;
  }
  last_bank_ = bank;
  if (!e.last_addr) {
    e.last_addr = offset;
    return;
  }
  const Delta d = static_cast<Delta>(offset) -
                  static_cast<Delta>(*e.last_addr);
  e.last_addr = offset;

  const auto bump = [&e](std::uint16_t& f) {
    if (f == kFreqMax) {
      // Overflow: halve all three frequencies (paper §IV-C).
      e.f1 = static_cast<std::uint16_t>(e.f1 >> 1);
      e.f2 = static_cast<std::uint16_t>(e.f2 >> 1);
      e.f3 = static_cast<std::uint16_t>(e.f3 >> 1);
    }
    ++f;
  };

  // Single-delta pattern.
  if (e.delta1_valid && d == e.delta1) {
    bump(e.f1);
  } else {
    e.delta1 = d;
    e.f1 = 0;
    e.delta1_valid = true;
  }

  // Shift the new delta into the recent-history window.
  e.recent[0] = e.recent[1];
  e.recent[1] = e.recent[2];
  e.recent[2] = d;
  // 1..6 rolling counter keeps both the mod-2 and mod-3 boundaries aligned.
  e.deltas_seen = static_cast<std::uint8_t>((e.deltas_seen % 6) + 1);

  // Every two accesses generate a two-delta tuple.
  if (e.deltas_seen % 2 == 0) {
    const std::array<Delta, 2> tuple{e.recent[1], e.recent[2]};
    if (e.delta2_valid && tuple == e.delta2) {
      bump(e.f2);
    } else {
      e.delta2 = tuple;
      e.f2 = 0;
      e.delta2_valid = true;
    }
  }

  // Every three accesses generate a three-delta tuple.
  if (e.deltas_seen % 3 == 0) {
    const std::array<Delta, 3> tuple{e.recent[0], e.recent[1], e.recent[2]};
    if (e.delta3_valid && tuple == e.delta3) {
      bump(e.f3);
    } else {
      e.delta3 = tuple;
      e.f3 = 0;
      e.delta3_valid = true;
    }
  }
}

std::optional<BankId> PredictionTable::predicted_next_bank() const {
  if (!last_bank_ || !transition_stride_) return std::nullopt;
  const auto n = static_cast<std::uint32_t>(entries_.size());
  return static_cast<BankId>((*last_bank_ + *transition_stride_) % n);
}

std::uint64_t PredictionTable::total_weight() const {
  return std::accumulate(entries_.begin(), entries_.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const TableEntry& e) {
                           return acc + e.weight();
                         });
}

void PredictionTable::generate_offsets(const TableEntry& e,
                                       std::uint32_t budget,
                                       std::uint32_t skip,
                                       std::vector<std::uint64_t>& out) const {
  if (budget == 0 || !e.last_addr) return;
  const auto last = static_cast<std::int64_t>(*e.last_addr);
  const std::uint32_t w = e.weight();

  // Per-pattern shares proportional to the pattern frequencies; when no
  // pattern has repeated yet, fall back to a next-line walk.
  std::array<std::uint32_t, 3> share{};
  if (w == 0) {
    share[0] = budget;
  } else {
    share[0] = e.f1 * budget / w;
    share[1] = e.f2 * budget / w;
    share[2] = e.f3 * budget / w;
    std::uint32_t assigned = share[0] + share[1] + share[2];
    // Largest-frequency patterns absorb the rounding remainder.
    std::array<std::size_t, 3> order{0, 1, 2};
    const std::array<std::uint16_t, 3> freqs{e.f1, e.f2, e.f3};
    std::sort(order.begin(), order.end(), [&freqs](std::size_t a, std::size_t b) {
      return freqs[a] > freqs[b];
    });
    for (std::size_t k = 0; assigned < budget; k = (k + 1) % 3) {
      if (freqs[order[k]] == 0) continue;
      ++share[order[k]];
      ++assigned;
    }
  }

  const auto push = [this, &out](std::int64_t addr) {
    const std::uint64_t off = wrap_offset(addr, lines_per_bank_);
    if (std::find(out.begin(), out.end(), off) == out.end()) out.push_back(off);
  };

  // Pattern 1: repeated single delta.
  {
    const Delta raw = e.delta1_valid ? e.delta1 : Delta{1};
    const Delta step = raw == 0 ? Delta{1} : raw;
    std::int64_t addr = last + step * static_cast<Delta>(skip);
    for (std::uint32_t k = 0; k < share[0]; ++k) {
      addr += step;
      push(addr);
    }
  }
  // Pattern 2: cycle the two-delta tuple.
  if (e.delta2_valid) {
    std::int64_t addr = last;
    for (std::uint32_t k = 0; k < skip; ++k) addr += e.delta2[k % 2];
    for (std::uint32_t k = 0; k < share[1]; ++k) {
      addr += e.delta2[(skip + k) % 2];
      push(addr);
    }
  }
  // Pattern 3: cycle the three-delta tuple.
  if (e.delta3_valid) {
    std::int64_t addr = last;
    for (std::uint32_t k = 0; k < skip; ++k) addr += e.delta3[k % 3];
    for (std::uint32_t k = 0; k < share[2]; ++k) {
      addr += e.delta3[(skip + k) % 3];
      push(addr);
    }
  }
}

std::vector<BankPrediction> PredictionTable::predict(
    std::uint32_t capacity, bool uniform, std::uint32_t skip_per_bank,
    Cycle now, Cycle recency_horizon) const {
  const std::size_t n = entries_.size();
  std::vector<BankPrediction> out(n);
  for (std::size_t b = 0; b < n; ++b) {
    out[b].bank = static_cast<BankId>(b);
  }

  // Effective weights: Eq. 3 uses pattern frequencies; the uniform ablation
  // treats every touched bank equally.
  std::vector<std::uint64_t> weights(n, 0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const TableEntry& e = entries_[b];
    weights[b] = uniform ? (e.last_addr ? 1 : 0) : e.weight();
    total += weights[b];
  }
  if (total == 0) {
    for (std::size_t b = 0; b < n; ++b) {
      weights[b] = entries_[b].last_addr ? 1 : 0;
      total += weights[b];
    }
  }
  if (total == 0) return out;  // table empty: nothing to prefetch

  // Recency split: banks accessed within the horizon are the ones demand
  // can reach during the freeze; they share 3/4 of the budget by weight.
  // The rest is spread over the other touched banks so that a stream
  // crossing a row boundary into its next bank mid-freeze still finds its
  // continuation staged (per-bank offsets continue linearly across visits).
  const bool use_recency = recency_horizon > 0 && now > recency_horizon;
  std::vector<bool> active(n, false);
  std::size_t num_active = 0;
  if (use_recency) {
    for (std::size_t b = 0; b < n; ++b) {
      if (weights[b] > 0 && entries_[b].last_access != kNeverCycle &&
          entries_[b].last_access >= now - recency_horizon) {
        active[b] = true;
        ++num_active;
      }
    }
  }

  const auto distribute = [&](std::uint32_t pool,
                              const std::vector<std::uint64_t>& w) {
    std::uint64_t w_total = 0;
    for (std::size_t b = 0; b < n; ++b) w_total += w[b];
    if (w_total == 0 || pool == 0) return;
    std::uint64_t assigned = 0;
    std::vector<std::uint64_t> remainders(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint64_t num = w[b] * pool;
      out[b].budget += static_cast<std::uint32_t>(num / w_total);
      remainders[b] = num % w_total;
      assigned += num / w_total;
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&remainders](std::size_t a, std::size_t b) {
                return remainders[a] > remainders[b];
              });
    for (std::size_t k = 0; assigned < pool && k < n; ++k) {
      if (w[order[k]] == 0) continue;
      ++out[order[k]].budget;
      ++assigned;
    }
  };

  if (num_active > 0 && num_active < n) {
    // Active banks take the budget (Eq. 3 among themselves); a small
    // reserve goes to the predicted next bank so a stream crossing a row
    // boundary mid-freeze finds its continuation staged.
    std::vector<std::uint64_t> w_active(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
      if (active[b]) w_active[b] = weights[b];
    }
    std::uint32_t reserve = 0;
    const auto next = predicted_next_bank();
    if (next && !active[*next] && entries_[*next].last_addr) {
      reserve = std::max<std::uint32_t>(1, capacity / 8);
      out[*next].budget += reserve;
    }
    distribute(capacity - reserve, w_active);
  } else {
    // Plain Eq. 3 over every touched bank.
    distribute(capacity, weights);
  }

  for (std::size_t b = 0; b < n; ++b) {
    generate_offsets(entries_[b], out[b].budget, skip_per_bank,
                     out[b].offsets);
  }
  return out;
}

void PredictionTable::decay() {
  for (TableEntry& e : entries_) {
    e.f1 = static_cast<std::uint16_t>(e.f1 >> 1);
    e.f2 = static_cast<std::uint16_t>(e.f2 >> 1);
    e.f3 = static_cast<std::uint16_t>(e.f3 >> 1);
  }
}

void PredictionTable::clear() {
  std::fill(entries_.begin(), entries_.end(), TableEntry{});
}

}  // namespace rop::engine
