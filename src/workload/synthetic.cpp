#include "workload/synthetic.h"

namespace rop::workload {

namespace {

/// Draw one gap: the denominator fast path when the mean supports it
/// (mean > 1), the plain path otherwise. `denom` must be
/// Rng::gap_denom(mean) when mean > 1; its value is ignored otherwise.
std::uint64_t draw_gap(Rng& rng, double mean, double denom) {
  return mean > 1.0 ? rng.next_gap_with_denom(denom) : rng.next_gap(mean);
}

}  // namespace

SyntheticTrace::SyntheticTrace(const SyntheticConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  ROP_ASSERT(!cfg_.streams.empty());
  ROP_ASSERT(cfg_.footprint_lines > 0);
  ROP_ASSERT(cfg_.mean_gap >= 0.0);
  gap_denom_ = cfg_.mean_gap > 1.0 ? Rng::gap_denom(cfg_.mean_gap) : 0.0;
  idle_denom_ = cfg_.idle_instructions > 1.0
                    ? Rng::gap_denom(cfg_.idle_instructions)
                    : 0.0;
  burst_denom_ = cfg_.burst_ops > 1.0 ? Rng::gap_denom(cfg_.burst_ops) : 0.0;
  reset();
}

void SyntheticTrace::reset() {
  rng_.reseed(cfg_.seed);
  positions_.assign(cfg_.streams.size(), 0);
  delta_idx_.assign(cfg_.streams.size(), 0);
  credits_.assign(cfg_.streams.size(), 0.0);
  total_weight_ = 0.0;
  for (std::size_t s = 0; s < cfg_.streams.size(); ++s) {
    ROP_ASSERT(!cfg_.streams[s].deltas.empty());
    ROP_ASSERT(cfg_.streams[s].weight > 0.0);
    total_weight_ += cfg_.streams[s].weight;
    // Spread stream start positions over the footprint deterministically.
    // The odd per-stream stagger keeps equal-stride streams from walking
    // the same DRAM bank in lockstep forever (real arrays are not
    // bank-aligned relative to each other).
    positions_[s] =
        ((cfg_.footprint_lines / cfg_.streams.size()) * s + 131 * s) %
        cfg_.footprint_lines;
  }
  ops_until_idle_ =
      cfg_.burst_ops > 0 ? draw_gap(rng_, cfg_.burst_ops, burst_denom_) : 0;
  ring_.clear();
  ring_pos_ = 0;
}

TraceRecord SyntheticTrace::next() {
  if (cfg_.batch_records <= 1) return generate(rng_);
  if (ring_pos_ == ring_.size()) refill();
  return ring_[ring_pos_++];
}

void SyntheticTrace::refill() {
  // Hoist the RNG into a local for the whole batch: the per-record draws
  // then keep the 256-bit xoshiro state in registers instead of
  // round-tripping it through the member on every call, and write it back
  // once. The record stream is identical to the unbatched path — the local
  // starts from and ends in the exact member state.
  Rng rng = rng_;
  ring_.resize(cfg_.batch_records);
  for (std::uint32_t i = 0; i < cfg_.batch_records; ++i) {
    ring_[i] = generate(rng);
  }
  rng_ = rng;
  ring_pos_ = 0;
}

TraceRecord SyntheticTrace::generate(Rng& rng) {
  TraceRecord rec;
  std::uint64_t gap =
      cfg_.mean_gap > 0 ? draw_gap(rng, cfg_.mean_gap, gap_denom_) - 1 : 0;

  // Burst phase accounting: when the busy phase ends, splice in a long
  // idle compute period before the next access.
  if (cfg_.burst_ops > 0 && cfg_.idle_instructions > 0) {
    if (ops_until_idle_ == 0) {
      gap += draw_gap(rng, cfg_.idle_instructions, idle_denom_);
      ops_until_idle_ = draw_gap(rng, cfg_.burst_ops, burst_denom_);
    } else {
      --ops_until_idle_;
    }
  }

  rec.gap = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(gap, 0x7FFFFFFFull));
  rec.is_write = rng.next_bool(cfg_.write_fraction);

  std::uint64_t line;
  if (rng.next_bool(cfg_.random_fraction)) {
    line = rng.next_below(cfg_.footprint_lines);
  } else {
    // Streams interleave deterministically in proportion to their weights
    // (weighted round-robin), the way a loop body walks its arrays in a
    // fixed order each iteration. A random pick per access would destroy
    // the periodic multi-delta signature real code exposes.
    std::size_t s = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < cfg_.streams.size(); ++i) {
      credits_[i] += cfg_.streams[i].weight;
      if (credits_[i] > best) {
        best = credits_[i];
        s = i;
      }
    }
    credits_[s] -= total_weight_;
    const StreamSpec& spec = cfg_.streams[s];
    const std::int64_t d = spec.deltas[delta_idx_[s]];
    delta_idx_[s] = (delta_idx_[s] + 1) % spec.deltas.size();
    std::int64_t pos = static_cast<std::int64_t>(positions_[s]) + d;
    const auto fp = static_cast<std::int64_t>(cfg_.footprint_lines);
    pos %= fp;
    if (pos < 0) pos += fp;
    positions_[s] = static_cast<std::uint64_t>(pos);
    line = positions_[s];
  }
  rec.addr = line << kLineShift;
  return rec;
}

}  // namespace rop::workload
