// Parameterised synthetic workload generator.
//
// Substitutes the paper's SPEC CPU2006 traces (see DESIGN.md §1). Traces are
// modeled at the post-L2 level: each record is an LLC access plus the
// compute gap before it. The generator controls exactly the axes ROP is
// sensitive to:
//   * intensity        — mean compute gap between LLC accesses,
//   * spatial locality — weighted strided streams with multi-delta
//                        patterns (what the VLDP-style table predicts),
//   * irregularity     — a fraction of uniform-random accesses,
//   * footprint        — reuse distance vs. LLC size (miss filtering),
//   * burstiness       — busy phases separated by long idle gaps (what
//                        makes B=0 windows and high beta),
//   * read/write mix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/trace.h"

namespace rop::workload {

/// A strided walker. `deltas` is a cyclic line-granular delta sequence —
/// {+1} is a unit stream, {+1,+1,+130} is the kind of multi-delta pattern
/// VLDP exploits.
struct StreamSpec {
  std::vector<std::int64_t> deltas;
  double weight = 1.0;
};

struct SyntheticConfig {
  std::string name = "synthetic";
  double mean_gap = 50.0;          // mean instructions between LLC accesses
  double write_fraction = 0.25;
  std::uint64_t footprint_lines = 1ull << 20;  // 64 MB default
  std::vector<StreamSpec> streams{{{+1}, 1.0}};
  double random_fraction = 0.1;    // uniform-random accesses in footprint
  /// Burstiness: after ~`burst_ops` memory operations, insert an idle gap
  /// of ~`idle_instructions` instructions. 0 idle = steady traffic.
  double burst_ops = 0.0;
  double idle_instructions = 0.0;
  std::uint64_t seed = 7;
  /// Records generated per refill of the internal ring. next() hands out
  /// prefilled records so the generation cost (RNG draws, credit updates,
  /// delta walk) amortizes over the batch. 0 or 1 disables batching. The
  /// record *stream* is identical for any batch size (the generator is
  /// self-contained, so generation order equals consumption order).
  std::uint32_t batch_records = 32;
};

class SyntheticTrace final : public TraceSource {
 public:
  explicit SyntheticTrace(const SyntheticConfig& cfg);

  TraceRecord next() override;
  void reset() override;

  [[nodiscard]] const SyntheticConfig& config() const { return cfg_; }

  /// Snapshot serialization: the RNG, the walker cursors, and the record
  /// ring (with its consumption cursor), so the restored stream hands out
  /// exactly the records the captured generator would have.
  template <class Ar>
  void io(Ar& ar) {
    ar(rng_, positions_, delta_idx_, credits_, ops_until_idle_, ring_,
       ring_pos_);
  }

 private:
  /// Generate the next record (the pre-batching next()). Draws from `rng`
  /// so refill() can hand in a register-resident local copy.
  TraceRecord generate(Rng& rng);
  /// Refill the record ring with the next batch_records records.
  void refill();

  SyntheticConfig cfg_;
  Rng rng_;
  /// Precomputed log1p(-1/mean) for each gap distribution (0 when the mean
  /// is <= 1 and the denominator path is unused): one libm call per draw
  /// instead of two, bit-identical to Rng::next_gap.
  double gap_denom_ = 0.0;
  double idle_denom_ = 0.0;
  double burst_denom_ = 0.0;
  std::vector<std::uint64_t> positions_;  // per-stream line cursor
  std::vector<std::size_t> delta_idx_;    // per-stream cursor into deltas
  std::vector<double> credits_;  // weighted round-robin selection state
  double total_weight_ = 0.0;
  std::uint64_t ops_until_idle_ = 0;
  std::vector<TraceRecord> ring_;  // prefilled batch; empty when disabled
  std::size_t ring_pos_ = 0;       // next record to hand out
};

}  // namespace rop::workload
