#include "workload/spec_profiles.h"

#include <algorithm>

#include "common/types.h"

namespace rop::workload {

bool is_intensive(std::string_view name) {
  static constexpr std::array<std::string_view, 6> kIntensive{
      "gemsfdtd", "lbm", "bwaves", "gcc", "libquantum", "cactusadm"};
  return std::find(kIntensive.begin(), kIntensive.end(), name) !=
         kIntensive.end();
}

// Calibration note (see DESIGN.md §1): the trace-driven core has no
// dependency stalls, so raw SPEC MPKI numbers would saturate the DDR4 bus
// where the authors' OOO cores did not. The gaps below are chosen to land
// each benchmark in the same *memory regime* as the paper instead: the
// intensive six keep the channel 15-40% utilized and latency-bound, the
// non-intensive six are sparse and bursty at the tREFI scale (~100k
// instructions per refresh interval), which is what produces the paper's
// lambda/beta structure in Table I.
SyntheticConfig spec_profile(std::string_view name, std::uint64_t seed_salt) {
  SyntheticConfig c;
  c.name = std::string(name);
  const std::uint64_t base_seed =
      std::hash<std::string_view>{}(name) ^ (seed_salt * 0x9e3779b97f4a7c15ULL);
  c.seed = base_seed | 1;

  const auto mb = [](std::uint64_t mbytes) {
    return (mbytes << 20) / kLineBytes;  // footprint in cache lines
  };

  if (name == "gemsfdtd") {
    // FDTD stencil: several strided sweeps over a large grid with a
    // repeating multi-delta signature between field components.
    c.mean_gap = 170;
    c.write_fraction = 0.30;
    c.footprint_lines = mb(256);
    // Three field-component arrays swept in lockstep each iteration.
    c.streams = {{{+1}, 1.0}, {{+1}, 1.0}, {{+1}, 1.0}};
    c.random_fraction = 0.02;
  } else if (name == "lbm") {
    // Lattice-Boltzmann: write-heavy dual streaming, never idle.
    c.mean_gap = 180;
    c.write_fraction = 0.45;
    c.footprint_lines = mb(512);
    c.streams = {{{+1}, 1.0}, {{+1}, 1.0}};
    c.random_fraction = 0.01;
  } else if (name == "libquantum") {
    // Single perfectly sequential sweep over the state vector.
    c.mean_gap = 200;
    c.write_fraction = 0.25;
    c.footprint_lines = mb(256);
    c.streams = {{{+1}, 1.0}};
    c.random_fraction = 0.0;
  } else if (name == "bwaves") {
    c.mean_gap = 220;
    c.write_fraction = 0.20;
    c.footprint_lines = mb(384);
    c.streams = {{{+1}, 1.0}, {{+1}, 1.0}, {{+1, +1, +2}, 1.0}};
    c.random_fraction = 0.03;
  } else if (name == "gcc") {
    // Compiler: intensive but phase-y — pointer-rich bursts with pauses.
    c.mean_gap = 260;
    c.write_fraction = 0.30;
    c.footprint_lines = mb(128);
    c.streams = {{{+1}, 1.0}, {{+5}, 0.6}};
    c.random_fraction = 0.25;
    c.burst_ops = 600;
    c.idle_instructions = 120'000;
  } else if (name == "cactusadm") {
    c.mean_gap = 240;
    c.write_fraction = 0.30;
    c.footprint_lines = mb(192);
    c.streams = {{{+1}, 1.0}, {{+1}, 1.0}};
    c.random_fraction = 0.08;
    c.burst_ops = 700;
    c.idle_instructions = 100'000;
  } else if (name == "wrf") {
    // Weather model: dense strided bursts separated by long compute.
    c.mean_gap = 300;
    c.write_fraction = 0.30;
    c.footprint_lines = mb(96);
    c.streams = {{{+1}, 1.0}, {{+4}, 0.5}};
    c.random_fraction = 0.05;
    c.burst_ops = 2'000;
    c.idle_instructions = 1'500'000;
  } else if (name == "bzip2") {
    // Compression: small working set, sparse bursty misses.
    c.mean_gap = 350;
    c.write_fraction = 0.35;
    c.footprint_lines = mb(8);
    c.streams = {{{+1}, 1.0}};
    c.random_fraction = 0.30;
    c.burst_ops = 400;
    c.idle_instructions = 400'000;
  } else if (name == "perlbench") {
    // Interpreter: mostly cache-resident, short irregular bursts.
    c.mean_gap = 400;
    c.write_fraction = 0.30;
    c.footprint_lines = mb(3);
    c.streams = {{{+1}, 0.5}, {{+7}, 0.5}};
    c.random_fraction = 0.50;
    c.burst_ops = 120;
    c.idle_instructions = 500'000;
  } else if (name == "astar") {
    // Path-finding: pointer chasing over a moderate graph.
    c.mean_gap = 450;
    c.write_fraction = 0.25;
    c.footprint_lines = mb(16);
    c.streams = {{{+1}, 0.4}, {{+13}, 0.6}};
    c.random_fraction = 0.60;
    c.burst_ops = 400;
    c.idle_instructions = 300'000;
  } else if (name == "omnetpp") {
    // Discrete-event simulator: heap-walking, moderate footprint.
    c.mean_gap = 380;
    c.write_fraction = 0.35;
    c.footprint_lines = mb(24);
    c.streams = {{{+1}, 0.5}, {{+11, +3}, 0.5}};
    c.random_fraction = 0.50;
    c.burst_ops = 350;
    c.idle_instructions = 350'000;
  } else if (name == "gobmk") {
    // Game tree search: tiny hot set, very sparse short bursts.
    c.mean_gap = 600;
    c.write_fraction = 0.25;
    c.footprint_lines = mb(4);
    c.streams = {{{+1}, 1.0}};
    c.random_fraction = 0.40;
    c.burst_ops = 80;
    c.idle_instructions = 800'000;
  } else {
    ROP_ASSERT(false && "unknown benchmark name");
  }
  return c;
}

std::vector<std::string> workload_mix(std::uint32_t wl) {
  switch (wl) {
    case 1: return {"gemsfdtd", "lbm", "bwaves", "libquantum"};
    case 2: return {"bwaves", "gcc", "libquantum", "cactusadm"};
    case 3: return {"gemsfdtd", "lbm", "wrf", "bzip2"};
    case 4: return {"gcc", "cactusadm", "perlbench", "astar"};
    case 5: return {"libquantum", "wrf", "omnetpp", "gobmk"};
    case 6: return {"bzip2", "perlbench", "astar", "gobmk"};
    default: ROP_ASSERT(false && "workload mixes are WL1..WL6");
  }
  return {};
}

}  // namespace rop::workload
