// Trace record and source interface shared by the CPU model and the
// workload generators.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace rop::workload {

/// One memory operation plus the number of non-memory instructions the core
/// executes before it.
struct TraceRecord {
  std::uint32_t gap = 0;  // non-memory instructions preceding the access
  bool is_write = false;
  Address addr = 0;  // core-local byte address (the system relocates it)

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(gap, is_write, addr);
  }
};

/// Infinite stream of trace records. Generators wrap around; file readers
/// loop the file.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual TraceRecord next() = 0;
  /// Restart the stream from the beginning (deterministic replay).
  virtual void reset() = 0;
};

}  // namespace rop::workload
