#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rop::workload {

std::vector<TraceRecord> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord rec;
    std::string op, addr;
    if (!(ls >> rec.gap >> op >> addr) || (op != "R" && op != "W")) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed trace record");
    }
    rec.is_write = op == "W";
    try {
      rec.addr = std::stoull(addr, nullptr, 0);
    } catch (const std::exception&) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": bad address: " + addr);
    }
    records.push_back(rec);
  }
  if (records.empty()) {
    throw std::runtime_error("trace file has no records: " + path);
  }
  return records;
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  out << "# rop trace: <gap> <R|W> <hex-address>\n";
  for (const TraceRecord& rec : records) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%u %c 0x%" PRIx64 "\n", rec.gap,
                  rec.is_write ? 'W' : 'R', rec.addr);
    out << buf;
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<TraceRecord> capture(TraceSource& source, std::size_t count) {
  std::vector<TraceRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(source.next());
  return out;
}

}  // namespace rop::workload
