// Text trace format read/write.
//
// Format, one record per line:
//   <gap> <R|W> <hex-address>
// e.g. "42 R 0x1fc0". Lines beginning with '#' are comments. A trace file
// replayed through FileTrace loops forever (the CPU model expects an
// infinite stream); MemoryTrace replays an in-memory vector the same way.
#pragma once

#include <string>
#include <vector>

#include "workload/trace.h"

namespace rop::workload {

/// Replay an in-memory record vector, looping.
class MemoryTrace final : public TraceSource {
 public:
  explicit MemoryTrace(std::vector<TraceRecord> records)
      : records_(std::move(records)) {
    ROP_ASSERT(!records_.empty());
  }

  TraceRecord next() override {
    const TraceRecord& r = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    return r;
  }
  void reset() override { pos_ = 0; }

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

/// Parse a trace file into records. Throws std::runtime_error on malformed
/// input (line number included in the message).
[[nodiscard]] std::vector<TraceRecord> read_trace_file(
    const std::string& path);

/// Serialize records to a trace file. Throws std::runtime_error on I/O
/// failure.
void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records);

/// Capture `count` records from any source into a vector (e.g. to snapshot
/// a synthetic generator into a replayable trace).
[[nodiscard]] std::vector<TraceRecord> capture(TraceSource& source,
                                               std::size_t count);

}  // namespace rop::workload
