// SPEC-CPU2006-like synthetic benchmark profiles and the multi-programmed
// workload mixes (paper Table II).
//
// Each profile is a SyntheticConfig tuned to put the benchmark in the right
// regime on the axes that drive the paper's results: memory intensity,
// stride predictability, burstiness (which determines lambda/beta in
// Table I) and footprint relative to the LLC. The six intensive benchmarks
// stream with small gaps; the six non-intensive ones are sparse, bursty and
// partially cache-resident.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "workload/synthetic.h"

namespace rop::workload {

/// The 12 benchmarks of Table II, in the paper's Table I column order.
inline constexpr std::array<std::string_view, 12> kBenchmarkNames{
    "perlbench", "bzip2",   "gobmk", "gemsfdtd",  "libquantum", "lbm",
    "omnetpp",   "astar",   "wrf",   "gcc",       "bwaves",     "cactusadm"};

/// Memory-intensive subset (paper Table II "Intensive = Y").
[[nodiscard]] bool is_intensive(std::string_view name);

/// Build the tuned generator config for a named benchmark. Aborts on an
/// unknown name. `seed_salt` perturbs the RNG stream so the same benchmark
/// can run on several cores without lockstep.
[[nodiscard]] SyntheticConfig spec_profile(std::string_view name,
                                           std::uint64_t seed_salt = 0);

/// 4-program workload mixes WL1..WL6 (Table II): WL1 is all-intensive and
/// mixes get progressively less intensive through WL6 (all non-intensive).
[[nodiscard]] std::vector<std::string> workload_mix(std::uint32_t wl);

inline constexpr std::uint32_t kNumWorkloadMixes = 6;

}  // namespace rop::workload
