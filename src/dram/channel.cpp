#include "dram/channel.h"

#include <algorithm>

#include "telemetry/trace_sink.h"

namespace rop::dram {

namespace {

telemetry::EventKind cmd_event_kind(CmdType type) {
  switch (type) {
    case CmdType::kActivate: return telemetry::EventKind::kCmdActivate;
    case CmdType::kPrecharge: return telemetry::EventKind::kCmdPrecharge;
    case CmdType::kRead: return telemetry::EventKind::kCmdRead;
    case CmdType::kWrite: return telemetry::EventKind::kCmdWrite;
    case CmdType::kRefresh: return telemetry::EventKind::kCmdRefresh;
    case CmdType::kRefreshBank: return telemetry::EventKind::kCmdRefreshBank;
  }
  return telemetry::EventKind::kCmdActivate;
}

}  // namespace

Channel::Channel(const DramTimings& timings, const DramOrganization& org)
    : t_(timings) {
  ROP_ASSERT(validate(timings));
  ranks_.reserve(org.ranks);
  for (std::uint32_t r = 0; r < org.ranks; ++r) {
    ranks_.emplace_back(t_, org.banks, org.subarrays, org.rows);
  }
}

Cycle Channel::data_bus_free(CmdType type, RankId rank) const {
  if (!bus_used_) return 0;
  Cycle free = bus_busy_until_;
  // Switching drivers (rank change) or direction (read<->write) needs a
  // switch gap on top of plain occupancy.
  if (rank != last_bus_rank_ || type != last_bus_op_) free += t_.tRTRS;
  return free;
}

bool Channel::can_issue(const Command& cmd, Cycle now) const {
  // Data-bus occupancy first: it is the cheapest check and, on a saturated
  // bus, the one that vetoes almost every candidate the scheduler probes.
  if (cmd.is_column()) {
    const Cycle data_start =
        cmd.type == CmdType::kRead ? now + t_.CL : now + t_.CWL;
    if (data_start < data_bus_free(cmd.type, cmd.coord.rank)) return false;
  }
  return ranks_.at(cmd.coord.rank).can_issue(cmd, now);
}

Cycle Channel::earliest_issue(const Command& cmd) const {
  Cycle when = ranks_.at(cmd.coord.rank).earliest_issue(cmd);
  if (when == kNeverCycle) return kNeverCycle;
  if (cmd.is_column()) {
    // The data burst starts CL/CWL after the command; the command must wait
    // until the bus (plus any switch gap) is free at that point.
    const Cycle lat = cmd.type == CmdType::kRead ? t_.CL : t_.CWL;
    const Cycle bus_free = data_bus_free(cmd.type, cmd.coord.rank);
    if (bus_free > lat) when = std::max(when, bus_free - lat);
  }
  return when;
}

Cycle Channel::issue(const Command& cmd, Cycle now) {
  ROP_ASSERT(can_issue(cmd, now));
  Rank& rank = ranks_.at(cmd.coord.rank);
  rank.issue(cmd, now);
  Cycle done = now;
  switch (cmd.type) {
    case CmdType::kActivate:
      ++events_.activates;
      break;
    case CmdType::kPrecharge:
      ++events_.precharges;
      break;
    case CmdType::kRead:
      ++events_.reads;
      done = t_.read_data_done(now);
      bus_busy_until_ = done;
      last_bus_op_ = CmdType::kRead;
      last_bus_rank_ = cmd.coord.rank;
      bus_used_ = true;
      break;
    case CmdType::kWrite:
      ++events_.writes;
      done = t_.write_data_done(now);
      bus_busy_until_ = done;
      last_bus_op_ = CmdType::kWrite;
      last_bus_rank_ = cmd.coord.rank;
      bus_used_ = true;
      break;
    case CmdType::kRefresh:
      ++events_.refreshes;
      done = now + t_.tRFC;
      break;
    case CmdType::kRefreshBank:
      ++events_.bank_refreshes;
      done = now + t_.tRFCpb;
      break;
  }
  if (trace_ != nullptr && trace_->wants(telemetry::kCatCmds)) {
    telemetry::TraceEvent e;
    e.ts = now;
    e.dur = done - now;
    e.kind = cmd_event_kind(cmd.type);
    e.category = telemetry::kCatCmds;
    e.channel = static_cast<std::uint16_t>(trace_channel_);
    e.rank = static_cast<std::uint16_t>(cmd.coord.rank);
    e.bank = static_cast<std::uint16_t>(cmd.coord.bank);
    trace_->record(e);
  }
  return done;
}

void Channel::begin_refresh_segment(RankId rank, Cycle now, Cycle duration) {
  ++events_.refresh_segments;
  ranks_.at(rank).begin_refresh_segment(now, duration);
  if (trace_ != nullptr && trace_->wants(telemetry::kCatRefresh)) {
    telemetry::TraceEvent e;
    e.ts = now;
    e.dur = duration;
    e.kind = telemetry::EventKind::kPauseSegment;
    e.category = telemetry::kCatRefresh;
    e.channel = static_cast<std::uint16_t>(trace_channel_);
    e.rank = static_cast<std::uint16_t>(rank);
    trace_->record(e);
  }
}

void Channel::tick(Cycle now) {
  for (Rank& r : ranks_) r.tick(now);
}

void Channel::settle_accounting(Cycle now) {
  for (Rank& r : ranks_) r.settle_accounting(now);
}

}  // namespace rop::dram
