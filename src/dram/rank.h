// Rank model: a set of banks operating in lockstep plus rank-scope timing
// constraints (tRRD, tFAW, tCCD, write-to-read turnaround) and the refresh
// lockout that freezes every bank for tRFC.
//
// The rank also integrates busy/idle/refresh cycle counts, which the energy
// model turns into background power.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "dram/bank.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace rop::dram {

/// Cycle-count breakdown used by the background-power model.
struct RankActivity {
  std::uint64_t active_cycles = 0;      // >= 1 bank active (IDD3N regime)
  std::uint64_t precharged_cycles = 0;  // all banks precharged (IDD2N regime)
  std::uint64_t refresh_cycles = 0;     // rank-level REF in flight (IDD5)
  /// Bank-cycles spent in per-bank refresh locks (REFpb). These overlap
  /// the active/precharged integration above; the power model charges them
  /// as an IDD5 surcharge scaled by 1/banks.
  std::uint64_t bank_refresh_cycles = 0;
};

class Rank {
 public:
  /// `subarrays` > 1 switches every bank to the subarray-aware model (SARP /
  /// HiRA); `rows_per_bank` sizes the contiguous row blocks.
  Rank(const DramTimings& timings, std::uint32_t num_banks,
       std::uint32_t subarrays = 1, std::uint32_t rows_per_bank = 0);

  [[nodiscard]] std::uint32_t num_banks() const {
    return static_cast<std::uint32_t>(banks_.size());
  }
  [[nodiscard]] const Bank& bank(BankId b) const { return banks_.at(b); }
  [[nodiscard]] Bank& bank(BankId b) { return banks_.at(b); }

  /// True while a REF command is executing (banks frozen).
  [[nodiscard]] bool refreshing() const { return refreshing_; }
  [[nodiscard]] Cycle refresh_done() const { return refresh_done_; }
  /// True while at least one bank holds a per-bank refresh lock (REFpb).
  [[nodiscard]] bool pb_refreshing() const { return pb_refreshing_; }

  /// Rank-scope constraint registers (exposed for next-event computation
  /// and state-dump determinism tests).
  [[nodiscard]] Cycle next_activate() const { return next_activate_; }
  [[nodiscard]] Cycle next_column() const { return next_column_; }

  [[nodiscard]] bool all_banks_precharged() const;

  /// Rank-scope legality for a command at `now` (bank-scope already layered
  /// in; channel-scope data-bus checks layer on top).
  [[nodiscard]] bool can_issue(const Command& cmd, Cycle now) const;

  /// Earliest cycle at which `cmd` could legally issue, folding bank-scope
  /// constraints with tRRD, tFAW window slots, tCCD, and the refresh
  /// lockout. kNeverCycle when time alone cannot make it legal (another
  /// command must land first). Exact for the frozen state: if no command
  /// reaches this rank in between, can_issue(cmd, c) is false for every
  /// c < result and true at c == result.
  [[nodiscard]] Cycle earliest_issue(const Command& cmd) const;

  /// Earliest cycle a full-rank REF (or pausing segment) could begin:
  /// every bank precharged and past its recovery point. kNeverCycle while
  /// any bank holds an open row (a PRE must land first).
  [[nodiscard]] Cycle earliest_refresh_ready() const;

  /// Earliest cycle at which any per-bank refresh lock is released by
  /// tick(). kNeverCycle when no bank is locked.
  [[nodiscard]] Cycle earliest_pb_release() const;

  /// Apply the command. Aborts on illegality.
  void issue(const Command& cmd, Cycle now);

  /// Begin a partial refresh of `duration` cycles (Refresh Pausing
  /// segments). Same legality as a full REF.
  void begin_refresh_segment(Cycle now, Cycle duration);

  /// Release the refresh lockout once `now` has reached refresh_done().
  /// Called every controller tick; cheap when nothing changes.
  void tick(Cycle now);

  /// Finalize activity accounting up to `now` (call once at end of run or
  /// whenever a consistent snapshot is needed).
  void settle_accounting(Cycle now);
  [[nodiscard]] const RankActivity& activity() const { return activity_; }

  /// Snapshot serialization: every mutable field, including the activity
  /// integration point, so restored energy accounting continues exactly.
  template <class Ar>
  void io(Ar& ar) {
    // Banks serialize in place: the bank count and subarray geometry are
    // fixed by the configuration the restored simulator was built with.
    for (Bank& b : banks_) ar.field(b);
    ar(next_activate_, next_column_, recent_activates_, refreshing_,
       refresh_done_, pb_refreshing_, accounted_until_,
       activity_.active_cycles, activity_.precharged_cycles,
       activity_.refresh_cycles, activity_.bank_refresh_cycles);
  }

 private:
  void account_until(Cycle now);
  [[nodiscard]] bool any_bank_active() const;

  const DramTimings& t_;
  std::vector<Bank> banks_;

  Cycle next_activate_ = 0;  // tRRD constraint across banks
  Cycle next_column_ = 0;    // tCCD constraint across banks
  std::deque<Cycle> recent_activates_;  // for the tFAW window

  bool refreshing_ = false;
  Cycle refresh_done_ = 0;
  // At least one bank may hold a per-bank refresh lock (REFpb). Lets tick()
  // skip the bank scan on the vast majority of cycles where none exists.
  bool pb_refreshing_ = false;

  Cycle accounted_until_ = 0;
  RankActivity activity_;
};

}  // namespace rop::dram
