#include "dram/bank.h"

#include <algorithm>

namespace rop::dram {

void Bank::configure_subarrays(std::uint32_t count, std::uint32_t rows_per_bank) {
  ROP_ASSERT(count >= 1);
  ROP_ASSERT(state_ == BankState::kPrecharged && !open_row_);
  sub_count_ = count;
  if (count <= 1) {
    rows_per_sub_ = 0;
    sub_busy_until_.clear();
    sub_last_row_.clear();
    return;
  }
  rows_per_sub_ = std::max<std::uint32_t>(1, (rows_per_bank + count - 1) / count);
  sub_busy_until_.assign(count, 0);
  sub_last_row_.assign(count, std::nullopt);
}

std::uint32_t Bank::subarray_of(RowId row) const {
  if (sub_count_ <= 1) return 0;
  return std::min<std::uint32_t>(row / rows_per_sub_, sub_count_ - 1);
}

RowId Bank::subarray_row(std::uint32_t sub) const {
  return sub_count_ <= 1 ? 0 : static_cast<RowId>(sub) * rows_per_sub_;
}

Cycle Bank::subarray_busy_until(std::uint32_t sub) const {
  return sub_count_ <= 1 ? 0 : sub_busy_until_[sub];
}

std::optional<std::uint32_t> Bank::refreshing_subarray(Cycle now) const {
  for (std::uint32_t s = 0; s < sub_count_ && sub_count_ > 1; ++s) {
    if (sub_busy_until_[s] > now) return s;
  }
  return std::nullopt;
}

std::optional<RowId> Bank::subarray_last_row(std::uint32_t sub) const {
  return sub_count_ <= 1 ? std::nullopt : sub_last_row_[sub];
}

Cycle Bank::any_subarray_busy_until() const {
  Cycle latest = 0;
  for (const Cycle c : sub_busy_until_) latest = std::max(latest, c);
  return latest;
}

bool Bank::can_issue(CmdType type, RowId row, Cycle now) const {
  switch (type) {
    case CmdType::kActivate:
      if (state_ != BankState::kPrecharged || now < next_activate_)
        return false;
      // The target subarray must be out of its refresh-busy interval; the
      // other subarrays' locks do not block an ACT (SARP parallelism).
      return sub_count_ <= 1 || now >= sub_busy_until_[subarray_of(row)];
    case CmdType::kPrecharge:
      // PRE on an already-precharged bank is a harmless no-op electrically,
      // but we treat it as illegal to catch controller bugs.
      return state_ == BankState::kActive && now >= next_precharge_;
    case CmdType::kRead:
      return state_ == BankState::kActive && open_row_ &&
             *open_row_ == row && now >= next_read_;
    case CmdType::kWrite:
      return state_ == BankState::kActive && open_row_ &&
             *open_row_ == row && now >= next_write_;
    case CmdType::kRefresh:
      // REF legality is a rank-scope decision; at bank scope it requires
      // the bank to be precharged and past its precharge-to-activate time
      // (and, with subarrays, no subarray refresh still in flight).
      return state_ == BankState::kPrecharged && now >= next_activate_ &&
             now >= any_subarray_busy_until();
    case CmdType::kRefreshBank:
      if (sub_count_ <= 1) {
        return state_ == BankState::kPrecharged && now >= next_activate_;
      }
      // Subarray-targeted refresh: at most one per bank in flight. Legal
      // from kPrecharged (SARP), or — the HiRA overlap — while a row is
      // open in a *different* subarray; next_activate_ spaces the hidden
      // activation tRC from the last explicit ACT.
      if (now < any_subarray_busy_until() || now < next_activate_)
        return false;
      if (state_ == BankState::kPrecharged) return true;
      return state_ == BankState::kActive && open_row_ &&
             subarray_of(*open_row_) != subarray_of(row);
  }
  return false;
}

Cycle Bank::earliest_issue(CmdType type, RowId row) const {
  switch (type) {
    case CmdType::kActivate:
      // kPrecharged waits out tRP/tRC recovery; kRefreshing is released at
      // next_activate_ (see complete_refresh), after which ACT is legal the
      // same cycle; a refresh-locked subarray is released when its busy
      // interval ends. Only an open row blocks ACT until someone precharges.
      if (state_ == BankState::kActive) return kNeverCycle;
      return sub_count_ <= 1
                 ? next_activate_
                 : std::max(next_activate_, sub_busy_until_[subarray_of(row)]);
    case CmdType::kPrecharge:
      return state_ == BankState::kActive ? next_precharge_ : kNeverCycle;
    case CmdType::kRead:
      return state_ == BankState::kActive && open_row_ && *open_row_ == row
                 ? next_read_
                 : kNeverCycle;
    case CmdType::kWrite:
      return state_ == BankState::kActive && open_row_ && *open_row_ == row
                 ? next_write_
                 : kNeverCycle;
    case CmdType::kRefresh:
      return state_ == BankState::kActive
                 ? kNeverCycle
                 : std::max(next_activate_, any_subarray_busy_until());
    case CmdType::kRefreshBank:
      if (state_ != BankState::kActive || sub_count_ <= 1) {
        return state_ == BankState::kActive
                   ? kNeverCycle
                   : std::max(next_activate_, any_subarray_busy_until());
      }
      // HiRA overlap path: legal once the last ACT's tRC and any in-flight
      // subarray refresh have elapsed, unless the open row shares the
      // target subarray.
      return open_row_ && subarray_of(*open_row_) != subarray_of(row)
                 ? std::max(next_activate_, any_subarray_busy_until())
                 : kNeverCycle;
  }
  return kNeverCycle;
}

void Bank::issue(CmdType type, RowId row, Cycle now, const DramTimings& t) {
  ROP_ASSERT(can_issue(type, row, now));
  switch (type) {
    case CmdType::kActivate:
      state_ = BankState::kActive;
      open_row_ = row;
      next_activate_ = now + t.tRC;
      next_read_ = std::max(next_read_, now + t.tRCD);
      next_write_ = std::max(next_write_, now + t.tRCD);
      next_precharge_ = std::max(next_precharge_, now + t.tRAS);
      if (sub_count_ > 1) sub_last_row_[subarray_of(row)] = row;
      break;
    case CmdType::kPrecharge:
      state_ = BankState::kPrecharged;
      open_row_.reset();
      next_activate_ = std::max(next_activate_, now + t.tRP);
      break;
    case CmdType::kRead:
      next_precharge_ = std::max(next_precharge_, now + t.tRTP);
      break;
    case CmdType::kWrite:
      // The written row may be precharged only after write recovery
      // following the end of the data burst.
      next_precharge_ =
          std::max(next_precharge_, t.write_data_done(now) + t.tWR);
      break;
    case CmdType::kRefresh:
      begin_refresh(now, t.tRFC);
      break;
    case CmdType::kRefreshBank:
      if (sub_count_ <= 1) {
        begin_refresh(now, t.tRFCpb);
      } else {
        // Lock only the targeted subarray; the bank state is untouched so
        // other subarrays keep serving (SARP) and an open row elsewhere
        // keeps its buffer (HiRA overlap). The refreshed subarray loses
        // its local row-buffer record.
        const std::uint32_t sub = subarray_of(row);
        sub_busy_until_[sub] = now + t.tRFCpb;
        sub_last_row_[sub].reset();
      }
      break;
  }
}

void Bank::begin_refresh(Cycle now, Cycle duration) {
  ROP_ASSERT(state_ == BankState::kPrecharged && now >= next_activate_);
  state_ = BankState::kRefreshing;
  next_activate_ = std::max(next_activate_, now + duration);
}

void Bank::complete_refresh(Cycle refresh_done) {
  ROP_ASSERT(state_ == BankState::kRefreshing);
  state_ = BankState::kPrecharged;
  next_activate_ = std::max(next_activate_, refresh_done);
}

}  // namespace rop::dram
