#include "dram/bank.h"

#include <algorithm>

namespace rop::dram {

bool Bank::can_issue(CmdType type, RowId row, Cycle now) const {
  switch (type) {
    case CmdType::kActivate:
      return state_ == BankState::kPrecharged && now >= next_activate_;
    case CmdType::kPrecharge:
      // PRE on an already-precharged bank is a harmless no-op electrically,
      // but we treat it as illegal to catch controller bugs.
      return state_ == BankState::kActive && now >= next_precharge_;
    case CmdType::kRead:
      return state_ == BankState::kActive && open_row_ &&
             *open_row_ == row && now >= next_read_;
    case CmdType::kWrite:
      return state_ == BankState::kActive && open_row_ &&
             *open_row_ == row && now >= next_write_;
    case CmdType::kRefresh:
    case CmdType::kRefreshBank:
      // REF legality is a rank-scope decision; at bank scope it requires
      // the bank to be precharged and past its precharge-to-activate time.
      return state_ == BankState::kPrecharged && now >= next_activate_;
  }
  return false;
}

Cycle Bank::earliest_issue(CmdType type, RowId row) const {
  switch (type) {
    case CmdType::kActivate:
      // kPrecharged waits out tRP/tRC recovery; kRefreshing is released at
      // next_activate_ (see complete_refresh), after which ACT is legal the
      // same cycle. Only an open row blocks ACT until someone precharges.
      return state_ == BankState::kActive ? kNeverCycle : next_activate_;
    case CmdType::kPrecharge:
      return state_ == BankState::kActive ? next_precharge_ : kNeverCycle;
    case CmdType::kRead:
      return state_ == BankState::kActive && open_row_ && *open_row_ == row
                 ? next_read_
                 : kNeverCycle;
    case CmdType::kWrite:
      return state_ == BankState::kActive && open_row_ && *open_row_ == row
                 ? next_write_
                 : kNeverCycle;
    case CmdType::kRefresh:
    case CmdType::kRefreshBank:
      return state_ == BankState::kActive ? kNeverCycle : next_activate_;
  }
  return kNeverCycle;
}

void Bank::issue(CmdType type, RowId row, Cycle now, const DramTimings& t) {
  ROP_ASSERT(can_issue(type, row, now));
  switch (type) {
    case CmdType::kActivate:
      state_ = BankState::kActive;
      open_row_ = row;
      next_activate_ = now + t.tRC;
      next_read_ = std::max(next_read_, now + t.tRCD);
      next_write_ = std::max(next_write_, now + t.tRCD);
      next_precharge_ = std::max(next_precharge_, now + t.tRAS);
      break;
    case CmdType::kPrecharge:
      state_ = BankState::kPrecharged;
      open_row_.reset();
      next_activate_ = std::max(next_activate_, now + t.tRP);
      break;
    case CmdType::kRead:
      next_precharge_ = std::max(next_precharge_, now + t.tRTP);
      break;
    case CmdType::kWrite:
      // The written row may be precharged only after write recovery
      // following the end of the data burst.
      next_precharge_ =
          std::max(next_precharge_, t.write_data_done(now) + t.tWR);
      break;
    case CmdType::kRefresh:
      begin_refresh(now, t.tRFC);
      break;
    case CmdType::kRefreshBank:
      begin_refresh(now, t.tRFCpb);
      break;
  }
}

void Bank::begin_refresh(Cycle now, Cycle duration) {
  ROP_ASSERT(state_ == BankState::kPrecharged && now >= next_activate_);
  state_ = BankState::kRefreshing;
  next_activate_ = std::max(next_activate_, now + duration);
}

void Bank::complete_refresh(Cycle refresh_done) {
  ROP_ASSERT(state_ == BankState::kRefreshing);
  state_ = BankState::kPrecharged;
  next_activate_ = std::max(next_activate_, refresh_done);
}

}  // namespace rop::dram
