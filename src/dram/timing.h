// DDR4 timing and organization parameters.
//
// All timing fields are expressed in DRAM controller clock cycles (tCK).
// Defaults model DDR4-1600 with 8 Gb devices in 1x refresh mode, matching
// Table III of the paper: tREFI = 7.8 us, tRFC = 350 ns.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace rop::dram {

/// JEDEC DDR4 fine-grained refresh modes (paper §II-B / future work §VII).
enum class RefreshMode : std::uint8_t {
  k1x = 1,  // tREFI = 7.8 us, tRFC = 350 ns (8 Gb)
  k2x = 2,  // tREFI = 3.9 us, tRFC = 260 ns
  k4x = 4,  // tREFI = 1.95 us, tRFC = 160 ns
};

/// Timing parameters in controller clock cycles.
struct DramTimings {
  // Clock period in picoseconds: DDR4-1600 runs the command clock at
  // 800 MHz (data rate 1600 MT/s).
  std::uint32_t tCK_ps = 1250;

  std::uint32_t CL = 11;    // read (CAS) latency
  std::uint32_t CWL = 9;    // write (CAS write) latency
  std::uint32_t tRCD = 11;  // ACT -> column command
  std::uint32_t tRP = 11;   // PRE -> ACT
  std::uint32_t tRAS = 28;  // ACT -> PRE (same bank)
  std::uint32_t tRC = 39;   // ACT -> ACT (same bank) = tRAS + tRP
  std::uint32_t tCCD = 4;   // column command -> column command (same rank)
  std::uint32_t tRRD = 5;   // ACT -> ACT (different banks, same rank)
  std::uint32_t tFAW = 20;  // rolling four-ACT window (same rank)
  std::uint32_t tWR = 12;   // end of write data -> PRE
  std::uint32_t tWTR = 6;   // end of write data -> RD (same rank)
  std::uint32_t tRTP = 6;   // RD -> PRE
  std::uint32_t tRTRS = 2;  // rank-to-rank data-bus switch penalty
  std::uint32_t tBL = 4;    // data-bus beats per burst (BL8 / DDR)

  std::uint32_t tREFI = 6240;  // average refresh interval (7.8 us / 1.25 ns)
  std::uint32_t tRFC = 280;    // refresh cycle time (350 ns / 1.25 ns)
  std::uint32_t tRFCpb = 72;   // per-bank refresh lock (90 ns, REFpb mode)

  /// JEDEC DDR4 allows at most 8 refresh commands to be postponed as long
  /// as the running average of one-per-tREFI is maintained.
  std::uint32_t max_postponed_refreshes = 8;

  /// Read latency from command issue to the *end* of the data burst.
  [[nodiscard]] Cycle read_data_done(Cycle issue) const {
    return issue + CL + tBL;
  }
  /// Write latency from command issue to the end of the data burst.
  [[nodiscard]] Cycle write_data_done(Cycle issue) const {
    return issue + CWL + tBL;
  }

  [[nodiscard]] double cycles_to_ns(Cycle c) const {
    return static_cast<double>(c) * static_cast<double>(tCK_ps) / 1000.0;
  }
  /// Convert a nanosecond constraint to cycles, rounding *up*: a minimum
  /// timing constraint (tRFC, tRFCpb, ...) truncated toward zero would let
  /// the simulator issue one cycle too early whenever ns*1000 is not a
  /// multiple of tCK_ps.
  [[nodiscard]] Cycle ns_to_cycles(double ns) const {
    const std::uint64_t ps = static_cast<std::uint64_t>(ns * 1000.0 + 0.5);
    return static_cast<Cycle>((ps + tCK_ps - 1) / tCK_ps);
  }
};

/// DRAM organization (Table III: DDR4-1600, 1 channel; 1 rank for
/// single-core and 4 ranks for 4-core experiments).
struct DramOrganization {
  std::uint32_t channels = 1;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 8;        // DDR4 x8: 8 banks (4 bank groups folded)
  std::uint32_t rows = 1 << 16;   // 64 K rows per bank
  std::uint32_t columns = 128;    // cache lines per row (8 KB row / 64 B)
  // Subarrays per bank (contiguous row blocks). 1 keeps the classic
  // whole-bank model; SARP/HiRA presets raise it so a bank can refresh one
  // subarray while serving accesses to the others (Chang et al., HiRA).
  std::uint32_t subarrays = 1;

  [[nodiscard]] std::uint64_t lines_per_bank() const {
    return static_cast<std::uint64_t>(rows) * columns;
  }
  [[nodiscard]] std::uint64_t total_lines() const {
    return static_cast<std::uint64_t>(channels) * ranks * banks *
           lines_per_bank();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return total_lines() * kLineBytes;
  }
};

/// Build DDR4-1600 8 Gb timings for the given refresh mode.
[[nodiscard]] DramTimings make_ddr4_1600_timings(RefreshMode mode = RefreshMode::k1x);

/// Validate internal consistency (tRC = tRAS + tRP, non-zero periods, ...).
/// Returns true when the timing set is usable.
[[nodiscard]] bool validate(const DramTimings& t);

}  // namespace rop::dram
