#include "dram/rank.h"

#include <algorithm>

namespace rop::dram {

Rank::Rank(const DramTimings& timings, std::uint32_t num_banks,
           std::uint32_t subarrays, std::uint32_t rows_per_bank)
    : t_(timings), banks_(num_banks) {
  ROP_ASSERT(num_banks > 0);
  if (subarrays > 1) {
    for (Bank& b : banks_) b.configure_subarrays(subarrays, rows_per_bank);
  }
}

bool Rank::all_banks_precharged() const {
  return std::all_of(banks_.begin(), banks_.end(), [](const Bank& b) {
    return b.state() == BankState::kPrecharged;
  });
}

bool Rank::any_bank_active() const {
  return std::any_of(banks_.begin(), banks_.end(), [](const Bank& b) {
    return b.state() == BankState::kActive;
  });
}

bool Rank::can_issue(const Command& cmd, Cycle now) const {
  if (refreshing_ && now < refresh_done_) return false;
  const Bank& bank = banks_.at(cmd.coord.bank);
  switch (cmd.type) {
    case CmdType::kActivate: {
      if (now < next_activate_) return false;
      // tFAW: at most 4 activates within any rolling tFAW window.
      if (recent_activates_.size() >= 4 &&
          now < recent_activates_.front() + t_.tFAW) {
        return false;
      }
      return bank.can_issue(cmd.type, cmd.coord.row, now);
    }
    case CmdType::kRead:
    case CmdType::kWrite:
      if (now < next_column_) return false;
      return bank.can_issue(cmd.type, cmd.coord.row, now);
    case CmdType::kPrecharge:
      return bank.can_issue(cmd.type, cmd.coord.row, now);
    case CmdType::kRefresh: {
      if (!all_banks_precharged()) return false;
      // Every bank must be past its precharge-recovery point.
      return std::all_of(banks_.begin(), banks_.end(), [now](const Bank& b) {
        return now >= b.next_activate();
      });
    }
    case CmdType::kRefreshBank:
      // Subarray-targeted refresh performs a hidden activation internally:
      // space it tRRD from other activates in the rank (the tFAW window is
      // deliberately not charged — see DESIGN.md). Whole-bank REFpb keeps
      // the classic rank-agnostic legality.
      if (bank.subarrays() > 1 && now < next_activate_) return false;
      return bank.can_issue(cmd.type, cmd.coord.row, now);
  }
  return false;
}

Cycle Rank::earliest_issue(const Command& cmd) const {
  const Bank& bank = banks_.at(cmd.coord.bank);
  Cycle when = bank.earliest_issue(cmd.type, cmd.coord.row);
  if (when == kNeverCycle) return kNeverCycle;
  switch (cmd.type) {
    case CmdType::kActivate:
      when = std::max(when, next_activate_);
      if (recent_activates_.size() >= 4) {
        when = std::max(when, recent_activates_.front() + t_.tFAW);
      }
      break;
    case CmdType::kRead:
    case CmdType::kWrite:
      when = std::max(when, next_column_);
      break;
    case CmdType::kRefreshBank:
      if (bank.subarrays() > 1) when = std::max(when, next_activate_);
      break;
    case CmdType::kPrecharge:
    case CmdType::kRefresh:
      break;
  }
  if (refreshing_) when = std::max(when, refresh_done_);
  return when;
}

Cycle Rank::earliest_refresh_ready() const {
  Cycle ready = 0;
  for (const Bank& b : banks_) {
    // An open row never precharges by itself: REF cannot become legal
    // through the passage of time alone.
    if (b.state() == BankState::kActive) return kNeverCycle;
    ready = std::max(ready, b.next_activate());
  }
  if (refreshing_) ready = std::max(ready, refresh_done_);
  return ready;
}

Cycle Rank::earliest_pb_release() const {
  Cycle release = kNeverCycle;
  if (!pb_refreshing_) return release;
  for (const Bank& b : banks_) {
    if (b.state() == BankState::kRefreshing) {
      release = std::min(release, b.next_activate());
    }
  }
  return release;
}

void Rank::issue(const Command& cmd, Cycle now) {
  ROP_ASSERT(can_issue(cmd, now));
  account_until(now);
  Bank& bank = banks_.at(cmd.coord.bank);
  switch (cmd.type) {
    case CmdType::kActivate:
      bank.issue(cmd.type, cmd.coord.row, now, t_);
      next_activate_ = std::max(next_activate_, now + t_.tRRD);
      recent_activates_.push_back(now);
      while (recent_activates_.size() > 4) recent_activates_.pop_front();
      break;
    case CmdType::kPrecharge:
      bank.issue(cmd.type, cmd.coord.row, now, t_);
      break;
    case CmdType::kRead:
      bank.issue(cmd.type, cmd.coord.row, now, t_);
      next_column_ = std::max(next_column_, now + t_.tCCD);
      break;
    case CmdType::kWrite: {
      bank.issue(cmd.type, cmd.coord.row, now, t_);
      next_column_ = std::max(next_column_, now + t_.tCCD);
      // Write-to-read turnaround applies rank-wide.
      const Cycle rd_ok = t_.write_data_done(now) + t_.tWTR;
      for (Bank& b : banks_) b.defer_read_until(rd_ok);
      break;
    }
    case CmdType::kRefresh:
      for (Bank& b : banks_) b.issue(CmdType::kRefresh, 0, now, t_);
      refreshing_ = true;
      refresh_done_ = now + t_.tRFC;
      break;
    case CmdType::kRefreshBank:
      bank.issue(CmdType::kRefreshBank, cmd.coord.row, now, t_);
      activity_.bank_refresh_cycles += t_.tRFCpb;
      if (bank.state() == BankState::kRefreshing) {
        // Whole-bank lock: tick() must release it. Subarray-targeted
        // refreshes are purely time-based (no kRefreshing transition), but
        // their hidden activation counts against tRRD like an ACT.
        pb_refreshing_ = true;
      } else {
        next_activate_ = std::max(next_activate_, now + t_.tRRD);
      }
      break;
  }
}

void Rank::begin_refresh_segment(Cycle now, Cycle duration) {
  ROP_ASSERT(can_issue(Command{CmdType::kRefresh, DramCoord{}, 0}, now));
  account_until(now);
  for (Bank& b : banks_) b.begin_refresh(now, duration);
  refreshing_ = true;
  refresh_done_ = now + duration;
}

void Rank::tick(Cycle now) {
  if (refreshing_) {
    if (now >= refresh_done_) {
      account_until(refresh_done_);
      refreshing_ = false;
      for (Bank& b : banks_) b.complete_refresh(refresh_done_);
    }
    return;
  }
  if (!pb_refreshing_) return;
  // Release any per-bank refresh locks that have elapsed (REFpb).
  bool still_locked = false;
  for (Bank& b : banks_) {
    if (b.state() != BankState::kRefreshing) continue;
    if (now >= b.next_activate()) {
      b.complete_refresh(b.next_activate());
    } else {
      still_locked = true;
    }
  }
  pb_refreshing_ = still_locked;
}

void Rank::settle_accounting(Cycle now) { account_until(now); }

void Rank::account_until(Cycle now) {
  if (now <= accounted_until_) return;
  const std::uint64_t span = now - accounted_until_;
  if (refreshing_) {
    // Split the span at refresh completion when it straddles it; the
    // caller's tick() normally prevents straddles, but settle_accounting
    // at end-of-run may not.
    if (now <= refresh_done_) {
      activity_.refresh_cycles += span;
    } else {
      activity_.refresh_cycles += refresh_done_ - accounted_until_;
      activity_.precharged_cycles += now - refresh_done_;
    }
  } else if (any_bank_active()) {
    activity_.active_cycles += span;
  } else {
    activity_.precharged_cycles += span;
  }
  accounted_until_ = now;
}

}  // namespace rop::dram
