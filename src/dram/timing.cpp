#include "dram/timing.h"

namespace rop::dram {

DramTimings make_ddr4_1600_timings(RefreshMode mode) {
  DramTimings t;  // defaults are the 1x numbers
  switch (mode) {
    case RefreshMode::k1x:
      break;
    case RefreshMode::k2x:
      t.tREFI = 3120;                  // 3.9 us
      t.tRFC = static_cast<std::uint32_t>(t.ns_to_cycles(260.0));  // 260 ns
      // Per-bank refresh shrinks with FGR density mode just like the
      // full-rank tRFC: scale the 1x 90 ns figure by the tRFC ratio.
      t.tRFCpb = static_cast<std::uint32_t>(
          t.ns_to_cycles(90.0 * 260.0 / 350.0));  // ~66.9 ns
      break;
    case RefreshMode::k4x:
      t.tREFI = 1560;                  // 1.95 us
      t.tRFC = static_cast<std::uint32_t>(t.ns_to_cycles(160.0));  // 160 ns
      t.tRFCpb = static_cast<std::uint32_t>(
          t.ns_to_cycles(90.0 * 160.0 / 350.0));  // ~41.1 ns
      break;
  }
  return t;
}

bool validate(const DramTimings& t) {
  if (t.tCK_ps == 0 || t.tBL == 0) return false;
  if (t.tRC != t.tRAS + t.tRP) return false;
  if (t.tREFI == 0 || t.tRFC == 0) return false;
  if (t.tRFC >= t.tREFI) return false;  // refresh duty cycle must be < 1
  if (t.tRFCpb == 0 || t.tRFCpb >= t.tRFC) return false;
  if (t.tRCD == 0 || t.tRP == 0 || t.CL == 0 || t.CWL == 0) return false;
  if (t.tFAW < t.tRRD) return false;
  return true;
}

}  // namespace rop::dram
