// Channel model: ranks sharing a command bus and a bidirectional data bus.
//
// The controller issues at most one command per cycle per channel (command
// bus serialization); the channel enforces data-bus occupancy, rank-to-rank
// switch penalties and read/write turnaround, and tallies command counts for
// the energy model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/rank.h"
#include "dram/timing.h"

namespace rop::telemetry {
class TraceSink;
}

namespace rop::dram {

/// Event counts the energy model charges per command.
struct ChannelEvents {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;       // full-rank REF commands
  std::uint64_t bank_refreshes = 0;  // per-bank REFpb commands
  std::uint64_t refresh_segments = 0;  // Refresh Pausing segments
};

class Channel {
 public:
  Channel(const DramTimings& timings, const DramOrganization& org);

  [[nodiscard]] std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  [[nodiscard]] const Rank& rank(RankId r) const { return ranks_.at(r); }
  [[nodiscard]] Rank& rank(RankId r) { return ranks_.at(r); }

  /// Full legality check: bank + rank + data-bus scope.
  [[nodiscard]] bool can_issue(const Command& cmd, Cycle now) const;

  /// Earliest cycle at which `cmd` could legally issue on this channel,
  /// folding bank timing, rank constraints (tRRD/tFAW/tCCD, refresh
  /// lockout), and data-bus occupancy with switch penalties. kNeverCycle
  /// when time alone cannot make it legal from the frozen state. Exact:
  /// can_issue(cmd, c) flips from false to true at exactly the returned
  /// cycle if no other command lands in between.
  [[nodiscard]] Cycle earliest_issue(const Command& cmd) const;

  /// Issue the command; returns the cycle at which its data burst completes
  /// (reads/writes) or the command's completion cycle (REF) or `now` for
  /// ACT/PRE.
  Cycle issue(const Command& cmd, Cycle now);

  /// Begin a Refresh Pausing segment on `rank` (see Rank).
  void begin_refresh_segment(RankId rank, Cycle now, Cycle duration);

  /// Advance per-rank bookkeeping (refresh completion).
  void tick(Cycle now);

  void settle_accounting(Cycle now);
  [[nodiscard]] const ChannelEvents& events() const { return events_; }

  [[nodiscard]] const DramTimings& timings() const { return t_; }

  /// Attach a trace sink (nullptr detaches): issue() records every command
  /// and begin_refresh_segment() every pausing segment. The channel has no
  /// identity of its own, so the owning controller passes its id along.
  void set_trace(telemetry::TraceSink* trace, ChannelId channel_id) {
    trace_ = trace;
    trace_channel_ = channel_id;
  }
  [[nodiscard]] telemetry::TraceSink* trace() const { return trace_; }

  /// Snapshot serialization: ranks, data-bus state, and command tallies.
  /// The trace sink attachment is runtime wiring and does not ride.
  template <class Ar>
  void io(Ar& ar) {
    // Ranks are not default-constructible (they reference the timing
    // tables), so they serialize in place; the count is fixed by config.
    for (Rank& r : ranks_) ar.field(r);
    ar(bus_busy_until_, last_bus_op_, last_bus_rank_, bus_used_,
       events_.activates, events_.precharges, events_.reads, events_.writes,
       events_.refreshes, events_.bank_refreshes, events_.refresh_segments);
  }

 private:
  /// First cycle at which a new burst by `type` on `rank` may occupy the
  /// data bus.
  [[nodiscard]] Cycle data_bus_free(CmdType type, RankId rank) const;

  const DramTimings& t_;
  std::vector<Rank> ranks_;

  // Data-bus state.
  Cycle bus_busy_until_ = 0;
  CmdType last_bus_op_ = CmdType::kRead;
  RankId last_bus_rank_ = 0;
  bool bus_used_ = false;

  ChannelEvents events_;
  telemetry::TraceSink* trace_ = nullptr;
  ChannelId trace_channel_ = 0;
};

}  // namespace rop::dram
