// Typed DRAM commands as issued on the command bus.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace rop::dram {

enum class CmdType : std::uint8_t {
  kActivate,
  kPrecharge,
  kRead,
  kWrite,
  kRefresh,
  kRefreshBank,  // per-bank refresh (REFpb): locks one bank for tRFCpb
};

[[nodiscard]] constexpr std::string_view to_string(CmdType t) {
  switch (t) {
    case CmdType::kActivate: return "ACT";
    case CmdType::kPrecharge: return "PRE";
    case CmdType::kRead: return "RD";
    case CmdType::kWrite: return "WR";
    case CmdType::kRefresh: return "REF";
    case CmdType::kRefreshBank: return "REFpb";
  }
  return "???";
}

/// A command addressed at a DRAM coordinate. Refresh targets a whole rank
/// (bank/row/column ignored); precharge targets a bank; activate targets a
/// bank+row; column commands target bank+row+column.
struct Command {
  CmdType type = CmdType::kActivate;
  DramCoord coord{};
  RequestId request = 0;  // 0 when not tied to a transaction (PRE/REF)

  [[nodiscard]] bool is_column() const {
    return type == CmdType::kRead || type == CmdType::kWrite;
  }
};

}  // namespace rop::dram
