// Per-bank state machine with earliest-issue constraint tracking.
//
// The bank records, for each command class, the earliest cycle at which that
// command may legally be issued, updating the constraints whenever a command
// is accepted. This is the classic DRAMSim-style formulation: legality is a
// pure function of (state, constraint registers, now).
//
// Banks optionally model N subarrays (contiguous row blocks, Chang et al.
// SARP / HiRA). With subarrays > 1 a per-bank refresh (REFpb) locks only the
// targeted subarray for tRFCpb — the bank does *not* enter kRefreshing, so
// activates and column accesses to the other subarrays proceed in parallel.
// Bank-level legality also permits the HiRA-style overlap (REFpb while a row
// is open in a *different* subarray); whether that overlap is exploited is a
// controller-policy decision (SARP only refreshes precharged banks).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace rop::dram {

enum class BankState : std::uint8_t {
  kPrecharged,  // no row open (also covers "precharging" until next_activate)
  kActive,      // a row is open in the row buffer
  kRefreshing,  // locked by an in-flight REF (tracked at rank scope too)
};

class Bank {
 public:
  Bank() = default;

  /// Switch to the subarray-aware model: `count` subarrays of contiguous
  /// rows out of `rows_per_bank`. count == 1 keeps the classic whole-bank
  /// model (bit-identical to the pre-subarray Bank).
  void configure_subarrays(std::uint32_t count, std::uint32_t rows_per_bank);

  [[nodiscard]] BankState state() const { return state_; }
  [[nodiscard]] std::optional<RowId> open_row() const { return open_row_; }

  /// Earliest legal issue cycles, considering only *this bank's* history.
  /// Rank- and channel-scope constraints (tRRD, tFAW, bus) layer on top.
  [[nodiscard]] Cycle next_activate() const { return next_activate_; }
  [[nodiscard]] Cycle next_read() const { return next_read_; }
  [[nodiscard]] Cycle next_write() const { return next_write_; }
  [[nodiscard]] Cycle next_precharge() const { return next_precharge_; }

  /// Subarray introspection (checker / telemetry / refresh policies).
  [[nodiscard]] std::uint32_t subarrays() const { return sub_count_; }
  [[nodiscard]] std::uint32_t subarray_of(RowId row) const;
  /// A representative row inside subarray `sub` (REFpb targeting).
  [[nodiscard]] RowId subarray_row(std::uint32_t sub) const;
  /// End of the busy interval for `sub` (0 when never refreshed).
  [[nodiscard]] Cycle subarray_busy_until(std::uint32_t sub) const;
  /// The subarray still refresh-locked at `now`, if any (at most one REFpb
  /// is in flight per bank at a time).
  [[nodiscard]] std::optional<std::uint32_t> refreshing_subarray(
      Cycle now) const;
  /// Last row activated in `sub` (the subarray's local row-buffer record).
  [[nodiscard]] std::optional<RowId> subarray_last_row(std::uint32_t sub) const;

  /// Would `cmd` targeting this bank be legal at `now` (bank scope only)?
  [[nodiscard]] bool can_issue(CmdType type, RowId row, Cycle now) const;

  /// Earliest cycle at which `type` targeting `row` could legally issue at
  /// bank scope, assuming no further commands reach this bank in between.
  /// Returns kNeverCycle when no passage of time alone can make the command
  /// legal from the current state (e.g. RD to a row that is not open): some
  /// other command must land first, which re-derives the answer. The only
  /// state transitions time *does* perform are the refresh release (an ACT
  /// against a kRefreshing bank becomes legal at next_activate(), recorded
  /// by begin_refresh()) and subarray-lock expiry (an ACT into a locked
  /// subarray becomes legal when its busy interval ends).
  [[nodiscard]] Cycle earliest_issue(CmdType type, RowId row) const;

  /// Apply `cmd` at `now`, updating state and constraints. The caller must
  /// have checked legality; violations abort (simulator bug, not workload
  /// behaviour).
  void issue(CmdType type, RowId row, Cycle now, const DramTimings& t);

  /// Begin a refresh lock of `duration` cycles (used for full-rank REF,
  /// per-bank REFpb, and the segments of Refresh Pausing). Legality is the
  /// same as CmdType::kRefresh.
  void begin_refresh(Cycle now, Cycle duration);

  /// Rank-level refresh completion releases the bank.
  void complete_refresh(Cycle refresh_done);

  /// Used by WR issue on *sibling* banks in the same rank: defer reads by
  /// the write-to-read turnaround.
  void defer_read_until(Cycle c) { next_read_ = std::max(next_read_, c); }
  /// And the symmetric case for read-to-write turnaround.
  void defer_write_until(Cycle c) { next_write_ = std::max(next_write_, c); }

  /// Snapshot serialization (see common/snapshot_io.h). The subarray
  /// geometry (sub_count_/rows_per_sub_) is reconstructed by
  /// configure_subarrays at assembly time; only the mutable records ride.
  template <class Ar>
  void io(Ar& ar) {
    ar(state_, open_row_, next_activate_, next_read_, next_write_,
       next_precharge_, sub_busy_until_, sub_last_row_);
  }

 private:
  /// End of the latest subarray busy interval (kRefreshBank legality: only
  /// one subarray refresh may be in flight per bank).
  [[nodiscard]] Cycle any_subarray_busy_until() const;

  BankState state_ = BankState::kPrecharged;
  std::optional<RowId> open_row_;
  Cycle next_activate_ = 0;
  Cycle next_read_ = 0;
  Cycle next_write_ = 0;
  Cycle next_precharge_ = 0;

  // Subarray model (empty vectors in whole-bank mode).
  std::uint32_t sub_count_ = 1;
  std::uint32_t rows_per_sub_ = 0;
  std::vector<Cycle> sub_busy_until_;
  std::vector<std::optional<RowId>> sub_last_row_;
};

}  // namespace rop::dram
