// Per-bank state machine with earliest-issue constraint tracking.
//
// The bank records, for each command class, the earliest cycle at which that
// command may legally be issued, updating the constraints whenever a command
// is accepted. This is the classic DRAMSim-style formulation: legality is a
// pure function of (state, constraint registers, now).
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace rop::dram {

enum class BankState : std::uint8_t {
  kPrecharged,  // no row open (also covers "precharging" until next_activate)
  kActive,      // a row is open in the row buffer
  kRefreshing,  // locked by an in-flight REF (tracked at rank scope too)
};

class Bank {
 public:
  Bank() = default;

  [[nodiscard]] BankState state() const { return state_; }
  [[nodiscard]] std::optional<RowId> open_row() const { return open_row_; }

  /// Earliest legal issue cycles, considering only *this bank's* history.
  /// Rank- and channel-scope constraints (tRRD, tFAW, bus) layer on top.
  [[nodiscard]] Cycle next_activate() const { return next_activate_; }
  [[nodiscard]] Cycle next_read() const { return next_read_; }
  [[nodiscard]] Cycle next_write() const { return next_write_; }
  [[nodiscard]] Cycle next_precharge() const { return next_precharge_; }

  /// Would `cmd` targeting this bank be legal at `now` (bank scope only)?
  [[nodiscard]] bool can_issue(CmdType type, RowId row, Cycle now) const;

  /// Earliest cycle at which `type` targeting `row` could legally issue at
  /// bank scope, assuming no further commands reach this bank in between.
  /// Returns kNeverCycle when no passage of time alone can make the command
  /// legal from the current state (e.g. RD to a row that is not open): some
  /// other command must land first, which re-derives the answer. The only
  /// state transition time *does* perform is the refresh release, which is
  /// folded in: an ACT against a kRefreshing bank becomes legal at
  /// next_activate(), the release point recorded by begin_refresh().
  [[nodiscard]] Cycle earliest_issue(CmdType type, RowId row) const;

  /// Apply `cmd` at `now`, updating state and constraints. The caller must
  /// have checked legality; violations abort (simulator bug, not workload
  /// behaviour).
  void issue(CmdType type, RowId row, Cycle now, const DramTimings& t);

  /// Begin a refresh lock of `duration` cycles (used for full-rank REF,
  /// per-bank REFpb, and the segments of Refresh Pausing). Legality is the
  /// same as CmdType::kRefresh.
  void begin_refresh(Cycle now, Cycle duration);

  /// Rank-level refresh completion releases the bank.
  void complete_refresh(Cycle refresh_done);

  /// Used by WR issue on *sibling* banks in the same rank: defer reads by
  /// the write-to-read turnaround.
  void defer_read_until(Cycle c) { next_read_ = std::max(next_read_, c); }
  /// And the symmetric case for read-to-write turnaround.
  void defer_write_until(Cycle c) { next_write_ = std::max(next_write_, c); }

 private:
  BankState state_ = BankState::kPrecharged;
  std::optional<RowId> open_row_;
  Cycle next_activate_ = 0;
  Cycle next_read_ = 0;
  Cycle next_write_ = 0;
  Cycle next_precharge_ = 0;
};

}  // namespace rop::dram
