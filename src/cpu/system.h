// Multi-core system assembly: cores + LLC + the memory system, with clock
// coupling (the CPU runs `cpu_ratio` cycles per controller cycle) and
// physical address relocation (flat per-core regions, or rank partitioning
// per the paper's 4-core methodology).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/llc.h"
#include "common/types.h"
#include "cpu/core.h"
#include "mem/memory_system.h"
#include "workload/trace.h"

namespace rop::mem {
class ShardPool;
}

namespace rop::cpu {

/// Simulation-loop strategy. All three produce bit-identical results
/// (enforced by the determinism tests); they differ only in which cycles
/// they prove skippable.
enum class LoopMode : std::uint8_t {
  /// Reference loop: every core cycles every CPU cycle, the memory ticks
  /// at every controller boundary.
  kNaive,
  /// The PR-3 strategy: event-driven memory clock, plus a CPU-clock jump
  /// only when *every* core is stalled on memory (the paper's frozen
  /// cycles). One running core forces per-cycle execution of all cores.
  kFrozenStall,
  /// Unified next-event loop: per-core next events (closed-form compute-gap
  /// retirement, sleeping stalled cores with wake back-fill) folded with
  /// the memory next-event bound, so the clock jumps whenever *each* core
  /// is individually in a provably pure span.
  kEventDriven,
};

struct SystemConfig {
  std::uint32_t cpu_ratio = 4;  // 3.2 GHz cores over an 800 MHz controller
  CoreConfig core{};
  cache::LlcConfig llc{};
  bool shared_llc = true;   // multi-core: one LLC shared by all cores
  bool rank_partition = false;  // paper §IV-A rank-aware mapping
  /// See LoopMode; kNaive is the cross-checking reference.
  LoopMode loop = LoopMode::kEventDriven;
  /// > 0: run the channel-sharded loop with this many shards (clamped to
  /// the channel count). Requires kEventDriven, per-channel stats on the
  /// memory system, and no trace sink; bit-identical to the serial loop
  /// (see mem/shard_pool.h). 0 = the serial loops above.
  std::uint32_t shard_channels = 0;
};

/// Per-core results frozen the cycle the core crossed its instruction
/// target (standard multi-programmed methodology: the run continues so
/// contention stays realistic, but metrics stop accumulating).
struct CoreResult {
  std::uint64_t instructions = 0;
  std::uint64_t cpu_cycles = 0;
  double ipc = 0.0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writebacks = 0;

  /// CPI stack frozen with the rest of the metrics. Disjoint categories
  /// summing exactly to cpu_cycles: any still-unresolved critical span is
  /// folded into `other_cycles` at freeze time (see
  /// Core::unresolved_stall_cycles).
  std::uint64_t retire_cycles = 0;
  std::uint64_t stall_mlp_cycles = 0;
  std::uint64_t stall_port_cycles = 0;
  std::uint64_t stall_mem_queue_cycles = 0;
  std::uint64_t stall_mem_bank_cycles = 0;
  std::uint64_t stall_mem_cas_cycles = 0;
  std::uint64_t stall_mem_bus_cycles = 0;
  std::uint64_t stall_refresh_rank_cycles = 0;
  std::uint64_t stall_refresh_bank_cycles = 0;
  std::uint64_t stall_refresh_subarray_cycles = 0;
  std::uint64_t stall_refresh_pause_cycles = 0;
  std::uint64_t stall_rop_sram_cycles = 0;
  std::uint64_t other_cycles = 0;

  [[nodiscard]] std::uint64_t cpi_stack_sum() const {
    return retire_cycles + stall_mlp_cycles + stall_port_cycles +
           stall_mem_queue_cycles + stall_mem_bank_cycles +
           stall_mem_cas_cycles + stall_mem_bus_cycles +
           stall_refresh_rank_cycles + stall_refresh_bank_cycles +
           stall_refresh_subarray_cycles + stall_refresh_pause_cycles +
           stall_rop_sram_cycles + other_cycles;
  }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(instructions, cpu_cycles, ipc, mem_reads, mem_writebacks,
       retire_cycles, stall_mlp_cycles, stall_port_cycles,
       stall_mem_queue_cycles, stall_mem_bank_cycles, stall_mem_cas_cycles,
       stall_mem_bus_cycles, stall_refresh_rank_cycles,
       stall_refresh_bank_cycles, stall_refresh_subarray_cycles,
       stall_refresh_pause_cycles, stall_rop_sram_cycles, other_cycles);
  }
};

struct RunResult {
  std::vector<CoreResult> cores;
  std::uint64_t cpu_cycles = 0;  // cycles until every core crossed target
  Cycle mem_cycles = 0;
  bool hit_cycle_limit = false;

  [[nodiscard]] double ipc(std::size_t core) const { return cores.at(core).ipc; }
};

class System final : public MemoryPort {
 public:
  /// `traces` supplies one source per core; all pointers must outlive the
  /// system. The memory system must be configured with enough ranks when
  /// rank partitioning is on.
  System(const SystemConfig& cfg, mem::MemorySystem& memory,
         std::vector<workload::TraceSource*> traces);
  ~System() override;

  /// Run until every core has retired `target_instructions` (or the cycle
  /// limit is reached). Returns frozen per-core metrics. Equivalent to
  /// begin_run + advance_until(max) + finish_run.
  RunResult run(std::uint64_t target_instructions,
                std::uint64_t max_cpu_cycles);

  /// Segmented execution, the substrate for checkpoints and sampling.
  /// begin_run arms the loop (and builds the shard pool when sharded);
  /// advance_until executes until `stop_cpu` (clamped to the cycle limit)
  /// or until every core crossed the target, returning true when the run
  /// is over (all crossed, or limit hit); finish_run settles cores,
  /// sampler, and memory, and produces the result. A run split at any
  /// advance_until boundary executes bit-identical operations to the
  /// unbroken run: stops land either between executed CPU cycles or at a
  /// clamped bulk-advance target, both of which compose exactly (pure-span
  /// run_until is additive, and a mid-span memory-window visit is a
  /// provable no-op tick).
  void begin_run(std::uint64_t target_instructions,
                 std::uint64_t max_cpu_cycles);
  bool advance_until(std::uint64_t stop_cpu);
  RunResult finish_run();

  /// Sampled-execution fast-forward (SMARTS functional warming): drain the
  /// cores' outstanding misses, retire `instructions_per_core` on every
  /// core via Core::functional_advance (LLC warmed, RNG stream preserved,
  /// no memory requests), advance the memory event-driven through the
  /// estimated span (refreshes fire at their natural times with no demand
  /// arrivals), then re-align all clocks to one window boundary so
  /// detailed execution can resume. Serial loops only (no shard pool).
  /// Returns the CPU cycles the window consumed.
  std::uint64_t functional_window(std::uint64_t instructions_per_core,
                                  Cycle critical_penalty);

  [[nodiscard]] bool run_active() const { return loop_.active; }
  [[nodiscard]] std::uint64_t cpu_cycle() const { return loop_.cpu_cycle; }
  [[nodiscard]] std::uint64_t max_cpu_cycles() const {
    return loop_.max_cpu_cycles;
  }
  /// Cores still short of the instruction target (0 = natural end).
  [[nodiscard]] std::uint64_t cores_remaining() const {
    return loop_.remaining;
  }

  // MemoryPort
  std::optional<RequestId> issue_read(CoreId core, Address addr) override;
  bool issue_write(CoreId core, Address addr) override;

  [[nodiscard]] std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(cores_.size());
  }
  [[nodiscard]] const Core& core(CoreId c) const { return *cores_.at(c); }
  [[nodiscard]] const cache::Llc& shared_llc() const { return shared_llc_; }
  [[nodiscard]] Cycle mem_now() const { return mem_now_; }
  [[nodiscard]] std::uint32_t cpu_ratio() const { return cfg_.cpu_ratio; }

  /// Snapshot serialization: the live loop cursor, partial results, memory
  /// clock flags, the shared LLC, every core, and (when sharded) the pool's
  /// per-channel event clocks. Legal only between advance_until calls of
  /// an active run; the restoring side must have called begin_run with the
  /// same spec so the pool exists on both sides.
  template <class Ar>
  void io(Ar& ar) {
    ar(loop_, mem_now_, mem_dirty_);
    ar.field(shared_llc_);
    for (auto& core : cores_) ar.field(*core);
    if (pool_ != nullptr) ar.field(*pool_);
  }

 private:
  /// The run() loop cursor, hoisted into a member so a snapshot taken
  /// between advance_until segments captures the exact loop-visit state
  /// (Controller::tick is not idempotent — the split run must execute
  /// literally the same operations, not just reach the same cycle).
  struct LoopState {
    bool active = false;
    std::uint64_t target_instructions = 0;
    std::uint64_t max_cpu_cycles = 0;
    std::uint64_t cpu_cycle = 0;
    std::uint64_t next_window_cpu = 0;  // first CPU cycle of the next window
    Cycle mem_next_event = 0;  // next memory cycle whose tick must execute
    std::vector<bool> crossed;
    std::uint64_t remaining = 0;
    std::vector<CoreResult> partial;  // crossing snapshots, frozen

    template <class Ar>
    void io(Ar& ar) {
      ar(active, target_instructions, max_cpu_cycles, cpu_cycle,
         next_window_cpu, mem_next_event, crossed, remaining, partial);
    }
  };

  /// Freeze core `c`'s metrics at its instruction-target crossing.
  void record_crossing(std::size_t c);

  /// Copy core `c`'s CPI-stack ledger into `r`, folding any unresolved
  /// critical span into `other` so the published stack sums to cpu_cycles.
  void freeze_cpi_stack(std::size_t c, CoreResult& r) const;

  /// Decompose a completed fill into CPU-cycle blame components for
  /// Core::attribute_critical_span (pure function of the request).
  [[nodiscard]] FillInfo make_fill(const mem::Request& req) const;

  /// Relocate a core-local address into the physical address space (bases
  /// precomputed at construction; see reloc_base_line_).
  [[nodiscard]] Address relocate(CoreId core, Address local) const;

  /// True when every core is blocked on an outstanding critical load —
  /// the "frozen cycles" of the paper's title.
  [[nodiscard]] bool all_cores_stalled() const;

  /// Highest CPU cycle the whole system can be bulk-advanced to from
  /// `cpu_cycle` (exclusive caps folded: memory next event / dirty
  /// boundary, per-core next events, instruction-target crossings). A
  /// result <= cpu_cycle means the next cycle must execute.
  [[nodiscard]] std::uint64_t skip_target(
      std::uint64_t cpu_cycle, std::uint64_t next_window_cpu,
      Cycle mem_next_event, std::uint64_t target_instructions,
      std::uint64_t max_cpu_cycles, const std::vector<bool>& crossed) const;

  /// Per-core registry mirrors ("coreN.*"), resolved at construction and
  /// published once at the end of run().
  struct CoreStatHandles {
    Counter* instructions = nullptr;
    Counter* cycles = nullptr;
    Counter* stall_cycles = nullptr;
    Counter* mem_reads = nullptr;
    Counter* mem_fills = nullptr;
    Counter* mem_writebacks = nullptr;
    // CPI-stack mirrors ("coreN.cpi.*"), published once at finish_run.
    Counter* cpi_retire = nullptr;
    Counter* cpi_stall_mlp = nullptr;
    Counter* cpi_stall_port = nullptr;
    Counter* cpi_mem_queue = nullptr;
    Counter* cpi_mem_bank = nullptr;
    Counter* cpi_mem_cas = nullptr;
    Counter* cpi_mem_bus = nullptr;
    Counter* cpi_refresh_rank = nullptr;
    Counter* cpi_refresh_bank = nullptr;
    Counter* cpi_refresh_subarray = nullptr;
    Counter* cpi_refresh_pause = nullptr;
    Counter* cpi_rop_sram = nullptr;
    Counter* cpi_other = nullptr;
  };

  SystemConfig cfg_;
  mem::MemorySystem& memory_;
  cache::Llc shared_llc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<CoreStatHandles> core_stat_handles_;
  /// Flat-layout relocation, hoisted out of the per-request path: each
  /// core's region base line and the shared region size (relocate() pays
  /// the modulo only when a footprint actually exceeds its region).
  /// reloc_rank_ is the precomputed `core % ranks` for rank partitioning.
  std::uint64_t region_lines_ = 0;
  std::vector<std::uint64_t> reloc_base_line_;
  std::vector<std::uint32_t> reloc_rank_;
  /// CAS latency and data-burst length in CPU cycles, precomputed from the
  /// memory timings for make_fill.
  std::uint64_t cas_cpu_ = 0;
  std::uint64_t bus_cpu_ = 0;
  Cycle mem_now_ = 0;
  /// Set by issue_read/issue_write when a request lands: the cached
  /// next-event cycle is stale and the next boundary tick must execute.
  bool mem_dirty_ = false;
  /// Live between begin_run and finish_run when cfg_.shard_channels > 0:
  /// lets the issue hooks re-arm just the channel that accepted the
  /// request, and carries the per-channel event clocks across snapshots.
  std::unique_ptr<mem::ShardPool> pool_;
  LoopState loop_;
};

}  // namespace rop::cpu
