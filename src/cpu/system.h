// Multi-core system assembly: cores + LLC + the memory system, with clock
// coupling (the CPU runs `cpu_ratio` cycles per controller cycle) and
// physical address relocation (flat per-core regions, or rank partitioning
// per the paper's 4-core methodology).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/llc.h"
#include "common/types.h"
#include "cpu/core.h"
#include "mem/memory_system.h"
#include "workload/trace.h"

namespace rop::cpu {

struct SystemConfig {
  std::uint32_t cpu_ratio = 4;  // 3.2 GHz cores over an 800 MHz controller
  CoreConfig core{};
  cache::LlcConfig llc{};
  bool shared_llc = true;   // multi-core: one LLC shared by all cores
  bool rank_partition = false;  // paper §IV-A rank-aware mapping
  /// Event-driven memory clock: skip memory ticks between controller
  /// events (even while cores run), and when every core is stalled on
  /// memory jump the CPU clock to the next event instead of spinning.
  /// Results are bit-identical to the naive per-cycle loop (enforced by
  /// the determinism tests); set false to run the naive loop for
  /// cross-checking.
  bool fast_forward = true;
};

/// Per-core results frozen the cycle the core crossed its instruction
/// target (standard multi-programmed methodology: the run continues so
/// contention stays realistic, but metrics stop accumulating).
struct CoreResult {
  std::uint64_t instructions = 0;
  std::uint64_t cpu_cycles = 0;
  double ipc = 0.0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writebacks = 0;
};

struct RunResult {
  std::vector<CoreResult> cores;
  std::uint64_t cpu_cycles = 0;  // cycles until every core crossed target
  Cycle mem_cycles = 0;
  bool hit_cycle_limit = false;

  [[nodiscard]] double ipc(std::size_t core) const { return cores.at(core).ipc; }
};

class System final : public MemoryPort {
 public:
  /// `traces` supplies one source per core; all pointers must outlive the
  /// system. The memory system must be configured with enough ranks when
  /// rank partitioning is on.
  System(const SystemConfig& cfg, mem::MemorySystem& memory,
         std::vector<workload::TraceSource*> traces);

  /// Run until every core has retired `target_instructions` (or the cycle
  /// limit is reached). Returns frozen per-core metrics.
  RunResult run(std::uint64_t target_instructions,
                std::uint64_t max_cpu_cycles);

  // MemoryPort
  std::optional<RequestId> issue_read(CoreId core, Address addr) override;
  bool issue_write(CoreId core, Address addr) override;

  [[nodiscard]] std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(cores_.size());
  }
  [[nodiscard]] const Core& core(CoreId c) const { return *cores_.at(c); }
  [[nodiscard]] const cache::Llc& shared_llc() const { return shared_llc_; }
  [[nodiscard]] Cycle mem_now() const { return mem_now_; }

 private:
  /// Relocate a core-local address into the physical address space.
  [[nodiscard]] Address relocate(CoreId core, Address local) const;

  /// True when every core is blocked on an outstanding critical load —
  /// the "frozen cycles" of the paper's title.
  [[nodiscard]] bool all_cores_stalled() const;

  /// Per-core registry mirrors ("coreN.*"), resolved at construction and
  /// published once at the end of run().
  struct CoreStatHandles {
    Counter* instructions = nullptr;
    Counter* cycles = nullptr;
    Counter* stall_cycles = nullptr;
    Counter* mem_reads = nullptr;
    Counter* mem_fills = nullptr;
    Counter* mem_writebacks = nullptr;
  };

  SystemConfig cfg_;
  mem::MemorySystem& memory_;
  cache::Llc shared_llc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<CoreStatHandles> core_stat_handles_;
  Cycle mem_now_ = 0;
  /// Set by issue_read/issue_write when a request lands: the cached
  /// next-event cycle is stale and the next boundary tick must execute.
  bool mem_dirty_ = false;
};

}  // namespace rop::cpu
