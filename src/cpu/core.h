// Trace-driven core model.
//
// The core retires up to `issue_width` instructions per CPU cycle from the
// compute gaps in its trace. Memory reads that miss the LLC become memory
// requests; the core keeps executing past outstanding misses up to
// `max_outstanding` (a bounded-MLP approximation of an out-of-order window)
// and stalls when the budget is exhausted. Stores retire immediately
// (write-allocate fills and dirty writebacks generate memory traffic but do
// not stall retirement beyond the same MLP budget).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "cache/llc.h"
#include "common/rng.h"
#include "common/types.h"
#include "workload/trace.h"

namespace rop::cpu {

struct CoreConfig {
  std::uint32_t issue_width = 4;
  std::uint32_t max_outstanding = 8;  // in-flight LLC miss budget (MLP)
  /// Fraction of LLC-miss loads whose value feeds the instruction window
  /// immediately: the core stalls until their data returns. This models
  /// dependency chains an out-of-order window cannot hide and is what
  /// makes the core latency-sensitive (without it, bounded MLP alone
  /// hides nearly all memory latency).
  double critical_load_fraction = 0.35;
  std::uint64_t seed = 0xC0DEULL;  // criticality draw
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t stall_cycles = 0;   // cycles with zero retirement
  std::uint64_t mem_reads = 0;      // LLC read misses sent to memory
  std::uint64_t mem_fills = 0;      // write-allocate fills sent to memory
  std::uint64_t mem_writebacks = 0;

  // CPI-stack ledger (telemetry/attribution.h): a disjoint decomposition
  // of `cycles`. Every executed cycle bills exactly one category; the span
  // spent asleep on a critical load is billed at wake, decomposed from the
  // fill's lifecycle stamps (Core::on_read_complete). Invariant — enforced
  // by SimChecker::audit_cpi and the attribution tests:
  //   sum(categories) + unresolved critical span == cycles, always.
  std::uint64_t retire_cycles = 0;            // >= 1 instruction retired
  std::uint64_t stall_mlp_cycles = 0;         // outstanding-miss budget full
  std::uint64_t stall_port_cycles = 0;        // memory queue rejected the op
  std::uint64_t stall_mem_queue_cycles = 0;   // critical fill: queue wait
  std::uint64_t stall_mem_bank_cycles = 0;    // critical fill: ACT wait
  std::uint64_t stall_mem_cas_cycles = 0;     // critical fill: CAS latency
  std::uint64_t stall_mem_bus_cycles = 0;     // critical fill: data burst
  std::uint64_t stall_refresh_rank_cycles = 0;      // rank REF lock
  std::uint64_t stall_refresh_bank_cycles = 0;      // per-bank REFpb lock
  std::uint64_t stall_refresh_subarray_cycles = 0;  // subarray lock
  std::uint64_t stall_refresh_pause_cycles = 0;     // pausing segments
  std::uint64_t stall_rop_sram_cycles = 0;    // residual wait of SRAM fills
  std::uint64_t other_cycles = 0;  // align/functional jumps, end-of-run

  [[nodiscard]] double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Sum of the CPI-stack categories; equals `cycles` minus the span of a
  /// still-unresolved critical load (see Core::unresolved_stall_cycles).
  [[nodiscard]] std::uint64_t cpi_category_sum() const {
    return retire_cycles + stall_mlp_cycles + stall_port_cycles +
           stall_mem_queue_cycles + stall_mem_bank_cycles +
           stall_mem_cas_cycles + stall_mem_bus_cycles +
           stall_refresh_rank_cycles + stall_refresh_bank_cycles +
           stall_refresh_subarray_cycles + stall_refresh_pause_cycles +
           stall_rop_sram_cycles + other_cycles;
  }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(instructions, cycles, stall_cycles, mem_reads, mem_fills,
       mem_writebacks, retire_cycles, stall_mlp_cycles, stall_port_cycles,
       stall_mem_queue_cycles, stall_mem_bank_cycles, stall_mem_cas_cycles,
       stall_mem_bus_cycles, stall_refresh_rank_cycles,
       stall_refresh_bank_cycles, stall_refresh_subarray_cycles,
       stall_refresh_pause_cycles, stall_rop_sram_cycles, other_cycles);
  }
};

/// Decomposition of one completed memory fill, in CPU cycles — built by
/// cpu::System from the request's lifecycle stamps and handed to
/// Core::on_read_complete so the woken core can attribute its critical
/// stall span. Components are clipped sequentially against the actual
/// span, so over-approximation (ratio rounding, forward-charged refresh
/// blocking) never breaks the cycles invariant.
struct FillInfo {
  std::uint64_t refresh_rank = 0;   // rank REF lock wait
  std::uint64_t refresh_bank = 0;   // per-bank REFpb lock wait
  std::uint64_t refresh_sub = 0;    // subarray lock wait
  std::uint64_t refresh_pause = 0;  // pausing-segment wait
  std::uint64_t act_wait = 0;       // row activation (bank/row conflict)
  std::uint64_t cas = 0;            // column-access latency
  std::uint64_t bus = 0;            // data-burst transfer
  bool sram = false;                // serviced by the ROP SRAM buffer
};

/// Callback the core uses to push a request into the memory hierarchy.
/// Returns false when the memory cannot accept it this cycle (retry next).
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  /// Returns the request id on acceptance, nullopt when the memory cannot
  /// take the request this cycle (retry next).
  virtual std::optional<RequestId> issue_read(CoreId core, Address addr) = 0;
  virtual bool issue_write(CoreId core, Address addr) = 0;
};

class Core {
 public:
  Core(CoreId id, const CoreConfig& cfg, const cache::LlcConfig& llc_cfg,
       workload::TraceSource& trace, MemoryPort& port);

  /// If true, this core shares an external LLC (multi-core); its private
  /// LLC is bypassed. Must be set before the first cycle.
  void set_shared_llc(cache::Llc* shared) { shared_llc_ = shared; }

  /// Advance one CPU cycle. This is the reference implementation every
  /// bulk-advance path must be bit-identical to.
  void cycle();

  /// A read this core issued has completed at CPU cycle `now_cycle`. If it
  /// was the critical load blocking retirement, the slept span (cycles the
  /// event loop never executed on this core) is back-filled as stall in one
  /// add — zero in the per-cycle modes, where a stalled core is billed
  /// every cycle and `cycles` already equals `now_cycle` — and the whole
  /// critical span [critical_since_, now_cycle) is attributed across the
  /// CPI-stack categories from `fill`. The span is identical in every loop
  /// mode (critical_since_ is set at issue, now_cycle is the delivery
  /// cycle, and both are pinned bit-identical), so the decomposition is
  /// mode-invariant by construction.
  void on_read_complete(RequestId id, std::uint64_t now_cycle,
                        const FillInfo& fill) {
    ROP_ASSERT(outstanding_ > 0);
    --outstanding_;
    if (critical_pending_ && *critical_pending_ == id) {
      ROP_ASSERT(now_cycle >= stats_.cycles);
      const std::uint64_t slept = now_cycle - stats_.cycles;
      stats_.cycles += slept;
      stats_.stall_cycles += slept;
      critical_pending_.reset();
      attribute_critical_span(now_cycle, fill);
    }
  }
  void on_read_complete(RequestId id, std::uint64_t now_cycle) {
    on_read_complete(id, now_cycle, FillInfo{});
  }

  /// True while retirement is blocked on an outstanding critical load. In
  /// this state cycle() is a pure stall (cycles and stall_cycles advance,
  /// nothing else), which is what lets the core sleep until the fill
  /// returns.
  [[nodiscard]] bool stalled_on_memory() const {
    return critical_pending_.has_value();
  }

  /// Highest CPU cycle this core can be bulk-advanced to with run_until —
  /// i.e. every cycle before it is provably pure (stall or closed-form gap
  /// retirement). kNeverCycle while asleep on a critical load: the wake
  /// (on_read_complete) bounds the span, not the core. Equal to `cycles`
  /// when the next cycle must execute for real (a memory op, or a trace
  /// fetch — never prefetched, so the RNG draw order matches the naive
  /// loop).
  [[nodiscard]] std::uint64_t next_event_cycle() const {
    if (critical_pending_) return kNeverCycle;
    if (!have_record_) return stats_.cycles;
    return stats_.cycles + remaining_gap_ / cfg_.issue_width;
  }

  /// Advance to `target_cycle` in closed form — exactly equivalent to
  /// calling cycle() `target_cycle - cycles` times. Legal only over pure
  /// spans: while stalled on memory (bulk stall billing), or while the
  /// remaining compute gap covers the whole span at `issue_width` per
  /// cycle (see next_event_cycle). No-op when already at or past the
  /// target, so callers may settle all cores unconditionally.
  void run_until(std::uint64_t target_cycle) {
    if (target_cycle <= stats_.cycles) return;
    const std::uint64_t n = target_cycle - stats_.cycles;
    stats_.cycles = target_cycle;
    if (critical_pending_) {
      // Part of the critical span: attributed at wake (or settled into
      // `other` at end of run), never billed here.
      stats_.stall_cycles += n;
      return;
    }
    ROP_ASSERT(have_record_);
    ROP_ASSERT(remaining_gap_ / cfg_.issue_width >= n);
    stats_.instructions += n * cfg_.issue_width;
    stats_.retire_cycles += n;
    remaining_gap_ -= static_cast<std::uint32_t>(n * cfg_.issue_width);
  }

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] std::uint32_t outstanding() const { return outstanding_; }
  [[nodiscard]] const cache::Llc& llc() const { return private_llc_; }
  [[nodiscard]] cache::Llc& private_llc() { return private_llc_; }

  // Micro-architectural state accessors for the determinism suite: a
  // bulk-advanced core must be indistinguishable from one that executed
  // every cycle.
  [[nodiscard]] std::uint32_t remaining_gap() const { return remaining_gap_; }
  [[nodiscard]] bool have_record() const { return have_record_; }
  [[nodiscard]] bool mem_op_pending() const { return mem_op_pending_; }
  [[nodiscard]] const std::optional<Address>& pending_writeback() const {
    return pending_writeback_;
  }
  [[nodiscard]] const std::optional<RequestId>& critical_pending() const {
    return critical_pending_;
  }
  [[nodiscard]] const Rng& rng() const { return rng_; }

  /// Cycles of a still-pending critical load not yet attributed to any
  /// CPI-stack category (the span is decomposed at wake). Exports fold
  /// this into `other_cycles` at copy time so the published stack always
  /// sums to `cycles`, without mutating live core state.
  [[nodiscard]] std::uint64_t unresolved_stall_cycles() const {
    return critical_pending_ ? stats_.cycles - critical_since_ : 0;
  }

  /// Functional warming for the sampled loop: retire `instructions` without
  /// issuing any memory request. Trace records are consumed, the active LLC
  /// is warmed (fills happen, writebacks are dropped — there is no memory
  /// to receive them), and the criticality RNG is drawn per demand-read
  /// miss so the random stream tracks where detailed execution would have
  /// taken it. Cycle cost is the closed-form estimate: compute slots at
  /// `issue_width` per cycle, one cycle per memory op, plus
  /// `critical_penalty` per critical demand-read miss. Returns the cycles
  /// charged; stats_.instructions/cycles advance, memory-traffic counters
  /// do not (no requests exist). Requires no outstanding misses — the
  /// caller drains in-flight reads before switching to functional mode.
  std::uint64_t functional_advance(std::uint64_t instructions,
                                   Cycle critical_penalty);

  /// Sampled-mode clock alignment: jump this core's clock to
  /// `target_cycle`, billing the span as stall. Functional windows leave
  /// cores at heterogeneous estimated clocks; detailed execution needs
  /// them on one global cycle (run_until cannot do this — it requires a
  /// provably pure span, which an estimated jump is not).
  void align_cycles(std::uint64_t target_cycle) {
    if (target_cycle <= stats_.cycles) return;
    const std::uint64_t span = target_cycle - stats_.cycles;
    stats_.stall_cycles += span;
    // An estimated jump has no micro-architectural cause to blame.
    if (!critical_pending_) stats_.other_cycles += span;
    stats_.cycles = target_cycle;
  }

  /// Snapshot serialization: trace cursor, retirement state, MLP window,
  /// criticality RNG, stats, and the private LLC. The shared-LLC pointer
  /// and trace source are wired by the owner (the trace serializes
  /// separately).
  template <class Ar>
  void io(Ar& ar) {
    ar(current_, have_record_, remaining_gap_, pending_writeback_,
       mem_op_pending_, outstanding_, critical_pending_, critical_since_,
       rng_, stats_, private_llc_);
  }

 private:
  /// Why the most recent zero-retirement cycle retired nothing. Set by
  /// do_mem_op before every failing return; consumed by cycle() the same
  /// cycle, so it is dead state between cycles and never serialized.
  enum class BlockReason : std::uint8_t { kNone, kMlp, kPort };

  /// Attempt the memory operation of the current record. Returns true when
  /// it retired (the core may advance to the next record).
  bool do_mem_op();

  /// Decompose the just-ended critical span [critical_since_, now_cycle)
  /// across the CPI-stack categories. Components are clipped sequentially:
  /// refresh causes first (the headline metric gets full credit), then the
  /// SRAM-fill residual or the ACT/CAS/bus chain, with whatever remains
  /// billed as queue wait. Clipping absorbs cpu-ratio rounding and the
  /// forward-charged over-approximation of refresh blocking, so the sum
  /// never exceeds the actual span.
  void attribute_critical_span(std::uint64_t now_cycle, const FillInfo& fill) {
    std::uint64_t rem = now_cycle - critical_since_;
    const auto clip = [&rem](std::uint64_t want) {
      const std::uint64_t take = std::min(want, rem);
      rem -= take;
      return take;
    };
    stats_.stall_refresh_rank_cycles += clip(fill.refresh_rank);
    stats_.stall_refresh_bank_cycles += clip(fill.refresh_bank);
    stats_.stall_refresh_subarray_cycles += clip(fill.refresh_sub);
    stats_.stall_refresh_pause_cycles += clip(fill.refresh_pause);
    if (fill.sram) {
      // Everything past the refresh locks was spent waiting on the SRAM
      // buffer path — the revived-service residual.
      stats_.stall_rop_sram_cycles += rem;
    } else {
      stats_.stall_mem_bank_cycles += clip(fill.act_wait);
      stats_.stall_mem_cas_cycles += clip(fill.cas);
      stats_.stall_mem_bus_cycles += clip(fill.bus);
      stats_.stall_mem_queue_cycles += rem;
    }
  }
  [[nodiscard]] cache::Llc& active_llc() {
    return shared_llc_ != nullptr ? *shared_llc_ : private_llc_;
  }

  CoreId id_;
  CoreConfig cfg_;
  cache::Llc private_llc_;
  cache::Llc* shared_llc_ = nullptr;
  workload::TraceSource& trace_;
  MemoryPort& port_;

  workload::TraceRecord current_{};
  bool have_record_ = false;
  std::uint32_t remaining_gap_ = 0;
  std::optional<Address> pending_writeback_;
  bool mem_op_pending_ = false;  // current record's op could not issue yet

  std::uint32_t outstanding_ = 0;
  std::optional<RequestId> critical_pending_;
  // CPU cycle the pending critical load issued at — start of the span
  // attribute_critical_span decomposes at wake. Loop-invariant: set inside
  // do_mem_op, which every loop mode executes at the same cycle.
  std::uint64_t critical_since_ = 0;
  BlockReason block_reason_ = BlockReason::kNone;
  Rng rng_;
  CoreStats stats_;
};

}  // namespace rop::cpu
