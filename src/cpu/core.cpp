#include "cpu/core.h"

#include <algorithm>

namespace rop::cpu {

Core::Core(CoreId id, const CoreConfig& cfg, const cache::LlcConfig& llc_cfg,
           workload::TraceSource& trace, MemoryPort& port)
    : id_(id),
      cfg_(cfg),
      private_llc_(llc_cfg),
      trace_(trace),
      port_(port),
      rng_(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {
  ROP_ASSERT(cfg.issue_width > 0);
  ROP_ASSERT(cfg.max_outstanding > 0);
}

bool Core::do_mem_op() {
  // A dirty writeback from a previous fill must drain first (it holds the
  // single writeback buffer slot).
  if (pending_writeback_) {
    if (!port_.issue_write(id_, *pending_writeback_)) {
      block_reason_ = BlockReason::kPort;
      return false;
    }
    ++stats_.mem_writebacks;
    pending_writeback_.reset();
  }

  cache::Llc& llc = active_llc();
  if (!mem_op_pending_) {
    const cache::LlcAccessResult res = llc.access(current_.addr,
                                                  current_.is_write);
    if (res.writeback) pending_writeback_ = *res.writeback;
    if (res.hit) {
      return true;  // LLC hit: retires with no memory traffic
    }
    mem_op_pending_ = true;  // a fill read must reach memory
  }

  // The fill occupies an outstanding-miss slot regardless of load/store.
  if (outstanding_ >= cfg_.max_outstanding) {
    block_reason_ = BlockReason::kMlp;
    return false;
  }
  const auto id = port_.issue_read(id_, current_.addr);
  if (!id) {
    block_reason_ = BlockReason::kPort;
    return false;
  }
  ++outstanding_;
  if (current_.is_write) {
    ++stats_.mem_fills;
  } else {
    ++stats_.mem_reads;
    // A critical load's value is needed right away: retirement blocks
    // until the fill returns.
    if (rng_.next_bool(cfg_.critical_load_fraction)) {
      critical_pending_ = *id;
      critical_since_ = stats_.cycles;
    }
  }
  mem_op_pending_ = false;
  return true;
}

void Core::cycle() {
  ++stats_.cycles;
  if (critical_pending_) {
    ++stats_.stall_cycles;
    return;  // blocked on an outstanding critical load
  }
  std::uint32_t budget = cfg_.issue_width;
  const std::uint64_t retired_before = stats_.instructions;

  while (budget > 0) {
    if (!have_record_) {
      current_ = trace_.next();
      have_record_ = true;
      remaining_gap_ = current_.gap;
    }
    if (remaining_gap_ > 0) {
      const std::uint32_t take = std::min(budget, remaining_gap_);
      remaining_gap_ -= take;
      budget -= take;
      stats_.instructions += take;
      continue;
    }
    // Compute gap consumed: the record's memory operation is next.
    if (!do_mem_op()) break;  // stalled on MLP budget or full memory queue
    stats_.instructions += 1;  // the memory instruction itself
    budget -= 1;
    have_record_ = false;
    if (critical_pending_) break;  // the load's value gates retirement
  }

  if (stats_.instructions == retired_before) {
    ++stats_.stall_cycles;
    // Zero retirement always means do_mem_op failed on the first loop
    // iteration, so block_reason_ was set this cycle. Blocked cores run
    // cycle() every cycle in every loop mode (next_event_cycle == cycles
    // while mem_op_pending_), so this per-cycle billing is loop-invariant.
    if (block_reason_ == BlockReason::kMlp) {
      ++stats_.stall_mlp_cycles;
    } else {
      ++stats_.stall_port_cycles;
    }
  } else {
    ++stats_.retire_cycles;
  }
  block_reason_ = BlockReason::kNone;
}

std::uint64_t Core::functional_advance(std::uint64_t instructions,
                                       Cycle critical_penalty) {
  ROP_ASSERT(outstanding_ == 0);
  ROP_ASSERT(!critical_pending_);
  // Any writeback still waiting for the bus is dropped: there is no memory
  // in functional mode, and the LLC line it came from is already clean.
  pending_writeback_.reset();

  std::uint64_t retired = 0;
  std::uint64_t slots = 0;         // compute-gap issue slots consumed
  std::uint64_t extra_cycles = 0;  // memory ops + critical-miss penalties
  while (retired < instructions) {
    if (!have_record_) {
      current_ = trace_.next();
      have_record_ = true;
      remaining_gap_ = current_.gap;
    }
    if (remaining_gap_ > 0) {
      const std::uint64_t want = instructions - retired;
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining_gap_, want));
      remaining_gap_ -= take;
      retired += take;
      slots += take;
      continue;
    }
    // The record's memory operation. If a detailed window left the op
    // half-issued (mem_op_pending_), the LLC access already happened and
    // was a miss; otherwise access (and warm) the LLC now.
    bool miss;
    if (mem_op_pending_) {
      miss = true;
      mem_op_pending_ = false;
    } else {
      const cache::LlcAccessResult res =
          active_llc().access(current_.addr, current_.is_write);
      miss = !res.hit;  // res.writeback dropped: no memory to receive it
    }
    if (miss && !current_.is_write &&
        rng_.next_bool(cfg_.critical_load_fraction)) {
      extra_cycles += critical_penalty;
    }
    extra_cycles += 1;
    retired += 1;
    have_record_ = false;
  }

  const std::uint64_t cycles = slots / cfg_.issue_width + extra_cycles;
  stats_.instructions += retired;
  stats_.cycles += cycles;
  stats_.other_cycles += cycles;  // estimated, not micro-architecturally billed
  return cycles;
}

}  // namespace rop::cpu
