#include "cpu/system.h"

#include <algorithm>
#include <string>

#include "telemetry/epoch_sampler.h"

namespace rop::cpu {

System::System(const SystemConfig& cfg, mem::MemorySystem& memory,
               std::vector<workload::TraceSource*> traces)
    : cfg_(cfg), memory_(memory), shared_llc_(cfg.llc) {
  ROP_ASSERT(!traces.empty());
  ROP_ASSERT(cfg.cpu_ratio >= 1);
  StatRegistry& reg = *memory_.stats();
  const bool share = cfg.shared_llc && traces.size() > 1;
  if (share) shared_llc_.bind_stats(reg, "llc.");
  cores_.reserve(traces.size());
  core_stat_handles_.reserve(traces.size());
  for (CoreId c = 0; c < traces.size(); ++c) {
    ROP_ASSERT(traces[c] != nullptr);
    cores_.push_back(
        std::make_unique<Core>(c, cfg.core, cfg.llc, *traces[c], *this));
    if (share) {
      cores_.back()->set_shared_llc(&shared_llc_);
    } else {
      cores_.back()->private_llc().bind_stats(
          reg, "core" + std::to_string(c) + ".llc.");
    }
    const std::string prefix = "core" + std::to_string(c) + ".";
    CoreStatHandles h;
    h.instructions = reg.counter_handle(prefix + "instructions");
    h.cycles = reg.counter_handle(prefix + "cycles");
    h.stall_cycles = reg.counter_handle(prefix + "stall_cycles");
    h.mem_reads = reg.counter_handle(prefix + "mem_reads");
    h.mem_fills = reg.counter_handle(prefix + "mem_fills");
    h.mem_writebacks = reg.counter_handle(prefix + "mem_writebacks");
    core_stat_handles_.push_back(h);
  }
}

bool System::all_cores_stalled() const {
  for (const auto& core : cores_) {
    if (!core->stalled_on_memory()) return false;
  }
  return true;
}

Address System::relocate(CoreId core, Address local) const {
  const auto& map = memory_.address_map();
  const std::uint64_t local_line = local >> kLineShift;
  if (cfg_.rank_partition) {
    const std::uint32_t ranks = map.organization().ranks;
    return map.compose_in_rank(core % ranks, local_line);
  }
  // Flat layout: carve the physical space into equal per-core regions so
  // footprints never alias. Every region spans all ranks/banks (the default
  // interleaving cycles through them in the low address bits).
  const std::uint64_t total_lines = map.organization().total_lines();
  const std::uint64_t region_lines = total_lines / cores_.size();
  const std::uint64_t line =
      static_cast<std::uint64_t>(core) * region_lines +
      (local_line % region_lines);
  return line << kLineShift;
}

std::optional<RequestId> System::issue_read(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kRead)) return std::nullopt;
  const auto id = memory_.enqueue(phys, mem::ReqType::kRead, core, mem_now_);
  // The cached next-event answer is stale the moment a request lands; the
  // next boundary tick must execute to observe it.
  if (id) mem_dirty_ = true;
  return id;
}

bool System::issue_write(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kWrite)) return false;
  const bool ok =
      memory_.enqueue(phys, mem::ReqType::kWrite, core, mem_now_).has_value();
  if (ok) mem_dirty_ = true;
  return ok;
}

RunResult System::run(std::uint64_t target_instructions,
                      std::uint64_t max_cpu_cycles) {
  RunResult result;
  result.cores.resize(cores_.size());
  std::vector<bool> crossed(cores_.size(), false);
  std::size_t remaining = cores_.size();

  // Event-driven memory clock. Controller::next_event_cycle guarantees
  // every tick in (now, event) is a no-op for the frozen controller state,
  // so boundary ticks before the cached event are skipped even while cores
  // are running. An enqueue invalidates the cached answer, so it sets
  // mem_dirty_ (see issue_read/issue_write) and the next boundary tick
  // executes — which is also the first tick that can observe the request:
  // the naive tick(M) only sees arrivals <= M - 1. The memory clock itself
  // (mem_now_) advances at *every* boundary, ticked or not, so arrivals
  // are stamped identically to the naive loop.
  Cycle mem_next_event = 0;  // next memory cycle whose tick must execute
  mem_dirty_ = false;

  // Epoch boundaries must be sampled at every *visited* memory cycle, ticked
  // or not: a skipped tick is a provable no-op for the controllers, so the
  // registry state at the boundary is exactly what the naive loop would see.
  telemetry::EpochSampler* const sampler = memory_.sampler();

  std::uint64_t cpu_cycle = 0;
  while (cpu_cycle < max_cpu_cycles && remaining > 0) {
    if (cpu_cycle % cfg_.cpu_ratio == 0) {
      mem_now_ = cpu_cycle / cfg_.cpu_ratio;
      if (sampler != nullptr) sampler->advance_to(mem_now_);
      if (!cfg_.fast_forward || mem_dirty_ || mem_now_ >= mem_next_event) {
        memory_.tick(mem_now_);
        for (const mem::Request& req : memory_.drain_completed()) {
          cores_.at(req.core)->on_read_complete(req.id);
        }
        mem_dirty_ = false;
        if (cfg_.fast_forward) {
          mem_next_event = memory_.next_event_cycle(mem_now_);
        }
      }
    }
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      cores_[c]->cycle();
      if (!crossed[c] &&
          cores_[c]->stats().instructions >= target_instructions) {
        crossed[c] = true;
        --remaining;
        CoreResult& r = result.cores[c];
        const CoreStats& s = cores_[c]->stats();
        r.instructions = s.instructions;
        r.cpu_cycles = s.cycles;
        r.ipc = s.ipc();
        r.mem_reads = s.mem_reads + s.mem_fills;
        r.mem_writebacks = s.mem_writebacks;
      }
    }
    ++cpu_cycle;

    // Frozen-cycle fast-forward: with every core blocked on a critical
    // load, nothing can retire and no new request can arrive, so every CPU
    // cycle before the next forced memory tick is a pure stall. Jump
    // straight there instead of spinning through the frozen cycles.
    if (!cfg_.fast_forward || remaining == 0 || !all_cores_stalled()) {
      continue;
    }
    std::uint64_t target;
    if (mem_dirty_) {
      // A request arrived in this boundary window (the issuing core has
      // since stalled on it); its first observable tick is the next
      // boundary.
      target = ((cpu_cycle + cfg_.cpu_ratio - 1) / cfg_.cpu_ratio) *
               cfg_.cpu_ratio;
    } else if (mem_next_event <= max_cpu_cycles / cfg_.cpu_ratio) {
      target = mem_next_event * cfg_.cpu_ratio;
    } else {
      // No upcoming event inside the run (kNeverCycle, or past the cycle
      // limit): stall out the remainder. End-of-run accounting settles in
      // finalize(), at the same cycle as the naive loop.
      target = max_cpu_cycles;
    }
    if (target > max_cpu_cycles) target = max_cpu_cycles;
    if (target <= cpu_cycle) continue;
    const std::uint64_t skip = target - cpu_cycle;
    for (auto& core : cores_) core->skip_stalled_cycles(skip);
    cpu_cycle += skip;
  }

  result.hit_cycle_limit = remaining > 0;
  // Settle the sampler at the final memory cycle *before* the core-counter
  // mirror below: frozen-cycle skips may have jumped past epoch boundaries,
  // and emitting them lazily after the mirror would fold end-of-run core
  // totals into the last full epoch — breaking bit-identity with the naive
  // loop, which sampled those boundaries pre-mirror. The trailing partial
  // epoch (emitted by close() in finalize) captures the mirror in both modes.
  if (sampler != nullptr) sampler->advance_to(cpu_cycle / cfg_.cpu_ratio);
  // Freeze any core that never crossed (cycle-limit safety net).
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (crossed[c]) continue;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
  }

  // Mirror the final per-core counters into the registry (handles resolved
  // at construction). run() is called once per System.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c]->stats();
    const CoreStatHandles& h = core_stat_handles_[c];
    h.instructions->inc(s.instructions);
    h.cycles->inc(s.cycles);
    h.stall_cycles->inc(s.stall_cycles);
    h.mem_reads->inc(s.mem_reads);
    h.mem_fills->inc(s.mem_fills);
    h.mem_writebacks->inc(s.mem_writebacks);
  }

  result.cpu_cycles = cpu_cycle;
  result.mem_cycles = cpu_cycle / cfg_.cpu_ratio;
  memory_.finalize(result.mem_cycles);
  return result;
}

}  // namespace rop::cpu
