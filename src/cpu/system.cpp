#include "cpu/system.h"

#include <algorithm>
#include <string>

#include "mem/shard_pool.h"
#include "telemetry/epoch_sampler.h"

namespace rop::cpu {

System::System(const SystemConfig& cfg, mem::MemorySystem& memory,
               std::vector<workload::TraceSource*> traces)
    : cfg_(cfg), memory_(memory), shared_llc_(cfg.llc) {
  ROP_ASSERT(!traces.empty());
  ROP_ASSERT(cfg.cpu_ratio >= 1);
  StatRegistry& reg = *memory_.stats();
  const bool share = cfg.shared_llc && traces.size() > 1;
  if (share) shared_llc_.bind_stats(reg, "llc.");
  cores_.reserve(traces.size());
  core_stat_handles_.reserve(traces.size());
  for (CoreId c = 0; c < traces.size(); ++c) {
    ROP_ASSERT(traces[c] != nullptr);
    cores_.push_back(
        std::make_unique<Core>(c, cfg.core, cfg.llc, *traces[c], *this));
    if (share) {
      cores_.back()->set_shared_llc(&shared_llc_);
    } else {
      cores_.back()->private_llc().bind_stats(
          reg, "core" + std::to_string(c) + ".llc.");
    }
    const std::string prefix = "core" + std::to_string(c) + ".";
    CoreStatHandles h;
    h.instructions = reg.counter_handle(prefix + "instructions");
    h.cycles = reg.counter_handle(prefix + "cycles");
    h.stall_cycles = reg.counter_handle(prefix + "stall_cycles");
    h.mem_reads = reg.counter_handle(prefix + "mem_reads");
    h.mem_fills = reg.counter_handle(prefix + "mem_fills");
    h.mem_writebacks = reg.counter_handle(prefix + "mem_writebacks");
    h.cpi_retire = reg.counter_handle(prefix + "cpi.retire");
    h.cpi_stall_mlp = reg.counter_handle(prefix + "cpi.stall_mlp");
    h.cpi_stall_port = reg.counter_handle(prefix + "cpi.stall_port");
    h.cpi_mem_queue = reg.counter_handle(prefix + "cpi.mem_queue");
    h.cpi_mem_bank = reg.counter_handle(prefix + "cpi.mem_bank");
    h.cpi_mem_cas = reg.counter_handle(prefix + "cpi.mem_cas");
    h.cpi_mem_bus = reg.counter_handle(prefix + "cpi.mem_bus");
    h.cpi_refresh_rank = reg.counter_handle(prefix + "cpi.refresh_rank");
    h.cpi_refresh_bank = reg.counter_handle(prefix + "cpi.refresh_bank");
    h.cpi_refresh_subarray =
        reg.counter_handle(prefix + "cpi.refresh_subarray");
    h.cpi_refresh_pause = reg.counter_handle(prefix + "cpi.refresh_pause");
    h.cpi_rop_sram = reg.counter_handle(prefix + "cpi.rop_sram");
    h.cpi_other = reg.counter_handle(prefix + "cpi.other");
    core_stat_handles_.push_back(h);
  }

  // Fixed fill-latency components in CPU cycles, for make_fill.
  cas_cpu_ = static_cast<std::uint64_t>(memory_.config().timings.CL) *
             cfg_.cpu_ratio;
  bus_cpu_ = static_cast<std::uint64_t>(memory_.config().timings.tBL) *
             cfg_.cpu_ratio;

  // Relocation bases, hoisted out of the per-request path. Flat layout:
  // carve the physical space into equal per-core regions so footprints
  // never alias; every region spans all ranks/banks (the default
  // interleaving cycles through them in the low address bits).
  const auto& map = memory_.address_map();
  region_lines_ = map.organization().total_lines() / cores_.size();
  ROP_ASSERT(region_lines_ > 0);
  const std::uint32_t ranks = map.organization().ranks;
  reloc_base_line_.reserve(cores_.size());
  reloc_rank_.reserve(cores_.size());
  for (CoreId c = 0; c < cores_.size(); ++c) {
    reloc_base_line_.push_back(static_cast<std::uint64_t>(c) * region_lines_);
    reloc_rank_.push_back(c % ranks);
  }
}

System::~System() = default;

bool System::all_cores_stalled() const {
  for (const auto& core : cores_) {
    if (!core->stalled_on_memory()) return false;
  }
  return true;
}

Address System::relocate(CoreId core, Address local) const {
  const std::uint64_t local_line = local >> kLineShift;
  if (cfg_.rank_partition) {
    return memory_.address_map().compose_in_rank(reloc_rank_[core],
                                                 local_line);
  }
  // The modulo wrap only matters when the footprint exceeds the region;
  // typical footprints fit, making the common case a single add.
  const std::uint64_t offset =
      local_line < region_lines_ ? local_line : local_line % region_lines_;
  return (reloc_base_line_[core] + offset) << kLineShift;
}

std::optional<RequestId> System::issue_read(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kRead)) return std::nullopt;
  ChannelId ch = 0;
  const auto id =
      memory_.enqueue(phys, mem::ReqType::kRead, core, mem_now_, &ch);
  // The cached next-event answer is stale the moment a request lands; the
  // next boundary tick must execute to observe it. Sharded: only the
  // channel that accepted the request needs re-arming.
  if (id) {
    mem_dirty_ = true;
    if (pool_ != nullptr) pool_->note_enqueue(ch, mem_now_);
  }
  return id;
}

bool System::issue_write(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kWrite)) return false;
  ChannelId ch = 0;
  const bool ok =
      memory_.enqueue(phys, mem::ReqType::kWrite, core, mem_now_, &ch)
          .has_value();
  if (ok) {
    mem_dirty_ = true;
    if (pool_ != nullptr) pool_->note_enqueue(ch, mem_now_);
  }
  return ok;
}

std::uint64_t System::skip_target(std::uint64_t cpu_cycle,
                                  std::uint64_t next_window_cpu,
                                  Cycle mem_next_event,
                                  std::uint64_t target_instructions,
                                  std::uint64_t max_cpu_cycles,
                                  const std::vector<bool>& crossed) const {
  std::uint64_t target = max_cpu_cycles;
  // Memory cap. A dirty queue forces the next boundary tick (the first
  // tick that can observe the new request); otherwise every boundary
  // before mem_next_event is a provable no-op tick and needs no visit.
  if (mem_dirty_) {
    target = std::min(target, next_window_cpu);
  } else if (mem_next_event <= max_cpu_cycles / cfg_.cpu_ratio) {
    target = std::min(target, mem_next_event * cfg_.cpu_ratio);
  }
  // Per-core caps: a sleeping core imposes none (its wake bounds the span
  // through the memory cap); an awake core can be bulk-advanced through
  // its remaining compute gap, further capped at its instruction-target
  // crossing cycle so the crossing snapshot lands exactly where the naive
  // loop records it.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const Core& core = *cores_[c];
    std::uint64_t next = core.next_event_cycle();
    if (!crossed[c] && !core.stalled_on_memory()) {
      const CoreStats& s = core.stats();
      const std::uint64_t need = target_instructions - s.instructions;
      const std::uint64_t width = cfg_.core.issue_width;
      next = std::min(next, s.cycles + (need + width - 1) / width);
    }
    target = std::min(target, next);
    if (target <= cpu_cycle) return target;  // next cycle must execute
  }
  return target;
}

FillInfo System::make_fill(const mem::Request& req) const {
  FillInfo f;
  const std::uint64_t r = cfg_.cpu_ratio;
  f.refresh_rank = static_cast<std::uint64_t>(req.blocked_rank) * r;
  f.refresh_bank = static_cast<std::uint64_t>(req.blocked_bank) * r;
  f.refresh_sub = static_cast<std::uint64_t>(req.blocked_sub) * r;
  f.refresh_pause = static_cast<std::uint64_t>(req.blocked_pause) * r;
  f.sram = req.serviced_by == mem::ServicedBy::kSramBuffer;
  if (req.serviced_by == mem::ServicedBy::kDram) {
    if (req.act != kNeverCycle && req.issued != kNeverCycle &&
        req.issued > req.act) {
      f.act_wait = (req.issued - req.act) * r;
    }
    f.cas = cas_cpu_;
    f.bus = bus_cpu_;
  }
  // Write-forwarded reads keep all components zero: the whole span past
  // the refresh locks is queue wait on the write queue.
  return f;
}

void System::freeze_cpi_stack(std::size_t c, CoreResult& r) const {
  const CoreStats& s = cores_[c]->stats();
  r.retire_cycles = s.retire_cycles;
  r.stall_mlp_cycles = s.stall_mlp_cycles;
  r.stall_port_cycles = s.stall_port_cycles;
  r.stall_mem_queue_cycles = s.stall_mem_queue_cycles;
  r.stall_mem_bank_cycles = s.stall_mem_bank_cycles;
  r.stall_mem_cas_cycles = s.stall_mem_cas_cycles;
  r.stall_mem_bus_cycles = s.stall_mem_bus_cycles;
  r.stall_refresh_rank_cycles = s.stall_refresh_rank_cycles;
  r.stall_refresh_bank_cycles = s.stall_refresh_bank_cycles;
  r.stall_refresh_subarray_cycles = s.stall_refresh_subarray_cycles;
  r.stall_refresh_pause_cycles = s.stall_refresh_pause_cycles;
  r.stall_rop_sram_cycles = s.stall_rop_sram_cycles;
  r.other_cycles = s.other_cycles + cores_[c]->unresolved_stall_cycles();
}

void System::record_crossing(std::size_t c) {
  loop_.crossed[c] = true;
  --loop_.remaining;
  CoreResult& r = loop_.partial[c];
  const CoreStats& s = cores_[c]->stats();
  r.instructions = s.instructions;
  r.cpu_cycles = s.cycles;
  r.ipc = s.ipc();
  r.mem_reads = s.mem_reads + s.mem_fills;
  r.mem_writebacks = s.mem_writebacks;
  freeze_cpi_stack(c, r);
}

void System::begin_run(std::uint64_t target_instructions,
                       std::uint64_t max_cpu_cycles) {
  ROP_ASSERT(!loop_.active && "one run per System");
  loop_.active = true;
  loop_.target_instructions = target_instructions;
  loop_.max_cpu_cycles = max_cpu_cycles;
  loop_.cpu_cycle = 0;
  loop_.next_window_cpu = 0;
  loop_.mem_next_event = 0;
  loop_.crossed.assign(cores_.size(), false);
  loop_.remaining = cores_.size();
  loop_.partial.assign(cores_.size(), CoreResult{});
  mem_now_ = 0;
  mem_dirty_ = false;
  if (cfg_.shard_channels > 0) {
    // See mem/shard_pool.h for why per-channel advancement is
    // bit-identical to the serial loop.
    ROP_ASSERT(cfg_.loop == LoopMode::kEventDriven &&
               "channel sharding builds on the event-driven loop");
    ROP_ASSERT(memory_.per_channel_stats() &&
               "sharded channels must not share a registry");
    ROP_ASSERT(memory_.controller(0).trace() == nullptr &&
               "the trace sink interleaves channels and is order-sensitive");
    pool_ = std::make_unique<mem::ShardPool>(memory_, cfg_.shard_channels);
  } else {
    ROP_ASSERT(!memory_.per_channel_stats() &&
               "per-channel registries are only folded by the sharded loop");
  }
}

bool System::advance_until(std::uint64_t stop_cpu) {
  ROP_ASSERT(loop_.active);
  const LoopMode mode = cfg_.loop;
  const bool sharded = pool_ != nullptr;
  // Event-loop sleep/wake: a core blocked on a critical load is not
  // executed (nor billed) per cycle; its cycles/stall_cycles lag until the
  // wake back-fill in Core::on_read_complete or a bulk run_until catches
  // it up. The per-cycle modes bill stalled cores every cycle, so the
  // back-fill is zero there.
  const bool lazy_sleep = sharded || mode == LoopMode::kEventDriven;
  telemetry::EpochSampler* const sampler = memory_.sampler();
  const std::uint64_t stop = std::min(stop_cpu, loop_.max_cpu_cycles);

  // Hot locals, copied in at the segment edge and back out at exit.
  std::uint64_t cpu_cycle = loop_.cpu_cycle;
  std::uint64_t next_window_cpu = loop_.next_window_cpu;
  Cycle mem_next_event = loop_.mem_next_event;

  while (cpu_cycle < stop && loop_.remaining > 0) {
    // -- Memory-window entry: visit the boundary once per window. A
    // mid-window entry (a bulk advance or a segment stop landed between
    // boundaries) never ticks in the event modes: the skip caps guarantee
    // the current window's boundary tick was a provable no-op, so only
    // mem_now_/sampler bookkeeping runs.
    if (cpu_cycle >= next_window_cpu) {
      mem_now_ = cpu_cycle / cfg_.cpu_ratio;
      next_window_cpu = (mem_now_ + 1) * cfg_.cpu_ratio;
      if (sharded) {
        // Advance every channel through its own due ticks (folding epoch
        // boundaries on the way), then drain. A conservative-early bound
        // just makes this a cheap no-op visit.
        pool_->advance_to(mem_now_);
        pool_->for_each_completed([&](const mem::Request& req) {
          cores_[req.core]->on_read_complete(req.id, cpu_cycle,
                                             make_fill(req));
        });
        mem_dirty_ = false;
        mem_next_event = pool_->next_required_boundary(mem_now_);
      } else {
        if (sampler != nullptr) sampler->advance_to(mem_now_);
        if (mode == LoopMode::kNaive || mem_dirty_ ||
            mem_now_ >= mem_next_event) {
          memory_.tick(mem_now_);
          memory_.for_each_completed([&](const mem::Request& req) {
            cores_[req.core]->on_read_complete(req.id, cpu_cycle,
                                               make_fill(req));
          });
          mem_dirty_ = false;
          if (mode != LoopMode::kNaive) {
            mem_next_event = memory_.next_event_cycle(mem_now_);
          }
        }
      }
    }

    // -- Execute this CPU cycle.
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      if (lazy_sleep && cores_[c]->stalled_on_memory()) continue;
      cores_[c]->cycle();
      if (!loop_.crossed[c] &&
          cores_[c]->stats().instructions >= loop_.target_instructions) {
        record_crossing(c);
      }
    }
    ++cpu_cycle;

    // -- Bulk advance: jump the whole system across a span every party has
    // proven pure. kFrozenStall keeps the PR-3 restriction (skip only the
    // paper's frozen cycles, when every core is stalled); kEventDriven and
    // the sharded loop fold per-core next events into the same mechanism.
    // Clamping the jump at the segment stop is exact: run_until composes
    // over pure spans, and the re-entry window visit is a provable no-op.
    if (loop_.remaining == 0) continue;
    if (!sharded) {
      if (mode == LoopMode::kNaive) continue;
      if (mode == LoopMode::kFrozenStall && !all_cores_stalled()) continue;
    }
    const std::uint64_t target = std::min(
        stop, skip_target(cpu_cycle, next_window_cpu, mem_next_event,
                          loop_.target_instructions, loop_.max_cpu_cycles,
                          loop_.crossed));
    if (target <= cpu_cycle) continue;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      cores_[c]->run_until(target);
      if (!loop_.crossed[c] &&
          cores_[c]->stats().instructions >= loop_.target_instructions) {
        record_crossing(c);
      }
    }
    cpu_cycle = target;
  }

  loop_.cpu_cycle = cpu_cycle;
  loop_.next_window_cpu = next_window_cpu;
  loop_.mem_next_event = mem_next_event;
  return loop_.remaining == 0 || cpu_cycle >= loop_.max_cpu_cycles;
}

RunResult System::finish_run() {
  ROP_ASSERT(loop_.active);
  RunResult result;
  result.cores = loop_.partial;
  result.hit_cycle_limit = loop_.remaining > 0;
  const std::uint64_t cpu_cycle = loop_.cpu_cycle;

  // Settle lazily-billed sleepers at the final cycle (a no-op for every
  // core that executed or was bulk-advanced to cpu_cycle).
  for (auto& core : cores_) core->run_until(cpu_cycle);
  // Settle the sampler at the final memory cycle *before* the core-counter
  // mirror below: bulk advances may have jumped past epoch boundaries, and
  // emitting them lazily after the mirror would fold end-of-run core
  // totals into the last full epoch — breaking bit-identity with the naive
  // loop, which sampled those boundaries pre-mirror. The trailing partial
  // epoch (emitted by close() in finalize) captures the mirror in both
  // modes.
  if (pool_ != nullptr) {
    // Catch up with everything the serial loop would have ticked: every
    // due event E with E * cpu_ratio < cpu_cycle was executed there (the
    // skip cap lands the loop on each such window before exiting), while
    // events at or past the exit cycle never run. Completions produced
    // here stay undrained, exactly like the serial exit.
    if (cpu_cycle > 0) pool_->advance_to((cpu_cycle - 1) / cfg_.cpu_ratio);
    pool_->sample_to(cpu_cycle / cfg_.cpu_ratio);
  } else if (telemetry::EpochSampler* const s = memory_.sampler()) {
    s->advance_to(cpu_cycle / cfg_.cpu_ratio);
  }

  // Freeze any core that never crossed (cycle-limit safety net).
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (loop_.crossed[c]) continue;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
    freeze_cpi_stack(c, r);
  }

  // Mirror the final per-core counters into the registry (handles resolved
  // at construction). A System runs once. The CPI mirror folds any
  // unresolved critical span into `other`, so the exported stack sums to
  // the exported cycles.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c]->stats();
    const CoreStatHandles& h = core_stat_handles_[c];
    h.instructions->inc(s.instructions);
    h.cycles->inc(s.cycles);
    h.stall_cycles->inc(s.stall_cycles);
    h.mem_reads->inc(s.mem_reads);
    h.mem_fills->inc(s.mem_fills);
    h.mem_writebacks->inc(s.mem_writebacks);
    h.cpi_retire->inc(s.retire_cycles);
    h.cpi_stall_mlp->inc(s.stall_mlp_cycles);
    h.cpi_stall_port->inc(s.stall_port_cycles);
    h.cpi_mem_queue->inc(s.stall_mem_queue_cycles);
    h.cpi_mem_bank->inc(s.stall_mem_bank_cycles);
    h.cpi_mem_cas->inc(s.stall_mem_cas_cycles);
    h.cpi_mem_bus->inc(s.stall_mem_bus_cycles);
    h.cpi_refresh_rank->inc(s.stall_refresh_rank_cycles);
    h.cpi_refresh_bank->inc(s.stall_refresh_bank_cycles);
    h.cpi_refresh_subarray->inc(s.stall_refresh_subarray_cycles);
    h.cpi_refresh_pause->inc(s.stall_refresh_pause_cycles);
    h.cpi_rop_sram->inc(s.stall_rop_sram_cycles);
    h.cpi_other->inc(s.other_cycles + cores_[c]->unresolved_stall_cycles());
  }

  result.cpu_cycles = cpu_cycle;
  result.mem_cycles = cpu_cycle / cfg_.cpu_ratio;
  if (pool_ != nullptr) {
    pool_->finalize_run(result.mem_cycles);
    pool_.reset();
  } else {
    memory_.finalize(result.mem_cycles);
  }
  loop_.active = false;
  return result;
}

RunResult System::run(std::uint64_t target_instructions,
                      std::uint64_t max_cpu_cycles) {
  begin_run(target_instructions, max_cpu_cycles);
  advance_until(max_cpu_cycles);
  return finish_run();
}

std::uint64_t System::functional_window(std::uint64_t instructions_per_core,
                                        Cycle critical_penalty) {
  ROP_ASSERT(loop_.active);
  ROP_ASSERT(pool_ == nullptr && "sampled execution is a serial-loop mode");
  telemetry::EpochSampler* const sampler = memory_.sampler();
  const std::uint64_t start_cpu = loop_.cpu_cycle;

  // 1. Drain: tick the memory event-driven (no new arrivals) until every
  // core's outstanding misses have completed. Completions deliver at the
  // CPU cycle of the producing memory window; critical sleepers back-fill
  // their slept span exactly as in detailed execution.
  auto outstanding_total = [&] {
    std::uint64_t n = 0;
    for (const auto& core : cores_) n += core->outstanding();
    return n;
  };
  Cycle m = start_cpu / cfg_.cpu_ratio;
  std::uint64_t drained_cpu = start_cpu;
  while (outstanding_total() > 0) {
    memory_.tick(m);
    const std::uint64_t deliver_cpu =
        std::max(start_cpu, m * static_cast<std::uint64_t>(cfg_.cpu_ratio));
    memory_.for_each_completed([&](const mem::Request& req) {
      cores_[req.core]->on_read_complete(req.id, deliver_cpu,
                                         make_fill(req));
    });
    drained_cpu = deliver_cpu;
    if (outstanding_total() == 0) break;
    const Cycle next = memory_.next_event_cycle(m);
    ROP_ASSERT(next != kNeverCycle && "outstanding reads must complete");
    m = std::max(m + 1, next);
  }

  // 2. Functional warming: every core retires the window's instructions
  // with no memory requests (see Core::functional_advance).
  std::uint64_t max_core_cycles = 0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c]->functional_advance(instructions_per_core, critical_penalty);
    max_core_cycles = std::max(max_core_cycles, cores_[c]->stats().cycles);
    if (!loop_.crossed[c] &&
        cores_[c]->stats().instructions >= loop_.target_instructions) {
      record_crossing(c);
    }
  }

  // 3. Land the whole system on one memory-window boundary at or past the
  // slowest core's estimate, then advance the memory event-driven through
  // the span: refreshes and write drains happen at their natural times.
  const std::uint64_t end_cpu_raw = std::max(
      {start_cpu + 1, drained_cpu, max_core_cycles});
  const Cycle end_mem =
      (end_cpu_raw + cfg_.cpu_ratio - 1) / cfg_.cpu_ratio;
  const std::uint64_t end_cpu =
      end_mem * static_cast<std::uint64_t>(cfg_.cpu_ratio);
  Cycle due = memory_.next_event_cycle(m);
  while (due < end_mem) {
    if (sampler != nullptr) sampler->advance_to(due);
    memory_.tick(due);
    // Demand reads were drained above and functional cores issue nothing,
    // so completions cannot appear here.
    memory_.for_each_completed([](const mem::Request&) {
      ROP_ASSERT(false && "no demand reads in flight during warming");
    });
    due = memory_.next_event_cycle(due);
  }
  if (sampler != nullptr) sampler->advance_to(end_mem);

  // 4. Re-align every clock to the window boundary so detailed execution
  // resumes from a consistent state. The alignment span is billed as
  // stall; the next window visit must re-tick (the no-op-skip proof does
  // not cover a functional jump), so mark the memory dirty.
  for (auto& core : cores_) core->align_cycles(end_cpu);
  loop_.cpu_cycle = end_cpu;
  loop_.next_window_cpu = end_cpu;  // forces a window visit on resume
  loop_.mem_next_event = 0;
  mem_now_ = end_mem;
  mem_dirty_ = true;
  return end_cpu - start_cpu;
}

}  // namespace rop::cpu
