#include "cpu/system.h"

#include <algorithm>
#include <string>

#include "mem/shard_pool.h"
#include "telemetry/epoch_sampler.h"

namespace rop::cpu {

System::System(const SystemConfig& cfg, mem::MemorySystem& memory,
               std::vector<workload::TraceSource*> traces)
    : cfg_(cfg), memory_(memory), shared_llc_(cfg.llc) {
  ROP_ASSERT(!traces.empty());
  ROP_ASSERT(cfg.cpu_ratio >= 1);
  StatRegistry& reg = *memory_.stats();
  const bool share = cfg.shared_llc && traces.size() > 1;
  if (share) shared_llc_.bind_stats(reg, "llc.");
  cores_.reserve(traces.size());
  core_stat_handles_.reserve(traces.size());
  for (CoreId c = 0; c < traces.size(); ++c) {
    ROP_ASSERT(traces[c] != nullptr);
    cores_.push_back(
        std::make_unique<Core>(c, cfg.core, cfg.llc, *traces[c], *this));
    if (share) {
      cores_.back()->set_shared_llc(&shared_llc_);
    } else {
      cores_.back()->private_llc().bind_stats(
          reg, "core" + std::to_string(c) + ".llc.");
    }
    const std::string prefix = "core" + std::to_string(c) + ".";
    CoreStatHandles h;
    h.instructions = reg.counter_handle(prefix + "instructions");
    h.cycles = reg.counter_handle(prefix + "cycles");
    h.stall_cycles = reg.counter_handle(prefix + "stall_cycles");
    h.mem_reads = reg.counter_handle(prefix + "mem_reads");
    h.mem_fills = reg.counter_handle(prefix + "mem_fills");
    h.mem_writebacks = reg.counter_handle(prefix + "mem_writebacks");
    core_stat_handles_.push_back(h);
  }

  // Relocation bases, hoisted out of the per-request path. Flat layout:
  // carve the physical space into equal per-core regions so footprints
  // never alias; every region spans all ranks/banks (the default
  // interleaving cycles through them in the low address bits).
  const auto& map = memory_.address_map();
  region_lines_ = map.organization().total_lines() / cores_.size();
  ROP_ASSERT(region_lines_ > 0);
  const std::uint32_t ranks = map.organization().ranks;
  reloc_base_line_.reserve(cores_.size());
  reloc_rank_.reserve(cores_.size());
  for (CoreId c = 0; c < cores_.size(); ++c) {
    reloc_base_line_.push_back(static_cast<std::uint64_t>(c) * region_lines_);
    reloc_rank_.push_back(c % ranks);
  }
}

bool System::all_cores_stalled() const {
  for (const auto& core : cores_) {
    if (!core->stalled_on_memory()) return false;
  }
  return true;
}

Address System::relocate(CoreId core, Address local) const {
  const std::uint64_t local_line = local >> kLineShift;
  if (cfg_.rank_partition) {
    return memory_.address_map().compose_in_rank(reloc_rank_[core],
                                                 local_line);
  }
  // The modulo wrap only matters when the footprint exceeds the region;
  // typical footprints fit, making the common case a single add.
  const std::uint64_t offset =
      local_line < region_lines_ ? local_line : local_line % region_lines_;
  return (reloc_base_line_[core] + offset) << kLineShift;
}

std::optional<RequestId> System::issue_read(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kRead)) return std::nullopt;
  ChannelId ch = 0;
  const auto id =
      memory_.enqueue(phys, mem::ReqType::kRead, core, mem_now_, &ch);
  // The cached next-event answer is stale the moment a request lands; the
  // next boundary tick must execute to observe it. Sharded: only the
  // channel that accepted the request needs re-arming.
  if (id) {
    mem_dirty_ = true;
    if (shard_pool_ != nullptr) shard_pool_->note_enqueue(ch, mem_now_);
  }
  return id;
}

bool System::issue_write(CoreId core, Address addr) {
  const Address phys = relocate(core, addr);
  if (!memory_.can_accept(phys, mem::ReqType::kWrite)) return false;
  ChannelId ch = 0;
  const bool ok =
      memory_.enqueue(phys, mem::ReqType::kWrite, core, mem_now_, &ch)
          .has_value();
  if (ok) {
    mem_dirty_ = true;
    if (shard_pool_ != nullptr) shard_pool_->note_enqueue(ch, mem_now_);
  }
  return ok;
}

std::uint64_t System::skip_target(std::uint64_t cpu_cycle,
                                  std::uint64_t next_window_cpu,
                                  Cycle mem_next_event,
                                  std::uint64_t target_instructions,
                                  std::uint64_t max_cpu_cycles,
                                  const std::vector<bool>& crossed) const {
  std::uint64_t target = max_cpu_cycles;
  // Memory cap. A dirty queue forces the next boundary tick (the first
  // tick that can observe the new request); otherwise every boundary
  // before mem_next_event is a provable no-op tick and needs no visit.
  if (mem_dirty_) {
    target = std::min(target, next_window_cpu);
  } else if (mem_next_event <= max_cpu_cycles / cfg_.cpu_ratio) {
    target = std::min(target, mem_next_event * cfg_.cpu_ratio);
  }
  // Per-core caps: a sleeping core imposes none (its wake bounds the span
  // through the memory cap); an awake core can be bulk-advanced through
  // its remaining compute gap, further capped at its instruction-target
  // crossing cycle so the crossing snapshot lands exactly where the naive
  // loop records it.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const Core& core = *cores_[c];
    std::uint64_t next = core.next_event_cycle();
    if (!crossed[c] && !core.stalled_on_memory()) {
      const CoreStats& s = core.stats();
      const std::uint64_t need = target_instructions - s.instructions;
      const std::uint64_t width = cfg_.core.issue_width;
      next = std::min(next, s.cycles + (need + width - 1) / width);
    }
    target = std::min(target, next);
    if (target <= cpu_cycle) return target;  // next cycle must execute
  }
  return target;
}

RunResult System::run(std::uint64_t target_instructions,
                      std::uint64_t max_cpu_cycles) {
  if (cfg_.shard_channels > 0) {
    return run_sharded(target_instructions, max_cpu_cycles);
  }
  ROP_ASSERT(!memory_.per_channel_stats() &&
             "per-channel registries are only folded by the sharded loop");
  RunResult result;
  result.cores.resize(cores_.size());
  std::vector<bool> crossed(cores_.size(), false);
  std::size_t remaining = cores_.size();

  const LoopMode mode = cfg_.loop;
  // Event-loop sleep/wake: a core blocked on a critical load is not
  // executed (nor billed) per cycle; its cycles/stall_cycles lag until the
  // wake back-fill in Core::on_read_complete or a bulk run_until catches
  // it up. The per-cycle modes bill stalled cores every cycle, so the
  // back-fill is zero there.
  const bool lazy_sleep = mode == LoopMode::kEventDriven;

  // Event-driven memory clock (see docs/PERFORMANCE.md §4).
  // Controller::next_event_cycle guarantees every tick in (now, event) is
  // a no-op for the frozen controller state, so boundary ticks before the
  // cached event are skipped even while cores are running. An enqueue
  // invalidates the cached answer, so it sets mem_dirty_ (see
  // issue_read/issue_write) and the next boundary tick executes — which is
  // also the first tick that can observe the request: the naive tick(M)
  // only sees arrivals <= M - 1. The memory clock itself (mem_now_)
  // advances at every *visited* window, ticked or not, so arrivals are
  // stamped identically to the naive loop; windows inside a bulk-advanced
  // span are provably tickless and are not visited at all.
  Cycle mem_next_event = 0;  // next memory cycle whose tick must execute
  mem_dirty_ = false;

  // Epoch boundaries are sampled at every visited memory cycle; boundaries
  // crossed inside a bulk-advanced span are emitted lazily at the next
  // visit, which is exact because skipped spans never touch a registry
  // counter (no-op ticks by construction; bulk core advance moves only
  // core-local counters, mirrored into the registry at end of run).
  telemetry::EpochSampler* const sampler = memory_.sampler();

  auto record_crossing = [&](std::size_t c) {
    crossed[c] = true;
    --remaining;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
  };

  std::uint64_t cpu_cycle = 0;
  std::uint64_t next_window_cpu = 0;  // first CPU cycle of the next window
  while (cpu_cycle < max_cpu_cycles && remaining > 0) {
    // -- Memory-window entry: visit the boundary once per window. A
    // mid-window entry (a bulk advance landed between boundaries) never
    // ticks: the skip caps guarantee the current window's boundary tick
    // was a provable no-op, so only mem_now_/sampler bookkeeping runs.
    if (cpu_cycle >= next_window_cpu) {
      mem_now_ = cpu_cycle / cfg_.cpu_ratio;
      next_window_cpu = (mem_now_ + 1) * cfg_.cpu_ratio;
      if (sampler != nullptr) sampler->advance_to(mem_now_);
      if (mode == LoopMode::kNaive || mem_dirty_ ||
          mem_now_ >= mem_next_event) {
        memory_.tick(mem_now_);
        memory_.for_each_completed([&](const mem::Request& req) {
          cores_[req.core]->on_read_complete(req.id, cpu_cycle);
        });
        mem_dirty_ = false;
        if (mode != LoopMode::kNaive) {
          mem_next_event = memory_.next_event_cycle(mem_now_);
        }
      }
    }

    // -- Execute this CPU cycle.
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      if (lazy_sleep && cores_[c]->stalled_on_memory()) continue;
      cores_[c]->cycle();
      if (!crossed[c] &&
          cores_[c]->stats().instructions >= target_instructions) {
        record_crossing(c);
      }
    }
    ++cpu_cycle;

    // -- Bulk advance: jump the whole system across a span every party has
    // proven pure. kFrozenStall keeps the PR-3 restriction (skip only the
    // paper's frozen cycles, when every core is stalled); kEventDriven
    // folds per-core next events into the same mechanism.
    if (mode == LoopMode::kNaive || remaining == 0) continue;
    if (mode == LoopMode::kFrozenStall && !all_cores_stalled()) continue;
    const std::uint64_t target =
        skip_target(cpu_cycle, next_window_cpu, mem_next_event,
                    target_instructions, max_cpu_cycles, crossed);
    if (target <= cpu_cycle) continue;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      cores_[c]->run_until(target);
      if (!crossed[c] &&
          cores_[c]->stats().instructions >= target_instructions) {
        record_crossing(c);
      }
    }
    cpu_cycle = target;
  }

  result.hit_cycle_limit = remaining > 0;
  // Settle lazily-billed sleepers at the final cycle (a no-op for every
  // core that executed or was bulk-advanced to cpu_cycle).
  for (auto& core : cores_) core->run_until(cpu_cycle);
  // Settle the sampler at the final memory cycle *before* the core-counter
  // mirror below: bulk advances may have jumped past epoch boundaries, and
  // emitting them lazily after the mirror would fold end-of-run core
  // totals into the last full epoch — breaking bit-identity with the naive
  // loop, which sampled those boundaries pre-mirror. The trailing partial
  // epoch (emitted by close() in finalize) captures the mirror in both
  // modes.
  if (sampler != nullptr) sampler->advance_to(cpu_cycle / cfg_.cpu_ratio);
  // Freeze any core that never crossed (cycle-limit safety net).
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (crossed[c]) continue;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
  }

  // Mirror the final per-core counters into the registry (handles resolved
  // at construction). run() is called once per System.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c]->stats();
    const CoreStatHandles& h = core_stat_handles_[c];
    h.instructions->inc(s.instructions);
    h.cycles->inc(s.cycles);
    h.stall_cycles->inc(s.stall_cycles);
    h.mem_reads->inc(s.mem_reads);
    h.mem_fills->inc(s.mem_fills);
    h.mem_writebacks->inc(s.mem_writebacks);
  }

  result.cpu_cycles = cpu_cycle;
  result.mem_cycles = cpu_cycle / cfg_.cpu_ratio;
  memory_.finalize(result.mem_cycles);
  return result;
}

RunResult System::run_sharded(std::uint64_t target_instructions,
                              std::uint64_t max_cpu_cycles) {
  // Same skeleton as run() in kEventDriven mode; see mem/shard_pool.h for
  // why the per-channel advancement is bit-identical to the serial loop.
  ROP_ASSERT(cfg_.loop == LoopMode::kEventDriven &&
             "channel sharding builds on the event-driven loop");
  ROP_ASSERT(memory_.per_channel_stats() &&
             "sharded channels must not share a registry");
  ROP_ASSERT(memory_.controller(0).trace() == nullptr &&
             "the trace sink interleaves channels and is order-sensitive");

  RunResult result;
  result.cores.resize(cores_.size());
  std::vector<bool> crossed(cores_.size(), false);
  std::size_t remaining = cores_.size();

  mem::ShardPool pool(memory_, cfg_.shard_channels);
  shard_pool_ = &pool;

  // The sharded analogue of mem_next_event: the earliest cycle any channel
  // could hold a deliverable completion. Channel-internal activity
  // (command issues, refresh phases) no longer bounds the CPU skip — the
  // pool replays it lazily inside advance_to.
  Cycle mem_next_event = 0;
  mem_dirty_ = false;

  auto record_crossing = [&](std::size_t c) {
    crossed[c] = true;
    --remaining;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
  };

  std::uint64_t cpu_cycle = 0;
  std::uint64_t next_window_cpu = 0;
  while (cpu_cycle < max_cpu_cycles && remaining > 0) {
    // -- Memory-window entry: advance every channel through its own due
    // ticks (folding epoch boundaries on the way), then drain. A
    // conservative-early bound just makes this a cheap no-op visit.
    if (cpu_cycle >= next_window_cpu) {
      mem_now_ = cpu_cycle / cfg_.cpu_ratio;
      next_window_cpu = (mem_now_ + 1) * cfg_.cpu_ratio;
      pool.advance_to(mem_now_);
      pool.for_each_completed([&](const mem::Request& req) {
        cores_[req.core]->on_read_complete(req.id, cpu_cycle);
      });
      mem_dirty_ = false;
      mem_next_event = pool.next_required_boundary(mem_now_);
    }

    // -- Execute this CPU cycle (lazy sleep as in kEventDriven).
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      if (cores_[c]->stalled_on_memory()) continue;
      cores_[c]->cycle();
      if (!crossed[c] &&
          cores_[c]->stats().instructions >= target_instructions) {
        record_crossing(c);
      }
    }
    ++cpu_cycle;

    // -- Bulk advance, identical to run(): the memory cap in skip_target
    // now comes from the delivery bound.
    if (remaining == 0) continue;
    const std::uint64_t target =
        skip_target(cpu_cycle, next_window_cpu, mem_next_event,
                    target_instructions, max_cpu_cycles, crossed);
    if (target <= cpu_cycle) continue;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      cores_[c]->run_until(target);
      if (!crossed[c] &&
          cores_[c]->stats().instructions >= target_instructions) {
        record_crossing(c);
      }
    }
    cpu_cycle = target;
  }

  result.hit_cycle_limit = remaining > 0;
  for (auto& core : cores_) core->run_until(cpu_cycle);
  // Catch up with everything the serial loop would have ticked: every due
  // event E with E * cpu_ratio < cpu_cycle was executed there (the skip
  // cap lands the loop on each such window before exiting), while events
  // at or past the exit cycle never run. Completions produced here stay
  // undrained, exactly like the serial exit.
  if (cpu_cycle > 0) pool.advance_to((cpu_cycle - 1) / cfg_.cpu_ratio);
  // Fold the final epoch boundary before the core-counter mirror, matching
  // the serial sampler settle.
  pool.sample_to(cpu_cycle / cfg_.cpu_ratio);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (crossed[c]) continue;
    CoreResult& r = result.cores[c];
    const CoreStats& s = cores_[c]->stats();
    r.instructions = s.instructions;
    r.cpu_cycles = s.cycles;
    r.ipc = s.ipc();
    r.mem_reads = s.mem_reads + s.mem_fills;
    r.mem_writebacks = s.mem_writebacks;
  }

  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c]->stats();
    const CoreStatHandles& h = core_stat_handles_[c];
    h.instructions->inc(s.instructions);
    h.cycles->inc(s.cycles);
    h.stall_cycles->inc(s.stall_cycles);
    h.mem_reads->inc(s.mem_reads);
    h.mem_fills->inc(s.mem_fills);
    h.mem_writebacks->inc(s.mem_writebacks);
  }

  result.cpu_cycles = cpu_cycle;
  result.mem_cycles = cpu_cycle / cfg_.cpu_ratio;
  pool.finalize_run(result.mem_cycles);
  shard_pool_ = nullptr;
  return result;
}

}  // namespace rop::cpu
