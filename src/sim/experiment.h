// Experiment runner: assemble a full system (workloads -> cores -> LLC ->
// controller [-> ROP engine] -> DRAM -> power model), run it, and return
// the metric bundle every bench and example consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "cpu/system.h"
#include "energy/dram_power.h"
#include "rop/rop_engine.h"
#include "sim/presets.h"
#include "sim/sampling.h"
#include "telemetry/telemetry.h"
#include "workload/spec_profiles.h"

namespace rop::sim {

/// Checkpoint/restore controls (see sim/snapshot.h). Paths are not part of
/// the config fingerprint: both sides of a save/restore must otherwise run
/// the identical spec.
struct SnapshotSpec {
  /// Restore from this file before executing anything (the file's
  /// fingerprint must match the spec).
  std::string in;
  /// Checkpoint destination for `every` / `stop_at`.
  std::string out;
  /// > 0: write `out` every N CPU cycles (atomically; the previous
  /// checkpoint survives a kill mid-write).
  std::uint64_t every = 0;
  /// > 0: stop the run at this CPU cycle, write `out`, and return a
  /// partial result flagged `interrupted` — the split half of the
  /// bit-identity tests, and the campaign's kill hook.
  std::uint64_t stop_at = 0;

  [[nodiscard]] bool any() const { return !in.empty() || !out.empty(); }
};

struct ExperimentSpec {
  /// One benchmark name per core (see workload::kBenchmarkNames).
  std::vector<std::string> benchmarks;
  MemoryMode mode = MemoryMode::kBaseline;
  bool rank_partition = false;
  std::uint32_t ranks = 1;
  /// Memory channels (the paper's Table III point is 1; the sharded loop
  /// and campaign sweeps extend it).
  std::uint32_t channels = 1;
  /// > 0: run the channel-sharded loop with this many shards (clamped to
  /// the channel count); bit-identical to the serial event loop. Requires
  /// loop == kEventDriven and no tracing.
  std::uint32_t shard_channels = 0;
  std::uint64_t llc_bytes = 2ull << 20;
  engine::RopConfig rop{};  // consulted when mode == kRop
  dram::RefreshMode refresh_mode = dram::RefreshMode::k1x;
  std::uint64_t instructions_per_core = 5'000'000;
  std::uint64_t max_cpu_cycles = 2'000'000'000;
  std::uint64_t seed_salt = 0;
  /// Simulation-loop strategy (bit-identical across all three; see
  /// cpu::LoopMode). kNaive / kFrozenStall are for cross-checks.
  cpu::LoopMode loop = cpu::LoopMode::kEventDriven;
  /// Audit the run with check::SimChecker (per-tick invariants + end-of-run
  /// request conservation); a violation aborts the experiment with a
  /// report. Also enabled by ROP_CHECK=1 in the environment or the
  /// ROP_ENABLE_CHECKER CMake option (ROP_CHECK=0 overrides the latter).
  bool check = false;
  /// Observability: epoch sampling and/or event tracing. Both default off
  /// (zero hot-path cost beyond a null-pointer compare).
  telemetry::TelemetryConfig telemetry{};
  /// Checkpoint/restore (mutually exclusive with `sampling.enabled`; the
  /// checker is disabled while either is active — its conservation audit
  /// counts from attach and cannot span a restore or a functional jump).
  SnapshotSpec snapshot{};
  /// SMARTS-style sampled execution (serial loops only; see sim/sampling.h).
  SamplingSpec sampling{};
  /// Live-ops heartbeat: when non-empty, append one JSONL progress line to
  /// this file every `progress_every` CPU cycles and once at the end (see
  /// telemetry::ProgressWriter). Exact runs only (ignored while sampling).
  /// Like snapshot paths, not part of the config fingerprint — the
  /// heartbeat is an operational side channel, not simulated behavior.
  std::string progress_file;
  std::uint64_t progress_every = 10'000'000;
};

struct ExperimentResult {
  cpu::RunResult run;
  energy::EnergyBreakdown energy;
  StatRegistry stats;

  /// CPU cycles per memory-controller cycle for this run (the attribution
  /// block exports it so consumers can convert stack entries to ns).
  std::uint32_t cpu_ratio = 0;

  // Invariant-checker outcome (zeros when the checker was disabled).
  std::uint64_t checker_ticks = 0;
  std::uint64_t checker_violations = 0;

  /// Wall-clock seconds spent inside System::run (simulation only — no
  /// construction, finalization, or energy accounting).
  double wall_seconds = 0.0;

  /// Simulation throughput: simulated memory-controller cycles per
  /// wall-clock second. The headline number for the event-driven clock.
  [[nodiscard]] double sim_cycles_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(run.mem_cycles) / wall_seconds
               : 0.0;
  }

  // ROP-specific metrics (zero/defaults for baseline and no-refresh).
  double sram_hit_rate = 0.0;
  double lambda = 1.0;
  double beta = 1.0;
  std::uint64_t refreshes = 0;

  // Refresh blocking statistics (1x / 2x / 4x examined windows, Figs 2-3).
  std::vector<double> nonblocking_fraction;
  std::vector<double> mean_blocked_per_blocking_refresh;
  std::vector<std::uint64_t> max_blocked;

  /// Sampled-execution estimates (enabled == false for exact runs).
  SamplingSummary sampling{};
  /// True when snapshot.stop_at ended the run early: the result is a
  /// partial checkpoint, not a finished experiment.
  bool interrupted = false;

  /// Epoch time-series / event trace captured during the run (null when the
  /// spec did not enable them). shared_ptr keeps the result copyable and the
  /// sinks alive independent of the (destroyed) memory system.
  std::shared_ptr<telemetry::EpochSampler> epochs;
  std::shared_ptr<telemetry::TraceSink> trace;

  [[nodiscard]] double ipc(std::size_t core = 0) const {
    return run.cores.at(core).ipc;
  }
  [[nodiscard]] double total_energy_mj() const { return energy.total_mj(); }

  /// Full machine-readable dump: run metrics, energy breakdown, every
  /// registered counter/scalar/histogram, and the epoch series (schema in
  /// telemetry/stats_json.h and docs/OBSERVABILITY.md).
  [[nodiscard]] std::string to_json() const;

  /// Weighted-speedup helper (Eq. 4): sum over cores of
  /// IPC_shared / IPC_alone, with IPC_alone supplied by the caller.
  [[nodiscard]] double weighted_speedup(
      const std::vector<double>& ipc_alone) const;
};

/// Run one experiment end to end. Deterministic for a fixed spec.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Worker threads one run of `spec` occupies: the shard count for a
/// sharded run, the sampling job count for a planned-sampled run, else 1.
/// The runner and the campaign engine divide the machine budget by the
/// widest pending spec so jobs * width never oversubscribes (see
/// sim/worker_budget.h).
[[nodiscard]] unsigned experiment_worker_width(const ExperimentSpec& spec);

/// True when runs should be audited: spec-independent part of the
/// ExperimentSpec::check resolution (ROP_CHECK env var, CMake default).
[[nodiscard]] bool checker_enabled_by_environment();

/// Convenience for single-benchmark single-core specs.
[[nodiscard]] ExperimentSpec single_core_spec(std::string benchmark,
                                              MemoryMode mode,
                                              std::uint64_t llc_bytes = 2ull
                                                                        << 20);

/// Spec for a 4-core workload mix WL1..WL6 on a 4-rank memory.
[[nodiscard]] ExperimentSpec multi_core_spec(std::uint32_t wl, MemoryMode mode,
                                             bool rank_partition,
                                             std::uint64_t llc_bytes = 4ull
                                                                       << 20);

}  // namespace rop::sim
