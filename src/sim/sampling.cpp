#include "sim/sampling.h"

#include <array>
#include <cmath>

#include "energy/dram_power.h"

namespace rop::sim {

double t_quantile_975(std::uint64_t df) {
  // Two-sided 95% quantiles, df = 1..29; the normal quantile beyond.
  static constexpr std::array<double, 29> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  if (df == 0) return 0.0;
  if (df <= kTable.size()) return kTable[df - 1];
  return 1.96;
}

const char* sampling_placement_name(SamplingPlacement p) {
  switch (p) {
    case SamplingPlacement::kChained: return "chained";
    case SamplingPlacement::kUniform: return "uniform";
    case SamplingPlacement::kStratified: return "stratified";
  }
  return "?";
}

SamplingEstimate estimate_from(const std::vector<double>& observations) {
  SamplingEstimate e;
  const std::size_t n = observations.size();
  if (n == 0) return e;
  double sum = 0.0;
  for (const double x : observations) sum += x;
  e.mean = sum / static_cast<double>(n);
  if (n < 2) return e;
  double ss = 0.0;
  for (const double x : observations) {
    const double d = x - e.mean;
    ss += d * d;
  }
  const double var = ss / static_cast<double>(n - 1);
  e.stderr_ = std::sqrt(var / static_cast<double>(n));
  e.ci95_half = t_quantile_975(n - 1) * e.stderr_;
  return e;
}

SamplingEstimate stratified_estimate(
    const std::vector<double>& observations,
    const std::vector<std::uint32_t>& stratum_of,
    const std::vector<double>& stratum_weight) {
  ROP_ASSERT(observations.size() == stratum_of.size());
  const std::size_t num_strata = stratum_weight.size();
  SamplingEstimate e;
  if (observations.empty() || num_strata == 0) return e;

  // Per-stratum count / mean / sample variance.
  std::vector<std::uint64_t> n(num_strata, 0);
  std::vector<double> sum(num_strata, 0.0);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    ROP_ASSERT(stratum_of[i] < num_strata);
    ++n[stratum_of[i]];
    sum[stratum_of[i]] += observations[i];
  }
  std::vector<double> mean(num_strata, 0.0);
  for (std::size_t h = 0; h < num_strata; ++h) {
    if (n[h] > 0) mean[h] = sum[h] / static_cast<double>(n[h]);
  }
  std::vector<double> ss(num_strata, 0.0);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const double d = observations[i] - mean[stratum_of[i]];
    ss[stratum_of[i]] += d * d;
  }

  // Weights renormalized over covered strata; one covered stratum
  // degenerates to the plain i.i.d. estimator.
  double wsum = 0.0;
  std::size_t covered = 0;
  for (std::size_t h = 0; h < num_strata; ++h) {
    if (n[h] > 0) {
      ROP_ASSERT(stratum_weight[h] >= 0.0);
      wsum += stratum_weight[h];
      ++covered;
    }
  }
  if (covered <= 1 || wsum <= 0.0) return estimate_from(observations);

  double var = 0.0;
  std::uint64_t df = 0;
  for (std::size_t h = 0; h < num_strata; ++h) {
    if (n[h] == 0) continue;
    const double frac = stratum_weight[h] / wsum;
    e.mean += frac * mean[h];
    if (n[h] >= 2) {
      const double s2 = ss[h] / static_cast<double>(n[h] - 1);
      var += frac * frac * s2 / static_cast<double>(n[h]);
      df += n[h] - 1;
    }
  }
  if (df == 0) return e;
  e.stderr_ = std::sqrt(var);
  e.ci95_half = t_quantile_975(df) * e.stderr_;
  return e;
}

/// Settle every rank's activity accounting to `now` and total the DRAM
/// energy across channels. Piecewise-safe: account_until is monotone, so
/// mid-run settles compose with the final settle in finalize().
double sampled_window_energy_mj(mem::MemorySystem& memory,
                                const energy::DramPowerModel& power,
                                Cycle now) {
  double total = 0.0;
  for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
    dram::Channel& channel = memory.controller(ch).channel();
    channel.settle_accounting(now);
    total += power.compute(channel).total_mj();
  }
  return total;
}

cpu::RunResult run_sampled(cpu::System& system, mem::MemorySystem& memory,
                           const SamplingSpec& spec,
                           std::uint64_t target_instructions,
                           std::uint64_t max_cpu_cycles,
                           SamplingSummary* out) {
  ROP_ASSERT(spec.enabled);
  system.begin_run(target_instructions, max_cpu_cycles);

  const energy::DramPowerModel power(energy::DramEnergyParams{},
                                     memory.config().timings);
  Counter* const blocked =
      memory.stats()->counter_handle("mem.refresh_blocked_cycles");
  const double ratio = static_cast<double>(system.cpu_ratio());

  auto total_instructions = [&] {
    std::uint64_t n = 0;
    for (CoreId c = 0; c < system.num_cores(); ++c) {
      n += system.core(c).stats().instructions;
    }
    return n;
  };

  std::vector<double> ipc_obs;
  std::vector<double> energy_obs;
  std::vector<double> blocked_obs;
  std::vector<WindowObservation> window_obs;
  std::uint64_t measured = 0;
  std::uint64_t functional = 0;
  bool converged = false;
  bool done = false;
  while (!done) {
    // Detailed warmup, excluded from the observation: the functional jump
    // left queues, row buffers, and the MLP window cold.
    done = system.advance_until(system.cpu_cycle() + spec.warmup_cycles);
    if (done) break;

    // Measured detailed window.
    const std::uint64_t c0 = system.cpu_cycle();
    const std::uint64_t i0 = total_instructions();
    const std::uint64_t b0 = blocked->value();
    const double e0 =
        sampled_window_energy_mj(memory, power, c0 / system.cpu_ratio());
    done = system.advance_until(c0 + spec.detail_cycles);
    const std::uint64_t c1 = system.cpu_cycle();
    if (c1 > c0) {
      const double dc = static_cast<double>(c1 - c0);
      const double dm = dc / ratio;  // memory cycles in the window
      WindowObservation obs;
      obs.index = window_obs.size();
      obs.cpu_cycles = c1 - c0;
      obs.ipc = static_cast<double>(total_instructions() - i0) / dc;
      obs.refresh_blocked_per_mem_cycle =
          static_cast<double>(blocked->value() - b0) / dm;
      const double e1 =
          sampled_window_energy_mj(memory, power, c1 / system.cpu_ratio());
      obs.energy_mj_per_mcycle = (e1 - e0) * 1e6 / dm;
      ipc_obs.push_back(obs.ipc);
      blocked_obs.push_back(obs.refresh_blocked_per_mem_cycle);
      energy_obs.push_back(obs.energy_mj_per_mcycle);
      window_obs.push_back(obs);
      measured += c1 - c0;
    }
    if (done) break;

    const std::uint64_t n = ipc_obs.size();
    if (spec.max_windows > 0 && n >= spec.max_windows) break;
    if (spec.target_ci_frac > 0.0 && n >= spec.min_windows) {
      const SamplingEstimate e = estimate_from(ipc_obs);
      if (e.mean > 0.0 && e.ci95_half / e.mean <= spec.target_ci_frac) {
        converged = true;
        break;
      }
    }

    // Functional fast-forward to the next sampling unit.
    functional += system.functional_window(spec.functional_instructions,
                                           spec.critical_penalty);
    if (system.cores_remaining() == 0 ||
        system.cpu_cycle() >= system.max_cpu_cycles()) {
      break;
    }
  }

  cpu::RunResult result = system.finish_run();
  if (out != nullptr) {
    out->enabled = true;
    out->windows = ipc_obs.size();
    out->measured_cpu_cycles = measured;
    out->functional_cpu_cycles = functional;
    out->ci_converged = converged;
    out->placement = SamplingPlacement::kChained;
    out->workers = 0;
    out->strata = 0;
    out->ipc = estimate_from(ipc_obs);
    out->energy_mj_per_mcycle = estimate_from(energy_obs);
    out->refresh_blocked_per_mem_cycle = estimate_from(blocked_obs);
    out->observations = std::move(window_obs);
  }
  return result;
}

}  // namespace rop::sim
