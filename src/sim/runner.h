// Parallel experiment runner: executes independent ExperimentSpecs on a
// small thread pool. Every experiment owns its RNGs, StatRegistry, and
// memory system, so results are bit-identical to serial run_experiment
// calls and ordered like the input regardless of thread count.
#pragma once

#include <vector>

#include "sim/experiment.h"

namespace rop::sim {

/// Run every spec and return results in input order. `n_threads` = 0 uses
/// one thread per hardware thread; the pool is never larger than the spec
/// count. `n_threads` = 1 runs serially on the calling thread.
[[nodiscard]] std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentSpec>& specs, unsigned n_threads = 0);

}  // namespace rop::sim
