#include "sim/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/types.h"
#include "telemetry/attribution.h"
#include "telemetry/stats_json.h"
#include "sim/snapshot.h"
#include "sim/worker_budget.h"
#include "workload/spec_profiles.h"

namespace rop::sim {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Spec parsing helpers.

// Scheme and refresh-mode names delegate to the shared preset-layer parser
// (sim/presets.h) — the single source of truth the ropsim CLI uses too, so
// campaign specs and --mode flags cannot drift.
bool parse_mode(const std::string& s, MemoryMode* out) {
  const auto mode = parse_memory_mode(s);
  if (!mode) return false;
  *out = *mode;
  return true;
}

bool parse_refresh(const std::string& s, dram::RefreshMode* out) {
  const auto mode = parse_refresh_mode(s);
  if (!mode) return false;
  *out = *mode;
  return true;
}

/// Benchmark axis value -> per-core benchmark list. "wlN" expands to the
/// 4-program mix of Table II; any Table I name runs single-core.
bool parse_benchmark(const std::string& s, std::vector<std::string>* out) {
  if (s.size() == 3 && s[0] == 'w' && s[1] == 'l' && s[2] >= '1' &&
      s[2] <= '0' + static_cast<char>(workload::kNumWorkloadMixes)) {
    *out = workload::workload_mix(static_cast<std::uint32_t>(s[2] - '0'));
    return true;
  }
  for (const std::string_view name : workload::kBenchmarkNames) {
    if (s == name) {
      *out = {s};
      return true;
    }
  }
  return false;
}

bool axis_strings(const json::Value& axes, const std::string& key,
                  std::vector<std::string> fallback,
                  std::vector<std::string>* out, std::string* error) {
  const json::Value* v = axes.find(key);
  if (v == nullptr) {
    *out = std::move(fallback);
    return true;
  }
  if (!v->is_array() || v->as_array().empty()) {
    *error = "axis '" + key + "' must be a non-empty array";
    return false;
  }
  out->clear();
  for (const json::Value& e : v->as_array()) {
    if (!e.is_string()) {
      *error = "axis '" + key + "' entries must be strings";
      return false;
    }
    out->push_back(e.as_string());
  }
  return true;
}

bool axis_u64(const json::Value& axes, const std::string& key,
              std::vector<std::uint64_t> fallback,
              std::vector<std::uint64_t>* out, std::string* error) {
  const json::Value* v = axes.find(key);
  if (v == nullptr) {
    *out = std::move(fallback);
    return true;
  }
  if (!v->is_array() || v->as_array().empty()) {
    *error = "axis '" + key + "' must be a non-empty array";
    return false;
  }
  out->clear();
  for (const json::Value& e : v->as_array()) {
    if (!e.has_u64() || e.as_u64() == 0) {
      *error = "axis '" + key + "' entries must be positive integers";
      return false;
    }
    out->push_back(e.as_u64());
  }
  return true;
}

bool axis_bools(const json::Value& axes, const std::string& key,
                std::vector<bool> fallback, std::vector<bool>* out,
                std::string* error) {
  const json::Value* v = axes.find(key);
  if (v == nullptr) {
    *out = std::move(fallback);
    return true;
  }
  if (!v->is_array() || v->as_array().empty()) {
    *error = "axis '" + key + "' must be a non-empty array";
    return false;
  }
  out->clear();
  for (const json::Value& e : v->as_array()) {
    if (!e.is_bool()) {
      *error = "axis '" + key + "' entries must be booleans";
      return false;
    }
    out->push_back(e.as_bool());
  }
  return true;
}

std::uint64_t scalar_u64(const json::Value& spec, const std::string& key,
                         std::uint64_t fallback) {
  const json::Value* v = spec.find(key);
  return (v != nullptr && v->has_u64()) ? v->as_u64() : fallback;
}

// ---------------------------------------------------------------------------
// Manifest + file IO.

/// FNV-1a over the raw spec text: a resumed campaign must be driven by the
/// byte-identical spec, otherwise cell indices could mean different runs.
std::string fingerprint(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Atomic write: a reader (or a resumed campaign) never observes a
/// half-written document, even if the process dies mid-write.
bool write_file_atomic(const fs::path& path, const std::string& text) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

std::string cell_filename(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "cell_%06zu.json", index);
  return buf;
}

/// Intra-cell checkpoint, written periodically while the cell runs (spec
/// scalar "snapshot_every") and deleted once the cell's JSON lands.
std::string cell_snapname(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "cell_%06zu.snap", index);
  return buf;
}

std::string manifest_text(const std::string& fp, std::size_t total,
                          const std::vector<bool>& done) {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.key("fingerprint");
  w.value(std::string_view(fp));
  w.key("total");
  w.value(static_cast<std::uint64_t>(total));
  w.key("completed");
  w.begin_array();
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (done[i]) w.value(static_cast<std::uint64_t>(i));
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// Merge.

/// Re-serialize a parsed Value. Objects are std::map, so keys come out
/// sorted — deterministic regardless of the source document's key order.
void write_value(telemetry::JsonWriter& w, const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kNull:
      w.null();
      break;
    case json::Value::Kind::kBool:
      w.value(v.as_bool());
      break;
    case json::Value::Kind::kNumber:
      if (v.has_u64()) {
        w.value(v.as_u64());
      } else if (v.has_i64()) {
        w.value(v.as_i64());
      } else {
        w.value(v.as_double());
      }
      break;
    case json::Value::Kind::kString:
      w.value(std::string_view(v.as_string()));
      break;
    case json::Value::Kind::kArray:
      w.begin_array();
      for (const json::Value& e : v.as_array()) write_value(w, e);
      w.end_array();
      break;
    case json::Value::Kind::kObject:
      w.begin_object();
      for (const auto& [key, val] : v.as_object()) {
        w.key(key);
        write_value(w, val);
      }
      w.end_object();
      break;
  }
}

double number_at(const json::Value& doc, const std::string& a,
                 const std::string& b) {
  const json::Value* v = doc.find(a);
  if (v != nullptr) v = v->find(b);
  return (v != nullptr && v->is_number()) ? v->as_double() : 0.0;
}

std::uint64_t u64_at(const json::Value& doc, const std::string& a,
                     const std::string& b) {
  const json::Value* v = doc.find(a);
  if (v != nullptr) v = v->find(b);
  return (v != nullptr && v->has_u64()) ? v->as_u64() : 0;
}

/// Pooled scalar: counts add; per-cell exact sums feed a Scalar so the
/// pooled sum is itself exact; bounds are the min/max over non-empty cells.
struct ScalarAgg {
  std::uint64_t count = 0;
  Scalar sum_acc;  // record() one exact per-cell sum at a time
  double min = 0.0;
  double max = 0.0;
  bool any = false;
};

struct MergeState {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, ScalarAgg> scalars;
  std::map<std::string, Histogram> histograms;
};

void merge_registry_sections(MergeState* m, const json::Value& doc) {
  if (const json::Value* cs = doc.find("counters");
      cs != nullptr && cs->is_object()) {
    for (const auto& [name, v] : cs->as_object()) {
      if (v.has_u64()) m->counters[name] += v.as_u64();
    }
  }
  if (const json::Value* ss = doc.find("scalars");
      ss != nullptr && ss->is_object()) {
    for (const auto& [name, v] : ss->as_object()) {
      if (!v.is_object()) continue;
      const json::Value* cnt = v.find("count");
      const json::Value* sum = v.find("sum");
      if (cnt == nullptr || !cnt->has_u64() || sum == nullptr ||
          !sum->is_number()) {
        continue;
      }
      ScalarAgg& agg = m->scalars[name];
      const std::uint64_t c = cnt->as_u64();
      agg.count += c;
      if (c == 0) continue;
      agg.sum_acc.record(sum->as_double());
      const json::Value* mn = v.find("min");
      const json::Value* mx = v.find("max");
      const double lo = (mn != nullptr && mn->is_number()) ? mn->as_double()
                                                           : 0.0;
      const double hi = (mx != nullptr && mx->is_number()) ? mx->as_double()
                                                           : 0.0;
      agg.min = agg.any ? std::min(agg.min, lo) : lo;
      agg.max = agg.any ? std::max(agg.max, hi) : hi;
      agg.any = true;
    }
  }
  if (const json::Value* hs = doc.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, v] : hs->as_object()) {
      if (!v.is_object()) continue;
      const json::Value* width = v.find("bucket_width");
      const json::Value* sum = v.find("sum");
      const json::Value* buckets = v.find("buckets");
      if (width == nullptr || !width->has_u64() || sum == nullptr ||
          !sum->has_u64() || buckets == nullptr || !buckets->is_array()) {
        continue;
      }
      std::vector<std::uint64_t> counts;
      counts.reserve(buckets->as_array().size());
      for (const json::Value& b : buckets->as_array()) {
        if (!b.has_u64()) break;
        counts.push_back(b.as_u64());
      }
      if (counts.size() != buckets->as_array().size() || counts.size() < 2) {
        continue;
      }
      Histogram h(width->as_u64(), std::move(counts), sum->as_u64());
      auto [it, inserted] = m->histograms.try_emplace(name, h);
      if (!inserted) it->second.merge(h);
    }
  }
}

std::string merged_text(const std::string& name,
                        const std::vector<CampaignCell>& cells,
                        const std::vector<json::Value>& docs) {
  MergeState agg;
  for (const json::Value& doc : docs) merge_registry_sections(&agg, doc);

  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::uint64_t{1});
  w.key("campaign");
  w.value(std::string_view(name));
  w.key("cells");
  w.value(static_cast<std::uint64_t>(cells.size()));

  // Wall-clock fields (run.wall_seconds, sim_cycles_per_second) are
  // deliberately excluded everywhere below: they differ run to run, and the
  // merged document must be byte-identical across resume boundaries.
  w.key("per_cell");
  w.begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const json::Value& doc = docs[i];
    w.begin_object();
    w.key("label");
    w.value(std::string_view(cells[i].label));
    w.key("cpu_cycles");
    w.value(u64_at(doc, "run", "cpu_cycles"));
    w.key("mem_cycles");
    w.value(u64_at(doc, "run", "mem_cycles"));
    double ipc_total = 0.0;
    if (const json::Value* run = doc.find("run"); run != nullptr) {
      if (const json::Value* cores = run->find("cores");
          cores != nullptr && cores->is_array()) {
        for (const json::Value& core : cores->as_array()) {
          if (const json::Value* ipc = core.find("ipc");
              ipc != nullptr && ipc->is_number()) {
            ipc_total += ipc->as_double();
          }
        }
      }
    }
    w.key("ipc_total");
    w.value(ipc_total);
    w.key("energy_total_mj");
    w.value(number_at(doc, "energy_mj", "total"));
    w.key("refreshes");
    w.value(u64_at(doc, "rop", "refreshes"));
    w.key("checker_violations");
    w.value(u64_at(doc, "checker", "violations"));
    w.end_object();
  }
  w.end_array();

  w.key("aggregate");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [cname, value] : agg.counters) {
    w.key(cname);
    w.value(value);
  }
  w.end_object();
  w.key("scalars");
  w.begin_object();
  for (const auto& [sname, s] : agg.scalars) {
    w.key(sname);
    w.begin_object();
    w.key("count");
    w.value(s.count);
    const double sum = s.sum_acc.sum();
    w.key("sum");
    w.value(sum);
    w.key("mean");
    w.value(s.count ? sum / static_cast<double>(s.count) : 0.0);
    w.key("min");
    if (s.any) {
      w.value(s.min);
    } else {
      w.null();
    }
    w.key("max");
    if (s.any) {
      w.value(s.max);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [hname, h] : agg.histograms) {
    w.key(hname);
    w.begin_object();
    w.key("count");
    w.value(h.count());
    w.key("sum");
    w.value(h.sum());
    w.key("mean");
    w.value(h.mean());
    w.key("bucket_width");
    w.value(h.bucket_width());
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.num_buckets(); ++i) w.value(h.bucket(i));
    w.end_array();
    w.key("p50");
    w.value(h.percentile(50.0));
    w.key("p95");
    w.value(h.percentile(95.0));
    w.key("p99");
    w.value(h.percentile(99.0));
    w.end_object();
  }
  w.end_object();
  w.end_object();  // aggregate

  // Epoch series concatenate rather than fold: each cell's time axis is its
  // own run, so the merged document keeps them side by side under labels.
  w.key("epochs");
  w.begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const json::Value* epochs = docs[i].find("epochs");
    if (epochs == nullptr || epochs->is_null()) continue;
    w.begin_object();
    w.key("label");
    w.value(std::string_view(cells[i].label));
    w.key("epochs");
    write_value(w, *epochs);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  os << '\n';
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Expansion.

std::optional<std::vector<CampaignCell>> expand_campaign(
    const json::Value& spec, std::string* error) {
  std::string err;
  if (!spec.is_object()) {
    if (error != nullptr) *error = "campaign spec must be a JSON object";
    return std::nullopt;
  }

  const std::uint64_t instructions =
      scalar_u64(spec, "instructions_per_core", 200'000);
  const std::uint64_t epoch_cycles = scalar_u64(spec, "epoch_cycles", 0);
  const std::uint64_t shard_channels = scalar_u64(spec, "shard_channels", 0);
  const std::uint64_t snapshot_every = scalar_u64(spec, "snapshot_every", 0);
  const json::Value* check_v = spec.find("check");
  const bool check = check_v != nullptr && check_v->is_bool() &&
                     check_v->as_bool();

  // Top-level "sampling" object: its presence switches every cell to
  // sampled execution (sim/sampling.h knobs; "jobs"/"strata" select the
  // planned parallel mode). Sampling composes with neither intra-cell
  // checkpoints nor the sharded loop nor epoch telemetry, so those
  // combinations are spec errors, not silent downgrades.
  SamplingSpec sampling;
  if (const json::Value* sv = spec.find("sampling"); sv != nullptr) {
    if (!sv->is_object()) {
      if (error != nullptr) *error = "'sampling' must be a JSON object";
      return std::nullopt;
    }
    if (snapshot_every > 0) {
      if (error != nullptr) {
        *error = "'sampling' cannot be combined with snapshot_every";
      }
      return std::nullopt;
    }
    if (shard_channels > 0) {
      if (error != nullptr) {
        *error = "'sampling' requires the serial loop (no shard_channels)";
      }
      return std::nullopt;
    }
    if (epoch_cycles > 0) {
      if (error != nullptr) {
        *error = "'sampling' cannot be combined with epoch_cycles";
      }
      return std::nullopt;
    }
    sampling.enabled = true;
    sampling.warmup_cycles =
        scalar_u64(*sv, "warmup_cycles", sampling.warmup_cycles);
    sampling.detail_cycles =
        scalar_u64(*sv, "detail_cycles", sampling.detail_cycles);
    sampling.functional_instructions = scalar_u64(
        *sv, "functional_instructions", sampling.functional_instructions);
    sampling.min_windows = static_cast<std::uint32_t>(
        scalar_u64(*sv, "min_windows", sampling.min_windows));
    sampling.max_windows = static_cast<std::uint32_t>(
        scalar_u64(*sv, "max_windows", sampling.max_windows));
    sampling.jobs =
        static_cast<std::uint32_t>(scalar_u64(*sv, "jobs", sampling.jobs));
    sampling.strata = static_cast<std::uint32_t>(
        scalar_u64(*sv, "strata", sampling.strata));
    if (const json::Value* ci = sv->find("target_ci");
        ci != nullptr && ci->is_number()) {
      sampling.target_ci_frac = ci->as_double();
    }
    if (sampling.strata > 0 && sampling.jobs == 0) {
      if (error != nullptr) {
        *error = "'sampling.strata' requires 'sampling.jobs' >= 1";
      }
      return std::nullopt;
    }
  }

  static const json::Value kEmptyAxes{json::Object{}};
  const json::Value* axes_p = spec.find("axes");
  const json::Value& axes = axes_p != nullptr ? *axes_p : kEmptyAxes;
  if (!axes.is_object()) {
    if (error != nullptr) *error = "'axes' must be a JSON object";
    return std::nullopt;
  }

  std::vector<std::string> benchmarks, modes, refreshes;
  std::vector<std::uint64_t> ranks, channels, llc_mb;
  std::vector<bool> partitions;
  if (!axis_strings(axes, "benchmark", {"lbm"}, &benchmarks, &err) ||
      !axis_strings(axes, "mode", {"baseline"}, &modes, &err) ||
      !axis_u64(axes, "ranks", {1}, &ranks, &err) ||
      !axis_strings(axes, "refresh", {"1x"}, &refreshes, &err) ||
      !axis_bools(axes, "rank_partition", {false}, &partitions, &err) ||
      !axis_u64(axes, "channels", {1}, &channels, &err) ||
      !axis_u64(axes, "llc_mb", {2}, &llc_mb, &err)) {
    if (error != nullptr) *error = err;
    return std::nullopt;
  }

  std::vector<CampaignCell> cells;
  cells.reserve(benchmarks.size() * modes.size() * ranks.size() *
                refreshes.size() * partitions.size() * channels.size() *
                llc_mb.size());
  // Fixed nesting order (last axis fastest) keeps indices stable across
  // invocations — the contract the resume manifest depends on.
  for (const std::string& bench : benchmarks) {
    std::vector<std::string> cores;
    if (!parse_benchmark(bench, &cores)) {
      if (error != nullptr) *error = "unknown benchmark '" + bench + "'";
      return std::nullopt;
    }
    for (const std::string& mode_s : modes) {
      MemoryMode mode{};
      if (!parse_mode(mode_s, &mode)) {
        if (error != nullptr) *error = "unknown mode '" + mode_s + "'";
        return std::nullopt;
      }
      for (const std::uint64_t r : ranks) {
        for (const std::string& ref_s : refreshes) {
          dram::RefreshMode refresh{};
          if (!parse_refresh(ref_s, &refresh)) {
            if (error != nullptr) {
              *error = "unknown refresh mode '" + ref_s + "'";
            }
            return std::nullopt;
          }
          for (const bool part : partitions) {
            for (const std::uint64_t ch : channels) {
              for (const std::uint64_t mb : llc_mb) {
                CampaignCell cell;
                cell.index = cells.size();
                std::ostringstream label;
                label << bench << '/' << mode_s << "/r" << r << '/' << ref_s
                      << "/part" << (part ? 1 : 0) << "/ch" << ch << "/llc"
                      << mb;
                cell.label = label.str();
                ExperimentSpec& e = cell.spec;
                e.benchmarks = cores;
                e.mode = mode;
                e.rank_partition = part;
                e.ranks = static_cast<std::uint32_t>(r);
                e.channels = static_cast<std::uint32_t>(ch);
                e.shard_channels = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(shard_channels, ch));
                e.llc_bytes = mb << 20;
                e.refresh_mode = refresh;
                e.instructions_per_core = instructions;
                e.max_cpu_cycles = instructions * 256;  // ropsim parity
                e.check = check;
                e.sampling = sampling;
                e.telemetry.sampler.epoch_cycles = epoch_cycles;
                // Paths are filled in by run_campaign (they depend on the
                // output directory); the period rides in the spec so every
                // expansion site agrees on it.
                e.snapshot.every = snapshot_every;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Execution.

std::optional<CampaignSummary> run_campaign(const CampaignOptions& opts,
                                            std::string* error) {
  const auto fail = [error](std::string msg) -> std::optional<CampaignSummary> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  std::string spec_text;
  if (!read_file(opts.spec_path, &spec_text)) {
    return fail("cannot read campaign spec: " + opts.spec_path);
  }
  std::string parse_err;
  const std::optional<json::Value> spec = json::parse(spec_text, &parse_err);
  if (!spec) return fail("spec parse error: " + parse_err);

  std::string expand_err;
  std::optional<std::vector<CampaignCell>> cells_opt =
      expand_campaign(*spec, &expand_err);
  if (!cells_opt) return fail(expand_err);
  std::vector<CampaignCell>& cells = *cells_opt;
  if (cells.empty()) return fail("campaign expands to zero cells");

  const json::Value* name_v = spec->find("name");
  const std::string name =
      (name_v != nullptr && name_v->is_string()) ? name_v->as_string()
                                                 : "campaign";
  const std::string fp = fingerprint(spec_text);

  const fs::path out_dir(opts.out_dir);
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) return fail("cannot create output directory: " + opts.out_dir);

  // Restore completed cells from an existing manifest (same spec only).
  std::vector<bool> done(cells.size(), false);
  std::size_t restored = 0;
  const fs::path manifest_path = out_dir / "manifest.json";
  if (opts.resume) {
    std::string manifest_raw;
    if (read_file(manifest_path, &manifest_raw)) {
      const std::optional<json::Value> manifest = json::parse(manifest_raw);
      const json::Value* mfp =
          manifest ? manifest->find("fingerprint") : nullptr;
      const json::Value* mdone =
          manifest ? manifest->find("completed") : nullptr;
      if (mfp != nullptr && mfp->is_string() && mfp->as_string() == fp &&
          mdone != nullptr && mdone->is_array()) {
        for (const json::Value& idx : mdone->as_array()) {
          if (!idx.has_u64() || idx.as_u64() >= cells.size()) continue;
          const std::size_t i = idx.as_u64();
          // Trust a manifest entry only when the cell document survived too.
          if (fs::exists(out_dir / cell_filename(i))) {
            done[i] = true;
            ++restored;
            // A kill between the cell JSON landing and its checkpoint being
            // deleted can leave the .snap behind; it is dead weight now.
            std::error_code rm_ec;
            fs::remove(out_dir / cell_snapname(i), rm_ec);
          }
        }
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }

  // Budget against the widest cell: sharded cells bring shard workers and
  // planned-sampled cells bring window workers, so jobs * width never
  // exceeds the machine (a 4-cell sweep of sampling.jobs=4 cells on an
  // 8-thread budget runs 2 cells at a time, not 4).
  unsigned max_width = 1;
  for (const CampaignCell& cell : cells) {
    max_width = std::max(max_width, experiment_worker_width(cell.spec));
  }
  const unsigned n_workers =
      worker_budget(opts.jobs, max_width, pending.size());

  std::mutex mu;  // guards done[], the manifest file, and progress output
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> fresh{0};
  std::atomic<std::size_t> running{0};
  std::atomic<bool> io_failed{false};
  std::string io_error;

  // Live-ops heartbeat (JSONL; one line per cell transition). Holds the
  // manifest mutex while writing, so lines never interleave.
  std::unique_ptr<telemetry::ProgressWriter> beat;
  if (!opts.progress_file.empty()) {
    beat = std::make_unique<telemetry::ProgressWriter>(opts.progress_file);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto emit_beat = [&](const std::string& label) {  // requires mu held
    if (beat == nullptr) return;
    telemetry::ProgressWriter::CampaignHeartbeat hb;
    std::size_t total_done = 0;
    for (const bool d : done) total_done += d ? 1 : 0;
    hb.done = total_done;
    hb.failed = io_failed.load(std::memory_order_relaxed) ? 1 : 0;
    hb.running = running.load(std::memory_order_relaxed);
    hb.total = cells.size();
    hb.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    const std::size_t n_fresh = fresh.load(std::memory_order_relaxed);
    if (total_done >= cells.size()) {
      hb.eta_s = 0.0;
    } else if (n_fresh > 0 && hb.wall_s > 0.0) {
      // Aggregate throughput over fresh completions this invocation —
      // parallel workers are already folded in.
      hb.eta_s = hb.wall_s / static_cast<double>(n_fresh) *
                 static_cast<double>(cells.size() - total_done);
    }
    hb.last_cell = label;
    beat->write_campaign(hb);
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    emit_beat("");  // opening line: totals and restored count
  }

  const auto worker = [&] {
    for (;;) {
      if (io_failed.load(std::memory_order_relaxed)) return;
      if (opts.stop_after > 0 &&
          fresh.load(std::memory_order_relaxed) >= opts.stop_after) {
        return;
      }
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= pending.size()) return;
      const std::size_t idx = pending[slot];
      running.fetch_add(1, std::memory_order_relaxed);
      if (beat != nullptr) {
        std::lock_guard<std::mutex> lock(mu);
        emit_beat(cells[idx].label);
      }
      ExperimentSpec cell_spec = cells[idx].spec;
      fs::path snap_path;
      if (cell_spec.snapshot.every > 0) {
        snap_path = out_dir / cell_snapname(idx);
        cell_spec.snapshot.out = snap_path.string();
        // Resume mid-cell from the last periodic checkpoint — but only one
        // written under this exact spec; a stale file from an earlier sweep
        // is discarded, not trusted.
        if (snapshot_compatible(snap_path.string(),
                                config_fingerprint(
                                    spec_canonical(cell_spec)))) {
          cell_spec.snapshot.in = snap_path.string();
        } else {
          std::error_code rm_ec;
          fs::remove(snap_path, rm_ec);
        }
      }
      const ExperimentResult result = run_experiment(cell_spec);
      const std::string doc = result.to_json();
      if (!write_file_atomic(out_dir / cell_filename(idx), doc)) {
        std::lock_guard<std::mutex> lock(mu);
        io_error = "cannot write " + cell_filename(idx);
        io_failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (!snap_path.empty()) {
        // The cell JSON landed; the intra-cell checkpoint is obsolete (and
        // must not leak into the next campaign in this directory).
        std::error_code rm_ec;
        fs::remove(snap_path, rm_ec);
      }
      const std::size_t n_fresh =
          fresh.fetch_add(1, std::memory_order_relaxed) + 1;
      running.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      done[idx] = true;
      // Checkpoint after every cell: a kill between two checkpoints loses
      // at most in-flight cells, never completed ones.
      if (!write_file_atomic(manifest_path,
                             manifest_text(fp, cells.size(), done))) {
        io_error = "cannot write manifest.json";
        io_failed.store(true, std::memory_order_relaxed);
        emit_beat(cells[idx].label);
        return;
      }
      if (opts.progress) {
        std::size_t total_done = 0;
        for (const bool d : done) total_done += d ? 1 : 0;
        std::fprintf(stderr, "[campaign %s] %zu/%zu done: %s\n", name.c_str(),
                     total_done, cells.size(), cells[idx].label.c_str());
      }
      emit_beat(cells[idx].label);
      static_cast<void>(n_fresh);
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 1; t < n_workers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  if (io_failed.load()) return fail(io_error);

  CampaignSummary summary;
  summary.total_cells = cells.size();
  summary.skipped_cells = restored;
  summary.ran_cells = fresh.load();
  std::size_t completed = 0;
  for (const bool d : done) completed += d ? 1 : 0;
  summary.completed_cells = completed;
  summary.complete = completed == cells.size();
  if (!summary.complete) return summary;

  // Merge: parse every per-cell document back and aggregate. Deterministic
  // (sorted keys, exact integer/scalar folds, no wall-clock fields), so a
  // resumed campaign reproduces the uninterrupted merged.json byte for
  // byte.
  std::vector<json::Value> docs;
  docs.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::string text;
    if (!read_file(out_dir / cell_filename(i), &text)) {
      return fail("cannot read " + cell_filename(i));
    }
    std::string cell_err;
    std::optional<json::Value> doc = json::parse(text, &cell_err);
    if (!doc) {
      return fail(cell_filename(i) + " parse error: " + cell_err);
    }
    docs.push_back(std::move(*doc));
  }
  const fs::path merged_path = out_dir / "merged.json";
  if (!write_file_atomic(merged_path, merged_text(name, cells, docs))) {
    return fail("cannot write merged.json");
  }
  summary.merged_path = merged_path.string();
  return summary;
}

}  // namespace rop::sim
