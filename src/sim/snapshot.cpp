#include "sim/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/snapshot_io.h"
#include "common/types.h"
#include "cpu/system.h"
#include "mem/memory_system.h"
#include "mem/shard_pool.h"
#include "rop/rop_engine.h"
#include "sim/experiment.h"
#include "telemetry/epoch_sampler.h"
#include "telemetry/trace_sink.h"
#include "workload/synthetic.h"

namespace rop::sim {

namespace {

// "ROPSNAP1" read as a little-endian u64.
constexpr std::uint64_t kMagic = 0x3150414E53504F52ULL;
// v2: Request lifecycle stamps + per-cause blocked fields, CoreStats CPI
// ledger, Core critical_since_, CoreResult CPI stack.
constexpr std::uint32_t kFormatVersion = 2;

template <class Ar>
void serialize_sections(Ar& ar, const SnapshotContext& ctx) {
  ROP_ASSERT(ctx.system != nullptr && ctx.memory != nullptr &&
             ctx.stats != nullptr);
  // Restore-dependency order (see the header comment): registries first,
  // then the memory system (whose per-channel registries ride inside its
  // io), then the CPU system (loop cursor, cores, shard-pool event clocks
  // and fold baselines), then the attachments.
  ar.field(*ctx.stats);
  ar.field(*ctx.memory);
  ar.field(*ctx.system);
  for (engine::RopEngine* e : ctx.engines) ar.field(*e);
  for (workload::SyntheticTrace* t : ctx.traces) ar.field(*t);
  if (ctx.sampler != nullptr) ar.field(*ctx.sampler);
  if (ctx.trace != nullptr) ar.field(*ctx.trace);
}

}  // namespace

std::string spec_canonical(const ExperimentSpec& spec) {
  std::ostringstream os;
  os.precision(17);
  os << "v1;benchmarks=";
  for (const std::string& b : spec.benchmarks) os << b << ',';
  os << ";mode=" << static_cast<int>(spec.mode)
     << ";rank_partition=" << spec.rank_partition << ";ranks=" << spec.ranks
     << ";channels=" << spec.channels << ";shards=" << spec.shard_channels
     << ";llc=" << spec.llc_bytes
     << ";refresh=" << static_cast<int>(spec.refresh_mode)
     << ";instr=" << spec.instructions_per_core
     << ";max=" << spec.max_cpu_cycles << ";salt=" << spec.seed_salt
     << ";loop=" << static_cast<int>(spec.loop);
  const engine::RopConfig& r = spec.rop;
  os << ";rop=" << r.buffer_lines << ',' << r.training_refreshes << ','
     << r.hit_rate_threshold << ',' << r.window_multiple << ','
     << r.sram_latency << ',' << r.eval_period_refreshes << ','
     << r.eval_min_opportunities << ',' << r.seed << ','
     << static_cast<int>(r.gating) << ',' << r.uniform_budget << ','
     << r.adaptive_count << ',' << r.min_prefetch << ',' << r.distance_scale
     << ',' << r.bank_recency_horizon << ',' << r.saturation_guard_bursts;
  os << ";epoch=" << spec.telemetry.sampler.epoch_cycles << ','
     << spec.telemetry.sampler.max_epochs << ',';
  for (const std::string& c : spec.telemetry.sampler.counters) os << c << '+';
  os << ";trace=" << spec.telemetry.trace.categories << ','
     << spec.telemetry.trace.capacity;
  os << ";sampling=" << spec.sampling.enabled << ','
     << spec.sampling.warmup_cycles << ',' << spec.sampling.detail_cycles
     << ',' << spec.sampling.functional_instructions << ','
     << spec.sampling.critical_penalty << ',' << spec.sampling.min_windows
     << ',' << spec.sampling.max_windows << ','
     << spec.sampling.target_ci_frac;
  // Planned mode and the stratum count both shape the output (placement
  // grid, estimator); the worker count deliberately does not — jobs=1 and
  // jobs=8 must interchange snapshots and produce identical stats.
  os << ";planned=" << (spec.sampling.jobs > 0) << ','
     << spec.sampling.strata;
  // Snapshot paths and the checker flag are deliberately absent: they do
  // not shape simulated behavior, and the save/restore sides differ in
  // them by construction.
  return os.str();
}

std::uint64_t config_fingerprint(const std::string& canonical) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : canonical) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string save_snapshot_buffer(const SnapshotContext& ctx,
                                 std::uint64_t fingerprint) {
  snap::Writer w;
  std::uint64_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint64_t fp = fingerprint;
  w(magic, version, fp);
  serialize_sections(w, ctx);
  return w.take();
}

bool load_snapshot_buffer(const std::string& buf, const SnapshotContext& ctx,
                          std::uint64_t fingerprint, std::string* error) {
  snap::Reader r(buf);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t fp = 0;
  r(magic, version, fp);
  if (!r.ok() || magic != kMagic) {
    if (error != nullptr) *error = "not a ROPSNAP1 snapshot";
    return false;
  }
  if (version != kFormatVersion) {
    if (error != nullptr) *error = "unsupported snapshot format version";
    return false;
  }
  if (fp != fingerprint) {
    if (error != nullptr) {
      *error = "snapshot was taken under a different experiment spec";
    }
    return false;
  }
  serialize_sections(r, ctx);
  if (!r.ok()) {
    if (error != nullptr) *error = "snapshot truncated or corrupt";
    return false;
  }
  if (!r.at_end()) {
    if (error != nullptr) *error = "snapshot has trailing bytes";
    return false;
  }
  return true;
}

bool snapshot_compatible(const std::string& path, std::uint64_t fingerprint) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char header[20];
  if (!is.read(header, sizeof header)) return false;
  snap::Reader r(header, sizeof header);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t fp = 0;
  r(magic, version, fp);
  return r.ok() && magic == kMagic && version == kFormatVersion &&
         fp == fingerprint;
}

bool write_snapshot_file(const std::string& path, const SnapshotContext& ctx,
                         std::uint64_t fingerprint) {
  const std::string bytes = save_snapshot_buffer(ctx, fingerprint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

bool read_snapshot_file(const std::string& path, const SnapshotContext& ctx,
                        std::uint64_t fingerprint, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error != nullptr) *error = "cannot open snapshot file";
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return load_snapshot_buffer(ss.str(), ctx, fingerprint, error);
}

}  // namespace rop::sim
