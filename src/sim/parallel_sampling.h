// Checkpoint-spawned parallel sampling: plan measurement-window placement
// on a cheap functional-only backbone, then fan the detailed windows out to
// a worker pool as independent jobs restored from in-memory snapshots.
//
// The legacy chained loop (sim/sampling.h) interleaves detailed windows
// with functional warming on one system, so window N+1 cannot start until
// window N finished — the detailed fraction is serial by construction. The
// planner here never runs a detailed cycle itself: it advances a
// functional-only backbone in fine chunks (functional_instructions /
// kOversample), drops a full in-memory snapshot (sim/snapshot.h,
// save_snapshot_buffer) at each planned window start, and enqueues the
// buffer as a job. Each worker owns a complete replica simulator built
// through build_sim_instance — byte-compatible registry layout by
// construction — restores the snapshot, runs warmup_cycles of excluded
// detailed execution plus detail_cycles of measured execution, and delivers
// one WindowObservation into a slot keyed by the window's placement
// ordinal.
//
// Determinism contract: at a fixed placement, the observation set is
// bit-identical for every worker count (jobs >= 1), because each window is
// a pure function of its snapshot and the snapshot stream is produced by
// the single-threaded backbone. Results merge in placement order; the
// estimator consumes the ordinal-ordered vector, so the stats JSON
// `sampling` block is byte-identical regardless of jobs (the `workers` key
// is operational metadata, like wall_seconds). The `--sample-target-ci`
// auto-stop keeps the contract by deciding on a fixed-lag prefix: before
// placing ordinal n >= kLookahead, the planner waits for observations
// 0..n-kLookahead-1 and applies the same convergence rule the chained loop
// uses to exactly that prefix — the decision depends only on observation
// content, never on worker timing.
//
// Stratified placement (spec.sampling.strata > 0): the instruction horizon
// splits into equal strata; during the functional pass each chunk is
// weighted by 1 + its LLC-miss delta (memory traffic observed for free),
// and window credit accrues in proportion to a chunk's weight relative to
// the running mean — busy strata earn windows faster. Each stratum is
// force-seeded with one window at its first chunk so coverage never drops
// to zero. The estimator combines per-stratum means with Neyman-style
// weights (each stratum's functional cycle estimate as its share of the
// run), which corrects the uniform placement's bias toward
// instruction-dense fast phases — the documented ~1.5% lbm warming bias.
#pragma once

#include "cpu/system.h"
#include "sim/experiment.h"
#include "sim/sampling.h"
#include "sim/sim_instance.h"

namespace rop::sim {

/// Fine planning chunks per functional_instructions: placement can land a
/// window every 1/kOversample of the legacy spacing.
inline constexpr std::uint64_t kPlannerOversample = 4;

/// Fixed auto-stop lag: ordinal n's placement decision sees observations
/// 0..n-kLookahead-1 (all complete). Large enough to keep the pool busy,
/// small enough that convergence stops the run promptly.
inline constexpr std::uint64_t kAutoStopLookahead = 8;

/// Run `spec`'s sampled experiment in planned parallel mode
/// (spec.sampling.jobs >= 1). `backbone` is the instance run_experiment
/// built; it executes the functional-only pass and is finish_run()'d for
/// the returned RunResult. Workers build their own replicas from `spec`.
/// Serial loop only; tracing/epoch sampling must be off. Fills `out`.
[[nodiscard]] cpu::RunResult run_parallel_sampled(const ExperimentSpec& spec,
                                                  SimInstance& backbone,
                                                  SamplingSummary* out);

}  // namespace rop::sim
